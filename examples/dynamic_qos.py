#!/usr/bin/env python
"""Dynamic QoS — renegotiate a VM's virtual frequency at runtime, and
survive a controller restart without losing state.

Story: a batch VM bought 1 800 MHz for a nightly job.  At "daybreak" the
customer downgrades it to 600 MHz (cheaper tier) while an interactive VM
upgrades from 600 to 1 800.  Halfway through, the controller process is
"upgraded": its state is snapshotted to JSON and restored into a fresh
instance — credit wallets, consumption histories and cappings carry
over, so control resumes seamlessly.

Run:  python examples/dynamic_qos.py
"""

from repro import Hypervisor, Node, Simulation, VirtualFrequencyController, VMTemplate
from repro.analysis.ascii_chart import chart_time_series
from repro.core.snapshot import from_json, to_json
from repro.hw.nodespecs import CHETEMI
from repro.workloads import ConstantWorkload, attach

BATCH = VMTemplate("batch", vcpus=4, vfreq_mhz=1800.0)
WEB = VMTemplate("web", vcpus=4, vfreq_mhz=600.0)
FILLER = VMTemplate("filler", vcpus=4, vfreq_mhz=2000.0)


def main() -> None:
    node = Node(CHETEMI, seed=5)
    hv = Hypervisor(node)
    ctrl = VirtualFrequencyController(
        node.fs, node.procfs, node.sysfs,
        num_cpus=node.spec.logical_cpus, fmax_mhz=node.spec.fmax_mhz,
    )
    for template, name in ((BATCH, "batch"), (WEB, "web")):
        vm = hv.provision(template, name)
        ctrl.register_vm(name, template.vfreq_mhz)
        attach(vm, ConstantWorkload(4, level=1.0))
    # fillers make the node genuinely contended so guarantees bind
    for k in range(10):
        vm = hv.provision(FILLER, f"filler-{k}")
        ctrl.register_vm(vm.name, FILLER.vfreq_mhz)
        attach(vm, ConstantWorkload(4, level=1.0))

    sim = Simulation(node, hv, controller=ctrl, dt=0.5)

    print("phase 1 — night: batch @1800 MHz, web @600 MHz")
    sim.run(60.0)

    print("phase 2 — daybreak: swap the tiers (no restart, no migration)")
    ctrl.set_vfreq("batch", 600.0)
    ctrl.set_vfreq("web", 1800.0)
    sim.run(30.0)

    print("phase 3 — controller upgrade: snapshot -> fresh process -> restore")
    payload = to_json(ctrl)
    fresh = VirtualFrequencyController(
        node.fs, node.procfs, node.sysfs,
        num_cpus=node.spec.logical_cpus, fmax_mhz=node.spec.fmax_mhz,
    )
    from_json(fresh, payload)
    sim.controller = fresh
    sim.run(30.0)

    batch = sim.metrics.vfreq_estimated["batch"]
    web = sim.metrics.vfreq_estimated["web"]
    print()
    print(chart_time_series(
        {"batch": (batch.times, batch.values), "web": (web.times, web.values)},
        title="estimated virtual frequency (MHz) — tier swap at t=60 s",
        width=64, height=12,
    ))

    night_batch = batch.window(30, 60).mean()
    day_batch = batch.window(95, 120).mean()
    day_web = web.window(95, 120).mean()
    print()
    print(f"batch: {night_batch:7.0f} MHz at night -> {day_batch:7.0f} MHz after downgrade")
    print(f"web  : upgraded tier holds {day_web:7.0f} MHz (guaranteed 1800)")
    print(f"snapshot size: {len(payload):,} bytes of JSON")


if __name__ == "__main__":
    main()
