#!/usr/bin/env python
"""Quickstart — guarantee a virtual frequency for one VM.

Builds a simulated chetemi-class host, provisions two VMs with different
guaranteed virtual frequencies (the paper's new template field), runs a
CPU-saturating workload in both, and shows the controller holding each
VM at its guarantee while reselling anything left over.

Run:  python examples/quickstart.py
"""

from repro import (
    CHETEMI,
    ControllerConfig,
    Hypervisor,
    Node,
    Simulation,
    VirtualFrequencyController,
    VMTemplate,
)
from repro.workloads import ConstantWorkload, attach


def main() -> None:
    # 1. A physical machine: 40 logical CPUs @ 2 400 MHz (Table IV).
    node = Node(CHETEMI, seed=1)
    hypervisor = Hypervisor(node)

    # 2. The paper's controller, evaluation settings (§IV-A1): increase
    #    trigger/factor 95 %/100 %, decrease trigger/factor 50 %/5 %, p = 1 s.
    controller = VirtualFrequencyController(
        node.fs,
        node.procfs,
        node.sysfs,
        num_cpus=node.spec.logical_cpus,
        fmax_mhz=node.spec.fmax_mhz,
        config=ControllerConfig.paper_evaluation(),
    )

    # 3. Two templates that differ only in guaranteed virtual frequency.
    gold = VMTemplate("gold", vcpus=4, vfreq_mhz=1800.0)
    bronze = VMTemplate("bronze", vcpus=4, vfreq_mhz=500.0)
    for template, count in ((gold, 8), (bronze, 12)):
        for k in range(count):
            vm = hypervisor.provision(template, f"{template.name}-{k}")
            controller.register_vm(vm.name, template.vfreq_mhz)
            attach(vm, ConstantWorkload(vm.num_vcpus, level=1.0))

    # 4. Run two simulated minutes; the controller ticks once per second.
    sim = Simulation(node, hypervisor, controller=controller, dt=0.5)
    sim.run(120.0)

    # 5. Read the outcome straight from the controller's last iteration.
    report = controller.reports[-1]
    freqs = report.vfreq_by_vm()
    gold_mhz = sum(v for k, v in freqs.items() if k.startswith("gold")) / 8
    bronze_mhz = sum(v for k, v in freqs.items() if k.startswith("bronze")) / 12
    print(f"committed demand : {hypervisor.committed_mhz():,.0f} MHz "
          f"of {node.spec.capacity_mhz:,.0f} MHz (Eq. 7)")
    print(f"gold VMs         : ~{gold_mhz:7.0f} MHz per vCPU (guaranteed 1800)")
    print(f"bronze VMs       : ~{bronze_mhz:7.0f} MHz per vCPU (guaranteed  500)")
    print(f"controller cost  : {controller.mean_iteration_seconds() * 1e3:.2f} ms "
          f"per 1 s iteration")

    assert gold_mhz > 1500.0 and bronze_mhz < 900.0


if __name__ == "__main__":
    main()
