#!/usr/bin/env python
"""Datacenter — frequency-aware operations end to end.

Runs a small datacenter (3 chetemi + 2 chiclet) through a day-in-the-
life sequence using the cluster engine:

1. place a mixed VM fleet with the Eq. 7 constraint (BestFit);
2. power off the nodes the tighter packing freed;
3. run the fleet under the controller and meter energy;
4. live-migrate a VM to drain a node for maintenance, then power work
   back up — all while guarantees hold and the workload's progress
   survives the move.

Run:  python examples/datacenter.py
"""

from repro.hw.cluster import Cluster
from repro.hw.nodespecs import CHETEMI, CHICLET
from repro.placement.bestfit import BestFit
from repro.placement.constraints import CoreSplittingConstraint
from repro.placement.evaluator import evaluate
from repro.placement.request import expand_requests
from repro.sim.cluster_engine import ClusterSimulation
from repro.virt.template import LARGE, MEDIUM, SMALL
from repro.workloads import Compress7Zip


def workload_for(request):
    return Compress7Zip(
        request.template.vcpus,
        iterations=50,
        work_per_iteration_mhz_s=80_000.0,
    )


def main() -> None:
    cluster = Cluster.from_counts({CHETEMI: 3, CHICLET: 2})
    requests = expand_requests([(SMALL, 40), (MEDIUM, 10), (LARGE, 15)])
    placement = BestFit(CoreSplittingConstraint()).place(cluster, requests)
    stats = evaluate(placement)
    print(f"placed {len(requests)} VMs on {stats.nodes_used}/{stats.nodes_total} nodes "
          f"(max node load {stats.max_mhz_load_fraction:.2f} of Eq. 7 capacity)")

    sim = ClusterSimulation(cluster, controlled=True, dt=0.5)
    sim.deploy(placement, workload_for)
    off = sim.power_off_empty_nodes()
    print(f"powered off {off} empty node(s); {sim.nodes_powered_on()} running")

    sim.run(60.0)
    print(f"after 60 s: {sim.total_energy_wh():.1f} Wh consumed, "
          f"{len(sim.migrations)} migrations")

    # -- maintenance: drain one VM off a busy node ------------------------
    donor = next(
        r for r in sim.runtimes.values() if r.powered_on and r.hypervisor.vms
    )
    vm = donor.hypervisor.vms[-1]
    # pick a target that can still *guarantee* the VM (Eq. 7 headroom)
    target = next(
        r.node_id
        for r in sim.runtimes.values()
        if r.powered_on
        and r.node_id != donor.node_id
        and r.hypervisor.admits(vm.template)
    )
    before_scores = len(vm.workload.scores)
    event = sim.start_migration(vm.name, target)
    print(f"maintenance: migrating {vm.name} {event.source} -> {event.target} "
          f"({event.duration_s:.2f}s incl. downtime)")
    sim.run(60.0)

    moved = sim.all_vms()[vm.name]
    print(f"{vm.name} now hosted with {len(moved.workload.scores)} iterations done "
          f"({before_scores} before the move — progress preserved)")
    print(f"total energy after 120 s: {sim.total_energy_wh():.1f} Wh")


if __name__ == "__main__":
    main()
