#!/usr/bin/env python
"""Cluster placement — using virtual frequency as a packing dimension.

Replays the paper's §IV-C study: place 250 small + 50 medium + 100 large
VMs on 12 chetemi + 10 chiclet machines with BestFit under (a) the
classic vCPU-count constraint, (b) the paper's core-splitting constraint
(Eq. 7), and (c) vCPU-count with a x1.8 consolidation factor — then
project the energy impact of shutting down the freed nodes.

Run:  python examples/cluster_placement.py
"""

from repro import BestFit, Cluster, CoreSplittingConstraint, VcpuCountConstraint
from repro.placement.evaluator import evaluate, nodes_by_spec_used
from repro.placement.request import paper_workload
from repro.sim.report import render_table


def main() -> None:
    cluster = Cluster.paper_cluster()
    requests = paper_workload()
    demand = sum(r.demand_mhz for r in requests)
    print(f"cluster : {len(cluster)} nodes, "
          f"{cluster.total_capacity_mhz():,.0f} MHz capacity")
    print(f"workload: {len(requests)} VMs, {demand:,.0f} MHz guaranteed demand")
    print()

    rows = []
    for label, constraint in (
        ("vCPU count (classic)", VcpuCountConstraint()),
        ("vCPU count x1.8 (overcommit)", VcpuCountConstraint(consolidation_factor=1.8)),
        ("core splitting, Eq. 7 (paper)", CoreSplittingConstraint()),
    ):
        placement = BestFit(constraint).place(cluster, requests)
        stats = evaluate(placement)
        by_spec = nodes_by_spec_used(placement)
        rows.append([
            label,
            f"{stats.nodes_used}/{stats.nodes_total}",
            f"{by_spec.get('chetemi', 0)} + {by_spec.get('chiclet', 0)}",
            "yes" if stats.max_mhz_load_fraction <= 1.0 else "NO",
            f"{stats.idle_power_saved_w / 1000.0:.2f} kW",
        ])
    print(render_table(
        ["constraint", "nodes used", "chetemi+chiclet", "guarantee holds", "idle power saved"],
        rows,
    ))
    print()
    print("The x1.8 overcommit reaches the same node count as Eq. 7 but")
    print("breaks the frequency guarantee on its hottest nodes — the very")
    print("situation the controller-backed constraint avoids (paper §IV-C).")


if __name__ == "__main__":
    main()
