#!/usr/bin/env python
"""Multi-tenant node — the paper's first evaluation, end to end.

Replays Table II on a simulated chetemi: 20 small VMs start the
compress-7zip benchmark at t = 0; 10 large VMs pile on at t = 200 s.
Runs both configurations (A: stock CFS, B: controller) and prints the
Fig. 6/7 frequency time line plus the §IV-A2 analysis numbers.

Run:  python examples/multi_tenant_node.py [--fast]
"""

import sys

from repro.sim.report import render_table, series_to_rows
from repro.sim.scenario import eval1_chetemi


def main() -> None:
    fast = "--fast" in sys.argv
    scenario = eval1_chetemi(
        duration=450.0 if fast else 700.0,
        time_scale=0.5 if fast else 1.0,
        dt=0.5,
    )
    print(f"running {scenario.name}: {sum(g.count for g in scenario.groups)} VMs "
          f"on {scenario.node_spec.name} ({scenario.node_spec.logical_cpus} lcpus)")

    res_a = scenario.run(controlled=False)
    res_b = scenario.run(controlled=True)

    for res, label in ((res_a, "configuration A (stock CFS)"),
                       (res_b, "configuration B (VF controller)")):
        headers, rows = series_to_rows(
            {
                "small MHz": res.group_freq_series("small"),
                "large MHz": res.group_freq_series("large"),
            },
            step_s=50.0 * (0.5 if fast else 1.0),
        )
        print()
        print(render_table(headers, rows, title=label))

    t_mid = scenario.duration * 0.6
    print()
    print("steady state under contention:")
    print(f"  A: small {res_a.plateau_mhz('small', t_mid):.0f} MHz, "
          f"large {res_a.plateau_mhz('large', t_mid):.0f} MHz "
          f"(CFS favours the 20 small VM cgroups)")
    print(f"  B: small {res_b.plateau_mhz('small', t_mid):.0f} MHz, "
          f"large {res_b.plateau_mhz('large', t_mid):.0f} MHz "
          f"(guarantees: 500 / 1800)")


if __name__ == "__main__":
    main()
