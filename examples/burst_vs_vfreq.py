#!/usr/bin/env python
"""Burst VMs vs virtual frequency — the §II motivation, quantified.

A batch job lands on a half-idle node.  As an EC2-style burst VM it
runs until its CPU credits are gone, then crawls at the 10 % baseline —
even though the node has cycles to spare.  Under the paper's controller
the same job keeps its guaranteed frequency and absorbs the idle
neighbours' cycles through the auction.

Run:  python examples/burst_vs_vfreq.py
"""

from repro import Hypervisor, Node, Simulation, VirtualFrequencyController, VMTemplate
from repro.hw.nodespecs import CHETEMI
from repro.virt.burst import BurstPolicy, BurstVMController
from repro.workloads import Compress7Zip, attach
from repro.workloads.synthetic import IdleWorkload

JOB = VMTemplate("batch", vcpus=4, vfreq_mhz=1200.0)
NEIGHBOR = VMTemplate("web", vcpus=2, vfreq_mhz=500.0)
DURATION = 300.0


def build_host():
    node = Node(CHETEMI, seed=3)
    hv = Hypervisor(node)
    job = hv.provision(JOB, "batch")
    attach(job, Compress7Zip(4, iterations=200, work_per_iteration_mhz_s=100_000.0))
    for k in range(6):
        vm = hv.provision(NEIGHBOR, f"web-{k}")
        attach(vm, IdleWorkload(2))
    return node, hv, job


def run_burst():
    node, hv, job = build_host()
    burst = BurstVMController(node.fs, BurstPolicy(initial_credits=60.0))
    for vm in hv.vms:
        burst.watch(vm)
    sim = Simulation(node, hv, dt=0.5)
    for k in range(int(DURATION * 2)):
        sim.run(0.5)
        if k % 2 == 1:
            burst.tick({vm.name: vm for vm in hv.vms}, dt=1.0)
    return job, burst


def run_controller():
    node, hv, job = build_host()
    ctrl = VirtualFrequencyController(
        node.fs, node.procfs, node.sysfs,
        num_cpus=node.spec.logical_cpus, fmax_mhz=node.spec.fmax_mhz,
    )
    for vm in hv.vms:
        ctrl.register_vm(vm.name, vm.template.vfreq_mhz)
    sim = Simulation(node, hv, controller=ctrl, dt=0.5)
    sim.run(DURATION)
    return job


def main() -> None:
    job_burst, burst = run_burst()
    job_ctrl = run_controller()

    done_burst = sum(s.work_mhz_s for s in job_burst.workload.scores)
    done_ctrl = sum(s.work_mhz_s for s in job_ctrl.workload.scores)
    print(f"work finished in {DURATION:.0f} s on a half-idle node:")
    print(f"  burst VM          : {done_burst:12,.0f} MHz*s "
          f"(credits left: {burst.credits_of('batch'):.0f} s)")
    print(f"  vfreq controller  : {done_ctrl:12,.0f} MHz*s")
    print(f"  speedup           : {done_ctrl / done_burst:.1f}x")
    print()
    print("The burst VM is node-state unaware (paper §II, limitation 3):")
    print("once broke, it stays capped at 10 % while 32+ logical CPUs idle.")


if __name__ == "__main__":
    main()
