"""SLO specs, burn-rate evaluation, alert ledger, explain, paging."""

import json
import os

import pytest

from repro.obs.slo import (
    DEFAULT_RULES,
    AlertLedger,
    BurnRateRule,
    SLOConfig,
    SLOPlane,
    SLOSpec,
    default_slos,
    explain_alert,
    explain_alert_from_entries,
    load_alerts_jsonl,
    lookup_alert,
)
from repro.obs.tsdb import S_GUARANTEE_BAD, S_GUARANTEE_CHECKS


def feed_guarantee(plane, ticks, bad_ratio, *, tenant="t0", start=1,
                   checks=10.0):
    """Accumulate a guarantee stream and evaluate each tick."""
    transitions = []
    for tick in range(start, start + ticks):
        plane.store.accumulate(
            S_GUARANTEE_BAD, bad_ratio * checks, {"tenant": tenant}
        )
        plane.store.accumulate(
            S_GUARANTEE_CHECKS, checks, {"tenant": tenant}
        )
        transitions.extend(plane.evaluate(tick, t=float(tick)))
    return transitions


def deterministic_plane(**overrides):
    kwargs = dict(wallclock=False, anomaly=None)
    kwargs.update(overrides)
    return SLOPlane(SLOConfig(**kwargs))


class TestValidation:
    def test_rule_windows(self):
        with pytest.raises(ValueError):
            BurnRateRule(5, 5, 2.0)
        with pytest.raises(ValueError):
            BurnRateRule(10, 0, 2.0)
        with pytest.raises(ValueError):
            BurnRateRule(10, 2, -1.0)
        with pytest.raises(ValueError):
            BurnRateRule(10, 2, 2.0, severity="sev1")

    def test_spec_objective_and_ratio(self):
        with pytest.raises(ValueError):
            SLOSpec("x", 1.0, "b", "t")
        with pytest.raises(ValueError):
            SLOSpec("x", 0.99, "b", "t", ratio="percent")
        with pytest.raises(ValueError):
            SLOSpec("x", 0.99, "b", "t", rules=())
        assert SLOSpec("x", 0.999, "b", "t").error_budget == \
            pytest.approx(0.001)

    def test_config_knobs(self):
        with pytest.raises(ValueError):
            SLOConfig(capacity=1)
        with pytest.raises(ValueError):
            SLOConfig(ring=0)
        with pytest.raises(ValueError):
            SLOConfig(period_s=0.0)
        assert SLOConfig(period_s=2.0, deadline_fraction=0.5).deadline_s \
            == pytest.approx(1.0)


class TestCatalogue:
    def test_default_slos_shape(self):
        specs = {s.name: s for s in default_slos()}
        assert set(specs) == {"guarantee", "tick_deadline", "credit_burn"}
        assert specs["guarantee"].by == "tenant"
        assert specs["credit_burn"].ratio == "of_sum"
        assert specs["tick_deadline"].wallclock

    def test_deterministic_profile_drops_wallclock_slos(self):
        names = {s.name for s in default_slos(wallclock=False)}
        assert "tick_deadline" not in names
        plane = deterministic_plane()
        assert {s.name for s in plane.specs} == {"guarantee", "credit_burn"}

    def test_default_rule_bank_is_sre_shaped(self):
        assert [(r.factor, r.severity) for r in DEFAULT_RULES] == [
            (14.4, "page"), (6.0, "page"), (3.0, "ticket"), (1.0, "ticket"),
        ]


class TestBurnRateLifecycle:
    def test_page_fires_then_resolves_ticket_outlasts_it(self):
        plane = deterministic_plane()
        burning = feed_guarantee(plane, 10, 0.5)
        fired = [(t["severity"], t["state"]) for t in burning]
        assert ("page", "firing") in fired
        assert all(state == "firing" for _, state in fired)
        # A 0.5 bad ratio against a 0.1% budget burns at 500x.
        page = next(t for t in burning if t["severity"] == "page")
        assert page["burn_long"] > 14.4 and page["burn_short"] > 14.4
        assert page["slo"] == "guarantee"
        assert page["labels"] == {"tenant": "t0"}
        assert page["budget_remaining"] <= 1.0

        # Recovery: the page's short windows drain first and it
        # resolves; the ticket (720-tick window, served by the
        # downsample ladder) fires as its window fills and keeps
        # burning long after the incident ended.
        recovered = feed_guarantee(plane, 50, 0.0, start=11)
        states = [(t["severity"], t["state"]) for t in recovered]
        assert ("page", "resolved") in states
        assert ("ticket", "firing") in states
        assert ("ticket", "resolved") not in states
        keys = {(slo, sev) for (slo, _, sev) in plane._firing}
        assert ("guarantee", "ticket") in keys
        assert ("guarantee", "page") not in keys

    def test_resolved_transition_names_the_rule_that_fired(self):
        plane = deterministic_plane()
        feed_guarantee(plane, 10, 0.5)
        recovered = feed_guarantee(plane, 50, 0.0, start=11)
        resolved = next(t for t in recovered if t["state"] == "resolved")
        assert resolved["rule"]["factor"] in (14.4, 6.0)
        assert resolved["source"] == "burn_rate"

    def test_quiet_stream_never_alerts(self):
        plane = deterministic_plane()
        assert feed_guarantee(plane, 40, 0.0) == []
        assert plane.transitions_total == 0
        assert plane.firing_alerts() == []

    def test_per_tenant_isolation(self):
        plane = deterministic_plane()
        for tick in range(1, 11):
            plane.store.accumulate(S_GUARANTEE_BAD, 5.0, {"tenant": "bad"})
            plane.store.accumulate(S_GUARANTEE_CHECKS, 10.0, {"tenant": "bad"})
            plane.store.accumulate(S_GUARANTEE_BAD, 0.0, {"tenant": "good"})
            plane.store.accumulate(S_GUARANTEE_CHECKS, 10.0, {"tenant": "good"})
            transitions = plane.evaluate(tick)
        tenants = {t["labels"]["tenant"] for t in plane.ledger.transitions}
        assert tenants == {"bad"}
        assert {t["labels"]["tenant"] for t in plane.firing_alerts()} == {"bad"}

    def test_of_sum_ratio(self):
        spec = SLOSpec("credits", 0.99, "bad_usd", "good_usd",
                       ratio="of_sum")
        plane = SLOPlane(SLOConfig(specs=(spec,), wallclock=False,
                                   anomaly=None))
        for tick in range(1, 8):
            plane.store.accumulate("bad_usd", 1.0)
            plane.store.accumulate("good_usd", 3.0)
            plane.evaluate(tick)
        # ratio = 1 / (1 + 3) = 0.25 against a 1% budget -> 25x burn.
        assert plane.burn_rate(spec, 5, {}) == pytest.approx(25.0)
        assert any(t["severity"] == "page"
                   for t in plane.ledger.transitions)

    def test_error_budget_remaining_can_go_negative(self):
        # 25 ticks so the 1440-tick budget window (served by ladder
        # level 1, one point per 10 ticks) sees a real increase.
        plane = deterministic_plane()
        feed_guarantee(plane, 25, 0.9)
        spec = next(s for s in plane.specs if s.name == "guarantee")
        assert plane.error_budget_remaining(spec, {"tenant": "t0"}) < 0.0

    def test_no_label_sets_before_first_ingest(self):
        plane = deterministic_plane()
        spec = next(s for s in plane.specs if s.name == "guarantee")
        assert plane._label_sets(spec) == []
        assert plane.evaluate(1) == []


class TestAlertLedger:
    def test_ring_bound_and_jsonl_mirror(self, tmp_path):
        path = str(tmp_path / "alerts.jsonl")
        ledger = AlertLedger(ring=2, path=path)
        for k in range(4):
            ledger.record({"kind": "alert", "k": k})
        assert [t["k"] for t in ledger.transitions] == [2, 3]
        ledger.close()
        entries = load_alerts_jsonl(path)
        assert [e["k"] for e in entries] == [0, 1, 2, 3]  # file keeps all

    def test_loader_skips_foreign_lines(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        path.write_text(
            json.dumps({"kind": "alert", "slo": "x"}) + "\n"
            + json.dumps({"kind": "header"}) + "\n\n"
        )
        assert len(load_alerts_jsonl(str(path))) == 1

    def test_identical_streams_byte_identical_files(self, tmp_path):
        paths = []
        for run in ("a", "b"):
            out = tmp_path / run
            plane = SLOPlane(SLOConfig(wallclock=False, anomaly=None,
                                       out_dir=str(out)))
            feed_guarantee(plane, 10, 0.5)
            feed_guarantee(plane, 30, 0.0, start=11)
            plane.close()
            paths.append(out / "alerts.jsonl")
        a, b = (p.read_bytes() for p in paths)
        assert a == b and a  # identical and non-trivial


class TestExplainAlert:
    def _entries(self, tmp_path):
        plane = SLOPlane(SLOConfig(wallclock=False, anomaly=None,
                                   out_dir=str(tmp_path)))
        feed_guarantee(plane, 10, 0.5)
        plane.close()
        return load_alerts_jsonl(str(tmp_path / "alerts.jsonl"))

    def test_rederivation_matches(self, tmp_path):
        entries = self._entries(tmp_path)
        text = explain_alert_from_entries(entries, "guarantee")
        assert "alert derivation for slo=guarantee{tenant=t0}" in text
        assert "recomputed burn-rate condition matches" in text
        assert "MISMATCH" not in text

    def test_tampered_entry_is_flagged(self, tmp_path):
        entry = dict(self._entries(tmp_path)[0])
        entry["burn_long"] = 0.0  # ledger says firing, burns say no
        assert "MISMATCH" in explain_alert(entry)

    def test_lookup_errors_list_recorded_slos(self, tmp_path):
        entries = self._entries(tmp_path)
        with pytest.raises(KeyError, match="guarantee"):
            lookup_alert(entries, "nope")
        with pytest.raises(KeyError, match="out of range"):
            lookup_alert(entries, "guarantee", index=99)
        assert lookup_alert(entries, "guarantee", index=0) == entries[0]

    def test_anomaly_entry_rederivation(self):
        from repro.obs.anomaly import AnomalyConfig, EwmaDetector

        plane = SLOPlane(SLOConfig(wallclock=False,
                                   anomaly=AnomalyConfig(warmup=4)))
        for tick in range(1, 9):
            plane.store.append("backend_errors_total", 0.0 + tick * 2.0,
                               {"source": "n0"})
            plane.evaluate(tick)
        plane.store.append("backend_errors_total", 1e6, {"source": "n0"})
        transitions = plane.evaluate(9)
        anomalies = [t for t in transitions if t["source"] == "anomaly"]
        assert anomalies and anomalies[0]["slo"] == \
            "anomaly:backend_errors_total"
        text = explain_alert(anomalies[0])
        assert "re-derived, matches" in text


class TestFlightDumpOnPage:
    def _paged_controller(self, tmp_path):
        import random

        from repro.core.config import ControllerConfig
        from repro.obs import Observability, ObsConfig
        from repro.virt.template import VMTemplate
        from tests.conftest import make_host

        config = ControllerConfig.paper_evaluation(engine="vectorized")
        node, hv, ctrl = make_host(config=config)
        Observability.attach(ctrl, ObsConfig(out_dir=str(tmp_path)))
        plane = SLOPlane.attach(
            ctrl, SLOConfig(wallclock=False, anomaly=None)
        )
        vm = hv.provision(VMTemplate("t0", vcpus=1, vfreq_mhz=500.0), "vm-0")
        ctrl.register_vm(vm.name, 500.0)
        rng = random.Random(3)

        def tick(t):
            vm.set_uniform_demand(rng.random())
            node.step(1.0)
            ctrl.tick(float(t))

        return ctrl, plane, tick

    def test_page_alert_dumps_flight_recorder(self, tmp_path):
        ctrl, plane, tick = self._paged_controller(tmp_path)
        tick(1)  # a first frame lands in the ring
        # Two tenants burn their budgets at once -> two page transitions
        # in one tick, but the recorder's per-tick dedup writes ONE dump.
        for k in range(10):
            for tenant in ("t-a", "t-b"):
                plane.store.accumulate(
                    S_GUARANTEE_BAD, 5.0, {"tenant": tenant}
                )
                plane.store.accumulate(
                    S_GUARANTEE_CHECKS, 10.0, {"tenant": tenant}
                )
        tick(2)
        pages = [t for t in plane.ledger.transitions
                 if t["severity"] == "page" and t["state"] == "firing"]
        assert len(pages) == 2
        dumps = [f for f in os.listdir(tmp_path)
                 if f.startswith("flight_slo_page_guarantee")]
        assert len(dumps) == 1
        payload = json.loads((tmp_path / dumps[0]).read_text())
        assert payload["reason"].startswith("slo_page_guarantee")
        assert payload["violations"]
        assert "burning at" in payload["violations"][0]

    def test_no_dump_without_page(self, tmp_path):
        ctrl, plane, tick = self._paged_controller(tmp_path)
        tick(1)
        tick(2)
        assert not [f for f in os.listdir(tmp_path)
                    if f.startswith("flight_slo")]
