"""Structured logging: JSON records, configuration, library silence."""

import io
import json
import logging

import pytest

from repro.obs.logging import (
    JsonFormatter,
    configure_logging,
    get_logger,
    reset_logging,
)


@pytest.fixture(autouse=True)
def clean_logging():
    yield
    reset_logging()


class TestJsonFormatter:
    def test_extra_fields_lift_to_top_level(self):
        record = logging.LogRecord(
            "repro.controller", logging.WARNING, __file__, 1,
            "vcpu %s degraded", ("0",), None,
        )
        record.path = "/machine.slice/vm-0/vcpu0"
        record.tick = 7
        payload = json.loads(JsonFormatter().format(record))
        assert payload["msg"] == "vcpu 0 degraded"
        assert payload["level"] == "warning"
        assert payload["logger"] == "repro.controller"
        assert payload["path"] == "/machine.slice/vm-0/vcpu0"
        assert payload["tick"] == 7

    def test_exception_included(self):
        try:
            raise ValueError("nope")
        except ValueError:
            record = logging.LogRecord(
                "repro", logging.ERROR, __file__, 1, "bad", (), True
            )
            import sys

            record.exc_info = sys.exc_info()
        payload = json.loads(JsonFormatter().format(record))
        assert "ValueError: nope" in payload["exc"]


class TestConfigureLogging:
    def test_json_stream_end_to_end(self):
        stream = io.StringIO()
        configure_logging("debug", "json", stream=stream)
        get_logger("repro.faults").debug(
            "fault fired: %s", "freeze", extra={"target": "/x", "tick": 3}
        )
        payload = json.loads(stream.getvalue())
        assert payload["msg"] == "fault fired: freeze"
        assert payload["target"] == "/x"
        assert payload["tick"] == 3

    def test_reconfigure_replaces_handler(self):
        a = configure_logging("info", "console", stream=io.StringIO())
        b = configure_logging("info", "console", stream=io.StringIO())
        root = logging.getLogger("repro")
        real = [
            h for h in root.handlers
            if not isinstance(h, logging.NullHandler)
        ]
        assert real == [b]
        assert a not in root.handlers

    def test_level_filters(self):
        stream = io.StringIO()
        configure_logging("warning", "console", stream=stream)
        log = get_logger("repro.something")
        log.info("quiet")
        log.warning("loud")
        out = stream.getvalue()
        assert "quiet" not in out
        assert "loud" in out

    def test_bad_inputs_raise(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging("shout")
        with pytest.raises(ValueError, match="unknown log format"):
            configure_logging("info", "xml")

    def test_reset_restores_silent_default(self):
        configure_logging("debug", "console", stream=io.StringIO())
        reset_logging()
        root = logging.getLogger("repro")
        assert root.propagate is True
        assert all(isinstance(h, logging.NullHandler) for h in root.handlers)
