"""Engine-agnostic observability: both engines write the same ledger."""

import pytest

from repro.checking.fuzz import generate_trace
from repro.checking.trace import ENGINES, _Replica
from repro.obs import Observability, ObsConfig


def ledger_for(trace, engine):
    """Replay one fuzzed scenario under ``engine`` with a hub attached."""
    replica = _Replica(trace, engine)
    obs = Observability.attach(
        replica.controller,
        ObsConfig(tracing=False, ledger_ring_ticks=256, flight_recorder_ticks=8),
    )
    ticks = 0
    for event in trace.events:
        if event.get("kind") != "tick":
            replica.apply(event)
            continue
        ticks += 1
        report, violations = replica.tick(float(ticks))
        assert violations == []
    return obs.ledger.ticks


@pytest.mark.parametrize("seed", [11, 23])
def test_fuzzed_ledgers_identical_across_engines(seed):
    # Fifty fuzzed ticks of VM churn and demand shifts; restarts are
    # off because a restart rebuilds the controller under the hub.
    trace = generate_trace(
        seed, ticks=50, max_vms=5, faults=False, restarts=False, engine="both"
    )
    ledgers = {engine: ledger_for(trace, engine) for engine in ENGINES}
    scalar, vectorized = ledgers["scalar"], ledgers["vectorized"]
    assert len(scalar) == len(vectorized) == trace.ticks
    for a, b in zip(scalar, vectorized):
        meta_a = {k: v for k, v in a["meta"].items() if k != "engine"}
        meta_b = {k: v for k, v in b["meta"].items() if k != "engine"}
        assert meta_a == meta_b
        assert a["decisions"] == b["decisions"]
    assert {e["meta"]["engine"] for e in scalar} == {"scalar"}
    assert {e["meta"]["engine"] for e in vectorized} == {"vectorized"}
