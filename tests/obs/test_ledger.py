"""Ledger arithmetic, ``repro explain`` rendering and the CLI path."""

import pytest

from repro.cli import main
from repro.core.units import guaranteed_cycles
from repro.obs import ObsConfig, recompute_allocation
from repro.obs.ledger import (
    DecisionLedger,
    explain,
    explain_from_entries,
    load_jsonl,
    lookup,
)
from tests.obs.conftest import drive_host

TICKS = 8


@pytest.fixture(scope="module")
def driven():
    _, ctrl, obs = drive_host(TICKS)
    return ctrl, obs


class TestLedgerArithmetic:
    @pytest.mark.parametrize("engine", ["scalar", "vectorized"])
    def test_recompute_is_bit_exact(self, engine):
        _, ctrl, obs = drive_host(TICKS, engine=engine)
        assert len(obs.ledger.ticks) == TICKS
        for entry in obs.ledger.ticks:
            p_us = entry["meta"]["p_us"]
            assert entry["decisions"], "busy host must enforce every tick"
            for d in entry["decisions"]:
                assert recompute_allocation(d, p_us) == d["allocation"]

    def test_ledger_matches_report_and_oracles(self):
        # The inline invariant catalogue independently recomputes the
        # same equations every tick; a clean armed run plus bit-exact
        # recompute means ledger and oracle arithmetic agree.
        _, ctrl, obs = drive_host(
            TICKS, config_overrides={"check_invariants": True}
        )
        assert ctrl.invariant_checker.violations_total == 0
        assert ctrl.invariant_checker.checks_total == TICKS
        for report, entry in zip(ctrl.reports, obs.ledger.ticks):
            recorded = {d["path"]: d["allocation"] for d in entry["decisions"]}
            assert recorded == report.allocations

    def test_eq2_guarantee_recorded(self, driven):
        ctrl, obs = driven
        cfg = ctrl.config
        for entry in obs.ledger.ticks:
            for d in entry["decisions"]:
                assert d["guarantee"] == guaranteed_cycles(
                    cfg.period_s, d["vfreq"], ctrl.fmax_mhz
                )

    def test_wallet_conservation_in_meta(self, driven):
        _, obs = driven
        prev = None
        for entry in obs.ledger.ticks:
            meta = entry["meta"]
            if prev is not None:
                assert meta["wallets_before"] == prev
            prev = meta["wallets_after"]

    def test_quota_us_matches_enforcer(self, driven):
        ctrl, obs = driven
        entry = obs.ledger.ticks[-1]
        for d in entry["decisions"]:
            assert d["quota_us"] == ctrl.enforcer.quota_us(d["allocation"])


class TestLookupAndExplain:
    def test_lookup_finds_every_decision(self, driven):
        _, obs = driven
        meta, d = obs.ledger.lookup("vm-0", 1, 3)
        assert meta["tick"] == 3
        assert (d["vm"], d["vcpu"]) == ("vm-0", 1)

    def test_lookup_missing_returns_none(self, driven):
        _, obs = driven
        assert obs.ledger.lookup("vm-0", 9, 3) is None
        assert obs.ledger.lookup("nope", 0, 3) is None
        assert obs.ledger.lookup("vm-0", 0, 999) is None

    def test_explain_renders_the_derivation(self, driven):
        _, obs = driven
        meta, d = obs.ledger.lookup("vm-1", 0, 4)
        text = explain(meta, d)
        for marker in (
            "cpu.max derivation for vm-1/vcpu0 at tick 4",
            "[Eq. 3]", "[Eq. 2]", "[Eq. 5]", "[Alg. 1]", "[Eq. 6]",
            "stage 5  free dist",
            "cpu.max quota",
            "recomputed == recorded allocation (bit-exact)",
        ):
            assert marker in text

    def test_explain_flags_tampering(self, driven):
        _, obs = driven
        meta, d = obs.ledger.lookup("vm-1", 0, 4)
        tampered = dict(d, allocation=d["allocation"] + 1.0)
        assert "MISMATCH" in explain(meta, tampered)

    def test_explain_from_entries_keyerror_names_window(self, driven):
        _, obs = driven
        with pytest.raises(KeyError, match=r"recorded ticks: 0\.\.7"):
            explain_from_entries(obs.ledger.ticks, "vm-0", 0, 999)


class TestPersistence:
    def test_ring_is_bounded(self):
        _, _, obs = drive_host(6, obs_config=ObsConfig(ledger_ring_ticks=4))
        ticks = [e["meta"]["tick"] for e in obs.ledger.ticks]
        assert ticks == [2, 3, 4, 5]

    def test_jsonl_mirror_round_trips(self, tmp_path):
        out = str(tmp_path / "obs")
        _, _, obs = drive_host(5, obs_config=ObsConfig(out_dir=out))
        obs.close()
        entries = load_jsonl(f"{out}/ledger.jsonl")
        assert entries == obs.ledger.ticks
        assert lookup(entries, "vm-0", 0, 2) == obs.ledger.lookup("vm-0", 0, 2)

    def test_memory_only_ledger_has_no_file(self):
        ledger = DecisionLedger(ring_ticks=8)
        ledger.record_tick({"tick": 0}, [])
        assert ledger.path is None
        ledger.close()


class TestCli:
    @pytest.fixture(scope="class")
    def obs_dir(self, tmp_path_factory):
        out = str(tmp_path_factory.mktemp("obs"))
        _, _, obs = drive_host(5, obs_config=ObsConfig(out_dir=out))
        obs.close()
        return out

    def test_explain_happy_path(self, obs_dir, capsys):
        rc = main([
            "explain", "--obs-dir", obs_dir,
            "--vm", "vm-0", "--vcpu", "0", "--tick", "3",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "cpu.max derivation for vm-0/vcpu0 at tick 3" in out
        assert "bit-exact" in out

    def test_explain_unknown_tick_fails(self, obs_dir, capsys):
        rc = main([
            "explain", "--obs-dir", obs_dir,
            "--vm", "vm-0", "--vcpu", "0", "--tick", "99",
        ])
        assert rc == 1
        assert "recorded ticks" in capsys.readouterr().err

    def test_explain_missing_ledger_fails(self, tmp_path, capsys):
        rc = main([
            "explain", "--obs-dir", str(tmp_path),
            "--vm", "v", "--vcpu", "0", "--tick", "0",
        ])
        assert rc == 2
