"""The SLO plane is a pure observer, and its alerts are deterministic.

Two contracts, both PR-5-style hard gates:

* **transparency** — report streams are bit-identical with the plane
  (and a billing engine feeding its credit SLO) attached or detached,
  on all three engines;
* **determinism** — replaying the identical fuzz trace twice produces
  byte-identical serialized alert ledgers under the deterministic
  profile (``wallclock=False``), and every engine produces the same
  stream.
"""

import json
import random

import pytest

from repro.billing import DEFAULT_PRICE_BOOK, BillingEngine
from repro.checking import generate_trace
from repro.checking.trace import ENGINES, _compare_reports, replay
from repro.core.config import ControllerConfig
from repro.obs.slo import SLOConfig, SLOPlane
from repro.virt.template import VMTemplate
from tests.conftest import make_host

TICKS = 12


def run(engine, attach_plane):
    config = ControllerConfig.paper_evaluation(engine=engine)
    node, hv, ctrl = make_host(config=config)
    vms = []
    for k in range(3):
        vfreq = 500.0 + 200.0 * k
        vm = hv.provision(VMTemplate(f"t{k}", vcpus=1, vfreq_mhz=vfreq),
                          f"vm-{k}")
        ctrl.register_vm(vm.name, vfreq, tenant=f"tenant-{k % 2}")
        vms.append(vm)
    plane = None
    if attach_plane:
        BillingEngine.attach(ctrl)
        plane = SLOPlane.attach(ctrl)
    rng = random.Random(99)
    for t in range(TICKS):
        for vm in vms:
            vm.set_uniform_demand(rng.random())
        node.step(1.0)
        ctrl.tick(float(t))
    return ctrl, plane


@pytest.mark.parametrize("engine", list(ENGINES))
def test_reports_identical_with_and_without_plane(engine):
    bare, _ = run(engine, attach_plane=False)
    observed, plane = run(engine, attach_plane=True)
    # The plane really ingested: per-tenant guarantee counters exist
    # and every tick was evaluated.
    assert plane.last_tick == TICKS - 1
    assert plane.store.get(
        "guarantee_checks_total", {"tenant": "tenant-0"}
    ).total == TICKS
    for t, (a, b) in enumerate(zip(bare.reports, observed.reports)):
        diffs = _compare_reports(a, b, ("bare", "slo"), float(t))
        assert diffs == [], [str(v) for v in diffs]
        assert a.allocations == b.allocations
        assert a.free_shares == b.free_shares
        assert [s.consumed_cycles for s in a.samples] == [
            s.consumed_cycles for s in b.samples
        ]


def test_config_attached_plane_is_wired_and_transparent():
    from repro.obs import ObsConfig

    bare, _ = run("vectorized", attach_plane=False)
    config = ControllerConfig.paper_evaluation(
        engine="vectorized",
        observability=ObsConfig(slo=SLOConfig()),
    )
    node, hv, ctrl = make_host(config=config)
    assert ctrl.slo is not None  # declarative wiring worked
    vms = []
    for k in range(3):
        vfreq = 500.0 + 200.0 * k
        vm = hv.provision(VMTemplate(f"t{k}", vcpus=1, vfreq_mhz=vfreq),
                          f"vm-{k}")
        ctrl.register_vm(vm.name, vfreq, tenant=f"tenant-{k % 2}")
        vms.append(vm)
    rng = random.Random(99)
    for t in range(TICKS):
        for vm in vms:
            vm.set_uniform_demand(rng.random())
        node.step(1.0)
        ctrl.tick(float(t))
    assert ctrl.slo.last_tick == TICKS - 1
    for t, (a, b) in enumerate(zip(bare.reports, ctrl.reports)):
        assert _compare_reports(a, b, ("bare", "configured"), float(t)) == []


def _replay_with_plane(trace, engines):
    """One attached replay; returns (result, planes-by-engine)."""
    planes = {}
    billing = {}

    def attach(controller, engine):
        bill = billing.get(engine)
        if bill is None:
            bill = billing[engine] = BillingEngine(DEFAULT_PRICE_BOOK)
        controller.billing = bill
        plane = planes.get(engine)
        if plane is None:
            plane = planes[engine] = SLOPlane(SLOConfig(wallclock=False))
        controller.slo = plane

    result = replay(trace, engines=engines, stop_at_first=False,
                    collect_reports=True, attach=attach)
    return result, planes


def _stream(plane):
    return "\n".join(
        json.dumps(t, sort_keys=True) for t in plane.ledger.transitions
    )


class TestAlertDeterminism:
    """Seed 0's fuzz trace (fault plan included) produces real alert
    traffic; the stream must be reproducible byte for byte."""

    ENGINES_UNDER_TEST = ("scalar", "vectorized", "bulk")

    @pytest.fixture(scope="class")
    def fuzz_run(self):
        trace = generate_trace(0, ticks=80, tenants=3)
        return trace, _replay_with_plane(trace, self.ENGINES_UNDER_TEST)

    def test_trace_produces_alert_traffic(self, fuzz_run):
        _, (result, planes) = fuzz_run
        assert not result.violations
        assert planes["scalar"].ledger.transitions  # non-trivial gate

    def test_streams_identical_across_engines(self, fuzz_run):
        _, (_, planes) = fuzz_run
        streams = {e: _stream(p) for e, p in planes.items()}
        assert streams["vectorized"] == streams["scalar"]
        assert streams["bulk"] == streams["scalar"]

    def test_replaying_twice_is_byte_identical(self, fuzz_run):
        trace, (_, first) = fuzz_run
        _, second = _replay_with_plane(trace, ("vectorized",))
        assert _stream(second["vectorized"]) == _stream(first["vectorized"])

    def test_attached_replay_reports_match_detached(self, fuzz_run):
        trace, (attached, _) = fuzz_run
        detached = replay(trace, engines=("vectorized",),
                          stop_at_first=False, collect_reports=True)
        pairs = zip(attached.reports["vectorized"],
                    detached.reports["vectorized"])
        for tick, (a, b) in enumerate(pairs, 1):
            assert _compare_reports(
                a, b, ("slo", "bare"), float(tick)
            ) == []
