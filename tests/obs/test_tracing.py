"""Span trees, stage histograms and the Chrome trace export."""

import json

import pytest

from repro.obs import ObsConfig
from repro.obs.hub import STAGES
from repro.obs.tracing import (
    Histogram,
    JsonlSink,
    RingSink,
    Tracer,
    chrome_trace_events,
    spans_from_jsonl,
    write_chrome_trace,
)
from tests.obs.conftest import drive_host

TICKS = 6


@pytest.fixture(scope="module")
def traced():
    _, ctrl, obs = drive_host(TICKS)
    return ctrl, obs


class TestSpanTree:
    def test_one_trace_per_tick_monotone(self, traced):
        _, obs = traced
        assert obs.ring.trace_ids() == list(range(TICKS))

    def test_root_span_shape(self, traced):
        ctrl, obs = traced
        for tick in obs.ring.trace_ids():
            spans = obs.ring.by_trace(tick)
            roots = [s for s in spans if s.parent_id is None]
            assert len(roots) == 1
            root = roots[0]
            assert root.name == "tick"
            assert root.attrs["engine"] == ctrl.config.engine
            assert root.attrs["vcpus"] == 4  # 2 VMs x 2 vCPUs

    def test_six_stages_in_paper_order(self, traced):
        _, obs = traced
        spans = obs.ring.by_trace(3)
        root = next(s for s in spans if s.parent_id is None)
        stages = [s for s in spans if s.name.startswith("stage:")]
        assert [s.name for s in stages] == [f"stage:{st}" for st in STAGES]
        for s in stages:
            assert s.parent_id == root.span_id
        # Stages tile the root span: contiguous, summing to its duration.
        cursor = root.start_us
        for s in stages:
            assert s.start_us == pytest.approx(cursor, abs=1e-6)
            cursor += s.duration_us
        assert cursor - root.start_us == pytest.approx(
            root.duration_us, rel=1e-9
        )

    def test_vm_and_vcpu_spans_nest(self, traced):
        _, obs = traced
        spans = obs.ring.by_trace(2)
        root = next(s for s in spans if s.parent_id is None)
        vm_spans = {s.name: s for s in spans if s.name.startswith("vm:")}
        vcpu_spans = [s for s in spans if s.name.startswith("vcpu:")]
        assert set(vm_spans) == {"vm:vm-0", "vm:vm-1"}
        assert len(vcpu_spans) == 4
        for s in vm_spans.values():
            assert s.parent_id == root.span_id
            assert s.attrs["vcpus"] == 2
        for s in vcpu_spans:
            vm = s.name.split(":", 1)[1].split("/", 1)[0]
            assert s.parent_id == vm_spans[f"vm:{vm}"].span_id
            assert s.attrs["allocation"] is not None

    def test_per_vcpu_spans_can_be_disabled(self):
        _, _, obs = drive_host(3, obs_config=ObsConfig(per_vcpu_spans=False))
        names = {s.name.split(":", 1)[0] for s in obs.ring.spans}
        assert names == {"tick", "stage"}


class TestHistograms:
    def test_every_stage_observed_once_per_tick(self, traced):
        _, obs = traced
        assert set(obs.tracer.histograms) == set(STAGES)
        for hist in obs.tracer.histograms.values():
            assert hist.count == TICKS
            assert hist.sum >= 0.0

    def test_cumulative_is_monotone_and_bounded(self):
        hist = Histogram()
        for v in (1e-6, 2e-5, 5e-4, 0.5, 100.0):
            hist.observe(v)
        cum = hist.cumulative()
        assert cum == sorted(cum)
        assert hist.count == 5
        # 100.0 exceeds every bound: it only lands in +Inf (the count).
        assert cum[-1] == 4


class TestSinksAndExport:
    def test_ring_is_bounded(self):
        ring = RingSink(maxlen=3)
        tracer = Tracer([ring])
        for i in range(10):
            tracer.record(
                "s", trace_id=i, parent_id=None, start_us=0.0, duration_us=1.0
            )
        assert len(ring.spans) == 3
        assert [s.trace_id for s in ring.spans] == [7, 8, 9]

    def test_jsonl_round_trip(self, tmp_path, traced):
        _, obs = traced
        path = str(tmp_path / "spans.jsonl")
        sink = JsonlSink(path)
        for span in obs.ring.spans:
            sink.on_span(span)
        sink.close()
        loaded = spans_from_jsonl(path)
        assert [s.to_dict() for s in loaded] == [
            s.to_dict() for s in obs.ring.spans
        ]

    def test_chrome_trace_events_shape(self, traced):
        _, obs = traced
        events = chrome_trace_events(obs.ring.spans)
        assert len(events) == len(obs.ring.spans)
        for ev, span in zip(events, obs.ring.spans):
            assert ev["ph"] == "X"
            assert ev["name"] == span.name
            assert ev["args"]["trace_id"] == span.trace_id
            assert ev["dur"] >= 0.0

    def test_write_chrome_trace_is_loadable(self, tmp_path, traced):
        _, obs = traced
        path = write_chrome_trace(obs.ring.spans, str(tmp_path / "t.json"))
        with open(path) as fh:
            payload = json.load(fh)
        assert payload["displayTimeUnit"] == "ms"
        assert len(payload["traceEvents"]) == len(obs.ring.spans)

    def test_span_context_manager_measures(self):
        ring = RingSink()
        tracer = Tracer([ring])
        with tracer.span("stage:manual", trace_id=9, samples=3) as attrs:
            attrs["extra"] = True
        (span,) = ring.spans
        assert span.name == "stage:manual"
        assert span.attrs == {"samples": 3, "extra": True}
        assert span.duration_us >= 0.0
        assert tracer.histograms["manual"].count == 1
