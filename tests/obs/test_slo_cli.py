"""CLI coverage: ``repro slo``, ``repro explain --alert``, and the
SLO/billing/rebalance composition behind ``repro serve-metrics``."""

import json
import os

import pytest

from repro.cli import main
from repro.obs.slo import SLOConfig, SLOPlane
from repro.obs.tsdb import S_GUARANTEE_BAD, S_GUARANTEE_CHECKS


class TestSloEval:
    def test_green_run_with_artefacts(self, tmp_path, capsys):
        out_dir = tmp_path / "slo-artefacts"
        rc = main(["slo", "eval", "--seeds", "1", "--ticks", "25",
                   "--engine", "scalar", "--out", str(out_dir)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "seed 0:" in out
        assert "alert transition(s)" in out
        assert "checks: cross-engine, replay-determinism, transparency" in out
        assert "[ok]" in out
        assert (out_dir / "alerts_seed0.jsonl").exists()
        summary = json.loads((out_dir / "summary.json").read_text())
        assert summary["failures"] == 0
        assert summary["seeds"][0]["engines"] == ["scalar"]
        assert summary["seeds"][0]["problems"] == []

    def test_fault_seed_yields_alert_traffic(self, tmp_path, capsys):
        """Seed 0 x 80 ticks includes a fault plan that actually fires
        alerts — the ledger artefact carries real transitions that
        round-trip through the JSON stream."""
        out_dir = tmp_path / "out"
        rc = main(["slo", "eval", "--seeds", "1", "--ticks", "80",
                   "--engine", "scalar", "--no-determinism",
                   "--no-transparency", "--out", str(out_dir)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "checks: cross-engine" in out
        lines = (out_dir / "alerts_seed0.jsonl").read_text().splitlines()
        assert lines
        for line in lines:
            entry = json.loads(line)
            assert entry["state"] in ("firing", "resolved")
            assert entry["severity"] in ("page", "ticket")
            assert entry["tick"] >= 1


class TestSloWatch:
    def test_dashboard_and_ledger(self, tmp_path, capsys):
        out_dir = tmp_path / "watch"
        rc = main(["slo", "watch", "--nodes", "2", "--vms", "2",
                   "--ticks", "12", "--every", "6", "--seed", "42",
                   "--out", str(out_dir)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "SLO dashboard @ tick 6" in out
        assert "SLO dashboard @ tick 12" in out
        assert "guarantee" in out and "tick_deadline" in out
        assert "budget left" in out
        assert "alert ledger:" in out
        assert (out_dir / "alerts.jsonl").exists()


def _write_ledger(out_dir):
    """A plane with one page-worthy guarantee burn, ledger on disk."""
    plane = SLOPlane(SLOConfig(wallclock=False, anomaly=None,
                               out_dir=str(out_dir)))
    for tick in range(1, 11):
        plane.store.accumulate(S_GUARANTEE_BAD, 5.0, {"tenant": "t0"})
        plane.store.accumulate(S_GUARANTEE_CHECKS, 10.0, {"tenant": "t0"})
        plane.evaluate(tick, t=float(tick))
    plane.close()
    assert os.path.exists(os.path.join(str(out_dir), "alerts.jsonl"))


class TestExplainAlert:
    def test_rederivation_from_obs_dir(self, tmp_path, capsys):
        _write_ledger(tmp_path)
        rc = main(["explain", "--alert", "guarantee",
                   "--obs-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "guarantee" in out
        assert "burn" in out
        assert "MISMATCH" not in out

    def test_unknown_slo_lists_recorded_names(self, tmp_path, capsys):
        _write_ledger(tmp_path)
        rc = main(["explain", "--alert", "nope", "--obs-dir",
                   str(tmp_path)])
        err = capsys.readouterr().err
        assert rc == 1
        assert "guarantee" in err  # the recorded names are suggested

    def test_missing_ledger_is_usage_error(self, tmp_path, capsys):
        rc = main(["explain", "--alert", "guarantee",
                   "--obs-dir", str(tmp_path / "empty")])
        err = capsys.readouterr().err
        assert rc == 2
        assert "no alert ledger" in err


class TestServeMetricsComposition:
    @staticmethod
    def _families(out):
        for line in out.splitlines():
            if "self-test ok" in line:
                return int(line.split("families")[0].split(",")[-1].strip())
        raise AssertionError(f"no self-test verdict in: {out!r}")

    def test_self_test_single_node(self, capsys):
        """rc 0 means the in-command assertions saw every SLO, billing
        and controller family on the scrape; 17 families total."""
        rc = main(["serve-metrics", "--self-test"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "self-test ok" in out
        assert self._families(out) == 17

    def test_self_test_cluster_mode(self, capsys):
        """Cluster mode folds rebalance + per-node billing families on
        top of the single-node set."""
        rc = main(["serve-metrics", "--self-test", "--cluster", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "self-test ok" in out
        assert self._families(out) > 17
