"""Crash dump -> checking trace round trip, library and CLI."""

import os

import pytest

from repro.checking.invariants import InvariantViolationError
from repro.checking.trace import Trace, replay
from repro.cli import main
from repro.obs import FlightRecorder, ObsConfig, flight_dump_to_trace
from tests.obs.conftest import drive_host


@pytest.fixture(scope="module")
def dump_path(tmp_path_factory):
    """A real auto-dump: forced ledger tamper under the armed oracle."""
    out = str(tmp_path_factory.mktemp("obs"))
    node, ctrl, obs = drive_host(
        6,
        obs_config=ObsConfig(out_dir=out, tracing=False),
        config_overrides={"check_invariants": True},
    )
    ctrl.ledger.set_balance("vm-0", 1e12)
    node.step(1.0)
    with pytest.raises(InvariantViolationError):
        ctrl.tick(7.0)
    obs.close()
    (name,) = [f for f in os.listdir(out) if f.startswith("flight_")]
    return os.path.join(out, name)


class TestConversion:
    def test_events_reconstruct_the_scenario(self, dump_path):
        trace = flight_dump_to_trace(FlightRecorder.load(dump_path))
        assert trace.header["engine"] == "vectorized"
        assert trace.header["cores"] == 4
        assert trace.header["threads_per_core"] == 1
        assert trace.ticks == 7  # 6 clean frames + the violating one
        provisions = [e for e in trace.events if e["kind"] == "provision"]
        assert {e["vm"] for e in provisions} == {"vm-0", "vm-1"}
        for e in trace.events:
            if e["kind"] == "demand":
                assert 0.0 <= e["level"] <= 1.0

    def test_converted_trace_replays_clean(self, dump_path):
        # The tamper poked controller state, not the scenario: the
        # reconstructed trace replays with every oracle silent.
        trace = flight_dump_to_trace(FlightRecorder.load(dump_path))
        result = replay(trace)
        assert result.ok, [str(v) for v in result.violations]
        assert result.ticks == trace.ticks

    def test_empty_dump_rejected(self):
        with pytest.raises(ValueError, match="no frames"):
            flight_dump_to_trace({
                "meta": {"period_s": 0.1, "num_cpus": 4, "fmax_mhz": 2400.0},
                "frames": [],
            })


class TestCli:
    def test_trace_convert_round_trip(self, dump_path, tmp_path, capsys):
        out = str(tmp_path / "repro.trace")
        rc = main(["trace", "convert", dump_path, "-o", out])
        stdout = capsys.readouterr().out
        assert rc == 0
        assert out in stdout
        trace = Trace.load(out)
        assert trace.ticks == 7
        assert replay(trace).ok

    def test_trace_convert_missing_file(self, tmp_path, capsys):
        rc = main([
            "trace", "convert", str(tmp_path / "nope.json"),
            "-o", str(tmp_path / "out.trace"),
        ])
        assert rc == 2
        assert "no such flight dump" in capsys.readouterr().err
