"""EWMA/z-score detectors: warmup, hysteresis, determinism."""

import pytest

from repro.obs.anomaly import AnomalyConfig, EwmaDetector


def feed(detector, values):
    return [detector.observe(v) for v in values]


class TestDetection:
    def test_spike_fires_after_warmup(self):
        d = EwmaDetector("x", AnomalyConfig(warmup=5))
        out = feed(d, [1.0] * 10)
        assert out == [None] * 10
        assert d.observe(1000.0) == "firing"
        assert d.firing

    def test_no_fire_during_warmup(self):
        d = EwmaDetector("x", AnomalyConfig(warmup=8))
        assert feed(d, [1.0, 1.0, 1.0, 500.0]) == [None] * 4

    def test_hysteresis_resolves_only_below_band(self):
        d = EwmaDetector("x", AnomalyConfig(warmup=4, z_fire=6.0,
                                            z_resolve=2.0))
        feed(d, [10.0, 10.0, 10.0, 10.0, 10.0])
        assert d.observe(10000.0) == "firing"
        # Still near the (dragged) mean boundary: stays firing until
        # |z| drops inside the resolve band.
        transitions = feed(d, [10.0] * 20)
        states = [t for t in transitions if t is not None]
        assert states == ["resolved"]
        assert not d.firing

    def test_first_observation_seeds_mean(self):
        d = EwmaDetector("x")
        assert d.observe(42.0) is None
        assert d.mean == 42.0
        assert d.var == 0.0

    def test_constant_stream_never_divides_by_zero(self):
        d = EwmaDetector("x", AnomalyConfig(warmup=3))
        assert feed(d, [5.0] * 50) == [None] * 50


class TestDeterminism:
    def test_same_stream_same_transitions(self):
        stream = [1.0, 1.2, 0.8, 1.1] * 10 + [50.0] + [1.0] * 10
        a = EwmaDetector("x", AnomalyConfig(warmup=6))
        b = EwmaDetector("x", AnomalyConfig(warmup=6))
        assert feed(a, stream) == feed(b, stream)
        assert a.mean == b.mean and a.var == b.var and a.last_z == b.last_z

    def test_seed_picks_deterministic_floor(self):
        a = EwmaDetector("x", AnomalyConfig(seed=1))
        b = EwmaDetector("x", AnomalyConfig(seed=1))
        c = EwmaDetector("x", AnomalyConfig(seed=2))
        assert a._floor == b._floor
        assert a._floor != c._floor
        assert 1e-12 <= a._floor <= 1e-9


class TestConfigValidation:
    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            AnomalyConfig(alpha=0.0)
        with pytest.raises(ValueError):
            AnomalyConfig(alpha=1.5)

    def test_hysteresis_ordering(self):
        with pytest.raises(ValueError):
            AnomalyConfig(z_fire=2.0, z_resolve=2.0)

    def test_warmup_floor(self):
        with pytest.raises(ValueError):
            AnomalyConfig(warmup=1)
