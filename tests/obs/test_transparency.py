"""The hub must be a pure observer: reports bit-identical on or off."""

import random

import pytest

from repro.checking.trace import _compare_reports
from repro.core.config import ControllerConfig
from repro.obs import Observability, ObsConfig
from repro.virt.template import VMTemplate
from tests.conftest import make_host

TICKS = 12


def run(engine, attach_obs):
    config = ControllerConfig.paper_evaluation(engine=engine)
    node, hv, ctrl = make_host(config=config)
    vms = []
    for k in range(3):
        vfreq = 500.0 + 200.0 * k
        vm = hv.provision(VMTemplate(f"t{k}", vcpus=1, vfreq_mhz=vfreq), f"vm-{k}")
        ctrl.register_vm(vm.name, vfreq)
        vms.append(vm)
    obs = None
    if attach_obs:
        obs = Observability.attach(ctrl, ObsConfig())
    rng = random.Random(99)
    for t in range(TICKS):
        for vm in vms:
            vm.set_uniform_demand(rng.random())
        node.step(1.0)
        ctrl.tick(float(t))
    return ctrl, obs


@pytest.mark.parametrize("engine", ["scalar", "vectorized"])
def test_reports_identical_with_and_without_hub(engine):
    bare, _ = run(engine, attach_obs=False)
    hubbed, obs = run(engine, attach_obs=True)
    assert obs.ledger.ticks and obs.ring.spans  # the hub really observed
    for t, (a, b) in enumerate(zip(bare.reports, hubbed.reports)):
        diffs = _compare_reports(a, b, ("bare", "observed"), float(t))
        assert diffs == [], [str(v) for v in diffs]
        # _compare_reports skips timings/samples; pin the rest exactly.
        assert a.allocations == b.allocations
        assert a.free_shares == b.free_shares
        assert [s.consumed_cycles for s in a.samples] == [
            s.consumed_cycles for s in b.samples
        ]


def test_config_attached_hub_is_also_transparent():
    bare, _ = run("vectorized", attach_obs=False)
    config = ControllerConfig.paper_evaluation(
        engine="vectorized", observability=ObsConfig()
    )
    node, hv, ctrl = make_host(config=config)
    assert ctrl.obs is not None  # declarative wiring worked
    vms = []
    for k in range(3):
        vfreq = 500.0 + 200.0 * k
        vm = hv.provision(VMTemplate(f"t{k}", vcpus=1, vfreq_mhz=vfreq), f"vm-{k}")
        ctrl.register_vm(vm.name, vfreq)
        vms.append(vm)
    rng = random.Random(99)
    for t in range(TICKS):
        for vm in vms:
            vm.set_uniform_demand(rng.random())
        node.step(1.0)
        ctrl.tick(float(t))
    for t, (a, b) in enumerate(zip(bare.reports, ctrl.reports)):
        assert _compare_reports(a, b, ("bare", "configured"), float(t)) == []
