"""Black-box dumps: triggers, dedup, ring bounds, fault-plan shifting."""

import json
import os

import pytest

from repro.checking.invariants import InvariantViolationError
from repro.core.config import ControllerConfig
from repro.core.controller import VirtualFrequencyController
from repro.core.resilience import ResiliencePolicy
from repro.faults import FaultInjector, FaultPlan
from repro.faults.injector import ControllerCrash
from repro.faults.plan import FaultSpec
from repro.obs import FlightRecorder, Observability, ObsConfig
from repro.obs.flight_recorder import _shift_fault_plan
from repro.virt.template import VMTemplate
from tests.conftest import make_host
from tests.obs.conftest import drive_host


def make_faulty_host(plan, *, out_dir, check_invariants=False):
    """An injector-backed host with a hub attached (mirrors _Replica)."""
    node, hv, _ = make_host()
    backend = FaultInjector(plan, node.fs, node.procfs, node.sysfs)
    config = ControllerConfig.paper_evaluation(
        engine="vectorized",
        check_invariants=check_invariants,
        resilience=ResiliencePolicy(stale_sample_max_age=1, degraded_after_ticks=3),
        observability=ObsConfig(out_dir=out_dir),
    )
    ctrl = VirtualFrequencyController(
        backend,
        num_cpus=node.spec.logical_cpus,
        fmax_mhz=node.spec.fmax_mhz,
        config=config,
    )
    vms = []
    for k in range(2):
        vm = hv.provision(VMTemplate(f"t{k}", vcpus=2, vfreq_mhz=600.0), f"vm-{k}")
        ctrl.register_vm(vm.name, 600.0)
        vms.append(vm)
    return node, ctrl, vms


class TestDumpTriggers:
    def test_invariant_violation_dumps_under_active_fault_plan(self, tmp_path):
        out = str(tmp_path / "obs")
        # An armed (but not yet firing) plan: the dump must carry it.
        plan = FaultPlan(seed=3, specs=[
            FaultSpec(kind="freeze", target="*cpu.stat", start_tick=500),
        ])
        node, ctrl, vms = make_faulty_host(
            plan, out_dir=out, check_invariants=True
        )
        for t in range(4):
            for vm in vms:
                vm.set_uniform_demand(0.8)
            node.step(1.0)
            ctrl.tick(float(t))
        ctrl.ledger.set_balance("vm-0", 1e12)  # tamper: conjure credits
        node.step(1.0)
        with pytest.raises(InvariantViolationError):
            ctrl.tick(4.0)
        (dump_file,) = [f for f in os.listdir(out) if f.startswith("flight_")]
        assert dump_file == "flight_invariant_violation_tick4.json"
        dump = FlightRecorder.load(os.path.join(out, dump_file))
        assert dump["reason"] == "invariant_violation"
        assert any("ledger" in v for v in dump["violations"])
        assert dump["meta"]["fault_plan"]["seed"] == 3
        assert len(dump["frames"]) == 5
        ctrl.obs.close()

    def test_injected_stage_crash_dumps(self, tmp_path):
        out = str(tmp_path / "obs")
        plan = FaultPlan(seed=0, specs=[
            FaultSpec(kind="crash", target="stage:monitor",
                      start_tick=3, end_tick=4),
        ])
        node, ctrl, vms = make_faulty_host(plan, out_dir=out)
        with pytest.raises(ControllerCrash):
            for t in range(6):
                for vm in vms:
                    vm.set_uniform_demand(0.5)
                node.step(1.0)
                ctrl.tick(float(t))
        (dump_file,) = [f for f in os.listdir(out) if f.startswith("flight_")]
        dump = FlightRecorder.load(os.path.join(out, dump_file))
        assert dump["reason"] == "tick_error_ControllerCrash"
        assert "stage:monitor" in dump["violations"][0]
        assert len(dump["frames"]) == 3  # ticks 0..2 completed
        ctrl.obs.close()

    def test_node_error_trigger_is_idempotent_with_tick_error(self):
        _, ctrl, obs = drive_host(3)
        first = obs.on_tick_error(ctrl, RuntimeError("boom"), 2)
        again = obs.on_node_error("node-0", RuntimeError("boom"))
        assert first is not None
        assert again == first
        assert obs.recorder.dumps_written == 1
        os.unlink(first)

    def test_crash_before_first_tick_dumps_nothing(self):
        _, ctrl, obs = drive_host(0)
        assert obs.on_tick_error(ctrl, RuntimeError("early"), 0) is None


class TestRecorderMechanics:
    def test_ring_keeps_last_n_frames(self):
        _, _, obs = drive_host(10, obs_config=ObsConfig(flight_recorder_ticks=4))
        ticks = [f["tick"] for f in obs.recorder.frames]
        assert ticks == [6, 7, 8, 9]

    def test_dump_dedupes_per_newest_tick(self, tmp_path):
        rec = FlightRecorder(max_ticks=4, dump_dir=str(tmp_path))
        rec.record({"tick": 7})
        a = rec.dump("first")
        b = rec.dump("second")
        assert a == b
        assert rec.dumps_written == 1
        rec.record({"tick": 8})
        c = rec.dump("third")
        assert c != a
        assert rec.dumps_written == 2

    def test_load_rejects_foreign_files(self, tmp_path):
        bad = tmp_path / "x.json"
        bad.write_text(json.dumps({"kind": "something_else"}))
        with pytest.raises(ValueError, match="not a flight-recorder dump"):
            FlightRecorder.load(str(bad))
        stale = tmp_path / "y.json"
        stale.write_text(json.dumps({"kind": "flight_dump", "version": 99}))
        with pytest.raises(ValueError, match="unsupported flight dump version"):
            FlightRecorder.load(str(stale))

    def test_max_ticks_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(max_ticks=0)


class TestFaultPlanShifting:
    def test_windows_slide_to_the_dump_origin(self):
        plan = {"seed": 5, "specs": [
            {"kind": "crash", "start_tick": 12, "end_tick": 15},
        ]}
        shifted = _shift_fault_plan(plan, 10)
        assert shifted["seed"] == 5
        assert shifted["specs"][0]["start_tick"] == 2
        assert shifted["specs"][0]["end_tick"] == 5

    def test_past_windows_drop_and_straddlers_clamp(self):
        plan = {"seed": 0, "specs": [
            {"kind": "freeze", "start_tick": 0, "end_tick": 8},    # past
            {"kind": "crash", "start_tick": 5, "end_tick": 12},    # straddles
            {"kind": "read_error", "start_tick": 3, "end_tick": None},
        ]}
        shifted = _shift_fault_plan(plan, 10)
        assert [s["kind"] for s in shifted["specs"]] == ["crash", "read_error"]
        assert shifted["specs"][0] == {
            "kind": "crash", "start_tick": 0, "end_tick": 2,
        }
        assert shifted["specs"][1]["start_tick"] == 0
        assert shifted["specs"][1]["end_tick"] is None

    def test_all_past_means_no_plan(self):
        plan = {"seed": 0, "specs": [
            {"kind": "freeze", "start_tick": 0, "end_tick": 2},
        ]}
        assert _shift_fault_plan(plan, 50) is None
