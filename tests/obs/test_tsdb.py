"""The SLO plane's time-series store: rings, ladder, windows, ingest."""

import numpy as np
import pytest

from repro.obs.tsdb import (
    S_BACKEND_ERRORS,
    S_BACKEND_OPS,
    S_GUARANTEE_BAD,
    S_GUARANTEE_CHECKS,
    S_TICK_SECONDS,
    Series,
    SeriesStore,
)


class TestSeriesLadder:
    def test_raw_ring_wraps_at_capacity(self):
        s = Series("x", capacity=8)
        for v in range(20):
            s.append(float(v))
        values, per_point = s.tail(8)
        assert per_point == 1
        assert values.tolist() == [12.0, 13.0, 14.0, 15.0, 16.0, 17.0,
                                   18.0, 19.0]
        assert s.last == 19.0
        assert len(s) == 8

    def test_downsample_is_mean_over_fanout(self):
        s = Series("x", capacity=4, fanout=4)
        for v in range(32):
            s.append(float(v))
        # Raw ring covers only 4 ticks; a 16-tick window must come from
        # level 1, whose points are means over 4 consecutive raw ticks.
        values, per_point = s.tail(16)
        assert per_point == 4
        assert values.tolist() == [
            np.mean([16, 17, 18, 19]),
            np.mean([20, 21, 22, 23]),
            np.mean([24, 25, 26, 27]),
            np.mean([28, 29, 30, 31]),
        ]

    def test_level2_cascade(self):
        s = Series("x", capacity=4, fanout=2, depth=3)
        for v in range(16):
            s.append(float(v))
        # Level 2 points are means over fanout**2 = 4 raw ticks.
        values, per_point = s.tail(16)
        assert per_point == 4
        assert values.tolist() == [1.5, 5.5, 9.5, 13.5]

    def test_windowed_queries(self):
        s = Series("x", capacity=64)
        for v in range(10):
            s.append(float(v))
        assert s.avg(4) == pytest.approx(7.5)
        assert s.rate(10) == pytest.approx(1.0)      # +1 per tick
        assert s.increase(10) == pytest.approx(9.0)
        assert s.quantile(0.5, 10) == pytest.approx(4.5)
        assert s.quantile(1.0, 10) == pytest.approx(9.0)

    def test_empty_and_single_point_queries_are_zero(self):
        s = Series("x", capacity=8)
        assert s.avg(4) == 0.0
        assert s.rate(4) == 0.0
        assert s.quantile(0.9, 4) == 0.0
        assert s.last == 0.0
        s.append(5.0)
        assert s.rate(4) == 0.0  # one point: no measurable increase
        assert s.avg(4) == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Series("x", capacity=1)
        with pytest.raises(ValueError):
            Series("x", fanout=1)
        with pytest.raises(ValueError):
            Series("x").tail(0)
        with pytest.raises(ValueError):
            Series("x").quantile(1.5, 4)

    def test_determinism_bit_identical(self):
        a = Series("x", capacity=16, fanout=4)
        b = Series("x", capacity=16, fanout=4)
        values = [0.1 * k * ((-1) ** k) for k in range(200)]
        for v in values:
            a.append(v)
            b.append(v)
        for window in (4, 16, 64, 200):
            va, _ = a.tail(window)
            vb, _ = b.tail(window)
            assert va.tolist() == vb.tolist()


class TestSeriesStore:
    def test_keying_by_name_and_labels(self):
        store = SeriesStore(capacity=16)
        store.append("m", 1.0, {"tenant": "a"})
        store.append("m", 2.0, {"tenant": "b"})
        store.append("m", 3.0, {"tenant": "a"})
        assert store.get("m", {"tenant": "a"}).last == 3.0
        assert store.get("m", {"tenant": "b"}).last == 2.0
        assert store.get("m", {"tenant": "zz"}) is None
        assert len(store.select("m")) == 2
        assert len(store) == 2

    def test_label_order_is_canonical(self):
        store = SeriesStore(capacity=16)
        store.append("m", 1.0, {"a": "1", "b": "2"})
        store.append("m", 2.0, {"b": "2", "a": "1"})
        assert len(store) == 1
        assert store.get("m", {"b": "2", "a": "1"}).last == 2.0

    def test_accumulate_builds_monotone_counter(self):
        store = SeriesStore(capacity=16)
        for delta in (1.0, 0.0, 2.5, 3.0):
            store.accumulate("c", delta)
        series = store.get("c")
        values, _ = series.tail(4)
        assert values.tolist() == [1.0, 1.0, 3.5, 6.5]
        assert store.increase("c", 4) == pytest.approx(5.5)

    def test_store_windowed_queries_tolerate_missing_series(self):
        store = SeriesStore()
        assert store.avg("nope", 8) == 0.0
        assert store.rate("nope", 8) == 0.0
        assert store.increase("nope", 8) == 0.0
        assert store.quantile("nope", 0.5, 8) == 0.0


class _FakeTimings:
    def __init__(self, total):
        self.total = total
        self.monitor = self.estimate = self.credits = total / 6.0
        self.auction = self.distribute = self.enforce = total / 6.0


class _FakeSample:
    def __init__(self, vm, path):
        self.vm_name = vm
        self.cgroup_path = path


class _FakeDecision:
    def __init__(self, estimate):
        self.estimate_cycles = estimate


class _FakeReport:
    def __init__(self, samples, allocations, decisions):
        self.timings = _FakeTimings(0.01)
        self.samples = samples
        self.allocations = allocations
        self.decisions = decisions
        self.degraded = []
        self.t = 1.0


class _FakeController:
    def __init__(self, tenants, guarantees):
        self._vm_tenant = tenants
        self._guarantee = guarantees


class TestIngestReport:
    def test_sla_criterion_matches_billing_meter(self):
        """bad = alloc < g and (estimate is None or estimate >= g)."""
        store = SeriesStore(capacity=32)
        ctrl = _FakeController(
            tenants={"vm-0": "a", "vm-1": "a", "vm-2": "b"},
            guarantees={"vm-0": 100.0, "vm-1": 100.0, "vm-2": 100.0},
        )
        report = _FakeReport(
            samples=[_FakeSample("vm-0", "/cg0"), _FakeSample("vm-1", "/cg1"),
                     _FakeSample("vm-2", "/cg2")],
            allocations={"/cg0": 50.0, "/cg1": 120.0, "/cg2": 90.0},
            decisions={
                "/cg0": _FakeDecision(150.0),   # wanted >= g, got < g: bad
                "/cg1": _FakeDecision(150.0),   # got >= g: good
                "/cg2": _FakeDecision(80.0),    # demanded < g: not bad
            },
        )
        bad, total = store.ingest_report(ctrl, report, node="n0")
        assert (bad, total) == (1, 3)
        assert store.increase  # counters landed per tenant
        assert store.get(S_GUARANTEE_BAD, {"tenant": "a"}).last == 1.0
        assert store.get(S_GUARANTEE_CHECKS, {"tenant": "a"}).last == 2.0
        assert store.get(S_GUARANTEE_BAD, {"tenant": "b"}).last == 0.0
        assert store.get(S_TICK_SECONDS, {"node": "n0"}).last == \
            pytest.approx(0.01)

    def test_vm_without_allocation_or_guarantee_skipped(self):
        store = SeriesStore(capacity=32)
        ctrl = _FakeController(tenants={"vm-0": "a"}, guarantees={})
        report = _FakeReport(
            samples=[_FakeSample("vm-0", "/cg0")],
            allocations={}, decisions={},
        )
        assert store.ingest_report(ctrl, report) == (0, 0)


class _FakeStats:
    def __init__(self, d):
        self._d = d

    def as_dict(self):
        return dict(self._d)


class TestIngestBackendStats:
    def test_error_and_ops_split(self):
        store = SeriesStore(capacity=8)
        store.ingest_backend_stats(_FakeStats({
            "fs_reads": 10, "fs_writes": 5,
            "read_errors": 2, "write_errors": 1,
        }), source="n0")
        assert store.get(S_BACKEND_ERRORS, {"source": "n0"}).last == 3.0
        assert store.get(S_BACKEND_OPS, {"source": "n0"}).last == 15.0


class TestIngestShardReader:
    def test_objectless_shm_ingest(self):
        from repro.sim.node_manager import NodeManager
        from repro.sim.shard_telemetry import (
            ShardTelemetryReader,
            ShardTelemetryWriter,
        )
        from tests.sim.test_sharded_node_manager import _build_group

        hosts = _build_group(["n0", "n1"], 3)
        manager = NodeManager(
            {nid: ctrl for nid, (_, _, ctrl) in hosts.items()}, parallel=False
        )
        writer = ShardTelemetryWriter()
        reader = ShardTelemetryReader()
        store = SeriesStore(capacity=16)
        try:
            for k in range(3):
                for node, _, _ in hosts.values():
                    node.step(1.0)
                manager.tick(float(k + 1))
                reader.update(*writer.publish(manager, float(k + 1)))
                store.ingest_shard_reader(
                    reader, shard="s0", deadline_s=1.0
                )
            # Per-node tick seconds came through the column cache, one
            # point per publish, matching the stage-column row sums.
            for node_id in ("n0", "n1"):
                series = store.get(S_TICK_SECONDS, {"node": node_id})
                assert series is not None and series.total == 3
                assert series.last > 0.0
            assert store.get(S_BACKEND_OPS, {"source": "s0"}).last > 0
            # The cache is keyed on the catalog: one group, reused.
            assert len(store._columns) == 1
            assert store.increase("tick_deadline_checks_total", 3) == \
                pytest.approx(4.0)  # 2 nodes x 2 increments visible
        finally:
            reader.close()
            writer.close(unlink=True)
            manager.close()


class TestIngestBilling:
    def test_per_tick_deltas_accumulate(self):
        class _Meter:
            tick_revenue = {1: 2.0, 2: 3.0}
            tick_credits = {2: 0.5}

        class _Engine:
            meter = _Meter()

        store = SeriesStore(capacity=8)
        store.ingest_billing(_Engine(), 1, node="n0")
        store.ingest_billing(_Engine(), 2, node="n0")
        store.ingest_billing(_Engine(), 3, node="n0")  # nothing metered
        assert store.get("revenue_usd_total", {"node": "n0"}).last == 5.0
        assert store.get("sla_credits_usd_total", {"node": "n0"}).last == 0.5


class TestIngestRebalance:
    def test_pressure_series(self):
        class _Plan:
            pressure_before_mhz = 123.5

        class _Loop:
            last_plan = _Plan()

        store = SeriesStore(capacity=8)
        store.ingest_rebalance(_Loop())
        assert store.get("rebalance_pressure_mhz").last == 123.5
        store.ingest_rebalance(type("L", (), {"last_plan": None})())
        assert store.get("rebalance_pressure_mhz").total == 1
