"""Loopback scrapes of the /metrics endpoint."""

import urllib.error
import urllib.request

import pytest

from repro.core.metrics_export import render_controller
from repro.obs.metrics_server import CONTENT_TYPE, MetricsServer
from tests.obs.conftest import drive_host


@pytest.fixture
def server():
    srv = MetricsServer(lambda: "demo_metric 1\n")
    srv.start()
    yield srv
    srv.stop()


def get(srv, path):
    base = srv.address.rsplit("/metrics", 1)[0]
    return urllib.request.urlopen(f"{base}{path}", timeout=5)


class TestEndpoint:
    def test_scrape_ok(self, server):
        resp = get(server, "/metrics")
        assert resp.status == 200
        assert resp.headers["Content-Type"] == CONTENT_TYPE
        assert resp.read().decode() == "demo_metric 1\n"

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(server, "/anything-else")
        assert excinfo.value.code == 404

    def test_render_failure_is_500(self):
        def broken():
            raise RuntimeError("render exploded")

        srv = MetricsServer(broken)
        srv.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                get(srv, "/metrics")
            assert excinfo.value.code == 500
        finally:
            srv.stop()


class TestLiveController:
    def test_scrape_of_observed_controller(self):
        _, ctrl, obs = drive_host(5)
        srv = MetricsServer(lambda: render_controller(ctrl))
        srv.start()
        try:
            body = get(srv, "/metrics").read().decode()
        finally:
            srv.stop()
        assert "vfreq_vcpu_consumed_cycles" in body
        assert "vfreq_stage_seconds" in body
        # The span histograms ride along because the hub is attached.
        assert 'vfreq_span_seconds_bucket{le="+Inf",stage="auction"} 5' in body
        for family in ("vfreq_span_seconds",):
            help_lines = [
                l for l in body.splitlines()
                if l.startswith(f"# HELP {family} ")
            ]
            assert len(help_lines) == 1
