"""Shared driver for the observability tests: a busy mini-host."""

from __future__ import annotations

import random

from repro.core.config import ControllerConfig
from repro.obs import Observability, ObsConfig
from repro.virt.template import VMTemplate
from tests.conftest import make_host


def drive_host(
    ticks=8,
    *,
    vms=2,
    engine="vectorized",
    obs_config=None,
    seed=7,
    config_overrides=None,
):
    """Provision ``vms`` busy VMs, attach a hub, run ``ticks`` ticks.

    Returns ``(node, ctrl, obs)``; demand is seeded-random per tick so
    the auction and free-distribution stages both do real work.
    """
    overrides = dict(config_overrides or {})
    config = ControllerConfig.paper_evaluation(engine=engine, **overrides)
    node, hv, ctrl = make_host(config=config)
    vm_objs = []
    for k in range(vms):
        vfreq = 600.0 + 300.0 * k
        vm = hv.provision(VMTemplate(f"t{k}", vcpus=2, vfreq_mhz=vfreq), f"vm-{k}")
        ctrl.register_vm(vm.name, vfreq)
        vm_objs.append(vm)
    obs = Observability.attach(
        ctrl, obs_config if obs_config is not None else ObsConfig()
    )
    rng = random.Random(seed)
    for t in range(ticks):
        for vm in vm_objs:
            vm.set_uniform_demand(0.3 + 0.7 * rng.random())
        node.step(1.0)
        ctrl.tick(float(t + 1))
    return node, ctrl, obs
