"""Shared Hypothesis strategies for the property-test suites.

The earlier property tests drew one demand level and one vfreq and
stamped them across every VM; these composites generate genuinely
heterogeneous fleets (per-VM level *and* guarantee) while keeping every
drawn scenario admissible under the paper's Eq. 7 — the committed
budget Σᵢ vcpusᵢ · vfreqᵢ never exceeds host capacity, which is the
precondition for the Eq. 2 guarantee the assertions check.

CI pins ``--hypothesis-seed=0`` (see .github/workflows/ci.yml) so a red
run reproduces locally with the same flag; the ``ci`` profile lives in
``tests/conftest.py``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from hypothesis import strategies as st

from tests.conftest import TINY

#: Engine axis: every whole-loop property must hold on both hot paths.
engines = st.sampled_from(("scalar", "vectorized"))

#: One vCPU's demand as a fraction of a core.
levels = st.floats(0.0, 1.0, allow_nan=False)


@st.composite
def vm_fleets(
    draw,
    *,
    max_vms: int = 4,
    capacity_mhz: float = TINY.capacity_mhz,
    min_vfreq: float = 100.0,
    max_vfreq: float = 2300.0,
    tenants: Optional[Sequence[str]] = None,
):
    """A heterogeneous, Eq. 7-admissible fleet of single-vCPU VMs.

    Returns a non-empty list of ``(level, vfreq_mhz)`` pairs whose
    committed vfreqs sum to at most ``capacity_mhz``.  With ``tenants``
    given, returns ``(level, vfreq_mhz, tenant)`` triples instead, each
    tenant drawn independently — the earlier suites implicitly billed
    every VM to one tenant, which a per-tenant accounting bug can hide
    behind.  ``tenants=None`` draws are byte-identical to before.
    """
    n = draw(st.integers(min_value=1, max_value=max_vms))
    fleet = []
    committed = 0.0
    for _ in range(n):
        headroom = capacity_mhz - committed
        if headroom < min_vfreq:
            break
        vfreq = draw(
            st.floats(min_vfreq, min(max_vfreq, headroom), allow_nan=False)
        )
        level = draw(levels)
        committed += vfreq
        if tenants is None:
            fleet.append((level, vfreq))
        else:
            fleet.append((level, vfreq, draw(st.sampled_from(list(tenants)))))
    return fleet


@st.composite
def demand_schedules(
    draw,
    *,
    max_segments: int = 3,
    segment_len: int = 40,
    low: float = 20_000.0,
    high: float = 950_000.0,
):
    """Piecewise-constant single-vCPU demand, in cycles per period.

    Returns a list of ``(demand_cycles, iterations)`` segments — the
    generalisation of the old hand-rolled "low then step up" loop to an
    arbitrary step sequence.
    """
    n = draw(st.integers(min_value=1, max_value=max_segments))
    return [
        (draw(st.floats(low, high, allow_nan=False)), segment_len)
        for _ in range(n)
    ]
