"""Tests for VM templates (the paper's new template field)."""

import pytest

from repro.virt.template import LARGE, MEDIUM, SMALL, VMTemplate, template_by_name


class TestCatalogue:
    def test_small(self):
        assert (SMALL.vcpus, SMALL.vfreq_mhz) == (2, 500.0)

    def test_medium(self):
        assert (MEDIUM.vcpus, MEDIUM.vfreq_mhz) == (4, 1200.0)

    def test_large(self):
        assert (LARGE.vcpus, LARGE.vfreq_mhz) == (4, 1800.0)

    def test_demand_mhz(self):
        assert SMALL.demand_mhz == 1000.0
        assert MEDIUM.demand_mhz == 4800.0
        assert LARGE.demand_mhz == 7200.0

    def test_lookup(self):
        assert template_by_name("small") is SMALL
        with pytest.raises(KeyError):
            template_by_name("xlarge")


class TestValidation:
    def test_positive_vcpus(self):
        with pytest.raises(ValueError):
            VMTemplate("x", vcpus=0, vfreq_mhz=500)

    def test_positive_vfreq(self):
        with pytest.raises(ValueError):
            VMTemplate("x", vcpus=1, vfreq_mhz=0)

    def test_positive_memory(self):
        with pytest.raises(ValueError):
            VMTemplate("x", vcpus=1, vfreq_mhz=500, memory_mb=0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            SMALL.vcpus = 8
