"""Tests for the spot-instance deflation baseline (§II refs [15]-[17])."""

import pytest

from repro.sim.engine import Simulation
from repro.virt.deflation import DeflationController, MIN_FRACTION
from repro.virt.template import VMTemplate
from repro.workloads.base import attach
from repro.workloads.synthetic import ConstantWorkload
from tests.conftest import make_host

SPOT = VMTemplate("spot", vcpus=2, vfreq_mhz=1200.0)


def spot_host(n=2):
    node, hv, _ = make_host()
    ctrl = DeflationController(node.fs, fmax_mhz=node.spec.fmax_mhz)
    vms = {}
    for k in range(n):
        vm = hv.provision(SPOT, f"spot-{k}")
        attach(vm, ConstantWorkload(2, level=1.0))
        ctrl.watch(vm)
        vms[vm.name] = vm
    return node, hv, ctrl, vms


class TestDeflation:
    def test_no_reclaim_full_inflation(self):
        node, hv, ctrl, vms = spot_host()
        factors = ctrl.apply(vms)
        assert all(f == pytest.approx(1.0) for f in factors.values())

    def test_reclaim_scales_quotas_proportionally(self):
        node, hv, ctrl, vms = spot_host()
        # pool = 2 VMs x 2 vCPUs x 2400 = 9600 MHz; reclaim half
        ctrl.reclaim(4800.0)
        factors = ctrl.apply(vms)
        assert all(f == pytest.approx(0.5) for f in factors.values())
        quota = node.fs.get_quota(vms["spot-0"].vcpus[0].cgroup_path)
        assert quota.ratio() == pytest.approx(0.5)

    def test_deflation_floors_at_min_fraction(self):
        node, hv, ctrl, vms = spot_host()
        ctrl.reclaim(1e9)
        factors = ctrl.apply(vms)
        assert all(f == pytest.approx(MIN_FRACTION) for f in factors.values())

    def test_release_restores_capacity(self):
        node, hv, ctrl, vms = spot_host()
        ctrl.reclaim(4800.0)
        ctrl.apply(vms)
        ctrl.release(4800.0)
        factors = ctrl.apply(vms)
        assert all(f == pytest.approx(1.0) for f in factors.values())

    def test_restore_all_uncaps(self):
        node, hv, ctrl, vms = spot_host()
        ctrl.reclaim(4800.0)
        ctrl.apply(vms)
        ctrl.restore_all(vms)
        assert node.fs.get_quota(vms["spot-0"].vcpus[0].cgroup_path).unlimited
        assert ctrl.factor_of("spot-0") == 1.0

    def test_deflated_vm_actually_slows(self):
        node, hv, ctrl, vms = spot_host(n=1)
        sim = Simulation(node, hv, dt=0.5)
        sim.run(4.0)
        full = vms["spot-0"].total_allocated()
        ctrl.reclaim(2400.0)  # half the 1-VM pool
        ctrl.apply(vms)
        sim.run(4.0)
        deflated = vms["spot-0"].total_allocated()
        assert deflated == pytest.approx(full * 0.5, rel=0.1)

    def test_unwatched_vms_untouched(self):
        node, hv, ctrl, vms = spot_host()
        bystander = hv.provision(VMTemplate("b", vcpus=1, vfreq_mhz=400.0), "bystander")
        ctrl.reclaim(1e6)
        ctrl.apply({**vms, "bystander": bystander})
        assert node.fs.get_quota(bystander.vcpus[0].cgroup_path).unlimited

    def test_validation(self):
        node, hv, ctrl, vms = spot_host()
        with pytest.raises(ValueError):
            ctrl.reclaim(-1.0)
        with pytest.raises(ValueError):
            ctrl.release(-1.0)
        with pytest.raises(ValueError):
            DeflationController(node.fs, fmax_mhz=0.0)


class TestPaperContrast:
    def test_spot_vm_has_no_floor_guarantee(self):
        """The §II contrast: deflation can squeeze a spot VM to ~nothing,
        while the paper's controller never caps below the purchased
        guarantee while the VM is busy."""
        node, hv, ctrl, vms = spot_host()
        ctrl.reclaim(1e9)
        ctrl.apply(vms)
        quota = node.fs.get_quota(vms["spot-0"].vcpus[0].cgroup_path)
        guarantee_ratio = SPOT.vfreq_mhz / node.spec.fmax_mhz
        assert quota.ratio() < guarantee_ratio / 10
