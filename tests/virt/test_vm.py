"""Tests for VM instance objects."""

import pytest

from repro.sched.entity import SchedEntity
from repro.virt.template import SMALL
from repro.virt.vm import VCpu, VMInstance


def make_vm(name="vm", vcpus=2):
    vm = VMInstance(name=name, template=SMALL, cgroup_path=f"/machine.slice/{name}")
    for j in range(vcpus):
        ent = SchedEntity(tid=100 + j, cgroup_path=f"{vm.cgroup_path}/vcpu{j}")
        vm.vcpus.append(VCpu(index=j, tid=100 + j, cgroup_path=ent.cgroup_path, entity=ent))
    return vm


class TestVMInstance:
    def test_vfreq_comes_from_template(self):
        assert make_vm().vfreq_mhz == 500.0

    def test_tids(self):
        assert make_vm().tids() == [100, 101]

    def test_uniform_demand(self):
        vm = make_vm()
        vm.set_uniform_demand(0.7)
        assert all(v.demand == 0.7 for v in vm.vcpus)

    def test_demand_validation_propagates(self):
        with pytest.raises(ValueError):
            make_vm().set_uniform_demand(2.0)

    def test_total_allocated(self):
        vm = make_vm()
        vm.vcpus[0].entity.grant(0.25)
        vm.vcpus[1].entity.grant(0.5)
        assert vm.total_allocated() == pytest.approx(0.75)
