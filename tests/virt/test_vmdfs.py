"""Tests for the VMDFS-style predictive share baseline (§II refs)."""

import pytest

from repro.sim.engine import Simulation
from repro.virt.template import VMTemplate
from repro.virt.vmdfs import VmdfsController
from repro.workloads.base import attach
from repro.workloads.synthetic import ConstantWorkload, IdleWorkload
from tests.conftest import make_host

HUNGRY = VMTemplate("hungry", vcpus=1, vfreq_mhz=1800.0)
LIGHT = VMTemplate("light", vcpus=1, vfreq_mhz=1800.0)


def run_vmdfs(workloads, seconds=30.0):
    node, hv, _ = make_host()
    vmdfs = VmdfsController(node.fs)
    vms = {}
    for name, (template, workload) in workloads.items():
        vm = hv.provision(template, name)
        attach(vm, workload)
        vmdfs.watch(vm)
        vms[name] = vm
    sim = Simulation(node, hv, dt=0.5)
    for k in range(int(seconds * 2)):
        sim.run(0.5)
        if k % 2 == 1:
            vmdfs.tick(float(k // 2 + 1))
    return node, vms, vmdfs


class TestPrediction:
    def test_ewma_tracks_usage(self):
        node, vms, vmdfs = run_vmdfs(
            {"busy": (HUNGRY, ConstantWorkload(1, level=1.0)),
             "idle": (LIGHT, IdleWorkload(1))}
        )
        assert vmdfs.predicted_cores("busy") > 0.8
        assert vmdfs.predicted_cores("idle") < 0.1

    def test_weights_follow_predictions(self):
        node, vms, vmdfs = run_vmdfs(
            {"busy": (HUNGRY, ConstantWorkload(1, level=1.0)),
             "half": (LIGHT, ConstantWorkload(1, level=0.4))}
        )
        w_busy = node.fs.node(vms["busy"].cgroup_path).cpu.weight
        w_half = node.fs.node(vms["half"].cgroup_path).cpu.weight
        assert w_busy > w_half

    def test_unwatched_vm_skipped(self):
        node, vms, vmdfs = run_vmdfs(
            {"busy": (HUNGRY, ConstantWorkload(1, level=1.0))}, seconds=5.0
        )
        from repro.virt.hypervisor import Hypervisor

        # a VM nobody registered gets no weight written
        hv = Hypervisor(node, enforce_admission=False)
        stranger = hv.provision(LIGHT, "stranger")
        report = vmdfs.tick(6.0)
        assert stranger.cgroup_path not in report.allocations
        assert node.fs.node(stranger.cgroup_path).cpu.weight == 100  # default

    def test_alpha_validation(self):
        node, _, _ = run_vmdfs({})
        with pytest.raises(ValueError):
            VmdfsController(node.fs, alpha=0.0)
        # two ticks at the same simulation time: the second has dt=0
        fresh = VmdfsController(node.fs)
        fresh.tick(1.0)
        with pytest.raises(ValueError):
            fresh.tick(1.0)


class TestPaperCriticism:
    def test_no_frequency_differentiation(self):
        """The §II limitation: two equally hungry VMs converge to equal
        speed no matter what 'frequency' their owners intended — VMDFS
        has no notion of differentiated guarantees."""
        # 6 hungry single-vCPU VMs on 4 cpus: genuine contention
        # (1500 MHz keeps Eq. 7 admission happy: 6 x 1500 <= 9600)
        mid = VMTemplate("mid", vcpus=1, vfreq_mhz=1500.0)
        workloads = {
            f"vm-{k}": (mid, ConstantWorkload(1, level=1.0)) for k in range(6)
        }
        node, vms, vmdfs = run_vmdfs(workloads, seconds=40.0)
        allocs = [vm.vcpus[0].entity.allocated for vm in vms.values()]
        assert max(allocs) == pytest.approx(min(allocs), rel=0.05)

    def test_v1_backend_works(self):
        from repro.cgroups.fs import CgroupVersion
        from tests.conftest import make_host as mk

        node, hv, _ = mk(version=CgroupVersion.V1)
        vmdfs = VmdfsController(node.fs)
        vm = hv.provision(HUNGRY, "vm")
        attach(vm, ConstantWorkload(1))
        vmdfs.watch(vm)
        sim = Simulation(node, hv, dt=0.5)
        sim.run(2.0)
        vmdfs.tick(2.0)
        assert int(node.fs.read(f"{vm.cgroup_path}/cpu.shares")) >= 2


class TestControllerProtocol:
    """VmdfsController speaks the shared Controller API."""

    def _host(self):
        node, hv, _ = make_host()
        vmdfs = VmdfsController(node.fs, vm_lookup=hv.vm)
        return node, hv, vmdfs

    def test_satisfies_protocol(self):
        from repro.core.api import Controller

        node, hv, vmdfs = self._host()
        assert isinstance(vmdfs, Controller)
        assert vmdfs.period_s == 1.0

    def test_register_resolves_via_lookup(self):
        node, hv, vmdfs = self._host()
        vm = hv.provision(HUNGRY, "busy")
        attach(vm, ConstantWorkload(1, level=1.0))
        vmdfs.register_vm("busy", 1800.0)  # vfreq accepted, ignored
        sim = Simulation(node, hv, dt=0.5)
        sim.run(2.0)
        report = vmdfs.tick(2.0)
        assert report.t == 2.0
        assert vm.cgroup_path in report.allocations
        assert report.timings.enforce >= 0.0

    def test_register_without_lookup_raises(self):
        node, hv, _ = make_host()
        vmdfs = VmdfsController(node.fs)
        with pytest.raises(KeyError):
            vmdfs.register_vm("ghost", 1800.0)

    def test_unregister_drops_vm(self):
        node, hv, vmdfs = self._host()
        hv.provision(HUNGRY, "busy")
        vmdfs.register_vm("busy", 1800.0)
        vmdfs.unregister_vm("busy")
        report = vmdfs.tick(1.0)
        assert report.allocations == {}
        with pytest.raises(KeyError):
            vmdfs.predicted_cores("busy")

    def test_protocol_tick_drives_engine(self):
        """The engine schedules the VMDFS baseline like any controller —
        no isinstance checks, just the protocol surface."""
        node, hv, vmdfs = self._host()
        vm = hv.provision(HUNGRY, "busy")
        attach(vm, ConstantWorkload(1, level=1.0))
        vmdfs.register_vm("busy", 1800.0)
        sim = Simulation(node, hv, controller=vmdfs, dt=0.5)
        sim.run(10.0)
        assert len(vmdfs.reports) == 10
        assert vmdfs.predicted_cores("busy") > 0.5

    def test_legacy_tick_signature_removed(self):
        """The deprecated ``tick(vms, dt)`` shim is gone: passing a
        mapping no longer silently falls into a second code path."""
        node, hv, vmdfs = self._host()
        vm = hv.provision(HUNGRY, "busy")
        vmdfs.watch(vm)
        with pytest.raises(TypeError):
            vmdfs.tick({"busy": vm}, dt=1.0)
