"""Tests for repro.virt."""
