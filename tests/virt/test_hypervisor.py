"""Tests for KVM-style provisioning and admission control."""

import pytest

from repro.hw.node import MACHINE_SLICE, Node
from repro.virt.hypervisor import AdmissionError, Hypervisor, provision_fleet
from repro.virt.template import LARGE, SMALL, VMTemplate


class TestProvisioning:
    def test_cgroup_tree_shape(self, hypervisor, node):
        vm = hypervisor.provision(SMALL, "vm-a")
        assert node.fs.exists(f"{MACHINE_SLICE}/vm-a/vcpu0")
        assert node.fs.exists(f"{MACHINE_SLICE}/vm-a/vcpu1")
        assert vm.num_vcpus == 2

    def test_one_thread_per_vcpu_cgroup(self, hypervisor, node):
        hypervisor.provision(SMALL, "vm-a")
        threads = node.fs.read(f"{MACHINE_SLICE}/vm-a/vcpu0/cgroup.threads").split()
        assert len(threads) == 1

    def test_entities_registered(self, hypervisor, node):
        vm = hypervisor.provision(SMALL, "vm-a")
        for vcpu in vm.vcpus:
            assert node.entity(vcpu.tid) is vcpu.entity

    def test_duplicate_name_rejected(self, hypervisor):
        hypervisor.provision(SMALL, "vm-a")
        with pytest.raises(ValueError):
            hypervisor.provision(SMALL, "vm-a")

    def test_vfreq_above_host_fmax_rejected(self, hypervisor, tiny_spec):
        too_fast = VMTemplate("turbo", vcpus=1, vfreq_mhz=tiny_spec.fmax_mhz + 1)
        with pytest.raises(AdmissionError):
            hypervisor.provision(too_fast, "vm-x")

    def test_fleet_helper(self, hypervisor):
        vms = provision_fleet(hypervisor, SMALL, 3)
        assert [vm.name for vm in vms] == ["small-0", "small-1", "small-2"]


class TestAdmission:
    def test_eq7_admission_limit(self, tiny_spec):
        # tiny: 4 logical cpus x 2400 = 9600 MHz capacity.
        node = Node(tiny_spec)
        hv = Hypervisor(node)
        hv.provision(LARGE, "l0")  # 7200
        assert hv.committed_mhz() == pytest.approx(7200.0)
        hv.provision(SMALL, "s0")  # + 1000 = 8200
        hv.provision(SMALL, "s1")  # + 1000 = 9200
        with pytest.raises(AdmissionError):
            hv.provision(SMALL, "s2")  # 10200 > 9600

    def test_admission_can_be_disabled(self, tiny_spec):
        node = Node(tiny_spec)
        hv = Hypervisor(node, enforce_admission=False)
        for k in range(12):
            hv.provision(SMALL, f"s{k}")
        assert hv.committed_mhz() > tiny_spec.capacity_mhz

    def test_memory_admission(self, tiny_spec):
        node = Node(tiny_spec)
        hv = Hypervisor(node)
        hungry = VMTemplate("hungry", vcpus=1, vfreq_mhz=100, memory_mb=10 * 1024)
        assert hv.admits(hungry)
        hv.provision(hungry, "h0")
        assert not hv.admits(hungry)  # 20 GB > 16 GB


class TestDestroy:
    def test_destroy_cleans_everything(self, hypervisor, node):
        vm = hypervisor.provision(SMALL, "vm-a")
        tids = vm.tids()
        hypervisor.destroy("vm-a")
        assert not node.fs.exists(f"{MACHINE_SLICE}/vm-a")
        for tid in tids:
            assert not node.procfs.exists(tid)
        assert hypervisor.vms == []

    def test_destroy_missing(self, hypervisor):
        with pytest.raises(KeyError):
            hypervisor.destroy("ghost")

    def test_capacity_released(self, tiny_spec):
        node = Node(tiny_spec)
        hv = Hypervisor(node)
        hv.provision(LARGE, "l0")
        hv.destroy("l0")
        assert hv.committed_mhz() == 0.0
        hv.provision(LARGE, "l1")  # fits again


class TestDiscovery:
    def test_vcpu_cgroup_paths(self, hypervisor):
        hypervisor.provision(SMALL, "vm-a")
        paths = hypervisor.vcpu_cgroup_paths()
        assert paths == {
            "vm-a": [f"{MACHINE_SLICE}/vm-a/vcpu0", f"{MACHINE_SLICE}/vm-a/vcpu1"]
        }
