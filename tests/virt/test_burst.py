"""Tests for the Burst-VM baseline (§II limitations reproduced)."""

import pytest

from repro.cgroups.fs import CgroupFS, CgroupVersion
from repro.sched.entity import SchedEntity
from repro.virt.burst import BurstPolicy, BurstVMController
from repro.virt.template import SMALL
from repro.virt.vm import VCpu, VMInstance


def make_env(initial_credits=60.0):
    fs = CgroupFS(CgroupVersion.V2)
    vm = VMInstance(name="b0", template=SMALL, cgroup_path="/machine.slice/b0")
    fs.makedirs(vm.cgroup_path)
    for j in range(2):
        path = f"{vm.cgroup_path}/vcpu{j}"
        fs.makedirs(path)
        ent = SchedEntity(tid=10 + j, cgroup_path=path)
        vm.vcpus.append(VCpu(index=j, tid=10 + j, cgroup_path=path, entity=ent))
    policy = BurstPolicy(initial_credits=initial_credits)
    ctrl = BurstVMController(fs, policy)
    ctrl.watch(vm)
    return fs, vm, ctrl


def charge(fs, vm, usec_per_vcpu):
    for vcpu in vm.vcpus:
        fs.node(vcpu.cgroup_path).cpu.charge(usec_per_vcpu)


class TestCredits:
    def test_idle_vm_accrues_credits(self):
        fs, vm, ctrl = make_env(initial_credits=0.0)
        # Each idle tick accrues baseline * num_vcpus = 0.1 * 2 = 0.2 s.
        ctrl.tick({"b0": vm}, dt=1.0)
        assert ctrl.credits_of("b0") == pytest.approx(0.2, abs=1e-6)
        ctrl.tick({"b0": vm}, dt=1.0)
        assert ctrl.credits_of("b0") == pytest.approx(0.4, abs=1e-6)

    def test_heavy_use_burns_credits(self):
        fs, vm, ctrl = make_env(initial_credits=10.0)
        ctrl.tick({"b0": vm}, dt=1.0)  # idle tick: +0.2
        charge(fs, vm, 1_000_000)  # both vCPUs ran flat out
        ctrl.tick({"b0": vm}, dt=1.0)
        # burn = used (2 s) - baseline (0.2 s) = 1.8 s
        assert ctrl.credits_of("b0") == pytest.approx(10.0 + 0.2 - 1.8, abs=1e-6)

    def test_credit_cap(self):
        fs, vm, ctrl = make_env(initial_credits=0.0)
        ctrl.policy = BurstPolicy(credit_cap_seconds=0.3, initial_credits=0.0)
        ctrl.tick({"b0": vm}, dt=1.0)
        for _ in range(10):
            ctrl.tick({"b0": vm}, dt=1.0)
        assert ctrl.credits_of("b0") <= 0.3


class TestCapping:
    def test_broke_vm_is_capped_at_baseline(self):
        fs, vm, ctrl = make_env(initial_credits=0.0)
        vm.set_uniform_demand(1.0)
        ctrl.tick({"b0": vm}, dt=1.0)  # +0.2 credits (no usage yet)
        charge(fs, vm, 1_000_000)  # then 2 s of usage burn it all
        ctrl.tick({"b0": vm}, dt=1.0)
        quota = fs.get_quota(vm.vcpus[0].cgroup_path)
        assert ctrl.credits_of("b0") == 0.0
        assert quota.ratio() == pytest.approx(0.10)
        assert not ctrl.is_bursting("b0")

    def test_funded_vm_with_demand_bursts_uncapped(self):
        fs, vm, ctrl = make_env(initial_credits=60.0)
        vm.set_uniform_demand(1.0)
        ctrl.tick({"b0": vm}, dt=1.0)
        assert ctrl.is_bursting("b0")
        assert fs.get_quota(vm.vcpus[0].cgroup_path).unlimited

    def test_no_demand_no_burst(self):
        fs, vm, ctrl = make_env(initial_credits=60.0)
        vm.set_uniform_demand(0.05)  # below the 10 % baseline
        ctrl.tick({"b0": vm}, dt=1.0)
        assert not ctrl.is_bursting("b0")

    def test_limitation3_capped_even_on_idle_node(self):
        """The paper's criticism: a credit-less burst VM stays capped no
        matter how idle the node is — the controller is node-unaware."""
        fs, vm, ctrl = make_env(initial_credits=0.0)
        vm.set_uniform_demand(1.0)
        ctrl.tick({"b0": vm}, dt=1.0)
        charge(fs, vm, 1_000_000)
        ctrl.tick({"b0": vm}, dt=1.0)
        # Nothing else runs on the node, yet:
        assert fs.get_quota(vm.vcpus[0].cgroup_path).ratio() == pytest.approx(0.10)


class TestPolicyValidation:
    def test_bad_baseline(self):
        with pytest.raises(ValueError):
            BurstPolicy(baseline_fraction=0.0)
        with pytest.raises(ValueError):
            BurstPolicy(baseline_fraction=1.5)

    def test_bad_credits(self):
        with pytest.raises(ValueError):
            BurstPolicy(initial_credits=-1.0)

    def test_bad_dt(self):
        fs, vm, ctrl = make_env()
        with pytest.raises(ValueError):
            ctrl.tick({"b0": vm}, dt=0.0)
