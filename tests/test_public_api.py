"""Public-surface snapshot: the supported API, frozen.

Every name below is a deliberate commitment — re-exported from a
package ``__init__`` and documented in ``docs/api.md``.  If this test
fails you either (a) added a name: extend the snapshot here *and* note
the addition in CHANGES.md, or (b) removed/renamed one: that is a
breaking change — follow the deprecation policy (one release with a
``DeprecationWarning``) and note the break in CHANGES.md.  The point is
that the surface can never change silently.
"""

import importlib

import pytest

EXPECTED = {
    "repro": {
        "CgroupFS",
        "CgroupVersion",
        "Controller",
        "ControllerConfig",
        "ControllerReport",
        "HostBackend",
        "SampleBatch",
        "VirtualFrequencyController",
        "CHETEMI",
        "CHICLET",
        "Cluster",
        "Node",
        "NodeSpec",
        "Observability",
        "ObsConfig",
        "BestFit",
        "FirstFit",
        "CoreSplittingConstraint",
        "VcpuCountConstraint",
        "NodeManager",
        "ShardedNodeManager",
        "TickResult",
        "Scenario",
        "Simulation",
        "eval1_chetemi",
        "eval1_chiclet",
        "eval2_chetemi",
        "Hypervisor",
        "SMALL",
        "MEDIUM",
        "LARGE",
        "VMTemplate",
        "Compress7Zip",
        "OpenSSLSpeed",
        "__version__",
    },
    "repro.core": {
        "Controller",
        "HostBackend",
        "BackendStats",
        "BatchStats",
        "SampleBatch",
        "ControllerConfig",
        "cycles_per_period",
        "guaranteed_cycles",
        "cycles_to_mhz",
        "mhz_to_cycles",
        "Monitor",
        "VCpuSample",
        "TrendEstimator",
        "EstimatorDecision",
        "CreditLedger",
        "apply_base_capping",
        "run_auction",
        "AuctionOutcome",
        "distribute_leftovers",
        "Enforcer",
        "VirtualFrequencyController",
        "ControllerReport",
        "ResiliencePolicy",
        "ResilienceStats",
        "DegradedVcpu",
        "snapshot",
        "restore",
        "to_json",
        "from_json",
        "VcpuTable",
        "TickView",
        "render_stage_seconds",
        "render_span_seconds",
        "render_cluster",
        "MetricsBuffer",
        "render_backend_stats",
        "render_controller",
        "render_fault_stats",
        "render_node_manager",
        "render_rebalance",
        "render_report",
        "render_resilience",
        "render_billing",
    },
    "repro.billing": {
        "BillingEngine",
        "CreditLine",
        "DEFAULT_PRICE_BOOK",
        "Invoice",
        "InvoiceLine",
        "PriceBook",
        "PriceTier",
        "UsageMeter",
        "build_invoices",
        "decompose",
        "invoices_to_json",
        "mhz_seconds_per_cycle",
        "render_invoices",
        "sold_fraction",
    },
    "repro.sim": {
        "NodeManager",
        "ShardedNodeManager",
        "Shard",
        "TickResult",
        "RemoteNodeError",
        "TimeSeries",
        "MetricsRecorder",
        "ClusterRebalanceMetrics",
        "Simulation",
        "Scenario",
        "ScenarioResult",
        "ClusterScenario",
        "VMGroup",
        "chaos_churn",
        "chaos_churn_small",
        "chaos_churn_xl",
        "eval1_chetemi",
        "eval1_chiclet",
        "eval2_chetemi",
        "render_table",
        "series_to_rows",
        "ClusterSimulation",
        "NodeRuntime",
        "ArrivalEvent",
        "CloudOperator",
        "generate_arrivals",
    },
    "repro.rebalance": {
        "ChaosConfig",
        "ChaosResult",
        "ChurnChaosCluster",
        "ClusterStateArrays",
        "ClusterStateView",
        "GOALS",
        "InFlightView",
        "MigrationPlan",
        "MigrationPlanner",
        "MigrationStarted",
        "NodeView",
        "PlannedMove",
        "PlannerConfig",
        "RebalanceLedger",
        "RebalanceLoop",
        "SimulatedArrays",
        "SimulatedNode",
        "SimulatedState",
        "VmView",
        "explain_move",
        "explain_move_from_entries",
        "load_rebalance_jsonl",
        "lookup_move",
    },
    "repro.obs": {
        "ObsConfig",
        "Observability",
        "DecisionLedger",
        "FlightRecorder",
        "flight_dump_to_trace",
        "MetricsServer",
        "Span",
        "Tracer",
        "RingSink",
        "JsonlSink",
        "chrome_trace_events",
        "write_chrome_trace",
        "configure_logging",
        "get_logger",
        "explain",
        "recompute_allocation",
        # SLO plane: time series, burn-rate alerting, anomaly detection
        "Series",
        "SeriesStore",
        "SLOConfig",
        "SLOPlane",
        "SLOSpec",
        "BurnRateRule",
        "default_slos",
        "AlertLedger",
        "load_alerts_jsonl",
        "explain_alert",
        "AnomalyConfig",
        "EwmaDetector",
    },
    "repro.checking": {
        "INVARIANTS",
        "InvariantChecker",
        "InvariantViolationError",
        "Violation",
        "FuzzResult",
        "audit_billing",
        "billing_predicate",
        "derive_billing",
        "fuzz_one",
        "generate_trace",
        "replay_with_billing",
        "shrink_trace",
        "ReplayResult",
        "Trace",
        "replay",
    },
    "repro.faults": {
        "ControllerCrash",
        "FaultInjector",
        "FaultPlan",
        "FaultSpec",
        "FAULT_KINDS",
        "ERRNO_BY_NAME",
    },
    "repro.virt": {
        "VMTemplate",
        "SMALL",
        "MEDIUM",
        "LARGE",
        "template_by_name",
        "VMInstance",
        "VCpu",
        "Hypervisor",
        "BurstPolicy",
        "BurstVMController",
        "VmdfsController",
        "DeflationController",
    },
}


@pytest.mark.parametrize("module_name", sorted(EXPECTED))
def test_all_matches_snapshot(module_name):
    module = importlib.import_module(module_name)
    declared = set(module.__all__)
    expected = EXPECTED[module_name]
    added = declared - expected
    removed = expected - declared
    assert not added and not removed, (
        f"{module_name} public surface changed silently. "
        f"Added: {sorted(added) or '-'}; removed: {sorted(removed) or '-'}. "
        f"Update tests/test_public_api.py AND note the change in CHANGES.md."
    )


@pytest.mark.parametrize("module_name", sorted(EXPECTED))
def test_all_names_importable(module_name):
    module = importlib.import_module(module_name)
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name} is in __all__ but missing"


def test_no_duplicate_exports():
    for module_name, names in EXPECTED.items():
        module = importlib.import_module(module_name)
        assert len(module.__all__) == len(set(module.__all__)), (
            f"{module_name}.__all__ contains duplicates"
        )


def test_full_scenario_runs_from_public_surface_only():
    """No module outside the re-exported surface is needed to drive a
    complete (tiny) scenario end to end — the acceptance criterion for
    the curated API."""
    import repro
    import repro.sim

    scenario = repro.Scenario(
        name="api-smoke",
        node_spec=repro.CHETEMI,
        groups=[
            repro.sim.VMGroup(
                template=repro.SMALL,
                count=2,
                workload_factory=lambda template, start: repro.Compress7Zip(
                    template.vcpus, start_time=start
                ),
            )
        ],
        duration=3.0,
        controller_config=repro.ControllerConfig.paper_evaluation(engine="bulk"),
    )
    result = scenario.run(controlled=True)
    assert result.configuration == "B"
    assert result.metrics is not None
