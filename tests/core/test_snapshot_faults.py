"""Snapshot round-trips under an active FaultPlan (ISSUE 4, satellite 3).

The monitor's carry-forward cache (``_last_seen`` / ``_missing_age``)
is deliberately NOT part of the snapshot schema: a stale sample is a
claim about the *previous process's* last observation, and restoring it
would let the new controller re-serve (double-apply) a consumption
sample that the old controller already accrued credits for.  These
tests pin that behaviour down mid-fault, where the cache is hot.
"""

import json

from repro.checking import Trace, replay
from repro.checking.invariants import InvariantChecker
from repro.core.config import ControllerConfig
from repro.core.controller import VirtualFrequencyController
from repro.core.resilience import ResiliencePolicy
from repro.core.snapshot import restore, snapshot
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.hw.node import Node
from repro.virt.hypervisor import Hypervisor
from repro.virt.template import VMTemplate
from tests.conftest import TINY


def _host_with_fault_window(start=2, end=8):
    """One busy VM behind an injector that blanks cpu.stat in [start, end)."""
    node = Node(TINY, seed=7)
    hv = Hypervisor(node)
    plan = FaultPlan(
        [
            FaultSpec(
                "read_error",
                "*/cpu.stat",
                start_tick=start,
                end_tick=end,
                probability=1.0,
                error="EIO",
            )
        ]
    )
    backend = FaultInjector(plan, node.fs, node.procfs, node.sysfs)
    config = ControllerConfig.paper_evaluation(
        resilience=ResiliencePolicy(
            stale_sample_max_age=2, degraded_after_ticks=3
        )
    )
    ctrl = VirtualFrequencyController(
        backend,
        num_cpus=TINY.logical_cpus,
        fmax_mhz=TINY.fmax_mhz,
        config=config,
    )
    vm = hv.provision(VMTemplate("t", vcpus=1, vfreq_mhz=800.0), "vm-0")
    ctrl.register_vm(vm.name, 800.0)
    vm.set_uniform_demand(1.0)
    return node, ctrl, backend


def _tick(node, ctrl, t):
    node.step(1.0)
    return ctrl.tick(float(t))


class TestRestoreMidFault:
    def test_carried_stale_samples_not_double_applied(self):
        """At the restore boundary the carry-forward cache is dropped:
        the faulted path must vanish from the sample stream instead of
        being served stale a second time by the new instance."""
        node, ctrl, backend = _host_with_fault_window(start=2, end=8)
        for t in range(3):
            report = _tick(node, ctrl, t)
        # Tick 2 was inside the window: the sample was served stale.
        assert ctrl.monitor.last_carried == 1
        stale_path = next(iter(ctrl.monitor._last_seen))
        state = snapshot(ctrl)

        restored = VirtualFrequencyController(
            backend,
            num_cpus=TINY.logical_cpus,
            fmax_mhz=TINY.fmax_mhz,
            config=ctrl.config,
        )
        restore(restored, state)
        # The cache did not survive the snapshot...
        assert restored.monitor._last_seen == {}
        assert restored.monitor._missing_age == {}
        # ...so the next in-window tick has nothing to re-serve: the
        # faulted path is absent rather than double-applied.
        report = _tick(node, restored, 3)
        assert restored.monitor.last_carried == 0
        assert all(s.cgroup_path != stale_path for s in report.samples)

    def test_wallet_not_inflated_by_restore(self):
        """Accrual stops at the restore until the vCPU is re-observed:
        the restored run's wallet never exceeds the uninterrupted run's
        (a double-applied stale sample would accrue extra credits)."""
        ticks = 10
        node_a, ctrl_a, _ = _host_with_fault_window()
        for t in range(ticks):
            _tick(node_a, ctrl_a, t)

        node_b, ctrl_b, backend_b = _host_with_fault_window()
        for t in range(3):
            _tick(node_b, ctrl_b, t)
        state = snapshot(ctrl_b)
        ctrl_b2 = VirtualFrequencyController(
            backend_b,
            num_cpus=TINY.logical_cpus,
            fmax_mhz=TINY.fmax_mhz,
            config=ctrl_b.config,
        )
        restore(ctrl_b2, state)
        for t in range(3, ticks):
            _tick(node_b, ctrl_b2, t)

        wallet_plain = ctrl_a.ledger.balance("vm-0")
        wallet_restored = ctrl_b2.ledger.balance("vm-0")
        assert wallet_restored <= wallet_plain + 1e-6

    def test_invariants_hold_through_restore_mid_fault(self):
        """The full oracle catalogue (with resync at the restore) stays
        silent across snapshot/restore inside the fault window."""
        node, ctrl, backend = _host_with_fault_window()
        checker = InvariantChecker(ctrl)
        for t in range(4):
            checker_violations = checker.check(_tick(node, ctrl, t))
            assert checker_violations == []
        state = snapshot(ctrl)
        restored = VirtualFrequencyController(
            backend,
            num_cpus=TINY.logical_cpus,
            fmax_mhz=TINY.fmax_mhz,
            config=ctrl.config,
        )
        restore(restored, state)
        checker = InvariantChecker(restored)
        for t in range(4, 12):
            assert checker.check(_tick(node, restored, t)) == []

    def test_snapshot_roundtrip_json_stable_mid_fault(self):
        """The snapshot serialises cleanly mid-fault (degraded state and
        stale ages are process-local, not schema fields)."""
        node, ctrl, _ = _host_with_fault_window()
        for t in range(5):
            _tick(node, ctrl, t)
        state = snapshot(ctrl)
        assert json.loads(json.dumps(state)) == state
        assert "prev_usage" in state and "wallets" in state

    def test_trace_harness_covers_restart_in_window(self):
        """The same property end-to-end via the fuzzer's replay harness,
        under both engines with cross-engine identity checked."""
        header = Trace.make_header(
            seed=5,
            resilience=True,
            fault_plan={
                "seed": 0,
                "specs": [
                    {
                        "kind": "read_error",
                        "target": "*/cpu.stat",
                        "start_tick": 2,
                        "end_tick": 8,
                        "probability": 1.0,
                        "error": "EIO",
                        "jitter_frac": 0.0,
                    }
                ],
            },
        )
        events = [
            {"kind": "provision", "vm": "vm-0", "vcpus": 1, "vfreq": 700.0},
            {"kind": "demand", "vm": "vm-0", "level": 1.0},
        ]
        for t in range(12):
            if t == 4:  # inside the fault window, cache hot
                events.append({"kind": "restart"})
            events.append({"kind": "tick"})
        result = replay(Trace(header=header, events=events), stop_at_first=False)
        assert result.ok, [str(v) for v in result.violations]
