"""Tests for the degraded-mode resilience layer in the controller.

Faults are injected with :class:`repro.faults.FaultInjector`; the
assertions are about the *defensive* half: stale-sample carry-forward,
degraded-mode fallback caps, recovery accounting, and bounded write
retries.
"""

import pytest

from repro.core.config import ControllerConfig
from repro.core.controller import VirtualFrequencyController
from repro.core.metrics_export import render_controller
from repro.core.resilience import ResiliencePolicy
from repro.core.units import guaranteed_cycles
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.hw.node import Node
from repro.virt.hypervisor import Hypervisor
from repro.virt.template import VMTemplate
from tests.conftest import TINY

T = VMTemplate("res", vcpus=1, vfreq_mhz=1200.0)
VCPU0 = "/machine.slice/res-0/vcpu0"


def resilient_host(plan, policy, *, vms=2, seed=42):
    node = Node(TINY, seed=seed)
    hv = Hypervisor(node)
    injector = FaultInjector(plan, node.fs, node.procfs, node.sysfs)
    ctrl = VirtualFrequencyController(
        injector,
        num_cpus=TINY.logical_cpus,
        fmax_mhz=TINY.fmax_mhz,
        config=ControllerConfig.paper_evaluation(),
        resilience=policy,
    )
    for k in range(vms):
        vm = hv.provision(T, f"{T.name}-{k}")
        ctrl.register_vm(vm.name, T.vfreq_mhz)
        vm.set_uniform_demand(0.8)
    return node, hv, injector, ctrl


def drive(node, ctrl, ticks, start=0):
    reports = []
    for k in range(start, start + ticks):
        node.step(1.0)
        reports.append(ctrl.tick(float(k + 1)))
    return reports


class TestPolicyValidation:
    def test_defaults_valid(self):
        p = ResiliencePolicy()
        assert p.degraded_action == "guarantee"

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(write_retries=-1)
        with pytest.raises(ValueError):
            ResiliencePolicy(degraded_after_ticks=0)
        with pytest.raises(ValueError):
            ResiliencePolicy(degraded_action="panic")


class TestStaleCarryForward:
    def test_transient_occlusion_is_bridged(self):
        """A vCPU unreadable for <= stale_sample_max_age ticks keeps
        appearing in reports (carried forward), never goes degraded."""
        plan = FaultPlan(
            [FaultSpec("read_error", f"*{VCPU0}/cpu.stat",
                       start_tick=3, end_tick=5)]
        )
        policy = ResiliencePolicy(stale_sample_max_age=2, degraded_after_ticks=3)
        node, _, injector, ctrl = resilient_host(plan, policy)
        reports = drive(node, ctrl, 8)
        for r in reports:
            assert {s.vm_name for s in r.samples} == {"res-0", "res-1"}
            assert not r.degraded
        assert ctrl.resilience_stats.stale_samples_used == 2
        assert ctrl.resilience_stats.degraded_transitions == 0
        assert injector.injected["read_error"] == 2

    def test_no_policy_means_no_carry(self):
        """Without a resilience policy the monitor is the seed monitor."""
        node = Node(TINY, seed=42)
        ctrl = VirtualFrequencyController(
            node.fs, node.procfs, node.sysfs,
            num_cpus=TINY.logical_cpus, fmax_mhz=TINY.fmax_mhz,
        )
        assert ctrl.resilience is None
        assert ctrl.monitor.stale_max_age == 0
        assert ctrl.backend.tolerate_errors is False


class TestDegradedMode:
    OCCLUDE = [FaultSpec("read_error", f"*{VCPU0}/cpu.stat",
                         start_tick=2, end_tick=9)]

    def test_unobservable_vcpu_falls_back_to_guarantee(self):
        policy = ResiliencePolicy(stale_sample_max_age=1, degraded_after_ticks=3)
        node, _, injector, ctrl = resilient_host(FaultPlan(self.OCCLUDE), policy)
        reports = drive(node, ctrl, 8)
        degraded = [r for r in reports if r.degraded]
        assert degraded, "occlusion never triggered degraded mode"
        expected = guaranteed_cycles(1.0, T.vfreq_mhz, TINY.fmax_mhz)
        for r in degraded:
            assert r.degraded == {VCPU0: pytest.approx(expected)}
            assert r.allocations[VCPU0] == pytest.approx(expected)
        assert ctrl.resilience_stats.degraded_transitions == 1
        assert ctrl.degraded_vcpus == 1

    def test_hold_action_keeps_last_cap(self):
        policy = ResiliencePolicy(
            stale_sample_max_age=1, degraded_after_ticks=3,
            degraded_action="hold",
        )
        node, _, injector, ctrl = resilient_host(FaultPlan(self.OCCLUDE), policy)
        reports = drive(node, ctrl, 8)
        degraded = [r for r in reports if r.degraded]
        assert degraded
        held = ctrl._current_cap[VCPU0]
        assert degraded[-1].degraded[VCPU0] == pytest.approx(held)

    def test_recovery_is_counted_with_latency(self):
        policy = ResiliencePolicy(stale_sample_max_age=1, degraded_after_ticks=3)
        node, _, injector, ctrl = resilient_host(FaultPlan(self.OCCLUDE), policy)
        reports = drive(node, ctrl, 12)  # window ends at tick 9
        stats = ctrl.resilience_stats
        assert stats.recoveries == 1
        assert stats.last_recovery_ticks >= 1
        assert ctrl.degraded_vcpus == 0
        assert not reports[-1].degraded
        # back to normal estimation for the recovered vCPU
        assert VCPU0 in reports[-1].allocations

    def test_healthy_vm_unaffected_throughout(self):
        policy = ResiliencePolicy(stale_sample_max_age=1, degraded_after_ticks=3)
        node, _, injector, ctrl = resilient_host(FaultPlan(self.OCCLUDE), policy)
        reports = drive(node, ctrl, 12)
        for r in reports:
            assert any(s.vm_name == "res-1" for s in r.samples)
            assert "/machine.slice/res-1/vcpu0" in r.allocations

    def test_unregistered_vm_never_degrades(self):
        policy = ResiliencePolicy(stale_sample_max_age=1, degraded_after_ticks=2)
        node, _, injector, ctrl = resilient_host(FaultPlan(self.OCCLUDE), policy)
        drive(node, ctrl, 4)
        ctrl.unregister_vm("res-0")
        drive(node, ctrl, 4, start=4)
        assert ctrl.degraded_vcpus == 0


class TestWriteRetry:
    def test_persistent_write_failure_is_bounded(self):
        plan = FaultPlan(
            [FaultSpec("write_error", f"*{VCPU0}/cpu.max", error="EBUSY")]
        )
        policy = ResiliencePolicy(write_retries=2)
        node, _, injector, ctrl = resilient_host(plan, policy)
        drive(node, ctrl, 3)
        stats = ctrl.resilience_stats
        assert stats.write_retries > 0
        assert stats.write_failures > 0
        # the enforcer saw exactly 1 original + 2 retries per tick
        assert injector.injected["write_error"] == 3 * (1 + policy.write_retries)

    def test_transient_write_failure_recovers_in_tick(self):
        plan = FaultPlan(
            [FaultSpec("write_error", f"*{VCPU0}/cpu.max",
                       error="EBUSY", probability=0.5)],
            seed=0,
        )
        policy = ResiliencePolicy(write_retries=4)
        node, _, injector, ctrl = resilient_host(plan, policy)
        drive(node, ctrl, 6)
        stats = ctrl.resilience_stats
        assert injector.injected.get("write_error", 0) > 0
        assert stats.write_retries > 0
        # with 4 retries at p=0.5 every tick's write lands eventually
        assert stats.write_failures == 0
        assert ctrl._current_cap[VCPU0] > 0


class TestResilienceMetrics:
    def test_prometheus_export_includes_fault_surface(self):
        plan = FaultPlan(
            [FaultSpec("read_error", f"*{VCPU0}/cpu.stat",
                       start_tick=2, end_tick=9)]
        )
        policy = ResiliencePolicy(stale_sample_max_age=1, degraded_after_ticks=3)
        node, _, injector, ctrl = resilient_host(plan, policy)
        drive(node, ctrl, 6)
        text = render_controller(ctrl)
        assert 'vfreq_resilience_events_total{event="degraded_transitions"} 1' in text
        assert "vfreq_degraded_vcpus 1" in text
        assert 'vfreq_faults_injected_total{kind="read_error"}' in text
        assert "vfreq_recovery_latency_ticks" in text
