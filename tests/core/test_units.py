"""Tests for cycle/frequency conversions (Eqs. 1 and 2)."""

import pytest

from repro.core.units import (
    cycles_per_period,
    cycles_to_mhz,
    guaranteed_cycles,
    mhz_to_cycles,
    period_us,
)


class TestEq1:
    def test_chetemi_budget(self):
        # 40 logical CPUs, p = 1 s -> 40e6 cycles (µs).
        assert cycles_per_period(1.0, 40) == 40_000_000

    def test_scales_with_period(self):
        assert cycles_per_period(0.5, 40) == 20_000_000

    def test_validation(self):
        with pytest.raises(ValueError):
            cycles_per_period(0.0, 4)
        with pytest.raises(ValueError):
            cycles_per_period(1.0, 0)


class TestEq2:
    def test_small_on_chetemi(self):
        # 500 MHz on a 2400 MHz host: 500/2400 of a core's 1e6 µs.
        c = guaranteed_cycles(1.0, 500.0, 2400.0)
        assert c == pytest.approx(1e6 * 500 / 2400)

    def test_full_speed_is_whole_core(self):
        assert guaranteed_cycles(1.0, 2400.0, 2400.0) == pytest.approx(1e6)

    def test_guarantee_above_fmax_rejected(self):
        with pytest.raises(ValueError):
            guaranteed_cycles(1.0, 3000.0, 2400.0)

    def test_roundtrip_with_cycles_to_mhz(self):
        for f in (500.0, 1200.0, 1800.0):
            c = guaranteed_cycles(1.0, f, 2400.0)
            assert cycles_to_mhz(c, 1.0, 2400.0) == pytest.approx(f)

    def test_mhz_to_cycles_alias(self):
        assert mhz_to_cycles(500.0, 1.0, 2400.0) == guaranteed_cycles(1.0, 500.0, 2400.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            guaranteed_cycles(1.0, -1.0, 2400.0)
        with pytest.raises(ValueError):
            guaranteed_cycles(1.0, 500.0, 0.0)
        with pytest.raises(ValueError):
            cycles_to_mhz(-1.0, 1.0, 2400.0)


class TestEq2Properties:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        f1=st.floats(1.0, 2400.0),
        f2=st.floats(1.0, 2400.0),
        fmax=st.just(2400.0),
        p=st.floats(0.1, 5.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_vfreq(self, f1, f2, fmax, p):
        """A higher purchased frequency always maps to more cycles."""
        c1 = guaranteed_cycles(p, f1, fmax)
        c2 = guaranteed_cycles(p, f2, fmax)
        assert (f1 <= f2) == (c1 <= c2) or c1 == c2

    @given(f=st.floats(1.0, 2400.0), p=st.floats(0.1, 5.0))
    @settings(max_examples=100, deadline=None)
    def test_bounded_by_one_core(self, f, p):
        assert 0.0 < guaranteed_cycles(p, f, 2400.0) <= period_us(p) + 1e-9

    @given(f=st.floats(1.0, 2400.0), p=st.floats(0.1, 5.0))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, f, p):
        c = guaranteed_cycles(p, f, 2400.0)
        assert cycles_to_mhz(c, p, 2400.0) == pytest.approx(f, rel=1e-9)


class TestPeriod:
    def test_microseconds(self):
        assert period_us(1.0) == 1_000_000
        assert period_us(0.25) == 250_000

    def test_positive_required(self):
        with pytest.raises(ValueError):
            period_us(-1.0)
