"""Tests for ControllerConfig."""

import pytest

from repro.core.config import ControllerConfig


class TestDefaults:
    def test_paper_evaluation_settings(self):
        cfg = ControllerConfig.paper_evaluation()
        assert cfg.period_s == 1.0
        assert cfg.increase_trigger == pytest.approx(0.95)
        assert cfg.increase_mult == pytest.approx(2.0)  # "+100 %"
        assert cfg.decrease_trigger == pytest.approx(0.50)
        assert cfg.decrease_mult == pytest.approx(0.95)  # "-5 %"
        assert cfg.control_enabled

    def test_from_percent_mapping(self):
        cfg = ControllerConfig.from_percent(
            increase_trigger_pct=90.0,
            increase_factor_pct=30.0,
            decrease_trigger_pct=40.0,
            decrease_factor_pct=20.0,
        )
        assert cfg.increase_trigger == pytest.approx(0.9)
        assert cfg.increase_mult == pytest.approx(1.3)  # Fig. 3's example
        assert cfg.decrease_trigger == pytest.approx(0.4)
        assert cfg.decrease_mult == pytest.approx(0.8)  # Fig. 4's example

    def test_monitoring_only_clone(self):
        cfg = ControllerConfig.paper_evaluation()
        mon = cfg.monitoring_only()
        assert not mon.control_enabled
        assert mon.increase_trigger == cfg.increase_trigger
        assert cfg.control_enabled  # original untouched


class TestValidation:
    def test_period_positive(self):
        with pytest.raises(ValueError):
            ControllerConfig(period_s=0.0)

    def test_history_at_least_two(self):
        with pytest.raises(ValueError):
            ControllerConfig(history_len=1)

    def test_trigger_ranges(self):
        with pytest.raises(ValueError):
            ControllerConfig(increase_trigger=1.5)
        with pytest.raises(ValueError):
            ControllerConfig(decrease_trigger=-0.1)

    def test_trigger_ordering(self):
        with pytest.raises(ValueError):
            ControllerConfig(increase_trigger=0.4, decrease_trigger=0.5)

    def test_mult_directions(self):
        with pytest.raises(ValueError):
            ControllerConfig(increase_mult=0.9)
        with pytest.raises(ValueError):
            ControllerConfig(decrease_mult=1.1)

    def test_window_range(self):
        with pytest.raises(ValueError):
            ControllerConfig(auction_window_frac=0.0)

    def test_min_cap_range(self):
        with pytest.raises(ValueError):
            ControllerConfig(min_cap_frac=0.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ControllerConfig().period_s = 2.0


class TestWithOverrides:
    def test_returns_validated_copy(self):
        cfg = ControllerConfig.paper_evaluation()
        derived = cfg.with_overrides(period_s=2.0, reserve_guarantee=True)
        assert derived.period_s == 2.0
        assert derived.reserve_guarantee
        assert derived.increase_trigger == cfg.increase_trigger
        assert cfg.period_s == 1.0  # original untouched

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeError, match="unknown config field"):
            ControllerConfig().with_overrides(not_a_knob=1)

    def test_invalid_value_fails_validation(self):
        with pytest.raises(ValueError):
            ControllerConfig().with_overrides(period_s=-1.0)

    def test_inconsistent_combination_fails(self):
        # each value is individually legal; the pair violates ordering
        with pytest.raises(ValueError):
            ControllerConfig().with_overrides(
                increase_trigger=0.6, decrease_trigger=0.7
            )

    def test_empty_overrides_is_equal_copy(self):
        cfg = ControllerConfig.paper_evaluation()
        assert cfg.with_overrides() == cfg
