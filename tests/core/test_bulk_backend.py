"""Bulk-array backend parity: ``sample_all``/``apply_caps`` versus the
list spellings ``read_vcpu_samples``/``write_caps``.

Twin identical hosts (same spec, seed, VM population, workloads) are
driven in lockstep; one backend is read through the list interface, the
other through the array interface.  The contract under test: identical
sample values every tick, identical caps on disk after every write
batch, and — under an armed FaultPlan of any kind — identical
perturbations, including crashes at the same tick, because the batch
entry hooks fire exactly once per batch regardless of spelling.
"""

import numpy as np
import pytest

from repro.core.backend import HostBackend, SampleBatch
from repro.core.config import ControllerConfig
from repro.core.controller import VirtualFrequencyController
from repro.core.snapshot import restore, snapshot
from repro.faults import ControllerCrash, FaultInjector, FaultPlan, FaultSpec
from repro.faults.plan import FAULT_KINDS
from repro.virt.template import VMTemplate
from repro.workloads.base import attach
from repro.workloads.synthetic import ConstantWorkload
from tests.conftest import make_host

TMPL = VMTemplate("pair", vcpus=2, vfreq_mhz=1100.0)
ENF_US = 100_000


def _host(seed=11, plan=None):
    """One host with 3 two-vCPU VMs and a standalone backend."""
    node, hv, _ = make_host(seed=seed)
    backend = HostBackend(node.fs, node.procfs, node.sysfs)
    if plan is not None:
        backend = FaultInjector.wrap(backend, plan)
    for k in range(3):
        vm = hv.provision(TMPL, f"vm-{k}")
        attach(vm, ConstantWorkload(2, level=0.3 + 0.2 * k))
    return node, hv, backend


def _sig(samples):
    return sorted(tuple(sorted(s.__dict__.items())) for s in samples)


class TestSampleParity:
    def test_bulk_matches_list_over_ticks(self):
        node_a, _, back_a = _host()
        node_b, _, back_b = _host()
        for _ in range(8):
            node_a.step(1.0)
            node_b.step(1.0)
            list_samples = back_a.read_vcpu_samples(1.0)
            batch = back_b.sample_all(1.0)
            assert isinstance(batch, SampleBatch)
            assert _sig(list_samples) == _sig(batch.to_samples())

    def test_batch_arrays_consistent_with_samples(self):
        node, _, backend = _host()
        node.step(1.0)
        backend.sample_all(1.0)
        node.step(1.0)
        batch = backend.sample_all(1.0)
        samples = batch.to_samples()
        assert len(batch) == len(samples) == 6
        for i, s in enumerate(samples):
            assert s.cgroup_path == batch.paths[i]
            assert s.vm_name == batch.vm_names[i]
            assert s.vcpu_index == int(batch.vcpu_indices[i])
            assert s.tid == int(batch.tids[i])
            assert s.consumed_cycles == batch.consumed[i]
            assert s.core == int(batch.cores[i])
            assert s.core_freq_mhz == batch.core_freq_mhz[i]

    def test_subset_materialisation(self):
        node, _, backend = _host()
        node.step(1.0)
        batch = backend.sample_all(1.0)
        subset = batch.to_samples([0, 2])
        assert [s.cgroup_path for s in subset] == [
            batch.paths[0], batch.paths[2],
        ]

    def test_roundtrip_from_samples(self):
        node, _, backend = _host()
        node.step(1.0)
        samples = backend.read_vcpu_samples(1.0)
        batch = SampleBatch.from_samples(samples, 1.0)
        assert _sig(batch.to_samples()) == _sig(samples)


class TestApplyCapsParity:
    def _caps(self, backend):
        node_paths = [s.cgroup_path for s in backend.read_vcpu_samples(1.0)]
        return {p: 20_000 + 1_000 * i for i, p in enumerate(sorted(node_paths))}

    def test_full_write_matches(self):
        node_a, _, back_a = _host()
        node_b, _, back_b = _host()
        node_a.step(1.0)
        node_b.step(1.0)
        caps = self._caps(back_a)
        self._caps(back_b)  # advance B's sampling state identically
        written_a = back_a.write_caps(caps, ENF_US)
        paths = list(caps)
        quotas = np.array([caps[p] for p in paths], dtype=np.int64)
        written_b = back_b.apply_caps(paths, quotas, None, ENF_US)
        assert written_a == written_b
        assert back_a._last_cap == back_b._last_cap
        for path in paths:
            assert node_a.fs.read(f"{path}/cpu.max") == node_b.fs.read(
                f"{path}/cpu.max"
            )

    def test_dirty_mask_skips_clean_rows(self):
        node, _, backend = _host()
        node.step(1.0)
        caps = self._caps(backend)
        paths = list(caps)
        quotas = np.array([caps[p] for p in paths], dtype=np.int64)
        backend.apply_caps(paths, quotas, None, ENF_US)
        skipped_before = backend.stats.cap_writes_skipped
        # Change one row only; a dirty mask must write just that row.
        quotas2 = quotas.copy()
        quotas2[2] += 5_000
        dirty = quotas2 != quotas
        written = backend.apply_caps(paths, quotas2, dirty, ENF_US)
        assert written == {paths[2]: int(quotas2[2])}
        assert backend.stats.cap_writes_skipped == skipped_before + len(paths) - 1
        assert node.fs.read(f"{paths[2]}/cpu.max").split() == [
            str(quotas2[2]), str(ENF_US),
        ]
        # And the clean rows still hold their previous quota.
        assert node.fs.read(f"{paths[0]}/cpu.max").split() == [
            str(quotas[0]), str(ENF_US),
        ]


def _plan(kind):
    return FaultPlan(
        [
            FaultSpec(
                kind=kind,
                target="*",
                start_tick=1,
                end_tick=3,
                probability=1.0,
                error="EIO",
                jitter_frac=0.05,
            )
        ],
        seed=5,
    )


class TestFaultParity:
    """Every fault kind perturbs both spellings identically."""

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_samples_identical_under_fault(self, kind):
        node_a, _, back_a = _host(plan=_plan(kind))
        node_b, _, back_b = _host(plan=_plan(kind))
        back_a.tolerate_errors = True
        back_b.tolerate_errors = True
        for tick in range(6):
            node_a.step(1.0)
            node_b.step(1.0)
            a, a_exc = self._try(lambda: back_a.read_vcpu_samples(1.0))
            b, b_exc = self._try(lambda: back_b.sample_all(1.0).to_samples())
            if a_exc is not None or b_exc is not None:
                assert type(a_exc) is type(b_exc), (kind, tick, a_exc, b_exc)
                assert str(a_exc) == str(b_exc)
            else:
                assert _sig(a) == _sig(b), (kind, tick)
            # The batch hook advanced both injectors' clocks in lockstep
            # even when sample_all fell back to the list scan internally.
            assert back_a.tick_index == back_b.tick_index
            assert back_a.injected == back_b.injected

    @pytest.mark.parametrize("kind", ("write_error", "crash"))
    def test_writes_identical_under_fault(self, kind):
        node_a, _, back_a = _host(plan=_plan(kind))
        node_b, _, back_b = _host(plan=_plan(kind))
        back_a.tolerate_errors = True
        back_b.tolerate_errors = True
        for tick in range(6):
            node_a.step(1.0)
            node_b.step(1.0)
            a_s, a_exc = self._try(lambda: back_a.read_vcpu_samples(1.0))
            b_s, b_exc = self._try(lambda: back_b.sample_all(1.0))
            assert type(a_exc) is type(b_exc)
            if a_exc is not None:
                continue  # crashed monitoring batch: nothing to write
            caps = {
                s.cgroup_path: 15_000 + 1_000 * tick + 500 * i
                for i, s in enumerate(sorted(a_s, key=lambda s: s.cgroup_path))
            }
            paths = list(caps)
            quotas = np.array([caps[p] for p in paths], dtype=np.int64)
            wa, wa_exc = self._try(lambda: back_a.write_caps(caps, ENF_US))
            wb, wb_exc = self._try(
                lambda: back_b.apply_caps(paths, quotas, None, ENF_US)
            )
            assert type(wa_exc) is type(wb_exc), (kind, tick)
            if wa_exc is not None:
                continue
            assert wa == wb
            assert back_a._last_cap == back_b._last_cap
            assert set(back_a.last_write_errors) == set(back_b.last_write_errors)

    def test_crash_raises_controller_crash_at_same_tick(self):
        node_a, _, back_a = _host(plan=_plan("crash"))
        node_b, _, back_b = _host(plan=_plan("crash"))
        crashed_a, crashed_b = [], []
        for tick in range(6):
            node_a.step(1.0)
            node_b.step(1.0)
            _, a_exc = self._try(lambda: back_a.read_vcpu_samples(1.0))
            _, b_exc = self._try(lambda: back_b.sample_all(1.0))
            if isinstance(a_exc, ControllerCrash):
                crashed_a.append(tick)
            if isinstance(b_exc, ControllerCrash):
                crashed_b.append(tick)
        assert crashed_a == crashed_b
        assert crashed_a  # the 1..3 window with p=1.0 must fire

    @staticmethod
    def _try(fn):
        try:
            return fn(), None
        except Exception as exc:  # noqa: BLE001 - parity needs every kind
            return None, exc


class TestSnapshotRestoreParity:
    def test_bulk_identical_after_restore(self):
        """A bulk-engine controller restored from a snapshot mid-run
        produces the same reports as an uninterrupted twin."""

        def build(seed=23):
            node, hv, _ = make_host(seed=seed)
            ctrl = VirtualFrequencyController(
                node.fs, node.procfs, node.sysfs,
                num_cpus=node.spec.logical_cpus,
                fmax_mhz=node.spec.fmax_mhz,
                config=ControllerConfig.paper_evaluation(engine="bulk"),
            )
            for k in range(3):
                vm = hv.provision(TMPL, f"vm-{k}")
                attach(vm, ConstantWorkload(2, level=0.3 + 0.2 * k))
                ctrl.register_vm(vm.name, TMPL.vfreq_mhz)
            return node, ctrl

        node_x, ctrl_x = build()
        node_y, ctrl_y = build()
        for tick in range(5):
            node_x.step(1.0)
            node_y.step(1.0)
            ctrl_x.tick(float(tick + 1))
            ctrl_y.tick(float(tick + 1))
        # Y's controller restarts: fresh instance, state from snapshot.
        state = snapshot(ctrl_y)
        ctrl_y2 = VirtualFrequencyController(
            node_y.fs, node_y.procfs, node_y.sysfs,
            num_cpus=node_y.spec.logical_cpus,
            fmax_mhz=node_y.spec.fmax_mhz,
            config=ControllerConfig.paper_evaluation(engine="bulk"),
        )
        restore(ctrl_y2, state)
        for tick in range(5, 10):
            node_x.step(1.0)
            node_y.step(1.0)
            rx = ctrl_x.tick(float(tick + 1))
            ry = ctrl_y2.tick(float(tick + 1))
            assert rx.allocations == ry.allocations, tick
            assert rx.wallets == ry.wallets
            assert _sig(rx.samples) == _sig(ry.samples)
            dx = {p: (d.estimate_cycles, d.trend, d.case)
                  for p, d in rx.decisions.items()}
            dy = {p: (d.estimate_cycles, d.trend, d.case)
                  for p, d in ry.decisions.items()}
            assert dx == dy
