"""Regression tests for auction tie-breaking (ISSUE 4, satellite 2).

Two VMs with equal credits and equal demand are the degenerate case
where any nondeterminism in the heap order would show: the spread order
must be identical run-to-run, across both engines, and across a
snapshot restore mid-run.  The tie is broken by VM name (the total
order in the heap entry), so "a" shops before "b" — forever.
"""

from repro.checking import Trace, replay
from repro.core.auction import run_auction
from repro.core.config import ControllerConfig
from repro.core.credits import CreditLedger


def _tied_auction(market):
    ledger = CreditLedger(ControllerConfig.paper_evaluation())
    ledger.set_balance("vm-a", 50_000.0)
    ledger.set_balance("vm-b", 50_000.0)
    demands = {"/m/vm-a/vcpu0": 40_000.0, "/m/vm-b/vcpu0": 40_000.0}
    vm_of = {"/m/vm-a/vcpu0": "vm-a", "/m/vm-b/vcpu0": "vm-b"}
    return run_auction(market, demands, vm_of, ledger, window=10_000.0)


class TestUnitTieBreak:
    def test_name_order_wins_the_single_window(self):
        """With exactly one window of cycles for sale, the name-ordered
        first VM gets it — deterministically."""
        outcome = _tied_auction(market=10_000.0)
        assert outcome.purchased == {"/m/vm-a/vcpu0": 10_000.0}
        assert outcome.spent_per_vm == {"vm-a": 10_000.0}

    def test_equal_split_when_market_allows(self):
        outcome = _tied_auction(market=80_000.0)
        assert outcome.purchased["/m/vm-a/vcpu0"] == outcome.purchased["/m/vm-b/vcpu0"]

    def test_repeated_runs_identical(self):
        first = _tied_auction(market=30_000.0)
        second = _tied_auction(market=30_000.0)
        assert first.purchased == second.purchased
        assert first.spent_per_vm == second.spent_per_vm
        assert first.rounds == second.rounds


def _tied_trace(with_restart):
    """Two identical saturated VMs; optional mid-run controller restart."""
    events = [
        {"kind": "provision", "vm": "vm-a", "vcpus": 1, "vfreq": 900.0},
        {"kind": "provision", "vm": "vm-b", "vcpus": 1, "vfreq": 900.0},
        {"kind": "demand", "vm": "vm-a", "level": 1.0},
        {"kind": "demand", "vm": "vm-b", "level": 1.0},
    ]
    for t in range(12):
        if with_restart and t == 6:
            events.append({"kind": "restart"})
        events.append({"kind": "tick"})
    return Trace(header=Trace.make_header(seed=17), events=events)


class TestWholeLoopTieBreak:
    def test_identical_spread_across_engines(self):
        """replay() under both engines asserts bit-identity of every
        auction field each tick — a tie broken differently by the
        vectorized path would fail here as engine_identity."""
        result = replay(_tied_trace(with_restart=False), collect_reports=True)
        assert result.ok, [str(v) for v in result.violations]
        # And the tie itself resolves symmetrically over the run: equal
        # wallets, equal demand -> equal cumulative purchases.
        scalar = result.reports["scalar"]
        bought = {"vm-a": 0.0, "vm-b": 0.0}
        for report in scalar:
            if report.auction is None:
                continue
            for vm, spent in report.auction.spent_per_vm.items():
                bought[vm] += spent
        assert abs(bought["vm-a"] - bought["vm-b"]) < 1e-6

    def test_identical_spread_across_snapshot_restore(self):
        """A snapshot restore mid-run (wallets, histories and usage
        baselines all carried) must not perturb the spread order: every
        tick's auction outcome matches the uninterrupted run."""
        plain = replay(_tied_trace(with_restart=False), collect_reports=True)
        restarted = replay(_tied_trace(with_restart=True), collect_reports=True)
        assert plain.ok and restarted.ok
        for engine in plain.engines:
            for a, b in zip(plain.reports[engine], restarted.reports[engine]):
                assert a.allocations == b.allocations
                assert a.wallets == b.wallets
                if a.auction is None:
                    assert b.auction is None
                    continue
                assert a.auction.purchased == b.auction.purchased
                assert a.auction.spent_per_vm == b.auction.spent_per_vm
