"""Tests for stage 3 — credits (Eq. 4) and base capping (Eq. 5)."""

import pytest

from repro.core.config import ControllerConfig
from repro.core.credits import CreditLedger, apply_base_capping


@pytest.fixture
def ledger():
    return CreditLedger(ControllerConfig.paper_evaluation())


class TestEq4Accrual:
    def test_underconsumption_earns_difference(self, ledger):
        # C_i = 200k, two vCPUs consumed 50k and 150k -> earn 150k + 50k.
        gain = ledger.accrue("vm", [50_000, 150_000], 200_000)
        assert gain == pytest.approx(200_000)
        assert ledger.balance("vm") == pytest.approx(200_000)

    def test_overconsumption_earns_nothing(self, ledger):
        gain = ledger.accrue("vm", [250_000, 300_000], 200_000)
        assert gain == 0.0

    def test_mixed_vcpus_only_frugal_ones_count(self, ledger):
        gain = ledger.accrue("vm", [100_000, 500_000], 200_000)
        assert gain == pytest.approx(100_000)

    def test_accrual_accumulates_over_iterations(self, ledger):
        ledger.accrue("vm", [0.0], 100_000)
        ledger.accrue("vm", [0.0], 100_000)
        assert ledger.balance("vm") == pytest.approx(200_000)

    def test_credit_cap_enforced(self):
        cfg = ControllerConfig(credit_cap=150_000.0)
        ledger = CreditLedger(cfg)
        ledger.accrue("vm", [0.0], 100_000)
        ledger.accrue("vm", [0.0], 100_000)
        assert ledger.balance("vm") == pytest.approx(150_000)

    def test_negative_guarantee_rejected(self, ledger):
        with pytest.raises(ValueError):
            ledger.accrue("vm", [0.0], -1.0)


class TestSpend:
    def test_spend_deducts(self, ledger):
        ledger.accrue("vm", [0.0], 100_000)
        ledger.spend("vm", 40_000)
        assert ledger.balance("vm") == pytest.approx(60_000)

    def test_overspend_rejected(self, ledger):
        ledger.accrue("vm", [0.0], 100_000)
        with pytest.raises(ValueError):
            ledger.spend("vm", 100_001)

    def test_negative_spend_rejected(self, ledger):
        with pytest.raises(ValueError):
            ledger.spend("vm", -1.0)

    def test_unknown_vm_has_zero_balance(self, ledger):
        assert ledger.balance("ghost") == 0.0

    def test_forget(self, ledger):
        ledger.accrue("vm", [0.0], 100_000)
        ledger.forget("vm")
        assert ledger.balance("vm") == 0.0


class TestEq5BaseCapping:
    def test_estimate_below_guarantee_passes_through(self):
        caps = apply_base_capping({"/v0": 80_000.0}, {"/v0": 200_000.0})
        assert caps["/v0"].cycles == pytest.approx(80_000.0)
        assert not caps["/v0"].wants_more

    def test_estimate_above_guarantee_clamped(self):
        caps = apply_base_capping({"/v0": 900_000.0}, {"/v0": 200_000.0})
        assert caps["/v0"].cycles == pytest.approx(200_000.0)
        assert caps["/v0"].wants_more

    def test_estimate_equal_guarantee_not_a_buyer(self):
        caps = apply_base_capping({"/v0": 200_000.0}, {"/v0": 200_000.0})
        assert caps["/v0"].cycles == pytest.approx(200_000.0)
        assert not caps["/v0"].wants_more

    def test_missing_guarantee_raises(self):
        with pytest.raises(KeyError):
            apply_base_capping({"/v0": 1.0}, {})
