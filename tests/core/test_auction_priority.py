"""Tests for the frequency-prioritised auction (§V extension)."""

import pytest

from repro.core.auction import run_auction
from repro.core.config import ControllerConfig
from repro.core.credits import CreditLedger
from repro.sim.engine import Simulation
from repro.virt.template import VMTemplate
from repro.workloads.base import attach
from repro.workloads.synthetic import ConstantWorkload
from tests.conftest import make_host


def ledger_with(**balances):
    ledger = CreditLedger(ControllerConfig.paper_evaluation())
    for vm, amount in balances.items():
        ledger.accrue(vm, [0.0], amount)
    return ledger


class TestPriorityOrdering:
    def test_priority_beats_wallet(self):
        ledger = ledger_with(rich=1_000_000, fast=50_000)
        out = run_auction(
            market=40_000.0,
            demands={"/rich": 100_000.0, "/fast": 100_000.0},
            vm_of={"/rich": "rich", "/fast": "fast"},
            ledger=ledger,
            window=40_000.0,
            priorities={"rich": 500.0, "fast": 1800.0},
        )
        # one window's worth fits; the high-frequency VM gets it despite
        # the smaller wallet
        assert out.purchased.get("/fast", 0.0) == pytest.approx(40_000.0)
        assert "/rich" not in out.purchased

    def test_credits_break_priority_ties(self):
        ledger = ledger_with(a=10_000, b=90_000)
        out = run_auction(
            market=50_000.0,
            demands={"/a": 100_000.0, "/b": 100_000.0},
            vm_of={"/a": "a", "/b": "b"},
            ledger=ledger,
            window=50_000.0,
            priorities={"a": 1800.0, "b": 1800.0},
        )
        assert out.purchased.get("/b", 0.0) == pytest.approx(50_000.0)

    def test_none_priorities_is_algorithm1(self):
        ledger = ledger_with(a=90_000, b=10_000)
        out = run_auction(
            market=50_000.0,
            demands={"/a": 100_000.0, "/b": 100_000.0},
            vm_of={"/a": "a", "/b": "b"},
            ledger=ledger,
            window=50_000.0,
            priorities=None,
        )
        assert out.purchased.get("/a", 0.0) == pytest.approx(50_000.0)


class TestConfigFlag:
    def test_validation(self):
        with pytest.raises(ValueError):
            ControllerConfig(auction_priority="roulette")

    def test_frequency_mode_in_full_loop(self):
        """With 'frequency' priority, the market share of the fast VM must
        be at least as high as under plain Algorithm 1."""
        results = {}
        for mode in ("credits", "frequency"):
            cfg = ControllerConfig.paper_evaluation()
            from dataclasses import replace

            node, hv, ctrl = make_host(config=replace(cfg, auction_priority=mode))
            fast = hv.provision(VMTemplate("f", vcpus=1, vfreq_mhz=1800.0), "fast")
            slow = hv.provision(VMTemplate("s", vcpus=1, vfreq_mhz=400.0), "slow")
            for vm in (fast, slow):
                ctrl.register_vm(vm.name, vm.template.vfreq_mhz)
                attach(vm, ConstantWorkload(1))
            # 3 more busy VMs to create contention for the market
            for k in range(3):
                vm = hv.provision(VMTemplate(f"x{k}", vcpus=1, vfreq_mhz=2300.0), f"x-{k}")
                ctrl.register_vm(vm.name, 2300.0)
                attach(vm, ConstantWorkload(1))
            sim = Simulation(node, hv, controller=ctrl, dt=0.5)
            sim.run(30.0)
            results[mode] = ctrl.reports[-1].allocations["/machine.slice/fast/vcpu0"]
        assert results["frequency"] >= results["credits"] - 1e-6
