"""Tests for the Prometheus exposition-format exporter."""

import re

import pytest

from repro.core.metrics_export import render_controller, render_report
from repro.core.controller import ControllerReport
from repro.sim.engine import Simulation
from repro.virt.template import VMTemplate
from repro.workloads.base import attach
from repro.workloads.synthetic import ConstantWorkload
from tests.conftest import make_host

T = VMTemplate("m", vcpus=1, vfreq_mhz=1200.0)


def warmed_controller():
    node, hv, ctrl = make_host()
    vm = hv.provision(T, "vm-a")
    ctrl.register_vm("vm-a", T.vfreq_mhz)
    attach(vm, ConstantWorkload(1))
    sim = Simulation(node, hv, controller=ctrl, dt=0.5)
    sim.run(5.0)
    return ctrl


class TestExport:
    def test_contains_all_metric_families(self):
        out = render_controller(warmed_controller())
        for family in (
            "vfreq_vcpu_consumed_cycles",
            "vfreq_vcpu_estimated_mhz",
            "vfreq_vcpu_allocated_cycles",
            "vfreq_vm_credit_cycles",
            "vfreq_market_initial_cycles",
            "vfreq_iteration_seconds",
        ):
            assert f"# TYPE {family} gauge" in out
            assert re.search(rf"^{family}(\{{|\s)", out, re.M), family

    def test_labels_formatted(self):
        out = render_controller(warmed_controller())
        assert re.search(r'vfreq_vcpu_estimated_mhz\{vcpu="0",vm="vm-a"\} \d', out)

    def test_stage_labels(self):
        out = render_controller(warmed_controller())
        for stage in ("monitor", "estimate", "credits", "auction", "distribute", "enforce"):
            assert f'vfreq_iteration_seconds{{stage="{stage}"}}' in out

    def test_mean_stage_seconds_family(self):
        """Per-stage tick cost averaged over retained reports, labelled
        with the active engine (docs/performance.md)."""
        ctrl = warmed_controller()
        out = render_controller(ctrl)
        assert "# TYPE vfreq_stage_seconds gauge" in out
        engine = ctrl.config.engine
        for stage in ("monitor", "estimate", "credits", "auction", "distribute", "enforce"):
            m = re.search(
                rf'^vfreq_stage_seconds\{{engine="{engine}",stage="{stage}"\}} '
                rf"([0-9.e+-]+)$",
                out,
                re.M,
            )
            assert m, stage
            mean = sum(getattr(r.timings, stage) for r in ctrl.reports) / len(
                ctrl.reports
            )
            assert float(m.group(1)) == pytest.approx(mean, rel=1e-4)

    def test_stage_seconds_zero_without_reports(self):
        node, hv, ctrl = make_host()
        out = render_controller(ctrl)
        assert 'vfreq_stage_seconds{engine="vectorized",stage="monitor"} 0' in out

    def test_exposition_format_shape(self):
        """Every non-comment line is `name{labels} value` or `name value`."""
        out = render_controller(warmed_controller())
        pattern = re.compile(r"^[a-z_]+(\{[^}]*\})? -?[0-9.e+na-]+$", re.I)
        for line in out.strip().splitlines():
            if line.startswith("#"):
                continue
            assert pattern.match(line), line

    def test_empty_controller_renders(self):
        node, hv, ctrl = make_host()
        out = render_controller(ctrl)
        assert "vfreq_market_initial_cycles 0" in out

    def test_label_escaping(self):
        report = ControllerReport(t=0.0)
        report.wallets = {'we"ird\nname': 5.0}
        out = render_report(report)
        assert 'vm="we\\"ird\\nname"' in out

    def test_backslash_in_label_escaped(self):
        report = ControllerReport(t=0.0)
        report.wallets = {"back\\slash": 1.0}
        out = render_report(report)
        assert 'vm="back\\\\slash"' in out


def families_in(text):
    """(family, [sample line indices]) in order of first appearance."""
    order, samples = [], {}
    for i, line in enumerate(text.splitlines()):
        if line.startswith("# "):
            continue
        name = line.split("{", 1)[0].split(" ", 1)[0]
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in samples:
                name = name[: -len(suffix)]
                break
        if name not in samples:
            order.append(name)
            samples[name] = []
        samples[name].append(i)
    return order, samples


class TestMetricsBuffer:
    def test_help_and_type_exactly_once_per_family(self):
        from repro.core.metrics_export import MetricsBuffer

        buf = MetricsBuffer()
        buf.family("demo_total", "counter", "A demo counter.")
        buf.add("demo_total", 1, op="a")
        # Re-declaration (second renderer, same family) must not
        # duplicate the header or clobber the first help string.
        buf.family("demo_total", "counter", "Different help text.")
        buf.add("demo_total", 2, op="b")
        out = buf.text()
        assert out.count("# HELP demo_total") == 1
        assert out.count("# TYPE demo_total") == 1
        assert "A demo counter." in out
        assert "Different help text." not in out

    def test_interleaved_adds_render_contiguous(self):
        from repro.core.metrics_export import MetricsBuffer

        buf = MetricsBuffer()
        buf.family("aaa", "gauge", "a")
        buf.family("bbb", "gauge", "b")
        buf.add("aaa", 1, k="1")
        buf.add("bbb", 1)
        buf.add("aaa", 2, k="2")
        order, samples = families_in(buf.text())
        assert order == ["aaa", "bbb"]
        for indices in samples.values():
            assert indices == list(range(indices[0], indices[-1] + 1))

    def test_undeclared_family_rejected(self):
        from repro.core.metrics_export import MetricsBuffer

        buf = MetricsBuffer()
        with pytest.raises(KeyError):
            buf.add("never_declared", 1)

    def test_help_text_escaping(self):
        from repro.core.metrics_export import _escape_help

        assert _escape_help("line\nbreak \\ slash") == "line\\nbreak \\\\ slash"


class TestSpanHistogramFamily:
    def test_histogram_shape(self):
        from repro.core.metrics_export import render_span_seconds
        from repro.obs.tracing import BUCKET_BOUNDS, Tracer

        tracer = Tracer()
        for us in (5.0, 50.0, 200000.0):
            tracer.record(
                "stage:auction", trace_id=0, parent_id=None,
                start_us=0.0, duration_us=us,
            )
        out = render_span_seconds(tracer)
        assert out.count("# TYPE vfreq_span_seconds histogram") == 1
        buckets = re.findall(
            r'vfreq_span_seconds_bucket\{le="([^"]+)",stage="auction"\} (\d+)',
            out,
        )
        assert len(buckets) == len(BUCKET_BOUNDS) + 1
        counts = [int(c) for _, c in buckets]
        assert counts == sorted(counts)  # cumulative le semantics
        assert buckets[-1][0] == "+Inf"
        assert counts[-1] == 3
        assert 'vfreq_span_seconds_count{stage="auction"} 3' in out
        m = re.search(r'vfreq_span_seconds_sum\{stage="auction"\} ([0-9.e-]+)', out)
        assert float(m.group(1)) == pytest.approx(0.200055)


class TestClusterRendering:
    def test_node_labels_keep_families_collision_free(self):
        from repro.core.metrics_export import render_cluster
        from repro.sim.node_manager import NodeManager

        manager = NodeManager(parallel=False)
        for node_id in ("n0", "n1"):
            manager.add_node(node_id, warmed_controller())
        manager.tick(0.0)
        out = render_cluster(manager)
        # Shared families render one header with contiguous samples...
        order, samples = families_in(out)
        for family, indices in samples.items():
            assert out.count(f"# HELP {family} ") == 1, family
            assert out.count(f"# TYPE {family} ") == 1, family
            assert indices == list(range(indices[0], indices[-1] + 1)), family
        # ...and per-node series are distinguished by the node label.
        for node_id in ("n0", "n1"):
            assert re.search(
                rf'vfreq_market_initial_cycles\{{node="{node_id}"\}} ', out
            ), node_id
        assert "vfreq_nodes_managed 2" in out


class TestRebalanceRendering:
    def _warmed_loop(self):
        from repro.rebalance.loop import RebalanceLoop
        from tests.rebalance.test_loop import pressured_cluster

        loop = RebalanceLoop(every=1)
        loop.rebalance_once(pressured_cluster())
        return loop

    def test_rebalance_families_render(self):
        from repro.core.metrics_export import render_rebalance

        out = render_rebalance(self._warmed_loop())
        assert "vfreq_rebalance_rounds_total 1" in out
        assert re.search(r'vfreq_migrations_total\{reason="pressure"\} \d+', out)
        assert 'vfreq_migration_seconds_bucket{le="+Inf"}' in out
        assert "vfreq_rebalance_round_seconds_count 1" in out

    def test_rejected_moves_get_their_own_reason(self):
        from repro.core.metrics_export import render_rebalance
        from repro.rebalance.loop import RebalanceLoop
        from tests.rebalance.test_loop import pressured_cluster

        loop = RebalanceLoop(every=1)
        loop.rebalance_once(pressured_cluster(fail_for={"a"}))
        out = render_rebalance(loop)
        assert re.search(r'vfreq_migrations_total\{reason="rejected"\} 1', out)

    def test_extra_labels_and_shared_buffer(self):
        from repro.core.metrics_export import MetricsBuffer, render_rebalance

        buf = MetricsBuffer()
        assert render_rebalance(
            self._warmed_loop(), buf, extra_labels={"cluster": "c0"}
        ) == ""
        out = buf.text()
        assert 'vfreq_rebalance_rounds_total{cluster="c0"} 1' in out
        assert re.search(
            r'vfreq_migrations_total\{cluster="c0",reason="pressure"\}', out
        ) or re.search(
            r'vfreq_migrations_total\{reason="pressure",cluster="c0"\}', out
        )
