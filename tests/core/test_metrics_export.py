"""Tests for the Prometheus exposition-format exporter."""

import re

import pytest

from repro.core.metrics_export import render_controller, render_report
from repro.core.controller import ControllerReport
from repro.sim.engine import Simulation
from repro.virt.template import VMTemplate
from repro.workloads.base import attach
from repro.workloads.synthetic import ConstantWorkload
from tests.conftest import make_host

T = VMTemplate("m", vcpus=1, vfreq_mhz=1200.0)


def warmed_controller():
    node, hv, ctrl = make_host()
    vm = hv.provision(T, "vm-a")
    ctrl.register_vm("vm-a", T.vfreq_mhz)
    attach(vm, ConstantWorkload(1))
    sim = Simulation(node, hv, controller=ctrl, dt=0.5)
    sim.run(5.0)
    return ctrl


class TestExport:
    def test_contains_all_metric_families(self):
        out = render_controller(warmed_controller())
        for family in (
            "vfreq_vcpu_consumed_cycles",
            "vfreq_vcpu_estimated_mhz",
            "vfreq_vcpu_allocated_cycles",
            "vfreq_vm_credit_cycles",
            "vfreq_market_initial_cycles",
            "vfreq_iteration_seconds",
        ):
            assert f"# TYPE {family} gauge" in out
            assert re.search(rf"^{family}(\{{|\s)", out, re.M), family

    def test_labels_formatted(self):
        out = render_controller(warmed_controller())
        assert re.search(r'vfreq_vcpu_estimated_mhz\{vcpu="0",vm="vm-a"\} \d', out)

    def test_stage_labels(self):
        out = render_controller(warmed_controller())
        for stage in ("monitor", "estimate", "credits", "auction", "distribute", "enforce"):
            assert f'vfreq_iteration_seconds{{stage="{stage}"}}' in out

    def test_mean_stage_seconds_family(self):
        """Per-stage tick cost averaged over retained reports, labelled
        with the active engine (docs/performance.md)."""
        ctrl = warmed_controller()
        out = render_controller(ctrl)
        assert "# TYPE vfreq_stage_seconds gauge" in out
        engine = ctrl.config.engine
        for stage in ("monitor", "estimate", "credits", "auction", "distribute", "enforce"):
            m = re.search(
                rf'^vfreq_stage_seconds\{{engine="{engine}",stage="{stage}"\}} '
                rf"([0-9.e+-]+)$",
                out,
                re.M,
            )
            assert m, stage
            mean = sum(getattr(r.timings, stage) for r in ctrl.reports) / len(
                ctrl.reports
            )
            assert float(m.group(1)) == pytest.approx(mean, rel=1e-4)

    def test_stage_seconds_zero_without_reports(self):
        node, hv, ctrl = make_host()
        out = render_controller(ctrl)
        assert 'vfreq_stage_seconds{engine="vectorized",stage="monitor"} 0' in out

    def test_exposition_format_shape(self):
        """Every non-comment line is `name{labels} value` or `name value`."""
        out = render_controller(warmed_controller())
        pattern = re.compile(r"^[a-z_]+(\{[^}]*\})? -?[0-9.e+na-]+$", re.I)
        for line in out.strip().splitlines():
            if line.startswith("#"):
                continue
            assert pattern.match(line), line

    def test_empty_controller_renders(self):
        node, hv, ctrl = make_host()
        out = render_controller(ctrl)
        assert "vfreq_market_initial_cycles 0" in out

    def test_label_escaping(self):
        report = ControllerReport(t=0.0)
        report.wallets = {'we"ird\nname': 5.0}
        out = render_report(report)
        assert 'vm="we\\"ird\\nname"' in out
