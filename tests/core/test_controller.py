"""End-to-end controller tests on a tiny simulated host.

These drive the full six-stage loop through the kernel surfaces exactly
as a real deployment would, using the simulation engine for physics.
"""

import pytest

from repro.cgroups.fs import CgroupVersion
from repro.core.config import ControllerConfig
from repro.core.units import guaranteed_cycles
from repro.sim.engine import Simulation
from repro.virt.template import VMTemplate
from repro.workloads.base import attach
from repro.workloads.synthetic import ConstantWorkload, IdleWorkload, StepWorkload
from tests.conftest import TINY, make_host

# tiny host: 4 logical cpus @ 2400 MHz -> capacity 9600 MHz.
FAST = VMTemplate("fast", vcpus=1, vfreq_mhz=1800.0)
SLOW = VMTemplate("slow", vcpus=1, vfreq_mhz=400.0)


def run_sim(node, hv, ctrl, seconds, dt=0.5):
    sim = Simulation(node, hv, controller=ctrl, dt=dt)
    sim.run(seconds)
    return sim


class TestGuaranteeEnforcement:
    def test_contended_host_converges_to_guarantees(self):
        """4 slow + 2 fast single-vCPU VMs all flat out on 4 cpus:
        committed = 4*400 + 2*1800 = 5200 <= 9600; every VM should end up
        at least at its guarantee, and fast VMs well above slow ones."""
        node, hv, ctrl = make_host()
        for k in range(4):
            vm = hv.provision(SLOW, f"slow-{k}")
            ctrl.register_vm(vm.name, SLOW.vfreq_mhz)
            attach(vm, ConstantWorkload(1))
        for k in range(2):
            vm = hv.provision(FAST, f"fast-{k}")
            ctrl.register_vm(vm.name, FAST.vfreq_mhz)
            attach(vm, ConstantWorkload(1))
        run_sim(node, hv, ctrl, 60.0)
        report = ctrl.reports[-1]
        allocs = report.allocations
        slow_cycles = guaranteed_cycles(1.0, 400.0, 2400.0)
        fast_cycles = guaranteed_cycles(1.0, 1800.0, 2400.0)
        for path, cycles in allocs.items():
            if "slow" in path:
                assert cycles >= slow_cycles * 0.95
            else:
                assert cycles >= fast_cycles * 0.95

    def test_lone_vm_gets_boosted_beyond_guarantee(self):
        """The paper's anti-waste goal: a 400 MHz VM alone on an idle node
        must be allowed to burst far beyond its guarantee."""
        node, hv, ctrl = make_host()
        vm = hv.provision(SLOW, "solo")
        ctrl.register_vm(vm.name, SLOW.vfreq_mhz)
        attach(vm, ConstantWorkload(1))
        run_sim(node, hv, ctrl, 40.0)
        alloc = list(ctrl.reports[-1].allocations.values())[0]
        assert alloc > guaranteed_cycles(1.0, 400.0, 2400.0) * 2

    def test_idle_vm_is_not_allocated_its_guarantee(self):
        """Eq. 5: the guarantee is enforced only when the estimate says it
        will be used; idle VMs keep only the floor capping."""
        node, hv, ctrl = make_host()
        cfg = ctrl.config
        vm = hv.provision(FAST, "idler")
        ctrl.register_vm(vm.name, FAST.vfreq_mhz)
        attach(vm, IdleWorkload(1))
        run_sim(node, hv, ctrl, 30.0)
        alloc = list(ctrl.reports[-1].allocations.values())[0]
        assert alloc <= cfg.min_cap_frac * 1e6 * 1.5


class TestMarketDynamics:
    def test_neighbor_idle_means_bigger_market(self):
        node, hv, ctrl = make_host()
        busy = hv.provision(FAST, "busy")
        idle = hv.provision(FAST, "idle")
        for vm in (busy, idle):
            ctrl.register_vm(vm.name, FAST.vfreq_mhz)
        attach(busy, ConstantWorkload(1))
        attach(idle, IdleWorkload(1))
        run_sim(node, hv, ctrl, 30.0)
        report = ctrl.reports[-1]
        # idle VM's guarantee stays in the market; busy VM buys/receives it
        busy_alloc = report.allocations["/machine.slice/busy/vcpu0"]
        assert busy_alloc > guaranteed_cycles(1.0, 1800.0, 2400.0)

    def test_frugal_vm_accumulates_credits(self):
        node, hv, ctrl = make_host()
        vm = hv.provision(FAST, "frugal")
        ctrl.register_vm(vm.name, FAST.vfreq_mhz)
        attach(vm, IdleWorkload(1))
        run_sim(node, hv, ctrl, 10.0)
        assert ctrl.ledger.balance("frugal") > 0

    def test_burst_reclaimed_when_guarantee_needed(self):
        """A VM bursting on spare cycles must fall back towards its
        guarantee when a neighbour wakes up and claims its own."""
        node, hv, ctrl = make_host()
        a = hv.provision(FAST, "a")
        b = hv.provision(FAST, "b")
        for vm in (a, b):
            ctrl.register_vm(vm.name, FAST.vfreq_mhz)
        attach(a, ConstantWorkload(1))
        attach(b, StepWorkload(1, times=[30.0], levels=[0.0, 1.0]))
        sim = run_sim(node, hv, ctrl, 80.0)
        report = ctrl.reports[-1]
        fast_cycles = guaranteed_cycles(1.0, 1800.0, 2400.0)
        # both get at least the guarantee at the end
        assert report.allocations["/machine.slice/a/vcpu0"] >= fast_cycles * 0.9
        assert report.allocations["/machine.slice/b/vcpu0"] >= fast_cycles * 0.9


class TestConfigurationA:
    def test_monitoring_only_never_caps(self):
        node, hv, ctrl = make_host(config=ControllerConfig.paper_evaluation().monitoring_only())
        vm = hv.provision(FAST, "vm")
        ctrl.register_vm(vm.name, FAST.vfreq_mhz)
        attach(vm, ConstantWorkload(1))
        run_sim(node, hv, ctrl, 10.0)
        assert node.fs.get_quota("/machine.slice/vm/vcpu0").unlimited
        assert ctrl.reports[-1].allocations == {}

    def test_monitoring_still_produces_samples(self):
        node, hv, ctrl = make_host(config=ControllerConfig.paper_evaluation().monitoring_only())
        vm = hv.provision(FAST, "vm")
        ctrl.register_vm(vm.name, FAST.vfreq_mhz)
        attach(vm, ConstantWorkload(1))
        run_sim(node, hv, ctrl, 10.0)
        assert len(ctrl.reports[-1].samples) == 1
        assert ctrl.reports[-1].samples[0].vfreq_mhz > 0


class TestRegistry:
    def test_unregistered_vm_ignored(self):
        node, hv, ctrl = make_host()
        vm = hv.provision(FAST, "anon")
        attach(vm, ConstantWorkload(1))
        run_sim(node, hv, ctrl, 5.0)
        assert ctrl.reports[-1].samples == []

    def test_register_validates_against_fmax(self, controller):
        with pytest.raises(ValueError):
            controller.register_vm("vm", 2401.0)
        with pytest.raises(ValueError):
            controller.register_vm("vm", 0.0)

    def test_unregister_clears_state(self):
        node, hv, ctrl = make_host()
        vm = hv.provision(FAST, "vm")
        ctrl.register_vm(vm.name, FAST.vfreq_mhz)
        attach(vm, ConstantWorkload(1))
        run_sim(node, hv, ctrl, 5.0)
        ctrl.unregister_vm("vm")
        assert ctrl.ledger.balance("vm") == 0.0
        assert ctrl.estimator.history("/machine.slice/vm/vcpu0").size == 0

    def test_unregister_matches_vm_component_not_substring(self):
        """A VM directory may contain further sub-directories whose
        names collide with another VM's; unregistering must key on the
        parsed VM component, not a path substring."""
        node, hv, ctrl = make_host()
        ctrl._current_cap["/machine.slice/vm-1/vcpu0"] = 100.0
        ctrl._current_cap["/machine.slice/foo/vm-1/vcpu0"] = 200.0
        ctrl._vm_vfreq["vm-1"] = 1200.0
        ctrl._vm_vfreq["foo"] = 1200.0
        ctrl.unregister_vm("vm-1")
        # foo's nested path contains "/vm-1/" as a substring, but its
        # VM component is "foo" — it must survive.
        assert "/machine.slice/vm-1/vcpu0" not in ctrl._current_cap
        assert "/machine.slice/foo/vm-1/vcpu0" in ctrl._current_cap

    def test_unregister_ignores_prefix_collisions(self):
        node, hv, ctrl = make_host()
        ctrl._current_cap["/machine.slice/vm-10/vcpu0"] = 100.0
        ctrl._vm_vfreq["vm-1"] = 1200.0
        ctrl._vm_vfreq["vm-10"] = 1200.0
        ctrl.unregister_vm("vm-1")
        assert "/machine.slice/vm-10/vcpu0" in ctrl._current_cap


class TestCgroupV1:
    def test_full_loop_works_on_v1(self):
        node, hv, ctrl = make_host(version=CgroupVersion.V1)
        vm = hv.provision(FAST, "vm")
        ctrl.register_vm(vm.name, FAST.vfreq_mhz)
        attach(vm, ConstantWorkload(1))
        run_sim(node, hv, ctrl, 20.0)
        quota = node.fs.get_quota("/machine.slice/vm/vcpu0")
        assert not quota.unlimited


class TestOverheadAccounting:
    def test_timings_recorded(self):
        node, hv, ctrl = make_host()
        vm = hv.provision(FAST, "vm")
        ctrl.register_vm(vm.name, FAST.vfreq_mhz)
        attach(vm, ConstantWorkload(1))
        run_sim(node, hv, ctrl, 5.0)
        assert ctrl.mean_iteration_seconds() > 0
        t = ctrl.reports[-1].timings
        assert t.total == pytest.approx(
            t.monitor + t.estimate + t.credits + t.auction + t.distribute + t.enforce
        )
