"""Tests for stage 5 — free distribution of unsold cycles."""

import pytest

from repro.core.distribute import distribute_leftovers


class TestDistribute:
    def test_proportional_to_residual_demand(self):
        out = distribute_leftovers(90.0, {"/a": 100.0, "/b": 200.0})
        assert out["/a"] == pytest.approx(30.0)
        assert out["/b"] == pytest.approx(60.0)

    def test_capped_at_demand_when_plentiful(self):
        out = distribute_leftovers(1000.0, {"/a": 100.0, "/b": 200.0})
        assert out["/a"] == pytest.approx(100.0)
        assert out["/b"] == pytest.approx(200.0)

    def test_zero_market(self):
        assert distribute_leftovers(0.0, {"/a": 10.0}) == {}

    def test_no_demand(self):
        assert distribute_leftovers(100.0, {}) == {}
        assert distribute_leftovers(100.0, {"/a": 0.0}) == {}

    def test_negative_market_rejected(self):
        with pytest.raises(ValueError):
            distribute_leftovers(-1.0, {"/a": 10.0})

    def test_total_never_exceeds_market(self):
        out = distribute_leftovers(50.0, {"/a": 100.0, "/b": 300.0, "/c": 1.0})
        assert sum(out.values()) <= 50.0 + 1e-9
