"""Property test: the vectorised engine is bit-identical to the scalar oracle.

Two closed-loop hosts — same node spec, same seed, same random demand
trace, same VM churn and the same injected sample drops — are driven
for 200 ticks, one with ``engine="scalar"`` and one with
``engine="vectorized"``.  Every report field that the Fig. 6/7 pipeline
or an operator consumes must match *exactly* (``==`` on floats, no
tolerance): allocations, wallets, stage-2 decisions, auction outcome,
market and free-distribution totals, degraded fallbacks.

The scenario deliberately hits every code path the ISSUE calls out:
warmup (fresh vCPUs mid-run), VM churn (provision + unregister/destroy
while the loop runs), degraded vCPUs (a deterministic sample-drop
wrapper plus an active ResiliencePolicy), QoS renegotiation and
config-A monitoring-only ticks are covered by the sibling suites.
"""

from __future__ import annotations

import random

from repro.core.config import ControllerConfig
from repro.core.controller import VirtualFrequencyController
from repro.core.resilience import ResiliencePolicy
from repro.hw.node import Node
from repro.hw.nodespecs import NodeSpec
from repro.virt.hypervisor import Hypervisor
from repro.virt.template import VMTemplate

SPEC = NodeSpec(
    name="equiv",
    cpu_model="test",
    sockets=1,
    cores_per_socket=4,
    threads_per_core=2,
    fmax_mhz=2400.0,
    fmin_mhz=1200.0,
    memory_mb=64 * 1024,
    freq_jitter_mhz=0.0,
)

TEMPLATE = VMTemplate("eq", vcpus=2, vfreq_mhz=500.0)
TICKS = 200


class _DroppingBackend:
    """Deterministically hide some vCPU samples (drives degraded mode).

    Wraps ``read_vcpu_samples`` only; every other attribute passes
    through to the real backend, so both engines see the exact same
    filtered stream.
    """

    def __init__(self, backend, drop_plan):
        self._backend = backend
        self._plan = drop_plan  # tick -> set of path substrings to drop
        self._tick = 0

    def __getattr__(self, name):
        return getattr(self._backend, name)

    def __setattr__(self, name, value):
        if name in ("_backend", "_plan", "_tick"):
            object.__setattr__(self, name, value)
        else:
            setattr(self._backend, name, value)

    def read_vcpu_samples(self, period_s):
        samples = self._backend.read_vcpu_samples(period_s)
        drops = self._plan.get(self._tick, ())
        self._tick += 1
        if not drops:
            return samples
        return [
            s
            for s in samples
            if not any(frag in s.cgroup_path for frag in drops)
        ]


def _build(engine):
    node = Node(SPEC, seed=99)
    hv = Hypervisor(node, enforce_admission=False)
    # Hide eq-1's vcpu0 long enough to cross degraded_after_ticks, then
    # let it recover; a second burst later re-degrades it.
    drop_plan = {t: ("/eq-1/vcpu0",) for t in list(range(40, 48)) + list(range(120, 127))}
    cfg = ControllerConfig.paper_evaluation(
        engine=engine,
        resilience=ResiliencePolicy(
            stale_sample_max_age=1, degraded_after_ticks=3
        ),
    )
    ctrl = VirtualFrequencyController(
        node.fs,
        node.procfs,
        node.sysfs,
        num_cpus=SPEC.logical_cpus,
        fmax_mhz=SPEC.fmax_mhz,
        config=cfg,
    )
    # The monitor reads through the dropping wrapper; the enforcer keeps
    # writing through the real backend (drops only affect observability).
    ctrl.monitor.backend = _DroppingBackend(ctrl.backend, drop_plan)
    return node, hv, ctrl


def _drive(engine):
    node, hv, ctrl = _build(engine)
    rng = random.Random(2024)
    vms = {}
    for k in range(4):
        vm = hv.provision(TEMPLATE, f"eq-{k}")
        ctrl.register_vm(vm.name, 500.0)
        vms[vm.name] = vm
    next_id = 4
    reports = []
    for t in range(TICKS):
        # deterministic churn: add a VM at 50/90, drop one at 70/140
        if t in (50, 90):
            vm = hv.provision(TEMPLATE, f"eq-{next_id}")
            ctrl.register_vm(vm.name, 500.0)
            vms[vm.name] = vm
            next_id += 1
        if t in (70, 140):
            name = sorted(vms)[0]
            ctrl.unregister_vm(name)
            hv.destroy(name)
            del vms[name]
        if t == 100:  # dynamic QoS renegotiation mid-run
            ctrl.set_vfreq(sorted(vms)[-1], 900.0)
        for vm in vms.values():
            vm.set_uniform_demand(rng.random())
        node.step(1.0)
        reports.append(ctrl.tick(float(t + 1)))
    return ctrl, reports


def test_vectorized_engine_is_bit_identical_to_scalar():
    ctrl_s, scalar = _drive("scalar")
    ctrl_v, vector = _drive("vectorized")
    assert len(scalar) == len(vector) == TICKS
    saw_degraded = False
    saw_warmup_after_start = False
    saw_auction = False
    for i, (a, b) in enumerate(zip(scalar, vector)):
        assert a.allocations == b.allocations, f"tick {i}: allocations"
        assert a.wallets == b.wallets, f"tick {i}: wallets"
        assert a.market_initial == b.market_initial, f"tick {i}: market"
        assert a.freely_distributed == b.freely_distributed, f"tick {i}"
        assert a.degraded == b.degraded, f"tick {i}: degraded fallbacks"
        da = {p: (d.estimate_cycles, d.trend, d.case) for p, d in a.decisions.items()}
        db = {p: (d.estimate_cycles, d.trend, d.case) for p, d in b.decisions.items()}
        assert da == db, f"tick {i}: decisions"
        assert (a.auction is None) == (b.auction is None), f"tick {i}"
        if a.auction is not None:
            assert a.auction.purchased == b.auction.purchased, f"tick {i}"
            assert a.auction.market_left == b.auction.market_left, f"tick {i}"
            assert a.auction.rounds == b.auction.rounds, f"tick {i}: rounds"
            assert a.auction.spent_per_vm == b.auction.spent_per_vm, f"tick {i}"
            saw_auction = saw_auction or bool(a.auction.purchased)
        saw_degraded = saw_degraded or bool(a.degraded)
        if i > 55:
            from repro.core.estimator import Case

            saw_warmup_after_start = saw_warmup_after_start or any(
                d.case is Case.WARMUP for d in a.decisions.values()
            )
    # the scenario really exercised the paths the ISSUE names
    assert saw_degraded, "drop plan never produced a degraded vCPU"
    assert saw_warmup_after_start, "churn never produced warmup decisions"
    assert saw_auction, "no tick ever sold auction cycles"
    # and the persistent state converged identically too
    assert ctrl_s._current_cap == ctrl_v._current_cap
    assert ctrl_s.ledger.wallets() == ctrl_v.ledger.wallets()
    assert ctrl_s.histories() == ctrl_v.histories()


def test_snapshot_roundtrips_across_engines():
    """A snapshot taken on one engine restores onto the other (same
    schema) and the loops continue bit-identically after the swap."""
    from repro.core.snapshot import restore, snapshot

    ctrl_s, _ = _drive("scalar")
    state = snapshot(ctrl_s)

    node = Node(SPEC, seed=7)
    ctrl_v = VirtualFrequencyController(
        node.fs,
        node.procfs,
        node.sysfs,
        num_cpus=SPEC.logical_cpus,
        fmax_mhz=SPEC.fmax_mhz,
        config=ControllerConfig.paper_evaluation(engine="vectorized"),
    )
    restore(ctrl_v, state)
    assert ctrl_v.histories() == ctrl_s.histories()
    assert ctrl_v.ledger.wallets() == ctrl_s.ledger.wallets()
    assert ctrl_v._current_cap == ctrl_s._current_cap
    assert snapshot(ctrl_v) == state
