"""Error-path coverage for the backend's teardown races and fault modes.

The backend deliberately swallows three classes of mid-scan errors
(FileNotFoundError on a vanished VM dir, ProcessLookupError on a dead
tid, and — in tolerant mode — transient EIO); these tests pin down the
counters and report contents for each swallowed path, which previously
had no direct coverage.
"""

import pytest

from repro.cgroups.fs import CgroupVersion
from repro.core.backend import HostBackend
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.hw.node import MACHINE_SLICE, Node
from repro.virt.hypervisor import Hypervisor
from repro.virt.template import SMALL
from tests.conftest import TINY


def make_backend(cgroup_version=CgroupVersion.V2, *, batched=True, plan=None):
    node = Node(TINY, cgroup_version=cgroup_version, seed=1)
    hv = Hypervisor(node)
    if plan is None:
        backend = HostBackend(node.fs, node.procfs, node.sysfs, batched=batched)
    else:
        backend = FaultInjector(
            plan, node.fs, node.procfs, node.sysfs, batched=batched
        )
    return node, hv, backend


class TestBatchedDeadTid:
    def test_dead_tid_skips_vcpu_and_invalidates(self, cgroup_version):
        """backend.py's ProcessLookupError swallow: the vCPU whose KVM
        thread exited is skipped, counted, and the topology rescanned."""
        node, hv, backend = make_backend(cgroup_version)
        hv.provision(SMALL, "vm-a")
        hv.provision(SMALL, "vm-b")
        backend.read_vcpu_samples(1.0)  # warm topology
        assert backend._topology is not None
        fname = (
            "cgroup.threads"
            if cgroup_version is CgroupVersion.V2
            else "tasks"
        )
        tid = int(node.fs.read(f"{MACHINE_SLICE}/vm-a/vcpu0/{fname}").split()[0])
        node.procfs.kill(tid)
        samples = backend.read_vcpu_samples(1.0)
        paths = {s.cgroup_path for s in samples}
        assert f"{MACHINE_SLICE}/vm-a/vcpu0" not in paths
        assert f"{MACHINE_SLICE}/vm-b/vcpu0" in paths
        assert backend.stats.vcpu_skips == 1
        assert backend._topology is None  # invalidated for rediscovery


class TestWalkVanishedDirs:
    def test_vm_dir_enoent_counts_vm_skip(self):
        """backend.py's per-VM FileNotFoundError swallow in the walk:
        a VM destroyed between readdir and descent is skipped whole."""
        plan = FaultPlan(
            [FaultSpec("read_error", f"{MACHINE_SLICE}/vm-a", error="ENOENT")]
        )
        node, hv, backend = make_backend(plan=plan)
        hv.provision(SMALL, "vm-a")
        hv.provision(SMALL, "vm-b")
        samples = backend.read_vcpu_samples(1.0)
        assert {s.vm_name for s in samples} == {"vm-b"}
        assert backend.stats.vm_skips == 1
        assert backend.stats.vcpu_skips == 0
        # incomplete walk: the topology must NOT be cached
        assert backend._topology is None

    def test_vcpu_file_enoent_counts_vcpu_skip(self):
        """backend.py's per-vCPU FileNotFoundError swallow in the walk."""
        plan = FaultPlan(
            [FaultSpec("read_error", "*/vm-a/vcpu0/*", error="ENOENT")]
        )
        node, hv, backend = make_backend(plan=plan)
        hv.provision(SMALL, "vm-a")
        samples = backend.read_vcpu_samples(1.0)
        paths = {s.cgroup_path for s in samples}
        assert f"{MACHINE_SLICE}/vm-a/vcpu0" not in paths
        assert f"{MACHINE_SLICE}/vm-a/vcpu1" in paths
        assert backend.stats.vcpu_skips == 1
        assert backend._topology is None


class TestTolerantVsFailFast:
    def test_eio_failfast_by_default(self):
        plan = FaultPlan([FaultSpec("read_error", "*/cpu.stat", error="EIO")])
        node, hv, backend = make_backend(plan=plan)
        hv.provision(SMALL, "vm-a")
        assert backend.tolerate_errors is False
        with pytest.raises(OSError):
            backend.read_vcpu_samples(1.0)

    def test_eio_tolerant_keeps_topology_slot(self, cgroup_version):
        """Transient EIO in tolerant mode skips the vCPU for one tick
        but keeps the cached slot — next tick it is observed again."""
        statfile = "cpu.stat" if cgroup_version is CgroupVersion.V2 else "cpuacct.usage"
        plan = FaultPlan(
            [FaultSpec("read_error", f"*/vm-a/vcpu0/{statfile}",
                       start_tick=1, end_tick=2, error="EIO")]
        )
        node, hv, backend = make_backend(cgroup_version, plan=plan)
        backend.tolerate_errors = True
        hv.provision(SMALL, "vm-a")
        first = backend.read_vcpu_samples(1.0)  # tick 0: clean, cache warm
        assert len(first) == SMALL.vcpus
        during = backend.read_vcpu_samples(1.0)  # tick 1: EIO on vcpu0
        assert len(during) == SMALL.vcpus - 1
        assert backend.stats.read_errors == 1
        assert backend.stats.vcpu_skips == 1
        assert backend._topology is not None  # slot kept, no rescan
        after = backend.read_vcpu_samples(1.0)  # tick 2: recovered
        assert len(after) == SMALL.vcpus

    def test_listdir_failure_tolerant_degrades_to_empty(self):
        plan = FaultPlan([FaultSpec("read_error", MACHINE_SLICE, error="EIO")])
        node, hv, backend = make_backend(plan=plan)
        backend.tolerate_errors = True
        hv.provision(SMALL, "vm-a")
        assert backend.read_vcpu_samples(1.0) == []
        assert backend.stats.read_errors == 1

    def test_write_errors_reported_per_path(self):
        plan = FaultPlan(
            [FaultSpec("write_error", "*/vm-a/vcpu0/*", error="EBUSY")]
        )
        node, hv, backend = make_backend(plan=plan)
        backend.tolerate_errors = True
        backend.tick_index = 0
        hv.provision(SMALL, "vm-a")
        quotas = {
            f"{MACHINE_SLICE}/vm-a/vcpu0": 40_000,
            f"{MACHINE_SLICE}/vm-a/vcpu1": 40_000,
        }
        written = backend.write_caps(quotas, 100_000)
        assert set(written) == {f"{MACHINE_SLICE}/vm-a/vcpu1"}
        assert set(backend.last_write_errors) == {f"{MACHINE_SLICE}/vm-a/vcpu0"}
        assert backend.stats.write_errors == 1
        # next batch resets the error map
        backend.plan.specs.clear()
        backend.write_caps(quotas, 100_000)
        assert backend.last_write_errors == {}

    def test_half_applied_v1_pair_drops_cap_cache(self):
        """A failed v1 quota write after a successful period write must
        forget the cached cap so the retry rewrites unconditionally."""
        plan = FaultPlan(
            [FaultSpec("write_error", "*/cpu.cfs_quota_us",
                       start_tick=0, end_tick=1, error="EBUSY")]
        )
        node, hv, backend = make_backend(CgroupVersion.V1, plan=plan)
        backend.tolerate_errors = True
        backend.tick_index = 0
        hv.provision(SMALL, "vm-a")
        path = f"{MACHINE_SLICE}/vm-a/vcpu0"
        backend.write_caps({path: 40_000}, 100_000)
        assert path in backend.last_write_errors
        assert path not in backend._last_cap
        backend.tick_index = 1  # fault window over
        written = backend.write_caps({path: 40_000}, 100_000)
        assert written == {path: 40_000}
        assert backend.stats.cap_writes_skipped == 0  # not skipped-stale
