"""Tests for stage 2 — trend estimation (Eq. 3) and the three cases."""

import numpy as np
import pytest

from repro.core.config import ControllerConfig
from repro.core.estimator import Case, TrendEstimator, trend_slope

P_US = 1_000_000.0


@pytest.fixture
def cfg():
    return ControllerConfig.paper_evaluation()


@pytest.fixture
def est(cfg):
    return TrendEstimator(cfg)


def feed(est, path, values):
    for v in values:
        est.observe(path, v)


class TestTrendSlope:
    def test_increasing_series_positive(self):
        assert trend_slope(np.array([1.0, 2.0, 3.0, 4.0])) > 0

    def test_decreasing_series_negative(self):
        assert trend_slope(np.array([4.0, 3.0, 2.0, 1.0])) < 0

    def test_flat_series_zero(self):
        assert trend_slope(np.array([5.0, 5.0, 5.0])) == 0.0

    def test_linear_slope_value(self):
        # consumption rising 100 cycles/iteration -> slope 100
        assert trend_slope(np.array([0.0, 100.0, 200.0, 300.0])) == pytest.approx(100.0)

    def test_too_short_history(self):
        assert trend_slope(np.array([1.0])) == 0.0
        assert trend_slope(np.zeros(0)) == 0.0

    def test_literal_variant_same_sign(self):
        """The paper-literal Eq. 3 (S_n centring) agrees in sign with the
        least-squares slope — the property the controller consumes."""
        rng = np.random.default_rng(1)
        for _ in range(50):
            hist = rng.uniform(0, 1e6, size=5)
            std = trend_slope(hist)
            lit = trend_slope(hist, literal=True)
            if abs(std) > 1e-6:
                assert np.sign(std) == np.sign(lit)


class TestIncreaseCase:
    def test_rising_consumption_above_trigger_doubles_cap(self, est, cfg):
        path = "/m/vm/vcpu0"
        cap = 200_000.0
        # consumption climbing, last value at 96 % of cap (> 95 % trigger)
        feed(est, path, [100_000, 140_000, 180_000, 192_000])
        d = est.decide(path, cap)
        assert d.case is Case.INCREASE
        assert d.estimate_cycles == pytest.approx(cap * cfg.increase_mult)

    def test_rising_but_below_trigger_is_stable(self, est):
        path = "/m/vm/vcpu0"
        feed(est, path, [10_000, 20_000, 30_000, 40_000])
        d = est.decide(path, 200_000.0)  # 40k << 95 % of 200k
        assert d.case is Case.STABLE

    def test_estimate_never_exceeds_one_core(self, est):
        path = "/m/vm/vcpu0"
        feed(est, path, [800_000, 900_000, 950_000, 960_000])
        d = est.decide(path, P_US)
        assert d.estimate_cycles <= P_US

    def test_saturated_at_cap_grows_even_with_flat_trend(self, est, cfg):
        """A vCPU pinned at its cap shows a flat history (it *can't* rise);
        it must still be treated as wanting more."""
        path = "/m/vm/vcpu0"
        feed(est, path, [100_000] * 5)
        d = est.decide(path, 100_000.0)
        assert d.case is Case.INCREASE
        assert d.estimate_cycles == pytest.approx(100_000.0 * cfg.increase_mult)


class TestDecreaseCase:
    def test_falling_consumption_below_trigger_shrinks(self, est, cfg):
        path = "/m/vm/vcpu0"
        feed(est, path, [500_000, 300_000, 150_000, 80_000])
        cap = 400_000.0  # 80k < 50 % of 400k
        d = est.decide(path, cap)
        assert d.case is Case.DECREASE
        assert d.estimate_cycles == pytest.approx(cap * cfg.decrease_mult)

    def test_gentle_decrease_never_below_current_use(self, est):
        path = "/m/vm/vcpu0"
        feed(est, path, [500_000, 480_000, 400_000, 390_000])
        d = est.decide(path, 800_000.0)
        assert d.estimate_cycles >= 390_000.0

    def test_falling_but_above_trigger_is_stable(self, est):
        path = "/m/vm/vcpu0"
        feed(est, path, [500_000, 480_000, 460_000, 440_000])
        d = est.decide(path, 500_000.0)  # 440k > 50 % of 500k
        assert d.case is Case.STABLE


class TestStableCase:
    def test_stable_pins_just_above_consumption(self, est, cfg):
        path = "/m/vm/vcpu0"
        feed(est, path, [300_000] * 5)
        d = est.decide(path, 500_000.0)
        assert d.case is Case.STABLE
        assert d.estimate_cycles == pytest.approx(300_000.0 / cfg.increase_trigger)
        # ... which indeed avoids triggering the increase next iteration:
        assert 300_000.0 < cfg.increase_trigger * d.estimate_cycles + 1e-6

    def test_floor_respected(self, est, cfg):
        path = "/m/vm/vcpu0"
        feed(est, path, [0.0] * 5)
        d = est.decide(path, 500_000.0)
        assert d.estimate_cycles >= cfg.min_cap_frac * P_US


class TestWarmup:
    def test_no_history_keeps_cap(self, est):
        d = est.decide("/fresh", 700_000.0)
        assert d.case is Case.WARMUP
        assert d.estimate_cycles == pytest.approx(700_000.0)

    def test_single_observation(self, est):
        est.observe("/one", 300_000.0)
        d = est.decide("/one", 500_000.0)
        assert d.case is Case.WARMUP


class TestHistory:
    def test_window_length_bounded(self, est, cfg):
        feed(est, "/p", range(20))
        assert len(est.history("/p")) == cfg.history_len

    def test_forget(self, est):
        est.observe("/p", 1.0)
        est.forget("/p")
        assert est.history("/p").size == 0

    def test_independent_paths(self, est):
        est.observe("/a", 1.0)
        est.observe("/b", 2.0)
        assert est.history("/a").tolist() == [1.0]
        assert est.history("/b").tolist() == [2.0]
