"""Property-based tests of the stage-2 estimator dynamics.

The estimator is a feedback element; these check its convergence
behaviour directly (no scheduler in the loop): feeding it the
consumption its own cap would produce must settle into a small band
around the true demand — the anti-oscillation design goal of §III-B2.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ControllerConfig
from repro.core.estimator import Case, TrendEstimator
from tests.strategies import demand_schedules

P_US = 1_000_000.0


def closed_loop(demand_cycles: float, iterations: int = 60, cfg=None):
    """Simulate cap -> consumption -> estimate feedback for one vCPU.

    Consumption each round is min(demand, cap): the vCPU uses whatever
    it wants up to its capping, like a saturating workload.
    """
    cfg = cfg or ControllerConfig.paper_evaluation()
    est = TrendEstimator(cfg)
    cap = P_US  # uncapped start, like a fresh VM
    caps = []
    for _ in range(iterations):
        consumed = min(demand_cycles, cap)
        est.observe("/v", consumed)
        cap = est.decide("/v", cap).estimate_cycles
        caps.append(cap)
    return np.asarray(caps)


class TestConvergence:
    @given(st.floats(20_000.0, 900_000.0))
    @settings(max_examples=60, deadline=None)
    def test_cap_settles_above_constant_demand(self, demand):
        caps = closed_loop(demand)
        tail = caps[-10:]
        # cap always covers demand (no starvation)...
        assert np.all(tail >= demand - 1e-6)
        # ...but within the stable case's bounded headroom
        cfg = ControllerConfig.paper_evaluation()
        assert np.all(tail <= demand / cfg.increase_trigger * cfg.increase_mult + 1e-6)

    @given(st.floats(20_000.0, 400_000.0), st.floats(500_000.0, 950_000.0))
    @settings(max_examples=40, deadline=None)
    def test_step_up_recovers(self, low, high):
        cfg = ControllerConfig.paper_evaluation()
        est = TrendEstimator(cfg)
        cap = P_US
        for _ in range(30):
            est.observe("/v", min(low, cap))
            cap = est.decide("/v", cap).estimate_cycles
        # demand jumps; the increase path must reopen the cap
        for _ in range(40):
            est.observe("/v", min(high, cap))
            cap = est.decide("/v", cap).estimate_cycles
        assert cap >= high - 1e-6

    @given(demand_schedules())
    @settings(max_examples=40, deadline=None)
    def test_tracks_arbitrary_step_sequences(self, schedule):
        """The step-up recovery property, promoted from the hand-rolled
        low-then-high loop to arbitrary piecewise-constant schedules:
        after each segment settles, the cap covers that segment's
        demand — the estimator never wedges shut after any history of
        increases and decreases."""
        cfg = ControllerConfig.paper_evaluation()
        est = TrendEstimator(cfg)
        cap = P_US
        for demand, iterations in schedule:
            for _ in range(iterations):
                est.observe("/v", min(demand, cap))
                cap = est.decide("/v", cap).estimate_cycles
            assert cap >= demand - 1e-6

    @given(st.floats(100_000.0, 900_000.0))
    @settings(max_examples=40, deadline=None)
    def test_no_sustained_oscillation(self, demand):
        """After settling, consecutive caps differ by < 10 % — the
        §III-B2 oscillation the damping is designed to avoid."""
        caps = closed_loop(demand, iterations=80)
        tail = caps[-15:]
        rel_steps = np.abs(np.diff(tail)) / tail[:-1]
        assert np.all(rel_steps < 0.10)

    def test_zero_demand_floors(self):
        caps = closed_loop(0.0)
        cfg = ControllerConfig.paper_evaluation()
        assert caps[-1] == pytest.approx(cfg.min_cap_frac * P_US, rel=0.2)

    def test_full_demand_reaches_one_core(self):
        caps = closed_loop(P_US)
        assert caps[-1] == pytest.approx(P_US)
