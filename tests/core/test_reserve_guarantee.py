"""Tests for the reserve_guarantee extension (waste-for-SLA trade)."""

from dataclasses import replace

import pytest

from repro.core.config import ControllerConfig
from repro.core.units import guaranteed_cycles
from repro.sim.engine import Simulation
from repro.virt.template import VMTemplate
from repro.workloads.base import attach
from repro.workloads.synthetic import ConstantWorkload, IdleWorkload, StepWorkload
from tests.conftest import make_host

T = VMTemplate("r", vcpus=1, vfreq_mhz=1200.0)


def host(reserve: bool):
    cfg = replace(ControllerConfig.paper_evaluation(), reserve_guarantee=reserve)
    return make_host(config=cfg)


class TestReserveGuarantee:
    def test_idle_vm_keeps_full_guarantee_reserved(self):
        node, hv, ctrl = host(reserve=True)
        vm = hv.provision(T, "idler")
        ctrl.register_vm("idler", T.vfreq_mhz)
        attach(vm, IdleWorkload(1))
        sim = Simulation(node, hv, controller=ctrl, dt=0.5)
        sim.run(20.0)
        alloc = ctrl.reports[-1].allocations["/machine.slice/idler/vcpu0"]
        assert alloc >= guaranteed_cycles(1.0, T.vfreq_mhz, 2400.0) - 1e-6

    def test_paper_mode_releases_idle_guarantee(self):
        node, hv, ctrl = host(reserve=False)
        vm = hv.provision(T, "idler")
        ctrl.register_vm("idler", T.vfreq_mhz)
        attach(vm, IdleWorkload(1))
        sim = Simulation(node, hv, controller=ctrl, dt=0.5)
        sim.run(20.0)
        alloc = ctrl.reports[-1].allocations["/machine.slice/idler/vcpu0"]
        assert alloc < guaranteed_cycles(1.0, T.vfreq_mhz, 2400.0) * 0.2

    def test_waking_vm_has_no_ramp_below_guarantee(self):
        """The point of the mode: the first busy period after a long idle
        already has at least C_i allocated."""
        node, hv, ctrl = host(reserve=True)
        vm = hv.provision(T, "waker")
        ctrl.register_vm("waker", T.vfreq_mhz)
        attach(vm, StepWorkload(1, times=[20.0], levels=[0.0, 1.0]))
        sim = Simulation(node, hv, controller=ctrl, dt=0.5)
        sim.run(40.0)
        need = guaranteed_cycles(1.0, T.vfreq_mhz, 2400.0)
        for report in ctrl.reports:
            assert report.allocations["/machine.slice/waker/vcpu0"] >= need - 1e-6

    def test_paper_mode_does_ramp(self):
        node, hv, ctrl = host(reserve=False)
        vm = hv.provision(T, "waker")
        ctrl.register_vm("waker", T.vfreq_mhz)
        attach(vm, StepWorkload(1, times=[20.0], levels=[0.0, 1.0]))
        sim = Simulation(node, hv, controller=ctrl, dt=0.5)
        sim.run(40.0)
        need = guaranteed_cycles(1.0, T.vfreq_mhz, 2400.0)
        post_step = [
            r.allocations["/machine.slice/waker/vcpu0"]
            for r in ctrl.reports
            if r.t > 20.0
        ]
        assert post_step[0] < need  # the ramp the reserve mode removes
        assert post_step[-1] >= need - 1e-6

    def test_reserved_guarantees_shrink_the_market(self):
        """The cost side: with reservation, an idle VM's guarantee never
        reaches the market for the busy neighbour to buy."""
        markets = {}
        for reserve in (False, True):
            node, hv, ctrl = host(reserve=reserve)
            busy = hv.provision(T, "busy")
            idle = hv.provision(T, "idle")
            for vm, w in ((busy, ConstantWorkload(1)), (idle, IdleWorkload(1))):
                ctrl.register_vm(vm.name, T.vfreq_mhz)
                attach(vm, w)
            sim = Simulation(node, hv, controller=ctrl, dt=0.5)
            sim.run(20.0)
            markets[reserve] = ctrl.reports[-1].market_initial
        assert markets[True] < markets[False]
