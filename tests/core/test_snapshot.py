"""Tests for controller snapshot/restore and dynamic QoS changes."""

import pytest

from repro.core.snapshot import from_json, restore, snapshot, to_json
from repro.core.units import guaranteed_cycles
from repro.sim.engine import Simulation
from repro.virt.template import VMTemplate
from repro.workloads.base import attach
from repro.workloads.synthetic import ConstantWorkload, IdleWorkload
from tests.conftest import make_host

T = VMTemplate("snap", vcpus=1, vfreq_mhz=1200.0)


def warmed_host():
    node, hv, ctrl = make_host()
    busy = hv.provision(T, "busy")
    frugal = hv.provision(T, "frugal")
    ctrl.register_vm("busy", T.vfreq_mhz)
    ctrl.register_vm("frugal", T.vfreq_mhz)
    attach(busy, ConstantWorkload(1))
    attach(frugal, IdleWorkload(1))
    sim = Simulation(node, hv, controller=ctrl, dt=0.5)
    sim.run(15.0)
    return node, hv, ctrl, sim


class TestSnapshot:
    def test_roundtrip_preserves_wallets_and_caps(self):
        node, hv, ctrl, sim = warmed_host()
        state = snapshot(ctrl)
        assert state["wallets"]["frugal"] > 0
        assert state["vm_vfreq"] == {"busy": 1200.0, "frugal": 1200.0}

        from repro.core.controller import VirtualFrequencyController

        fresh = VirtualFrequencyController(
            node.fs, node.procfs, node.sysfs,
            num_cpus=node.spec.logical_cpus, fmax_mhz=node.spec.fmax_mhz,
        )
        restore(fresh, state)
        assert fresh.ledger.balance("frugal") == ctrl.ledger.balance("frugal")
        assert fresh._current_cap == ctrl._current_cap
        for path in state["histories"]:
            assert fresh.histories()[path] == ctrl.histories()[path]

    def test_json_roundtrip(self):
        node, hv, ctrl, sim = warmed_host()
        payload = to_json(ctrl)

        from repro.core.controller import VirtualFrequencyController

        fresh = VirtualFrequencyController(
            node.fs, node.procfs, node.sysfs,
            num_cpus=node.spec.logical_cpus, fmax_mhz=node.spec.fmax_mhz,
        )
        from_json(fresh, payload)
        assert to_json(fresh) == payload

    def test_restored_controller_continues_seamlessly(self):
        """After restore, the very next iteration must not re-observe the
        whole cumulative usage as one giant consumption spike."""
        node, hv, ctrl, sim = warmed_host()
        state = snapshot(ctrl)

        from repro.core.controller import VirtualFrequencyController

        fresh = VirtualFrequencyController(
            node.fs, node.procfs, node.sysfs,
            num_cpus=node.spec.logical_cpus, fmax_mhz=node.spec.fmax_mhz,
        )
        restore(fresh, state)
        sim.controller = fresh
        sim.run(2.0)
        last = fresh.reports[-1]
        for sample in last.samples:
            assert sample.consumed_cycles <= 1.1e6  # one period's worth

    def test_bad_version_rejected(self):
        node, hv, ctrl, _ = warmed_host()
        with pytest.raises(ValueError):
            restore(ctrl, {"version": 99})

    def test_negative_wallet_rejected(self):
        node, hv, ctrl, _ = warmed_host()
        state = snapshot(ctrl)
        state["wallets"]["frugal"] = -1.0
        from repro.core.controller import VirtualFrequencyController

        fresh = VirtualFrequencyController(
            node.fs, node.procfs, node.sysfs,
            num_cpus=node.spec.logical_cpus, fmax_mhz=node.spec.fmax_mhz,
        )
        with pytest.raises(ValueError):
            restore(fresh, state)

    def test_restore_onto_nonfresh_controller_is_safe(self):
        """Restoring onto a controller that has already run must not
        double-register VMs or replay histories on top of live ones."""
        node, hv, ctrl, sim = warmed_host()
        state = snapshot(ctrl)
        sim.run(5.0)  # controller keeps running past the snapshot
        restore(ctrl, state)
        assert ctrl.ledger.wallets() == state["wallets"]
        assert ctrl._vm_vfreq == state["vm_vfreq"]
        assert ctrl._current_cap == {
            p: float(c) for p, c in state["current_caps"].items()
        }
        for path, history in state["histories"].items():
            assert ctrl.histories()[path] == [float(v) for v in history]
        # and the loop keeps working
        sim.run(2.0)
        assert ctrl.reports[-1].samples

    def test_failed_validation_leaves_target_untouched(self):
        """A corrupt snapshot must be rejected *before* any state moves
        (the old restore mutated first and raised halfway through)."""
        node, hv, ctrl, _ = warmed_host()
        state = snapshot(ctrl)
        state["wallets"]["frugal"] = -5.0
        wallets_before = ctrl.ledger.wallets()
        caps_before = dict(ctrl._current_cap)
        with pytest.raises(ValueError):
            restore(ctrl, state)
        assert ctrl.ledger.wallets() == wallets_before
        assert ctrl._current_cap == caps_before

    def test_missing_field_rejected(self):
        node, hv, ctrl, _ = warmed_host()
        state = snapshot(ctrl)
        del state["wallets"]
        with pytest.raises(ValueError, match="missing field"):
            restore(ctrl, state)

    def test_excessive_vfreq_rejected(self):
        node, hv, ctrl, _ = warmed_host()
        state = snapshot(ctrl)
        state["vm_vfreq"]["busy"] = 99_999.0
        with pytest.raises(ValueError, match="exceeds"):
            restore(ctrl, state)

    def test_restore_respects_credit_cap(self):
        """Wallet loads go through the public setter, which enforces the
        same invariants as organic accrual (no reaching into _wallets)."""
        from repro.core.config import ControllerConfig
        from repro.core.controller import VirtualFrequencyController

        node, hv, ctrl, _ = warmed_host()
        state = snapshot(ctrl)
        state["wallets"]["frugal"] = 1e12
        capped = VirtualFrequencyController(
            node.fs, node.procfs, node.sysfs,
            num_cpus=node.spec.logical_cpus, fmax_mhz=node.spec.fmax_mhz,
            config=ControllerConfig.paper_evaluation(credit_cap=1e6),
        )
        restore(capped, state)
        assert capped.ledger.balance("frugal") == 1e6


class TestPeriodicSnapshot:
    def test_controller_snapshots_every_k_ticks_and_restores(self, tmp_path):
        """--snapshot-path behaviour: periodic persistence plus
        auto-restore on construction."""
        from repro.core.config import ControllerConfig
        from repro.core.controller import VirtualFrequencyController

        snap = str(tmp_path / "ctrl.json")
        cfg = ControllerConfig.paper_evaluation(
            snapshot_path=snap, snapshot_every_ticks=3
        )
        node, hv, ctrl = make_host(config=cfg)
        vm = hv.provision(T, "persist")
        ctrl.register_vm("persist", T.vfreq_mhz)
        vm.set_uniform_demand(0.7)
        for k in range(7):
            node.step(1.0)
            ctrl.tick(float(k + 1))
        import os

        assert os.path.exists(snap)
        reborn = VirtualFrequencyController(
            node.fs, node.procfs, node.sysfs,
            num_cpus=node.spec.logical_cpus, fmax_mhz=node.spec.fmax_mhz,
            config=cfg,
        )
        # auto-restored from the tick-6 snapshot
        assert reborn._vm_vfreq == {"persist": T.vfreq_mhz}
        assert reborn.ledger.wallets() == ctrl.reports[5].wallets


class TestDynamicQoS:
    def test_set_vfreq_changes_guarantee_next_iteration(self):
        node, hv, ctrl, sim = warmed_host()
        before = ctrl.guaranteed_cycles_of("busy")
        ctrl.set_vfreq("busy", 2400.0)
        after = ctrl.guaranteed_cycles_of("busy")
        assert after == pytest.approx(guaranteed_cycles(1.0, 2400.0, 2400.0))
        assert after > before

    def test_set_vfreq_unknown_vm(self):
        _, _, ctrl, _ = warmed_host()
        with pytest.raises(KeyError):
            ctrl.set_vfreq("ghost", 1000.0)

    def test_downgrade_takes_effect_under_contention(self):
        """Renegotiating a busy VM down must actually slow it when the
        node is contended."""
        node, hv, ctrl = make_host()
        # 6 single-vCPU VMs on 4 logical CPUs: genuine contention
        # (committed 6 x 1500 = 9 000 <= 9 600 MHz capacity).
        for k in range(6):
            vm = hv.provision(VMTemplate(f"q{k}", vcpus=1, vfreq_mhz=1500.0), f"q-{k}")
            ctrl.register_vm(vm.name, 1500.0)
            attach(vm, ConstantWorkload(1))
        sim = Simulation(node, hv, controller=ctrl, dt=0.5)
        sim.run(20.0)
        high = ctrl.reports[-1].allocations["/machine.slice/q-0/vcpu0"]
        ctrl.set_vfreq("q-0", 600.0)
        sim.run(20.0)
        low = ctrl.reports[-1].allocations["/machine.slice/q-0/vcpu0"]
        assert low < high * 0.75

    def test_enforcer_skips_vanished_cgroup(self):
        node, hv, ctrl, sim = warmed_host()
        from repro.core.enforcer import Enforcer

        enforcer = Enforcer(node.fs, ctrl.config)
        written = enforcer.apply(
            {"/machine.slice/busy/vcpu0": 5e5, "/machine.slice/ghost/vcpu0": 5e5}
        )
        assert "/machine.slice/busy/vcpu0" in written
        assert "/machine.slice/ghost/vcpu0" not in written
