"""Tests for the structure-of-arrays vCPU table (repro.core.soa)."""

import numpy as np
import pytest

from repro.core.config import ControllerConfig
from repro.core.estimator import Case, TrendEstimator
from repro.core.soa import TickView, VcpuTable, decide_batch, seqsum


def table(history_len=5, capacity=4):
    return VcpuTable(history_len, capacity=capacity)


class FakeSample:
    def __init__(self, path, vm, consumed):
        self.cgroup_path = path
        self.vm_name = vm
        self.consumed_cycles = consumed


class TestSlots:
    def test_slots_are_stable_across_ticks(self):
        t = table()
        a = t.ensure_slot("/m/a/vcpu0", "a", 100.0)
        b = t.ensure_slot("/m/b/vcpu0", "b", 200.0)
        assert t.ensure_slot("/m/a/vcpu0", "a", 999.0) == a
        assert t.slot_of("/m/b/vcpu0") == b
        assert len(t) == 2

    def test_growth_preserves_state(self):
        t = table(capacity=2)
        t.ensure_slot("/p0", "a", 1.0)
        t.ensure_slot("/p1", "a", 1.0)
        t.observe(np.array([0, 1], dtype=np.intp), np.array([5.0, 6.0]))
        t.ensure_slot("/p2", "b", 2.0)  # forces a grow
        assert t.capacity >= 3
        assert t.history_of("/p0") == [5.0]
        assert t.history_of("/p1") == [6.0]
        assert t.guarantee[t.slot_of("/p2")] == 2.0

    def test_release_recycles_slot(self):
        t = table()
        s = t.ensure_slot("/p0", "a", 1.0)
        t.observe(np.array([s], dtype=np.intp), np.array([5.0]))
        t.release_path("/p0")
        assert t.slot_of("/p0") is None
        s2 = t.ensure_slot("/p1", "b", 2.0)
        assert s2 == s  # recycled
        assert t.history_of("/p1") == []  # history was wiped

    def test_release_vm_frees_all_paths_and_id(self):
        t = table()
        t.ensure_slot("/a/v0", "a", 1.0)
        t.ensure_slot("/a/v1", "a", 1.0)
        t.ensure_slot("/b/v0", "b", 2.0)
        n_ids = t.num_vm_ids
        t.release_vm("a")
        assert t.slot_of("/a/v0") is None
        assert t.slot_of("/a/v1") is None
        assert t.slot_of("/b/v0") is not None
        # the dense id is recycled by the next new VM
        t.ensure_slot("/c/v0", "c", 3.0)
        assert t.num_vm_ids == n_ids

    def test_set_vm_guarantee_refreshes_live_slots(self):
        t = table()
        s0 = t.ensure_slot("/a/v0", "a", 1.0)
        s1 = t.ensure_slot("/a/v1", "a", 1.0)
        t.set_vm_guarantee("a", 42.0)
        assert t.guarantee[s0] == 42.0
        assert t.guarantee[s1] == 42.0


class TestHistories:
    def test_window_keeps_last_n(self):
        t = table(history_len=3)
        s = t.ensure_slot("/p", "a", 1.0)
        rows = np.array([s], dtype=np.intp)
        for v in (1.0, 2.0, 3.0, 4.0):
            t.observe(rows, np.array([v]))
        assert t.history_of("/p") == [2.0, 3.0, 4.0]
        assert t.histories() == {"/p": [2.0, 3.0, 4.0]}

    def test_load_history_truncates_to_window(self):
        t = table(history_len=3)
        t.ensure_slot("/p", "a", 1.0)
        t.load_history("/p", [1.0, 2.0, 3.0, 4.0, 5.0])
        assert t.history_of("/p") == [3.0, 4.0, 5.0]

    def test_seqsum_matches_python_sum_bitwise(self):
        vals = np.array([0.1, 0.2, 0.3, 1e16, -1e16, 0.4])
        assert seqsum(vals) == sum(vals.tolist())
        assert seqsum(np.empty(0)) == 0.0


class TestDecideBatch:
    def test_matches_scalar_estimator_bitwise(self):
        cfg = ControllerConfig.paper_evaluation()
        est = TrendEstimator(cfg)
        t = table(history_len=cfg.history_len)
        rng = np.random.default_rng(1234)
        paths = [f"/m/vm{i}/vcpu0" for i in range(12)]
        caps = {}
        for path in paths:
            t.ensure_slot(path, path.split("/")[2], 1.0)
        for _ in range(30):
            consumed = rng.uniform(0.0, 1.2e6, size=len(paths))
            rows = np.array([t.slot_of(p) for p in paths], dtype=np.intp)
            vms = [p.split("/")[2] for p in paths]
            view = TickView(
                rows=rows,
                consumed=consumed,
                paths=list(paths),
                pos={p: i for i, p in enumerate(paths)},
                vms=vms,
                vm_order=[(v, i) for i, v in enumerate(dict.fromkeys(vms))],
            )
            # scalar: observe then decide, exactly like the controller
            for i, path in enumerate(paths):
                est.observe(path, float(consumed[i]))
            t.observe(rows, consumed)
            estimates, trends, cases = decide_batch(t, view, cfg)
            from repro.core.soa import _CASE_OF_CODE

            for i, path in enumerate(paths):
                d = est.decide(path, caps.get(path, 1e6))
                assert estimates[i] == d.estimate_cycles, path
                assert trends[i] == d.trend, path
                assert _CASE_OF_CODE[int(cases[i])] is d.case, path
                caps[path] = d.estimate_cycles
                t.set_cap_path(path, d.estimate_cycles)

    def test_warmup_case_flagged(self):
        cfg = ControllerConfig.paper_evaluation()
        t = table(history_len=cfg.history_len)
        s = t.ensure_slot("/p", "a", 1.0)
        rows = np.array([s], dtype=np.intp)
        consumed = np.array([5e5])
        t.observe(rows, consumed)
        view = TickView(rows=rows, consumed=consumed, paths=["/p"],
                        pos={"/p": 0}, vms=["a"], vm_order=[("a", 0)])
        _, _, cases = decide_batch(t, view, cfg)
        from repro.core.soa import _CASE_OF_CODE

        assert _CASE_OF_CODE[int(cases[0])] is Case.WARMUP
