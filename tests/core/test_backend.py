"""Tests for the batched host-backend I/O layer."""

import pytest

from repro.cgroups.fs import CgroupVersion
from repro.core.backend import BackendStats, HostBackend, vm_component
from repro.hw.node import MACHINE_SLICE, Node
from repro.virt.hypervisor import Hypervisor
from repro.virt.template import SMALL


def make_backend(cgroup_version=CgroupVersion.V2, *, batched=True):
    from tests.conftest import TINY

    node = Node(TINY, cgroup_version=cgroup_version, seed=1)
    hv = Hypervisor(node)
    backend = HostBackend(
        node.fs, node.procfs, node.sysfs, batched=batched
    )
    return node, hv, backend


class TestVmComponent:
    def test_plain_vcpu_path(self):
        assert vm_component("/machine.slice/vm-1/vcpu0") == "vm-1"

    def test_nested_path_matches_first_component(self):
        # The substring bug this helper replaces: "/vm-1/" also occurs
        # in "/machine.slice/foo/vm-1/vcpu0", but the VM there is "foo".
        assert vm_component("/machine.slice/foo/vm-1/vcpu0") == "foo"

    def test_outside_slice_is_none(self):
        assert vm_component("/user.slice/task/vcpu0") is None
        assert vm_component("/machine.slicex/vm/vcpu0") is None

    def test_custom_slice(self):
        assert vm_component("/my.slice/vm-9/vcpu1", "/my.slice") == "vm-9"


class TestSampleValues:
    """Batched and seed-walk modes must observe identical values."""

    def test_same_samples_both_modes(self, cgroup_version):
        node_a, hv_a, batched = make_backend(cgroup_version, batched=True)
        node_b, hv_b, walk = make_backend(cgroup_version, batched=False)
        for hv in (hv_a, hv_b):
            hv.provision(SMALL, "vm-a")
            hv.provision(SMALL, "vm-b")
        for node, backend in ((node_a, batched), (node_b, walk)):
            backend.read_vcpu_samples(1.0)
            for vm in ("vm-a", "vm-b"):
                node.fs.node(f"{MACHINE_SLICE}/{vm}/vcpu0").cpu.charge(250_000)
        assert batched.read_vcpu_samples(1.0) == walk.read_vcpu_samples(1.0)


class TestCounters:
    def test_walk_counts_seed_pattern(self):
        node, hv, backend = make_backend(batched=False)
        hv.provision(SMALL, "vm-a")  # 2 vCPUs
        backend.read_vcpu_samples(1.0)
        s = backend.stats
        # slice readdir + per-VM readdir; usage + tid read per vCPU;
        # one proc and one sysfs read per vCPU, no dedup.
        assert s.fs_listdirs == 2
        assert s.fs_reads == 4
        assert s.proc_reads == 2
        assert s.sysfs_reads == 2
        assert s.topology_rescans == 0

    def test_batched_steady_state_skips_tid_reads(self):
        node, hv, backend = make_backend(batched=True)
        hv.provision(SMALL, "vm-a")
        backend.read_vcpu_samples(1.0)  # cold: full walk + rescan count
        assert backend.stats.topology_rescans == 1
        before = backend.stats.copy()
        backend.read_vcpu_samples(1.0)
        delta = backend.stats - before
        # churn-guard readdir + usage read per vCPU; tids come from the
        # cache, and both vCPUs on the same core share one sysfs read.
        assert delta.fs_listdirs == 1
        assert delta.fs_reads == 2
        assert delta.proc_reads == 2
        assert delta.topology_rescans == 0
        assert delta.sysfs_reads <= 2

    def test_batch_stats_recorded(self):
        node, hv, backend = make_backend()
        hv.provision(SMALL, "vm-a")
        assert backend.last_sample_batch is None
        backend.read_vcpu_samples(1.0)
        batch = backend.last_sample_batch
        assert batch is not None
        assert batch.seconds >= 0.0
        assert batch.ops.fs_reads > 0

    def test_stats_algebra(self):
        a = BackendStats(fs_reads=3, fs_writes=1)
        b = BackendStats(fs_reads=1, sysfs_reads=2)
        assert (a + b).fs_reads == 4
        assert (a - b).fs_reads == 2
        assert (a + b).total_ops == 7
        assert a.as_dict()["fs_writes"] == 1


class TestCacheInvalidation:
    def test_late_provision_appears(self, cgroup_version):
        node, hv, backend = make_backend(cgroup_version)
        hv.provision(SMALL, "vm-a")
        assert len(backend.read_vcpu_samples(1.0)) == 2
        hv.provision(SMALL, "vm-b")  # churn guard must notice
        samples = backend.read_vcpu_samples(1.0)
        assert {s.vm_name for s in samples} == {"vm-a", "vm-b"}

    def test_destroy_disappears(self, cgroup_version):
        node, hv, backend = make_backend(cgroup_version)
        hv.provision(SMALL, "vm-a")
        hv.provision(SMALL, "vm-b")
        backend.read_vcpu_samples(1.0)
        hv.destroy("vm-b")
        samples = backend.read_vcpu_samples(1.0)
        assert {s.vm_name for s in samples} == {"vm-a"}

    def test_explicit_invalidate_forces_rescan(self):
        node, hv, backend = make_backend()
        hv.provision(SMALL, "vm-a")
        backend.read_vcpu_samples(1.0)
        backend.read_vcpu_samples(1.0)
        assert backend.stats.topology_rescans == 1
        backend.invalidate()
        backend.read_vcpu_samples(1.0)
        assert backend.stats.topology_rescans == 2

    def test_same_vm_set_does_not_rescan(self):
        node, hv, backend = make_backend()
        hv.provision(SMALL, "vm-a")
        for _ in range(5):
            backend.read_vcpu_samples(1.0)
        assert backend.stats.topology_rescans == 1


class TestCoalescedWrites:
    def _vcpu(self, hv):
        return hv.provision(SMALL, "vm-a").vcpus[0].cgroup_path

    def test_unchanged_write_skipped(self, cgroup_version):
        node, hv, backend = make_backend(cgroup_version)
        path = self._vcpu(hv)
        backend.write_caps({path: 50_000}, 100_000)
        writes = backend.stats.fs_writes
        written = backend.write_caps({path: 50_000}, 100_000)
        assert backend.stats.fs_writes == writes  # no new write issued
        assert backend.stats.cap_writes_skipped == 1
        assert written == {path: 50_000}  # still reported as in force

    def test_changed_value_rewritten(self):
        node, hv, backend = make_backend()
        path = self._vcpu(hv)
        backend.write_caps({path: 50_000}, 100_000)
        backend.write_caps({path: 60_000}, 100_000)
        assert backend.stats.fs_writes == 2
        assert node.fs.read(f"{path}/cpu.max").strip() == "60000 100000"

    def test_forget_vcpu_forces_rewrite(self):
        node, hv, backend = make_backend()
        path = self._vcpu(hv)
        backend.write_caps({path: 50_000}, 100_000)
        backend.forget_vcpu(path)
        backend.write_caps({path: 50_000}, 100_000)
        assert backend.stats.fs_writes == 2
        assert backend.stats.cap_writes_skipped == 0

    def test_unbatched_always_writes(self):
        node, hv, backend = make_backend(batched=False)
        path = self._vcpu(hv)
        backend.write_caps({path: 50_000}, 100_000)
        backend.write_caps({path: 50_000}, 100_000)
        assert backend.stats.fs_writes == 2
        assert backend.stats.cap_writes_skipped == 0

    def test_vanished_cgroup_dropped_from_result(self):
        node, hv, backend = make_backend()
        path = self._vcpu(hv)
        written = backend.write_caps(
            {path: 50_000, f"{MACHINE_SLICE}/gone/vcpu0": 10_000}, 100_000
        )
        assert written == {path: 50_000}

    def test_write_batch_stats_recorded(self):
        node, hv, backend = make_backend()
        path = self._vcpu(hv)
        backend.write_caps({path: 50_000}, 100_000)
        assert backend.last_write_batch.ops.fs_writes == 1
        backend.write_caps({path: 50_000}, 100_000)
        assert backend.last_write_batch.ops.fs_writes == 0
        assert backend.last_write_batch.ops.cap_writes_skipped == 1

    def test_uncap_clears_cache(self):
        node, hv, backend = make_backend()
        path = self._vcpu(hv)
        backend.write_caps({path: 50_000}, 100_000)
        backend.uncap(path, 100_000)
        assert node.fs.read(f"{path}/cpu.max").startswith("max")
        backend.write_caps({path: 50_000}, 100_000)
        assert backend.stats.cap_writes_skipped == 0
