"""Tests for repro.core."""
