"""Tests for stage 6 — writing cycle allocations as cgroup quotas."""

import pytest

from repro.cgroups.fs import CgroupFS, CgroupVersion
from repro.core.config import ControllerConfig
from repro.core.enforcer import MIN_QUOTA_US, Enforcer


def make(version=CgroupVersion.V2):
    fs = CgroupFS(version)
    fs.makedirs("/machine.slice/vm/vcpu0")
    return fs, Enforcer(fs, ControllerConfig.paper_evaluation())


class TestQuotaScaling:
    def test_full_core_allocation(self):
        fs, enf = make()
        # 1e6 cycles over p=1s -> 100 % of the 100 ms enforcement period.
        quota = enf.apply_one("/machine.slice/vm/vcpu0", 1_000_000.0)
        assert quota == 100_000

    def test_guarantee_scaling_small_template(self):
        fs, enf = make()
        cycles = 1e6 * 500 / 2400  # small's C_i on chetemi
        quota = enf.apply_one("/machine.slice/vm/vcpu0", cycles)
        assert quota == pytest.approx(100_000 * 500 / 2400, abs=1)

    def test_kernel_minimum_respected(self):
        fs, enf = make()
        quota = enf.apply_one("/machine.slice/vm/vcpu0", 1.0)
        assert quota == MIN_QUOTA_US

    def test_negative_rejected(self):
        _, enf = make()
        with pytest.raises(ValueError):
            enf.apply_one("/machine.slice/vm/vcpu0", -1.0)


class TestWrites:
    def test_v2_cpu_max_written(self):
        fs, enf = make()
        enf.apply_one("/machine.slice/vm/vcpu0", 500_000.0)
        assert fs.read("/machine.slice/vm/vcpu0/cpu.max") == "50000 100000\n"

    def test_v1_files_written(self):
        fs, enf = make(CgroupVersion.V1)
        enf.apply_one("/machine.slice/vm/vcpu0", 500_000.0)
        assert fs.read("/machine.slice/vm/vcpu0/cpu.cfs_quota_us") == "50000\n"
        assert fs.read("/machine.slice/vm/vcpu0/cpu.cfs_period_us") == "100000\n"

    def test_scheduler_sees_the_cap(self):
        fs, enf = make()
        enf.apply_one("/machine.slice/vm/vcpu0", 250_000.0)
        assert fs.get_quota("/machine.slice/vm/vcpu0").ratio() == pytest.approx(0.25)

    def test_apply_many(self):
        fs, enf = make()
        fs.makedirs("/machine.slice/vm/vcpu1")
        written = enf.apply(
            {"/machine.slice/vm/vcpu0": 1e5, "/machine.slice/vm/vcpu1": 2e5}
        )
        assert written == {
            "/machine.slice/vm/vcpu0": 10_000,
            "/machine.slice/vm/vcpu1": 20_000,
        }


class TestUncap:
    def test_v2_uncap(self):
        fs, enf = make()
        enf.apply_one("/machine.slice/vm/vcpu0", 1e5)
        enf.uncap("/machine.slice/vm/vcpu0")
        assert fs.get_quota("/machine.slice/vm/vcpu0").unlimited

    def test_v1_uncap(self):
        fs, enf = make(CgroupVersion.V1)
        enf.apply_one("/machine.slice/vm/vcpu0", 1e5)
        enf.uncap("/machine.slice/vm/vcpu0")
        assert fs.get_quota("/machine.slice/vm/vcpu0").unlimited


class TestState:
    def test_cycles_written_roundtrip(self):
        _, enf = make()
        enf.apply_one("/machine.slice/vm/vcpu0", 420_000.0)
        assert enf.cycles_written("/machine.slice/vm/vcpu0") == pytest.approx(
            420_000.0, abs=10.0
        )

    def test_unknown_path_is_nan(self):
        _, enf = make()
        assert enf.cycles_written("/ghost") != enf.cycles_written("/ghost")  # NaN
