"""Tests for stage 4 — the cycles auction (Eq. 6 + Algorithm 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.auction import compute_market, run_auction
from repro.core.config import ControllerConfig
from repro.core.credits import CreditLedger


def ledger_with(**balances):
    ledger = CreditLedger(ControllerConfig.paper_evaluation())
    for vm, amount in balances.items():
        ledger.accrue(vm, [0.0], amount)
    return ledger


class TestMarket:
    def test_eq6(self):
        market = compute_market(40e6, {"/a": 10e6, "/b": 20e6})
        assert market == pytest.approx(10e6)

    def test_never_negative(self):
        assert compute_market(5.0, {"/a": 10.0}) == 0.0

    def test_rejects_negative_market(self):
        with pytest.raises(ValueError):
            run_auction(-1.0, {}, {}, ledger_with(), window=1.0)


class TestAuction:
    def test_single_buyer_buys_up_to_need(self):
        ledger = ledger_with(vm1=1e6)
        out = run_auction(
            500_000.0, {"/v": 200_000.0}, {"/v": "vm1"}, ledger, window=50_000.0
        )
        assert out.purchased["/v"] == pytest.approx(200_000.0)
        assert out.market_left == pytest.approx(300_000.0)
        assert ledger.balance("vm1") == pytest.approx(1e6 - 200_000.0)

    def test_purchase_limited_by_credits(self):
        ledger = ledger_with(vm1=60_000.0)
        out = run_auction(
            500_000.0, {"/v": 200_000.0}, {"/v": "vm1"}, ledger, window=50_000.0
        )
        assert out.purchased["/v"] == pytest.approx(60_000.0)
        assert ledger.balance("vm1") == pytest.approx(0.0)

    def test_purchase_limited_by_market(self):
        ledger = ledger_with(vm1=1e6)
        out = run_auction(
            30_000.0, {"/v": 200_000.0}, {"/v": "vm1"}, ledger, window=50_000.0
        )
        assert out.purchased["/v"] == pytest.approx(30_000.0)
        assert out.market_left == pytest.approx(0.0, abs=1e-6)

    def test_window_prevents_single_round_grab(self):
        """Two buyers, one rich: the window forces alternation, so the poor
        VM still gets its share before the rich one drains the market."""
        ledger = ledger_with(rich=1e6, poor=50_000.0)
        out = run_auction(
            100_000.0,
            {"/r": 100_000.0, "/p": 100_000.0},
            {"/r": "rich", "/p": "poor"},
            ledger,
            window=10_000.0,
        )
        assert out.purchased["/p"] == pytest.approx(50_000.0)
        assert out.purchased["/r"] == pytest.approx(50_000.0)
        assert out.rounds >= 5

    def test_priority_to_larger_wallet_each_round(self):
        ledger = ledger_with(a=30_000.0, b=20_000.0)
        out = run_auction(
            10_000.0,
            {"/a": 50_000.0, "/b": 50_000.0},
            {"/a": "a", "/b": "b"},
            ledger,
            window=10_000.0,
        )
        # One window fits: the richer VM (a) gets it.
        assert out.purchased.get("/a", 0.0) == pytest.approx(10_000.0)
        assert "/b" not in out.purchased

    def test_stops_when_no_buyer_has_credits(self):
        ledger = ledger_with()  # all wallets empty
        out = run_auction(
            100_000.0, {"/v": 100_000.0}, {"/v": "vm1"}, ledger, window=10_000.0
        )
        assert out.purchased == {}
        assert out.market_left == pytest.approx(100_000.0)

    def test_multi_vcpu_vm_spreads_purchase(self):
        ledger = ledger_with(vm=100_000.0)
        out = run_auction(
            100_000.0,
            {"/v0": 30_000.0, "/v1": 30_000.0},
            {"/v0": "vm", "/v1": "vm"},
            ledger,
            window=100_000.0,
        )
        assert out.purchased["/v0"] + out.purchased["/v1"] == pytest.approx(60_000.0)

    def test_empty_demand_short_circuit(self):
        out = run_auction(100.0, {}, {}, ledger_with(), window=10.0)
        assert out.purchased == {}
        assert out.market_left == 100.0

    def test_outcome_independent_of_demand_insertion_order(self):
        """Regression: a VM's purchase is spread over its vCPUs greedily
        in list order, which used to be the demands-dict insertion order
        — monitor sample reordering changed which vCPU got the cycles.
        The per-VM path lists are now sorted once at auction start."""
        demands = {"/vm/v1": 30_000.0, "/vm/v0": 30_000.0, "/b/v0": 20_000.0}
        vm_of = {"/vm/v1": "vm", "/vm/v0": "vm", "/b/v0": "b"}
        outcomes = []
        for ordering in (list(demands), list(reversed(list(demands)))):
            ledger = ledger_with(vm=25_000.0, b=25_000.0)
            out = run_auction(
                1e6,
                {p: demands[p] for p in ordering},
                vm_of,
                ledger,
                window=10_000.0,
            )
            outcomes.append((out.purchased, out.spent_per_vm, out.rounds,
                             out.market_left, ledger.wallets()))
        assert outcomes[0] == outcomes[1]
        # and the spread itself is deterministic: lowest path first
        assert outcomes[0][0]["/vm/v0"] >= outcomes[0][0].get("/vm/v1", 0.0)


class TestAuctionProperties:
    @given(
        market=st.floats(0, 1e6),
        needs=st.lists(st.floats(0, 5e5), min_size=1, max_size=8),
        credits=st.lists(st.floats(0, 5e5), min_size=1, max_size=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_conservation_and_payment(self, market, needs, credits):
        n = min(len(needs), len(credits))
        demands = {f"/v{i}": needs[i] for i in range(n)}
        vm_of = {f"/v{i}": f"vm{i}" for i in range(n)}
        ledger = CreditLedger(ControllerConfig.paper_evaluation())
        for i in range(n):
            ledger.accrue(f"vm{i}", [0.0], credits[i])
        before = {f"vm{i}": ledger.balance(f"vm{i}") for i in range(n)}

        out = run_auction(market, demands, vm_of, ledger, window=25_000.0)

        sold = sum(out.purchased.values())
        # cycles conserved
        assert sold + out.market_left == pytest.approx(market, abs=1e-3)
        # nobody exceeds demand
        for path, bought in out.purchased.items():
            assert bought <= demands[path] + 1e-6
        # every cycle is paid for 1:1
        for i in range(n):
            spent = before[f"vm{i}"] - ledger.balance(f"vm{i}")
            bought = sum(
                v for p, v in out.purchased.items() if vm_of[p] == f"vm{i}"
            )
            assert spent == pytest.approx(bought, abs=1e-3)
            assert ledger.balance(f"vm{i}") >= -1e-9
