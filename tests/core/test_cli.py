"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_eval1_defaults(self):
        args = build_parser().parse_args(["eval1"])
        assert args.node == "chetemi"
        assert args.config == "both"
        assert args.duration == 600.0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])

    def test_fault_and_snapshot_flags_round_trip(self):
        from repro.cli import _config_overrides
        from repro.core.resilience import ResiliencePolicy

        args = build_parser().parse_args([
            "eval1", "--fault-plan", "plan.json",
            "--snapshot-path", "ctrl.json", "--snapshot-every", "5",
        ])
        overrides = _config_overrides(args)
        assert overrides["fault_plan_path"] == "plan.json"
        assert overrides["snapshot_path"] == "ctrl.json"
        assert overrides["snapshot_every_ticks"] == 5
        # --fault-plan implies the resilience policy
        assert isinstance(overrides["resilience"], ResiliencePolicy)

    def test_resilience_flag_alone(self):
        from repro.cli import _config_overrides
        from repro.core.resilience import ResiliencePolicy

        args = build_parser().parse_args(["eval2", "--resilience"])
        overrides = _config_overrides(args)
        assert isinstance(overrides["resilience"], ResiliencePolicy)
        assert "fault_plan_path" not in overrides

    def test_flags_route_into_config(self):
        from repro.cli import _config_overrides
        from repro.core.config import ControllerConfig

        args = build_parser().parse_args([
            "eval1", "--fault-plan", "p.json", "--snapshot-every", "2",
        ])
        cfg = ControllerConfig.paper_evaluation().with_overrides(
            **_config_overrides(args)
        )
        assert cfg.fault_plan_path == "p.json"
        assert cfg.snapshot_every_ticks == 2
        with pytest.raises(ValueError):
            ControllerConfig.paper_evaluation(snapshot_every_ticks=0)


class TestCommands:
    def test_eval1_quick(self, capsys):
        rc = main([
            "eval1", "--node", "chetemi", "--config", "B",
            "--duration", "10", "--time-scale", "0.5",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "configuration B" in out
        assert "small MHz" in out
        assert "controller iteration cost" in out

    def test_eval2_quick(self, capsys):
        rc = main(["eval2", "--config", "A", "--duration", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "medium MHz" in out

    def test_placement(self, capsys):
        rc = main(["placement"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "core splitting (Eq. 7)" in out
        assert "vCPU count x1.8" in out
        # the three node counts appear
        assert "22/22" in out
        assert "15/22" in out

    def test_eval1_scores_path(self, capsys):
        rc = main([
            "eval1", "--config", "B", "--duration", "400",
            "--time-scale", "0.05", "--scores",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "scores, configuration B" in out
        assert "iteration" in out

    def test_eval1_chart(self, capsys):
        rc = main([
            "eval1", "--config", "A", "--duration", "6",
            "--time-scale", "0.5", "--chart",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "* small MHz" in out  # chart legend

    def test_overhead(self, capsys):
        rc = main(["overhead", "--iterations", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "monitor" in out
        assert "total" in out

    def test_operator(self, capsys):
        rc = main(["operator", "--horizon", "60", "--rate", "0.2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "operator study" in out
        assert "Eq.7 + controller" in out
