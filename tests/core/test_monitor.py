"""Tests for stage 1 — monitoring (consumption diffs + vfreq estimation)."""

import pytest

from repro.cgroups.fs import CgroupVersion
from repro.core.monitor import Monitor
from repro.hw.node import MACHINE_SLICE, Node
from repro.virt.hypervisor import Hypervisor
from repro.virt.template import SMALL


def make_host(cgroup_version=CgroupVersion.V2, tiny=None):
    from tests.conftest import TINY

    node = Node(tiny or TINY, cgroup_version=cgroup_version, seed=1)
    hv = Hypervisor(node)
    mon = Monitor(node.fs, node.procfs, node.sysfs, period_s=1.0)
    return node, hv, mon


class TestConsumptionDiff:
    def test_first_sample_reads_zero_consumption(self, cgroup_version):
        node, hv, mon = make_host(cgroup_version)
        hv.provision(SMALL, "vm-a")
        samples = mon.sample()
        assert len(samples) == 2
        assert all(s.consumed_cycles == 0.0 for s in samples)

    def test_diff_between_iterations(self, cgroup_version):
        node, hv, mon = make_host(cgroup_version)
        vm = hv.provision(SMALL, "vm-a")
        mon.sample()
        node.fs.node(vm.vcpus[0].cgroup_path).cpu.charge(300_000)
        samples = {s.vcpu_index: s for s in mon.sample()}
        assert samples[0].consumed_cycles == pytest.approx(300_000, rel=0.01)
        assert samples[1].consumed_cycles == 0.0

    def test_diff_resets_each_iteration(self, cgroup_version):
        node, hv, mon = make_host(cgroup_version)
        vm = hv.provision(SMALL, "vm-a")
        mon.sample()
        node.fs.node(vm.vcpus[0].cgroup_path).cpu.charge(300_000)
        mon.sample()
        samples = {s.vcpu_index: s for s in mon.sample()}
        assert samples[0].consumed_cycles == 0.0


class TestVFreqEstimate:
    def test_share_times_core_frequency(self):
        node, hv, mon = make_host()
        vm = hv.provision(SMALL, "vm-a")
        mon.sample()
        # Run the node hot so cores sit at fmax.
        vm.set_uniform_demand(1.0)
        for _ in range(40):
            node.step(0.5)
        samples = mon.sample()
        # consumption over 20 s >> period; share is clamped at one core
        for s in samples:
            assert s.vfreq_mhz == pytest.approx(s.core_freq_mhz, rel=1e-6)

    def test_idle_vcpu_estimates_zero(self):
        node, hv, mon = make_host()
        hv.provision(SMALL, "vm-a")
        mon.sample()
        node.step(1.0)  # no demand set -> no allocation
        for s in mon.sample():
            assert s.vfreq_mhz == 0.0

    def test_half_share_half_frequency(self):
        node, hv, mon = make_host()
        vm = hv.provision(SMALL, "vm-a")
        # Warm DVFS to a steady point with 50 % demand.
        vm.set_uniform_demand(0.5)
        for _ in range(60):
            node.step(0.5)
        mon.sample()
        node.step(0.5)
        node.step(0.5)
        samples = mon.sample()
        for s in samples:
            assert s.vfreq_mhz == pytest.approx(0.5 * s.core_freq_mhz, rel=0.05)


class TestDiscovery:
    def test_vm_and_vcpu_names(self):
        node, hv, mon = make_host()
        hv.provision(SMALL, "vm-a")
        samples = mon.sample()
        assert {s.vm_name for s in samples} == {"vm-a"}
        assert {s.vcpu_index for s in samples} == {0, 1}
        assert {s.cgroup_path for s in samples} == {
            f"{MACHINE_SLICE}/vm-a/vcpu0",
            f"{MACHINE_SLICE}/vm-a/vcpu1",
        }

    def test_ignores_non_vcpu_children(self):
        node, hv, mon = make_host()
        hv.provision(SMALL, "vm-a")
        node.fs.makedirs(f"{MACHINE_SLICE}/vm-a/emulator")  # libvirt creates these
        assert len(mon.sample()) == 2

    def test_empty_slice(self):
        _, _, mon = make_host()
        assert mon.sample() == []

    def test_vcpu_cgroup_without_thread_skipped(self):
        node, hv, mon = make_host()
        node.fs.makedirs(f"{MACHINE_SLICE}/vm-a/vcpu0")  # no tid attached
        assert mon.sample() == []

    def test_forget_clears_state(self):
        node, hv, mon = make_host()
        vm = hv.provision(SMALL, "vm-a")
        mon.sample()
        node.fs.node(vm.vcpus[0].cgroup_path).cpu.charge(500_000)
        mon.forget(vm.vcpus[0].cgroup_path)
        samples = {s.vcpu_index: s for s in mon.sample()}
        assert samples[0].consumed_cycles == 0.0  # state was dropped


class TestCoreTracking:
    def test_core_comes_from_procfs(self):
        node, hv, mon = make_host()
        vm = hv.provision(SMALL, "vm-a")
        node.procfs.set_processor(vm.vcpus[0].tid, 3)
        samples = {s.vcpu_index: s for s in mon.sample()}
        assert samples[0].core == 3

    def test_core_freq_comes_from_sysfs(self):
        node, hv, mon = make_host()
        vm = hv.provision(SMALL, "vm-a")
        node.procfs.set_processor(vm.vcpus[0].tid, 1)
        samples = {s.vcpu_index: s for s in mon.sample()}
        assert samples[0].core_freq_mhz == pytest.approx(
            node.sysfs.scaling_cur_freq(1) / 1000.0
        )
