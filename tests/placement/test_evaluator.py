"""Tests for placement evaluation."""

import pytest

from repro.hw.cluster import Cluster, ClusterNode
from repro.hw.nodespecs import CHETEMI, CHICLET
from repro.placement.evaluator import Placement, evaluate
from repro.placement.request import PlacementRequest
from repro.virt.template import LARGE, SMALL


@pytest.fixture
def placement():
    cluster = Cluster([ClusterNode("a", CHETEMI), ClusterNode("b", CHICLET)])
    p = Placement(cluster=cluster)
    p.assign("a", PlacementRequest("s0", SMALL))
    p.assign("a", PlacementRequest("l0", LARGE))
    return p


class TestPlacement:
    def test_usage_aggregation(self, placement):
        usage = placement.usage_of("a")
        assert usage.vcpus == 6
        assert usage.demand_mhz == pytest.approx(8200.0)

    def test_nodes_used(self, placement):
        assert placement.nodes_used == 1

    def test_counts_by_template(self, placement):
        assert placement.vm_count_by_template("a") == {"small": 1, "large": 1}

    def test_hottest_node_stat(self, placement):
        assert placement.max_vms_of_template_on_spec("large", "chetemi") == 1
        assert placement.max_vms_of_template_on_spec("large", "chiclet") == 0


class TestEvaluate:
    def test_stats(self, placement):
        st = evaluate(placement)
        assert st.nodes_total == 2
        assert st.nodes_used == 1
        assert st.nodes_free == 1
        assert st.unplaced == 0
        assert st.max_mhz_load_fraction == pytest.approx(8200.0 / 96_000.0)
        # the free chiclet's idle power is "saved"
        assert st.idle_power_saved_w == pytest.approx(CHICLET.idle_power_w)
