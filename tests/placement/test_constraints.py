"""Tests for placement constraints (classic vs Eq. 7)."""

import pytest

from repro.hw.nodespecs import CHETEMI, CHICLET
from repro.placement.constraints import (
    CompositeConstraint,
    CoreSplittingConstraint,
    MemoryConstraint,
    NodeUsage,
    VcpuCountConstraint,
)
from repro.placement.request import PlacementRequest
from repro.virt.template import LARGE, SMALL, VMTemplate


def req(template, name="r"):
    return PlacementRequest(name, template)


class TestVcpuCount:
    def test_fits_up_to_logical_cpus(self):
        c = VcpuCountConstraint()
        usage = NodeUsage()
        # chetemi: 40 logical cpus -> 10 large (4 vCPUs) fit
        for k in range(10):
            r = req(LARGE, f"l{k}")
            assert c.fits(CHETEMI, usage, r)
            usage.add(r)
        assert not c.fits(CHETEMI, usage, req(SMALL))

    def test_consolidation_factor_x18(self):
        c = VcpuCountConstraint(consolidation_factor=1.8)
        usage = NodeUsage()
        # chiclet: 64 * 1.8 = 115.2 vCPUs -> 28 large VMs (112 vCPUs), paper §IV-C
        for k in range(28):
            r = req(LARGE, f"l{k}")
            assert c.fits(CHICLET, usage, r)
            usage.add(r)
        assert not c.fits(CHICLET, usage, req(LARGE, "l28"))

    def test_headroom(self):
        c = VcpuCountConstraint()
        usage = NodeUsage()
        usage.add(req(LARGE))
        assert c.headroom(CHETEMI, usage) == pytest.approx(36.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            VcpuCountConstraint(consolidation_factor=0.0)


class TestCoreSplitting:
    def test_eq7_capacity_chetemi(self):
        c = CoreSplittingConstraint()
        usage = NodeUsage()
        # Table II: 20 small + 10 large = 92 000 <= 96 000 MHz
        for k in range(20):
            usage.add(req(SMALL, f"s{k}"))
        for k in range(9):
            usage.add(req(LARGE, f"l{k}"))
        assert c.fits(CHETEMI, usage, req(LARGE, "l9"))
        usage.add(req(LARGE, "l9"))
        # one more large would need 99 200 > 96 000
        assert not c.fits(CHETEMI, usage, req(LARGE, "l10"))
        # but another 4 small (4 000) still fit
        assert c.fits(CHETEMI, usage, req(SMALL, "extra"))

    def test_vfreq_above_fmax_unplaceable(self):
        c = CoreSplittingConstraint()
        turbo = VMTemplate("turbo", vcpus=1, vfreq_mhz=3000.0)
        assert not c.fits(CHETEMI, NodeUsage(), req(turbo))

    def test_core_splitting_enables_overcommit_by_count(self):
        """The paper's pitch: a 2400 MHz core can host multiple slow vCPUs
        without count-based overcommitment."""
        c = CoreSplittingConstraint()
        usage = NodeUsage()
        # 96 small VMs = 192 vCPUs on 40 logical CPUs, but only 96 000 MHz
        for k in range(96):
            r = req(SMALL, f"s{k}")
            assert c.fits(CHETEMI, usage, r)
            usage.add(r)
        assert usage.vcpus == 192
        assert not c.fits(CHETEMI, usage, req(SMALL, "s96"))

    def test_headroom_in_mhz(self):
        c = CoreSplittingConstraint()
        usage = NodeUsage()
        usage.add(req(LARGE))
        assert c.headroom(CHETEMI, usage) == pytest.approx(96_000 - 7_200)

    def test_consolidation_factor_on_eq7(self):
        """§III-C: Eq. 7 can also take a consolidation factor — at the
        documented price of losing the strict guarantee."""
        c = CoreSplittingConstraint(consolidation_factor=1.2)
        usage = NodeUsage()
        # 96 small saturate the unscaled capacity ...
        for k in range(96):
            usage.add(req(SMALL, f"s{k}"))
        # ... x1.2 admits ~19 more
        extra = 0
        while c.fits(CHETEMI, usage, req(SMALL, f"x{extra}")):
            usage.add(req(SMALL, f"x{extra}"))
            extra += 1
        assert extra == 19
        assert usage.demand_mhz > CHETEMI.capacity_mhz  # guarantee lost


class TestMemory:
    def test_memory_limit(self):
        c = MemoryConstraint()
        usage = NodeUsage()
        big = VMTemplate("big", vcpus=1, vfreq_mhz=100.0, memory_mb=200 * 1024)
        assert c.fits(CHETEMI, usage, req(big))
        usage.add(req(big))
        assert not c.fits(CHETEMI, usage, req(big, "b2"))


class TestComposite:
    def test_all_parts_must_hold(self):
        c = CompositeConstraint([CoreSplittingConstraint(), MemoryConstraint()])
        usage = NodeUsage()
        heavy = VMTemplate("heavy", vcpus=1, vfreq_mhz=100.0, memory_mb=300 * 1024)
        assert not c.fits(CHETEMI, usage, req(heavy))  # memory fails
        assert c.fits(CHETEMI, usage, req(SMALL))

    def test_headroom_follows_first(self):
        c = CompositeConstraint([CoreSplittingConstraint(), MemoryConstraint()])
        assert c.headroom(CHETEMI, NodeUsage()) == pytest.approx(96_000)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeConstraint([])
