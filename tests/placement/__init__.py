"""Tests for repro.placement."""
