"""Tests for placement requests."""

import pytest

from repro.placement.request import PlacementRequest, expand_requests, paper_workload
from repro.virt.template import LARGE, MEDIUM, SMALL


class TestRequests:
    def test_properties_delegate_to_template(self):
        r = PlacementRequest("x", LARGE)
        assert r.vcpus == 4
        assert r.demand_mhz == 7200.0
        assert r.memory_mb == LARGE.memory_mb

    def test_expand_counts_and_names(self):
        reqs = expand_requests([(SMALL, 2), (LARGE, 1)])
        assert [r.vm_name for r in reqs] == ["small-0", "small-1", "large-0"]

    def test_expand_rejects_negative(self):
        with pytest.raises(ValueError):
            expand_requests([(SMALL, -1)])

    def test_paper_workload_composition(self):
        reqs = paper_workload()
        counts = {}
        for r in reqs:
            counts[r.template.name] = counts.get(r.template.name, 0) + 1
        assert counts == {"small": 250, "medium": 50, "large": 100}
