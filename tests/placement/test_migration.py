"""MigrationModel cost maths and ThresholdMigrationPolicy hysteresis."""

import pytest

from repro.placement.migration import (
    MigrationEvent,
    MigrationModel,
    ThresholdMigrationPolicy,
)


class TestMigrationModel:
    def test_transfer_seconds_formula(self):
        model = MigrationModel(link_gbps=10.0, dirty_page_overhead=1.3)
        # 4096 MB * 8e6 bits/MB * 1.3 / 10e9 bits/s = 4.26 s
        assert model.transfer_seconds(4096) == pytest.approx(4.26, abs=1e-3)

    def test_total_adds_downtime(self):
        model = MigrationModel(downtime_s=0.5)
        assert model.total_seconds(4096) == pytest.approx(
            model.transfer_seconds(4096) + 0.5
        )

    def test_transfer_scales_linearly_with_memory(self):
        model = MigrationModel()
        assert model.transfer_seconds(8192) == pytest.approx(
            2 * model.transfer_seconds(4096)
        )

    def test_faster_link_is_proportionally_cheaper(self):
        slow = MigrationModel(link_gbps=10.0)
        fast = MigrationModel(link_gbps=40.0)
        assert fast.transfer_seconds(4096) == pytest.approx(
            slow.transfer_seconds(4096) / 4.0
        )

    def test_no_dirty_pages_lower_bound(self):
        # overhead factor 1.0 is the theoretical minimum: one clean pass
        clean = MigrationModel(dirty_page_overhead=1.0)
        dirty = MigrationModel(dirty_page_overhead=1.5)
        assert clean.transfer_seconds(1024) < dirty.transfer_seconds(1024)

    @pytest.mark.parametrize("memory_mb", [0, -1, -4096])
    def test_nonpositive_memory_rejected(self, memory_mb):
        with pytest.raises(ValueError, match="memory_mb"):
            MigrationModel().transfer_seconds(memory_mb)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"link_gbps": 0.0},
            {"link_gbps": -10.0},
            {"dirty_page_overhead": 0.99},
            {"downtime_s": -0.1},
        ],
    )
    def test_invalid_construction_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MigrationModel(**kwargs)

    def test_zero_downtime_allowed(self):
        model = MigrationModel(downtime_s=0.0)
        assert model.total_seconds(1024) == model.transfer_seconds(1024)

    def test_frozen(self):
        model = MigrationModel()
        with pytest.raises(AttributeError):
            model.link_gbps = 1.0


class TestThresholdMigrationPolicy:
    def test_trips_only_after_patience_consecutive_strikes(self):
        policy = ThresholdMigrationPolicy(high_watermark=1.0, patience=3)
        assert policy.observe("n0", 1.5) is False
        assert policy.observe("n0", 1.5) is False
        assert policy.observe("n0", 1.5) is True

    def test_dip_below_watermark_resets_strikes(self):
        policy = ThresholdMigrationPolicy(high_watermark=1.0, patience=2)
        assert policy.observe("n0", 1.5) is False
        assert policy.observe("n0", 0.9) is False  # resets
        assert policy.observe("n0", 1.5) is False  # strike 1 again
        assert policy.observe("n0", 1.5) is True

    def test_exactly_at_watermark_is_not_a_strike(self):
        policy = ThresholdMigrationPolicy(high_watermark=1.0, patience=1)
        assert policy.observe("n0", 1.0) is False
        assert policy.observe("n0", 1.0 + 1e-9) is True

    def test_strikes_tracked_per_node(self):
        policy = ThresholdMigrationPolicy(patience=2)
        assert policy.observe("n0", 2.0) is False
        assert policy.observe("n1", 2.0) is False
        assert policy.observe("n0", 2.0) is True
        assert policy.observe("n1", 2.0) is True

    def test_reset_clears_strike_count(self):
        policy = ThresholdMigrationPolicy(patience=2)
        policy.observe("n0", 2.0)
        policy.reset("n0")
        assert policy.observe("n0", 2.0) is False

    def test_stays_tripped_while_overloaded(self):
        policy = ThresholdMigrationPolicy(patience=2)
        policy.observe("n0", 2.0)
        policy.observe("n0", 2.0)
        assert policy.observe("n0", 2.0) is True  # strike 3 >= patience

    @pytest.mark.parametrize(
        "kwargs", [{"high_watermark": 0.0}, {"patience": 0}]
    )
    def test_invalid_construction_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ThresholdMigrationPolicy(**kwargs)


class TestPickVictim:
    VMS = [("a", 2, 0.5), ("b", 4, 1.5), ("c", 2, 0.8)]

    def test_smallest_covering_vm_wins(self):
        # overload 0.6: both b (1.5) and c (0.8) cover it; c is smaller
        assert ThresholdMigrationPolicy.pick_victim(self.VMS, 0.6) == "c"

    def test_falls_back_to_largest_when_none_covers(self):
        assert ThresholdMigrationPolicy.pick_victim(self.VMS, 5.0) == "b"

    def test_empty_vm_list_gives_none(self):
        assert ThresholdMigrationPolicy.pick_victim([], 1.0) is None

    def test_tie_broken_by_name(self):
        vms = [("z", 2, 1.0), ("a", 2, 1.0)]
        # covering path takes min (first name), fallback takes max (last)
        assert ThresholdMigrationPolicy.pick_victim(vms, 0.5) == "a"
        assert ThresholdMigrationPolicy.pick_victim(vms, 9.9) == "z"


def test_migration_event_is_plain_record():
    event = MigrationEvent(t=1.0, vm_name="vm-0", source="n0",
                           target="n1", duration_s=4.76)
    assert event.vm_name == "vm-0"
    assert event.duration_s == pytest.approx(4.76)
