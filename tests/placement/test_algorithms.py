"""Tests for FirstFit/BestFit, including the §IV-C paper workload."""

import pytest

from repro.hw.cluster import Cluster
from repro.hw.nodespecs import CHETEMI, CHICLET
from repro.placement.bestfit import BestFit
from repro.placement.constraints import CoreSplittingConstraint, VcpuCountConstraint
from repro.placement.evaluator import evaluate, nodes_by_spec_used
from repro.placement.firstfit import FirstFit
from repro.placement.request import expand_requests, paper_workload
from repro.virt.template import LARGE, MEDIUM, SMALL


class TestFirstFit:
    def test_fills_in_order(self):
        cluster = Cluster.homogeneous(CHETEMI, 3)
        reqs = expand_requests([(LARGE, 14)])  # 13.33 per chetemi by Eq. 7
        p = FirstFit(CoreSplittingConstraint()).place(cluster, reqs)
        assert p.vm_count("chetemi-0") == 13
        assert p.vm_count("chetemi-1") == 1
        assert p.unplaced == []

    def test_unplaceable_recorded(self):
        cluster = Cluster.homogeneous(CHETEMI, 1)
        reqs = expand_requests([(LARGE, 20)])
        p = FirstFit(CoreSplittingConstraint()).place(cluster, reqs)
        assert len(p.unplaced) == 7


class TestBestFit:
    def test_tightest_fit_chosen(self):
        cluster = Cluster([])
        # Mixed cluster: best-fit should top up the fuller node first.
        from repro.hw.cluster import ClusterNode

        cluster = Cluster([ClusterNode("a", CHETEMI), ClusterNode("b", CHICLET)])
        algo = BestFit(CoreSplittingConstraint(), sort_requests=False)
        reqs = expand_requests([(LARGE, 14)])
        p = algo.place(cluster, reqs)
        # 13 fit on the (smaller) chetemi opened first, 1 overflows
        assert p.vm_count("a") == 13
        assert p.vm_count("b") == 1

    def test_deterministic(self):
        cluster = Cluster.paper_cluster()
        reqs = paper_workload()
        p1 = BestFit(CoreSplittingConstraint()).place(cluster, reqs)
        p2 = BestFit(CoreSplittingConstraint()).place(cluster, reqs)
        assert p1.assignments == p2.assignments

    def test_no_capacity_cluster(self):
        p = BestFit(CoreSplittingConstraint()).place(Cluster([]), paper_workload())
        assert len(p.unplaced) == 400


class TestPaperPlacementStudy:
    """§IV-C: 250 small + 50 medium + 100 large on 12 chetemi + 10 chiclet."""

    def test_total_demand(self):
        reqs = paper_workload()
        assert sum(r.demand_mhz for r in reqs) == 1_210_000

    def test_frequency_aware_bestfit_frees_nodes(self):
        p = BestFit(CoreSplittingConstraint()).place(Cluster.paper_cluster(), paper_workload())
        st = evaluate(p)
        assert st.unplaced == 0
        # Paper reports 15/22; our BFD variant packs at least as tightly.
        assert st.nodes_used <= 15
        assert st.nodes_free >= 7

    def test_vcpu_count_bestfit_uses_all_nodes(self):
        p = BestFit(VcpuCountConstraint()).place(Cluster.paper_cluster(), paper_workload())
        st = evaluate(p)
        # 1100 vCPUs on 1120 logical CPUs: every node needed (paper: 22).
        assert st.nodes_used == 22
        assert st.unplaced == 0

    def test_consolidation_18_matches_paper(self):
        p = BestFit(VcpuCountConstraint(consolidation_factor=1.8)).place(
            Cluster.paper_cluster(), paper_workload()
        )
        st = evaluate(p)
        assert st.nodes_used == 15  # paper: "to obtain the same result (15)"
        assert p.max_vms_of_template_on_spec("small", "chetemi") == 36  # paper: 36

    def test_consolidation_loses_guarantee(self):
        """With x1.8 some node carries more MHz demand than Eq. 7 allows —
        the guarantee the controller could enforce is gone."""
        p = BestFit(VcpuCountConstraint(consolidation_factor=1.8)).place(
            Cluster.paper_cluster(), paper_workload()
        )
        st = evaluate(p)
        assert st.max_mhz_load_fraction > 1.0

    def test_frequency_aware_respects_eq7_everywhere(self):
        p = BestFit(CoreSplittingConstraint()).place(Cluster.paper_cluster(), paper_workload())
        st = evaluate(p)
        assert st.max_mhz_load_fraction <= 1.0 + 1e-9

    def test_energy_projection_positive(self):
        p = BestFit(CoreSplittingConstraint()).place(Cluster.paper_cluster(), paper_workload())
        st = evaluate(p)
        assert st.idle_power_saved_w > 0

    def test_nodes_by_spec(self):
        p = BestFit(CoreSplittingConstraint()).place(Cluster.paper_cluster(), paper_workload())
        used = nodes_by_spec_used(p)
        assert sum(used.values()) == evaluate(p).nodes_used
