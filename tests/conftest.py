"""Shared fixtures: a tiny fast node and a fully wired mini-host."""

from __future__ import annotations

import pytest
from hypothesis import settings as hypothesis_settings

from repro.cgroups.fs import CgroupVersion
from repro.core.config import ControllerConfig
from repro.core.controller import VirtualFrequencyController
from repro.hw.node import Node
from repro.hw.nodespecs import NodeSpec
from repro.virt.hypervisor import Hypervisor


# CI runs with HYPOTHESIS_PROFILE=ci and --hypothesis-seed=0: derandom-
# ized, no per-example deadline (shared runners are jittery).  Local
# runs keep the default profile's random exploration.
hypothesis_settings.register_profile(
    "ci", derandomize=True, deadline=None, max_examples=25
)


TINY = NodeSpec(
    name="tiny",
    cpu_model="test 4-thread CPU",
    sockets=1,
    cores_per_socket=2,
    threads_per_core=2,
    fmax_mhz=2400.0,
    fmin_mhz=1200.0,
    memory_mb=16 * 1024,
    freq_jitter_mhz=0.0,  # deterministic by default
)


@pytest.fixture
def tiny_spec() -> NodeSpec:
    return TINY


@pytest.fixture(params=[CgroupVersion.V2, CgroupVersion.V1], ids=["v2", "v1"])
def cgroup_version(request) -> CgroupVersion:
    return request.param


@pytest.fixture
def node(tiny_spec) -> Node:
    return Node(tiny_spec, seed=42)


@pytest.fixture
def hypervisor(node) -> Hypervisor:
    return Hypervisor(node)


@pytest.fixture
def controller(node) -> VirtualFrequencyController:
    return VirtualFrequencyController(
        node.fs,
        node.procfs,
        node.sysfs,
        num_cpus=node.spec.logical_cpus,
        fmax_mhz=node.spec.fmax_mhz,
        config=ControllerConfig.paper_evaluation(),
    )


def make_host(spec: NodeSpec = TINY, *, version: CgroupVersion = CgroupVersion.V2,
              config: ControllerConfig | None = None, seed: int = 42):
    """Node + hypervisor + controller, wired like the scenario builder."""
    node = Node(spec, cgroup_version=version, seed=seed)
    hv = Hypervisor(node)
    ctrl = VirtualFrequencyController(
        node.fs,
        node.procfs,
        node.sysfs,
        num_cpus=spec.logical_cpus,
        fmax_mhz=spec.fmax_mhz,
        config=config or ControllerConfig.paper_evaluation(),
    )
    return node, hv, ctrl
