"""The billing-oracle acceptance gate.

A fuzzed 200-tick multi-tenant scenario — VM churn, ``set_vfreq``
renegotiation (tier moves), workload bursts, controller restarts —
runs under all three engines, and **every** invoice line is re-derived
by :mod:`repro.checking.billing_oracle` from the decision ledger alone
with exact float equality: accumulators, per-tick trails, and the
rendered invoices byte for byte.
"""

from repro.billing import build_invoices, invoices_to_json
from repro.checking import derive_billing, generate_trace, replay_with_billing
from repro.checking.trace import ENGINES


class TestOracleAcceptance:
    def test_200_tick_multi_tenant_exact_rederivation(self):
        trace = generate_trace(11, ticks=200, tenants=3)
        result = replay_with_billing(trace, engines=ENGINES)
        assert result.replay.ok
        assert result.violations == []
        for engine in ENGINES:
            bill = result.billing[engine]
            assert bill.meter.usage  # the run billed something
            derived = derive_billing(result.ledgers[engine], bill.book)
            assert derived.violations == []
            # exact equality, accumulator cell by accumulator cell
            assert derived.usage == bill.meter.usage
            assert derived.credits == bill.meter.credits
            assert derived.tick_revenue == bill.meter.tick_revenue
            assert derived.tick_credits == bill.meter.tick_credits
            # and the invoices the two sides render are byte-identical
            oracle_invoices = build_invoices(
                derived.usage, derived.credits, node=bill.node_id
            )
            assert invoices_to_json(oracle_invoices) == invoices_to_json(
                bill.invoices()
            )
        # the scenario genuinely exercises the tenant dimension
        tenants = {key[0] for key in result.billing["scalar"].meter.usage}
        assert len(tenants) >= 2

    def test_restart_preserves_charges_and_stays_auditable(self):
        """Charges accrued before a controller crash survive on the
        invoice, and the oracle still re-derives the merged totals
        (the tick counter legitimately rewinds after a restart)."""
        trace = generate_trace(11, ticks=120, tenants=2)
        if not any(e.get("kind") == "restart" for e in trace.events):
            trace.events.insert(
                len(trace.events) // 2, {"kind": "restart"}
            )
        result = replay_with_billing(trace, engines=("scalar",))
        assert result.replay.ok
        assert result.violations == []
        assert result.billing["scalar"].meter.usage
