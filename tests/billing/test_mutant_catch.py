"""End-to-end acceptance of the billing oracle + shrinker pipeline.

Two intentionally-planted billing mutants — an off-by-one in the
cycle-class decomposition and a wrong (scarcity-blind) spot rate —
must each be (1) caught by the oracle at the very first control tick,
(2) shrunk by delta debugging to a <= 2-event minimal repro, and
(3) red when that repro replays from disk — while the unmutated
engine replays the same traces green.  This is the billing analogue
of ``tests/checking/test_mutant_catch.py``.
"""

import pytest

from repro.billing.pricing import PriceBook
from repro.checking import (
    Trace,
    billing_predicate,
    generate_trace,
    replay_with_billing,
    shrink_trace,
)

#: The handcrafted minimal repro: one saturated VM, one tick.  Demand
#: at level 1.0 with a small guarantee forces auction purchases (and a
#: free share) on tick 1, so both mutants are visible immediately.
MINIMAL_EVENTS = [
    {"kind": "provision", "vm": "vm0", "vcpus": 1, "vfreq": 150.0,
     "tenant": "acme", "level": 1.0},
    {"kind": "tick"},
]


def minimal_trace() -> Trace:
    return Trace(header=Trace.make_header(engine="scalar"),
                 events=[dict(e) for e in MINIMAL_EVENTS])


@pytest.fixture
def meter_mutant(monkeypatch):
    """Off-by-one in the decomposition: one phantom guaranteed cycle."""
    import repro.billing.meter as meter_mod

    real = meter_mod.decompose

    def broken(base, purchased, fallback, allocation):
        guaranteed, purchased_c, free_c = real(
            base, purchased, fallback, allocation
        )
        return guaranteed + 1.0, purchased_c, free_c

    monkeypatch.setattr(meter_mod, "decompose", broken)


@pytest.fixture
def spot_mutant(monkeypatch):
    """Wrong spot rate: the scarcity scaling silently dropped."""
    monkeypatch.setattr(
        PriceBook, "spot_rate",
        lambda self, fraction_sold: self.spot_base_rate,
    )


def assert_caught_and_shrinks(trace, tmp_path, name):
    # 1) caught: the earliest violation is on the very first tick.
    result = replay_with_billing(trace)
    assert result.violations
    first = result.violations[0]
    assert first.invariant in ("billing_tick_revenue",
                               "billing_tick_credits")
    assert first.t == 1.0

    # 2) shrunk: delta debugging reaches the 2-event floor
    #    (one provision + one tick).
    minimal = shrink_trace(trace, predicate=billing_predicate())
    assert len(minimal.events) <= 2

    # 3) the minimal repro replays red from disk.
    path = tmp_path / f"repro_{name}.jsonl"
    minimal.save(str(path))
    assert replay_with_billing(Trace.load(str(path))).violations


class TestMeterMutant:
    def test_caught_at_tick_one_and_shrinks(self, meter_mutant, tmp_path):
        trace = generate_trace(3, ticks=30, tenants=2)
        assert_caught_and_shrinks(trace, tmp_path, "meter_mutant")

    def test_handcrafted_two_event_repro_is_red(self, meter_mutant):
        result = replay_with_billing(minimal_trace())
        assert result.violations
        assert result.violations[0].t == 1.0


class TestSpotMutant:
    def test_caught_at_tick_one_and_shrinks(self, spot_mutant, tmp_path):
        trace = generate_trace(3, ticks=30, tenants=2)
        assert_caught_and_shrinks(trace, tmp_path, "spot_mutant")

    def test_handcrafted_two_event_repro_is_red(self, spot_mutant):
        result = replay_with_billing(minimal_trace())
        assert result.violations
        assert result.violations[0].t == 1.0


class TestUnmutated:
    def test_generated_trace_replays_green(self):
        trace = generate_trace(3, ticks=30, tenants=2)
        result = replay_with_billing(trace)
        assert result.replay.ok
        assert result.violations == []

    def test_minimal_trace_replays_green_and_meters_purchases(self):
        result = replay_with_billing(minimal_trace())
        assert result.ok
        meter = result.billing["scalar"].meter
        kinds = {key[4] for key in meter.usage}
        # the handcrafted repro really exercises the auction path:
        # without purchased/free cycles the spot mutant would be
        # invisible and the 2-event floor unreachable.
        assert "purchased" in kinds or "free" in kinds
