"""The hard transparency contract: billing never perturbs control.

A 50-tick fuzzed multi-tenant scenario (VM churn, renegotiation,
bursts, restarts) is replayed twice under all three engines — once
with only the decision ledger attached, once with ledger + billing —
and every report stream and every ledger entry must be bit-identical.
Metering is post-hoc observation; turning it on must be invisible to
the controller, to tenants' allocations, and to the audit record.
"""

import json

from repro.checking import generate_trace, replay, replay_with_billing
from repro.checking.trace import ENGINES, _compare_reports
from repro.obs.config import ObsConfig
from repro.obs.hub import Observability


def _ledgered_replay(trace, engines):
    """Replay with ledger-only hubs attached — billing off."""
    hubs = {}
    ring_ticks = max(trace.ticks, 1) + 1

    def attach_hub(controller, engine):
        hub = hubs.get(engine)
        if hub is None:
            hub = hubs[engine] = Observability(ObsConfig(
                tracing=False, ledger=True, flight_recorder_ticks=0,
                ledger_ring_ticks=ring_ticks,
            ))
        hub.bind(controller)
        controller.obs = hub

    result = replay(trace, engines=engines, stop_at_first=False,
                    collect_reports=True, attach=attach_hub)
    return result, hubs


class TestBillingTransparency:
    def test_reports_and_ledgers_bit_identical_across_engines(self):
        trace = generate_trace(5, ticks=50, tenants=3)
        off, off_hubs = _ledgered_replay(trace, ENGINES)
        on = replay_with_billing(trace, engines=ENGINES,
                                 collect_reports=True)
        assert off.ok
        assert on.replay.ok
        assert on.violations == []
        for engine in ENGINES:
            # report streams: field-for-field identical, every tick
            reports_off = off.reports[engine]
            reports_on = on.replay.reports[engine]
            assert len(reports_off) == len(reports_on) == off.ticks
            for t, (a, b) in enumerate(zip(reports_off, reports_on),
                                       start=1):
                assert _compare_reports(
                    a, b, (f"{engine}-off", f"{engine}-on"), float(t)
                ) == []
            # ledger streams: JSON-canonical lines identical
            lines_off = [json.dumps(e, sort_keys=True)
                         for e in off_hubs[engine].ledger.ticks]
            lines_on = [json.dumps(e, sort_keys=True)
                        for e in on.ledgers[engine]]
            assert lines_off == lines_on
        # transparency, not absence: billing really metered revenue
        assert any(on.billing[e].meter.usage for e in ENGINES)

    def test_tenant_metadata_recorded_with_billing_off(self):
        """The ledger's tenant map is part of the audit record whether
        or not a billing engine is attached — so a later offline
        ``bill derive`` over an archived ledger still attributes
        correctly."""
        trace = generate_trace(5, ticks=10, tenants=2)
        _, hubs = _ledgered_replay(trace, ("scalar",))
        entries = hubs["scalar"].ledger.ticks
        assert entries
        tenant_maps = [e["meta"].get("tenants") for e in entries]
        assert all(m is not None for m in tenant_maps)
        assert any(m for m in tenant_maps)  # non-empty once VMs exist
