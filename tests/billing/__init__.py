"""Billing subsystem tests: pricing units, Hypothesis properties,
mutant-catch acceptance, billing-off transparency, oracle acceptance."""
