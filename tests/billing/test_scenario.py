"""Scenario-level billing: attach via ``Scenario(billing=True)``."""

import pytest

from repro.core.config import ControllerConfig
from repro.core.metrics_export import render_billing
from repro.hw.nodespecs import CHETEMI
from repro.sim.scenario import Scenario, VMGroup
from repro.virt.template import VMTemplate
from repro.workloads.synthetic import ConstantWorkload


def _scenario(billing: bool) -> Scenario:
    return Scenario(
        name="billing-smoke",
        node_spec=CHETEMI,
        groups=[
            VMGroup(
                template=VMTemplate(
                    "small", vcpus=1, vfreq_mhz=400.0, tenant="acme"
                ),
                count=2,
                workload_factory=lambda template, start: ConstantWorkload(
                    template.vcpus, level=0.8
                ),
            ),
            VMGroup(
                template=VMTemplate("burst", vcpus=1, vfreq_mhz=700.0),
                count=1,
                tenant="globex",  # group override beats template default
                workload_factory=lambda template, start: ConstantWorkload(
                    template.vcpus, level=0.5
                ),
            ),
        ],
        duration=4.0,
        controller_config=ControllerConfig.paper_evaluation(),
        billing=billing,
    )


class TestScenarioBilling:
    def test_billed_run_surfaces_invoices(self):
        result = _scenario(billing=True).run(controlled=True)
        assert result.invoices is not None
        tenants = [inv.tenant for inv in result.invoices]
        assert tenants == ["acme", "globex"]
        assert all(inv.revenue > 0.0 for inv in result.invoices)
        for inv in result.invoices:
            assert inv.total == pytest.approx(
                inv.revenue - inv.sla_credits
            )

    def test_unbilled_run_has_no_invoices(self):
        result = _scenario(billing=False).run(controlled=True)
        assert result.invoices is None

    def test_render_billing_families(self):
        sim = _scenario(billing=True).build(controlled=True)
        ctrl = sim.controller
        assert ctrl.billing is not None
        sim.run(4.0)
        text = render_billing(ctrl.billing)
        assert "# HELP vfreq_revenue_total" in text
        assert 'tenant="acme"' in text
        assert "vfreq_metered_mhz_seconds_total" in text
        assert "vfreq_sla_credits_total" in text
