"""CLI coverage for the ``repro bill`` subcommand family."""

import json

import pytest

from repro.cli import main
from repro.checking import generate_trace, replay_with_billing


class TestBillDemo:
    def test_table_metrics_and_oracle_verdict(self, capsys):
        rc = main(["bill", "demo", "--ticks", "6", "--vms", "3",
                   "--metrics"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "billing summary" in out
        assert "vfreq_revenue_total" in out
        assert "oracle audit 0 violation(s) [ok]" in out

    def test_json_output(self, capsys):
        rc = main(["bill", "demo", "--ticks", "4", "--vms", "2",
                   "--json", "--per-vcpu"])
        out = capsys.readouterr().out
        assert rc == 0
        invoices = json.loads(out.splitlines()[0])
        assert invoices
        assert {inv["tenant"] for inv in invoices} <= {
            "tenant-0", "tenant-1"
        }
        for inv in invoices:
            assert inv["total"] == pytest.approx(
                inv["revenue"] - inv["sla_credits"]
            )


class TestBillDerive:
    def test_rederives_invoices_from_ledger_file(self, tmp_path, capsys):
        trace = generate_trace(7, ticks=15, tenants=2)
        result = replay_with_billing(trace, engines=("scalar",))
        path = tmp_path / "ledger.jsonl"
        with open(path, "w") as fh:
            for entry in result.ledgers["scalar"]:
                fh.write(json.dumps(entry) + "\n")
        rc = main(["bill", "derive", str(path), "--json"])
        out = capsys.readouterr().out
        assert rc == 0
        derived = json.loads(out.splitlines()[0])
        # offline derivation matches the live engine's invoices
        live = [inv.as_dict() for inv in result.billing["scalar"].invoices()]
        for inv in live:
            inv["node"] = "node-0"  # derive's default node label
        assert derived == json.loads(json.dumps(live, sort_keys=True))

    def test_missing_ledger_is_usage_error(self, tmp_path, capsys):
        rc = main(["bill", "derive", str(tmp_path / "nope.jsonl")])
        capsys.readouterr()
        assert rc == 2


class TestBillFuzz:
    def test_green_run_reports_metered_engine_ticks(self, capsys):
        rc = main(["bill", "fuzz", "--seeds", "1", "--ticks", "12",
                   "--engine", "scalar"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "metered engine-ticks" in out
        assert "[ok]" in out

    def test_red_run_shrinks_into_repro_dir(self, tmp_path, capsys,
                                            monkeypatch):
        from repro.billing.pricing import PriceBook

        monkeypatch.setattr(
            PriceBook, "spot_rate",
            lambda self, fraction_sold: self.spot_base_rate,
        )
        repro_dir = tmp_path / "billing-repros"
        rc = main(["bill", "fuzz", "--seeds", "1", "--ticks", "10",
                   "--engine", "scalar", "--repro-dir", str(repro_dir)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FAIL" in out
        (repro,) = list(repro_dir.glob("*.jsonl"))
        assert repro.read_text().strip()
