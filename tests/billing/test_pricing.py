"""Unit tests for the pricing primitives and the invoice projection."""

import json
import math

import pytest

from repro.billing import (
    DEFAULT_PRICE_BOOK,
    UsageMeter,
    build_invoices,
    decompose,
    invoices_to_json,
    mhz_seconds_per_cycle,
    render_invoices,
    sold_fraction,
)


class TestPriceBook:
    def test_tier_lookup_is_first_covering_tier(self):
        book = DEFAULT_PRICE_BOOK
        assert book.tier_of(100.0).name == "small"
        assert book.tier_of(800.0).name == "small"  # boundary inclusive
        assert book.tier_of(800.1).name == "medium"
        assert book.tier_of(1500.0).name == "medium"
        assert book.tier_of(99999.0).name == "large"

    def test_tier_rates_increase_with_size(self):
        rates = [tier.rate for tier in DEFAULT_PRICE_BOOK.tiers]
        assert rates == sorted(rates)
        assert all(rate > 0 for rate in rates)

    def test_spot_rate_scales_with_scarcity(self):
        book = DEFAULT_PRICE_BOOK
        assert book.spot_rate(0.0) == book.spot_base_rate
        assert book.spot_rate(1.0) == book.spot_base_rate * (1.0 + book.spot_slope)
        assert book.spot_rate(0.75) > book.spot_rate(0.25)

    def test_sold_fraction(self):
        assert sold_fraction(0.0, 0.0) == 0.0  # empty market: no scarcity
        assert sold_fraction(100.0, 100.0) == 0.0
        assert sold_fraction(100.0, 25.0) == 0.75
        assert sold_fraction(100.0, 0.0) == 1.0

    def test_mhz_seconds_factor_is_period_independent(self):
        # cycles are µs-at-F_MAX, so the MHz-s conversion depends only
        # on F_MAX, never on the enforcement period.
        assert mhz_seconds_per_cycle(2400.0) == 2400.0 * 1e-6
        assert mhz_seconds_per_cycle(1000.0) == pytest.approx(1e-3)


class TestDecompose:
    def test_classes_are_nonnegative_and_sum_to_allocation(self):
        for base, purchased, allocation in [
            (300.0, 100.0, 450.0),
            (300.0, 100.0, 350.0),  # purchase partially clipped
            (300.0, 100.0, 200.0),  # allocation below base
            (0.0, 0.0, 0.0),
        ]:
            g, p, f = decompose(base, purchased, None, allocation)
            assert g >= 0.0 and p >= 0.0 and f >= 0.0
            assert g + p + f == pytest.approx(allocation)

    def test_base_charged_first_then_purchases_then_free(self):
        g, p, f = decompose(300.0, 100.0, None, 450.0)
        assert (g, p, f) == (300.0, 100.0, 50.0)

    def test_allocation_below_base_is_all_guaranteed(self):
        assert decompose(300.0, 100.0, None, 200.0) == (200.0, 0.0, 0.0)

    def test_fallback_bills_entirely_as_guaranteed(self):
        assert decompose(300.0, 100.0, 250.0, 250.0) == (250.0, 0.0, 0.0)

    def test_missing_base_bills_entirely_as_guaranteed(self):
        assert decompose(None, 0.0, None, 400.0) == (400.0, 0.0, 0.0)


class TestInvoiceProjection:
    USAGE = {
        ("acme", "vm1", 0, "small", "guaranteed"): [100.0, 0.24, 2.0],
        ("acme", "vm1", 0, "small", "free"): [10.0, 0.024, 0.1],
        ("globex", "vm2", 1, "large", "purchased"): [50.0, 0.12, 1.5],
    }
    CREDITS = {("acme", "vm1", 0, "small"): [20.0, 0.048, 0.5]}

    def test_build_groups_by_tenant_and_sorts(self):
        invoices = build_invoices(self.USAGE, self.CREDITS, node="n1")
        assert [inv.tenant for inv in invoices] == ["acme", "globex"]
        acme, globex = invoices
        assert [line.kind for line in acme.lines] == ["free", "guaranteed"]
        assert acme.revenue == pytest.approx(2.1)
        assert acme.sla_credits == pytest.approx(0.5)
        assert acme.total == acme.revenue - acme.sla_credits
        assert globex.node == "n1"
        assert globex.credit_lines == []
        assert globex.total == pytest.approx(1.5)

    def test_json_is_deterministic_and_parseable(self):
        invoices = build_invoices(self.USAGE, self.CREDITS)
        payload = invoices_to_json(invoices)
        assert payload == invoices_to_json(invoices)
        parsed = json.loads(payload)
        assert [inv["tenant"] for inv in parsed] == ["acme", "globex"]
        assert parsed[0]["total"] == pytest.approx(1.6)

    def test_render_has_per_tenant_tables_summary_and_credit_rows(self):
        invoices = build_invoices(self.USAGE, self.CREDITS)
        text = render_invoices(invoices)
        assert "invoice: tenant acme" in text
        assert "invoice: tenant globex" in text
        assert "billing summary" in text
        assert "sla-credit" in text
        per_vcpu = render_invoices(invoices, per_vcpu=True)
        assert "guaranteed" in per_vcpu


class TestMeterState:
    def test_state_json_roundtrip_is_exact(self):
        meter = UsageMeter()
        meter.meter_tick(
            tick=1, fmax_mhz=2400.0, market_initial=1000.0, market_left=400.0,
            rows=[{
                "tenant": "acme", "vm": "vm1", "vcpu": 0, "vfreq": 600.0,
                "guarantee": 500.0, "estimate": 700.0, "base": 500.0,
                "purchased": 120.0, "fallback": None, "allocation": 640.0,
            }],
        )
        clone = UsageMeter()
        clone.load_state(json.loads(json.dumps(meter.state())))
        assert clone.usage == meter.usage
        assert clone.credits == meter.credits
        assert clone.tick_revenue == meter.tick_revenue
        assert clone.tick_credits == meter.tick_credits

    def test_sla_credit_on_saturated_shortfall(self):
        meter = UsageMeter()
        meter.meter_tick(
            tick=1, fmax_mhz=2400.0, market_initial=0.0, market_left=0.0,
            rows=[{
                "tenant": "acme", "vm": "vm1", "vcpu": 0, "vfreq": 600.0,
                "guarantee": 500.0, "estimate": 600.0, "base": 500.0,
                "purchased": 0.0, "fallback": None, "allocation": 450.0,
            }],
        )
        book = meter.book
        tier = book.tier_of(600.0)
        (credit,) = meter.credits.values()
        expected = 50.0 * mhz_seconds_per_cycle(2400.0) * tier.rate
        assert credit[2] == pytest.approx(
            expected * book.sla_refund_multiplier
        )
        assert math.fsum(meter.tick_credits.values()) == pytest.approx(credit[2])

    def test_unsaturated_shortfall_earns_no_credit(self):
        meter = UsageMeter()
        meter.meter_tick(
            tick=1, fmax_mhz=2400.0, market_initial=0.0, market_left=0.0,
            rows=[{
                "tenant": "acme", "vm": "vm1", "vcpu": 0, "vfreq": 600.0,
                "guarantee": 500.0, "estimate": 100.0, "base": 100.0,
                "purchased": 0.0, "fallback": None, "allocation": 100.0,
            }],
        )
        assert meter.credits == {}
