"""Hypothesis properties of the billing engine on live hosts.

Three contracts over arbitrary tenanted, Eq. 7-admissible fleets and
both hot-path engines:

* **oracle silence** — the ledger-derived audit never disagrees with
  the live meter on an honest controller;
* **revenue conservation** — the per-tenant invoices partition the
  metered revenue exactly (``math.fsum`` over the same atoms), credits
  and usage are non-negative, and the per-tick trail sums to the same
  total;
* **meter additivity** — a ``state_json``/``load_state`` round-trip
  mid-run leaves the final accumulators bit-identical to an
  uninterrupted run (the snapshot/restore contract).

CI pins ``--hypothesis-seed=0`` so any red run reproduces locally.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.billing import BillingEngine
from repro.checking import audit_billing
from repro.core.config import ControllerConfig
from repro.obs import ObsConfig, Observability
from repro.sim.engine import Simulation
from repro.virt.template import VMTemplate
from repro.workloads.base import attach
from repro.workloads.synthetic import ConstantWorkload
from tests.conftest import make_host
from tests.strategies import engines, vm_fleets

TENANTS = ("acme", "globex", "initech")


def run_billed_host(fleet, seconds=10.0, engine="vectorized",
                    roundtrip_at=None):
    """A metered mini-host: fleet of (level, vfreq, tenant) triples.

    ``roundtrip_at`` splits the run and snapshots the meter through a
    JSON round-trip into a fresh engine at the split point.
    """
    config = ControllerConfig.paper_evaluation(engine=engine)
    node, hv, ctrl = make_host(config=config)
    hub = Observability(ObsConfig(
        tracing=False, ledger=True, flight_recorder_ticks=0,
        ledger_ring_ticks=512,
    ))
    hub.bind(ctrl)
    ctrl.obs = hub
    bill = BillingEngine.attach(ctrl, node_id="prop-host")
    for k, (level, vfreq, tenant) in enumerate(fleet):
        template = VMTemplate(f"t{k}", vcpus=1, vfreq_mhz=vfreq,
                              tenant=tenant)
        vm = hv.provision(template, f"vm-{k}")
        ctrl.register_vm(vm.name, vfreq, tenant=tenant)
        attach(vm, ConstantWorkload(1, level=level))
    sim = Simulation(node, hv, controller=ctrl, dt=0.5)
    if roundtrip_at is None:
        sim.run(seconds)
    else:
        sim.run(roundtrip_at)
        clone = BillingEngine(bill.book, node_id=bill.node_id)
        clone.load_state(json.loads(bill.state_json()))
        ctrl.billing = clone
        bill = clone
        sim.run(seconds - roundtrip_at)
    return ctrl, hub, bill


class TestOracleSilence:
    @given(fleet=vm_fleets(tenants=TENANTS), engine=engines)
    @settings(max_examples=10, deadline=None)
    def test_oracle_certifies_every_admissible_fleet(self, fleet, engine):
        _, hub, bill = run_billed_host(fleet, engine=engine)
        assert audit_billing(bill, hub.ledger.ticks) == []


class TestRevenueConservation:
    @given(fleet=vm_fleets(tenants=TENANTS), engine=engines)
    @settings(max_examples=10, deadline=None)
    def test_invoices_partition_metered_revenue_exactly(self, fleet, engine):
        _, _, bill = run_billed_host(fleet, engine=engine)
        invoices = bill.invoices()
        line_amounts = [l.amount for inv in invoices for l in inv.lines]
        # fsum is correctly rounded, hence order-independent: the sum
        # of the per-tenant invoices IS the sum over all metered cells.
        assert math.fsum(line_amounts) == math.fsum(
            cell[2] for cell in bill.meter.usage.values()
        )
        credit_amounts = [c.amount for inv in invoices
                          for c in inv.credit_lines]
        assert math.fsum(credit_amounts) == math.fsum(
            cell[2] for cell in bill.meter.credits.values()
        )
        for inv in invoices:
            assert inv.total == inv.revenue - inv.sla_credits
        # the per-tick trail accounts for the same revenue (different
        # accumulation order, so approx not exact)
        assert math.fsum(bill.meter.tick_revenue.values()) == pytest.approx(
            math.fsum(line_amounts), rel=1e-9, abs=1e-12
        )
        # every metered tenant gets exactly one invoice
        metered = {k[0] for k in bill.meter.usage}
        metered |= {k[0] for k in bill.meter.credits}
        assert sorted(metered) == [inv.tenant for inv in invoices]

    @given(fleet=vm_fleets(tenants=TENANTS), engine=engines)
    @settings(max_examples=10, deadline=None)
    def test_usage_and_credits_nonnegative(self, fleet, engine):
        _, _, bill = run_billed_host(fleet, engine=engine)
        for cell in bill.meter.usage.values():
            assert all(v >= 0.0 for v in cell)
        for cell in bill.meter.credits.values():
            assert all(v >= 0.0 for v in cell)
        assert all(v >= 0.0 for v in bill.meter.tick_revenue.values())
        assert all(v >= 0.0 for v in bill.meter.tick_credits.values())


class TestMeterAdditivity:
    @given(
        fleet=vm_fleets(tenants=TENANTS),
        engine=engines,
        cut=st.sampled_from((3.0, 5.0, 7.0)),
    )
    @settings(max_examples=8, deadline=None)
    def test_snapshot_restore_roundtrip_is_bit_identical(
        self, fleet, engine, cut
    ):
        _, _, uninterrupted = run_billed_host(fleet, engine=engine)
        _, _, roundtripped = run_billed_host(
            fleet, engine=engine, roundtrip_at=cut
        )
        assert roundtripped.state_json() == uninterrupted.state_json()
