"""Tests for repro.sim."""
