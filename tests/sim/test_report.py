"""Tests for report rendering."""

import numpy as np
import pytest

from repro.sim.metrics import TimeSeries
from repro.sim.report import render_table, scores_rows, series_to_rows


class TestRenderTable:
    def test_alignment_and_content(self):
        out = render_table(["name", "value"], [["a", 1.5], ["long-name", 22.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]
        assert "-+-" in lines[1]
        assert "long-name" in lines[3]
        assert "22.2" in lines[3]

    def test_title(self):
        out = render_table(["x"], [[1]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_nan_rendered_as_dash(self):
        out = render_table(["x"], [[float("nan")]])
        assert "-" in out.splitlines()[-1]

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])


class TestSeriesRows:
    def _series(self, values, dt=10.0):
        s = TimeSeries("s")
        for i, v in enumerate(values):
            s.append(i * dt, v)
        return s

    def test_downsampling(self):
        s = self._series([1.0, 2.0, 3.0, 4.0, 5.0, 6.0], dt=10.0)
        headers, rows = series_to_rows({"s": s}, step_s=30.0)
        assert headers == ["t(s)", "s"]
        assert rows[0] == [0, pytest.approx(2.0)]  # mean of 1,2,3
        assert rows[1] == [30, pytest.approx(5.0)]

    def test_empty_buckets_are_nan(self):
        s = self._series([1.0], dt=10.0)
        _, rows = series_to_rows({"s": s}, step_s=5.0, t_max=20.0)
        assert rows[1][1] != rows[1][1]  # NaN

    def test_step_validation(self):
        with pytest.raises(ValueError):
            series_to_rows({}, step_s=0.0)


class TestScoresRows:
    def test_iteration_axis(self):
        headers, rows = scores_rows(
            {"A": np.array([1.0, 2.0]), "B": np.array([3.0])}
        )
        assert headers == ["iteration", "A", "B"]
        assert rows[0] == [1, 1.0, 3.0]
        assert rows[1][0] == 2
        assert rows[1][2] != rows[1][2]  # NaN for missing B iteration

    def test_empty(self):
        headers, rows = scores_rows({})
        assert rows == []
