"""Tests for the multi-node control plane."""

import pytest

from repro.core.api import Controller
from repro.core.backend import BackendStats
from repro.sim.node_manager import NodeManager
from repro.virt.template import SMALL
from tests.conftest import make_host


def _signature(report):
    """Everything one iteration decided, minus wall-clock timings."""
    return (
        report.t,
        tuple(report.samples),
        dict(report.decisions),
        dict(report.allocations),
        report.market_initial,
        report.auction,
        report.freely_distributed,
        dict(report.wallets),
    )


def _two_node_setup(seed_offset=0):
    """Two independent hosts with distinct VM populations."""
    hosts = {}
    for k, node_id in enumerate(("node-a", "node-b")):
        node, hv, ctrl = make_host(seed=7 + seed_offset + k)
        for j in range(k + 1):  # node-a hosts 1 VM, node-b hosts 2
            vm = hv.provision(SMALL, f"{node_id}-vm-{j}")
            ctrl.register_vm(vm.name, SMALL.vfreq_mhz)
            vm.set_uniform_demand(0.8)
        hosts[node_id] = (node, hv, ctrl)
    return hosts


def _drive(hosts, manager, ticks=4):
    reports = {}
    for k in range(ticks):
        for node, _, _ in hosts.values():
            node.step(1.0)
        reports = manager.tick(float(k + 1))
    return reports


class TestParallelDeterminism:
    def test_parallel_equals_sequential(self):
        """Two nodes ticked on the thread pool report exactly what the
        same two nodes report when ticked back to back."""
        par_hosts = _two_node_setup()
        seq_hosts = _two_node_setup()
        par = NodeManager(
            {nid: ctrl for nid, (_, _, ctrl) in par_hosts.items()},
            parallel=True,
        )
        seq = NodeManager(
            {nid: ctrl for nid, (_, _, ctrl) in seq_hosts.items()},
            parallel=False,
        )
        par_reports = _drive(par_hosts, par)
        seq_reports = _drive(seq_hosts, seq)
        par.close()
        assert set(par_reports) == set(seq_reports) == {"node-a", "node-b"}
        for node_id in par_reports:
            assert _signature(par_reports[node_id]) == _signature(
                seq_reports[node_id]
            )
        # And the aggregate syscall budget is identical too.
        assert par.backend_stats() == seq.backend_stats()


class TestRegistry:
    def test_add_remove(self):
        hosts = _two_node_setup()
        manager = NodeManager(parallel=False)
        for nid, (_, _, ctrl) in hosts.items():
            manager.add_node(nid, ctrl)
        assert manager.num_nodes == 2
        with pytest.raises(ValueError):
            manager.add_node("node-a", hosts["node-a"][2])
        removed = manager.remove_node("node-b")
        assert removed is hosts["node-b"][2]
        assert manager.num_nodes == 1

    def test_vm_routing(self):
        hosts = _two_node_setup()
        manager = NodeManager(
            {nid: ctrl for nid, (_, _, ctrl) in hosts.items()}, parallel=False
        )
        node, hv, ctrl = hosts["node-a"]
        vm = hv.provision(SMALL, "routed")
        manager.register_vm("node-a", "routed", SMALL.vfreq_mhz)
        reports = _drive(hosts, manager, ticks=1)
        assert "routed" in {s.vm_name for s in reports["node-a"].samples}
        manager.unregister_vm("node-a", "routed")
        hv.destroy("routed")
        reports = _drive(hosts, manager, ticks=1)
        assert "routed" not in {s.vm_name for s in reports["node-a"].samples}

    def test_controllers_satisfy_protocol(self):
        hosts = _two_node_setup()
        for _, _, ctrl in hosts.values():
            assert isinstance(ctrl, Controller)


class TestAggregates:
    def test_timings_and_stats_summed(self):
        hosts = _two_node_setup()
        manager = NodeManager(
            {nid: ctrl for nid, (_, _, ctrl) in hosts.items()}, parallel=False
        )
        _drive(hosts, manager, ticks=2)
        agg = manager.aggregate_timings()
        per_node = [r.timings for r in manager.last_reports.values()]
        assert agg.monitor == pytest.approx(sum(t.monitor for t in per_node))
        assert agg.total == pytest.approx(sum(t.total for t in per_node))
        stats = manager.backend_stats()
        assert isinstance(stats, BackendStats)
        expected = BackendStats()
        for _, _, ctrl in hosts.values():
            expected = expected + ctrl.backend.stats
        assert stats == expected
        assert stats.fs_reads > 0

    def test_tick_subset(self):
        hosts = _two_node_setup()
        manager = NodeManager(
            {nid: ctrl for nid, (_, _, ctrl) in hosts.items()}, parallel=False
        )
        reports = manager.tick(1.0, node_ids=["node-a"])
        assert set(reports) == {"node-a"}
        assert set(manager.last_reports) == {"node-a"}

    def test_context_manager_closes_pool(self):
        hosts = _two_node_setup()
        with NodeManager(
            {nid: ctrl for nid, (_, _, ctrl) in hosts.items()}, parallel=True
        ) as manager:
            _drive(hosts, manager, ticks=1)
            assert manager._executor is not None
        assert manager._executor is None
