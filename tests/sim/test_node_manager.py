"""Tests for the multi-node control plane."""

import pytest

from repro.core.api import Controller
from repro.core.backend import BackendStats
from repro.sim.node_manager import NodeManager
from repro.virt.template import SMALL
from tests.conftest import make_host


def _signature(report):
    """Everything one iteration decided, minus wall-clock timings."""
    return (
        report.t,
        tuple(report.samples),
        dict(report.decisions),
        dict(report.allocations),
        report.market_initial,
        report.auction,
        report.freely_distributed,
        dict(report.wallets),
    )


def _two_node_setup(seed_offset=0):
    """Two independent hosts with distinct VM populations."""
    hosts = {}
    for k, node_id in enumerate(("node-a", "node-b")):
        node, hv, ctrl = make_host(seed=7 + seed_offset + k)
        for j in range(k + 1):  # node-a hosts 1 VM, node-b hosts 2
            vm = hv.provision(SMALL, f"{node_id}-vm-{j}")
            ctrl.register_vm(vm.name, SMALL.vfreq_mhz)
            vm.set_uniform_demand(0.8)
        hosts[node_id] = (node, hv, ctrl)
    return hosts


def _drive(hosts, manager, ticks=4):
    reports = {}
    for k in range(ticks):
        for node, _, _ in hosts.values():
            node.step(1.0)
        reports = manager.tick(float(k + 1))
    return reports


class TestParallelDeterminism:
    def test_parallel_equals_sequential(self):
        """Two nodes ticked on the thread pool report exactly what the
        same two nodes report when ticked back to back."""
        par_hosts = _two_node_setup()
        seq_hosts = _two_node_setup()
        par = NodeManager(
            {nid: ctrl for nid, (_, _, ctrl) in par_hosts.items()},
            parallel=True,
        )
        seq = NodeManager(
            {nid: ctrl for nid, (_, _, ctrl) in seq_hosts.items()},
            parallel=False,
        )
        par_reports = _drive(par_hosts, par)
        seq_reports = _drive(seq_hosts, seq)
        par.close()
        assert set(par_reports) == set(seq_reports) == {"node-a", "node-b"}
        for node_id in par_reports:
            assert _signature(par_reports[node_id]) == _signature(
                seq_reports[node_id]
            )
        # And the aggregate syscall budget is identical too.
        assert par.backend_stats() == seq.backend_stats()


class TestRegistry:
    def test_add_remove(self):
        hosts = _two_node_setup()
        manager = NodeManager(parallel=False)
        for nid, (_, _, ctrl) in hosts.items():
            manager.add_node(nid, ctrl)
        assert manager.num_nodes == 2
        with pytest.raises(ValueError):
            manager.add_node("node-a", hosts["node-a"][2])
        removed = manager.remove_node("node-b")
        assert removed is hosts["node-b"][2]
        assert manager.num_nodes == 1

    def test_vm_routing(self):
        hosts = _two_node_setup()
        manager = NodeManager(
            {nid: ctrl for nid, (_, _, ctrl) in hosts.items()}, parallel=False
        )
        node, hv, ctrl = hosts["node-a"]
        vm = hv.provision(SMALL, "routed")
        manager.register_vm("node-a", "routed", SMALL.vfreq_mhz)
        reports = _drive(hosts, manager, ticks=1)
        assert "routed" in {s.vm_name for s in reports["node-a"].samples}
        manager.unregister_vm("node-a", "routed")
        hv.destroy("routed")
        reports = _drive(hosts, manager, ticks=1)
        assert "routed" not in {s.vm_name for s in reports["node-a"].samples}

    def test_controllers_satisfy_protocol(self):
        hosts = _two_node_setup()
        for _, _, ctrl in hosts.values():
            assert isinstance(ctrl, Controller)


class TestAggregates:
    def test_timings_and_stats_summed(self):
        hosts = _two_node_setup()
        manager = NodeManager(
            {nid: ctrl for nid, (_, _, ctrl) in hosts.items()}, parallel=False
        )
        _drive(hosts, manager, ticks=2)
        agg = manager.aggregate_timings()
        per_node = [r.timings for r in manager.last_reports.values()]
        assert agg.monitor == pytest.approx(sum(t.monitor for t in per_node))
        assert agg.total == pytest.approx(sum(t.total for t in per_node))
        stats = manager.backend_stats()
        assert isinstance(stats, BackendStats)
        expected = BackendStats()
        for _, _, ctrl in hosts.values():
            expected = expected + ctrl.backend.stats
        assert stats == expected
        assert stats.fs_reads > 0

    def test_tick_subset(self):
        hosts = _two_node_setup()
        manager = NodeManager(
            {nid: ctrl for nid, (_, _, ctrl) in hosts.items()}, parallel=False
        )
        reports = manager.tick(1.0, node_ids=["node-a"])
        assert set(reports) == {"node-a"}
        assert set(manager.last_reports) == {"node-a"}

    def test_context_manager_closes_pool(self):
        hosts = _two_node_setup()
        with NodeManager(
            {nid: ctrl for nid, (_, _, ctrl) in hosts.items()}, parallel=True
        ) as manager:
            _drive(hosts, manager, ticks=1)
            assert manager._executor is not None
        assert manager._executor is None


class TestFaultIsolation:
    """A failing node must never abort the control-plane barrier."""

    class _Crashy:
        """Minimal Controller whose tick dies on selected calls."""

        period_s = 1.0

        def __init__(self, fail_ticks=()):
            self.fail_ticks = set(fail_ticks)
            self.calls = 0

        def register_vm(self, vm_name, vfreq_mhz):
            pass

        def unregister_vm(self, vm_name):
            pass

        def tick(self, t):
            self.calls += 1
            if self.calls in self.fail_ticks:
                raise RuntimeError(f"injected death at call {self.calls}")
            from repro.core.controller import ControllerReport

            return ControllerReport(t=t)

    @pytest.mark.parametrize("parallel", [False, True], ids=["serial", "pool"])
    def test_one_dead_node_does_not_stop_the_others(self, parallel):
        hosts = _two_node_setup()
        manager = NodeManager(
            {nid: ctrl for nid, (_, _, ctrl) in hosts.items()},
            parallel=parallel,
        )
        manager.add_node("node-bad", self._Crashy(fail_ticks={2}))
        for k in range(4):
            for node, _, _ in hosts.values():
                node.step(1.0)
            result = manager.tick(float(k + 1))
            # both healthy nodes reported every single tick
            assert {"node-a", "node-b"} <= set(result)
            if k == 1:
                assert set(result.errors) == {"node-bad"}
                assert "injected death" in str(result.errors["node-bad"])
                assert "node-bad" not in result
            else:
                assert result.errors == {}
        assert manager.error_counts == {"node-bad": 1}
        assert manager.last_errors == {}
        manager.close()

    def test_tick_result_is_a_dict(self):
        """Existing callers treat the return as Dict[str, report]."""
        hosts = _two_node_setup()
        manager = NodeManager(
            {nid: ctrl for nid, (_, _, ctrl) in hosts.items()}, parallel=False
        )
        result = _drive(hosts, manager, ticks=1)
        assert isinstance(result, dict)
        assert set(result) == {"node-a", "node-b"}
        assert result.errors == {}

    def test_replace_node_after_crash(self):
        manager = NodeManager(
            {"node-x": self._Crashy(fail_ticks={1, 2, 3, 4})}, parallel=False
        )
        manager.tick(1.0)
        assert manager.error_counts["node-x"] == 1
        fresh = self._Crashy()
        old = manager.replace_node("node-x", fresh)
        assert old.calls == 1
        result = manager.tick(2.0)
        assert result.errors == {}
        assert "node-x" in result
        with pytest.raises(KeyError):
            manager.replace_node("ghost", fresh)

    def test_errors_surface_in_prometheus_export(self):
        from repro.core.metrics_export import render_node_manager

        manager = NodeManager(
            {"node-x": self._Crashy(fail_ticks={1})}, parallel=False
        )
        manager.tick(1.0)
        text = render_node_manager(manager)
        assert 'vfreq_node_tick_errors_total{node="node-x"} 1' in text
        assert "vfreq_nodes_failed_last_tick 1" in text
