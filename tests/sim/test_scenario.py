"""Tests for the paper scenario builders (shapes only; the real runs are
in tests/integration and the benches)."""

import numpy as np
import pytest

from repro.cgroups.fs import CgroupVersion
from repro.sim.scenario import (
    Scenario,
    VMGroup,
    eval1_chetemi,
    eval1_chiclet,
    eval2_chetemi,
    mean_scores_by_iteration,
)
from repro.virt.template import LARGE, MEDIUM, SMALL
from repro.workloads.base import WorkloadScore
from repro.workloads.compress7zip import Compress7Zip


class TestBuilders:
    def test_eval1_chetemi_matches_table2(self):
        sc = eval1_chetemi()
        assert sc.node_spec.name == "chetemi"
        groups = {g.label: g for g in sc.groups}
        assert groups["small"].count == 20
        assert groups["small"].template is SMALL
        assert groups["large"].count == 10
        assert groups["large"].template is LARGE
        assert groups["large"].start_time == 200.0

    def test_eval1_chiclet_matches_table3(self):
        sc = eval1_chiclet()
        groups = {g.label: g.count for g in sc.groups}
        assert groups == {"small": 32, "large": 16}

    def test_eval2_matches_table5(self):
        sc = eval2_chetemi()
        groups = {g.label: g for g in sc.groups}
        assert groups["small"].count == 14
        assert groups["medium"].count == 8
        assert groups["medium"].template is MEDIUM
        assert groups["medium"].start_time == 100.0
        assert groups["large"].count == 6
        assert groups["large"].start_time == 200.0

    def test_workloads_fit_admission(self):
        """Every paper scenario satisfies Eq. 7 on its node — provisioning
        must not raise."""
        for builder in (eval1_chetemi, eval1_chiclet, eval2_chetemi):
            sim = builder(duration=1.0).build(controlled=True)
            committed = sim.hypervisor.committed_mhz()
            assert committed <= sim.node.spec.capacity_mhz

    def test_time_scale_compresses_everything(self):
        sc = eval1_chetemi(time_scale=0.1)
        groups = {g.label: g for g in sc.groups}
        assert groups["large"].start_time == pytest.approx(20.0)
        assert sc.duration == pytest.approx(90.0)
        w = groups["small"].workload_factory(SMALL, 0.0)
        from repro.sim.scenario import COMPRESS_WORK_MHZ_S

        assert w.work_per_iteration == pytest.approx(COMPRESS_WORK_MHZ_S * 0.1)
        # dips are benchmark-internal and must NOT compress with the timeline
        assert w.dip_period == pytest.approx(25.0)

    def test_invalid_time_scale(self):
        with pytest.raises(ValueError):
            eval1_chetemi(time_scale=0.0)

    def test_controller_registration(self):
        sim = eval1_chetemi(duration=1.0).build(controlled=True)
        assert sim.controller.guaranteed_cycles_of("small-0") == pytest.approx(
            1e6 * 500 / 2400
        )
        assert sim.controller.guaranteed_cycles_of("large-0") == pytest.approx(
            1e6 * 1800 / 2400
        )

    def test_cgroup_version_flows_through(self):
        sim = eval1_chetemi(duration=1.0, cgroup_version=CgroupVersion.V1).build(
            controlled=True
        )
        assert sim.node.fs.version is CgroupVersion.V1

    def test_group_validation(self):
        with pytest.raises(ValueError):
            VMGroup(SMALL, 0, None)
        with pytest.raises(ValueError):
            VMGroup(SMALL, 1, None, start_time=-1.0)


class TestScoreAggregation:
    def _vm_with_scores(self, name, scores):
        from repro.virt.vm import VMInstance

        vm = VMInstance(name=name, template=SMALL, cgroup_path=f"/m/{name}")
        w = Compress7Zip(2, iterations=10, work_per_iteration_mhz_s=1.0)
        w.scores = [
            WorkloadScore(iteration=i, started_at=0.0, finished_at=1.0, work_mhz_s=s)
            for i, s in enumerate(scores)
        ]
        vm.workload = w
        return vm

    def test_mean_across_instances(self):
        vms = [
            self._vm_with_scores("a", [100.0, 200.0]),
            self._vm_with_scores("b", [300.0, 400.0]),
        ]
        out = mean_scores_by_iteration(vms)
        assert out.tolist() == [200.0, 300.0]

    def test_ragged_instances(self):
        vms = [
            self._vm_with_scores("a", [100.0, 200.0]),
            self._vm_with_scores("b", [300.0]),
        ]
        out = mean_scores_by_iteration(vms)
        assert out.tolist() == [200.0, 200.0]

    def test_no_workloads(self):
        assert mean_scores_by_iteration([]).size == 0


class TestShortRun:
    def test_run_returns_result_with_both_configs(self):
        sc = eval1_chetemi(duration=8.0, dt=0.5)
        for controlled, label in ((False, "A"), (True, "B")):
            res = sc.run(controlled=controlled)
            assert res.configuration == label
            assert set(res.vm_names_by_group) == {"small", "large"}
            series = res.group_freq_series("small")
            assert len(series) > 0


class TestFaultPlanWiring:
    def test_fault_plan_path_wraps_backend_in_injector(self, tmp_path):
        from repro.faults import FaultInjector, FaultPlan, FaultSpec

        plan_file = str(tmp_path / "plan.json")
        FaultPlan(
            [FaultSpec("clock_jitter", "tick", jitter_frac=0.05)], seed=3
        ).save(plan_file)
        sc = eval1_chetemi(duration=4.0, dt=0.5)
        sc.controller_config = sc.controller_config.with_overrides(
            fault_plan_path=plan_file
        )
        sim = sc.build(controlled=True)
        assert isinstance(sim.controller.backend, FaultInjector)
        sim.run(3.0)
        assert sim.controller.backend.injected.get("clock_jitter", 0) > 0

    def test_without_fault_plan_backend_is_bare(self):
        from repro.core.backend import HostBackend
        from repro.faults import FaultInjector

        sim = eval1_chetemi(duration=4.0, dt=0.5).build(controlled=True)
        assert isinstance(sim.controller.backend, HostBackend)
        assert not isinstance(sim.controller.backend, FaultInjector)
