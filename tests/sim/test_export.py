"""Tests for CSV export of experiment artefacts."""

import pytest

from repro.sim.export import read_csv, scores_to_csv, series_to_csv
from repro.sim.metrics import TimeSeries


def make_series(name, pairs):
    s = TimeSeries(name)
    for t, v in pairs:
        s.append(t, v)
    return s


class TestSeriesExport:
    def test_roundtrip(self, tmp_path):
        a = make_series("a", [(0.0, 1.0), (1.0, 2.0)])
        b = make_series("b", [(0.0, 10.0), (1.0, 20.0)])
        out = series_to_csv(tmp_path / "s.csv", {"a": a, "b": b})
        cols = read_csv(out)
        assert cols["t_s"] == [0.0, 1.0]
        assert cols["a"] == [1.0, 2.0]
        assert cols["b"] == [10.0, 20.0]

    def test_bucketing_averages(self, tmp_path):
        a = make_series("a", [(0.1, 1.0), (0.6, 3.0), (1.2, 5.0)])
        out = series_to_csv(tmp_path / "s.csv", {"a": a}, bucket_s=1.0)
        cols = read_csv(out)
        assert cols["a"] == [2.0, 5.0]

    def test_missing_buckets_empty(self, tmp_path):
        a = make_series("a", [(0.0, 1.0)])
        b = make_series("b", [(5.0, 2.0)])
        cols = read_csv(series_to_csv(tmp_path / "s.csv", {"a": a, "b": b}))
        assert cols["a"] == [1.0, None]
        assert cols["b"] == [None, 2.0]

    def test_creates_parent_dirs(self, tmp_path):
        a = make_series("a", [(0.0, 1.0)])
        out = series_to_csv(tmp_path / "deep" / "dir" / "s.csv", {"a": a})
        assert out.exists()

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            series_to_csv(tmp_path / "x.csv", {})
        with pytest.raises(ValueError):
            series_to_csv(tmp_path / "x.csv", {"a": make_series("a", [(0, 1)])}, bucket_s=0)


class TestScoresExport:
    def test_roundtrip(self, tmp_path):
        out = scores_to_csv(tmp_path / "sc.csv", {"A": [1.0, 2.0], "B": [3.0]})
        cols = read_csv(out)
        assert cols["iteration"] == [1.0, 2.0]
        assert cols["A"] == [1.0, 2.0]
        assert cols["B"] == [3.0, None]

    def test_nan_written_empty(self, tmp_path):
        out = scores_to_csv(tmp_path / "sc.csv", {"A": [1.0, float("nan")]})
        cols = read_csv(out)
        assert cols["A"] == [1.0, None]

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            scores_to_csv(tmp_path / "x.csv", {})
