"""Shared-memory shard telemetry: parity, churn, growth, lifecycle.

The compact telemetry lane must report exactly what the pickled-report
lane reports (aggregates, counters, per-node accounts) while shipping
only a segment name across the process boundary — and a closed
:class:`ShardedNodeManager` must be re-``start()``-able from scratch.
"""

import functools

import pytest

from repro.sim.node_manager import NodeManager, Shard, ShardedNodeManager
from repro.sim.shard_telemetry import (
    H_SEQ,
    NODE_FIELDS,
    VM_FIELDS,
    ShardTelemetryReader,
    ShardTelemetryWriter,
)
from repro.virt.template import SMALL
from tests.conftest import make_host
from tests.sim.test_sharded_node_manager import (
    _build_group,
    _shard_factory,
    _signature,
)

ALLOC = NODE_FIELDS.index("alloc_cycles")
GUARANTEE = NODE_FIELDS.index("guarantee_mhz")
CAPACITY = NODE_FIELDS.index("capacity_mhz")
NUM_VMS = NODE_FIELDS.index("num_vms")
ERRORED = NODE_FIELDS.index("errored")
VM_SLOT = VM_FIELDS.index("node_slot")
VM_ALLOC = VM_FIELDS.index("alloc_cycles")
VM_GUARANTEE = VM_FIELDS.index("guarantee_mhz")

_SHARDS = {
    "shard-0": functools.partial(_shard_factory, ("node-a", "node-b"), 7),
    "shard-1": functools.partial(_shard_factory, ("node-c",), 9),
}


class TestSharedTelemetryParity:
    def test_matches_reports_mode(self):
        """Same nodes, both lanes: identical aggregates and accounts."""
        ref_hosts = {
            **_build_group(["node-a", "node-b"], 7),
            **_build_group(["node-c"], 9),
        }
        threaded = NodeManager(
            {nid: ctrl for nid, (_, _, ctrl) in ref_hosts.items()},
            parallel=False,
        )
        with ShardedNodeManager(_SHARDS, telemetry="shared") as sharded:
            for k in range(3):
                for node, _, _ in ref_hosts.values():
                    node.step(1.0)
                ref = threaded.tick(float(k + 1))
                got = sharded.tick(float(k + 1))
                # Compact lane: no reports cross the boundary.
                assert dict(got) == {}
                assert not got.errors
            assert sharded.backend_stats() == threaded.backend_stats()
            assert sharded.invariant_totals() == threaded.invariant_totals()
            assert sharded.aggregate_timings().total > 0

            # Per-node Eq. 7 accounts and allocations, via the blocks.
            nodes_seen = {}
            for reader in sharded.readers.values():
                block = reader.node_block()
                assert reader.t == 3.0
                for slot, node_id in enumerate(reader.node_ids):
                    nodes_seen[node_id] = block[slot]
            assert set(nodes_seen) == set(ref_hosts)
            for node_id, row in nodes_seen.items():
                report = ref[node_id]
                ctrl = ref_hosts[node_id][2]
                assert row[ALLOC] == sum(report.allocations.values())
                assert row[GUARANTEE] == sum(ctrl._vm_vfreq.values())
                assert row[CAPACITY] == ctrl.num_cpus * ctrl.fmax_mhz
                assert row[NUM_VMS] == len(ctrl._vm_vfreq)
                assert row[ERRORED] == 0.0

            # Per-VM rows: guarantee column carries the registered vfreq.
            for reader in sharded.readers.values():
                vm_block = reader.vm_block()
                assert len(reader.vm_names) == len(vm_block)
                for row_no, name in enumerate(reader.vm_names):
                    assert vm_block[row_no, VM_GUARANTEE] == SMALL.vfreq_mhz
                    slot = int(vm_block[row_no, VM_SLOT])
                    assert name.startswith(reader.node_ids[slot])
        threaded.close()

    def test_fetch_report_lazy(self):
        """The explain escape hatch pulls one full report on demand."""
        ref_hosts = {
            **_build_group(["node-a", "node-b"], 7),
            **_build_group(["node-c"], 9),
        }
        threaded = NodeManager(
            {nid: ctrl for nid, (_, _, ctrl) in ref_hosts.items()},
            parallel=False,
        )
        with ShardedNodeManager(_SHARDS, telemetry="shared") as sharded:
            for node, _, _ in ref_hosts.values():
                node.step(1.0)
            ref = threaded.tick(1.0)
            sharded.tick(1.0)
            assert sharded.last_reports == {}
            report = sharded.fetch_report("node-b")
            assert _signature(report) == _signature(ref["node-b"])
            # Fetched reports are cached like reports-mode would have.
            assert "node-b" in sharded.last_reports
            with pytest.raises(KeyError):
                sharded.fetch_report("node-zz")
        threaded.close()

    def test_violations_by_node_zero_round_trips(self):
        with ShardedNodeManager(_SHARDS, telemetry="shared") as sharded:
            sharded.tick(1.0)
            # make_host controllers run without inline oracles, so the
            # sentinel keeps them out of the map entirely.
            assert sharded.invariant_violations_by_node() == {}

    def test_invalid_telemetry_mode_rejected(self):
        with pytest.raises(ValueError, match="telemetry"):
            ShardedNodeManager(_SHARDS, telemetry="carrier-pigeon")


class TestWriterInProcess:
    """Writer/reader unit behaviour without crossing processes."""

    @staticmethod
    def _manager(n_vms_per_node=1):
        hosts = _build_group(["n0", "n1"], 3)
        manager = NodeManager(
            {nid: ctrl for nid, (_, _, ctrl) in hosts.items()}, parallel=False
        )
        return hosts, manager

    def test_catalog_version_bumps_on_churn(self):
        hosts, manager = self._manager()
        writer = ShardTelemetryWriter()
        reader = ShardTelemetryReader()
        try:
            manager.tick(1.0)
            reader.update(*writer.publish(manager, 1.0))
            v1 = reader.catalog_version
            names1 = reader.vm_names

            # Steady state: no catalog crosses, version unchanged.
            manager.tick(2.0)
            name, version, catalog = writer.publish(manager, 2.0)
            assert catalog is None
            assert version == v1

            # Churn: a new VM registers -> version bump + new catalog.
            _, hv, ctrl = hosts["n0"]
            vm = hv.provision(SMALL, "n0-extra")
            ctrl.register_vm(vm.name, SMALL.vfreq_mhz)
            manager.tick(3.0)
            name, version, catalog = writer.publish(manager, 3.0)
            assert version == v1 + 1
            assert catalog is not None
            reader.update(name, version, catalog)
            assert "n0-extra" in reader.vm_names
            assert set(names1) < set(reader.vm_names)

            # And unregistration churns it again.
            ctrl.unregister_vm(vm.name)
            manager.tick(4.0)
            _, version, catalog = writer.publish(manager, 4.0)
            assert version == v1 + 2
            assert catalog is not None
        finally:
            reader.close()
            writer.close(unlink=True)

    def test_segment_grows_and_reader_remaps(self):
        hosts, manager = self._manager()
        writer = ShardTelemetryWriter(min_node_cap=2, min_vm_cap=2)
        reader = ShardTelemetryReader()
        try:
            manager.tick(1.0)
            first = writer.publish(manager, 1.0)
            reader.update(*first)
            first_name = first[0]

            # Blow past vm_cap=2: the writer doubles into a fresh
            # segment; the old name is unlinked; the reader re-maps.
            _, hv, ctrl = hosts["n0"]
            for j in range(6):
                vm = hv.provision(SMALL, f"n0-grow-{j}")
                ctrl.register_vm(vm.name, SMALL.vfreq_mhz)
            manager.tick(2.0)
            grown = writer.publish(manager, 2.0)
            assert grown[0] != first_name
            reader.update(*grown)
            assert reader.t == 2.0
            assert len(reader.vm_names) == len(reader.vm_block())
            assert len(reader.vm_names) >= 8
            from multiprocessing import shared_memory

            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=first_name)
        finally:
            reader.close()
            writer.close(unlink=True)

    def test_errored_node_flagged(self):
        class _Boom:
            def register_vm(self, *a):
                pass

            def unregister_vm(self, *a):
                pass

            def tick(self, t):
                raise RuntimeError("boom")

        hosts = _build_group(["n0"], 3)
        manager = NodeManager(
            {"n0": hosts["n0"][2], "n1": _Boom()}, parallel=False
        )
        writer = ShardTelemetryWriter()
        reader = ShardTelemetryReader()
        try:
            manager.tick(1.0)
            reader.update(*writer.publish(manager, 1.0))
            block = reader.node_block()
            rows = dict(zip(reader.node_ids, block))
            assert rows["n1"][ERRORED] == 1.0
            assert rows["n0"][ERRORED] == 0.0
        finally:
            reader.close()
            writer.close(unlink=True)


class TestSeqlockConsistency:
    """The seqlock read side under a publish in flight, and close() →
    re-attach against a live writer (the SLO plane's scrape path)."""

    @staticmethod
    def _publish_once(hosts, manager, writer, reader, t):
        for node, _, _ in hosts.values():
            node.step(1.0)
        manager.tick(t)
        reader.update(*writer.publish(manager, t))

    def test_torn_read_retries_until_publish_completes(self):
        hosts = _build_group(["n0", "n1"], 3)
        manager = NodeManager(
            {nid: ctrl for nid, (_, _, ctrl) in hosts.items()}, parallel=False
        )
        writer = ShardTelemetryWriter()
        reader = ShardTelemetryReader()
        try:
            self._publish_once(hosts, manager, writer, reader, 1.0)
            assert reader.seq % 2 == 0
            assert reader.snapshot_retries == 0

            # Simulate a writer caught mid-publish: odd counter, rows
            # in flux.  The reader must spin, not return torn rows.
            writer._blocks.header[H_SEQ] = reader.seq + 1
            assert reader.seq % 2 == 1

            completed = []

            def finish_publish(attempt):
                # First retry: complete the in-flight publish so the
                # counter lands even with tick-2 rows fully written.
                if not completed:
                    completed.append(attempt)
                    for node, _, _ in hosts.values():
                        node.step(1.0)
                    manager.tick(2.0)
                    writer.publish(manager, 2.0)

            node_ids, nodes, backend, invariants = reader.stable_snapshot(
                on_retry=finish_publish
            )
            assert completed == [0]
            assert reader.snapshot_retries >= 1
            assert reader.seq % 2 == 0
            # The snapshot is the *completed* tick-2 publish, whole.
            assert node_ids == ("n0", "n1")
            for slot, node_id in enumerate(node_ids):
                ctrl = hosts[node_id][2]
                assert nodes[slot, GUARANTEE] == sum(ctrl._vm_vfreq.values())
                assert nodes[slot, NUM_VMS] == len(ctrl._vm_vfreq)
            assert reader.t == 2.0
            assert backend.sum() > 0
            assert len(invariants) > 0
        finally:
            reader.close()
            writer.close(unlink=True)
            manager.close()

    def test_snapshot_gives_up_after_max_retries(self):
        hosts = _build_group(["n0"], 3)
        manager = NodeManager({"n0": hosts["n0"][2]}, parallel=False)
        writer = ShardTelemetryWriter()
        reader = ShardTelemetryReader()
        try:
            self._publish_once(hosts, manager, writer, reader, 1.0)
            header = writer._blocks.header
            stuck = reader.seq + 1
            header[H_SEQ] = stuck  # odd forever: writer wedged mid-publish
            attempts = []
            with pytest.raises(RuntimeError, match="torn 5 times"):
                reader.stable_snapshot(max_retries=5,
                                       on_retry=attempts.append)
            assert attempts == [0, 1, 2, 3, 4]
            assert reader.snapshot_retries == 5
            header[H_SEQ] = stuck + 1  # unwedge; snapshot works again
            assert reader.stable_snapshot()[0] == ("n0",)
        finally:
            reader.close()
            writer.close(unlink=True)
            manager.close()

    def test_close_then_reattach_against_live_writer(self):
        hosts = _build_group(["n0", "n1"], 3)
        manager = NodeManager(
            {nid: ctrl for nid, (_, _, ctrl) in hosts.items()}, parallel=False
        )
        writer = ShardTelemetryWriter()
        reader = ShardTelemetryReader()
        try:
            self._publish_once(hosts, manager, writer, reader, 1.0)
            assert reader.attached
            catalog_before = (reader.node_ids, reader.vm_names,
                              reader.vm_slots)

            reader.close()
            assert not reader.attached
            # The catalog survives detachment — only the mapping drops.
            assert (reader.node_ids, reader.vm_names,
                    reader.vm_slots) == catalog_before

            # Writer keeps publishing while we're detached (steady
            # state: same segment, no catalog payload).
            for node, _, _ in hosts.values():
                node.step(1.0)
            manager.tick(2.0)
            name, version, catalog = writer.publish(manager, 2.0)
            assert catalog is None

            # Re-attach with the steady-state payload alone: the reader
            # re-maps the segment and serves tick 2 with the retained
            # catalog.
            reader.update(name, version, catalog)
            assert reader.attached
            assert reader.t == 2.0
            node_ids, nodes, _, _ = reader.stable_snapshot()
            assert node_ids == ("n0", "n1")
            assert nodes[0, GUARANTEE] == \
                sum(hosts["n0"][2]._vm_vfreq.values())
            # And close() is idempotent on an already-closed reader.
            reader.close()
            reader.close()
            assert not reader.attached
        finally:
            reader.close()
            writer.close(unlink=True)
            manager.close()


class TestCloseStartRoundTrip:
    @pytest.mark.parametrize("telemetry", ["reports", "shared"])
    def test_close_then_start_again(self, telemetry):
        """A closed manager is indistinguishable from a fresh one."""
        manager = ShardedNodeManager(_SHARDS, telemetry=telemetry)
        manager.start()
        result = manager.tick(1.0)
        assert manager.ticks == 1
        assert manager.num_nodes == 3
        manager.close()
        # Everything per-run is gone — the stale-state bug this guards
        # against left nodes_by_shard/last_reports/error_counts behind.
        assert manager.nodes_by_shard == {}
        assert manager.last_reports == {}
        assert manager.last_errors == {}
        assert manager.error_counts == {}
        assert manager.readers == {}
        assert manager.ticks == 0
        assert manager.backend_stats().fs_reads == 0

        # And it comes back: start() rebuilds shards from factories.
        manager.start()
        try:
            assert manager.num_nodes == 3
            result = manager.tick(1.0)
            assert not result.errors
            assert manager.ticks == 1
            if telemetry == "reports":
                assert set(result) == {"node-a", "node-b", "node-c"}
            else:
                assert manager.readers
        finally:
            manager.close()


class TestResourceTrackerHygiene:
    def test_no_tracker_noise_at_exit(self):
        """A tick + close cycle leaves the resource tracker silent.

        The tracker's complaints (phantom "leaked shared_memory
        objects" warnings, double-unregister KeyErrors) only surface
        on its stderr at interpreter exit, so run the cycle in a
        subprocess and require a clean stderr.  Guards the
        ensure_running()-before-fork ordering in
        ShardedNodeManager.start() and the no-parent-unregister rule
        in ShardTelemetryReader.
        """
        import subprocess
        import sys

        code = (
            "import functools, sys\n"
            "sys.path[:0] = [%r, %r]\n"
            "from tests.sim.test_sharded_node_manager import _shard_factory\n"
            "from repro.sim import ShardedNodeManager\n"
            "shards = {'s0': functools.partial(_shard_factory, ('node-a',), 7)}\n"
            "mgr = ShardedNodeManager(shards, telemetry='shared')\n"
            "mgr.tick(1.0)\n"
            "mgr.close()\n"
            "mgr.start()\n"
            "assert not mgr.tick(2.0).errors\n"
            "mgr.close()\n"
        )
        import pathlib

        repo = pathlib.Path(__file__).resolve().parents[2]
        proc = subprocess.run(
            [sys.executable, "-c", code % (str(repo / "src"), str(repo))],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "resource_tracker" not in proc.stderr, proc.stderr
        assert proc.stderr.strip() == "", proc.stderr
