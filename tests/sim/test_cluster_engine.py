"""Tests for the cluster-scale engine and live migration."""

import pytest

from repro.hw.cluster import Cluster, ClusterNode
from repro.placement.bestfit import BestFit
from repro.placement.constraints import CoreSplittingConstraint
from repro.placement.evaluator import Placement
from repro.placement.migration import (
    MigrationModel,
    ThresholdMigrationPolicy,
)
from repro.placement.request import PlacementRequest, expand_requests
from repro.sim.cluster_engine import ClusterSimulation
from repro.virt.template import VMTemplate
from repro.workloads.synthetic import ConstantWorkload
from tests.conftest import TINY

T = VMTemplate("t", vcpus=1, vfreq_mhz=1200.0, memory_mb=512)


def tiny_cluster(n=2):
    return Cluster([ClusterNode(f"n{i}", TINY) for i in range(n)])


def busy(request: PlacementRequest):
    return ConstantWorkload(request.template.vcpus, level=1.0)


def deploy(sim, assignments):
    placement = Placement(cluster=tiny_cluster(len(sim.runtimes)))
    for node_id, names in assignments.items():
        for name in names:
            placement.assign(node_id, PlacementRequest(name, T))
    sim.deploy(placement, busy)
    return placement


class TestDeployAndRun:
    def test_vms_land_on_their_nodes(self):
        sim = ClusterSimulation(tiny_cluster(), dt=0.5)
        deploy(sim, {"n0": ["a"], "n1": ["b"]})
        assert "a" in {v.name for v in sim.runtimes["n0"].hypervisor.vms}
        assert "b" in {v.name for v in sim.runtimes["n1"].hypervisor.vms}

    def test_unplaced_rejected(self):
        sim = ClusterSimulation(tiny_cluster(), dt=0.5)
        placement = Placement(cluster=tiny_cluster())
        placement.unplaced.append(PlacementRequest("x", T))
        with pytest.raises(ValueError):
            sim.deploy(placement, busy)

    def test_run_advances_and_controls(self):
        sim = ClusterSimulation(tiny_cluster(), dt=0.5)
        deploy(sim, {"n0": ["a", "b", "c"], "n1": []})
        sim.run(10.0)
        assert sim.t == pytest.approx(10.0)
        vm = sim.all_vms()["a"]
        assert vm.vcpus[0].entity.total_cpu_seconds > 0

    def test_power_off_empty_nodes(self):
        sim = ClusterSimulation(tiny_cluster(3), dt=0.5)
        deploy(sim, {"n0": ["a"], "n1": [], "n2": []})
        assert sim.power_off_empty_nodes() == 2
        assert sim.nodes_powered_on() == 1
        sim.run(5.0)
        # powered-off nodes burn no energy
        assert sim.runtimes["n1"].node.energy.energy_j == 0.0
        assert sim.runtimes["n0"].node.energy.energy_j > 0.0

    def test_workload_size_mismatch_rejected(self):
        sim = ClusterSimulation(tiny_cluster(), dt=0.5)
        placement = Placement(cluster=tiny_cluster())
        placement.assign("n0", PlacementRequest("a", T))
        with pytest.raises(ValueError):
            sim.deploy(placement, lambda r: ConstantWorkload(4))


class TestMigration:
    def test_manual_migration_moves_vm_and_workload(self):
        sim = ClusterSimulation(tiny_cluster(), dt=0.5)
        deploy(sim, {"n0": ["a"], "n1": []})
        sim.run(4.0)
        before = sim.all_vms()["a"].workload
        sim.start_migration("a", "n1")
        sim.run(5.0)  # transfer (512 MB @10 Gbps ~0.5 s) + downtime
        hosted = {v.name for v in sim.runtimes["n1"].hypervisor.vms}
        assert "a" in hosted
        assert sim.all_vms()["a"].workload is before  # progress preserved
        assert len(sim.migrations) == 1

    def test_downtime_pauses_demand(self):
        model = MigrationModel(link_gbps=10.0, downtime_s=3.0)
        sim = ClusterSimulation(tiny_cluster(), dt=0.5, migration_model=model)
        deploy(sim, {"n0": ["a"], "n1": []})
        sim.run(2.0)
        sim.start_migration("a", "n1")
        sim.run(1.5)  # transfer done (~0.55 s), inside downtime window
        vm = sim.all_vms()["a"]
        assert all(v.demand == 0.0 for v in vm.vcpus)
        sim.run(4.0)  # past downtime
        assert all(v.demand == 1.0 for v in vm.vcpus)

    def test_double_migration_rejected(self):
        model = MigrationModel(link_gbps=0.1)  # slow: stays in flight
        sim = ClusterSimulation(tiny_cluster(), dt=0.5, migration_model=model)
        deploy(sim, {"n0": ["a"], "n1": []})
        sim.start_migration("a", "n1")
        with pytest.raises(ValueError):
            sim.start_migration("a", "n1")

    def test_migration_to_self_rejected(self):
        sim = ClusterSimulation(tiny_cluster(), dt=0.5)
        deploy(sim, {"n0": ["a"], "n1": []})
        with pytest.raises(ValueError):
            sim.start_migration("a", "n0")

    def test_unknown_vm(self):
        sim = ClusterSimulation(tiny_cluster(), dt=0.5)
        with pytest.raises(KeyError):
            sim.start_migration("ghost", "n1")

    def test_migration_into_full_node_rejected(self):
        """A migration that would break the target's Eq. 7 guarantee is
        refused up front instead of exploding at arrival time."""
        sim = ClusterSimulation(tiny_cluster(), dt=0.5)
        # fill n1 to the brim: tiny capacity 9600 MHz, 8 x 1200 = 9600
        assignments = {"n0": ["a"], "n1": [f"b{i}" for i in range(8)]}
        deploy(sim, assignments)
        with pytest.raises(ValueError):
            sim.start_migration("a", "n1")

    def test_migration_admission_skipped_when_disabled(self):
        sim = ClusterSimulation(
            tiny_cluster(), dt=0.5, enforce_admission=False
        )
        assignments = {"n0": ["a"], "n1": [f"b{i}" for i in range(8)]}
        deploy(sim, assignments)
        sim.start_migration("a", "n1")  # overcommit allowed when disabled
        sim.run(5.0)
        assert "a" in {v.name for v in sim.runtimes["n1"].hypervisor.vms}


class TestConcurrentMigrationAdmission:
    """In-flight migrations must count against the target's headroom:
    two concurrent moves may not over-commit one node at cut-over."""

    def _sim_with_one_slot_free(self, link_gbps=0.1):
        # n2 hosts 7 x 1200 MHz of its 9600: exactly one slot left
        model = MigrationModel(link_gbps=link_gbps)
        sim = ClusterSimulation(tiny_cluster(3), dt=0.5, migration_model=model)
        deploy(sim, {
            "n0": ["a"], "n1": ["b"], "n2": [f"c{i}" for i in range(7)],
        })
        return sim

    def test_in_flight_reservation_blocks_second_migration(self):
        sim = self._sim_with_one_slot_free()  # slow link: stays in flight
        sim.start_migration("a", "n2")
        with pytest.raises(ValueError, match="in-flight"):
            sim.start_migration("b", "n2")

    def test_reservation_released_when_migration_lands(self):
        sim = self._sim_with_one_slot_free(link_gbps=10.0)
        sim.start_migration("a", "n2")
        sim.run(5.0)  # a lands on n2, reservation becomes real commitment
        assert len(sim._in_flight) == 0
        # the slot is now genuinely taken: plain admission refuses b
        with pytest.raises(ValueError, match="Eq. 7 or memory"):
            sim.start_migration("b", "n2")

    def test_pick_target_counts_in_flight_vcpus(self):
        # n1: 7 hosted + 1 in flight = 8/8 vcpus; n2 hosts 8/8.  The
        # policy target picker must see n1 as full and find nothing.
        model = MigrationModel(link_gbps=0.1)
        sim = ClusterSimulation(
            tiny_cluster(3), dt=0.5, migration_model=model,
            enforce_admission=False,
        )
        deploy(sim, {
            "n0": ["a"],
            "n1": [f"b{i}" for i in range(7)],
            "n2": [f"c{i}" for i in range(8)],
        })
        sim.start_migration("c0", "n1")
        assert sim._pick_target(sim.runtimes["n0"], "a") is None


class TestMigrationPolicy:
    def test_policy_trips_after_patience(self):
        policy = ThresholdMigrationPolicy(high_watermark=1.0, patience=2)
        assert not policy.observe("n", 1.5)
        assert policy.observe("n", 1.5)

    def test_calm_resets_strikes(self):
        policy = ThresholdMigrationPolicy(high_watermark=1.0, patience=2)
        policy.observe("n", 1.5)
        policy.observe("n", 0.5)
        assert not policy.observe("n", 1.5)

    def test_victim_smallest_sufficient(self):
        vms = [("big", 4, 4.0), ("mid", 2, 2.0), ("small", 1, 1.0)]
        assert ThresholdMigrationPolicy.pick_victim(vms, 1.5) == "mid"

    def test_victim_falls_back_to_largest(self):
        vms = [("a", 1, 0.5), ("b", 1, 0.8)]
        assert ThresholdMigrationPolicy.pick_victim(vms, 3.0) == "b"

    def test_no_vms_no_victim(self):
        assert ThresholdMigrationPolicy.pick_victim([], 1.0) is None

    def test_auto_migration_relieves_overload(self):
        """5 busy single-vCPU VMs on a 4-cpu node with an empty neighbour:
        the reactive policy must move at least one VM over."""
        policy = ThresholdMigrationPolicy(high_watermark=1.0, patience=2)
        sim = ClusterSimulation(
            tiny_cluster(),
            controlled=False,
            dt=0.5,
            migration_policy=policy,
            enforce_admission=False,
        )
        deploy(sim, {"n0": [f"v{i}" for i in range(5)], "n1": []})
        sim.run(30.0)
        assert len(sim.migrations) >= 1
        moved = {v.name for v in sim.runtimes["n1"].hypervisor.vms}
        assert moved
        assert sim.runtimes["n0"].demand_load() <= 1.0 + 1e-9


class TestMigrationModel:
    def test_transfer_time(self):
        m = MigrationModel(link_gbps=10.0, dirty_page_overhead=1.0, downtime_s=0.0)
        # 1250 MB at 10 Gbps = 1 s
        assert m.transfer_seconds(1250) == pytest.approx(1.0)

    def test_total_includes_downtime(self):
        m = MigrationModel(link_gbps=10.0, dirty_page_overhead=1.0, downtime_s=0.7)
        assert m.total_seconds(1250) == pytest.approx(1.7)

    def test_overhead_scales(self):
        base = MigrationModel(dirty_page_overhead=1.0).transfer_seconds(1000)
        heavy = MigrationModel(dirty_page_overhead=2.0).transfer_seconds(1000)
        assert heavy == pytest.approx(2 * base)

    def test_validation(self):
        with pytest.raises(ValueError):
            MigrationModel(link_gbps=0.0)
        with pytest.raises(ValueError):
            MigrationModel(dirty_page_overhead=0.5)
        with pytest.raises(ValueError):
            MigrationModel().transfer_seconds(0)
        with pytest.raises(ValueError):
            ThresholdMigrationPolicy(patience=0)
