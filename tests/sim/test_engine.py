"""Tests for the simulation loop."""

import pytest

from repro.core.config import ControllerConfig
from repro.sim.engine import Simulation
from repro.virt.template import VMTemplate
from repro.workloads.base import attach
from repro.workloads.compress7zip import Compress7Zip
from repro.workloads.synthetic import ConstantWorkload
from tests.conftest import make_host

ONE = VMTemplate("one", vcpus=1, vfreq_mhz=1000.0)


class TestLoop:
    def test_demands_pushed_each_tick(self):
        node, hv, ctrl = make_host()
        vm = hv.provision(ONE, "vm")
        ctrl.register_vm("vm", 1000.0)
        attach(vm, ConstantWorkload(1, level=0.6))
        sim = Simulation(node, hv, controller=ctrl, dt=0.5)
        sim.run(1.0)
        assert vm.vcpus[0].demand == pytest.approx(0.6)

    def test_controller_cadence(self):
        node, hv, ctrl = make_host()
        vm = hv.provision(ONE, "vm")
        ctrl.register_vm("vm", 1000.0)
        attach(vm, ConstantWorkload(1))
        sim = Simulation(node, hv, controller=ctrl, dt=0.25)
        sim.run(5.0)
        assert len(ctrl.reports) == 5  # one per period_s=1.0

    def test_progress_absorbed_into_scores(self):
        node, hv, ctrl = make_host()
        vm = hv.provision(ONE, "vm")
        ctrl.register_vm("vm", 1000.0)
        attach(vm, Compress7Zip(1, iterations=2, work_per_iteration_mhz_s=5_000.0))
        sim = Simulation(node, hv, controller=ctrl, dt=0.5)
        sim.run(30.0)
        assert vm.workload.finished
        assert len(vm.workload.scores) == 2

    def test_metrics_recorded(self):
        node, hv, ctrl = make_host()
        vm = hv.provision(ONE, "vm")
        ctrl.register_vm("vm", 1000.0)
        attach(vm, ConstantWorkload(1))
        sim = Simulation(node, hv, controller=ctrl, dt=0.5)
        sim.run(4.0)
        assert "vm" in sim.metrics.vfreq_estimated
        assert "vm" in sim.metrics.vfreq_actual
        assert len(sim.metrics.core_freq_mean) == 8

    def test_until_stops_early(self):
        node, hv, ctrl = make_host()
        vm = hv.provision(ONE, "vm")
        ctrl.register_vm("vm", 1000.0)
        attach(vm, Compress7Zip(1, iterations=1, work_per_iteration_mhz_s=1_000.0))
        sim = Simulation(node, hv, controller=ctrl, dt=0.5)
        sim.run(100.0, until=sim.all_workloads_finished)
        assert sim.t < 100.0
        assert sim.all_workloads_finished()

    def test_on_report_callback(self):
        node, hv, ctrl = make_host()
        vm = hv.provision(ONE, "vm")
        ctrl.register_vm("vm", 1000.0)
        attach(vm, ConstantWorkload(1))
        seen = []
        sim = Simulation(node, hv, controller=ctrl, dt=0.5)
        sim.run(3.0, on_report=lambda r: seen.append(r.t))
        assert seen == [1.0, 2.0, 3.0]

    def test_runs_without_controller(self):
        node, hv, _ = make_host()
        vm = hv.provision(ONE, "vm")
        attach(vm, ConstantWorkload(1))
        sim = Simulation(node, hv, dt=0.5)
        sim.run(2.0)
        assert sim.t == pytest.approx(2.0)


class TestValidation:
    def test_dt_must_divide_period(self):
        node, hv, ctrl = make_host(config=ControllerConfig(period_s=1.0))
        with pytest.raises(ValueError):
            Simulation(node, hv, controller=ctrl, dt=0.3)

    def test_dt_positive(self):
        node, hv, _ = make_host()
        with pytest.raises(ValueError):
            Simulation(node, hv, dt=0.0)

    def test_negative_duration(self):
        node, hv, _ = make_host()
        sim = Simulation(node, hv, dt=0.5)
        with pytest.raises(ValueError):
            sim.run(-1.0)
