"""Tests for the arrivals generator and the cloud operator."""

import pytest

from repro.hw.cluster import Cluster, ClusterNode
from repro.placement.constraints import CoreSplittingConstraint, VcpuCountConstraint
from repro.sim.arrivals import ArrivalEvent, CloudOperator, generate_arrivals
from repro.sim.cluster_engine import ClusterSimulation
from repro.virt.template import VMTemplate
from repro.workloads.synthetic import ConstantWorkload
from tests.conftest import TINY

T = VMTemplate("t", vcpus=1, vfreq_mhz=1200.0, memory_mb=512)


def cluster(n=2):
    return Cluster([ClusterNode(f"n{i}", TINY) for i in range(n)])


def busy_factory(event):
    return ConstantWorkload(event.template.vcpus, level=1.0)


class TestGenerator:
    def test_deterministic(self):
        mix = [(T, 1.0)]
        a = generate_arrivals(rate_per_s=0.2, template_mix=mix, mean_lifetime_s=30, horizon_s=100, seed=1)
        b = generate_arrivals(rate_per_s=0.2, template_mix=mix, mean_lifetime_s=30, horizon_s=100, seed=1)
        assert a == b

    def test_rate_roughly_respected(self):
        mix = [(T, 1.0)]
        events = generate_arrivals(
            rate_per_s=0.5, template_mix=mix, mean_lifetime_s=30, horizon_s=2000, seed=2
        )
        assert 800 <= len(events) <= 1200  # ~1000 expected

    def test_mix_weights(self):
        a = VMTemplate("a", vcpus=1, vfreq_mhz=500.0)
        b = VMTemplate("b", vcpus=1, vfreq_mhz=500.0)
        events = generate_arrivals(
            rate_per_s=1.0,
            template_mix=[(a, 3.0), (b, 1.0)],
            mean_lifetime_s=10,
            horizon_s=1000,
            seed=3,
        )
        count_a = sum(1 for e in events if e.template is a)
        assert count_a / len(events) == pytest.approx(0.75, abs=0.05)

    def test_names_unique(self):
        events = generate_arrivals(
            rate_per_s=1.0, template_mix=[(T, 1.0)], mean_lifetime_s=10,
            horizon_s=100, seed=4,
        )
        names = [e.name for e in events]
        assert len(set(names)) == len(names)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_arrivals(rate_per_s=0, template_mix=[(T, 1.0)], mean_lifetime_s=1, horizon_s=1)
        with pytest.raises(ValueError):
            generate_arrivals(rate_per_s=1, template_mix=[], mean_lifetime_s=1, horizon_s=1)
        with pytest.raises(ValueError):
            generate_arrivals(rate_per_s=1, template_mix=[(T, 0.0)], mean_lifetime_s=1, horizon_s=1)


class TestOperator:
    def _events(self, n, spacing=2.0, lifetime=1e9):
        return [
            ArrivalEvent(t=k * spacing + 0.5, name=f"vm-{k}", template=T, lifetime_s=lifetime)
            for k in range(n)
        ]

    def test_accepts_until_full_then_rejects(self):
        # tiny node: 9600 MHz capacity each -> 8 x 1200 MHz per node -> 16 total
        sim = ClusterSimulation(cluster(2), dt=0.5)
        op = CloudOperator(sim, CoreSplittingConstraint(), busy_factory)
        outcome = op.run(self._events(20), horizon_s=50.0)
        assert outcome.accepted == 16
        assert outcome.rejected == 4

    def test_departures_free_capacity(self):
        sim = ClusterSimulation(cluster(1), dt=0.5)
        op = CloudOperator(sim, CoreSplittingConstraint(), busy_factory)
        # 8 fill the node; they die at t=20; 8 more arrive after
        early = [
            ArrivalEvent(t=1.0 + 0.1 * k, name=f"e{k}", template=T, lifetime_s=19.0)
            for k in range(8)
        ]
        late = [
            ArrivalEvent(t=30.0 + 0.1 * k, name=f"l{k}", template=T, lifetime_s=1e9)
            for k in range(8)
        ]
        outcome = op.run(early + late, horizon_s=60.0)
        assert outcome.accepted == 16
        assert outcome.rejected == 0
        assert outcome.departed == 8

    def test_eq7_admission_keeps_sla_clean(self):
        sim = ClusterSimulation(cluster(2), dt=0.5)
        op = CloudOperator(sim, CoreSplittingConstraint(), busy_factory)
        outcome = op.run(self._events(16), horizon_s=80.0)
        assert outcome.sla_checks > 0
        assert outcome.violation_rate == 0.0

    def test_overcommit_admission_violates_sla(self):
        # x2 vCPU-count overcommit with no capping: 8 busy single-vCPU
        # VMs on a 4-cpu node each get a fair 0.5 core — below the
        # 0.625-core share their 1500 MHz guarantee promises.
        hungry = VMTemplate("hungry", vcpus=1, vfreq_mhz=1500.0, memory_mb=512)
        events = [
            ArrivalEvent(t=k * 1.0 + 0.5, name=f"vm-{k}", template=hungry, lifetime_s=1e9)
            for k in range(8)
        ]
        sim = ClusterSimulation(cluster(1), controlled=False, dt=0.5, enforce_admission=False)
        op = CloudOperator(
            sim, VcpuCountConstraint(consolidation_factor=2.0), busy_factory
        )
        outcome = op.run(events, horizon_s=40.0)
        assert outcome.accepted == 8
        assert outcome.violation_rate > 0.5
        assert len(outcome.vms_violated) >= 4

    def test_acceptance_rate_property(self):
        sim = ClusterSimulation(cluster(1), dt=0.5)
        op = CloudOperator(sim, CoreSplittingConstraint(), busy_factory)
        outcome = op.run(self._events(10), horizon_s=30.0)
        assert outcome.acceptance_rate == pytest.approx(8 / 10)
