"""Tests for the multi-process (sharded) control plane.

Shard factories must be module-level callables (they cross the pickle
boundary into the worker); everything they build — nodes, VMs,
controllers, the pre-tick workload hook — lives only in the worker.
"""

import functools

import pytest

from repro.core.backend import BackendStats
from repro.sim.node_manager import (
    NodeManager,
    RemoteNodeError,
    Shard,
    ShardedNodeManager,
)
from repro.virt.template import SMALL
from tests.conftest import make_host


def _signature(report):
    """Everything one iteration decided, minus wall-clock timings."""
    return (
        report.t,
        tuple(report.samples),
        dict(report.decisions),
        dict(report.allocations),
        report.market_initial,
        report.auction,
        report.freely_distributed,
        dict(report.wallets),
    )


def _build_group(node_ids, seed0):
    """Deterministic node group: node k hosts k%2+1 VMs, seeded."""
    hosts = {}
    for k, node_id in enumerate(node_ids):
        node, hv, ctrl = make_host(seed=seed0 + k)
        for j in range(k % 2 + 1):
            vm = hv.provision(SMALL, f"{node_id}-vm-{j}")
            ctrl.register_vm(vm.name, SMALL.vfreq_mhz)
            vm.set_uniform_demand(0.6 + 0.2 * j)
        hosts[node_id] = (node, hv, ctrl)
    return hosts


def _shard_factory(node_ids, seed0):
    """(runs in-worker) Build a group and advance it before each tick."""
    hosts = _build_group(node_ids, seed0)

    def pre_tick(t):
        for node, _, _ in hosts.values():
            node.step(1.0)

    return Shard(
        {node_id: ctrl for node_id, (_, _, ctrl) in hosts.items()}, pre_tick
    )


class _CrashingController:
    """Minimal Controller whose every tick raises."""

    def register_vm(self, vm_name, vfreq_mhz):
        pass

    def unregister_vm(self, vm_name):
        pass

    def tick(self, t):
        raise RuntimeError(f"injected node failure at t={t}")


def _mixed_shard_factory(seed0):
    """(runs in-worker) One healthy node plus one that always crashes."""
    hosts = _build_group(["ok-node"], seed0)

    def pre_tick(t):
        for node, _, _ in hosts.values():
            node.step(1.0)

    controllers = {"ok-node": hosts["ok-node"][2], "bad-node": _CrashingController()}
    return Shard(controllers, pre_tick)


_SHARDS = {
    "shard-0": functools.partial(_shard_factory, ("node-a", "node-b"), 7),
    "shard-1": functools.partial(_shard_factory, ("node-c",), 9),
}


class TestShardedParity:
    def test_sharded_matches_threaded(self):
        """The same three nodes, split over two worker processes,
        report exactly what the in-process thread pool reports."""
        ref_hosts = {
            **_build_group(["node-a", "node-b"], 7),
            **_build_group(["node-c"], 9),
        }
        threaded = NodeManager(
            {nid: ctrl for nid, (_, _, ctrl) in ref_hosts.items()},
            parallel=True,
        )
        with ShardedNodeManager(_SHARDS) as sharded:
            assert sharded.num_nodes == 3
            assert sharded.num_shards == 2
            assert sharded.shard_of("node-c") == "shard-1"
            for k in range(4):
                for node, _, _ in ref_hosts.values():
                    node.step(1.0)
                ref = threaded.tick(float(k + 1))
                got = sharded.tick(float(k + 1))
                assert not got.errors
                assert set(got) == set(ref)
                for node_id in ref:
                    assert _signature(got[node_id]) == _signature(ref[node_id])
            # Aggregate telemetry crosses the process boundary intact.
            assert sharded.backend_stats() == threaded.backend_stats()
            agg = sharded.aggregate_timings()
            assert agg.total > 0
        threaded.close()

    def test_unknown_node_rejected(self):
        with ShardedNodeManager(_SHARDS) as sharded:
            with pytest.raises(KeyError):
                sharded.shard_of("node-z")

    def test_empty_shard_map_rejected(self):
        with pytest.raises(ValueError):
            ShardedNodeManager({})


class TestShardedFaultIsolation:
    def test_node_failure_contained_in_shard(self):
        """A crashing node surfaces as RemoteNodeError while its shard
        sibling and the other shard keep reporting."""
        shards = {
            "shard-0": functools.partial(_mixed_shard_factory, 21),
            "shard-1": functools.partial(_shard_factory, ("node-c",), 9),
        }
        with ShardedNodeManager(shards) as sharded:
            result = sharded.tick(1.0)
            assert set(result) == {"ok-node", "node-c"}
            assert set(result.errors) == {"bad-node"}
            err = result.errors["bad-node"]
            assert isinstance(err, RemoteNodeError)
            assert err.exc_type == "RuntimeError"
            assert "injected node failure" in str(err)
            assert sharded.error_counts["bad-node"] == 1
            result = sharded.tick(2.0)
            assert sharded.error_counts["bad-node"] == 2

    def test_restart_shard_rebuilds_worker(self):
        with ShardedNodeManager(_SHARDS) as sharded:
            first = sharded.tick(1.0)
            assert not first.errors
            sharded.restart_shard("shard-1")
            result = sharded.tick(2.0)
            assert not result.errors
            # The rebuilt shard starts from its factory state again:
            # tick 2 on a fresh controller is its warmup iteration.
            assert "node-c" in result


class TestShardedStats:
    def test_stats_accumulate(self):
        with ShardedNodeManager(
            {"s0": functools.partial(_shard_factory, ("node-a",), 7)}
        ) as sharded:
            sharded.tick(1.0)
            one = sharded.backend_stats()
            sharded.tick(2.0)
            two = sharded.backend_stats()
            assert isinstance(one, BackendStats)
            assert two.fs_reads > one.fs_reads
            checks, violations = sharded.invariant_totals()
            assert violations == 0
