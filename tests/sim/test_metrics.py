"""Tests for time series and the metrics recorder."""

import pytest

from repro.sim.metrics import MetricsRecorder, TimeSeries


class TestTimeSeries:
    def test_append_and_access(self):
        s = TimeSeries("x")
        s.append(0.0, 1.0)
        s.append(1.0, 3.0)
        assert s.times.tolist() == [0.0, 1.0]
        assert s.values.tolist() == [1.0, 3.0]
        assert len(s) == 2

    def test_non_decreasing_times_enforced(self):
        s = TimeSeries("x")
        s.append(5.0, 1.0)
        with pytest.raises(ValueError):
            s.append(4.0, 1.0)

    def test_window(self):
        s = TimeSeries("x")
        for t in range(10):
            s.append(float(t), float(t))
        w = s.window(3.0, 6.0)
        assert w.times.tolist() == [3.0, 4.0, 5.0]

    def test_stats(self):
        s = TimeSeries("x")
        for v in (1.0, 2.0, 3.0):
            s.append(v, v)
        assert s.mean() == pytest.approx(2.0)
        assert s.std() == pytest.approx((2 / 3) ** 0.5)
        assert s.last() == (3.0, 3.0)

    def test_empty_series_errors(self):
        s = TimeSeries("x")
        with pytest.raises(ValueError):
            s.mean()
        with pytest.raises(ValueError):
            s.last()


class TestRecorder:
    def test_vfreq_series_created_on_demand(self):
        rec = MetricsRecorder()
        rec.record_vfreq_estimate(1.0, "vm-a", 500.0)
        rec.record_vfreq_estimate(2.0, "vm-a", 600.0)
        assert rec.vfreq_estimated["vm-a"].mean() == pytest.approx(550.0)

    def test_group_mean_series_buckets(self):
        rec = MetricsRecorder()
        for t in (0.2, 0.7):  # both in bucket 0
            rec.record_vfreq_estimate(t, "a", 100.0)
        rec.record_vfreq_estimate(1.2, "a", 300.0)
        rec.record_vfreq_estimate(1.4, "b", 500.0)
        merged = rec.group_mean_series(rec.vfreq_estimated, ["a", "b"], bucket_s=1.0)
        assert merged.times.tolist() == [0.0, 1.0]
        assert merged.values.tolist() == [100.0, 400.0]

    def test_group_mean_missing_vms_ignored(self):
        rec = MetricsRecorder()
        rec.record_vfreq_estimate(0.0, "a", 100.0)
        merged = rec.group_mean_series(rec.vfreq_estimated, ["a", "ghost"])
        assert len(merged) == 1

    def test_steady_state_mean_windows_per_vm(self):
        rec = MetricsRecorder()
        for t in range(10):
            rec.record_vfreq_estimate(float(t), "a", 100.0 if t < 5 else 200.0)
            rec.record_vfreq_estimate(float(t), "b", 300.0 if t < 5 else 400.0)
        assert rec.steady_state_mean(rec.vfreq_estimated, ["a", "b"], 5.0) == pytest.approx(300.0)

    def test_steady_state_mean_empty_window(self):
        rec = MetricsRecorder()
        rec.record_vfreq_estimate(0.0, "a", 1.0)
        with pytest.raises(ValueError):
            rec.steady_state_mean(rec.vfreq_estimated, ["a"], 100.0)

    def test_bucket_validation(self):
        rec = MetricsRecorder()
        with pytest.raises(ValueError):
            rec.group_mean_series({}, [], bucket_s=0.0)
