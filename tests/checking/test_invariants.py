"""Unit tests of the paper-equation oracles themselves.

Two directions: a correctly-driven host must stay silent (no false
positives), and a tampered report must trip exactly the oracle that
owns the broken equation (no false negatives).
"""

import pytest

from repro.checking.invariants import (
    INVARIANTS,
    InvariantChecker,
    InvariantViolationError,
    Violation,
    _make_context,
    check_enforcement,
    check_eq6_market,
    check_ledger,
)
from repro.core.config import ControllerConfig
from repro.core.metrics_export import render_controller
from repro.virt.template import VMTemplate
from repro.workloads.base import attach
from repro.workloads.synthetic import ConstantWorkload
from tests.conftest import make_host


def drive(ticks=6, engine="vectorized", **overrides):
    """Two busy single-vCPU VMs on the tiny host, checker armed."""
    config = ControllerConfig.paper_evaluation(engine=engine, **overrides)
    node, hv, ctrl = make_host(config=config)
    for k, vfreq in enumerate((600.0, 900.0)):
        vm = hv.provision(VMTemplate(f"t{k}", vcpus=1, vfreq_mhz=vfreq), f"vm-{k}")
        ctrl.register_vm(vm.name, vfreq)
        attach(vm, ConstantWorkload(1, level=0.9))
    checker = InvariantChecker(ctrl)
    for t in range(ticks):
        node.step(1.0)
        report = ctrl.tick(float(t))
        checker.check(report)
    return node, ctrl, checker


class TestCleanRuns:
    @pytest.mark.parametrize("engine", ["scalar", "vectorized"])
    def test_no_false_positives(self, engine):
        _, ctrl, checker = drive(engine=engine)
        assert checker.checks_total == 6
        assert checker.violations_total == 0
        assert checker.last_violations == []

    def test_catalogue_is_stable(self):
        # Docs, metrics labels and repro files all refer to these names.
        assert list(INVARIANTS) == [
            "samples",
            "eq2_guarantee",
            "eq5_base_cap",
            "eq6_market",
            "free_distribution",
            "budget",
            "ledger",
            "enforcement",
            "resilience_fallback",
        ]


class TestTamperedReports:
    def test_allocation_tamper_trips_enforcement(self):
        _, ctrl, _ = drive()
        report = ctrl.reports[-1]
        path = next(iter(report.allocations))
        report.allocations[path] += 5000.0
        ctx = _make_context(ctrl, report, dict(report.wallets))
        names = {v.invariant for v in check_enforcement(ctx)}
        assert "enforcement" in names

    def test_market_off_by_one_trips_eq6(self):
        _, ctrl, _ = drive()
        report = ctrl.reports[-1]
        report.market_initial += 1.0
        ctx = _make_context(ctrl, report, dict(report.wallets))
        assert any(
            v.invariant == "eq6_market" for v in check_eq6_market(ctx)
        )

    def test_negative_wallet_trips_ledger(self):
        _, ctrl, _ = drive()
        report = ctrl.reports[-1]
        vm = next(iter(report.wallets))
        report.wallets[vm] = -5.0
        ctx = _make_context(ctrl, report, dict(report.wallets))
        violations = check_ledger(ctx)
        assert any(
            v.invariant == "ledger" and "negative" in v.message
            for v in violations
        )


class TestInlineChecker:
    def test_config_flag_arms_the_oracle(self):
        _, ctrl, _ = drive(check_invariants=True)
        assert ctrl.invariant_checker is not None
        assert ctrl.invariant_checker.checks_total == 6
        assert ctrl.invariant_checker.violations_total == 0

    def test_violation_raises_out_of_tick(self, monkeypatch):
        import repro.core.controller as ctrl_mod

        def broken_market(total, allocations):
            from repro.core.auction import compute_market

            return compute_market(total, allocations) + 1.0

        config = ControllerConfig.paper_evaluation(
            engine="scalar", check_invariants=True
        )
        node, hv, ctrl = make_host(config=config)
        vm = hv.provision(VMTemplate("t", vcpus=1, vfreq_mhz=800.0), "vm-0")
        ctrl.register_vm(vm.name, 800.0)
        attach(vm, ConstantWorkload(1, level=1.0))
        monkeypatch.setattr(ctrl_mod, "compute_market", broken_market)
        node.step(1.0)
        with pytest.raises(InvariantViolationError) as excinfo:
            ctrl.tick(0.0)
        assert any(
            v.invariant == "eq6_market" for v in excinfo.value.violations
        )

    def test_metrics_render_counters(self):
        _, ctrl, _ = drive(check_invariants=True)
        out = render_controller(ctrl)
        assert "vfreq_invariant_checks_total 6" in out
        assert "vfreq_invariant_violations_total 0" in out

    def test_violation_str_names_the_site(self):
        v = Violation("budget", "over-sold", t=3.0, path="/x/vm-1/vcpu0")
        assert "t=3" in str(v)
        assert "budget" in str(v)
        assert "/x/vm-1/vcpu0" in str(v)
