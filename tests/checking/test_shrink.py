"""Tests of the ddmin trace shrinker, against synthetic predicates
(fast, no engine in the loop) — the end-to-end mutant pipeline lives in
test_mutant_catch.py."""

import pytest

from repro.checking import Trace, shrink_trace


def make_trace(events):
    return Trace(header=Trace.make_header(seed=0), events=list(events))


def has_both(trace):
    names = {e.get("vm") for e in trace.events if e["kind"] == "provision"}
    return {"x", "y"} <= names


class TestDdmin:
    def test_reduces_to_the_two_relevant_events(self):
        noise = [{"kind": "tick"}] * 10
        events = (
            noise
            + [{"kind": "provision", "vm": "x", "vcpus": 1, "vfreq": 500.0}]
            + noise
            + [{"kind": "provision", "vm": "y", "vcpus": 1, "vfreq": 500.0}]
            + noise
        )
        minimal = shrink_trace(make_trace(events), predicate=has_both)
        assert len(minimal.events) == 2
        assert has_both(minimal)

    def test_single_event_failure(self):
        events = [{"kind": "tick"}] * 7 + [
            {"kind": "restart"}
        ] + [{"kind": "tick"}] * 7

        def has_restart(trace):
            return any(e["kind"] == "restart" for e in trace.events)

        minimal = shrink_trace(make_trace(events), predicate=has_restart)
        assert minimal.events == [{"kind": "restart"}]

    def test_result_is_one_minimal(self):
        """Removing any single event from the shrunken trace must make
        the predicate pass — the ddmin guarantee repro readers rely on."""
        events = [{"kind": "demand", "vm": f"v{i}", "level": 0.5} for i in range(12)]

        def needs_three_even(trace):
            evens = [
                e for e in trace.events if int(e["vm"][1:]) % 2 == 0
            ]
            return len(evens) >= 3

        minimal = shrink_trace(make_trace(events), predicate=needs_three_even)
        assert needs_three_even(minimal)
        for i in range(len(minimal.events)):
            probe = minimal.with_events(
                minimal.events[:i] + minimal.events[i + 1:]
            )
            assert not needs_three_even(probe)

    def test_refuses_passing_trace(self):
        with pytest.raises(ValueError):
            shrink_trace(make_trace([{"kind": "tick"}]), predicate=lambda t: False)

    def test_header_carried_through(self):
        trace = Trace(
            header=Trace.make_header(seed=9, resilience=True),
            events=[{"kind": "tick"}] * 4,
        )
        minimal = shrink_trace(trace, predicate=lambda t: True)
        assert minimal.header == trace.header
