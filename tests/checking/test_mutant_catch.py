"""End-to-end acceptance of the oracle + shrinker pipeline.

An intentionally-broken controller (off-by-one in the Eq. 6 market
computation) must be (1) caught by the fuzzer's oracles, (2) shrunk to
a <= 10-event minimal repro, and (3) red when that repro replays under
pytest — while the unmutated controller replays the same file green.
"""

import pytest

from repro.checking import Trace, generate_trace, replay, shrink_trace


@pytest.fixture
def market_mutant(monkeypatch):
    """Patch the scalar engine's market computation off by one cycle."""
    import repro.core.controller as ctrl_mod
    from repro.core.auction import compute_market

    def broken_market(total_cycles, allocations):
        return compute_market(total_cycles, allocations) + 1.0

    monkeypatch.setattr(ctrl_mod, "compute_market", broken_market)


class TestMutantPipeline:
    def test_oracle_catches_and_shrinks_the_mutant(self, market_mutant, tmp_path):
        trace = generate_trace(3, ticks=60)

        # 1) caught: the very first control tick breaks Eq. 6.
        result = replay(trace)
        assert not result.ok
        assert any(
            v.invariant in ("eq6_market", "engine_identity")
            for v in result.violations
        )

        # 2) shrunk: delta debugging gets it under 10 events.
        minimal = shrink_trace(trace)
        assert len(minimal.events) <= 10

        # 3) the minimal repro replays red, from disk, like the pytest
        # harness in test_repros.py would run it.
        path = tmp_path / "repro_market_mutant.jsonl"
        minimal.save(str(path))
        reloaded = Trace.load(str(path))
        assert not replay(reloaded).ok

    def test_unmutated_controller_replays_green(self):
        trace = generate_trace(3, ticks=60)
        assert replay(trace).ok
