"""Auto-collected regression harness for committed minimized repros.

Workflow (see docs/testing.md): when the fuzzer finds a violation, the
shrinker writes a minimal JSONL trace; once the underlying bug is
fixed, the trace is committed under ``tests/checking/repros/`` and this
module replays every committed file on every CI run — each repro is a
permanent regression test with the full invariant catalogue and
cross-engine identity armed.
"""

import glob
import os

import pytest

from repro.checking import Trace, replay

REPRO_DIR = os.path.join(os.path.dirname(__file__), "repros")
REPRO_FILES = sorted(glob.glob(os.path.join(REPRO_DIR, "*.jsonl")))


def test_repro_directory_exists():
    assert os.path.isdir(REPRO_DIR)


@pytest.mark.parametrize(
    "path", REPRO_FILES, ids=[os.path.basename(p) for p in REPRO_FILES]
)
def test_committed_repro_replays_green(path):
    trace = Trace.load(path)
    result = replay(trace, stop_at_first=False)
    assert result.ok, (
        f"{os.path.basename(path)} regressed: "
        + "; ".join(str(v) for v in result.violations)
    )
