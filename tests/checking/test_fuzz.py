"""Tests of the seeded scenario fuzzer and the trace format."""

import pytest

from repro.checking import Trace, fuzz_one, generate_trace, replay
from repro.checking.fuzz import HOST_CAPACITY_MHZ


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = generate_trace(7, ticks=60)
        b = generate_trace(7, ticks=60)
        assert a.to_jsonl() == b.to_jsonl()

    def test_different_seeds_differ(self):
        assert generate_trace(1, ticks=60).events != generate_trace(2, ticks=60).events

    def test_replay_is_reproducible(self):
        trace = generate_trace(4, ticks=30)
        first = replay(trace, collect_reports=True)
        second = replay(trace, collect_reports=True)
        for engine in first.engines:
            wallets_a = [r.wallets for r in first.reports[engine]]
            wallets_b = [r.wallets for r in second.reports[engine]]
            assert wallets_a == wallets_b


class TestTraceFormat:
    def test_jsonl_roundtrip(self, tmp_path):
        trace = generate_trace(5, ticks=20)
        path = tmp_path / "t.jsonl"
        trace.save(str(path))
        loaded = Trace.load(str(path))
        assert loaded.header == trace.header
        assert loaded.events == trace.events

    def test_header_required(self):
        with pytest.raises(ValueError):
            Trace.from_jsonl('{"kind": "tick"}\n')

    def test_version_checked(self):
        with pytest.raises(ValueError):
            Trace.from_jsonl('{"kind": "header", "version": 99}\n')

    def test_tick_count(self):
        trace = generate_trace(9, ticks=33)
        assert trace.ticks == 33


class TestGeneratedScenarios:
    def test_respects_eq7_budget(self):
        """The committed budget never exceeds host capacity at any
        point of the event stream (the Eq. 2 precondition)."""
        for seed in range(10):
            trace = generate_trace(seed, ticks=60)
            committed = {}
            shapes = {}
            for e in trace.events:
                if e["kind"] == "provision":
                    shapes[e["vm"]] = e["vcpus"]
                    committed[e["vm"]] = e["vcpus"] * e["vfreq"]
                elif e["kind"] == "destroy":
                    committed.pop(e["vm"], None)
                    shapes.pop(e["vm"], None)
                elif e["kind"] == "set_vfreq":
                    committed[e["vm"]] = shapes[e["vm"]] * e["vfreq"]
                assert sum(committed.values()) <= HOST_CAPACITY_MHZ + 1e-9

    def test_fault_specs_are_deterministic(self):
        """Only probability-1.0, windowed, jitter-free specs: anything
        else consumes plan RNG per opportunity and would let the two
        engine replicas' fault streams drift apart."""
        seen_plan = False
        for seed in range(20):
            plan = generate_trace(seed, ticks=60).header["fault_plan"]
            if plan is None:
                continue
            seen_plan = True
            for spec in plan["specs"]:
                assert spec["probability"] == 1.0
                assert spec["end_tick"] is not None
                assert spec["jitter_frac"] == 0.0
                assert spec["kind"] not in ("clock_jitter", "crash")
        assert seen_plan

    def test_full_feature_seed_passes(self):
        """Seed 0 exercises faults, restart, destroy and renegotiation
        in one scenario; the whole catalogue must stay silent."""
        trace = generate_trace(0, ticks=80)
        kinds = {e["kind"] for e in trace.events}
        assert {"provision", "destroy", "set_vfreq", "restart", "tick"} <= kinds
        assert trace.header["fault_plan"] is not None
        result = replay(trace)
        assert result.ok, [str(v) for v in result.violations]

    def test_fuzz_one_clean(self):
        result = fuzz_one(1, ticks=40)
        assert result.ok
        assert result.engine_ticks == 80  # 40 ticks x 2 engines
