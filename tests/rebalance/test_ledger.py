"""RebalanceLedger ring, JSONL mirror, lookup and explain rendering."""

import json

import pytest

from repro.rebalance.ledger import (
    RebalanceLedger,
    explain_move,
    explain_move_from_entries,
    load_rebalance_jsonl,
    lookup_move,
)


def round_entry(round_no, moves):
    meta = {
        "round": round_no, "t": float(round_no * 5), "seed": round_no,
        "pressure_before_mhz": 2400.0, "pressure_after_mhz": 0.0,
        "fragmentation_before": 0.1, "n_moves": len(moves),
    }
    return meta, moves


def move_record(vm="vm-1", reason="pressure", executed=True):
    record = {
        "vm": vm, "source": "n0", "target": "n1", "reason": reason,
        "demand_mhz": 2400.0, "memory_mb": 4096, "transfer_s": 4.26,
        "downtime_s": 0.5, "cost_s": 4.76, "relief_mhz": 2400.0,
        "score": 504.2, "target_headroom_after_mhz": 1200.0,
        "executed": executed,
    }
    if not executed:
        record["reject_reason"] = "target vanished"
    return record


class TestLedger:
    def test_ring_is_bounded(self):
        ledger = RebalanceLedger(ring_rounds=3)
        for i in range(5):
            ledger.record_round(*round_entry(i, []))
        rounds = [e["meta"]["round"] for e in ledger.rounds]
        assert rounds == [2, 3, 4]

    def test_jsonl_mirror_round_trips(self, tmp_path):
        path = str(tmp_path / "rebalance.jsonl")
        ledger = RebalanceLedger(path=path)
        ledger.record_round(*round_entry(0, [move_record()]))
        ledger.record_round(*round_entry(1, []))
        ledger.close()
        entries = load_rebalance_jsonl(path)
        assert len(entries) == 2
        assert entries[0]["moves"][0]["vm"] == "vm-1"

    def test_loader_skips_foreign_and_blank_lines(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        meta, moves = round_entry(0, [])
        path.write_text(
            json.dumps({"kind": "decision", "vm": "x"}) + "\n\n"
            + json.dumps({"kind": "round", "meta": meta, "moves": moves})
            + "\n"
        )
        entries = load_rebalance_jsonl(str(path))
        assert len(entries) == 1

    def test_lookup_returns_latest_match(self):
        ledger = RebalanceLedger()
        ledger.record_round(*round_entry(0, [move_record()]))
        ledger.record_round(*round_entry(7, [move_record()]))
        meta, move = ledger.lookup("vm-1")
        assert meta["round"] == 7

    def test_lookup_can_pin_a_round(self):
        ledger = RebalanceLedger()
        ledger.record_round(*round_entry(0, [move_record()]))
        ledger.record_round(*round_entry(7, [move_record()]))
        meta, _ = ledger.lookup("vm-1", round_no=0)
        assert meta["round"] == 0
        assert ledger.lookup("vm-1", round_no=3) is None

    def test_lookup_unknown_vm(self):
        assert lookup_move([], "ghost") is None


class TestExplain:
    def test_rendering_contains_full_derivation(self):
        meta, moves = round_entry(4, [move_record()])
        text = explain_move(meta, moves[0])
        assert "round 4" in text
        assert "goal      pressure" in text
        assert "smallest VM covering the Eq. 7 deficit" in text
        assert "best-fit, Eq. 7-admissible" in text
        assert "4.260 s transfer + 0.500 s stop-and-copy" in text
        assert "blackout on n0+n1" in text

    def test_rejected_move_rendered_as_not_executed(self):
        meta, moves = round_entry(0, [move_record(executed=False)])
        text = explain_move(meta, moves[0])
        assert "NOT executed: target vanished" in text

    def test_from_entries_raises_with_hint(self):
        meta, moves = round_entry(2, [move_record(vm="vm-9")])
        entries = [{"kind": "round", "meta": meta, "moves": moves}]
        with pytest.raises(KeyError, match="vm-9"):
            explain_move_from_entries(entries, "ghost")

    def test_from_entries_renders_match(self):
        meta, moves = round_entry(2, [move_record(vm="vm-9")])
        entries = [{"kind": "round", "meta": meta, "moves": moves}]
        assert "vm-9" in explain_move_from_entries(entries, "vm-9")
