"""CLI surface: the `repro rebalance` family and `explain --move`."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_rebalance_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["rebalance"])

    def test_plan_defaults(self):
        args = build_parser().parse_args(["rebalance", "plan"])
        assert args.rebalance_command == "plan"
        assert (args.nodes, args.vms, args.seed) == (8, 300, 7)
        assert args.at == 60.0
        assert args.drain == [] or args.drain is None

    def test_run_rebalance_toggle(self):
        args = build_parser().parse_args(["rebalance", "run"])
        assert args.rebalance is True
        args = build_parser().parse_args(["rebalance", "run", "--no-rebalance"])
        assert args.rebalance is False

    def test_explain_accepts_move_form(self):
        args = build_parser().parse_args(["explain", "--move", "vm-3"])
        assert args.move == "vm-3"
        assert args.vm is None


class TestCommands:
    def test_plan_dry_run_prints_moves(self, capsys):
        rc = main([
            "rebalance", "plan", "--nodes", "6", "--vms", "260",
            "--at", "75", "--degrade-rate", "0.2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "planned moves (dry run)" in out
        assert "snapshot at t=75" in out

    def test_plan_unknown_drain_node_errors(self, capsys):
        rc = main([
            "rebalance", "plan", "--nodes", "4", "--drain", "ghost",
        ])
        assert rc == 2
        assert "ghost" in capsys.readouterr().err

    def test_drain_evacuates_node(self, capsys):
        rc = main([
            "rebalance", "drain", "node-3", "--nodes", "6", "--vms", "260",
            "--duration", "90",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "node-3 drained" in out

    def test_drain_unknown_node_errors(self, capsys):
        rc = main(["rebalance", "drain", "node-99", "--nodes", "4"])
        assert rc == 2
        assert "unknown node" in capsys.readouterr().err

    def test_run_with_baseline_compares(self, capsys, tmp_path):
        ledger = str(tmp_path / "rebalance.jsonl")
        rc = main([
            "rebalance", "run", "--nodes", "6", "--vms", "260",
            "--duration", "60", "--baseline", "--ledger", ledger,
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "static baseline" in out
        assert "rebalanced" in out
        entries = [json.loads(l) for l in open(ledger) if l.strip()]
        assert entries and all(e["kind"] == "round" for e in entries)

    def test_explain_move_round_trips_through_ledger(self, capsys, tmp_path):
        ledger = str(tmp_path / "rebalance.jsonl")
        assert main([
            "rebalance", "run", "--nodes", "6", "--vms", "260",
            "--duration", "60", "--ledger", ledger,
        ]) == 0
        entries = [json.loads(l) for l in open(ledger) if l.strip()]
        moved = [m["vm"] for e in entries for m in e["moves"] if m["executed"]]
        assert moved, "expected at least one migration in 60 s"
        capsys.readouterr()
        rc = main(["explain", "--move", moved[0], "--ledger", ledger])
        out = capsys.readouterr().out
        assert rc == 0
        assert f"migration derivation for {moved[0]}" in out

    def test_explain_move_unknown_vm(self, capsys, tmp_path):
        ledger = tmp_path / "rebalance.jsonl"
        ledger.write_text("")
        rc = main(["explain", "--move", "ghost", "--ledger", str(ledger)])
        assert rc == 1
        assert "no rebalance record" in capsys.readouterr().err

    def test_explain_without_either_form_is_usage_error(self, capsys):
        rc = main(["explain", "--ledger", "whatever.jsonl"])
        assert rc == 2
        assert "--move" in capsys.readouterr().err
