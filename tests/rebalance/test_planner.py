"""MigrationPlanner: goals, budgets, determinism, oracle admissibility."""

import pytest

from repro.checking.invariants import check_plan_admissible
from repro.placement.migration import MigrationModel
from repro.rebalance.planner import (
    GOALS,
    MigrationPlanner,
    PlannerConfig,
)
from repro.rebalance.view import InFlightView
from tests.rebalance.conftest import make_view, vm


class TestPressureGoal:
    def test_relieves_deficit_with_smallest_covering_vm(self, pressured_view):
        plan = MigrationPlanner().plan(pressured_view)
        assert plan.moves, "expected pressure moves"
        first = plan.moves[0]
        assert first.reason == "pressure"
        assert first.source == "n0"
        # deficit 2400; "a" (3600) is the smallest covering VM
        assert first.vm_name == "a"
        assert plan.pressure_after_mhz < plan.pressure_before_mhz

    def test_falls_back_to_largest_when_none_covers(self):
        view = make_view(
            {
                "n0": [vm("a", 1, 1200.0), vm("b", 1, 1000.0)],
                "n1": [],
            },
            capacities={"n0": 100.0},  # deficit 2100 > any single VM
        )
        plan = MigrationPlanner().plan(view)
        assert [m.vm_name for m in plan.moves][0] == "a"  # largest first

    def test_never_targets_a_pressured_node(self):
        view = make_view(
            {
                "n0": [vm("a", 2, 1800.0)],
                "n1": [vm("b", 4, 1800.0)],  # itself in deficit
                "n2": [],
            },
            capacities={"n0": 2400.0, "n1": 2400.0},
        )
        plan = MigrationPlanner().plan(view)
        assert all(m.target == "n2" for m in plan.moves)

    def test_pinned_source_skipped(self, ):
        view = make_view(
            {
                "n0": [vm("a", 2, 1800.0), vm("x")],
                "n1": [],
                "n2": [],
            },
            capacities={"n0": 2400.0},
            in_flight=[InFlightView("x", "n0", "n1", arrives_at=9.0)],
        )
        plan = MigrationPlanner().plan(view)
        assert not plan.moves
        assert plan.skipped.get("source_pinned", 0) >= 1

    def test_no_target_recorded_when_cluster_full(self):
        view = make_view(
            {"n0": [vm("a", 4, 2400.0)], "n1": [vm("b", 4, 2400.0)]},
            capacities={"n0": 4800.0, "n1": 9600.0},
        )
        plan = MigrationPlanner().plan(view)
        assert not plan.moves
        assert plan.skipped.get("no_target", 0) >= 1


class TestDrainGoal:
    def test_drain_empties_node_largest_first(self):
        view = make_view(
            {"n0": [vm("a", 2, 1800.0), vm("b")], "n1": [], "n2": []}
        )
        plan = MigrationPlanner().plan(view, drain=["n0"])
        drained = [m for m in plan.moves if m.reason == "drain"]
        assert [m.vm_name for m in drained] == ["a", "b"]
        assert all(m.target != "n0" for m in plan.moves)

    def test_unknown_drain_node_raises(self):
        view = make_view({"n0": []})
        with pytest.raises(KeyError, match="ghost"):
            MigrationPlanner().plan(view, drain=["ghost"])

    def test_drain_ignores_per_source_cap(self):
        cfg = PlannerConfig(max_moves_per_round=16, max_moves_per_node=1,
                            consolidate=False)
        view = make_view(
            {"n0": [vm(f"v{i}") for i in range(3)], "n1": [], "n2": [],
             "n3": []}
        )
        plan = MigrationPlanner(config=cfg).plan(view, drain=["n0"])
        # 3 moves out of n0 even though max_moves_per_node=1: targets
        # still respect their own cap, so each lands somewhere else.
        assert len([m for m in plan.moves if m.source == "n0"]) == 3

    def test_drain_respects_round_budget(self):
        cfg = PlannerConfig(max_moves_per_round=2, consolidate=False)
        view = make_view(
            {"n0": [vm(f"v{i}") for i in range(5)], "n1": [], "n2": []}
        )
        plan = MigrationPlanner(config=cfg).plan(view, drain=["n0"])
        assert len(plan.moves) == 2
        assert plan.skipped.get("round_budget", 0) >= 1


class TestConsolidateGoal:
    def test_whole_node_evacuation_only(self):
        # n0 at 12.5% utilisation can fully empty onto n1 (used).
        view = make_view(
            {"n0": [vm("a")], "n1": [vm("b"), vm("c")], "n2": []},
        )
        plan = MigrationPlanner().plan(view)
        cons = [m for m in plan.moves if m.reason == "consolidate"]
        assert {m.vm_name for m in cons} == {"a"}
        assert all(m.target == "n1" for m in cons)  # used node, not empty n2

    def test_partial_evacuation_rejected(self):
        # n0's two VMs cannot both fit anywhere: no consolidation moves.
        view = make_view(
            {
                "n0": [vm("a", 1, 1200.0), vm("b", 1, 1200.0)],
                "n1": [vm("c", 3, 2400.0)],  # headroom 2400: takes 1 VM... 2 VMs = 2400 exactly
            },
            capacities={"n0": 9600.0, "n1": 8400.0},
        )
        cfg = PlannerConfig(max_moves_per_round=1)  # budget forces partial
        plan = MigrationPlanner(config=cfg).plan(view)
        assert not [m for m in plan.moves if m.reason == "consolidate"]
        assert plan.skipped.get("consolidate_unplaceable", 0) >= 1

    def test_consolidate_disabled(self):
        view = make_view({"n0": [vm("a")], "n1": [vm("b"), vm("c")]})
        cfg = PlannerConfig(consolidate=False)
        plan = MigrationPlanner(config=cfg).plan(view)
        assert not plan.moves


class TestBudgetsAndDeterminism:
    def test_round_budget_caps_moves(self):
        view = make_view(
            {"n0": [vm(f"v{i}", 1, 2400.0) for i in range(8)], "n1": [], "n2": []},
            capacities={"n0": 2400.0},
        )
        cfg = PlannerConfig(max_moves_per_round=3, max_moves_per_node=8,
                            consolidate=False)
        plan = MigrationPlanner(config=cfg).plan(view)
        assert len(plan.moves) == 3

    def test_per_node_budget_caps_targets(self):
        view = make_view(
            {"n0": [vm(f"v{i}", 1, 2400.0) for i in range(8)], "n1": []},
            capacities={"n0": 2400.0},
        )
        cfg = PlannerConfig(max_moves_per_round=8, max_moves_per_node=2,
                            consolidate=False)
        plan = MigrationPlanner(config=cfg).plan(view)
        # source n0 capped at 2 moves; n1 is the only target anyway
        assert len(plan.moves) <= 2

    def test_same_view_same_seed_identical_plan(self, pressured_view):
        p1 = MigrationPlanner().plan(pressured_view, seed=42)
        p2 = MigrationPlanner().plan(pressured_view, seed=42)
        assert p1.moves == p2.moves
        assert p1.skipped == p2.skipped
        assert p1.pressure_after_mhz == p2.pressure_after_mhz

    def test_seed_breaks_equal_headroom_ties(self):
        # two identical empty targets: only the seeded rank distinguishes
        view = make_view(
            {"n0": [vm("a", 2, 1800.0), vm("b")], "n1": [], "n2": []},
            capacities={"n0": 2400.0},
        )
        targets = {
            MigrationPlanner().plan(view, seed=s).moves[0].target
            for s in range(16)
        }
        assert targets == {"n1", "n2"}

    def test_config_validation(self):
        for kwargs in (
            {"max_moves_per_round": 0},
            {"max_moves_per_node": 0},
            {"allocation_ratio": 0.0},
            {"consolidate_below": 0.0},
            {"consolidate_below": 1.0},
        ):
            with pytest.raises(ValueError):
                PlannerConfig(**kwargs)


class TestPlanQuality:
    def test_every_plan_passes_the_oracle(self, pressured_view):
        for seed in range(8):
            plan = MigrationPlanner().plan(pressured_view, seed=seed)
            assert check_plan_admissible(pressured_view, plan) == []

    def test_moves_are_costed_by_the_model(self):
        model = MigrationModel(link_gbps=10.0, dirty_page_overhead=1.0,
                               downtime_s=0.25)
        view = make_view(
            {"n0": [vm("a", 2, 1800.0, 1250)], "n1": []},
            capacities={"n0": 2400.0},
        )
        plan = MigrationPlanner(model=model).plan(view)
        move = plan.moves[0]
        assert move.transfer_s == pytest.approx(1.0)  # 1250 MB at 10 Gbps
        assert move.cost_s == pytest.approx(1.25)
        assert move.score == pytest.approx(move.relief_mhz / 1.25)

    def test_reasons_are_goal_names(self, pressured_view):
        plan = MigrationPlanner().plan(pressured_view, drain=["n1"])
        assert {m.reason for m in plan.moves} <= set(GOALS)
