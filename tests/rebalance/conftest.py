"""Hand-built cluster snapshots for planner/loop tests."""

from typing import Dict, Iterable, Optional, Tuple

import pytest

from repro.rebalance.view import (
    ClusterStateView,
    InFlightView,
    NodeView,
    VmView,
)


def make_view(
    assignments: Dict[str, Iterable[Tuple[str, int, float, int]]],
    *,
    capacity_mhz: float = 9600.0,
    capacities: Optional[Dict[str, float]] = None,
    fmax_mhz: float = 2400.0,
    memory_mb: int = 32768,
    powered_off: Iterable[str] = (),
    in_flight: Iterable[InFlightView] = (),
    t: float = 0.0,
) -> ClusterStateView:
    """Build a consistent snapshot from ``{node: [(vm, vcpus, vfreq, mb)]}``.

    Per-node committed totals are derived from the VM list, so the view
    is always self-consistent — the invariant the oracle relies on.
    """
    capacities = capacities or {}
    off = set(powered_off)
    nodes: Dict[str, NodeView] = {}
    vms: Dict[str, VmView] = {}
    for node_id, vm_specs in assignments.items():
        names = []
        committed = 0.0
        committed_mb = 0
        for name, vcpus, vfreq, mb in vm_specs:
            vms[name] = VmView(
                name=name, node_id=node_id, vcpus=vcpus,
                vfreq_mhz=vfreq, memory_mb=mb,
            )
            names.append(name)
            committed += vcpus * vfreq
            committed_mb += mb
        nodes[node_id] = NodeView(
            node_id=node_id,
            capacity_mhz=capacities.get(node_id, capacity_mhz),
            fmax_mhz=fmax_mhz,
            memory_mb=memory_mb,
            committed_mhz=committed,
            committed_memory_mb=committed_mb,
            demand_mhz=committed,
            powered_on=node_id not in off,
            vm_names=tuple(sorted(names)),
        )
    return ClusterStateView(
        t=t, nodes=nodes, vms=vms, in_flight=tuple(in_flight)
    )


def vm(name: str, vcpus: int = 1, vfreq: float = 1200.0, mb: int = 512):
    return (name, vcpus, vfreq, mb)


@pytest.fixture
def pressured_view() -> ClusterStateView:
    """n0 over-committed by 2400 MHz (degraded capacity), n1/n2 roomy."""
    return make_view(
        {
            "n0": [vm("a", 2, 1800.0), vm("b", 1, 1200.0), vm("c", 1, 1200.0)],
            "n1": [vm("d", 1, 1200.0)],
            "n2": [],
        },
        capacities={"n0": 3600.0},  # committed 6000 -> pressure 2400
    )
