"""ChurnChaosCluster: determinism, admission, and the headline claim."""

import pytest

from repro.rebalance.chaos import ChaosConfig, ChurnChaosCluster
from repro.rebalance.loop import RebalanceLoop
from repro.rebalance.planner import MigrationPlanner, PlannerConfig
from repro.sim.metrics import ClusterRebalanceMetrics
from repro.sim.scenario import (
    ClusterScenario,
    chaos_churn,
    chaos_churn_small,
    chaos_churn_xl,
)

SMALL = dict(nodes=6, duration_s=60.0, seed=3, initial_vms=200,
             degrade_rate_per_s=0.05)


def small_cluster(**overrides):
    return ChurnChaosCluster(ChaosConfig(**{**SMALL, **overrides}))


def small_loop(every=2, seed=3):
    return RebalanceLoop(
        MigrationPlanner(config=PlannerConfig(max_moves_per_round=16,
                                              max_moves_per_node=4)),
        every=every, seed=seed,
    )


class TestDeterminism:
    def test_static_run_is_seed_deterministic(self):
        r1 = small_cluster().run().to_dict()
        r2 = small_cluster().run().to_dict()
        assert r1 == r2

    def test_rebalanced_run_is_seed_deterministic(self):
        r1 = small_cluster().run(small_loop()).to_dict()
        r2 = small_cluster().run(small_loop()).to_dict()
        assert r1 == r2

    def test_different_seed_different_trajectory(self):
        r1 = small_cluster(seed=3).run().to_dict()
        r2 = small_cluster(seed=4).run().to_dict()
        assert r1 != r2


class TestMechanics:
    def test_population_and_accounting_consistent(self):
        cluster = small_cluster(degrade_rate_per_s=0.2)
        result = cluster.run()
        hosted = sum(len(n.vms) for n in cluster.nodes.values())
        assert result.final_vms == hosted
        assert result.arrivals >= 0 and result.departures >= 0
        assert result.chaos_events > 0  # 0.2/s over 60 s, ~12 expected

    def test_chaos_degradation_creates_violations(self):
        # a packed cluster plus degradation must register violation time
        result = small_cluster(initial_vms=260).run()
        assert result.violation_vm_seconds > 0

    def test_start_migration_validates(self):
        cluster = small_cluster()
        view = cluster.rebalance_view()
        vm_name = next(iter(view.vms))
        source = view.vms[vm_name].node_id
        with pytest.raises(KeyError):
            cluster.start_migration("ghost", "node-0")
        with pytest.raises(ValueError):
            cluster.start_migration(vm_name, source)  # target == source

    def test_migration_reserves_target_capacity(self):
        cluster = small_cluster(initial_vms=60)  # leave real headroom
        view = cluster.rebalance_view()
        vm_name = next(iter(view.vms))
        vm = view.vms[vm_name]
        target = max(
            (n for n in view.nodes.values() if n.node_id != vm.node_id),
            key=lambda n: n.headroom_mhz,
        ).node_id
        before = cluster.nodes[target].planned_in_mhz
        cluster.start_migration(vm_name, target)
        assert cluster.nodes[target].planned_in_mhz == pytest.approx(
            before + vm.demand_mhz
        )

    def test_metrics_recorder_sees_every_step(self):
        metrics = ClusterRebalanceMetrics()
        small_cluster(duration_s=10.0).run(metrics=metrics)
        assert len(metrics.pressure_mhz.times) == 10
        assert len(metrics.violating_vms.values) == 10


class TestHeadlineClaim:
    def test_rebalancer_beats_static_placement(self):
        """The PR's core claim, miniature: under chaos+churn the
        rebalancer keeps cumulative guarantee-violation time (plus its
        own migration downtime) materially below static placement."""
        static = small_cluster(initial_vms=260).run()
        rebalanced = small_cluster(initial_vms=260).run(small_loop())
        assert rebalanced.migrations > 0
        assert rebalanced.total_bad_vm_seconds < 0.8 * static.total_bad_vm_seconds

    def test_every_move_is_ledger_explainable(self, tmp_path):
        from repro.rebalance.ledger import (
            explain_move_from_entries,
            load_rebalance_jsonl,
        )

        path = str(tmp_path / "rebalance.jsonl")
        scenario = ClusterScenario(
            name="mini", nodes=6, vms=260, duration=60.0, seed=3,
            degrade_rate_per_s=0.05, rebalance_every=2, ledger_path=path,
        )
        result = scenario.run()
        assert result.migrations > 0
        entries = load_rebalance_jsonl(path)
        moved = {m["vm"] for e in entries for m in e["moves"] if m["executed"]}
        assert len(moved) > 0
        for vm_name in sorted(moved):
            text = explain_move_from_entries(entries, vm_name)
            assert "migration derivation" in text


class TestSnapshotDialects:
    def test_arrays_snapshot_matches_view(self):
        cluster = small_cluster()
        view = cluster.rebalance_view()
        arrays = cluster.rebalance_arrays()
        assert arrays.to_view() == view

    def test_arrays_cache_survives_migration_but_not_churn(self):
        cluster = small_cluster(initial_vms=60)
        a1 = cluster.rebalance_arrays()
        view = cluster.rebalance_view()
        vm_name = next(iter(view.vms))
        target = max(
            (n for n in view.nodes.values()
             if n.node_id != view.vms[vm_name].node_id),
            key=lambda n: n.headroom_mhz,
        ).node_id
        cluster.start_migration(vm_name, target)
        # Same population: static VM columns are reused, reservations show.
        a2 = cluster.rebalance_arrays()
        assert a2.vm_names == a1.vm_names
        slot = a2.node_index[target]
        assert a2.node_committed_mhz[slot] > a1.node_committed_mhz[slot]
        # Churn invalidates the name cache.
        cluster._destroy(vm_name)
        a3 = cluster.rebalance_arrays()
        assert vm_name not in a3.vm_names

    def test_run_identical_under_both_dialects(self):
        """The dialect knob changes round latency, never the result."""
        results = {}
        for dialect in ("view", "arrays"):
            scenario = ClusterScenario(
                name="mini", nodes=6, vms=260, duration=60.0, seed=3,
                degrade_rate_per_s=0.05, rebalance_every=2, dialect=dialect,
            )
            results[dialect] = scenario.run().to_dict()
        assert results["view"] == results["arrays"]
        assert results["view"]["migrations"] > 0

    def test_loop_records_snapshot_and_plan_split(self):
        cluster = small_cluster(initial_vms=260)
        loop = small_loop()
        cluster.run(loop)
        assert loop.rounds_total > 0
        assert len(loop.snapshot_durations) == loop.rounds_total
        assert len(loop.plan_durations) == loop.rounds_total
        meta = loop.ledger.rounds[0]["meta"]
        assert meta["snapshot_seconds"] >= 0.0
        assert meta["plan_seconds"] >= 0.0

    def test_invalid_dialect_rejected(self):
        with pytest.raises(ValueError, match="dialect"):
            RebalanceLoop(dialect="csv")
        with pytest.raises(ValueError, match="dialect"):
            ClusterScenario(name="bad", dialect="csv")


class TestScenarioBuilders:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterScenario(name="bad", nodes=0)
        with pytest.raises(ValueError):
            ClusterScenario(name="bad", rebalance_every=0)

    def test_builders_parameterise_the_headline_pair(self):
        full = chaos_churn(rebalance=False)
        assert (full.nodes, full.vms, full.rebalance) == (200, 10_000, False)
        small = chaos_churn_small()
        assert (small.nodes, small.vms) == (8, 300)
        xl = chaos_churn_xl(rebalance=False)
        assert (xl.nodes, xl.vms, xl.rebalance) == (1000, 50_000, False)
        cluster, loop = small.build()
        assert len(cluster.nodes) == 8
        assert loop is not None and loop.every == 2

    def test_static_build_has_no_loop(self):
        _, loop = chaos_churn_small(rebalance=False).build()
        assert loop is None
