"""check_plan_admissible: the independent Eq. 7 oracle for plans."""

import pytest

from repro.checking.invariants import check_plan_admissible
from repro.rebalance.planner import MigrationPlan, PlannedMove
from repro.rebalance.view import InFlightView
from tests.rebalance.conftest import make_view, vm


def planned(vm_name, source, target, demand=1200.0, mb=512):
    return PlannedMove(
        vm_name=vm_name, source=source, target=target, reason="pressure",
        demand_mhz=demand, memory_mb=mb, transfer_s=1.0, downtime_s=0.5,
        cost_s=1.5, relief_mhz=demand, score=demand / 1.5,
    )


def plan_with(*moves):
    return MigrationPlan(t=0.0, seed=0, moves=list(moves))


class TestOracle:
    def test_clean_plan_passes(self):
        view = make_view({"n0": [vm("a")], "n1": []})
        assert check_plan_admissible(view, plan_with(planned("a", "n0", "n1"))) == []

    def test_unknown_vm(self):
        view = make_view({"n0": [], "n1": []})
        out = check_plan_admissible(view, plan_with(planned("ghost", "n0", "n1")))
        assert any("does not exist" in v.message for v in out)

    def test_double_move(self):
        view = make_view({"n0": [vm("a")], "n1": [], "n2": []})
        out = check_plan_admissible(
            view,
            plan_with(planned("a", "n0", "n1"), planned("a", "n0", "n2")),
        )
        assert any("twice" in v.message for v in out)

    def test_vm_already_migrating(self):
        view = make_view(
            {"n0": [vm("a")], "n1": [], "n2": []},
            in_flight=[InFlightView("a", "n0", "n1", arrives_at=1.0)],
        )
        out = check_plan_admissible(view, plan_with(planned("a", "n0", "n2")))
        assert any("already migrating" in v.message for v in out)

    def test_wrong_source(self):
        view = make_view({"n0": [vm("a")], "n1": [], "n2": []})
        out = check_plan_admissible(view, plan_with(planned("a", "n2", "n1")))
        assert any("snapshot hosts it" in v.message for v in out)

    def test_pinned_node_touched(self):
        view = make_view(
            {"n0": [vm("a"), vm("x")], "n1": [], "n2": []},
            in_flight=[InFlightView("x", "n0", "n1", arrives_at=1.0)],
        )
        out = check_plan_admissible(view, plan_with(planned("a", "n0", "n2")))
        assert any("pinned" in v.message for v in out)

    def test_target_missing_or_off(self):
        view = make_view({"n0": [vm("a")], "n1": []}, powered_off=["n1"])
        out = check_plan_admissible(view, plan_with(planned("a", "n0", "n1")))
        assert any("powered off" in v.message for v in out)
        out = check_plan_admissible(view, plan_with(planned("a", "n0", "nX")))
        assert any("missing" in v.message for v in out)

    def test_vfreq_above_target_fmax(self):
        view = make_view({"n0": [vm("a", 1, 3000.0)], "n1": []}, fmax_mhz=2400.0)
        out = check_plan_admissible(
            view, plan_with(planned("a", "n0", "n1", demand=3000.0))
        )
        assert any("Eq. 2" in v.message for v in out)

    def test_cumulative_overcommit_caught(self):
        # each move alone fits; both together over-commit n1 by 1200 MHz
        view = make_view(
            {"n0": [vm("a", 4, 1800.0), vm("b", 4, 1800.0)],
             "n1": [vm("c", 4, 1800.0)]},
            capacity_mhz=12000.0,
        )
        out = check_plan_admissible(
            view,
            plan_with(
                planned("a", "n0", "n1", demand=7200.0),
                planned("b", "n0", "n1", demand=7200.0),
            ),
        )
        assert any("over-commits n1" in v.message for v in out)

    def test_memory_overcommit_caught(self):
        view = make_view(
            {"n0": [vm("a", 1, 100.0, 20000)], "n1": [vm("b", 1, 100.0, 20000)]},
            memory_mb=32768, capacity_mhz=96000.0,
        )
        out = check_plan_admissible(
            view, plan_with(planned("a", "n0", "n1", demand=100.0, mb=20000))
        )
        assert any("memory" in v.message for v in out)

    def test_allocation_ratio_scales_the_limit(self):
        view = make_view(
            {"n0": [vm("a", 4, 1800.0)], "n1": [vm("b", 4, 1800.0)]},
            capacity_mhz=9600.0,
        )
        move = planned("a", "n0", "n1", demand=7200.0)
        assert check_plan_admissible(view, plan_with(move))  # 14400 > 9600
        assert check_plan_admissible(
            view, plan_with(move), allocation_ratio=1.5
        ) == []  # 14400 <= 14400

    def test_source_relief_counted_for_receivers(self):
        # a and b swap hosts: both nodes receive, but each also sheds,
        # so the post-plan totals stay within capacity.
        view = make_view(
            {"n0": [vm("a", 4, 2400.0)], "n1": [vm("b", 4, 2400.0)]},
            capacity_mhz=9600.0,
        )
        out = check_plan_admissible(
            view,
            plan_with(
                planned("a", "n0", "n1", demand=9600.0),
                planned("b", "n1", "n0", demand=9600.0),
            ),
        )
        assert out == []
