"""SimulatedState what-if bookkeeping: admission, moves, clones."""

import pytest

from repro.rebalance.simstate import SimulatedState
from repro.rebalance.view import InFlightView
from tests.rebalance.conftest import make_view, vm


class TestConstruction:
    def test_invalid_allocation_ratio(self):
        view = make_view({"n0": []})
        with pytest.raises(ValueError):
            SimulatedState(view, allocation_ratio=0.0)

    def test_allocation_ratio_scales_capacity(self):
        view = make_view({"n0": []})
        state = SimulatedState(view, allocation_ratio=1.5)
        assert state.nodes["n0"].capacity_mhz == pytest.approx(9600.0 * 1.5)

    def test_in_flight_pins_nodes_and_vms(self):
        view = make_view(
            {"n0": [vm("a")], "n1": [], "n2": []},
            in_flight=[InFlightView("a", "n0", "n1", arrives_at=1.0)],
        )
        state = SimulatedState(view)
        assert {"n0", "n1"} <= state.pinned
        assert "a" in state.immovable


class TestCanAccept:
    def test_fits_by_frequency_and_memory(self):
        view = make_view({"n0": [vm("a")], "n1": []})
        assert SimulatedState(view).can_accept("a", "n1")

    def test_rejects_eq7_overcommit(self):
        view = make_view(
            {"n0": [vm("a", 2, 1800.0)], "n1": [vm("b", 4, 2400.0)]},
            capacity_mhz=9600.0,
        )
        # n1 committed 9600, a needs 3600 more
        assert not SimulatedState(view).can_accept("a", "n1")

    def test_rejects_memory_overcommit(self):
        view = make_view(
            {"n0": [vm("a", 1, 1200.0, 20000)], "n1": [vm("b", 1, 1200.0, 20000)]},
            memory_mb=32768,
        )
        assert not SimulatedState(view).can_accept("a", "n1")

    def test_rejects_vfreq_above_fmax(self):
        view = make_view({"n0": [vm("a", 1, 3000.0)], "n1": []}, fmax_mhz=2400.0)
        assert not SimulatedState(view).can_accept("a", "n1")

    def test_rejects_current_host_powered_off_and_pinned(self):
        view = make_view(
            {"n0": [vm("a")], "n1": [], "n2": []},
            powered_off=["n1"],
        )
        state = SimulatedState(view, pinned=["n2"])
        assert not state.can_accept("a", "n0")  # already there
        assert not state.can_accept("a", "n1")  # powered off
        assert not state.can_accept("a", "n2")  # pinned

    def test_unknown_vm_or_node(self):
        state = SimulatedState(make_view({"n0": [vm("a")], "n1": []}))
        assert not state.can_accept("ghost", "n1")
        assert not state.can_accept("a", "ghost")


class TestApplyMove:
    def test_accounting_moves_with_the_vm(self):
        view = make_view({"n0": [vm("a", 2, 1800.0, 4096)], "n1": []})
        state = SimulatedState(view)
        state.apply_move("a", "n1")
        n0, n1 = state.nodes["n0"], state.nodes["n1"]
        assert state.host_of("a") == "n1"
        assert n0.committed_mhz == pytest.approx(0.0)
        assert n0.committed_memory_mb == 0
        assert n1.committed_mhz == pytest.approx(3600.0)
        assert n1.committed_memory_mb == 4096
        assert "a" in n1.vm_names and "a" not in n0.vm_names
        assert "a" in n1.planned_in and "a" in n0.planned_out

    def test_inadmissible_move_raises(self):
        view = make_view({"n0": [vm("a", 1, 3000.0)], "n1": []}, fmax_mhz=2400.0)
        with pytest.raises(ValueError, match="does not fit"):
            SimulatedState(view).apply_move("a", "n1")

    def test_immovable_vm_raises(self):
        view = make_view(
            {"n0": [vm("a")], "n1": [], "n2": []},
            in_flight=[InFlightView("a", "n0", "n1", arrives_at=1.0)],
        )
        with pytest.raises(ValueError, match="pinned"):
            SimulatedState(view).apply_move("a", "n2")

    def test_second_hop_uses_updated_host(self):
        view = make_view({"n0": [vm("a")], "n1": [], "n2": []})
        state = SimulatedState(view)
        state.apply_move("a", "n1")
        state.apply_move("a", "n2")
        assert state.host_of("a") == "n2"
        assert state.nodes["n1"].committed_mhz == pytest.approx(0.0)


class TestMovableAndClone:
    def test_movable_sorted_largest_first(self):
        view = make_view(
            {"n0": [vm("small", 1, 1200.0), vm("big", 4, 1800.0),
                    vm("mid", 2, 1200.0)]},
            capacity_mhz=96000.0,
        )
        names = [v.name for v in SimulatedState(view).movable_vms_on("n0")]
        assert names == ["big", "mid", "small"]

    def test_movable_excludes_in_flight(self):
        view = make_view(
            {"n0": [vm("a"), vm("b")], "n1": []},
            in_flight=[InFlightView("a", "n0", "n1", arrives_at=1.0)],
        )
        names = [v.name for v in SimulatedState(view).movable_vms_on("n0")]
        assert names == ["b"]

    def test_clone_is_independent(self):
        view = make_view({"n0": [vm("a")], "n1": []})
        state = SimulatedState(view)
        trial = state.clone()
        trial.apply_move("a", "n1")
        assert state.host_of("a") == "n0"
        assert state.nodes["n1"].committed_mhz == pytest.approx(0.0)
        assert trial.host_of("a") == "n1"
