"""ClusterStateView derived signals and the ClusterSimulation builder."""

import pytest

from repro.hw.cluster import Cluster, ClusterNode
from repro.placement.evaluator import Placement
from repro.placement.request import PlacementRequest
from repro.rebalance.view import ClusterStateView, InFlightView, NodeView
from repro.sim.cluster_engine import ClusterSimulation
from repro.virt.template import VMTemplate
from repro.workloads.synthetic import ConstantWorkload
from tests.conftest import TINY
from tests.rebalance.conftest import make_view, vm


class TestNodeView:
    def test_pressure_is_eq7_deficit(self):
        node = NodeView(
            node_id="n", capacity_mhz=3600.0, fmax_mhz=2400.0,
            memory_mb=1024, committed_mhz=6000.0, committed_memory_mb=512,
        )
        assert node.pressure_mhz == pytest.approx(2400.0)
        assert node.headroom_mhz == 0.0

    def test_headroom_when_under_committed(self):
        node = NodeView(
            node_id="n", capacity_mhz=9600.0, fmax_mhz=2400.0,
            memory_mb=1024, committed_mhz=2400.0, committed_memory_mb=0,
        )
        assert node.pressure_mhz == 0.0
        assert node.headroom_mhz == pytest.approx(7200.0)
        assert node.utilisation == pytest.approx(0.25)

    def test_zero_capacity_utilisation(self):
        node = NodeView(
            node_id="n", capacity_mhz=0.0, fmax_mhz=2400.0,
            memory_mb=1024, committed_mhz=100.0, committed_memory_mb=0,
        )
        assert node.utilisation == float("inf")


class TestDerivedSignals:
    def test_pressured_nodes_sorted_worst_first(self):
        view = make_view(
            {
                "n0": [vm("a", 2, 1800.0)],  # committed 3600
                "n1": [vm("b", 4, 1800.0)],  # committed 7200
                "n2": [vm("c")],
            },
            capacities={"n0": 2400.0, "n1": 2400.0},
        )
        ids = [n.node_id for n in view.pressured_nodes()]
        assert ids == ["n1", "n0"]
        assert view.total_pressure_mhz() == pytest.approx(1200.0 + 4800.0)

    def test_pinned_and_migrating_from_in_flight(self):
        view = make_view(
            {"n0": [vm("a")], "n1": [], "n2": []},
            in_flight=[InFlightView("a", "n0", "n1", arrives_at=5.0)],
        )
        assert view.pinned_nodes() == frozenset({"n0", "n1"})
        assert view.migrating_vms() == frozenset({"a"})

    def test_fragmentation_zero_when_headroom_usable(self):
        view = make_view({"n0": [vm("a")], "n1": []})
        # both nodes keep >= 1200 MHz free: nothing stranded
        assert view.fragmentation_score() == 0.0

    def test_fragmentation_counts_slivers(self):
        # n0 keeps 600 MHz free — less than the smallest VM (1200 MHz),
        # so that headroom is stranded; n1 keeps 9600 usable.
        view = make_view(
            {"n0": [vm("a", 1, 1200.0)], "n1": []},
            capacities={"n0": 1800.0},
        )
        assert view.fragmentation_score() == pytest.approx(600.0 / 10200.0)

    def test_fragmentation_empty_cluster_is_zero(self):
        view = make_view({"n0": [], "n1": []})
        assert view.fragmentation_score() == 0.0


class TestFromClusterSim:
    T = VMTemplate("t", vcpus=1, vfreq_mhz=1200.0, memory_mb=512)

    def _sim(self):
        cluster = Cluster([ClusterNode(f"n{i}", TINY) for i in range(2)])
        sim = ClusterSimulation(cluster, dt=0.5)
        placement = Placement(cluster=cluster)
        placement.assign("n0", PlacementRequest("a", self.T))
        placement.assign("n0", PlacementRequest("b", self.T))
        sim.deploy(
            placement,
            lambda r: ConstantWorkload(r.template.vcpus, level=1.0),
        )
        return sim

    def test_snapshot_matches_hypervisor_accounting(self):
        sim = self._sim()
        view = sim.rebalance_view()
        assert set(view.nodes) == {"n0", "n1"}
        assert set(view.vms) == {"a", "b"}
        n0 = view.nodes["n0"]
        assert n0.committed_mhz == pytest.approx(2 * 1200.0)
        assert n0.committed_memory_mb == 1024
        assert n0.vm_names == ("a", "b")
        assert view.vms["a"].demand_mhz == pytest.approx(1200.0)
        assert view.nodes["n1"].committed_mhz == 0.0

    def test_in_flight_migrations_surface(self):
        sim = self._sim()
        sim.start_migration("a", "n1")
        view = sim.rebalance_view()
        assert view.migrating_vms() == frozenset({"a"})
        assert view.pinned_nodes() == frozenset({"n0", "n1"})

    def test_snapshot_is_frozen(self):
        view = self._sim().rebalance_view()
        with pytest.raises(AttributeError):
            view.t = 99.0
        with pytest.raises(AttributeError):
            view.nodes["n0"].committed_mhz = 0.0
