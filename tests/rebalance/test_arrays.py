"""ClusterStateArrays / SimulatedArrays: dialect equivalence.

The SoA dialect is only allowed to exist because it is
indistinguishable from the frozen-dataclass one: identical derived
signals, identical planner output bit for bit, and the independent
plan oracle runs unchanged on it.  These tests fuzz that equivalence
on seeded random clusters, including the 200-node shape the issue
names.
"""

import random

import pytest

from repro.checking.invariants import check_plan_admissible
from repro.rebalance.arrays import ClusterStateArrays, SimulatedArrays
from repro.rebalance.planner import MigrationPlanner, PlannerConfig
from repro.rebalance.simstate import SimulatedState
from repro.rebalance.view import (
    ClusterStateView,
    InFlightView,
    NodeView,
    VmView,
)
from tests.rebalance.conftest import make_view, vm


def random_view(
    seed: int,
    *,
    n_nodes: int = 40,
    n_vms: int = 400,
    pressure_frac: float = 0.15,
    idle_frac: float = 0.1,
    n_in_flight: int = 2,
) -> ClusterStateView:
    """Seeded random cluster with pressure, idle nodes and in-flight
    migrations — every planner goal has work to do.

    Nodes are inserted in sorted-id order (zero-padded ids), matching
    every production builder; the arrays dialect requires it for its
    slot == sorted-id invariant.
    """
    rng = random.Random(seed)
    width = len(str(n_nodes - 1))
    node_ids = [f"n{i:0{width}d}" for i in range(n_nodes)]
    fmax = 2400.0
    templates = [(1, 800.0, 512), (2, 1200.0, 1024), (4, 1800.0, 4096)]

    committed = {node_id: 0.0 for node_id in node_ids}
    committed_mb = {node_id: 0 for node_id in node_ids}
    hosted = {node_id: [] for node_id in node_ids}
    vms = {}
    # A slice of nodes stays empty so consolidation has somewhere to
    # put things and drains of empty nodes stay representable.
    idle = set(rng.sample(node_ids, max(1, int(n_nodes * idle_frac))))
    busy = [node_id for node_id in node_ids if node_id not in idle]
    for i in range(n_vms):
        name = f"vm-{i:05d}"
        vcpus, vfreq, mb = rng.choice(templates)
        node_id = rng.choice(busy)
        vms[name] = VmView(
            name=name, node_id=node_id, vcpus=vcpus,
            vfreq_mhz=vfreq, memory_mb=mb,
        )
        hosted[node_id].append(name)
        committed[node_id] += vcpus * vfreq
        committed_mb[node_id] += mb

    nodes = {}
    pressured = set(rng.sample(busy, max(1, int(n_nodes * pressure_frac))))
    for node_id in node_ids:
        # Degrade pressured nodes below their committed load (a chaos
        # event in view terms); everyone else gets generous capacity.
        if node_id in pressured and committed[node_id] > 0:
            capacity = committed[node_id] * rng.uniform(0.5, 0.9)
        else:
            capacity = 96000.0
        nodes[node_id] = NodeView(
            node_id=node_id,
            capacity_mhz=capacity,
            fmax_mhz=fmax,
            memory_mb=262144,
            committed_mhz=committed[node_id],
            committed_memory_mb=committed_mb[node_id],
            demand_mhz=committed[node_id],
            violations=rng.randrange(3),
            powered_on=rng.random() > 0.02 or bool(hosted[node_id]),
            vm_names=tuple(sorted(hosted[node_id])),
        )

    in_flight = []
    movable = [name for name, v in vms.items() if hosted[v.node_id]]
    for name in rng.sample(movable, min(n_in_flight, len(movable))):
        source = vms[name].node_id
        target = rng.choice([n for n in node_ids if n != source])
        in_flight.append(
            InFlightView(
                vm_name=name, source=source, target=target,
                arrives_at=rng.uniform(1.0, 30.0),
            )
        )
    return ClusterStateView(
        t=float(seed), nodes=nodes, vms=vms, in_flight=tuple(in_flight),
        invariant_totals=(rng.randrange(1000), rng.randrange(10)),
    )


class TestSignalEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_derived_signals_bit_identical(self, seed):
        view = random_view(seed)
        arrays = ClusterStateArrays.from_view(view)
        assert arrays.total_pressure_mhz() == view.total_pressure_mhz()
        assert arrays.fragmentation_score() == view.fragmentation_score()
        assert arrays.pinned_nodes() == view.pinned_nodes()
        assert arrays.migrating_vms() == view.migrating_vms()
        assert [n.node_id for n in arrays.pressured_nodes()] == [
            n.node_id for n in view.pressured_nodes()
        ]
        for got, want in zip(arrays.pressured_nodes(), view.pressured_nodes()):
            assert got == want
            assert got.pressure_mhz == want.pressure_mhz
            assert got.headroom_mhz == want.headroom_mhz

    @pytest.mark.parametrize("seed", [0, 3])
    def test_lazy_mappings_match_view(self, seed):
        view = random_view(seed)
        arrays = ClusterStateArrays.from_view(view)
        assert set(arrays.nodes) == set(view.nodes)
        assert set(arrays.vms) == set(view.vms)
        for node_id, node in view.nodes.items():
            assert arrays.nodes[node_id] == node
        for name, vm_view in view.vms.items():
            assert arrays.vms[name] == vm_view
        assert "nope" not in arrays.nodes
        assert arrays.vms.get("nope") is None

    def test_to_view_round_trip(self):
        view = random_view(1)
        assert ClusterStateArrays.from_view(view).to_view() == view

    def test_empty_cluster(self):
        view = make_view({"n0": [], "n1": []})
        arrays = ClusterStateArrays.from_view(view)
        assert arrays.fragmentation_score() == 0.0
        assert arrays.total_pressure_mhz() == 0.0
        assert arrays.pressured_nodes() == []

    def test_unsorted_slots_rejected(self):
        import numpy as np

        with pytest.raises(ValueError, match="sorted"):
            ClusterStateArrays(
                t=0.0,
                node_ids=["n1", "n0"],
                node_capacity_mhz=np.ones(2),
                node_fmax_mhz=np.ones(2),
                node_memory_mb=np.ones(2),
                node_committed_mhz=np.zeros(2),
                node_committed_memory_mb=np.zeros(2),
            )


class TestSimulatedArraysContract:
    def test_matches_simulated_state_queries(self):
        view = random_view(2)
        scalar = SimulatedState(view, allocation_ratio=1.2)
        soa = SimulatedArrays(
            ClusterStateArrays.from_view(view), allocation_ratio=1.2
        )
        assert soa.pinned == scalar.pinned
        assert soa.immovable == scalar.immovable
        for node_id in view.nodes:
            assert soa.nodes[node_id].pressure_mhz == (
                scalar.nodes[node_id].pressure_mhz
            )
            assert soa.nodes[node_id].headroom_mhz == (
                scalar.nodes[node_id].headroom_mhz
            )
            assert soa.nodes[node_id].utilisation == (
                scalar.nodes[node_id].utilisation
            )
            assert soa.nodes[node_id].num_vms == scalar.nodes[node_id].num_vms
            assert soa.movable_vms_on(node_id) == scalar.movable_vms_on(node_id)
        for name in view.vms:
            assert soa.host_of(name) == scalar.host_of(name)
            for node_id in view.nodes:
                assert soa.can_accept(name, node_id) == (
                    scalar.can_accept(name, node_id)
                ), (name, node_id)
                if soa.can_accept(name, node_id):
                    assert soa.fit_after_mhz(name, node_id) == (
                        scalar.fit_after_mhz(name, node_id)
                    )

    def test_apply_move_and_clone_isolation(self):
        view = make_view({"n0": [vm("a", 2, 1800.0)], "n1": [], "n2": []})
        soa = SimulatedArrays(ClusterStateArrays.from_view(view))
        trial = soa.clone()
        trial.apply_move("a", "n1")
        assert trial.host_of("a") == "n1"
        assert soa.host_of("a") == "n0"
        assert soa.nodes["n1"].num_vms == 0
        soa.apply_move("a", "n2")
        assert soa.nodes["n2"].committed_mhz == 3600.0
        assert soa.nodes["n0"].committed_mhz == 0.0
        with pytest.raises(ValueError):
            soa.apply_move("a", "n2")  # already there

    def test_apply_move_rejects_immovable(self):
        view = make_view(
            {"n0": [vm("a")], "n1": [], "n2": []},
            in_flight=[InFlightView("a", "n0", "n1", arrives_at=5.0)],
        )
        soa = SimulatedArrays(ClusterStateArrays.from_view(view))
        with pytest.raises(ValueError, match="in-flight"):
            soa.apply_move("a", "n2")


class TestPlannerIdentity:
    """The headline guarantee: scalar and vectorized plans are equal."""

    @staticmethod
    def assert_plans_identical(view, *, drain=(), seed=0, config=None):
        planner = MigrationPlanner(config=config)
        arrays = ClusterStateArrays.from_view(view)
        scalar_plan = planner.plan(view, drain=drain, seed=seed)
        soa_plan = planner.plan(arrays, drain=drain, seed=seed)
        assert soa_plan.moves == scalar_plan.moves
        assert soa_plan.skipped == scalar_plan.skipped
        assert soa_plan.considered == scalar_plan.considered
        assert soa_plan.pressure_before_mhz == scalar_plan.pressure_before_mhz
        assert soa_plan.pressure_after_mhz == scalar_plan.pressure_after_mhz
        assert soa_plan.fragmentation_before == scalar_plan.fragmentation_before
        # And the independent oracle accepts the SoA dialect unchanged.
        assert not check_plan_admissible(
            arrays, soa_plan,
            allocation_ratio=planner.config.allocation_ratio,
        )
        return soa_plan

    @pytest.mark.parametrize("seed", range(12))
    def test_fuzzed_plans_bit_identical(self, seed):
        view = random_view(seed, n_nodes=30, n_vms=300)
        drain = sorted(random.Random(seed ^ 0xD5A1).sample(
            sorted(view.nodes), 2
        ))
        self.assert_plans_identical(
            view, drain=drain, seed=seed,
            config=PlannerConfig(max_moves_per_round=16),
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_fuzzed_200_node_cluster(self, seed):
        view = random_view(
            seed + 100, n_nodes=200, n_vms=2000, pressure_frac=0.1
        )
        plan = self.assert_plans_identical(
            view, seed=seed, config=PlannerConfig(max_moves_per_round=16)
        )
        assert plan.moves, "fuzz shape should always produce moves"

    def test_allocation_ratio_respected(self):
        view = random_view(5)
        self.assert_plans_identical(
            view, seed=5,
            config=PlannerConfig(
                max_moves_per_round=12, allocation_ratio=1.3
            ),
        )

    def test_consolidation_identical(self):
        # Low-utilisation nodes trigger the consolidate goal's trial
        # clone machinery on both dialects.
        view = make_view(
            {
                "n0": [vm("a", 1, 900.0)],
                "n1": [vm("b", 1, 900.0), vm("c", 1, 600.0)],
                "n2": [vm("d", 4, 1800.0), vm("e", 4, 1800.0)],
                "n3": [],
            },
            capacity_mhz=19200.0,
        )
        plan = self.assert_plans_identical(view, seed=3)
        assert "consolidate" in plan.moves_by_reason()
