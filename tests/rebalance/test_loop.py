"""RebalanceLoop: cadence, execution, oracle defence, drain, observability."""

from types import SimpleNamespace

import pytest

from repro.obs.tracing import RingSink, Tracer
from repro.rebalance.loop import RebalanceLoop
from repro.rebalance.planner import (
    MigrationPlan,
    MigrationPlanner,
    PlannedMove,
    PlannerConfig,
)
from tests.rebalance.conftest import make_view, vm


class FakeCluster:
    """Static-view driver implementing the two-method loop port."""

    def __init__(self, view, fail_for=()):
        self.view = view
        self.fail_for = set(fail_for)
        self.started = []

    def rebalance_view(self):
        return self.view

    def start_migration(self, vm_name, target_id):
        if vm_name in self.fail_for:
            raise ValueError(f"{vm_name} vanished between snapshot and exec")
        self.started.append((vm_name, target_id))
        return SimpleNamespace(duration_s=2.0)


def pressured_cluster(**kwargs):
    return FakeCluster(
        make_view(
            {
                "n0": [vm("a", 2, 1800.0), vm("b")],
                "n1": [],
                "n2": [],
            },
            capacities={"n0": 2400.0},
        ),
        **kwargs,
    )


class BadPlanner(MigrationPlanner):
    """Emits a move for a VM the snapshot does not host — a planner bug
    the oracle must catch."""

    def plan(self, view, *, drain=(), seed=0):
        plan = MigrationPlan(t=view.t, seed=seed)
        plan.moves.append(PlannedMove(
            vm_name="ghost", source="n0", target="n1", reason="pressure",
            demand_mhz=1200.0, memory_mb=512, transfer_s=1.0,
            downtime_s=0.5, cost_s=1.5, relief_mhz=1200.0, score=800.0,
        ))
        return plan


class TestCadence:
    def test_every_must_be_positive(self):
        with pytest.raises(ValueError):
            RebalanceLoop(every=0)

    def test_runs_only_on_period_ticks(self):
        loop = RebalanceLoop(every=3)
        cluster = pressured_cluster()
        results = [
            loop.maybe_rebalance(cluster, tick) for tick in range(1, 7)
        ]
        ran = [r is not None for r in results]
        assert ran == [False, False, True, False, False, True]
        assert loop.rounds_total == 2

    def test_round_seed_advances_per_round(self):
        loop = RebalanceLoop(every=1, seed=100)
        cluster = pressured_cluster()
        p0 = loop.rebalance_once(cluster)
        p1 = loop.rebalance_once(cluster)
        assert p0.seed == 100
        assert p1.seed == 101


class TestExecution:
    def test_plan_is_executed_and_counted(self):
        loop = RebalanceLoop(every=1)
        cluster = pressured_cluster()
        plan = loop.rebalance_once(cluster)
        assert plan.moves
        assert len(cluster.started) == len(plan.moves)
        assert loop.migrations_total.get("pressure", 0) >= 1
        assert loop.migration_hist.count == len(cluster.started)
        assert loop.round_hist.count == 1
        assert len(loop.round_durations) == 1

    def test_stale_move_rejected_individually(self):
        loop = RebalanceLoop(every=1)
        cluster = pressured_cluster(fail_for={"a"})
        loop.rebalance_once(cluster)
        assert loop.migrations_rejected == 1
        records = loop.ledger.rounds[0]["moves"]
        by_vm = {r["vm"]: r for r in records}
        assert by_vm["a"]["executed"] is False
        assert "vanished" in by_vm["a"]["reject_reason"]

    def test_oracle_drops_inadmissible_plan_wholesale(self):
        loop = RebalanceLoop(BadPlanner(), every=1)
        cluster = pressured_cluster()
        plan = loop.rebalance_once(cluster)
        assert cluster.started == []  # nothing reached the cluster
        assert plan.moves == []
        assert plan.skipped.get("plan_rejected_by_oracle", 0) == 1
        record = loop.ledger.rounds[0]["moves"][0]
        assert record["executed"] is False
        assert "does not exist" in record["reject_reason"]


class TestLedgerAndSpans:
    def test_round_meta_recorded(self):
        loop = RebalanceLoop(every=4, seed=9)
        plan = loop.rebalance_once(pressured_cluster())
        meta = loop.ledger.rounds[0]["meta"]
        assert meta["round"] == 0
        assert meta["seed"] == 9
        assert meta["every"] == 4
        assert meta["n_moves"] == len(loop.ledger.rounds[0]["moves"])
        assert meta["pressure_before_mhz"] == plan.pressure_before_mhz
        assert "round_seconds" in meta

    def test_spans_emitted_with_rebalance_prefix(self):
        sink = RingSink()
        loop = RebalanceLoop(every=1, tracer=Tracer([sink]))
        loop.rebalance_once(pressured_cluster())
        names = {s.name for s in sink.spans}
        assert "rebalance:round" in names
        assert "rebalance:migration" in names


class TestDrainWorkflow:
    def test_drain_flag_produces_drain_moves(self):
        loop = RebalanceLoop(
            MigrationPlanner(config=PlannerConfig(max_moves_per_round=16)),
            every=1,
        )
        cluster = FakeCluster(
            make_view({"n0": [vm("a"), vm("b")], "n1": [vm("c")], "n2": []})
        )
        loop.request_drain("n0")
        plan = loop.rebalance_once(cluster)
        assert {m.vm_name for m in plan.moves if m.reason == "drain"} == {"a", "b"}
        # n0 still shows VMs in the (static) snapshot: not yet drained
        assert loop.drained_nodes() == []

    def test_drained_nodes_reports_empty_flagged_nodes(self):
        loop = RebalanceLoop(every=1)
        cluster = FakeCluster(make_view({"n0": [], "n1": [vm("c")]}))
        loop.request_drain("n0")
        loop.rebalance_once(cluster)
        assert loop.drained_nodes() == ["n0"]
        loop.cancel_drain("n0")
        assert loop.drained_nodes() == []

    def test_drain_flag_for_unknown_node_ignored(self):
        loop = RebalanceLoop(every=1)
        loop.request_drain("ghost")
        plan = loop.rebalance_once(FakeCluster(make_view({"n0": []})))
        assert plan.moves == []  # no KeyError: unknown drains filtered
