"""Failure injection: VM lifecycle churn while the controller runs.

A production controller faces VMs appearing, disappearing and dying at
arbitrary points of its loop; none of that may crash an iteration or
corrupt the survivors' guarantees.
"""

import pytest

from repro.core.units import guaranteed_cycles
from repro.sim.engine import Simulation
from repro.virt.template import VMTemplate
from repro.workloads.base import attach
from repro.workloads.synthetic import ConstantWorkload
from tests.conftest import make_host

T = VMTemplate("churny", vcpus=1, vfreq_mhz=1200.0)


class TestTeardownRaces:
    def test_dead_thread_skipped_not_crashed(self):
        node, hv, ctrl = make_host()
        vm = hv.provision(T, "vm")
        ctrl.register_vm("vm", T.vfreq_mhz)
        node.procfs.kill(vm.vcpus[0].tid)  # thread exits mid-iteration
        report = ctrl.tick(1.0)  # must not raise
        assert report.samples == []

    def test_vm_destroyed_between_iterations(self):
        node, hv, ctrl = make_host()
        a = hv.provision(T, "a")
        b = hv.provision(T, "b")
        for vm in (a, b):
            ctrl.register_vm(vm.name, T.vfreq_mhz)
            attach(vm, ConstantWorkload(1))
        sim = Simulation(node, hv, controller=ctrl, dt=0.5)
        sim.run(5.0)
        hv.destroy("b")
        ctrl.unregister_vm("b")
        sim.run(5.0)
        report = ctrl.reports[-1]
        assert set(s.vm_name for s in report.samples) == {"a"}

    def test_survivor_keeps_guarantee_through_churn(self):
        node, hv, ctrl = make_host()
        keeper = hv.provision(T, "keeper")
        ctrl.register_vm("keeper", T.vfreq_mhz)
        attach(keeper, ConstantWorkload(1))
        sim = Simulation(node, hv, controller=ctrl, dt=0.5)
        for k in range(4):
            vm = hv.provision(T, f"churn-{k}")
            ctrl.register_vm(vm.name, T.vfreq_mhz)
            attach(vm, ConstantWorkload(1))
            sim.run(4.0)
            hv.destroy(vm.name)
            ctrl.unregister_vm(vm.name)
        sim.run(4.0)
        alloc = ctrl.reports[-1].allocations["/machine.slice/keeper/vcpu0"]
        assert alloc >= guaranteed_cycles(1.0, T.vfreq_mhz, 2400.0) * 0.9

    def test_late_provision_picks_up_mid_run(self):
        node, hv, ctrl = make_host()
        first = hv.provision(T, "first")
        ctrl.register_vm("first", T.vfreq_mhz)
        attach(first, ConstantWorkload(1))
        sim = Simulation(node, hv, controller=ctrl, dt=0.5)
        sim.run(5.0)
        late = hv.provision(T, "late")
        ctrl.register_vm("late", T.vfreq_mhz)
        attach(late, ConstantWorkload(1))
        sim.run(10.0)
        report = ctrl.reports[-1]
        assert "/machine.slice/late/vcpu0" in report.allocations
        assert report.allocations["/machine.slice/late/vcpu0"] >= (
            guaranteed_cycles(1.0, T.vfreq_mhz, 2400.0) * 0.9
        )

    def test_empty_host_iterations_are_noops(self):
        node, hv, ctrl = make_host()
        for t in range(5):
            report = ctrl.tick(float(t))
            assert report.samples == []
            assert report.allocations == {}
