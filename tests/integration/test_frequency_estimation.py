"""Validating the paper's frequency-estimation shortcut (§III-B1).

The controller reads each vCPU thread's location only once per
iteration and multiplies its CPU share by that single core's frequency.
The paper argues this cheap estimate is accurate because (a) busy
threads rarely migrate and (b) loaded cores all run at about the same
speed.  Here the simulator provides ground truth (per-subtick share x
actual core frequency), so the claim is testable.
"""

import numpy as np
import pytest

from repro.sim.scenario import eval1_chetemi


@pytest.fixture(scope="module")
def result():
    sc = eval1_chetemi(duration=400.0, time_scale=0.15, dt=0.5)
    return sc.run(controlled=True)


class TestEstimateVsGroundTruth:
    def _aligned(self, result, label):
        est = result.group_freq_series(label, estimated=True)
        act = result.group_freq_series(label, estimated=False)
        # align on common 1 s buckets
        est_map = dict(zip(est.times.astype(int), est.values))
        act_map = dict(zip(act.times.astype(int), act.values))
        common = sorted(set(est_map) & set(act_map))
        e = np.asarray([est_map[t] for t in common])
        a = np.asarray([act_map[t] for t in common])
        return e, a

    @pytest.mark.parametrize("label", ["small", "large"])
    def test_estimate_tracks_ground_truth(self, result, label):
        e, a = self._aligned(result, label)
        busy = a > 200.0  # compare where the class is actually running
        assert busy.sum() > 10
        rel_err = np.abs(e[busy] - a[busy]) / a[busy]
        # the paper's claim: the one-read-per-iteration estimate is a
        # faithful monitor — median error within a few percent
        assert np.median(rel_err) < 0.05
        assert np.mean(rel_err) < 0.15

    def test_estimate_correlates_over_time(self, result):
        e, a = self._aligned(result, "large")
        if e.std() > 0 and a.std() > 0:
            corr = np.corrcoef(e, a)[0, 1]
            assert corr > 0.95
