"""Integration: the first evaluation (Tables II/III, Figs. 6-9) at a
compressed timeline.

``time_scale=0.15`` keeps every shape (large instances start after the
small ones, dips, plateaus) while a full A+B run stays under ~10 s.
Scaled timeline: large instances start at t = 30 s, run ends at 90 s.
"""

import pytest

from repro.sim.scenario import eval1_chetemi, eval1_chiclet

SCALE = 0.15
LARGE_START = 200.0 * SCALE  # 30 s
END = 600.0 * SCALE  # 90 s


@pytest.fixture(scope="module")
def chetemi_results():
    sc = eval1_chetemi(duration=600.0, time_scale=SCALE, dt=0.5)
    return sc.run(controlled=False), sc.run(controlled=True)


class TestConfigurationA(object):
    def test_small_run_fast_before_large_start(self, chetemi_results):
        res_a, _ = chetemi_results
        # alone on the node, small instances run near the core frequency
        assert res_a.plateau_mhz("small", LARGE_START * 0.5, LARGE_START) > 1800.0

    def test_small_beat_large_under_contention(self, chetemi_results):
        """Fig. 6's surprise: per-VM fair sharing gives the 20 small VMs
        ~2x the per-vCPU speed of the 10 large VMs."""
        res_a, _ = chetemi_results
        small = res_a.plateau_mhz("small", LARGE_START * 1.5, END)
        large = res_a.plateau_mhz("large", LARGE_START * 1.5, END)
        assert small > large * 1.5

    def test_large_well_below_their_wish(self, chetemi_results):
        res_a, _ = chetemi_results
        large = res_a.plateau_mhz("large", LARGE_START * 1.5, END)
        assert large < 1200.0  # nowhere near 1800


class TestConfigurationB(object):
    def test_small_settle_near_500(self, chetemi_results):
        _, res_b = chetemi_results
        small = res_b.plateau_mhz("small", LARGE_START * 1.5, END)
        assert small == pytest.approx(500.0, rel=0.25)

    def test_large_settle_near_1800(self, chetemi_results):
        _, res_b = chetemi_results
        large = res_b.plateau_mhz("large", LARGE_START * 1.5, END)
        assert large == pytest.approx(1800.0, rel=0.20)

    def test_priority_inverted_vs_config_a(self, chetemi_results):
        res_a, res_b = chetemi_results
        a_small = res_a.plateau_mhz("small", LARGE_START * 1.5, END)
        b_small = res_b.plateau_mhz("small", LARGE_START * 1.5, END)
        a_large = res_a.plateau_mhz("large", LARGE_START * 1.5, END)
        b_large = res_b.plateau_mhz("large", LARGE_START * 1.5, END)
        assert b_small < a_small  # controller takes from small...
        assert b_large > a_large  # ...and gives to large

    def test_small_burst_before_large_start(self, chetemi_results):
        """No capping is needed while the node is underprovisioned — the
        controller must NOT cap small instances at 500 MHz early on."""
        _, res_b = chetemi_results
        early = res_b.plateau_mhz("small", LARGE_START * 0.5, LARGE_START)
        assert early > 1500.0

    def test_core_frequency_variance_small(self, chetemi_results):
        """Paper: 16 MHz (A) / 37 MHz (B) average variance on chetemi —
        we only require the same order of magnitude."""
        res_a, res_b = chetemi_results
        assert res_a.mean_core_freq_std_mhz < 150.0
        assert res_b.mean_core_freq_std_mhz < 150.0


class TestChiclet(object):
    def test_config_b_plateaus_on_the_amd_node(self):
        """Fig. 9: same guarantees hold on completely different hardware."""
        sc = eval1_chiclet(duration=600.0, time_scale=SCALE, dt=0.5)
        res_b = sc.run(controlled=True)
        small = res_b.plateau_mhz("small", LARGE_START * 1.5, END)
        large = res_b.plateau_mhz("large", LARGE_START * 1.5, END)
        assert small == pytest.approx(500.0, rel=0.25)
        assert large == pytest.approx(1800.0, rel=0.20)
