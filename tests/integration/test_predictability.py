"""Fig. 10/11/14's qualitative claims about benchmark scores.

At ``time_scale=0.15`` the large instances start at t = 30 s and finish
their 15 iterations in ~100 s, so the *contended* small iterations are
roughly indices 3-5; afterwards the small instances reclaim the node and
speed back up (the same happens in the paper's protocol — the large
compress run is much shorter than the capped small one).
"""

import numpy as np
import pytest

from repro.sim.scenario import eval1_chetemi

SCALE = 0.15
CONTENDED = slice(3, 6)  # small-instance iterations overlapping the large run


@pytest.fixture(scope="module")
def results():
    sc = eval1_chetemi(
        duration=3500.0, time_scale=SCALE, dt=0.5, run_to_completion=True
    )
    return sc.run(controlled=False), sc.run(controlled=True)


class TestScoreShapes:
    def test_small_instances_complete_15_iterations(self, results):
        res_a, res_b = results
        assert len(res_a.scores_by_group["small"]) == 15
        assert len(res_b.scores_by_group["small"]) == 15

    def test_uncontended_iterations_similar_in_a_and_b(self, results):
        """Before the large instances start no capping is needed, so A and
        B agree (paper: 'when no capping is needed ... scenarios A and B
        have similar results').  Iteration 0 is excluded: it overlaps the
        controller's cold-start capping warm-up."""
        res_a, res_b = results
        a = res_a.scores_by_group["small"][1:3]
        b = res_b.scores_by_group["small"][1:3]
        assert np.allclose(a, b, rtol=0.20)

    def test_small_lose_their_bonus_under_b(self, results):
        """Under contention the controller caps small instances to their
        guarantee, well below what CFS unfairly gave them in A."""
        res_a, res_b = results
        a = res_a.scores_by_group["small"][CONTENDED]
        b = res_b.scores_by_group["small"][CONTENDED]
        assert b.mean() < a.mean() * 0.7

    def test_b_small_scores_track_guarantee(self, results):
        """Contended small iterations run at ~2 vCPUs x 500 MHz -> the
        score (work per wall second) approaches 1000 MHz-equivalents."""
        _, res_b = results
        b = res_b.scores_by_group["small"][CONTENDED]
        assert b.mean() == pytest.approx(1000.0, rel=0.40)

    def test_large_gain_under_b(self, results):
        """Large instances are contended for their whole run; B must beat
        A decisively (Fig. 10's lower pane flipped)."""
        res_a, res_b = results
        a = res_a.scores_by_group["large"]
        b = res_b.scores_by_group["large"]
        assert b[3:].mean() > a[3:].mean() * 1.4

    def test_b_large_iterations_never_fall_below_guarantee_rate(self, results):
        """Predictability: every steady-state large iteration in B runs at
        >= ~70 % of the guaranteed 4 x 1800 MHz work rate, while A's mean
        sits far below it."""
        res_a, res_b = results
        guarantee_rate = 4 * 1800.0
        b = res_b.scores_by_group["large"][3:]
        a = res_a.scores_by_group["large"][3:]
        assert np.all(b >= 0.7 * guarantee_rate)
        assert a.mean() < 0.65 * guarantee_rate

    def test_small_recover_after_large_finish(self, results):
        """Tail iterations run uncontended again — the controller must
        give the freed cycles back (anti-waste goal)."""
        _, res_b = results
        b = res_b.scores_by_group["small"]
        assert b[10:].mean() > b[CONTENDED].mean() * 2.0
