"""Smoke tests: the shipped examples must run and print their story.

Only the fast examples run here (the heavier ones are exercised by the
benches that share their code paths).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: float = 180.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "gold VMs" in out
        assert "bronze VMs" in out
        assert "Eq. 7" in out

    def test_cluster_placement(self):
        out = run_example("cluster_placement.py")
        assert "core splitting, Eq. 7 (paper)" in out
        assert "guarantee holds" in out

    def test_datacenter(self):
        out = run_example("datacenter.py")
        assert "powered off" in out
        assert "progress preserved" in out

    def test_dynamic_qos(self):
        out = run_example("dynamic_qos.py")
        assert "after downgrade" in out
        assert "snapshot size" in out
