"""The paper claims the controller works on both cgroup v1 and v2
("the version is not important as our controller works on both", §III-B).
Run the same contended scenario under both hierarchies and require the
same steady state.
"""

import pytest

from repro.cgroups.fs import CgroupVersion
from repro.sim.engine import Simulation
from repro.virt.template import VMTemplate
from repro.workloads.base import attach
from repro.workloads.synthetic import ConstantWorkload
from tests.conftest import make_host

FAST = VMTemplate("fast", vcpus=1, vfreq_mhz=1800.0)
SLOW = VMTemplate("slow", vcpus=1, vfreq_mhz=400.0)


def run(version):
    node, hv, ctrl = make_host(version=version)
    for k in range(4):
        vm = hv.provision(SLOW, f"slow-{k}")
        ctrl.register_vm(vm.name, SLOW.vfreq_mhz)
        attach(vm, ConstantWorkload(1))
    for k in range(2):
        vm = hv.provision(FAST, f"fast-{k}")
        ctrl.register_vm(vm.name, FAST.vfreq_mhz)
        attach(vm, ConstantWorkload(1))
    sim = Simulation(node, hv, controller=ctrl, dt=0.5)
    sim.run(60.0)
    return ctrl.reports[-1]


class TestVersionEquivalence:
    @pytest.fixture(scope="class")
    def reports(self):
        return run(CgroupVersion.V2), run(CgroupVersion.V1)

    def test_same_allocations(self, reports):
        v2, v1 = reports
        assert set(v2.allocations) == set(v1.allocations)
        for path, cycles in v2.allocations.items():
            assert v1.allocations[path] == pytest.approx(cycles, rel=0.02), path

    def test_same_consumptions_observed(self, reports):
        v2, v1 = reports
        u2 = {s.cgroup_path: s.consumed_cycles for s in v2.samples}
        u1 = {s.cgroup_path: s.consumed_cycles for s in v1.samples}
        for path in u2:
            assert u1[path] == pytest.approx(u2[path], rel=0.02, abs=2000.0), path

    def test_same_wallets(self, reports):
        v2, v1 = reports
        for vm, balance in v2.wallets.items():
            assert v1.wallets[vm] == pytest.approx(balance, rel=0.05, abs=5000.0)


class TestFullScenarioOnV1:
    def test_eval1_plateaus_on_cgroup_v1(self):
        """The whole Table II pipeline (hypervisor tree, scheduler,
        controller, enforcement) through the v1 file formats."""
        from repro.sim.scenario import eval1_chetemi

        sc = eval1_chetemi(
            duration=420.0,
            time_scale=0.1,
            dt=0.5,
            cgroup_version=CgroupVersion.V1,
        )
        res = sc.run(controlled=True)
        small = res.plateau_mhz("small", 30.0, 42.0)
        large = res.plateau_mhz("large", 30.0, 42.0)
        assert small == pytest.approx(500.0, rel=0.3)
        assert large == pytest.approx(1800.0, rel=0.25)

    def test_scenario_with_cache_model(self):
        """cache_alpha plumbs through the scenario builder; scores drop
        but guarantees (cycle allocations) are untouched."""
        from repro.sim.scenario import eval1_chetemi

        base = eval1_chetemi(duration=300.0, time_scale=0.1, dt=0.5,
                             run_to_completion=True)
        cached = eval1_chetemi(duration=300.0, time_scale=0.1, dt=0.5,
                               run_to_completion=True)
        cached.cache_alpha = 0.3
        res_base = base.run(controlled=True)
        res_cached = cached.run(controlled=True)
        import numpy as np

        s_base = np.nanmean(res_base.scores_by_group["small"])
        s_cached = np.nanmean(res_cached.scores_by_group["small"])
        assert s_cached < s_base
        # frequencies (cycle shares) unaffected by cache pressure
        f_base = res_base.plateau_mhz("small", 25.0, 30.0)
        f_cached = res_cached.plateau_mhz("small", 25.0, 30.0)
        assert f_cached == pytest.approx(f_base, rel=0.15)
