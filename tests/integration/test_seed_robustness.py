"""Seed sensitivity: the reproduction's conclusions must not depend on
one lucky RNG stream (affinity wandering, DVFS jitter are stochastic)."""

import pytest

from repro.sim.scenario import eval1_chetemi

SCALE = 0.12
LARGE_START = 200.0 * SCALE
END = 500.0 * SCALE


@pytest.mark.parametrize("seed", [3, 1234, 987654])
def test_eval1_plateaus_across_seeds(seed):
    sc = eval1_chetemi(duration=500.0, time_scale=SCALE, dt=0.5, seed=seed)
    res = sc.run(controlled=True)
    small = res.plateau_mhz("small", LARGE_START * 1.6, END)
    large = res.plateau_mhz("large", LARGE_START * 1.6, END)
    assert small == pytest.approx(500.0, rel=0.3), seed
    assert large == pytest.approx(1800.0, rel=0.25), seed


@pytest.mark.parametrize("seed", [3, 1234])
def test_config_a_inversion_across_seeds(seed):
    sc = eval1_chetemi(duration=500.0, time_scale=SCALE, dt=0.5, seed=seed)
    res = sc.run(controlled=False)
    small = res.plateau_mhz("small", LARGE_START * 1.6, END)
    large = res.plateau_mhz("large", LARGE_START * 1.6, END)
    assert small > large * 1.5, seed
