"""Tests for repro.integration."""
