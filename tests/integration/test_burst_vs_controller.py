"""The §II comparison: burst VMs vs the virtual frequency controller.

Reproduces the three Burst-VM limitations the paper lists and shows the
controller avoids each of them on the same host and workload.
"""

import pytest

from repro.sim.engine import Simulation
from repro.virt.burst import BurstPolicy, BurstVMController
from repro.virt.template import VMTemplate
from repro.workloads.base import attach
from repro.workloads.synthetic import ConstantWorkload
from tests.conftest import make_host

VM = VMTemplate("burstable", vcpus=1, vfreq_mhz=1200.0)


def run_with_burst(seconds=120.0, initial_credits=5.0):
    node, hv, _ = make_host()
    vm = hv.provision(VM, "b0")
    attach(vm, ConstantWorkload(1))
    burst = BurstVMController(
        node.fs, BurstPolicy(initial_credits=initial_credits)
    )
    burst.watch(vm)
    sim = Simulation(node, hv, dt=0.5)
    # drive the burst controller at 1 Hz, like the paper's controller
    steps = int(seconds * 2)
    for k in range(steps):
        sim.run(0.5)
        if k % 2 == 1:
            burst.tick({"b0": vm}, dt=1.0)
    return node, vm, burst


def run_with_controller(seconds=120.0):
    node, hv, ctrl = make_host()
    vm = hv.provision(VM, "b0")
    ctrl.register_vm(vm.name, VM.vfreq_mhz)
    attach(vm, ConstantWorkload(1))
    sim = Simulation(node, hv, controller=ctrl, dt=0.5)
    sim.run(seconds)
    return node, vm, ctrl


class TestLimitation3NodeUnawareness:
    def test_burst_vm_starves_on_an_idle_node(self):
        """A heavy workload with no credits stays at the 10 % baseline even
        though the node is otherwise idle — the paper's limitation (3)."""
        node, vm, burst = run_with_burst(initial_credits=5.0)
        assert burst.credits_of("b0") == 0.0
        assert node.fs.get_quota(vm.vcpus[0].cgroup_path).ratio() == pytest.approx(0.10)

    def test_controller_bursts_the_same_vm_to_full_speed(self):
        node, vm, ctrl = run_with_controller()
        alloc = ctrl.reports[-1].allocations[vm.vcpus[0].cgroup_path]
        # guarantee is 0.5 core (1200/2400); on an idle node the controller
        # hands out nearly the whole core
        assert alloc > 0.9 * 1e6


class TestLimitation1FixedBaseline:
    def test_burst_baseline_is_template_fixed_not_customer_chosen(self):
        """The burst baseline ignores the VM's declared 1200 MHz need."""
        node, vm, burst = run_with_burst(initial_credits=0.0)
        ratio = node.fs.get_quota(vm.vcpus[0].cgroup_path).ratio()
        wanted_ratio = VM.vfreq_mhz / node.spec.fmax_mhz  # 0.5
        assert ratio == pytest.approx(0.10)
        assert ratio < wanted_ratio / 2

    def test_controller_honours_the_customer_frequency(self):
        node, vm, ctrl = run_with_controller()
        alloc = ctrl.reports[-1].allocations[vm.vcpus[0].cgroup_path]
        assert alloc >= (VM.vfreq_mhz / node.spec.fmax_mhz) * 1e6 * 0.95


class TestLimitation2UncappedBurst:
    def test_bursting_vm_has_no_cap_at_all(self):
        node, vm, burst = run_with_burst(seconds=2.0, initial_credits=600.0)
        assert burst.is_bursting("b0")
        assert node.fs.get_quota(vm.vcpus[0].cgroup_path).unlimited

    def test_controller_burst_is_always_a_finite_cap(self):
        node, vm, ctrl = run_with_controller()
        assert not node.fs.get_quota(vm.vcpus[0].cgroup_path).unlimited
