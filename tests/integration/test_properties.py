"""Whole-loop property tests: invariants of one controller iteration
under arbitrary demand patterns (hypothesis-driven).

Scenarios are drawn from the shared :mod:`tests.strategies` composites:
heterogeneous per-VM demand levels *and* guarantees (not one value
stamped across the fleet), always Eq. 7-admissible, and run under both
controller engines.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.config import ControllerConfig
from repro.core.units import cycles_per_period, guaranteed_cycles
from repro.sim.engine import Simulation
from repro.virt.template import VMTemplate
from repro.workloads.base import attach
from repro.workloads.synthetic import ConstantWorkload
from tests.conftest import TINY, make_host
from tests.strategies import engines, vm_fleets


def run_host(fleet, seconds=20.0, engine="vectorized", **config_overrides):
    """fleet is a list of (level, vfreq) pairs, one single-vCPU VM each."""
    config = ControllerConfig.paper_evaluation(
        engine=engine, **config_overrides
    )
    node, hv, ctrl = make_host(config=config)
    for k, (level, vfreq) in enumerate(fleet):
        template = VMTemplate(f"t{k}", vcpus=1, vfreq_mhz=vfreq)
        vm = hv.provision(template, f"vm-{k}")
        ctrl.register_vm(vm.name, vfreq)
        attach(vm, ConstantWorkload(1, level=level))
    sim = Simulation(node, hv, controller=ctrl, dt=0.5)
    sim.run(seconds)
    return node, ctrl


class TestControllerInvariants:
    @given(fleet=vm_fleets(), engine=engines)
    @settings(max_examples=12, deadline=None)
    def test_total_allocation_never_exceeds_budget(self, fleet, engine):
        node, ctrl = run_host(fleet, seconds=10.0, engine=engine)
        budget = cycles_per_period(1.0, TINY.logical_cpus)
        for report in ctrl.reports:
            assert sum(report.allocations.values()) <= budget + 1e-6

    @given(fleet=vm_fleets(), engine=engines)
    @settings(max_examples=12, deadline=None)
    def test_wallets_never_negative(self, fleet, engine):
        _, ctrl = run_host(fleet, seconds=10.0, engine=engine)
        for report in ctrl.reports:
            for balance in report.wallets.values():
                assert balance >= -1e-9

    @given(fleet=vm_fleets(), engine=engines)
    @settings(max_examples=12, deadline=None)
    def test_allocations_bounded_by_one_core(self, fleet, engine):
        _, ctrl = run_host(fleet, seconds=10.0, engine=engine)
        for report in ctrl.reports:
            for cycles in report.allocations.values():
                assert 0.0 <= cycles <= 1e6 + 1e-6

    @given(fleet=vm_fleets(), engine=engines)
    @settings(max_examples=8, deadline=None)
    def test_inline_oracles_hold(self, fleet, engine):
        """The full repro.checking catalogue, armed inline via
        ``check_invariants=True``, stays silent on any admissible
        fleet — a violation raises InvariantViolationError out of
        ``Simulation.run``."""
        _, ctrl = run_host(
            fleet, seconds=10.0, engine=engine, check_invariants=True
        )
        assert ctrl.invariant_checker is not None
        assert ctrl.invariant_checker.violations_total == 0
        assert ctrl.invariant_checker.checks_total == len(ctrl.reports)


class TestGuaranteeUnderFullContention:
    def test_every_busy_vm_reaches_guarantee(self):
        """With everything saturated and Eq. 7 satisfied, steady-state
        allocations must cover each VM's C_i."""
        fleet = [(1.0, 2300.0)] * 4  # 9200 <= 9600
        node, ctrl = run_host(fleet, seconds=30.0)
        report = ctrl.reports[-1]
        for path, cycles in report.allocations.items():
            need = guaranteed_cycles(1.0, 2300.0, 2400.0)
            assert cycles >= need * 0.95, path

    def test_work_conservation_no_idle_cycles_under_demand(self):
        """Anti-waste: when total demand exceeds capacity, the market must
        end (almost) empty — leftover cycles would be pure waste."""
        fleet = [(1.0, 2300.0)] * 4
        _, ctrl = run_host(fleet, seconds=30.0)
        report = ctrl.reports[-1]
        budget = cycles_per_period(1.0, TINY.logical_cpus)
        allocated = sum(report.allocations.values())
        # 4 single-vCPU VMs can use at most 4 cores of the 4-core node
        assert allocated >= budget * 0.95
