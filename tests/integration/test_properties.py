"""Whole-loop property tests: invariants of one controller iteration
under arbitrary demand patterns (hypothesis-driven)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.units import cycles_per_period, guaranteed_cycles
from repro.sim.engine import Simulation
from repro.virt.template import VMTemplate
from repro.workloads.base import attach
from repro.workloads.synthetic import ConstantWorkload
from tests.conftest import TINY, make_host


def run_host(levels, vfreqs, seconds=20.0):
    """levels[i]/vfreqs[i] describe one single-vCPU VM each."""
    node, hv, ctrl = make_host()
    for k, (level, vfreq) in enumerate(zip(levels, vfreqs)):
        template = VMTemplate(f"t{k}", vcpus=1, vfreq_mhz=vfreq)
        vm = hv.provision(template, f"vm-{k}")
        ctrl.register_vm(vm.name, vfreq)
        attach(vm, ConstantWorkload(1, level=level))
    sim = Simulation(node, hv, controller=ctrl, dt=0.5)
    sim.run(seconds)
    return node, ctrl


# Keep committed MHz within TINY's capacity (9600): max 4 VMs x <=2400.
_levels = st.lists(
    st.floats(0.0, 1.0, allow_nan=False), min_size=1, max_size=4
)
_vfreq = st.floats(100.0, 2300.0, allow_nan=False)


class TestControllerInvariants:
    @given(levels=_levels, vfreq=_vfreq)
    @settings(max_examples=12, deadline=None)
    def test_total_allocation_never_exceeds_budget(self, levels, vfreq):
        vfreqs = [min(vfreq, TINY.capacity_mhz / len(levels) - 1.0)] * len(levels)
        node, ctrl = run_host(levels, vfreqs, seconds=10.0)
        budget = cycles_per_period(1.0, TINY.logical_cpus)
        for report in ctrl.reports:
            assert sum(report.allocations.values()) <= budget + 1e-6

    @given(levels=_levels, vfreq=_vfreq)
    @settings(max_examples=12, deadline=None)
    def test_wallets_never_negative(self, levels, vfreq):
        vfreqs = [min(vfreq, TINY.capacity_mhz / len(levels) - 1.0)] * len(levels)
        _, ctrl = run_host(levels, vfreqs, seconds=10.0)
        for report in ctrl.reports:
            for balance in report.wallets.values():
                assert balance >= -1e-9

    @given(levels=_levels, vfreq=_vfreq)
    @settings(max_examples=12, deadline=None)
    def test_allocations_bounded_by_one_core(self, levels, vfreq):
        vfreqs = [min(vfreq, TINY.capacity_mhz / len(levels) - 1.0)] * len(levels)
        _, ctrl = run_host(levels, vfreqs, seconds=10.0)
        for report in ctrl.reports:
            for cycles in report.allocations.values():
                assert 0.0 <= cycles <= 1e6 + 1e-6


class TestGuaranteeUnderFullContention:
    def test_every_busy_vm_reaches_guarantee(self):
        """With everything saturated and Eq. 7 satisfied, steady-state
        allocations must cover each VM's C_i."""
        levels = [1.0, 1.0, 1.0, 1.0]
        vfreqs = [2300.0, 2300.0, 2300.0, 2300.0]  # 9200 <= 9600
        node, ctrl = run_host(levels, vfreqs, seconds=30.0)
        report = ctrl.reports[-1]
        for path, cycles in report.allocations.items():
            need = guaranteed_cycles(1.0, 2300.0, 2400.0)
            assert cycles >= need * 0.95, path

    def test_work_conservation_no_idle_cycles_under_demand(self):
        """Anti-waste: when total demand exceeds capacity, the market must
        end (almost) empty — leftover cycles would be pure waste."""
        levels = [1.0, 1.0, 1.0, 1.0]
        vfreqs = [2300.0] * 4
        _, ctrl = run_host(levels, vfreqs, seconds=30.0)
        report = ctrl.reports[-1]
        budget = cycles_per_period(1.0, TINY.logical_cpus)
        allocated = sum(report.allocations.values())
        # 4 single-vCPU VMs can use at most 4 cores of the 4-core node
        assert allocated >= budget * 0.95
