"""Integration: the second evaluation (Table V, Figs. 12-13) —
three VM classes with staggered starts on chetemi, compressed timeline.

Scaled: medium (openssl) starts at t = 15 s, large at t = 30 s.
"""

import pytest

from repro.sim.scenario import eval2_chetemi

SCALE = 0.15
MEDIUM_START = 100.0 * SCALE
LARGE_START = 200.0 * SCALE
END = 600.0 * SCALE


@pytest.fixture(scope="module")
def results():
    sc = eval2_chetemi(duration=600.0, time_scale=SCALE, dt=0.5)
    return sc.run(controlled=False), sc.run(controlled=True)


class TestConfigurationB:
    def test_three_distinct_plateaus(self, results):
        """Fig. 13: 500 / 1200 / 1800 MHz plateaus while all classes are
        busy concurrently."""
        _, res_b = results
        # All three classes are concurrently busy only between the large
        # instances' convergence (~large_start + 10 s) and the medium
        # (openssl) completion (~52 s at this scale).
        t0, t1 = LARGE_START + 10.0, LARGE_START + 20.0
        small = res_b.plateau_mhz("small", t0, t1)
        medium = res_b.plateau_mhz("medium", t0, t1)
        large = res_b.plateau_mhz("large", t0, t1)
        assert small == pytest.approx(500.0, rel=0.30)
        assert medium == pytest.approx(1200.0, rel=0.25)
        assert large == pytest.approx(1800.0, rel=0.25)
        assert small < medium < large

    def test_medium_completion_frees_cycles(self, results):
        """Fig. 13 tail: when the openssl run finishes, its cycles flow to
        the remaining classes and their frequency rises."""
        _, res_b = results
        # find when medium goes idle: its estimated frequency collapses
        series = res_b.group_freq_series("medium")
        t_done = None
        for t, v in zip(series.times, series.values):
            if t > LARGE_START and v < 100.0:
                t_done = t
                break
        assert t_done is not None, "medium workload never finished in-window"
        before = res_b.plateau_mhz("small", t_done - 8.0, t_done - 1.0)
        after = res_b.plateau_mhz("small", t_done + 3.0, t_done + 15.0)
        assert after > before * 1.2


class TestConfigurationA:
    def test_small_fastest_again(self, results):
        """Fig. 12: the stock scheduler again favours the numerous small
        VMs; medium and large run at about the same speed."""
        res_a, _ = results
        t0, t1 = LARGE_START * 1.3, LARGE_START * 2.2
        small = res_a.plateau_mhz("small", t0, t1)
        medium = res_a.plateau_mhz("medium", t0, t1)
        large = res_a.plateau_mhz("large", t0, t1)
        assert small > medium * 1.4
        assert medium == pytest.approx(large, rel=0.25)
