"""End-to-end runs under non-default controller configurations.

The paper fixes p = 1 s and the standard trend; a credible release must
work across the knob space: other periods, the paper-literal Eq. 3
variant, frequency-prioritised auction, reserved guarantees.
"""

from dataclasses import replace

import pytest

from repro.core.config import ControllerConfig
from repro.core.units import guaranteed_cycles, period_us
from repro.sim.engine import Simulation
from repro.virt.template import VMTemplate
from repro.workloads.base import attach
from repro.workloads.synthetic import ConstantWorkload
from tests.conftest import make_host

T = VMTemplate("v", vcpus=1, vfreq_mhz=1500.0)


def run_contended(config, seconds=40.0, dt=0.5):
    node, hv, ctrl = make_host(config=config)
    for k in range(6):  # 6 x 1500 = 9000 <= 9600 (Eq. 7 on the tiny node)
        vm = hv.provision(T, f"v-{k}")
        ctrl.register_vm(vm.name, T.vfreq_mhz)
        attach(vm, ConstantWorkload(1))
    sim = Simulation(node, hv, controller=ctrl, dt=dt)
    sim.run(seconds)
    return ctrl


@pytest.mark.parametrize("period", [0.5, 1.0, 2.0])
def test_guarantees_hold_across_periods(period):
    cfg = replace(ControllerConfig.paper_evaluation(), period_s=period)
    ctrl = run_contended(cfg, seconds=40.0, dt=0.25)
    report = ctrl.reports[-1]
    need = guaranteed_cycles(period, T.vfreq_mhz, 2400.0)
    for path, cycles in report.allocations.items():
        assert cycles >= need * 0.95, (path, cycles, need)
        assert cycles <= period_us(period) + 1e-6


def test_literal_trend_variant_equivalent_steady_state():
    base = run_contended(ControllerConfig.paper_evaluation())
    literal = run_contended(
        replace(ControllerConfig.paper_evaluation(), literal_trend=True)
    )
    a = base.reports[-1].allocations
    b = literal.reports[-1].allocations
    for path in a:
        assert b[path] == pytest.approx(a[path], rel=0.05), path


def test_frequency_auction_variant_runs_clean():
    cfg = replace(
        ControllerConfig.paper_evaluation(), auction_priority="frequency"
    )
    ctrl = run_contended(cfg)
    report = ctrl.reports[-1]
    need = guaranteed_cycles(1.0, T.vfreq_mhz, 2400.0)
    assert all(c >= need * 0.95 for c in report.allocations.values())


def test_reserved_variant_total_still_bounded():
    cfg = replace(ControllerConfig.paper_evaluation(), reserve_guarantee=True)
    ctrl = run_contended(cfg)
    from repro.core.units import cycles_per_period

    budget = cycles_per_period(1.0, 4)
    for report in ctrl.reports:
        assert sum(report.allocations.values()) <= budget + 1e-6


@pytest.mark.parametrize("history", [2, 5, 12])
def test_history_lengths(history):
    cfg = replace(ControllerConfig.paper_evaluation(), history_len=history)
    ctrl = run_contended(cfg)
    need = guaranteed_cycles(1.0, T.vfreq_mhz, 2400.0)
    report = ctrl.reports[-1]
    assert all(c >= need * 0.95 for c in report.allocations.values())
