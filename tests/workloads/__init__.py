"""Tests for repro.workloads."""
