"""Tests for trace recording and replay."""

import numpy as np
import pytest

from repro.workloads.synthetic import SineWorkload
from repro.workloads.trace import TraceRecorder, TraceWorkload


class TestRecorder:
    def test_record_and_shapes(self):
        rec = TraceRecorder(2)
        rec.record(0.0, [0.1, 0.2])
        rec.record(1.0, [0.3, 0.4])
        assert rec.times.tolist() == [0.0, 1.0]
        assert rec.demands.shape == (2, 2)

    def test_monotonic_time_enforced(self):
        rec = TraceRecorder(1)
        rec.record(1.0, [0.5])
        with pytest.raises(ValueError):
            rec.record(1.0, [0.5])

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            TraceRecorder(2).record(0.0, [0.5])

    def test_sample_a_workload(self):
        rec = TraceRecorder(1)
        w = SineWorkload(1)
        for t in (0.0, 10.0, 20.0):
            rec.sample(w, t)
        assert len(rec.times) == 3


class TestReplay:
    def _trace(self):
        return TraceWorkload(
            1,
            times=[0.0, 10.0, 20.0],
            demands=np.array([[0.1], [0.5], [0.9]]),
        )

    def test_zero_order_hold(self):
        w = self._trace()
        assert w.demand(0, 0.0) == 0.1
        assert w.demand(0, 9.99) == 0.1
        assert w.demand(0, 10.0) == 0.5
        assert w.demand(0, 25.0) == 0.9  # holds last value

    def test_loop_mode_wraps(self):
        w = TraceWorkload(
            1,
            times=[0.0, 10.0, 20.0],
            demands=np.array([[0.1], [0.5], [0.9]]),
            loop=True,
        )
        assert w.demand(0, 21.0) == pytest.approx(0.1)
        assert w.demand(0, 31.0) == pytest.approx(0.5)

    def test_roundtrip_through_recorder(self):
        rec = TraceRecorder(1)
        src = SineWorkload(1, period=40.0)
        ts = np.arange(0.0, 40.0, 1.0)
        for t in ts:
            rec.sample(src, float(t))
        replay = rec.to_workload()
        for t in ts:
            assert replay.demand(0, float(t)) == pytest.approx(src.demand(0, float(t)))

    def test_start_time_shift(self):
        w = TraceWorkload(
            1, times=[0.0, 10.0], demands=np.array([[0.2], [0.8]]), start_time=100.0
        )
        assert w.demand(0, 50.0) == 0.0
        assert w.demand(0, 100.0) == 0.2
        assert w.demand(0, 110.0) == 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceWorkload(1, times=[], demands=np.zeros((0, 1)))
        with pytest.raises(ValueError):
            TraceWorkload(1, times=[0.0, 0.0], demands=np.zeros((2, 1)))
        with pytest.raises(ValueError):
            TraceWorkload(1, times=[0.0], demands=np.array([[1.5]]))
        with pytest.raises(ValueError):
            TraceWorkload(2, times=[0.0], demands=np.array([[0.5]]))
        with pytest.raises(IndexError):
            self._trace().demand(3, 0.0)
