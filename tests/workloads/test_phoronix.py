"""Tests for the compress-7zip and openssl workload models."""

import pytest

from repro.workloads.compress7zip import Compress7Zip
from repro.workloads.openssl_ import OpenSSLSpeed


class TestCompress7Zip:
    def test_full_demand_during_compute(self):
        w = Compress7Zip(2, dip_period=25.0, dip_duration=3.0)
        assert w.demand(0, 5.0) == 1.0

    def test_dip_window(self):
        w = Compress7Zip(2, dip_period=25.0, dip_duration=3.0, dip_level=0.15)
        assert not w.in_dip(21.9)
        assert w.in_dip(22.0)
        assert w.in_dip(24.9)
        assert w.demand(0, 23.0) == pytest.approx(0.15)
        # next cycle
        assert not w.in_dip(25.0)
        assert w.in_dip(47.5)

    def test_dips_relative_to_start_time(self):
        w = Compress7Zip(2, start_time=100.0, dip_period=25.0, dip_duration=3.0)
        assert w.demand(0, 50.0) == 0.0
        assert not w.in_dip(50.0)
        assert w.in_dip(123.0)

    def test_no_demand_when_finished(self):
        w = Compress7Zip(1, iterations=1, work_per_iteration_mhz_s=10.0)
        w.advance(0, 0.0, 1.0, 1.0, 10.0)
        assert w.finished
        assert w.demand(0, 1.0) == 0.0

    def test_fifteen_iterations_default(self):
        assert Compress7Zip(2).iterations == 15

    def test_validation(self):
        with pytest.raises(ValueError):
            Compress7Zip(2, dip_period=5.0, dip_duration=5.0)
        with pytest.raises(ValueError):
            Compress7Zip(2, dip_level=1.5)

    def test_score_reflects_throughput(self):
        """Running at half the effective frequency halves the score."""
        fast = Compress7Zip(1, iterations=1, work_per_iteration_mhz_s=100.0)
        slow = Compress7Zip(1, iterations=1, work_per_iteration_mhz_s=100.0)
        for step in range(1):
            fast.advance(0, float(step), 1.0, 1.0, 100.0)
        for step in range(2):
            slow.advance(0, float(step), 1.0, 1.0, 50.0)
        assert fast.scores[0].score == pytest.approx(2 * slow.scores[0].score)


class TestOpenSSL:
    def test_steady_demand(self):
        w = OpenSSLSpeed(4)
        for t in (0.0, 10.0, 100.0):
            assert w.demand(0, t) == 1.0

    def test_finishes_and_goes_idle(self):
        w = OpenSSLSpeed(1, iterations=2, work_per_iteration_mhz_s=10.0)
        w.advance(0, 0.0, 1.0, 2.0, 10.0)
        assert w.finished
        assert w.demand(0, 1.0) == 0.0

    def test_start_time_respected(self):
        w = OpenSSLSpeed(4, start_time=100.0)
        assert w.demand(0, 99.0) == 0.0
        assert w.demand(0, 100.0) == 1.0
