"""Tests for the latency-oriented web-server workload."""

import pytest

from repro.sim.engine import Simulation
from repro.virt.template import VMTemplate
from repro.workloads.base import attach
from repro.workloads.webserver import WebServerWorkload
from tests.conftest import make_host

WEB = VMTemplate("web", vcpus=2, vfreq_mhz=1200.0)


class TestQueueMechanics:
    def test_deterministic_arrivals(self):
        a = WebServerWorkload(1, rps=5.0, seed=7)
        b = WebServerWorkload(1, rps=5.0, seed=7)
        assert (a._arrivals == b._arrivals).all()

    def test_demand_full_when_queued_idle_otherwise(self):
        w = WebServerWorkload(1, rps=0.5, idle_level=0.05, seed=1)
        first = float(w._arrivals[0])
        assert w.demand(0, first * 0.5) == 0.05  # nothing arrived yet
        assert w.demand(0, first + 0.01) == 1.0

    def test_requests_complete_and_record_latency(self):
        w = WebServerWorkload(1, rps=1.0, work_per_request_mhz_s=100.0, seed=2)
        t = float(w._arrivals[0])
        w.demand(0, t + 0.01)
        w.advance(0, t + 0.01, 0.5, cpu_seconds=0.5, freq_mhz=2400.0)
        assert w.served >= 1
        assert all(rt >= 0 for rt in w.response_times)

    def test_partial_service_keeps_request_queued(self):
        w = WebServerWorkload(1, rps=0.1, work_per_request_mhz_s=10_000.0, seed=3)
        t = float(w._arrivals[0])
        w.advance(0, t, 0.5, cpu_seconds=0.5, freq_mhz=100.0)  # 50 of 10k
        assert w.queue_depth == 1
        assert w.served == 0

    def test_budget_spans_multiple_requests(self):
        w = WebServerWorkload(1, rps=100.0, work_per_request_mhz_s=10.0, seed=4)
        t = float(w._arrivals[10])
        w.advance(0, t, 0.5, cpu_seconds=0.5, freq_mhz=2400.0)  # 1200 MHz*s
        assert w.served >= 10

    def test_percentiles(self):
        w = WebServerWorkload(1, rps=1.0, seed=5)
        w.response_times = [0.01, 0.02, 0.10]
        assert w.percentile_ms(50) == pytest.approx(20.0)
        assert w.mean_ms() == pytest.approx(130.0 / 3.0)
        empty = WebServerWorkload(1, rps=1.0, seed=5)
        with pytest.raises(ValueError):
            empty.percentile_ms(99)

    def test_validation(self):
        with pytest.raises(ValueError):
            WebServerWorkload(1, rps=0.0)
        with pytest.raises(ValueError):
            WebServerWorkload(1, rps=1.0, work_per_request_mhz_s=0.0)
        with pytest.raises(ValueError):
            WebServerWorkload(1, rps=1.0, idle_level=2.0)


class TestInSimulation:
    def test_latency_reflects_capping(self):
        """The same request stream served at a 10x lower cap shows a much
        higher p99 — the customer-visible effect of starvation."""
        latencies = {}
        for label, quota_ratio in (("fast", None), ("slow", 0.05)):
            node, hv, _ = make_host()
            vm = hv.provision(WEB, "web")
            attach(vm, WebServerWorkload(
                2, rps=4.0, work_per_request_mhz_s=300.0, seed=9
            ))
            if quota_ratio is not None:
                from repro.cgroups.cpu import QuotaSpec

                for vcpu in vm.vcpus:
                    node.fs.set_quota(
                        vcpu.cgroup_path,
                        QuotaSpec(int(quota_ratio * 100_000), 100_000),
                    )
            sim = Simulation(node, hv, dt=0.25)
            sim.run(60.0)
            latencies[label] = vm.workload.percentile_ms(99)
        assert latencies["slow"] > 5 * latencies["fast"]
