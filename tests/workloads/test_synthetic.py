"""Tests for synthetic demand generators."""

import numpy as np
import pytest

from repro.workloads.synthetic import (
    BurstyWorkload,
    ConstantWorkload,
    IdleWorkload,
    RampWorkload,
    SineWorkload,
    StepWorkload,
    demand_series,
    make_phased,
)


class TestConstant:
    def test_level(self):
        w = ConstantWorkload(2, level=0.7)
        assert w.demand(0, 100.0) == 0.7

    def test_start_time(self):
        w = ConstantWorkload(2, level=0.7, start_time=10.0)
        assert w.demand(0, 5.0) == 0.0
        assert w.demand(0, 10.0) == 0.7

    def test_idle_is_zero(self):
        assert IdleWorkload(2).demand(0, 50.0) == 0.0

    def test_level_validation(self):
        with pytest.raises(ValueError):
            ConstantWorkload(1, level=1.2)


class TestStep:
    def test_levels_switch_at_times(self):
        w = StepWorkload(1, times=[10.0, 20.0], levels=[0.1, 0.5, 1.0])
        assert w.demand(0, 5.0) == 0.1
        assert w.demand(0, 10.0) == 0.5
        assert w.demand(0, 19.9) == 0.5
        assert w.demand(0, 20.0) == 1.0

    def test_relative_to_start(self):
        w = StepWorkload(1, times=[10.0], levels=[0.2, 0.8], start_time=100.0)
        assert w.demand(0, 105.0) == 0.2
        assert w.demand(0, 115.0) == 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            StepWorkload(1, times=[1.0], levels=[0.5])
        with pytest.raises(ValueError):
            StepWorkload(1, times=[2.0, 1.0], levels=[0.1, 0.2, 0.3])
        with pytest.raises(ValueError):
            StepWorkload(1, times=[1.0], levels=[0.5, 1.5])


class TestRamp:
    def test_linear_interpolation(self):
        w = RampWorkload(1, lo=0.0, hi=1.0, duration=100.0)
        assert w.demand(0, 0.0) == pytest.approx(0.0)
        assert w.demand(0, 50.0) == pytest.approx(0.5)
        assert w.demand(0, 100.0) == pytest.approx(1.0)
        assert w.demand(0, 200.0) == pytest.approx(1.0)  # clamps

    def test_descending_ramp(self):
        w = RampWorkload(1, lo=1.0, hi=0.2, duration=10.0)
        assert w.demand(0, 10.0) == pytest.approx(0.2)


class TestSine:
    def test_oscillates_within_bounds(self):
        w = SineWorkload(1, mean=0.5, amplitude=0.4, period=100.0)
        ts = np.linspace(0, 200, 400)
        vals = demand_series(w, ts)
        assert vals.min() >= 0.1 - 1e-9
        assert vals.max() <= 0.9 + 1e-9

    def test_period(self):
        w = SineWorkload(1, mean=0.5, amplitude=0.4, period=100.0)
        assert w.demand(0, 25.0) == pytest.approx(0.9)
        assert w.demand(0, 75.0) == pytest.approx(0.1)

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            SineWorkload(1, mean=0.9, amplitude=0.4)


class TestBursty:
    def test_deterministic_given_seed(self):
        a = BurstyWorkload(1, seed=3)
        b = BurstyWorkload(1, seed=3)
        ts = np.linspace(0, 500, 100)
        assert np.array_equal(demand_series(a, ts), demand_series(b, ts))

    def test_two_levels_only(self):
        w = BurstyWorkload(1, on_level=1.0, off_level=0.05, seed=1)
        vals = set(demand_series(w, np.linspace(0, 2000, 500)).tolist())
        assert vals <= {1.0, 0.05}

    def test_alternates(self):
        w = BurstyWorkload(1, seed=2)
        vals = demand_series(w, np.linspace(0, 5000, 2000))
        assert {1.0, 0.05} <= set(np.round(vals, 2).tolist())

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyWorkload(1, on_level=0.3, off_level=0.5)
        with pytest.raises(ValueError):
            BurstyWorkload(1, mean_on=0.0)


class TestFactory:
    @pytest.mark.parametrize("pattern", ["constant", "half", "sine", "bursty", "idle"])
    def test_known_patterns(self, pattern):
        w = make_phased(2, pattern)
        assert 0.0 <= w.demand(0, 10.0) <= 1.0

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            make_phased(2, "chaotic")
