"""Tests for the workload protocol and pooled-work scoring."""

import pytest

from repro.workloads.base import PooledWorkWorkload, WorkloadScore, attach
from repro.workloads.synthetic import ConstantWorkload


class _Pooled(PooledWorkWorkload):
    def demand(self, vcpu, t):
        return 1.0 if self.started(t) and not self.finished else 0.0


class TestWorkloadScore:
    def test_score_is_work_over_time(self):
        s = WorkloadScore(iteration=0, started_at=0.0, finished_at=10.0, work_mhz_s=24_000.0)
        assert s.duration_s == 10.0
        assert s.score == pytest.approx(2_400.0)

    def test_zero_duration_rejected(self):
        s = WorkloadScore(iteration=0, started_at=5.0, finished_at=5.0, work_mhz_s=1.0)
        with pytest.raises(ValueError):
            _ = s.score


class TestPooledWork:
    def test_iteration_completes_when_work_reached(self):
        w = _Pooled(2, iterations=2, work_per_iteration_mhz_s=100.0)
        w.advance(0, 0.0, 1.0, cpu_seconds=0.5, freq_mhz=100.0)  # 50
        assert w.iteration_progress() == pytest.approx(0.5)
        w.advance(1, 0.0, 1.0, cpu_seconds=0.5, freq_mhz=100.0)  # 100
        assert w.current_iteration == 1
        assert len(w.scores) == 1

    def test_work_pooled_across_vcpus(self):
        w = _Pooled(4, iterations=1, work_per_iteration_mhz_s=400.0)
        for j in range(4):
            w.advance(j, 0.0, 1.0, cpu_seconds=1.0, freq_mhz=100.0)
        assert w.finished

    def test_overshoot_carries_into_next_iteration(self):
        w = _Pooled(1, iterations=2, work_per_iteration_mhz_s=100.0)
        w.advance(0, 0.0, 1.0, cpu_seconds=1.5, freq_mhz=100.0)  # 150
        assert w.current_iteration == 1
        assert w.iteration_progress() == pytest.approx(0.5)

    def test_finished_ignores_further_progress(self):
        w = _Pooled(1, iterations=1, work_per_iteration_mhz_s=10.0)
        w.advance(0, 0.0, 1.0, 1.0, 10.0)
        assert w.finished
        w.advance(0, 1.0, 1.0, 1.0, 10.0)
        assert len(w.scores) == 1

    def test_not_started_makes_no_progress(self):
        w = _Pooled(1, iterations=1, work_per_iteration_mhz_s=10.0, start_time=100.0)
        w.advance(0, 0.0, 1.0, 1.0, 10.0)
        assert w.iteration_progress() == 0.0

    def test_scores_carry_wall_times(self):
        w = _Pooled(1, iterations=1, work_per_iteration_mhz_s=100.0)
        w.advance(0, 0.0, 1.0, 1.0, 50.0)
        w.advance(0, 1.0, 1.0, 1.0, 50.0)
        score = w.scores[0]
        assert score.started_at == 0.0
        assert score.finished_at == 2.0
        assert score.score == pytest.approx(50.0)

    def test_negative_progress_rejected(self):
        w = _Pooled(1, iterations=1, work_per_iteration_mhz_s=10.0)
        with pytest.raises(ValueError):
            w.advance(0, 0.0, 1.0, -1.0, 10.0)

    def test_ctor_validation(self):
        with pytest.raises(ValueError):
            _Pooled(1, iterations=0, work_per_iteration_mhz_s=10.0)
        with pytest.raises(ValueError):
            _Pooled(1, iterations=1, work_per_iteration_mhz_s=0.0)
        with pytest.raises(ValueError):
            _Pooled(0, iterations=1, work_per_iteration_mhz_s=10.0)


class TestAttach:
    def test_attach_validates_vcpu_count(self, hypervisor):
        from repro.virt.template import SMALL

        vm = hypervisor.provision(SMALL, "vm-a")
        with pytest.raises(ValueError):
            attach(vm, ConstantWorkload(4))
        w = attach(vm, ConstantWorkload(2))
        assert vm.workload is w
