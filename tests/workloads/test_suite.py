"""Tests for the PTS-like benchmark suite runner."""

import pytest

from repro.sim.engine import Simulation
from repro.virt.template import VMTemplate
from repro.workloads.compress7zip import Compress7Zip
from repro.workloads.suite import BenchmarkSuite, SuiteResult, RunResult
from tests.conftest import make_host

ONE = VMTemplate("one", vcpus=1, vfreq_mhz=2000.0)


def build_suite(n_vms=2):
    node, hv, ctrl = make_host()
    sim = Simulation(node, hv, controller=ctrl, dt=0.5)
    suite = BenchmarkSuite(sim)
    vms = []
    for k in range(n_vms):
        vm = hv.provision(ONE, f"one-{k}")
        ctrl.register_vm(vm.name, ONE.vfreq_mhz)
        suite.add(vm, Compress7Zip(1, iterations=3, work_per_iteration_mhz_s=4_000.0))
        vms.append(vm)
    return suite, vms


class TestSuiteRun:
    def test_runs_to_completion(self):
        suite, vms = build_suite()
        result = suite.run(deadline_s=120.0)
        assert all(vm.workload.finished for vm in vms)
        assert result.wall_seconds < 120.0

    def test_per_vm_statistics(self):
        suite, _ = build_suite()
        result = suite.run(deadline_s=120.0)
        r = result.by_vm("one-0")
        assert r.iterations == 3
        assert r.minimum <= r.mean_score <= r.maximum
        assert r.stddev >= 0

    def test_class_aggregation(self):
        suite, _ = build_suite(n_vms=3)
        result = suite.run(deadline_s=120.0)
        assert result.class_mean("one") > 0
        assert result.class_relative_deviation_pct("one") >= 0

    def test_unknown_vm_and_prefix(self):
        suite, _ = build_suite()
        result = suite.run(deadline_s=120.0)
        with pytest.raises(KeyError):
            result.by_vm("ghost")
        with pytest.raises(KeyError):
            result.class_mean("ghost")

    def test_deadline_cuts_off(self):
        suite, vms = build_suite()
        # make it impossible: huge work, tiny deadline
        vms[0].workload.work_per_iteration = 1e12
        result = suite.run(deadline_s=3.0)
        r = result.by_vm("one-0")
        assert r.iterations == 0
        assert r.mean_score == 0.0

    def test_settle_keeps_running(self):
        suite, _ = build_suite()
        result = suite.run(deadline_s=120.0, settle_s=5.0)
        assert suite.simulation.t >= result.wall_seconds

    def test_deadline_validation(self):
        suite, _ = build_suite()
        with pytest.raises(ValueError):
            suite.run(deadline_s=0.0)


class TestTestResult:
    def test_relative_deviation(self):
        r = RunResult("x", 3, mean_score=200.0, stddev=10.0, minimum=1, maximum=2)
        assert r.relative_deviation_pct == pytest.approx(5.0)

    def test_zero_mean_guarded(self):
        r = RunResult("x", 0, 0.0, 0.0, 0.0, 0.0)
        assert r.relative_deviation_pct == 0.0
