"""Unit tests for the thread->core affinity model."""

import numpy as np
import pytest

from repro.sched.affinity import AffinityModel


class TestPlacement:
    def test_deterministic_given_seed(self):
        a = AffinityModel(8, seed=3)
        b = AffinityModel(8, seed=3)
        tids = list(range(10))
        utils = [1.0] * 10
        for _ in range(5):
            assert a.step(tids, utils, 1.0) == b.step(tids, utils, 1.0)

    def test_core_of_is_stable_without_step(self):
        a = AffinityModel(8, seed=1)
        core = a.core_of(42)
        assert a.core_of(42) == core

    def test_cores_in_range(self):
        a = AffinityModel(4, seed=0)
        cores = a.step(list(range(20)), [0.0] * 20, 1.0)
        assert all(0 <= c < 4 for c in cores)

    def test_busy_threads_migrate_less(self):
        a = AffinityModel(16, seed=5)
        tids = list(range(200))
        busy = [1.0] * 200
        idle = [0.0] * 200
        a.step(tids, busy, 1.0)
        before = [a.core_of(t) for t in tids]
        a.step(tids, busy, 1.0)
        busy_moves = sum(1 for t, c in zip(tids, before) if a.core_of(t) != c)

        b = AffinityModel(16, seed=5)
        b.step(tids, idle, 1.0)
        before = [b.core_of(t) for t in tids]
        b.step(tids, idle, 1.0)
        idle_moves = sum(1 for t, c in zip(tids, before) if b.core_of(t) != c)
        assert busy_moves < idle_moves

    def test_forget_reassigns(self):
        a = AffinityModel(1024, seed=9)
        a.core_of(1)
        a.forget(1)
        # With 1024 cores a fresh draw almost surely differs; just ensure no error
        assert 0 <= a.core_of(1) < 1024

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            AffinityModel(2).step([1, 2], [0.5], 1.0)

    def test_invalid_cpu_count(self):
        with pytest.raises(ValueError):
            AffinityModel(0)


class TestLoadPerCore:
    def test_conserves_total_load(self):
        a = AffinityModel(4, seed=2)
        tids = list(range(8))
        utils = [0.5] * 8
        load = a.load_per_core(tids, utils)
        assert load.sum() == pytest.approx(4.0, rel=0.01)

    def test_clipped_to_unit_interval(self):
        a = AffinityModel(2, seed=2)
        load = a.load_per_core(list(range(10)), [1.0] * 10)
        assert np.all(load <= 1.0 + 1e-9)
        assert np.all(load >= 0.0)

    def test_saturated_node_all_cores_full(self):
        a = AffinityModel(4, seed=2)
        load = a.load_per_core(list(range(16)), [1.0] * 16)
        assert np.allclose(load, 1.0)
