"""Tests for the hierarchical CFS-like scheduler.

Includes the paper's §IV-A2 fairness experiments (a) and (b): CFS splits
CPU time between VM cgroups, not vCPUs — the root cause of the
configuration-A behaviour in Figs. 6/8/12.
"""

import numpy as np
import pytest

from repro.cgroups.cpu import QuotaSpec
from repro.cgroups.fs import CgroupFS, CgroupVersion
from repro.sched.cfs import CfsScheduler, flat_fair_split
from repro.sched.entity import SchedEntity


def build_host(num_vms, vcpus_per_vm, num_cpus, version=CgroupVersion.V2):
    """A KVM-shaped cgroup tree with one entity per vCPU, all demanding 100 %."""
    fs = CgroupFS(version)
    fs.makedirs("/machine.slice")
    entities = []
    for i in range(num_vms):
        vcpus = vcpus_per_vm[i] if isinstance(vcpus_per_vm, (list, tuple)) else vcpus_per_vm
        for j in range(vcpus):
            path = f"/machine.slice/vm{i}/vcpu{j}"
            fs.makedirs(path)
            ent = SchedEntity(tid=1000 + i * 100 + j, cgroup_path=path, demand=1.0)
            entities.append(ent)
    return fs, entities


class TestHierarchicalFairness:
    def test_experiment_a_equal_vms_equal_speed(self):
        """Paper experiment a): 20 VMs x 4 vCPUs all run at the same speed."""
        fs, entities = build_host(20, 4, num_cpus=40)
        CfsScheduler(fs, 40).schedule(entities, dt=1.0)
        allocs = np.array([e.allocated for e in entities])
        assert np.allclose(allocs, allocs[0])
        assert allocs.sum() == pytest.approx(40.0)

    def test_experiment_b_vm_level_split(self):
        """Paper experiment b): 40 x 1-vCPU VMs + 10 x 4-vCPU VMs ->
        4/5 of the resources go to the single-vCPU VMs."""
        shapes = [1] * 40 + [4] * 10
        fs, entities = build_host(50, shapes, num_cpus=40)
        CfsScheduler(fs, 40).schedule(entities, dt=1.0)
        single = sum(e.allocated for e in entities if e.cgroup_path.split("/")[2] in
                     {f"vm{i}" for i in range(40)})
        total = sum(e.allocated for e in entities)
        assert single / total == pytest.approx(4 / 5, rel=0.01)

    def test_table2_shape_small_vms_collectively_win(self):
        """20 small (2 vCPU) + 10 large (4 vCPU) on 40 cpus: small vCPUs get
        ~2x the time of large vCPUs (the Fig. 6 effect)."""
        shapes = [2] * 20 + [4] * 10
        fs, entities = build_host(30, shapes, num_cpus=40)
        CfsScheduler(fs, 40).schedule(entities, dt=1.0)
        small = [e.allocated for e in entities[:40]]
        large = [e.allocated for e in entities[40:]]
        assert np.mean(small) / np.mean(large) == pytest.approx(2.0, rel=0.01)

    def test_weights_shift_shares(self):
        fs, entities = build_host(2, 1, num_cpus=1)
        fs.node("/machine.slice/vm0").cpu.weight = 200
        fs.node("/machine.slice/vm1").cpu.weight = 100
        CfsScheduler(fs, 1).schedule(entities, dt=1.0)
        assert entities[0].allocated == pytest.approx(2 / 3, rel=1e-6)
        assert entities[1].allocated == pytest.approx(1 / 3, rel=1e-6)


class TestQuotaEnforcement:
    def test_vcpu_quota_caps_allocation(self):
        fs, entities = build_host(1, 1, num_cpus=4)
        fs.set_quota("/machine.slice/vm0/vcpu0", QuotaSpec(25_000, 100_000))
        CfsScheduler(fs, 4).schedule(entities, dt=1.0)
        assert entities[0].allocated == pytest.approx(0.25)

    def test_vm_level_quota_caps_subtree(self):
        fs, entities = build_host(1, 4, num_cpus=8)
        fs.set_quota("/machine.slice/vm0", QuotaSpec(100_000, 100_000))
        CfsScheduler(fs, 8).schedule(entities, dt=1.0)
        assert sum(e.allocated for e in entities) == pytest.approx(1.0)

    def test_quota_slack_redistributed_to_other_vms(self):
        fs, entities = build_host(2, 1, num_cpus=1)
        fs.set_quota("/machine.slice/vm0/vcpu0", QuotaSpec(10_000, 100_000))
        CfsScheduler(fs, 1).schedule(entities, dt=1.0)
        assert entities[0].allocated == pytest.approx(0.1)
        assert entities[1].allocated == pytest.approx(0.9)

    def test_throttled_flag_set(self):
        fs, entities = build_host(1, 1, num_cpus=4)
        fs.set_quota("/machine.slice/vm0/vcpu0", QuotaSpec(25_000, 100_000))
        allocs = CfsScheduler(fs, 4).schedule(entities, dt=1.0)
        assert allocs["/machine.slice/vm0/vcpu0"].throttled

    def test_unthrottled_when_demand_below_quota(self):
        fs, entities = build_host(1, 1, num_cpus=4)
        entities[0].demand = 0.1
        fs.set_quota("/machine.slice/vm0/vcpu0", QuotaSpec(50_000, 100_000))
        allocs = CfsScheduler(fs, 4).schedule(entities, dt=1.0)
        assert not allocs["/machine.slice/vm0/vcpu0"].throttled


class TestMechanics:
    def test_thread_never_exceeds_one_core(self):
        fs, entities = build_host(1, 1, num_cpus=8)
        CfsScheduler(fs, 8).schedule(entities, dt=1.0)
        assert entities[0].allocated <= 1.0 + 1e-9

    def test_idle_threads_get_nothing(self):
        fs, entities = build_host(2, 1, num_cpus=2)
        entities[0].demand = 0.0
        CfsScheduler(fs, 2).schedule(entities, dt=1.0)
        assert entities[0].allocated == 0.0
        assert entities[1].allocated == pytest.approx(1.0)

    def test_accounting_charged_hierarchically(self):
        fs, entities = build_host(1, 2, num_cpus=2)
        CfsScheduler(fs, 2).schedule(entities, dt=1.0)
        vcpu_usage = fs.node("/machine.slice/vm0/vcpu0").cpu.usage_usec
        vm_usage = fs.node("/machine.slice/vm0").cpu.usage_usec
        assert vcpu_usage == pytest.approx(1_000_000, rel=0.01)
        assert vm_usage == pytest.approx(2_000_000, rel=0.01)

    def test_charging_can_be_disabled(self):
        fs, entities = build_host(1, 1, num_cpus=1)
        CfsScheduler(fs, 1).schedule(entities, dt=1.0, charge_accounting=False)
        assert fs.node("/machine.slice/vm0/vcpu0").cpu.usage_usec == 0

    def test_dt_validation(self):
        fs, entities = build_host(1, 1, num_cpus=1)
        with pytest.raises(ValueError):
            CfsScheduler(fs, 1).schedule(entities, dt=0.0)

    def test_num_cpus_validation(self):
        fs, _ = build_host(1, 1, num_cpus=1)
        with pytest.raises(ValueError):
            CfsScheduler(fs, 0)

    def test_works_on_cgroup_v1(self):
        fs, entities = build_host(2, 2, num_cpus=2, version=CgroupVersion.V1)
        CfsScheduler(fs, 2).schedule(entities, dt=1.0)
        assert sum(e.allocated for e in entities) == pytest.approx(2.0)


class TestFlatReference:
    def test_flat_split_differs_from_hierarchical(self):
        """Flat per-thread fairness would give experiment b) 40/80 of the
        CPU to single-vCPU VMs, not 4/5 — demonstrating why the hierarchy
        matters."""
        demands = np.ones(80)
        alloc = flat_fair_split(40, 1.0, demands)
        single_share = alloc[:40].sum() / alloc.sum()
        assert single_share == pytest.approx(0.5, rel=0.01)
