"""Unit tests for CFS bandwidth bookkeeping."""

import pytest

from repro.cgroups.cpu import QuotaSpec
from repro.sched.bandwidth import BandwidthState


class TestCapFor:
    def test_rate_based_cap(self):
        bw = BandwidthState(QuotaSpec(50_000, 100_000))
        assert bw.cap_for(1.0) == pytest.approx(0.5)
        assert bw.cap_for(0.25) == pytest.approx(0.125)

    def test_unlimited(self):
        bw = BandwidthState(QuotaSpec())
        assert bw.cap_for(1.0) == float("inf")

    def test_multi_core_quota(self):
        bw = BandwidthState(QuotaSpec(400_000, 100_000))
        assert bw.cap_for(0.5) == pytest.approx(2.0)

    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError):
            BandwidthState(QuotaSpec()).cap_for(-1.0)


class TestElapsedPeriods:
    def test_periods_counted_at_kernel_cadence(self):
        bw = BandwidthState(QuotaSpec(50_000, 100_000))
        assert bw.elapsed_periods(0.05) == 0  # half a period
        assert bw.elapsed_periods(0.05) == 1  # completes the first
        assert bw.elapsed_periods(1.0) == 10

    def test_fractional_accumulation(self):
        bw = BandwidthState(QuotaSpec(50_000, 100_000))
        total = sum(bw.elapsed_periods(0.03) for _ in range(10))
        assert total == 3  # 0.3 s -> 3 full 100 ms periods
