"""Property-based tests of the hierarchical scheduler.

Random two-level KVM-shaped trees (VM groups with vCPU children, random
demands, random quotas) must always satisfy the CFS bandwidth-control
invariants, regardless of shape.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cgroups.cpu import QuotaSpec
from repro.cgroups.fs import CgroupFS, CgroupVersion
from repro.sched.cfs import CfsScheduler
from repro.sched.entity import SchedEntity


@st.composite
def random_host(draw):
    num_cpus = draw(st.integers(1, 16))
    num_vms = draw(st.integers(1, 6))
    fs = CgroupFS(CgroupVersion.V2)
    fs.makedirs("/machine.slice")
    entities = []
    quotas = {}
    for i in range(num_vms):
        vcpus = draw(st.integers(1, 4))
        vm_path = f"/machine.slice/vm{i}"
        fs.makedirs(vm_path)
        if draw(st.booleans()):
            ratio = draw(st.floats(0.05, 4.0))
            quota = QuotaSpec(int(ratio * 100_000), 100_000)
            fs.set_quota(vm_path, quota)
            quotas[vm_path] = quota.ratio()
        for j in range(vcpus):
            path = f"{vm_path}/vcpu{j}"
            fs.makedirs(path)
            demand = draw(st.floats(0.0, 1.0))
            ent = SchedEntity(tid=1000 + 100 * i + j, cgroup_path=path, demand=demand)
            entities.append(ent)
            if draw(st.booleans()):
                ratio = draw(st.floats(0.01, 1.0))
                quota = QuotaSpec(int(ratio * 100_000), 100_000)
                fs.set_quota(path, quota)
                quotas[path] = quota.ratio()
    return fs, entities, quotas, num_cpus


class TestSchedulerInvariants:
    @given(random_host())
    @settings(max_examples=120, deadline=None)
    def test_feasibility(self, host):
        fs, entities, quotas, num_cpus = host
        dt = 1.0
        CfsScheduler(fs, num_cpus).schedule(entities, dt)
        # each thread: bounded by demand and one core
        for ent in entities:
            assert -1e-9 <= ent.allocated <= min(ent.demand, 1.0) * dt + 1e-9
        # node: bounded by capacity
        total = sum(e.allocated for e in entities)
        assert total <= num_cpus * dt + 1e-6

    @given(random_host())
    @settings(max_examples=120, deadline=None)
    def test_quota_never_exceeded(self, host):
        fs, entities, quotas, num_cpus = host
        dt = 1.0
        CfsScheduler(fs, num_cpus).schedule(entities, dt)
        for path, ratio in quotas.items():
            subtree = fs.node(path)
            used = sum(
                e.allocated
                for e in entities
                if e.cgroup_path == path or e.cgroup_path.startswith(path + "/")
            )
            assert used <= ratio * dt + 1e-6, path

    @given(random_host())
    @settings(max_examples=120, deadline=None)
    def test_work_conserving(self, host):
        """Nothing is left on the table: total granted equals the minimum
        of node capacity and the tree's own (quota-capped) absorbable
        demand."""
        fs, entities, quotas, num_cpus = host
        dt = 1.0
        allocations = CfsScheduler(fs, num_cpus).schedule(entities, dt)
        total = sum(e.allocated for e in entities)
        root_limit = allocations["/"].limit
        assert total == pytest.approx(min(num_cpus * dt, root_limit), abs=1e-6)

    @given(random_host())
    @settings(max_examples=60, deadline=None)
    def test_deterministic(self, host):
        fs, entities, quotas, num_cpus = host
        CfsScheduler(fs, num_cpus).schedule(entities, 1.0, charge_accounting=False)
        first = [e.allocated for e in entities]
        CfsScheduler(fs, num_cpus).schedule(entities, 1.0, charge_accounting=False)
        assert first == [e.allocated for e in entities]

    @given(random_host())
    @settings(max_examples=60, deadline=None)
    def test_accounting_matches_grants(self, host):
        fs, entities, quotas, num_cpus = host
        CfsScheduler(fs, num_cpus).schedule(entities, 1.0)
        for ent in entities:
            usage = fs.node(ent.cgroup_path).cpu.usage_usec
            assert usage == pytest.approx(ent.allocated * 1e6, abs=1.0)
