"""Unit + property tests for weighted max-min fair sharing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sched.fairshare import proportional_share, weighted_fair_share


class TestBasics:
    def test_equal_split_unsaturated(self):
        alloc = weighted_fair_share(3.0, np.ones(3), np.full(3, 10.0))
        assert np.allclose(alloc, 1.0)

    def test_demand_satisfied_when_capacity_ample(self):
        limits = np.array([0.2, 0.5, 0.1])
        alloc = weighted_fair_share(10.0, np.ones(3), limits)
        assert np.allclose(alloc, limits)

    def test_weighted_split(self):
        alloc = weighted_fair_share(3.0, np.array([2.0, 1.0]), np.full(2, 10.0))
        assert np.allclose(alloc, [2.0, 1.0])

    def test_saturated_entity_overflow_goes_to_others(self):
        # Entity 0 capped at 0.5; remaining 2.5 split between the other two.
        alloc = weighted_fair_share(3.0, np.ones(3), np.array([0.5, 10.0, 10.0]))
        assert np.allclose(alloc, [0.5, 1.25, 1.25])

    def test_progressive_filling_multiple_levels(self):
        alloc = weighted_fair_share(6.0, np.ones(3), np.array([1.0, 2.0, 10.0]))
        assert np.allclose(alloc, [1.0, 2.0, 3.0])

    def test_zero_capacity(self):
        alloc = weighted_fair_share(0.0, np.ones(2), np.ones(2))
        assert np.allclose(alloc, 0.0)

    def test_empty_input(self):
        assert weighted_fair_share(5.0, np.zeros(0), np.zeros(0)).size == 0

    def test_infinite_limits_ok(self):
        alloc = weighted_fair_share(4.0, np.ones(2), np.array([np.inf, np.inf]))
        assert np.allclose(alloc, 2.0)

    def test_zero_limit_gets_nothing(self):
        alloc = weighted_fair_share(2.0, np.ones(2), np.array([0.0, 5.0]))
        assert alloc[0] == 0.0
        assert alloc[1] == pytest.approx(2.0)


class TestValidation:
    def test_negative_capacity(self):
        with pytest.raises(ValueError):
            weighted_fair_share(-1.0, np.ones(1), np.ones(1))

    def test_nan_capacity(self):
        with pytest.raises(ValueError):
            weighted_fair_share(float("nan"), np.ones(1), np.ones(1))

    def test_nonpositive_weights(self):
        with pytest.raises(ValueError):
            weighted_fair_share(1.0, np.array([0.0]), np.ones(1))

    def test_negative_limits(self):
        with pytest.raises(ValueError):
            weighted_fair_share(1.0, np.ones(1), np.array([-1.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            weighted_fair_share(1.0, np.ones(2), np.ones(3))


_sizes = st.integers(min_value=1, max_value=30)


@st.composite
def _fair_share_inputs(draw):
    n = draw(_sizes)
    weights = draw(
        arrays(np.float64, n, elements=st.floats(0.1, 50.0, allow_nan=False))
    )
    limits = draw(
        arrays(np.float64, n, elements=st.floats(0.0, 100.0, allow_nan=False))
    )
    capacity = draw(st.floats(0.0, 500.0, allow_nan=False))
    return capacity, weights, limits


class TestProperties:
    @given(_fair_share_inputs())
    @settings(max_examples=200, deadline=None)
    def test_feasibility_and_conservation(self, inputs):
        capacity, weights, limits = inputs
        alloc = weighted_fair_share(capacity, weights, limits)
        # never exceed any limit
        assert np.all(alloc <= limits + 1e-9)
        assert np.all(alloc >= -1e-12)
        # work conserving: total = min(capacity, sum limits)
        assert np.isclose(alloc.sum(), min(capacity, limits.sum()), atol=1e-6)

    @given(_fair_share_inputs())
    @settings(max_examples=200, deadline=None)
    def test_weighted_fairness_of_unsaturated(self, inputs):
        capacity, weights, limits = inputs
        alloc = weighted_fair_share(capacity, weights, limits)
        # All entities below their limit share a common normalised level.
        unsat = alloc < limits - 1e-7
        levels = alloc[unsat] / weights[unsat]
        if levels.size >= 2:
            assert np.allclose(levels, levels[0], rtol=1e-6, atol=1e-8)

    @given(_fair_share_inputs())
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_capacity(self, inputs):
        capacity, weights, limits = inputs
        a1 = weighted_fair_share(capacity, weights, limits)
        a2 = weighted_fair_share(capacity * 1.5 + 1.0, weights, limits)
        assert np.all(a2 >= a1 - 1e-9)


class TestProportionalShare:
    def test_full_satisfaction_under_capacity(self):
        out = proportional_share(10.0, np.array([1.0, 2.0]))
        assert np.allclose(out, [1.0, 2.0])

    def test_proportional_when_scarce(self):
        out = proportional_share(3.0, np.array([1.0, 2.0]))
        assert np.allclose(out, [1.0, 2.0])
        out = proportional_share(1.5, np.array([1.0, 2.0]))
        assert np.allclose(out, [0.5, 1.0])

    def test_zero_demand(self):
        assert np.allclose(proportional_share(5.0, np.zeros(3)), 0.0)

    def test_rejects_negative_demand(self):
        with pytest.raises(ValueError):
            proportional_share(1.0, np.array([-1.0]))

    @given(
        st.floats(0.0, 100.0),
        arrays(np.float64, st.integers(1, 20), elements=st.floats(0.0, 50.0)),
    )
    @settings(max_examples=100, deadline=None)
    def test_never_exceeds_demand_or_capacity(self, capacity, demands):
        out = proportional_share(capacity, demands)
        assert np.all(out <= demands + 1e-9)
        assert out.sum() <= max(capacity, 0.0) + 1e-6
