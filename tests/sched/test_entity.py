"""Unit tests for scheduling entities."""

import pytest

from repro.sched.entity import SchedEntity


class TestSchedEntity:
    def test_set_demand_bounds(self):
        ent = SchedEntity(tid=1, cgroup_path="/a")
        ent.set_demand(0.5)
        assert ent.demand == 0.5
        with pytest.raises(ValueError):
            ent.set_demand(1.5)
        with pytest.raises(ValueError):
            ent.set_demand(-0.1)

    def test_grant_accumulates_total(self):
        ent = SchedEntity(tid=1, cgroup_path="/a")
        ent.grant(0.3)
        ent.grant(0.2)
        assert ent.allocated == 0.2
        assert ent.total_cpu_seconds == pytest.approx(0.5)

    def test_grant_rejects_negative(self):
        with pytest.raises(ValueError):
            SchedEntity(tid=1, cgroup_path="/a").grant(-1.0)
