"""Tests for repro.sched."""
