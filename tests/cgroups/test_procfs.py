"""Unit tests for repro.cgroups.procfs — /proc/<tid>/stat emulation."""

import pytest

from repro.cgroups.procfs import ProcFS, ThreadStat, USER_HZ, parse_stat_line


@pytest.fixture
def procfs():
    return ProcFS()


class TestLifecycle:
    def test_spawn_assigns_unique_tids(self, procfs):
        tids = {procfs.spawn("CPU 0/KVM") for _ in range(10)}
        assert len(tids) == 10

    def test_kill_removes(self, procfs):
        tid = procfs.spawn("x")
        procfs.kill(tid)
        assert not procfs.exists(tid)
        with pytest.raises(ProcessLookupError):
            procfs.stat(tid)

    def test_kill_missing(self, procfs):
        with pytest.raises(ProcessLookupError):
            procfs.kill(1)


class TestStatFormat:
    def test_line_has_52_fields_with_comm_joined(self, procfs):
        tid = procfs.spawn("simple")
        line = procfs.read_stat(tid)
        # comm has no spaces here, so a plain split sees all 52 fields
        assert len(line.split()) == 52

    def test_processor_is_field_39(self, procfs):
        tid = procfs.spawn("x", processor=7)
        fields = procfs.read_stat(tid).split()
        assert fields[38] == "7"

    def test_comm_is_parenthesised(self, procfs):
        tid = procfs.spawn("CPU 0/KVM")
        assert "(CPU 0/KVM)" in procfs.read_stat(tid)

    def test_charge_accumulates_user_hz_ticks(self, procfs):
        tid = procfs.spawn("x")
        procfs.charge(tid, 1.5)
        assert procfs.stat(tid).utime_ticks == int(1.5 * USER_HZ)

    def test_charge_negative_rejected(self, procfs):
        tid = procfs.spawn("x")
        with pytest.raises(ValueError):
            procfs.charge(tid, -0.1)

    def test_set_processor(self, procfs):
        tid = procfs.spawn("x")
        procfs.set_processor(tid, 3)
        assert procfs.stat(tid).processor == 3


class TestParseStatLine:
    def test_roundtrip(self):
        st = ThreadStat(tid=1234, comm="CPU 1/KVM", utime_ticks=10, stime_ticks=2, processor=5)
        parsed = parse_stat_line(st.render())
        assert parsed.tid == 1234
        assert parsed.comm == "CPU 1/KVM"
        assert parsed.utime_ticks == 10
        assert parsed.stime_ticks == 2
        assert parsed.processor == 5

    def test_comm_with_spaces_and_parens(self):
        # The classic proc(5) trap: comm may contain ') ' sequences.
        st = ThreadStat(tid=1, comm="evil) R 0 (name", processor=2)
        parsed = parse_stat_line(st.render())
        assert parsed.comm == "evil) R 0 (name"
        assert parsed.processor == 2

    def test_short_line_rejected(self):
        with pytest.raises(ValueError):
            parse_stat_line("1 (x) R 0 0")
