"""Unit tests for repro.cgroups.sysfs — cpufreq sysfs emulation."""

import pytest

from repro.cgroups.sysfs import CpuFreqSysFS


@pytest.fixture
def sysfs():
    return CpuFreqSysFS(
        freqs_khz=[2_400_000.0, 1_200_000.0], min_khz=1_200_000, max_khz=2_400_000
    )


class TestReads:
    def test_scaling_cur_freq_by_core(self, sysfs):
        assert sysfs.scaling_cur_freq(0) == 2_400_000
        assert sysfs.scaling_cur_freq(1) == 1_200_000

    def test_path_read(self, sysfs):
        content = sysfs.read("/sys/devices/system/cpu/cpu1/cpufreq/scaling_cur_freq")
        assert content == "1200000\n"

    def test_min_max_files(self, sysfs):
        assert sysfs.read("/sys/devices/system/cpu/cpu0/cpufreq/cpuinfo_min_freq") == "1200000\n"
        assert sysfs.read("/sys/devices/system/cpu/cpu0/cpufreq/cpuinfo_max_freq") == "2400000\n"
        assert sysfs.read("/sys/devices/system/cpu/cpu0/cpufreq/scaling_max_freq") == "2400000\n"

    def test_unknown_cpu(self, sysfs):
        with pytest.raises(FileNotFoundError):
            sysfs.scaling_cur_freq(9)

    def test_non_cpu_path(self, sysfs):
        with pytest.raises(FileNotFoundError):
            sysfs.read("/sys/devices/system/memory/whatever")

    def test_unknown_file(self, sysfs):
        with pytest.raises(FileNotFoundError):
            sysfs.read("/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor")


class TestUpdate:
    def test_update_changes_readings(self, sysfs):
        sysfs.update([1_500_000.0, 1_500_000.0])
        assert sysfs.scaling_cur_freq(0) == 1_500_000

    def test_update_rejects_core_count_change(self, sysfs):
        with pytest.raises(ValueError):
            sysfs.update([1.0])

    def test_values_rounded_like_kernel(self):
        sysfs = CpuFreqSysFS([1_234_567.89], 1_000_000, 3_000_000)
        assert sysfs.scaling_cur_freq(0) == 1_234_568
