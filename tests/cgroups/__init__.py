"""Tests for repro.cgroups."""
