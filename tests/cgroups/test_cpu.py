"""Unit tests for repro.cgroups.cpu — quota specs and CPU accounting."""

import pytest

from repro.cgroups.cpu import (
    DEFAULT_PERIOD_US,
    CpuController,
    QuotaSpec,
    UNLIMITED,
    parse_cpu_stat,
)


class TestQuotaSpec:
    def test_default_is_unlimited(self):
        q = QuotaSpec()
        assert q.unlimited
        assert q.ratio() == float("inf")

    def test_ratio_is_quota_over_period(self):
        q = QuotaSpec(quota_us=50_000, period_us=100_000)
        assert q.ratio() == pytest.approx(0.5)

    def test_ratio_can_exceed_one_core(self):
        q = QuotaSpec(quota_us=400_000, period_us=100_000)
        assert q.ratio() == pytest.approx(4.0)

    def test_v2_render_unlimited(self):
        assert QuotaSpec().to_v2() == f"max {DEFAULT_PERIOD_US}\n"

    def test_v2_render_limited(self):
        assert QuotaSpec(25_000, 100_000).to_v2() == "25000 100000\n"

    def test_v2_parse_roundtrip(self):
        for q in (QuotaSpec(), QuotaSpec(25_000, 100_000), QuotaSpec(0, 50_000)):
            assert QuotaSpec.from_v2(q.to_v2()) == q

    def test_v2_parse_quota_only_uses_default_period(self):
        q = QuotaSpec.from_v2("75000")
        assert q.quota_us == 75_000
        assert q.period_us == DEFAULT_PERIOD_US

    def test_v2_parse_max_keyword(self):
        assert QuotaSpec.from_v2("max 100000").unlimited

    def test_v2_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            QuotaSpec.from_v2("")
        with pytest.raises(ValueError):
            QuotaSpec.from_v2("1 2 3")
        with pytest.raises(ValueError):
            QuotaSpec.from_v2("abc 100000")

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            QuotaSpec(quota_us=1000, period_us=0)

    def test_negative_quota_rejected_unless_unlimited(self):
        with pytest.raises(ValueError):
            QuotaSpec(quota_us=-5)
        assert QuotaSpec(quota_us=UNLIMITED).unlimited

    def test_v1_renders(self):
        q = QuotaSpec(25_000, 100_000)
        assert q.to_v1_quota() == "25000\n"
        assert q.to_v1_period() == "100000\n"


class TestCpuController:
    def test_charge_accumulates_usage(self):
        c = CpuController()
        c.charge(1_000_000)
        c.charge(500_000)
        assert c.usage_usec == 1_500_000

    def test_charge_splits_user_system(self):
        c = CpuController()
        c.charge(1_000_000)
        assert c.user_usec + c.system_usec == c.usage_usec
        assert c.system_usec > 0

    def test_charge_rejects_negative(self):
        with pytest.raises(ValueError):
            CpuController().charge(-1.0)

    def test_note_period_counts_throttles(self):
        c = CpuController()
        c.note_period(throttled=False)
        c.note_period(throttled=True, throttled_usec=123)
        assert c.nr_periods == 2
        assert c.nr_throttled == 1
        assert c.throttled_usec == 123

    def test_stat_v2_format(self):
        c = CpuController()
        c.charge(42_000)
        stat = c.stat_v2()
        assert stat.startswith("usage_usec 42000\n")
        assert "nr_periods 0" in stat
        assert stat.endswith("\n")

    def test_usage_v1_is_nanoseconds(self):
        c = CpuController()
        c.charge(1_234)
        assert c.usage_v1() == "1234000\n"

    def test_shares_scaling(self):
        c = CpuController()
        assert c.shares_v1() == "1024\n"  # weight 100 <-> shares 1024
        c.weight = 200
        assert c.shares_v1() == "2048\n"


class TestParseCpuStat:
    def test_parses_all_fields(self):
        c = CpuController()
        c.charge(10_000)
        c.note_period(throttled=True, throttled_usec=7)
        parsed = parse_cpu_stat(c.stat_v2())
        assert parsed["usage_usec"] == 10_000
        assert parsed["nr_throttled"] == 1
        assert parsed["throttled_usec"] == 7

    def test_ignores_blank_lines(self):
        assert parse_cpu_stat("usage_usec 5\n\n") == {"usage_usec": 5}

    def test_keeps_unknown_keys(self):
        parsed = parse_cpu_stat("usage_usec 5\nburst_usec 9\n")
        assert parsed["burst_usec"] == 9

    def test_rejects_malformed_line(self):
        with pytest.raises(ValueError):
            parse_cpu_stat("usage_usec\n")
