"""Unit tests for repro.cgroups.fs — the path/file cgroupfs facade."""

import pytest

from repro.cgroups.cpu import QuotaSpec
from repro.cgroups.fs import CgroupFS, CgroupVersion


@pytest.fixture
def v2():
    fs = CgroupFS(CgroupVersion.V2)
    fs.makedirs("/machine.slice/vm-a/vcpu0")
    return fs


@pytest.fixture
def v1():
    fs = CgroupFS(CgroupVersion.V1)
    fs.makedirs("/machine.slice/vm-a/vcpu0")
    return fs


class TestDirectories:
    def test_mkdir_requires_existing_parent(self):
        fs = CgroupFS()
        with pytest.raises(FileNotFoundError):
            fs.mkdir("/a/b")

    def test_makedirs_creates_ancestors(self):
        fs = CgroupFS()
        fs.makedirs("/a/b/c")
        assert fs.exists("/a/b/c")

    def test_makedirs_is_idempotent(self):
        fs = CgroupFS()
        fs.makedirs("/a/b")
        fs.makedirs("/a/b")
        assert fs.listdir("/a") == ["b"]

    def test_rmdir(self, v2):
        v2.rmdir("/machine.slice/vm-a/vcpu0")
        assert not v2.exists("/machine.slice/vm-a/vcpu0")

    def test_rmdir_root_refused(self, v2):
        with pytest.raises(ValueError):
            v2.rmdir("/")

    def test_listdir_sorted(self):
        fs = CgroupFS()
        fs.makedirs("/b")
        fs.makedirs("/a")
        assert fs.listdir("/") == ["a", "b"]

    def test_node_missing_raises(self, v2):
        with pytest.raises(FileNotFoundError):
            v2.node("/ghost")


class TestV2Files:
    def test_cpu_max_roundtrip(self, v2):
        v2.write("/machine.slice/vm-a/vcpu0/cpu.max", "25000 100000")
        assert v2.read("/machine.slice/vm-a/vcpu0/cpu.max") == "25000 100000\n"

    def test_cpu_max_default_is_max(self, v2):
        assert v2.read("/machine.slice/vm-a/vcpu0/cpu.max").startswith("max ")

    def test_cpu_stat_reflects_charges(self, v2):
        v2.node("/machine.slice/vm-a/vcpu0").cpu.charge(5_000)
        assert "usage_usec 5000" in v2.read("/machine.slice/vm-a/vcpu0/cpu.stat")

    def test_cpu_stat_not_writable(self, v2):
        with pytest.raises(PermissionError):
            v2.write("/machine.slice/vm-a/vcpu0/cpu.stat", "usage_usec 0")

    def test_cgroup_threads(self, v2):
        v2.write("/machine.slice/vm-a/vcpu0/cgroup.threads", "1234")
        assert v2.read("/machine.slice/vm-a/vcpu0/cgroup.threads") == "1234\n"

    def test_weight_validation(self, v2):
        v2.write("/machine.slice/vm-a/cpu.weight", "500")
        assert v2.read("/machine.slice/vm-a/cpu.weight") == "500\n"
        with pytest.raises(ValueError):
            v2.write("/machine.slice/vm-a/cpu.weight", "0")
        with pytest.raises(ValueError):
            v2.write("/machine.slice/vm-a/cpu.weight", "10001")

    def test_v1_files_absent_on_v2(self, v2):
        with pytest.raises(FileNotFoundError):
            v2.read("/machine.slice/vm-a/vcpu0/cpuacct.usage")

    def test_unknown_file_read(self, v2):
        with pytest.raises(FileNotFoundError):
            v2.read("/machine.slice/vm-a/vcpu0/cpu.bogus")


class TestV1Files:
    def test_quota_roundtrip(self, v1):
        v1.write("/machine.slice/vm-a/vcpu0/cpu.cfs_quota_us", "25000")
        assert v1.read("/machine.slice/vm-a/vcpu0/cpu.cfs_quota_us") == "25000\n"

    def test_negative_quota_means_unlimited(self, v1):
        v1.write("/machine.slice/vm-a/vcpu0/cpu.cfs_quota_us", "-1")
        assert v1.get_quota("/machine.slice/vm-a/vcpu0").unlimited

    def test_period_write_preserves_quota(self, v1):
        path = "/machine.slice/vm-a/vcpu0"
        v1.write(f"{path}/cpu.cfs_quota_us", "30000")
        v1.write(f"{path}/cpu.cfs_period_us", "50000")
        q = v1.get_quota(path)
        assert (q.quota_us, q.period_us) == (30000, 50000)

    def test_cpuacct_usage_nanoseconds(self, v1):
        v1.node("/machine.slice/vm-a/vcpu0").cpu.charge(3)
        assert v1.read("/machine.slice/vm-a/vcpu0/cpuacct.usage") == "3000\n"

    def test_tasks_file(self, v1):
        v1.write("/machine.slice/vm-a/vcpu0/tasks", "99")
        assert v1.read("/machine.slice/vm-a/vcpu0/tasks") == "99\n"

    def test_shares_write_maps_to_weight(self, v1):
        v1.write("/machine.slice/vm-a/cpu.shares", "2048")
        assert v1.node("/machine.slice/vm-a").cpu.weight == 200

    def test_shares_too_small_rejected(self, v1):
        with pytest.raises(ValueError):
            v1.write("/machine.slice/vm-a/cpu.shares", "1")

    def test_v2_files_absent_on_v1(self, v1):
        with pytest.raises(FileNotFoundError):
            v1.read("/machine.slice/vm-a/vcpu0/cpu.max")


class TestTypedHelpers:
    def test_set_get_quota(self, v2):
        q = QuotaSpec(10_000, 100_000)
        v2.set_quota("/machine.slice/vm-a/vcpu0", q)
        assert v2.get_quota("/machine.slice/vm-a/vcpu0") == q

    def test_attach_thread(self, v2):
        v2.attach_thread("/machine.slice/vm-a/vcpu0", 55)
        assert v2.node("/machine.slice/vm-a/vcpu0").threads == [55]
