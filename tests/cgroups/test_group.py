"""Unit tests for repro.cgroups.group — the cgroup tree."""

import pytest

from repro.cgroups.group import CgroupNode


@pytest.fixture
def root():
    return CgroupNode("", parent=None)


class TestTree:
    def test_root_path_is_slash(self, root):
        assert root.path == "/"

    def test_child_paths(self, root):
        a = root.add_child("machine.slice")
        b = a.add_child("vm-0")
        assert a.path == "/machine.slice"
        assert b.path == "/machine.slice/vm-0"

    def test_duplicate_child_rejected(self, root):
        root.add_child("a")
        with pytest.raises(FileExistsError):
            root.add_child("a")

    def test_invalid_names_rejected(self, root):
        with pytest.raises(ValueError):
            root.add_child("has/slash")
        with pytest.raises(ValueError):
            root.add_child("")

    def test_remove_child(self, root):
        root.add_child("a")
        root.remove_child("a")
        assert "a" not in root.children

    def test_remove_missing_child(self, root):
        with pytest.raises(FileNotFoundError):
            root.remove_child("ghost")

    def test_remove_nonempty_refused(self, root):
        a = root.add_child("a")
        a.add_child("b")
        with pytest.raises(OSError):
            root.remove_child("a")

    def test_remove_with_threads_refused(self, root):
        a = root.add_child("a")
        a.attach_thread(42)
        with pytest.raises(OSError):
            root.remove_child("a")

    def test_walk_is_depth_first_and_complete(self, root):
        a = root.add_child("a")
        a.add_child("a1")
        root.add_child("b")
        paths = [n.path for n in root.walk()]
        assert paths == ["/", "/a", "/a/a1", "/b"]

    def test_find_resolves_nested(self, root):
        a = root.add_child("a")
        a1 = a.add_child("a1")
        assert root.find("a/a1") is a1
        assert root.find("/a/a1/") is a1

    def test_find_missing_returns_none(self, root):
        assert root.find("nope") is None


class TestThreads:
    def test_attach_detach(self, root):
        root.attach_thread(7)
        assert root.threads == [7]
        root.detach_thread(7)
        assert root.threads == []

    def test_double_attach_rejected(self, root):
        root.attach_thread(7)
        with pytest.raises(ValueError):
            root.attach_thread(7)

    def test_detach_missing_rejected(self, root):
        with pytest.raises(ValueError):
            root.detach_thread(9)

    def test_all_threads_spans_subtree(self, root):
        a = root.add_child("a")
        a.attach_thread(1)
        a.add_child("b").attach_thread(2)
        root.attach_thread(3)
        assert sorted(root.all_threads()) == [1, 2, 3]

    def test_threads_file_sorted_one_per_line(self, root):
        root.attach_thread(30)
        root.attach_thread(10)
        assert root.threads_file() == "10\n30\n"

    def test_procs_file_matches_threads(self, root):
        root.attach_thread(5)
        assert root.procs_file() == root.threads_file()
