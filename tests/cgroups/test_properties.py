"""Property-based tests of cgroup file formats and tree invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cgroups.cpu import (
    CpuController,
    DEFAULT_PERIOD_US,
    QuotaSpec,
    UNLIMITED,
    parse_cpu_stat,
)
from repro.cgroups.fs import CgroupFS, CgroupVersion
from repro.cgroups.procfs import ThreadStat, parse_stat_line


class TestQuotaRoundTrips:
    @given(
        quota=st.one_of(st.just(UNLIMITED), st.integers(0, 10**9)),
        period=st.integers(1_000, 1_000_000),
    )
    @settings(max_examples=200, deadline=None)
    def test_v2_format_roundtrip(self, quota, period):
        q = QuotaSpec(quota_us=quota, period_us=period)
        assert QuotaSpec.from_v2(q.to_v2()) == q

    @given(
        quota=st.one_of(st.just(UNLIMITED), st.integers(1_000, 10**8)),
        period=st.integers(1_000, 1_000_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_v1_file_roundtrip(self, quota, period):
        fs = CgroupFS(CgroupVersion.V1)
        fs.makedirs("/g")
        fs.write("/g/cpu.cfs_period_us", str(period))
        fs.write("/g/cpu.cfs_quota_us", str(quota))
        got = fs.get_quota("/g")
        assert got.period_us == period
        assert got.quota_us == quota

    @given(st.integers(0, 10**9), st.integers(1_000, 1_000_000))
    @settings(max_examples=100, deadline=None)
    def test_ratio_definition(self, quota, period):
        q = QuotaSpec(quota, period)
        assert q.ratio() == pytest.approx(quota / period)


class TestStatRoundTrips:
    @given(st.integers(0, 10**12))
    @settings(max_examples=100, deadline=None)
    def test_cpu_stat_usage_roundtrip(self, usec):
        c = CpuController()
        c.usage_usec = usec
        assert parse_cpu_stat(c.stat_v2())["usage_usec"] == usec

    # proc(5) comm: any non-newline text, including ')' and spaces
    _comm = st.text(
        alphabet=st.characters(blacklist_characters="\n\0", min_codepoint=32),
        min_size=1,
        max_size=16,
    )

    @given(
        tid=st.integers(1, 2**22),
        comm=_comm,
        processor=st.integers(0, 1023),
        utime=st.integers(0, 10**9),
    )
    @settings(max_examples=200, deadline=None)
    def test_proc_stat_roundtrip(self, tid, comm, processor, utime):
        line = ThreadStat(
            tid=tid, comm=comm, processor=processor, utime_ticks=utime
        ).render()
        parsed = parse_stat_line(line)
        assert parsed.tid == tid
        assert parsed.comm == comm
        assert parsed.processor == processor
        assert parsed.utime_ticks == utime


class TestWeightSharesMapping:
    @given(st.integers(1, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_v1_shares_mapping_monotone(self, weight):
        a, b = CpuController(), CpuController()
        a.weight = weight
        b.weight = min(10_000, weight + 1)
        assert int(a.shares_v1()) <= int(b.shares_v1())

    @given(st.integers(2, 200_000))
    @settings(max_examples=100, deadline=None)
    def test_shares_write_read_consistent(self, shares):
        fs = CgroupFS(CgroupVersion.V1)
        fs.makedirs("/g")
        fs.write("/g/cpu.shares", str(shares))
        back = int(fs.read("/g/cpu.shares"))
        # one write/read cycle lands within rounding of the original
        assert back == pytest.approx(shares, rel=0.05, abs=16)
