"""Tests for SLA accounting."""

import pytest

from repro.analysis.sla import SlaRecord, SlaReport, evaluate_sla
from repro.core.controller import ControllerReport
from repro.core.monitor import VCpuSample


def sample(vm, path, consumed):
    return VCpuSample(
        vm_name=vm,
        vcpu_index=0,
        cgroup_path=path,
        tid=1,
        consumed_cycles=consumed,
        core=0,
        core_freq_mhz=2400.0,
        vfreq_mhz=0.0,
    )


def report(t, samples, allocations):
    r = ControllerReport(t=t)
    r.samples = samples
    r.allocations = allocations
    return r


GUARANTEE = {"vm": 200_000.0}
PATH = "/m/vm/vcpu0"


class TestEvaluateSla:
    def test_busy_below_guarantee_is_violation(self):
        reports = [
            report(1.0, [sample("vm", PATH, 0.0)], {PATH: 150_000.0}),
            # consumed ~ all of the previous 150k allocation -> wanted more
            report(2.0, [sample("vm", PATH, 149_000.0)], {PATH: 150_000.0}),
        ]
        out = evaluate_sla(reports, GUARANTEE)
        rec = out.records["vm"]
        assert rec.iterations_busy == 1
        assert rec.iterations_violated == 1
        assert rec.worst_fraction == pytest.approx(0.75)

    def test_busy_at_guarantee_is_fine(self):
        reports = [
            report(1.0, [sample("vm", PATH, 0.0)], {PATH: 200_000.0}),
            report(2.0, [sample("vm", PATH, 199_000.0)], {PATH: 200_000.0}),
        ]
        out = evaluate_sla(reports, GUARANTEE)
        assert out.records["vm"].iterations_violated == 0
        assert out.overall_violation_rate() == 0.0

    def test_idle_vm_never_violates(self):
        reports = [
            report(1.0, [sample("vm", PATH, 0.0)], {PATH: 50_000.0}),
            report(2.0, [sample("vm", PATH, 10_000.0)], {PATH: 50_000.0}),
        ]
        out = evaluate_sla(reports, GUARANTEE)
        assert "vm" not in out.records or out.records["vm"].iterations_busy == 0

    def test_boosted_vm_counts_as_satisfied(self):
        reports = [
            report(1.0, [sample("vm", PATH, 0.0)], {PATH: 900_000.0}),
            report(2.0, [sample("vm", PATH, 880_000.0)], {PATH: 900_000.0}),
        ]
        out = evaluate_sla(reports, GUARANTEE)
        rec = out.records["vm"]
        assert rec.iterations_busy == 1
        assert rec.iterations_violated == 0
        assert rec.worst_fraction == pytest.approx(4.5)

    def test_unknown_vm_ignored(self):
        reports = [
            report(1.0, [sample("other", "/m/other/vcpu0", 0.0)], {"/m/other/vcpu0": 1.0}),
        ]
        out = evaluate_sla(reports, GUARANTEE)
        assert out.records == {}

    def test_aggregates(self):
        r = SlaReport()
        a = r.record_for("a")
        a.iterations_busy = 10
        a.iterations_violated = 2
        b = r.record_for("b")
        b.iterations_busy = 10
        assert r.total_violations == 2
        assert r.vms_ever_violated == 1
        assert r.overall_violation_rate() == pytest.approx(0.1)

    def test_empty_rates(self):
        assert SlaRecord("x").violation_rate == 0.0
        assert SlaReport().overall_violation_rate() == 0.0


class TestEndToEnd:
    def test_contended_controlled_host_has_no_violations(self):
        from repro.sim.engine import Simulation
        from repro.virt.template import VMTemplate
        from repro.workloads.base import attach
        from repro.workloads.synthetic import ConstantWorkload
        from tests.conftest import make_host

        node, hv, ctrl = make_host()
        guarantees = {}
        for k in range(4):
            t = VMTemplate(f"t{k}", vcpus=1, vfreq_mhz=2300.0)
            vm = hv.provision(t, f"vm-{k}")
            ctrl.register_vm(vm.name, t.vfreq_mhz)
            attach(vm, ConstantWorkload(1))
            guarantees[vm.name] = ctrl.guaranteed_cycles_of(vm.name)
        sim = Simulation(node, hv, controller=ctrl, dt=0.5)
        sim.run(40.0)
        # skip the cold-start convergence
        out = evaluate_sla(ctrl.reports[10:], guarantees)
        assert out.overall_violation_rate() == 0.0
