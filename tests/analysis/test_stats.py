"""Tests for analysis stats helpers."""

import pytest

from repro.analysis.stats import relative_error, summarize, within_band


class TestRelativeError:
    def test_value(self):
        assert relative_error(480.0, 500.0) == pytest.approx(0.04)

    def test_zero_expected_rejected(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)


class TestWithinBand:
    def test_inside(self):
        assert within_band(480.0, 500.0, 0.05)

    def test_outside(self):
        assert not within_band(400.0, 500.0, 0.05)

    def test_negative_tol_rejected(self):
        with pytest.raises(ValueError):
            within_band(1.0, 1.0, -0.1)


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.count == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
