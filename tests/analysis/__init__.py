"""Tests for repro.analysis."""
