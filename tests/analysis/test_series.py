"""Tests for analysis series helpers."""

import numpy as np
import pytest

from repro.analysis.series import moving_average, plateau_segments, settling_time


class TestMovingAverage:
    def test_flat_unchanged(self):
        v = np.full(10, 3.0)
        assert np.allclose(moving_average(v, 3), 3.0)

    def test_window_one_is_identity(self):
        v = np.arange(5.0)
        assert np.array_equal(moving_average(v, 1), v)

    def test_smoothing_reduces_variance(self):
        rng = np.random.default_rng(0)
        v = rng.normal(0, 1, 200)
        assert moving_average(v, 10).std() < v.std()

    def test_window_validation(self):
        with pytest.raises(ValueError):
            moving_average(np.ones(3), 0)


class TestPlateaus:
    def test_finds_two_levels(self):
        t = np.arange(20.0)
        v = np.concatenate((np.full(10, 100.0), np.full(10, 500.0)))
        segs = plateau_segments(t, v, tolerance=10.0, min_duration=5.0)
        assert len(segs) == 2
        assert segs[0][2] == pytest.approx(100.0)
        assert segs[1][2] == pytest.approx(500.0)

    def test_short_blips_excluded(self):
        t = np.arange(10.0)
        v = np.array([1, 1, 1, 1, 99, 1, 1, 1, 1, 1.0])
        segs = plateau_segments(t, v, tolerance=5.0, min_duration=3.0)
        assert all(abs(level - 1.0) < 5.0 for _, _, level in segs)

    def test_validation(self):
        with pytest.raises(ValueError):
            plateau_segments(np.zeros(3), np.zeros(2), tolerance=1.0, min_duration=1.0)
        with pytest.raises(ValueError):
            plateau_segments(np.zeros(3), np.zeros(3), tolerance=0.0, min_duration=1.0)


class TestSettlingTime:
    def test_settles_after_transient(self):
        t = np.arange(10.0)
        v = np.array([0, 0, 0, 400, 480, 500, 505, 498, 502, 500.0])
        assert settling_time(t, v, 500.0, band=20.0) == pytest.approx(4.0)

    def test_never_settles(self):
        t = np.arange(5.0)
        v = np.array([0, 1000, 0, 1000, 0.0])
        assert settling_time(t, v, 500.0, band=20.0) == float("inf")

    def test_settled_from_start(self):
        t = np.arange(5.0)
        v = np.full(5, 500.0)
        assert settling_time(t, v, 500.0, band=20.0) == 0.0

    def test_band_validation(self):
        with pytest.raises(ValueError):
            settling_time(np.zeros(2), np.zeros(2), 0.0, band=0.0)
