"""Tests for the terminal chart renderer."""

import numpy as np
import pytest

from repro.analysis.ascii_chart import AsciiChart, chart_time_series


class TestAsciiChart:
    def test_renders_all_parts(self):
        chart = AsciiChart(width=30, height=6)
        chart.add_series("a", [0, 1, 2], [0.0, 5.0, 10.0])
        out = chart.render(title="T", y_label="MHz")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert len([l for l in lines if "|" in l]) == 6
        assert "* a" in out
        assert "[MHz]" in out

    def test_min_max_labels(self):
        chart = AsciiChart(width=20, height=5)
        chart.add_series("a", [0, 10], [100.0, 500.0])
        out = chart.render()
        assert "500" in out
        assert "100" in out

    def test_points_land_in_corners(self):
        chart = AsciiChart(width=20, height=5)
        chart.add_series("a", [0, 10], [0.0, 10.0])
        rows = [l.split("|", 1)[1] for l in chart.render().splitlines() if "|" in l]
        assert rows[0][-1] == "*"  # max value, last column, top row
        assert rows[-1][0] == "*"  # min value, first column, bottom row

    def test_multiple_series_distinct_glyphs(self):
        chart = AsciiChart(width=20, height=5)
        chart.add_series("a", [0, 1], [0, 1])
        chart.add_series("b", [0, 1], [1, 0])
        out = chart.render()
        assert "* a" in out
        assert "o b" in out

    def test_flat_series_ok(self):
        chart = AsciiChart(width=20, height=5)
        chart.add_series("a", [0, 1], [5.0, 5.0])
        assert "|" in chart.render()

    def test_validation(self):
        with pytest.raises(ValueError):
            AsciiChart(width=5, height=5)
        chart = AsciiChart(width=20, height=5)
        with pytest.raises(ValueError):
            chart.render()  # no series
        with pytest.raises(ValueError):
            chart.add_series("a", [0, 1], [1.0])
        with pytest.raises(ValueError):
            chart.add_series("a", [], [])

    def test_too_many_series(self):
        chart = AsciiChart(width=20, height=5)
        for k in range(8):
            chart.add_series(f"s{k}", [0, 1], [0, 1])
        with pytest.raises(ValueError):
            chart.add_series("overflow", [0, 1], [0, 1])


class TestHelper:
    def test_chart_time_series(self):
        out = chart_time_series(
            {"x": ([0, 1, 2], [1.0, 2.0, 3.0])}, title="demo", width=24, height=5
        )
        assert out.startswith("demo")
        assert "* x" in out
