"""Tests for repro.hw."""
