"""Tests for the Table IV node catalogue."""

import pytest

from repro.hw.nodespecs import CHETEMI, CHICLET, NodeSpec, spec_by_name


class TestTableIV:
    def test_chetemi_topology(self):
        assert CHETEMI.physical_cores == 20  # 2 x 10
        assert CHETEMI.logical_cpus == 40
        assert CHETEMI.fmax_mhz == 2400.0
        assert CHETEMI.memory_mb == 256 * 1024

    def test_chiclet_topology(self):
        assert CHICLET.physical_cores == 32  # 2 x 16
        assert CHICLET.logical_cpus == 64
        assert CHICLET.fmax_mhz == 2400.0
        assert CHICLET.memory_mb == 128 * 1024

    def test_capacity_mhz_is_eq7_rhs(self):
        assert CHETEMI.capacity_mhz == 40 * 2400
        assert CHICLET.capacity_mhz == 64 * 2400

    def test_table2_workload_fits_chetemi(self):
        """The Eq. 7 balance that forces logical-CPU counting: Table II's
        92 000 MHz demand must fit chetemi."""
        demand = 20 * 2 * 500 + 10 * 4 * 1800
        assert demand == 92_000
        assert demand <= CHETEMI.capacity_mhz

    def test_table3_workload_fits_chiclet(self):
        demand = 32 * 2 * 500 + 16 * 4 * 1800
        assert demand == 147_200
        assert demand <= CHICLET.capacity_mhz

    def test_catalogue_lookup(self):
        assert spec_by_name("chetemi") is CHETEMI
        assert spec_by_name("chiclet") is CHICLET
        with pytest.raises(KeyError):
            spec_by_name("nonexistent")


class TestValidation:
    def test_bad_topology(self):
        with pytest.raises(ValueError):
            NodeSpec("x", "cpu", 0, 1, 1, 2000, 1000, 1024, 0)

    def test_bad_freq_order(self):
        with pytest.raises(ValueError):
            NodeSpec("x", "cpu", 1, 1, 1, 1000, 2000, 1024, 0)

    def test_bad_memory(self):
        with pytest.raises(ValueError):
            NodeSpec("x", "cpu", 1, 1, 1, 2000, 1000, 0, 0)
