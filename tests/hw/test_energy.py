"""Tests for the power/energy model."""

import pytest

from repro.hw.energy import EnergyMeter, PowerModel
from repro.hw.nodespecs import CHETEMI


@pytest.fixture
def model():
    return PowerModel(idle_w=100.0, max_w=200.0, fmax_mhz=2400.0)


class TestPowerModel:
    def test_idle_draw(self, model):
        assert model.power_w(0.0, 1200.0) == pytest.approx(100.0)

    def test_full_draw(self, model):
        assert model.power_w(1.0, 2400.0) == pytest.approx(200.0)

    def test_monotone_in_utilisation(self, model):
        powers = [model.power_w(u, 2400.0) for u in (0.0, 0.25, 0.5, 1.0)]
        assert powers == sorted(powers)

    def test_frequency_quadratic_term(self, model):
        half = model.power_w(1.0, 1200.0)
        full = model.power_w(1.0, 2400.0)
        assert (half - 100.0) == pytest.approx((full - 100.0) / 4.0)

    def test_for_spec_uses_catalogue_values(self):
        m = PowerModel.for_spec(CHETEMI)
        assert m.idle_w == CHETEMI.idle_power_w
        assert m.max_w == CHETEMI.max_power_w

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.power_w(1.5, 2400.0)
        with pytest.raises(ValueError):
            model.power_w(0.5, -1.0)
        with pytest.raises(ValueError):
            PowerModel(idle_w=300.0, max_w=200.0, fmax_mhz=2400.0)


class TestEnergyMeter:
    def test_integration(self, model):
        meter = EnergyMeter(model)
        meter.step(0.0, 1200.0, dt=3600.0)
        assert meter.energy_wh == pytest.approx(100.0)

    def test_average_power(self, model):
        meter = EnergyMeter(model)
        meter.step(0.0, 1200.0, dt=10.0)
        meter.step(1.0, 2400.0, dt=10.0)
        assert meter.average_power_w() == pytest.approx(150.0)

    def test_empty_meter(self, model):
        assert EnergyMeter(model).average_power_w() == 0.0

    def test_negative_dt_rejected(self, model):
        with pytest.raises(ValueError):
            EnergyMeter(model).step(0.5, 2000.0, dt=-1.0)
