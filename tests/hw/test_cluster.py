"""Tests for the cluster description."""

import pytest

from repro.hw.cluster import Cluster, ClusterNode
from repro.hw.nodespecs import CHETEMI, CHICLET


class TestConstruction:
    def test_paper_cluster_composition(self):
        c = Cluster.paper_cluster()
        assert len(c) == 22
        counts = dict((spec.name, n) for spec, n in c.by_spec())
        assert counts == {"chetemi": 12, "chiclet": 10}

    def test_homogeneous(self):
        c = Cluster.homogeneous(CHETEMI, 3)
        assert len(c) == 3
        assert all(n.spec is CHETEMI for n in c)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            Cluster([ClusterNode("a", CHETEMI), ClusterNode("a", CHICLET)])

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Cluster.from_counts({CHETEMI: -1})


class TestQueries:
    def test_total_capacity(self):
        c = Cluster.paper_cluster()
        expected = 12 * 40 * 2400 + 10 * 64 * 2400
        assert c.total_capacity_mhz() == expected

    def test_total_logical_cpus(self):
        assert Cluster.paper_cluster().total_logical_cpus() == 12 * 40 + 10 * 64

    def test_node_lookup(self):
        c = Cluster.paper_cluster()
        assert c.node("chetemi-0").spec is CHETEMI
        with pytest.raises(KeyError):
            c.node("ghost")
