"""Integration-ish tests for the Node assembly."""

import pytest

from repro.cgroups.fs import CgroupVersion
from repro.hw.node import MACHINE_SLICE, Node
from repro.sched.entity import SchedEntity


class TestNodeSetup:
    def test_machine_slice_exists(self, node):
        assert node.fs.exists(MACHINE_SLICE)

    def test_sysfs_matches_core_count(self, node, tiny_spec):
        assert node.sysfs.num_cpus == tiny_spec.logical_cpus

    def test_v1_flavour(self, tiny_spec):
        n = Node(tiny_spec, cgroup_version=CgroupVersion.V1)
        assert n.fs.version is CgroupVersion.V1


class TestEntityRegistry:
    def test_register_and_step(self, node):
        path = f"{MACHINE_SLICE}/vm/vcpu0"
        node.fs.makedirs(path)
        tid = node.procfs.spawn("CPU 0/KVM")
        ent = SchedEntity(tid=tid, cgroup_path=path, demand=1.0)
        node.register_entity(ent)
        node.step(1.0)
        assert ent.allocated == pytest.approx(1.0)

    def test_double_register_rejected(self, node):
        node.fs.makedirs(f"{MACHINE_SLICE}/vm/vcpu0")
        tid = node.procfs.spawn("x")
        ent = SchedEntity(tid=tid, cgroup_path=f"{MACHINE_SLICE}/vm/vcpu0")
        node.register_entity(ent)
        with pytest.raises(ValueError):
            node.register_entity(ent)


class TestStepEffects:
    def _busy_node(self, node, n=4):
        ents = []
        for j in range(n):
            path = f"{MACHINE_SLICE}/vm/vcpu{j}"
            node.fs.makedirs(path)
            tid = node.procfs.spawn(f"CPU {j}/KVM")
            node.fs.attach_thread(path, tid)
            ent = SchedEntity(tid=tid, cgroup_path=path, demand=1.0)
            node.register_entity(ent)
            ents.append(ent)
        return ents

    def test_clock_advances(self, node):
        node.step(0.5)
        node.step(0.5)
        assert node.clock_s == pytest.approx(1.0)

    def test_usage_accounted_in_cgroupfs(self, node):
        self._busy_node(node)
        node.step(1.0)
        usage = node.fs.node(f"{MACHINE_SLICE}/vm/vcpu0").cpu.usage_usec
        assert usage == pytest.approx(1_000_000, rel=0.02)

    def test_dvfs_rises_under_load(self, node):
        self._busy_node(node)
        for _ in range(30):
            node.step(0.5)
        assert node.dvfs.mean_mhz() == pytest.approx(2400.0, abs=20.0)

    def test_sysfs_tracks_dvfs(self, node):
        self._busy_node(node)
        for _ in range(30):
            node.step(0.5)
        khz = node.sysfs.scaling_cur_freq(0)
        assert khz == pytest.approx(node.dvfs.freqs_mhz[0] * 1000.0, rel=0.001)

    def test_procfs_utime_charged(self, node):
        ents = self._busy_node(node)
        node.step(1.0)
        assert node.procfs.stat(ents[0].tid).utime_ticks > 0

    def test_energy_accumulates(self, node):
        self._busy_node(node)
        node.step(1.0)
        assert node.energy.energy_j > 0

    def test_last_core_readable(self, node):
        ents = self._busy_node(node)
        node.step(1.0)
        core = node.last_core_of(ents[0].tid)
        assert 0 <= core < node.spec.logical_cpus
        # and the controller-facing frequency read works for that core
        assert node.core_frequency_mhz(core) >= node.spec.fmin_mhz
