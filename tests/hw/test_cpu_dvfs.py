"""Unit tests for the DVFS frequency model."""

import numpy as np
import pytest

from repro.hw.cpu import DvfsModel


def make(num=4, jitter=0.0, seed=0):
    return DvfsModel(num_cpus=num, fmax_mhz=2400.0, fmin_mhz=1200.0, jitter_mhz=jitter, seed=seed)


class TestDynamics:
    def test_starts_at_fmin(self):
        assert np.allclose(make().freqs_mhz, 1200.0)

    def test_converges_to_fmax_under_load(self):
        m = make()
        for _ in range(50):
            m.step([1.0] * 4, dt=0.5)
        assert np.allclose(m.freqs_mhz, 2400.0, atol=1.0)

    def test_falls_back_to_fmin_when_idle(self):
        m = make()
        for _ in range(50):
            m.step([1.0] * 4, dt=0.5)
        for _ in range(50):
            m.step([0.0] * 4, dt=0.5)
        assert np.allclose(m.freqs_mhz, 1200.0, atol=1.0)

    def test_partial_load_intermediate_frequency(self):
        m = make()
        for _ in range(100):
            m.step([0.6] * 4, dt=0.5)
        # schedutil: 1.25 * 2400 * 0.6 = 1800
        assert np.allclose(m.freqs_mhz, 1800.0, atol=5.0)

    def test_governor_headroom_clamps_at_fmax(self):
        m = make()
        for _ in range(100):
            m.step([0.9] * 4, dt=0.5)
        assert np.all(m.freqs_mhz <= 2400.0)

    def test_per_core_independence(self):
        m = make()
        for _ in range(100):
            m.step([1.0, 0.0, 1.0, 0.0], dt=0.5)
        f = m.freqs_mhz
        assert f[0] > f[1]
        assert f[2] > f[3]


class TestJitter:
    def test_jitter_produces_spread_of_right_magnitude(self):
        m = make(num=64, jitter=100.0, seed=1)
        for _ in range(100):
            m.step([1.0] * 64, dt=0.5)
        # Under full load clamping halves the visible spread; just require
        # the paper-scale ballpark: tens of MHz.
        assert 10.0 < m.std_mhz() < 200.0

    def test_zero_jitter_is_deterministic(self):
        a, b = make(seed=1), make(seed=2)
        for _ in range(10):
            a.step([0.5] * 4, dt=0.5)
            b.step([0.5] * 4, dt=0.5)
        assert np.allclose(a.freqs_mhz, b.freqs_mhz)

    def test_jitter_never_escapes_bounds(self):
        m = make(jitter=500.0, seed=3)
        for _ in range(200):
            m.step([0.5] * 4, dt=0.5)
            assert np.all(m.freqs_mhz >= 1200.0)
            assert np.all(m.freqs_mhz <= 2400.0)


class TestFrequencyDomains:
    def test_domain_cores_share_frequency(self):
        m = DvfsModel(8, 2400.0, 1200.0, domain_size=4, seed=1, jitter_mhz=50.0)
        for _ in range(50):
            m.step([1.0] * 8, dt=0.5)
        f = m.freqs_mhz
        assert np.allclose(f[:4], f[0])
        assert np.allclose(f[4:], f[4])

    def test_hot_core_drags_domain_up(self):
        m = DvfsModel(8, 2400.0, 1200.0, domain_size=4)
        for _ in range(60):
            m.step([1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0], dt=0.5)
        f = m.freqs_mhz
        # whole first domain follows its single busy core
        assert np.allclose(f[:4], 2400.0, atol=5.0)
        assert np.allclose(f[4:], 1200.0, atol=5.0)

    def test_domain_must_divide_core_count(self):
        with pytest.raises(ValueError):
            DvfsModel(6, 2400.0, 1200.0, domain_size=4)
        with pytest.raises(ValueError):
            DvfsModel(8, 2400.0, 1200.0, domain_size=0)

    def test_chiclet_uses_ccx_domains(self):
        from repro.hw.nodespecs import CHETEMI, CHICLET

        assert CHICLET.freq_domain_size == 4
        assert CHETEMI.freq_domain_size == 1

    def test_domain_jitter_moves_whole_domains(self):
        m = DvfsModel(8, 2400.0, 1200.0, domain_size=4, jitter_mhz=100.0, seed=2)
        for _ in range(30):
            m.step([0.5] * 8, dt=0.5)
        f = m.freqs_mhz
        assert f[0] == f[3]
        # two domains carry independent noise: they differ (w.h.p.)
        assert f[0] != f[4]


class TestValidation:
    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            make().step([1.0] * 3, dt=0.5)

    def test_util_out_of_range(self):
        with pytest.raises(ValueError):
            make().step([1.5] * 4, dt=0.5)
        with pytest.raises(ValueError):
            make().step([-0.5] * 4, dt=0.5)

    def test_ctor_validation(self):
        with pytest.raises(ValueError):
            DvfsModel(0, 2400, 1200)
        with pytest.raises(ValueError):
            DvfsModel(1, 1000, 1200)
        with pytest.raises(ValueError):
            DvfsModel(1, 2400, 1200, jitter_mhz=-1)

    def test_freqs_view_read_only(self):
        m = make()
        with pytest.raises(ValueError):
            m.freqs_mhz[0] = 0.0
