"""Tests for the LLC contention model (paper §V future work)."""

import pytest

from repro.hw.cache import CacheContentionModel
from repro.hw.node import MACHINE_SLICE, Node
from repro.sched.entity import SchedEntity
from tests.conftest import TINY


class TestModel:
    def test_no_slowdown_under_subscription(self):
        m = CacheContentionModel(physical_cores=8, alpha=0.2)
        assert m.slowdown(0) == 1.0
        assert m.slowdown(8) == 1.0

    def test_slowdown_grows_with_oversubscription(self):
        m = CacheContentionModel(physical_cores=8, alpha=0.2)
        s16 = m.slowdown(16)  # 2x oversubscribed
        s32 = m.slowdown(32)  # 4x
        assert s32 < s16 < 1.0

    def test_formula(self):
        m = CacheContentionModel(physical_cores=10, alpha=0.5)
        # 20 threads on 10 cores: pressure 1.0 -> 1/(1+0.5)
        assert m.slowdown(20) == pytest.approx(1.0 / 1.5)

    def test_alpha_zero_disables(self):
        m = CacheContentionModel(physical_cores=2, alpha=0.0)
        assert m.slowdown(100) == 1.0

    def test_effective_mhz(self):
        m = CacheContentionModel(physical_cores=10, alpha=0.5)
        assert m.effective_mhz(2400.0, 20) == pytest.approx(1600.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheContentionModel(physical_cores=0)
        with pytest.raises(ValueError):
            CacheContentionModel(physical_cores=1, alpha=-0.1)
        m = CacheContentionModel(physical_cores=1)
        with pytest.raises(ValueError):
            m.slowdown(-1)
        with pytest.raises(ValueError):
            m.effective_mhz(-1.0, 0)


class TestNodeIntegration:
    def _busy(self, node, n):
        for j in range(n):
            path = f"{MACHINE_SLICE}/vm/vcpu{j}"
            node.fs.makedirs(path)
            tid = node.procfs.spawn(f"CPU {j}/KVM")
            node.fs.attach_thread(path, tid)
            node.register_entity(SchedEntity(tid=tid, cgroup_path=path, demand=1.0))

    def test_node_without_cache_passes_frequency_through(self, node):
        assert node.effective_mhz(2400.0) == 2400.0

    def test_node_with_cache_applies_slowdown(self):
        cache = CacheContentionModel(physical_cores=TINY.physical_cores, alpha=0.3)
        node = Node(TINY, cache=cache)
        self._busy(node, 8)  # 8 runnable threads on 2 physical cores
        node.step(1.0)
        assert node.runnable_threads == 8
        assert node.effective_mhz(2400.0) < 2400.0

    def test_cycle_accounting_unaffected_by_cache(self):
        """cpu.stat must report CPU *time*, not cache-degraded work."""
        cache = CacheContentionModel(physical_cores=TINY.physical_cores, alpha=0.5)
        node = Node(TINY, cache=cache)
        self._busy(node, 4)
        node.step(1.0)
        usage = node.fs.node(f"{MACHINE_SLICE}/vm/vcpu0").cpu.usage_usec
        assert usage == pytest.approx(1_000_000, rel=0.02)
