"""Tests for the FaultInjector backend.

The headline guarantee is first: a controller running behind an
injector with an **empty plan** produces a bit-identical report stream
and identical backend stats compared to the bare backend.
"""

import pytest

from repro.cgroups.procfs import parse_stat_line
from repro.core.config import ControllerConfig
from repro.core.controller import VirtualFrequencyController
from repro.faults import ControllerCrash, FaultInjector, FaultPlan, FaultSpec
from repro.hw.node import Node
from repro.virt.hypervisor import Hypervisor
from repro.virt.template import VMTemplate
from tests.conftest import TINY

T = VMTemplate("fault", vcpus=1, vfreq_mhz=1200.0)


def injected_host(plan, *, vms=2, demand=0.8, seed=42):
    """Node + hypervisor + controller running behind a FaultInjector."""
    node = Node(TINY, seed=seed)
    hv = Hypervisor(node)
    injector = FaultInjector(plan, node.fs, node.procfs, node.sysfs)
    ctrl = VirtualFrequencyController(
        injector,
        num_cpus=TINY.logical_cpus,
        fmax_mhz=TINY.fmax_mhz,
        config=ControllerConfig.paper_evaluation(),
    )
    for k in range(vms):
        vm = hv.provision(T, f"{T.name}-{k}")
        ctrl.register_vm(vm.name, T.vfreq_mhz)
        vm.set_uniform_demand(demand)
    return node, hv, injector, ctrl


def bare_host(*, vms=2, demand=0.8, seed=42):
    node = Node(TINY, seed=seed)
    hv = Hypervisor(node)
    ctrl = VirtualFrequencyController(
        node.fs,
        node.procfs,
        node.sysfs,
        num_cpus=TINY.logical_cpus,
        fmax_mhz=TINY.fmax_mhz,
        config=ControllerConfig.paper_evaluation(),
    )
    for k in range(vms):
        vm = hv.provision(T, f"{T.name}-{k}")
        ctrl.register_vm(vm.name, T.vfreq_mhz)
        vm.set_uniform_demand(demand)
    return node, hv, ctrl


def drive(node, ctrl, ticks):
    reports = []
    for k in range(ticks):
        node.step(1.0)
        reports.append(ctrl.tick(float(k + 1)))
    return reports


def signature(report):
    """Everything one iteration decided, minus wall-clock timings."""
    return (
        report.t,
        tuple(report.samples),
        dict(report.decisions),
        dict(report.allocations),
        report.market_initial,
        report.auction,
        report.freely_distributed,
        dict(report.wallets),
        dict(report.degraded),
    )


class TestEmptyPlanIsFree:
    def test_bit_identical_reports_and_stats(self):
        """The acceptance criterion: an empty plan changes nothing."""
        node_a, _, ctrl_a = bare_host()
        node_b, _, injector, ctrl_b = injected_host(FaultPlan())
        bare = drive(node_a, ctrl_a, 8)
        faulted = drive(node_b, ctrl_b, 8)
        assert [signature(r) for r in bare] == [signature(r) for r in faulted]
        assert ctrl_a.backend.stats.as_dict() == injector.stats.as_dict()
        assert injector.injected == {}

    def test_empty_plan_never_consumes_rng(self):
        plan = FaultPlan(seed=5)
        node, _, injector, ctrl = injected_host(plan)
        drive(node, ctrl, 4)
        assert plan._rng.random() == FaultPlan(seed=5)._rng.random()


class TestFaultKinds:
    def test_read_error_failfast_raises(self):
        plan = FaultPlan([FaultSpec("read_error", "*/cpu.stat")])
        node, _, injector, ctrl = injected_host(plan)
        node.step(1.0)
        with pytest.raises(OSError):
            ctrl.tick(1.0)

    def test_read_error_tolerant_skips_vcpu(self):
        plan = FaultPlan(
            [FaultSpec("read_error", "*/fault-0/vcpu0/cpu.stat")]
        )
        node, _, injector, ctrl = injected_host(plan)
        injector.tolerate_errors = True
        node.step(1.0)
        report = ctrl.tick(1.0)
        observed = {s.vm_name for s in report.samples}
        assert observed == {"fault-1"}
        assert injector.stats.read_errors == 1
        assert injector.stats.vcpu_skips == 1
        assert injector.injected["read_error"] == 1

    def test_freeze_serves_stale_content(self):
        plan = FaultPlan([FaultSpec("freeze", "*/fault-0/vcpu0/cpu.stat")])
        node, hv, injector, _ = injected_host(plan)
        injector.tick_index = 0
        path = "/machine.slice/fault-0/vcpu0/cpu.stat"
        node.step(1.0)
        first = injector.read_file(path)
        node.step(1.0)  # the real counter advances...
        assert node.fs.read(path) != first
        assert injector.read_file(path) == first  # ...the frozen one doesn't
        assert injector.injected["freeze"] == 1

    def test_tid_vanish(self):
        plan = FaultPlan([FaultSpec("tid_vanish", "tid:*")])
        node, _, injector, _ = injected_host(plan)
        injector.tick_index = 0
        tid = int(
            node.fs.read("/machine.slice/fault-0/vcpu0/cgroup.threads").split()[0]
        )
        with pytest.raises(ProcessLookupError):
            injector.read_thread_stat(tid)
        assert injector.injected["tid_vanish"] == 1

    def test_tid_reuse_returns_foreign_thread(self):
        plan = FaultPlan([FaultSpec("tid_reuse", "tid:*")])
        node, _, injector, _ = injected_host(plan)
        injector.tick_index = 0
        tid = int(
            node.fs.read("/machine.slice/fault-0/vcpu0/cgroup.threads").split()[0]
        )
        stat = parse_stat_line(injector.read_thread_stat(tid))
        assert stat.tid == tid  # the number was reused...
        assert stat.comm == "not-a-vcpu"  # ...by somebody else
        assert stat.processor == 0

    def test_freq_error_targets_one_core(self):
        plan = FaultPlan([FaultSpec("freq_error", "core:0")])
        node, _, injector, _ = injected_host(plan)
        injector.tick_index = 0
        with pytest.raises(OSError):
            injector.core_freq_khz(0)
        assert injector.core_freq_khz(1) > 0
        assert injector.injected["freq_error"] == 1

    def test_write_error_lands_in_last_write_errors(self):
        plan = FaultPlan([FaultSpec("write_error", "*/cpu.max", error="EBUSY")])
        node, _, injector, _ = injected_host(plan)
        injector.tolerate_errors = True
        injector.tick_index = 0
        path = "/machine.slice/fault-0/vcpu0"
        written = injector.write_caps({path: 50_000}, 100_000)
        assert written == {}
        assert path in injector.last_write_errors
        assert injector.stats.write_errors == 1

    def test_write_error_failfast_raises(self):
        plan = FaultPlan([FaultSpec("write_error", "*/cpu.max")])
        node, _, injector, _ = injected_host(plan)
        injector.tick_index = 0
        with pytest.raises(OSError):
            injector.write_caps({"/machine.slice/fault-0/vcpu0": 50_000}, 100_000)

    def test_clock_jitter_fires_every_tick(self):
        plan = FaultPlan([FaultSpec("clock_jitter", "tick", jitter_frac=0.1)])
        node, _, injector, ctrl = injected_host(plan)
        drive(node, ctrl, 3)
        assert injector.injected["clock_jitter"] == 3

    def test_crash_at_monitor_boundary(self):
        plan = FaultPlan(
            [FaultSpec("crash", "stage:monitor", start_tick=1, end_tick=2)]
        )
        node, _, injector, ctrl = injected_host(plan)
        node.step(1.0)
        ctrl.tick(1.0)  # tick 0: fine
        node.step(1.0)
        with pytest.raises(ControllerCrash):
            ctrl.tick(2.0)  # tick 1: dies at the stage boundary
        assert injector.injected["crash"] == 1

    def test_crash_is_not_an_oserror(self):
        """Resilience policies absorb OSErrors; a crash must escape even
        a tolerant backend."""
        assert not issubclass(ControllerCrash, OSError)

    def test_crash_at_enforce_boundary(self):
        plan = FaultPlan([FaultSpec("crash", "stage:enforce")])
        node, _, injector, ctrl = injected_host(plan)
        node.step(1.0)
        with pytest.raises(ControllerCrash):
            ctrl.tick(1.0)


class TestWrap:
    def test_wrap_carries_warm_state(self):
        node, _, ctrl = bare_host()
        drive(node, ctrl, 3)
        backend = ctrl.backend
        injector = FaultInjector.wrap(backend, FaultPlan())
        assert injector._prev_usage == backend._prev_usage
        assert injector._last_cap == backend._last_cap
