"""Tests for FaultSpec/FaultPlan: validation, windows, determinism, JSON."""

import pytest

from repro.faults import FAULT_KINDS, FaultPlan, FaultSpec


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meteor_strike")

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("read_error", start_tick=5, end_tick=5)
        with pytest.raises(ValueError):
            FaultSpec("read_error", start_tick=-1)

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("read_error", probability=0.0)
        with pytest.raises(ValueError):
            FaultSpec("read_error", probability=1.5)

    def test_unknown_errno_rejected(self):
        with pytest.raises(ValueError, match="unknown errno"):
            FaultSpec("read_error", error="EWHATEVER")

    def test_window_semantics(self):
        spec = FaultSpec("read_error", start_tick=3, end_tick=5)
        assert not spec.active_at(2)
        assert spec.active_at(3)
        assert spec.active_at(4)
        assert not spec.active_at(5)  # [start, end)
        forever = FaultSpec("read_error", start_tick=1)
        assert forever.active_at(10_000)

    def test_error_types_match_kernel_semantics(self):
        assert isinstance(
            FaultSpec("read_error", error="ENOENT").make_error("x"),
            FileNotFoundError,
        )
        assert isinstance(
            FaultSpec("tid_vanish", error="ESRCH").make_error("x"),
            ProcessLookupError,
        )
        eio = FaultSpec("read_error", error="EIO").make_error("x")
        assert isinstance(eio, OSError)
        assert not isinstance(eio, FileNotFoundError)

    def test_glob_matching(self):
        spec = FaultSpec("read_error", "*/vm-1/*/cpu.stat")
        assert spec.matches("/machine.slice/vm-1/vcpu0/cpu.stat")
        assert not spec.matches("/machine.slice/vm-2/vcpu0/cpu.stat")


class TestFaultPlan:
    def test_empty_plan_draws_nothing(self):
        plan = FaultPlan()
        for kind in FAULT_KINDS:
            assert plan.draw(kind, "anything", 0) is None

    def test_scheduled_spec_fires_only_in_window(self):
        plan = FaultPlan([FaultSpec("read_error", "*", start_tick=2, end_tick=4)])
        assert plan.draw("read_error", "/p", 1) is None
        assert plan.draw("read_error", "/p", 2) is not None
        assert plan.draw("read_error", "/p", 4) is None

    def test_same_seed_same_sequence(self):
        def sequence(seed):
            plan = FaultPlan(
                [FaultSpec("write_error", probability=0.5)], seed=seed
            )
            return [
                plan.draw("write_error", "/p", t) is not None for t in range(200)
            ]

        assert sequence(7) == sequence(7)
        assert sequence(7) != sequence(8)

    def test_reset_replays_identically(self):
        plan = FaultPlan([FaultSpec("write_error", probability=0.5)], seed=3)
        first = [plan.draw("write_error", "/p", t) is not None for t in range(100)]
        plan.reset()
        again = [plan.draw("write_error", "/p", t) is not None for t in range(100)]
        assert first == again

    def test_probability_one_consumes_no_rng(self):
        """Deterministic specs must not perturb the draw stream of
        probabilistic ones."""
        base = FaultPlan([FaultSpec("write_error", probability=0.5)], seed=3)
        mixed = FaultPlan(
            [
                FaultSpec("read_error", probability=1.0),
                FaultSpec("write_error", probability=0.5),
            ],
            seed=3,
        )
        seq = []
        seq_mixed = []
        for t in range(100):
            seq.append(base.draw("write_error", "/p", t) is not None)
            mixed.draw("read_error", "/p", t)
            seq_mixed.append(mixed.draw("write_error", "/p", t) is not None)
        assert seq == seq_mixed

    def test_json_roundtrip(self, tmp_path):
        plan = FaultPlan.standard_mix(seed=11, crash_tick=9)
        path = str(tmp_path / "plan.json")
        plan.save(path)
        loaded = FaultPlan.load(path)
        assert loaded.seed == plan.seed
        assert [s.as_dict() for s in loaded.specs] == [
            s.as_dict() for s in plan.specs
        ]

    def test_standard_mix_covers_the_taxonomy(self):
        plan = FaultPlan.standard_mix(crash_tick=5)
        kinds = {s.kind for s in plan.specs}
        assert {"read_error", "write_error", "freeze", "clock_jitter",
                "tid_vanish", "crash"} <= kinds
