# Convenience targets for the reproduction package.

PYTHON ?= python

.PHONY: install test coverage fuzz-smoke fuzz-long billing-smoke slo-smoke bench bench-smoke bench-faults-smoke bench-perf-smoke bench-bulk-smoke bench-obs-smoke bench-rebalance-smoke bench-cluster-smoke bench-slo-smoke obs-smoke examples figures clean

install:
	pip install -e '.[dev]'

test:
	$(PYTHON) -m pytest tests/

# tests with line coverage and the CI fail-under gate (needs pytest-cov,
# installed by `make install`)
coverage:
	$(PYTHON) -m pytest tests/ --cov=repro --cov-report=term-missing --cov-fail-under=73

# seeded scenario fuzz with every paper-equation oracle armed: 25 seeds
# x 200 ticks x 2 engines = 10k engine-ticks, cross-engine bit-identity
# checked each tick (CI gate: zero invariant violations)
fuzz-smoke:
	PYTHONPATH=src $(PYTHON) -m repro check fuzz --seeds 25 --ticks 200 --repro-dir fuzz-repros

# the nightly long-run variant: 50 seeds x 1000 ticks x 2 engines =
# 100k engine-ticks; failing seeds are shrunk into fuzz-repros/
fuzz-long:
	PYTHONPATH=src $(PYTHON) -m repro check fuzz --seeds 50 --ticks 1000 --repro-dir fuzz-repros

# fuzzed multi-tenant metering: 17 seeds x 200 ticks x 3 engines =
# 10.2k metered engine-ticks, every invoice line re-derived from the
# decision ledger by the billing oracle with exact equality (CI gate:
# zero billing violations; failing seeds shrink into billing-repros/)
billing-smoke:
	PYTHONPATH=src $(PYTHON) -m repro bill fuzz --seeds 17 --ticks 200 --tenants 3 --engine all --repro-dir billing-repros

# fuzzed SLO-plane audit: 3 seeds x 150 ticks x 3 engines with the
# plane + billing attached, three gates armed per seed — cross-engine
# alert-stream equality, byte-identical ledgers across replays, and
# report-stream transparency against a detached run (CI gate: zero
# failing seeds; alert ledgers + summary land in slo-artefacts/)
slo-smoke:
	PYTHONPATH=src $(PYTHON) -m repro slo eval --seeds 3 --ticks 150 --tenants 3 --engine all --out slo-artefacts

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# quick backend-batching A/B with tiny parameters (CI gate: the batched
# backend must issue strictly fewer fs ops/tick than the seed walk, with
# a bit-identical report stream)
bench-smoke:
	BENCH_SMOKE=1 PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_backend_batching.py --benchmark-only -q

# quick chaos drill (CI gate: under the standard fault mix + one crash
# the control plane never dies unrecovered, healthy nodes tick every
# period, and occluded vCPUs hold their Eq. 2 guarantee)
bench-faults-smoke:
	BENCH_SMOKE=1 PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_fault_resilience.py --benchmark-only -q

# quick scalar-vs-vectorised engine A/B (CI gate: the report streams
# must stay bit-identical and the vectorised per-tick cost may not
# regress >25% against the committed BENCH_controller.json baseline;
# override the tolerance with PERF_TOLERANCE=0.40 etc.)
bench-perf-smoke:
	BENCH_SMOKE=1 PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_scaling.py -k engine_speedup --benchmark-only -q
	PYTHONPATH=src $(PYTHON) benchmarks/check_perf_regression.py

# quick bulk-engine + sharded control-plane bench (CI gates: three-way
# report bit-identity, the bulk full tick and per-stage costs — stages 1
# and 6 included — within tolerance of the committed baseline, and the
# dense-host single-process tick inside one 1 s control period)
bench-bulk-smoke:
	BENCH_SMOKE=1 PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_bulk.py --benchmark-only -q
	PYTHONPATH=src $(PYTHON) benchmarks/check_perf_regression.py

# quick observability-overhead A/B (CI gate: a disabled hub stays
# within noise of the bare controller and full-fidelity recording —
# spans + ledger + flight frames — fits inside 5% of one control
# period per tick)
bench-obs-smoke:
	BENCH_SMOKE=1 PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_obs_overhead.py --benchmark-only -q

# quick chaos+churn rebalancer A/B on 8 nodes (CI gates: the rebalancer
# must beat static placement on total guarantee-violation VM-seconds and
# the planner round cost may not regress against the committed
# BENCH_rebalance.json baseline)
bench-rebalance-smoke:
	BENCH_SMOKE=1 PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_rebalance.py --benchmark-only -q
	PYTHONPATH=src $(PYTHON) benchmarks/check_perf_regression.py

# quick cluster-plane scale pass: 64-node chaos control loop on the
# arrays dialect + 8-node threaded/sharded/shared-memory tick parity
# (CI gates: snapshot+plan p50 and the sharded shm tick fit one control
# period; no gated leaf regresses against the committed baselines)
bench-cluster-smoke:
	BENCH_SMOKE=1 PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_cluster_scale.py --benchmark-only -q
	PYTHONPATH=src $(PYTHON) benchmarks/check_perf_regression.py

# quick SLO-plane scrape cost at 64 nodes (CI gates: the ingest+evaluate
# p50 fits one control period outright and no gated leaf regresses
# against the committed BENCH_slo.json baseline)
bench-slo-smoke:
	BENCH_SMOKE=1 PYTHONPATH=src $(PYTHON) -m pytest benchmarks/bench_slo_overhead.py --benchmark-only -q
	PYTHONPATH=src $(PYTHON) benchmarks/check_perf_regression.py

# boot the /metrics endpoint on a live observed host and scrape it once
# (CI gate: exposition format parses, every family appears exactly once)
obs-smoke:
	PYTHONPATH=src $(PYTHON) -m repro serve-metrics --self-test --ticks 5

# the printed tables + CSVs for every paper figure/table
figures: bench
	@echo "tables  -> benchmarks/artefacts.log"
	@echo "csv     -> benchmarks/results/"

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/cluster_placement.py
	$(PYTHON) examples/dynamic_qos.py
	$(PYTHON) examples/datacenter.py
	$(PYTHON) examples/multi_tenant_node.py --fast
	$(PYTHON) examples/burst_vs_vfreq.py

clean:
	rm -rf benchmarks/artefacts.log benchmarks/results .pytest_cache fuzz-repros billing-repros slo-artefacts .coverage
	find . -name __pycache__ -type d -exec rm -rf {} +
