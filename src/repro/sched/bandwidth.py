"""CFS bandwidth control bookkeeping.

The kernel enforces ``cpu.max`` per enforcement period (default 100 ms):
a cgroup may consume at most ``quota_us`` of CPU time per ``period_us``
of wall time, across all its threads.  At the sub-tick granularity of the
simulator the enforcement is rate-based — a cgroup's cap for a tick of
``dt`` wall-seconds is ``ratio * dt`` CPU-seconds, where ``ratio`` is
``quota/period`` — which is the steady-state behaviour of the kernel's
per-period token refill and matches what a 1 Hz controller observes.

Throttle statistics (``nr_periods``/``nr_throttled``) are still counted
per *kernel* period so ``cpu.stat`` looks like the real file.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cgroups.cpu import QuotaSpec


@dataclass
class BandwidthState:
    """Per-cgroup bandwidth enforcement state."""

    quota: QuotaSpec
    wall_elapsed_us: float = 0.0
    periods_accounted: int = 0

    def cap_for(self, dt: float) -> float:
        """CPU-seconds this cgroup may consume during ``dt`` wall-seconds."""
        if dt < 0:
            raise ValueError("negative dt")
        ratio = self.quota.ratio()
        if ratio == float("inf"):
            return float("inf")
        return ratio * dt

    def elapsed_periods(self, dt: float) -> int:
        """Advance wall time; return how many enforcement periods completed.

        Used to emit ``nr_periods`` increments at the kernel's cadence.
        """
        self.wall_elapsed_us += dt * 1e6
        total = int(self.wall_elapsed_us // self.quota.period_us)
        fresh = total - self.periods_accounted
        self.periods_accounted = total
        return fresh
