"""Weighted max-min fair sharing (progressive filling), vectorised.

This is the primitive the whole scheduler reduces to: distribute a scalar
``capacity`` among entities with ``weights`` and per-entity upper
``limits`` (demand, quota, or one-core caps) such that the result is
*weighted max-min fair*:

* no entity receives more than its limit,
* total allocated = min(capacity, sum of limits),
* unsaturated entities receive shares proportional to their weights.

The exact solution is computed in O(n log n) by processing entities in
increasing ``limit / weight`` order — once the entity with the smallest
normalised limit is settled, the rest reduces to the same problem on the
remaining capacity (standard progressive-filling argument).  All heavy
lifting is NumPy-vectorised; no Python-level loop over entities.
"""

from __future__ import annotations

import numpy as np


def weighted_fair_share(
    capacity: float,
    weights: np.ndarray,
    limits: np.ndarray,
) -> np.ndarray:
    """Return the weighted max-min fair allocation vector.

    Parameters
    ----------
    capacity:
        Total divisible resource (e.g. CPU-seconds in a tick). Must be
        finite and >= 0.
    weights:
        Strictly positive entity weights.
    limits:
        Per-entity caps (>= 0, ``inf`` allowed). An entity never receives
        more than its limit.
    """
    weights = np.asarray(weights, dtype=np.float64)
    limits = np.asarray(limits, dtype=np.float64)
    if weights.shape != limits.shape or weights.ndim != 1:
        raise ValueError("weights and limits must be equal-length 1-D arrays")
    n = weights.size
    if n == 0:
        return np.zeros(0)
    if not np.isfinite(capacity) or capacity < 0:
        raise ValueError(f"capacity must be finite and >= 0, got {capacity}")
    if np.any(weights <= 0) or not np.all(np.isfinite(weights)):
        raise ValueError("weights must be strictly positive and finite")
    if np.any(limits < 0) or np.any(np.isnan(limits)):
        raise ValueError("limits must be >= 0 and not NaN")

    if capacity == 0.0:
        return np.zeros(n)

    # Order by normalised limit; entities that saturate first come first.
    norm = limits / weights
    order = np.argsort(norm, kind="stable")
    w_sorted = weights[order]
    l_sorted = limits[order]

    # After the k entities with the smallest normalised limits saturate,
    # the shared fill level is (capacity - sum of their limits) divided by
    # the remaining weight.  Find the largest k for which entity k's
    # normalised limit is still below that level (i.e. it does saturate).
    cum_limits = np.concatenate(([0.0], np.cumsum(l_sorted)))
    cum_weights = np.concatenate(([0.0], np.cumsum(w_sorted)))
    total_weight = cum_weights[-1]
    remaining_cap = capacity - cum_limits[:-1]  # before settling entity k
    remaining_w = total_weight - cum_weights[:-1]
    with np.errstate(divide="ignore", invalid="ignore"):
        level = np.where(remaining_w > 0, remaining_cap / remaining_w, np.inf)
    saturates = norm[order] <= level
    # `saturates` is a prefix property: once an entity does not saturate,
    # no later (larger-normalised-limit) entity can.  Find the boundary.
    k = int(np.argmin(saturates)) if not saturates.all() else n

    alloc_sorted = np.empty(n)
    alloc_sorted[:k] = l_sorted[:k]
    if k < n:
        fill = max(0.0, (capacity - cum_limits[k]) / (total_weight - cum_weights[k]))
        alloc_sorted[k:] = np.minimum(l_sorted[k:], fill * w_sorted[k:])

    alloc = np.empty(n)
    alloc[order] = alloc_sorted
    return alloc


def proportional_share(capacity: float, demands: np.ndarray) -> np.ndarray:
    """Split ``capacity`` proportionally to ``demands``, capped by demand.

    Used by stage 5 of the controller (free distribution of leftover
    market cycles, paper §III-B5).  When total demand <= capacity every
    demand is fully satisfied; otherwise each entity receives
    ``capacity * demand_i / total_demand``.
    """
    demands = np.asarray(demands, dtype=np.float64)
    if demands.ndim != 1:
        raise ValueError("demands must be 1-D")
    if np.any(demands < 0) or np.any(np.isnan(demands)):
        raise ValueError("demands must be >= 0 and not NaN")
    total = float(demands.sum())
    if total <= 0.0 or capacity <= 0.0:
        return np.zeros_like(demands)
    if total <= capacity:
        return demands.copy()
    return demands * (capacity / total)
