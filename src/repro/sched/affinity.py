"""Thread → core placement model.

The controller estimates a vCPU's virtual frequency from the frequency of
the core the thread *last ran on* (``/proc/<tid>/stat`` field 39).  The
paper's §III-B1 assumption is that heavily loaded threads migrate rarely
while lightly loaded threads move often — and that under load all cores
run at about the same frequency, so occasional stale locations are
harmless.  This model reproduces exactly that: sticky placement for busy
threads, frequent rebalancing for idle ones, deterministic via a seeded
RNG.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

#: Threads above this utilisation are considered "busy" and sticky.
BUSY_THRESHOLD: float = 0.5

#: Per-tick migration probability for busy / idle threads.
BUSY_MIGRATION_P: float = 0.02
IDLE_MIGRATION_P: float = 0.5


class AffinityModel:
    """Tracks which core each thread last ran on."""

    def __init__(self, num_cpus: int, seed: int = 0) -> None:
        if num_cpus <= 0:
            raise ValueError("num_cpus must be positive")
        self.num_cpus = num_cpus
        self._rng = np.random.default_rng(seed)
        self._placement: Dict[int, int] = {}

    def core_of(self, tid: int) -> int:
        """Last core the thread ran on (threads start on a random core)."""
        core = self._placement.get(tid)
        if core is None:
            core = int(self._rng.integers(self.num_cpus))
            self._placement[tid] = core
        return core

    def forget(self, tid: int) -> None:
        self._placement.pop(tid, None)

    def step(self, tids: Sequence[int], utilisations: Sequence[float], dt: float) -> List[int]:
        """Advance placement one tick; returns the (new) core per thread.

        ``utilisations`` are per-thread fractions of one core consumed in
        the elapsed tick.  Migration probabilities are scaled by ``dt`` so
        the model is tick-size independent.
        """
        if len(tids) != len(utilisations):
            raise ValueError("tids and utilisations length mismatch")
        cores: List[int] = []
        util = np.asarray(utilisations, dtype=np.float64)
        busy = util >= BUSY_THRESHOLD
        p_move = np.where(busy, BUSY_MIGRATION_P, IDLE_MIGRATION_P) * min(dt, 1.0)
        moves = self._rng.random(len(tids)) < p_move
        targets = self._rng.integers(self.num_cpus, size=len(tids))
        for tid, mv, target in zip(tids, moves, targets):
            if mv or tid not in self._placement:
                self._placement[tid] = int(target)
            cores.append(self._placement[tid])
        return cores

    def load_per_core(self, tids: Sequence[int], utilisations: Sequence[float]) -> np.ndarray:
        """Aggregate thread utilisation onto cores (for the DVFS model).

        CFS load-balances continuously, so in addition to the discrete
        placement we spread each thread's load over its core with any
        overflow shared evenly — giving smooth per-core utilisation that
        still correlates with placement.
        """
        load = np.zeros(self.num_cpus)
        for tid, util in zip(tids, utilisations):
            load[self.core_of(tid)] += util
        # Kernel load balancing: shave overload above 1.0 and spread it.
        overflow = np.clip(load - 1.0, 0.0, None).sum()
        load = np.clip(load, 0.0, 1.0)
        headroom = 1.0 - load
        total_headroom = headroom.sum()
        if overflow > 0 and total_headroom > 0:
            load += headroom * min(1.0, overflow / total_headroom)
        return load
