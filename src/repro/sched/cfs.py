"""Hierarchical CFS-like scheduler over a cgroup tree.

One call to :meth:`CfsScheduler.schedule` distributes ``num_cpus * dt``
CPU-seconds of machine capacity for one simulation tick:

1. *Bottom-up* — compute, for every cgroup, the most CPU time its subtree
   could absorb this tick: thread demand (capped at one core per thread,
   like a single kernel thread), then the cgroup's own bandwidth cap
   (``cpu.max``), then the parent's, recursively.
2. *Top-down* — at every level, split the amount granted to a cgroup
   among its children by weighted max-min fairness
   (:func:`repro.sched.fairshare.weighted_fair_share`) using the
   children's ``cpu.weight``.

This reproduces the two properties the paper's evaluation hinges on:

* **Per-VM fairness** (§IV-A2): CPU time is divided between VM cgroups
  first, so 20 two-vCPU VMs collectively out-receive 10 four-vCPU VMs.
* **Quota enforcement**: a vCPU cgroup with ``cpu.max = q p`` never
  exceeds ``q/p`` cores, which is the knob the controller actuates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cgroups.fs import CgroupFS
from repro.cgroups.group import CgroupNode
from repro.sched.entity import SchedEntity
from repro.sched.fairshare import weighted_fair_share


@dataclass
class GroupAllocation:
    """Per-cgroup outcome of one scheduling tick."""

    path: str
    limit: float
    granted: float
    throttled: bool


@dataclass
class _NodeState:
    group: CgroupNode
    entities: List[SchedEntity] = field(default_factory=list)
    children: List["_NodeState"] = field(default_factory=list)
    limit: float = 0.0
    raw_limit: float = 0.0  # before this cgroup's own quota cap
    granted: float = 0.0


class CfsScheduler:
    """Weighted hierarchical fair-share scheduler with bandwidth caps."""

    def __init__(self, fs: CgroupFS, num_cpus: int) -> None:
        if num_cpus <= 0:
            raise ValueError(f"num_cpus must be positive, got {num_cpus}")
        self.fs = fs
        self.num_cpus = num_cpus

    def schedule(
        self,
        entities: List[SchedEntity],
        dt: float,
        *,
        charge_accounting: bool = True,
    ) -> Dict[str, GroupAllocation]:
        """Run one tick; grants CPU time to ``entities`` in place.

        Returns per-cgroup allocation info keyed by cgroup path.
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        by_path: Dict[str, List[SchedEntity]] = {}
        for ent in entities:
            ent.allocated = 0.0
            by_path.setdefault(ent.cgroup_path, []).append(ent)

        root_state = self._build(self.fs.root, by_path, dt)
        capacity = min(self.num_cpus * dt, root_state.limit)
        self._distribute(root_state, capacity, dt)

        result: Dict[str, GroupAllocation] = {}
        self._collect(root_state, dt, charge_accounting, result)
        return result

    # -- pass 1: bottom-up limits ------------------------------------------------

    def _build(
        self,
        group: CgroupNode,
        by_path: Dict[str, List[SchedEntity]],
        dt: float,
    ) -> _NodeState:
        state = _NodeState(group=group, entities=by_path.get(group.path, []))
        raw = sum(min(e.demand, 1.0) * dt for e in state.entities)
        for child in group.children.values():
            child_state = self._build(child, by_path, dt)
            state.children.append(child_state)
            raw += child_state.limit
        state.raw_limit = raw
        cap = group.cpu.quota.ratio() * dt
        state.limit = min(raw, cap) if cap != float("inf") else raw
        return state

    # -- pass 2: top-down distribution --------------------------------------------

    def _distribute(self, state: _NodeState, granted: float, dt: float) -> None:
        state.granted = min(granted, state.limit)
        n_groups = len(state.children)
        n_threads = len(state.entities)
        if n_groups + n_threads == 0:
            return
        # Fast paths for the dominant shapes: a vCPU cgroup holds exactly
        # one thread and a VM cgroup often has one child — max-min over a
        # single entity is just min(granted, limit), no array machinery.
        if n_groups == 0 and n_threads == 1:
            ent = state.entities[0]
            ent.grant(min(state.granted, min(ent.demand, 1.0) * dt))
            return
        if n_groups == 1 and n_threads == 0:
            self._distribute(state.children[0], state.granted, dt)
            return
        # Ample capacity: when the grant covers the whole raw demand of
        # this subtree, every child simply receives its own limit.
        if state.granted >= state.raw_limit - 1e-12 and state.raw_limit <= state.limit:
            for child in state.children:
                self._distribute(child, child.limit, dt)
            for ent in state.entities:
                ent.grant(min(ent.demand, 1.0) * dt)
            return

        weights = np.empty(n_groups + n_threads)
        limits = np.empty(n_groups + n_threads)
        for k, child in enumerate(state.children):
            weights[k] = child.group.cpu.weight
            limits[k] = child.limit
        for k, ent in enumerate(state.entities):
            # A bare thread competes like a default-weight sibling cgroup,
            # scaled by its own sched weight (nice level analogue).
            weights[n_groups + k] = 100.0 * ent.weight
            limits[n_groups + k] = min(ent.demand, 1.0) * dt

        alloc = weighted_fair_share(state.granted, weights, limits)
        for k, child in enumerate(state.children):
            self._distribute(child, float(alloc[k]), dt)
        for k, ent in enumerate(state.entities):
            ent.grant(float(alloc[n_groups + k]))

    # -- pass 3: accounting ----------------------------------------------------------

    def _collect(
        self,
        state: _NodeState,
        dt: float,
        charge: bool,
        out: Dict[str, GroupAllocation],
    ) -> float:
        subtree_used = sum(e.allocated for e in state.entities)
        for child in state.children:
            subtree_used += self._collect(child, dt, charge, out)
        throttled = (
            state.group.cpu.quota.ratio() != float("inf")
            and state.raw_limit > state.limit + 1e-12
        )
        if charge:
            state.group.cpu.charge(subtree_used * 1e6)
        out[state.group.path] = GroupAllocation(
            path=state.group.path,
            limit=state.limit,
            granted=state.granted,
            throttled=throttled,
        )
        return subtree_used


def flat_fair_split(
    num_cpus: int,
    dt: float,
    demands: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Non-hierarchical reference: fair-share directly among threads.

    Used in tests to contrast with the hierarchical behaviour the paper
    demonstrates (experiments a/b in §IV-A2).
    """
    demands = np.asarray(demands, dtype=np.float64)
    if weights is None:
        weights = np.ones_like(demands)
    from repro.sched.fairshare import weighted_fair_share

    limits = np.minimum(demands, 1.0) * dt
    return weighted_fair_share(num_cpus * dt, weights, limits)
