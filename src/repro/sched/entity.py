"""Scheduling entities: the leaf threads the scheduler dispatches.

Each vCPU is exactly one kernel thread (KVM model); the scheduler sees a
flat list of :class:`SchedEntity` leaves grouped by their cgroup path.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SchedEntity:
    """One runnable thread.

    ``demand`` is the fraction of one core the thread wants this tick
    (set by the workload model each step); ``allocated`` is what the
    scheduler granted (CPU-seconds).
    """

    tid: int
    cgroup_path: str
    weight: float = 1.0
    demand: float = 0.0
    allocated: float = 0.0
    total_cpu_seconds: float = field(default=0.0, repr=False)

    def set_demand(self, fraction: float) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"demand must be in [0, 1], got {fraction}")
        self.demand = fraction

    def grant(self, cpu_seconds: float) -> None:
        if cpu_seconds < 0:
            raise ValueError("negative grant")
        self.allocated = cpu_seconds
        self.total_cpu_seconds += cpu_seconds
