"""CFS-like hierarchical fair-share scheduler with bandwidth control.

At the one-second granularity the paper's controller operates on, the
Linux Completely Fair Scheduler behaves as hierarchical *weighted max-min
fair sharing* of CPU time among cgroups, bounded by each cgroup's CFS
bandwidth quota.  The paper's own experiments (§IV-A2, experiments a/b)
demonstrate exactly this hierarchical property: CPU time is split fairly
between *VM cgroups*, not between vCPUs, which is what makes
configuration A favour the numerous small VMs.
"""

from repro.sched.fairshare import weighted_fair_share
from repro.sched.entity import SchedEntity
from repro.sched.bandwidth import BandwidthState
from repro.sched.cfs import CfsScheduler, GroupAllocation
from repro.sched.affinity import AffinityModel

__all__ = [
    "weighted_fair_share",
    "SchedEntity",
    "BandwidthState",
    "CfsScheduler",
    "GroupAllocation",
    "AffinityModel",
]
