"""Deterministic fault injection for the controller's kernel seam.

See :mod:`repro.faults.plan` for the fault taxonomy and plan format,
and :mod:`repro.faults.injector` for the backend-level injector.  The
defensive counterpart lives in :mod:`repro.core.resilience` — core
never imports this package.
"""

from repro.faults.injector import ControllerCrash, FaultInjector
from repro.faults.plan import ERRNO_BY_NAME, FAULT_KINDS, FaultPlan, FaultSpec

__all__ = [
    "ControllerCrash",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FAULT_KINDS",
    "ERRNO_BY_NAME",
]
