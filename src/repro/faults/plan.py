"""Deterministic, seeded fault plans for the kernel-surface seam.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries plus one
seeded RNG.  Each spec names a fault *kind* from the taxonomy below, a
target pattern (an ``fnmatch`` glob over the operation's target string),
a tick window during which it is armed, and a per-opportunity firing
probability — so both **scheduled** faults ("cpu.stat of vm-3 returns
EIO from tick 10 to 20") and **probabilistic** fault mixes ("2 % of all
cap writes fail with EBUSY") are expressed in the same structure, and
the same seed always reproduces the same fault sequence on the same
workload.

Fault taxonomy (``FaultSpec.kind``) and the target string each kind is
matched against:

===============  ==========================  =================================
kind             target                      effect at the seam
===============  ==========================  =================================
``read_error``   cgroup file / dir path      ``read()``/``readdir()`` raises
                                             ``spec.error`` (EIO, ENOENT, ...)
``write_error``  cgroup file path            ``cpu.max`` write raises
                                             ``spec.error`` (EIO, EBUSY, ...);
                                             v1 quota/period pairs can be left
                                             half-applied
``freeze``       cgroup file path            read returns the last-seen
                                             content — a stale/frozen counter
``tid_vanish``   ``tid:<n>``                 ``/proc/<tid>/stat`` raises
                                             ``ProcessLookupError`` (thread
                                             churn between scans)
``tid_reuse``    ``tid:<n>``                 the stat line belongs to another
                                             thread (tid reuse): wrong comm
                                             and core
``freq_error``   ``core:<n>``                ``scaling_cur_freq`` read raises
``clock_jitter`` ``tick``                    the effective monitoring period
                                             is perturbed by up to
                                             ``jitter_frac`` (late/early tick)
``crash``        ``stage:monitor`` /         :class:`ControllerCrash` raised
                 ``stage:enforce``           at the stage boundary
===============  ==========================  =================================

Plans round-trip through JSON (``to_json``/``from_json``, ``save``/
``load``) so chaos drills are reviewable artefacts — the ``--fault-plan``
CLI flag takes exactly this file format.
"""

from __future__ import annotations

import errno
import json
import random
from dataclasses import asdict, dataclass
from fnmatch import fnmatch
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

#: Every fault kind the injector understands.
FAULT_KINDS: Tuple[str, ...] = (
    "read_error",
    "write_error",
    "freeze",
    "tid_vanish",
    "tid_reuse",
    "freq_error",
    "clock_jitter",
    "crash",
)

#: errno spellings accepted by ``FaultSpec.error``.
ERRNO_BY_NAME = {
    "EIO": errno.EIO,
    "EBUSY": errno.EBUSY,
    "ENOENT": errno.ENOENT,
    "ESRCH": errno.ESRCH,
    "EACCES": errno.EACCES,
}


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: kind + target glob + window + probability."""

    kind: str
    #: ``fnmatch`` glob over the operation's target string (see the
    #: module table for what each kind matches against).
    target: str = "*"
    #: Tick window [start_tick, end_tick) during which the spec is
    #: armed; ``end_tick=None`` means "forever".  One controller
    #: iteration is one tick (counted at the monitoring pass).
    start_tick: int = 0
    end_tick: Optional[int] = None
    #: Firing probability per matching opportunity (1.0 = always).
    probability: float = 1.0
    #: errno name raised by error kinds.
    error: str = "EIO"
    #: Max relative period perturbation for ``clock_jitter``.
    jitter_frac: float = 0.02

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (known: {', '.join(FAULT_KINDS)})"
            )
        if self.start_tick < 0:
            raise ValueError("start_tick must be >= 0")
        if self.end_tick is not None and self.end_tick <= self.start_tick:
            raise ValueError("end_tick must be > start_tick")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        if self.error not in ERRNO_BY_NAME:
            raise ValueError(
                f"unknown errno {self.error!r} (known: {', '.join(ERRNO_BY_NAME)})"
            )
        if not 0.0 <= self.jitter_frac < 1.0:
            raise ValueError("jitter_frac must be in [0, 1)")

    def active_at(self, tick: int) -> bool:
        return tick >= self.start_tick and (
            self.end_tick is None or tick < self.end_tick
        )

    def matches(self, target: str) -> bool:
        return fnmatch(target, self.target)

    def make_error(self, target: str) -> OSError:
        """The exception this spec injects (typed like the kernel's)."""
        code = ERRNO_BY_NAME[self.error]
        message = f"injected {self.error} on {target}"
        if self.error == "ENOENT":
            return FileNotFoundError(code, message)
        if self.error == "ESRCH":
            return ProcessLookupError(code, message)
        return OSError(code, message)

    def as_dict(self) -> Dict:
        return asdict(self)


class FaultPlan:
    """A seeded, deterministic schedule of faults to inject.

    The plan is consulted once per *opportunity* (one backend operation
    that a spec could apply to); probabilistic specs draw from the
    plan's own ``random.Random(seed)``, so a given seed and workload
    reproduce the exact same fault sequence.  An empty plan is free:
    the injector fast-paths straight to the real backend and the
    report stream is bit-identical (proved in the injector tests).
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), *, seed: int = 0) -> None:
        self.specs: List[FaultSpec] = list(specs)
        self.seed = seed
        self._rng = random.Random(seed)
        self._kinds: FrozenSet[str] = frozenset(s.kind for s in self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def has(self, kind: str) -> bool:
        return kind in self._kinds

    def reset(self) -> None:
        """Rewind the RNG so the same plan replays identically."""
        self._rng = random.Random(self.seed)

    def draw(self, kind: str, target: str, tick: int) -> Optional[FaultSpec]:
        """The spec that fires for this opportunity, or ``None``.

        Specs are consulted in declaration order; the first armed,
        matching spec whose probability draw succeeds wins.
        """
        if kind not in self._kinds:
            return None
        for spec in self.specs:
            if spec.kind != kind:
                continue
            if not spec.active_at(tick) or not spec.matches(target):
                continue
            if spec.probability >= 1.0 or self._rng.random() < spec.probability:
                return spec
        return None

    def jitter_draw(self) -> float:
        """Symmetric unit draw for clock jitter (deterministic)."""
        return self._rng.uniform(-1.0, 1.0)

    # -- persistence ---------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "specs": [s.as_dict() for s in self.specs]},
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, payload: str) -> "FaultPlan":
        data = json.loads(payload)
        specs = [FaultSpec(**spec) for spec in data.get("specs", [])]
        return cls(specs, seed=int(data.get("seed", 0)))

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path) as fh:
            return cls.from_json(fh.read())

    # -- canned plans ----------------------------------------------------------

    @classmethod
    def standard_mix(
        cls,
        *,
        seed: int = 0,
        vanish_vm: str = "*",
        vanish_window: Tuple[int, int] = (5, 15),
        crash_tick: Optional[int] = None,
    ) -> "FaultPlan":
        """The fault mix the resilience bench runs against.

        Transient read/write errors at a few percent, a frozen counter
        window, clock jitter on every tick, one VM whose vCPU threads
        vanish long enough to force degraded mode, and (optionally) one
        injected controller crash at the monitoring boundary.
        """
        specs = [
            FaultSpec("read_error", "*/cpu.stat", probability=0.05, error="EIO"),
            FaultSpec("write_error", "*/cpu.max", probability=0.05, error="EBUSY"),
            FaultSpec(
                "freeze",
                "*/cpu.stat",
                start_tick=vanish_window[1] + 2,
                end_tick=vanish_window[1] + 5,
                probability=0.5,
            ),
            FaultSpec("clock_jitter", "tick", jitter_frac=0.02),
            FaultSpec(
                "tid_vanish",
                "tid:*",
                start_tick=vanish_window[0],
                end_tick=vanish_window[1],
                probability=0.25,
            ),
        ]
        if vanish_vm != "*":
            # Pin the vanish fault to one VM's vCPU reads instead:
            # read errors on its cgroup.threads keep it unobservable.
            specs[-1] = FaultSpec(
                "read_error",
                f"*/{vanish_vm}/vcpu*",
                start_tick=vanish_window[0],
                end_tick=vanish_window[1],
                error="EIO",
            )
        if crash_tick is not None:
            specs.append(
                FaultSpec(
                    "crash",
                    "stage:monitor",
                    start_tick=crash_tick,
                    end_tick=crash_tick + 1,
                )
            )
        return cls(specs, seed=seed)
