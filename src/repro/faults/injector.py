"""Fault injection at the kernel-surface seam.

:class:`FaultInjector` *is* a :class:`~repro.core.backend.HostBackend`
— it subclasses the backend and overrides its counted primitives, so
the monitor, enforcer and controller run against it completely
unmodified (every ``isinstance`` check and batching optimisation is
inherited).  Each primitive consults the :class:`~repro.faults.plan.
FaultPlan` for the current tick and either perturbs the operation or
falls straight through to the real implementation.

**Empty-plan guarantee:** with no specs, every override short-circuits
to ``super()`` before touching the plan, so a wrapped controller
produces a bit-identical report stream and identical ``BackendStats``
(asserted in ``tests/faults/test_injector.py``).

Crash injection (``stage:monitor`` / ``stage:enforce``) raises
:class:`ControllerCrash`, which is deliberately *not* an ``OSError`` —
no tolerant backend path may absorb it.  It escapes ``tick()`` so the
node-manager isolation and the snapshot-restore recovery path get
exercised for real.
"""

from __future__ import annotations

import errno
from typing import Dict, List, Optional

from repro.cgroups.fs import CgroupFS
from repro.cgroups.procfs import ProcFS, parse_stat_line
from repro.cgroups.sysfs import CpuFreqSysFS
from repro.core.backend import DEFAULT_MACHINE_SLICE, HostBackend
from repro.faults.plan import FaultPlan
from repro.obs.logging import get_logger

log = get_logger("repro.faults")


class ControllerCrash(RuntimeError):
    """Injected controller death at a stage boundary.

    Not an ``OSError`` on purpose: resilience policies absorb kernel
    I/O errors, but a crash must propagate out of ``tick()`` so crash
    *recovery* (snapshot restore + node replacement) is what gets
    tested, not error swallowing.
    """


class FaultInjector(HostBackend):
    """A :class:`HostBackend` that injects faults from a seeded plan."""

    def __init__(
        self,
        plan: FaultPlan,
        fs: CgroupFS,
        procfs: Optional[ProcFS] = None,
        sysfs: Optional[CpuFreqSysFS] = None,
        *,
        machine_slice: str = DEFAULT_MACHINE_SLICE,
        batched: bool = True,
    ) -> None:
        super().__init__(
            fs, procfs, sysfs, machine_slice=machine_slice, batched=batched
        )
        self.plan = plan
        #: Count of fired faults by kind (exported to Prometheus).
        self.injected: Dict[str, int] = {}
        #: Last-served content per frozen-counter path.
        self._frozen: Dict[str, str] = {}
        #: Current controller iteration; advanced at each monitoring
        #: pass so spec tick windows line up with controller ticks.
        self.tick_index = -1

    @classmethod
    def wrap(cls, backend: HostBackend, plan: FaultPlan) -> "FaultInjector":
        """Build an injector over an existing backend's surfaces.

        Warm state (usage baselines, cap cache, tolerance flag) carries
        over so wrapping mid-run does not perturb the next sample.
        """
        inj = cls(
            plan,
            backend.fs,
            backend.procfs,
            backend.sysfs,
            machine_slice=backend.machine_slice,
            batched=backend.batched,
        )
        inj.tolerate_errors = backend.tolerate_errors
        inj._prev_usage = dict(backend._prev_usage)
        inj._last_cap = dict(backend._last_cap)
        inj.cap_epoch = backend.cap_epoch
        return inj

    def _fire(self, kind: str, target: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        log.debug(
            "fault fired: %s", kind,
            extra={"target": target, "tick": self.tick_index},
        )

    # -- counted primitives, perturbed -----------------------------------------

    def read_file(self, path: str) -> str:
        if not self.plan.specs:
            return super().read_file(path)
        spec = self.plan.draw("read_error", path, self.tick_index)
        if spec is not None:
            self._fire("read_error", path)
            raise spec.make_error(path)
        if any(s.kind == "freeze" and s.matches(path) for s in self.plan.specs):
            spec = self.plan.draw("freeze", path, self.tick_index)
            if spec is not None and path in self._frozen:
                self._fire("freeze", path)
                return self._frozen[path]
            content = super().read_file(path)
            self._frozen[path] = content
            return content
        return super().read_file(path)

    def listdir(self, path: str) -> List[str]:
        if not self.plan.specs:
            return super().listdir(path)
        spec = self.plan.draw("read_error", path, self.tick_index)
        if spec is not None:
            self._fire("read_error", path)
            raise spec.make_error(path)
        return super().listdir(path)

    def read_thread_stat(self, tid: int) -> str:
        if not self.plan.specs:
            return super().read_thread_stat(tid)
        target = f"tid:{tid}"
        spec = self.plan.draw("tid_vanish", target, self.tick_index)
        if spec is not None:
            self._fire("tid_vanish", target)
            raise ProcessLookupError(
                errno.ESRCH, f"injected thread churn on {target}"
            )
        spec = self.plan.draw("tid_reuse", target, self.tick_index)
        if spec is not None:
            # The tid now belongs to a different thread: same number,
            # foreign comm, parked on core 0.
            self._fire("tid_reuse", target)
            stat = parse_stat_line(super().read_thread_stat(tid))
            stat.comm = "not-a-vcpu"
            stat.processor = 0
            return stat.render()
        return super().read_thread_stat(tid)

    def core_freq_khz(self, core: int) -> int:
        if not self.plan.specs:
            return super().core_freq_khz(core)
        target = f"core:{core}"
        spec = self.plan.draw("freq_error", target, self.tick_index)
        if spec is not None:
            self._fire("freq_error", target)
            raise spec.make_error(target)
        return super().core_freq_khz(core)

    def write_file(self, path: str, content: str) -> None:
        if not self.plan.specs:
            return super().write_file(path, content)
        spec = self.plan.draw("write_error", path, self.tick_index)
        if spec is not None:
            # v1 quota/period pairs are two writes; failing either one
            # leaves the pair half-applied, exactly the hazard
            # write_cap_one's cache-drop defends against.
            self._fire("write_error", path)
            raise spec.make_error(path)
        return super().write_file(path, content)

    # -- batch entry points: crash boundaries and clock jitter -----------------
    #
    # The batch hooks fire exactly once per monitoring/write batch no
    # matter which spelling the caller used (``read_vcpu_samples`` or
    # ``sample_all``, ``write_caps`` or ``apply_caps``), so the tick
    # clock never double-advances when a bulk entry point falls back to
    # the list-based scan internally.

    def _begin_sample_batch(self, period_s: float) -> float:
        if not self.plan.specs:
            return period_s
        self.tick_index += 1
        spec = self.plan.draw("crash", "stage:monitor", self.tick_index)
        if spec is not None:
            self._fire("crash", "stage:monitor")
            raise ControllerCrash(
                f"injected crash at stage:monitor, tick {self.tick_index}"
            )
        spec = self.plan.draw("clock_jitter", "tick", self.tick_index)
        if spec is not None:
            self._fire("clock_jitter", "tick")
            period_s = period_s * (1.0 + spec.jitter_frac * self.plan.jitter_draw())
        return period_s

    def _begin_write_batch(self) -> None:
        if not self.plan.specs:
            return
        spec = self.plan.draw("crash", "stage:enforce", self.tick_index)
        if spec is not None:
            self._fire("crash", "stage:enforce")
            raise ControllerCrash(
                f"injected crash at stage:enforce, tick {self.tick_index}"
            )

    def _direct_io_ok(self) -> bool:
        # Faults inject at the per-file primitives; an armed plan must
        # force every batch through them.
        return not self.plan.specs
