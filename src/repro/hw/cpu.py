"""Per-core DVFS frequency model.

A schedutil-like governor: each core's target frequency grows with its
utilisation (with the kernel's 1.25x headroom factor) and is clamped to
``[fmin, fmax]``; the actual frequency tracks the target with first-order
inertia plus a small gaussian jitter whose magnitude is a property of the
CPU (paper: 16-37 MHz variance on the Xeon node, 88-150 MHz on the EPYC).

The property the paper's frequency-estimation shortcut relies on —
*"under load, all cores run at approximately the same speed"* — emerges
naturally: saturated cores all sit at ``fmax +- jitter``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: schedutil: next_freq = 1.25 * max_freq * util.
GOVERNOR_HEADROOM: float = 1.25

#: Fraction of the gap to the target closed per second (governor latency).
TRACKING_RATE: float = 8.0


class DvfsModel:
    """Vectorised frequency dynamics for all cores of one node."""

    def __init__(
        self,
        num_cpus: int,
        fmax_mhz: float,
        fmin_mhz: float,
        jitter_mhz: float = 0.0,
        seed: int = 0,
        domain_size: int = 1,
    ) -> None:
        if num_cpus <= 0:
            raise ValueError("num_cpus must be positive")
        if not 0 < fmin_mhz <= fmax_mhz:
            raise ValueError("need 0 < fmin <= fmax")
        if jitter_mhz < 0:
            raise ValueError("jitter must be >= 0")
        if domain_size <= 0 or num_cpus % domain_size != 0:
            raise ValueError(
                f"domain_size must divide num_cpus ({num_cpus}), got {domain_size}"
            )
        self.num_cpus = num_cpus
        self.fmax_mhz = fmax_mhz
        self.fmin_mhz = fmin_mhz
        self.jitter_mhz = jitter_mhz
        self.domain_size = domain_size
        self._rng = np.random.default_rng(seed)
        self._freqs = np.full(num_cpus, fmin_mhz, dtype=np.float64)

    @property
    def freqs_mhz(self) -> np.ndarray:
        """Current per-core frequencies (read-only view)."""
        view = self._freqs.view()
        view.flags.writeable = False
        return view

    def freqs_khz(self) -> np.ndarray:
        return self.freqs_mhz * 1000.0

    def step(self, core_utilisation: Sequence[float], dt: float) -> np.ndarray:
        """Advance one tick given per-core utilisation in [0, 1]."""
        util = np.asarray(core_utilisation, dtype=np.float64)
        if util.shape != (self.num_cpus,):
            raise ValueError(
                f"expected {self.num_cpus} utilisations, got shape {util.shape}"
            )
        if np.any(util < -1e-9) or np.any(util > 1.0 + 1e-9):
            raise ValueError("core utilisation must be within [0, 1]")
        util = np.clip(util, 0.0, 1.0)
        if self.domain_size > 1:
            # Cores in one DVFS domain share a clock; the governor picks
            # the domain frequency for its *hottest* core (as Zen does
            # per CCX), so a single busy core drags its siblings up.
            domains = util.reshape(-1, self.domain_size)
            util = np.repeat(domains.max(axis=1), self.domain_size)
        target = np.clip(
            GOVERNOR_HEADROOM * self.fmax_mhz * util, self.fmin_mhz, self.fmax_mhz
        )
        alpha = 1.0 - np.exp(-TRACKING_RATE * dt)
        self._freqs += alpha * (target - self._freqs)
        if self.jitter_mhz > 0:
            n_domains = self.num_cpus // self.domain_size
            noise = np.repeat(
                self._rng.normal(0.0, self.jitter_mhz, n_domains), self.domain_size
            )
            self._freqs = np.clip(
                self._freqs + noise * np.sqrt(min(dt, 1.0)),
                self.fmin_mhz,
                self.fmax_mhz,
            )
        return self.freqs_mhz

    def mean_mhz(self) -> float:
        return float(self._freqs.mean())

    def std_mhz(self) -> float:
        """Cross-core frequency spread (the paper's 'average variance')."""
        return float(self._freqs.std())
