"""Hardware models: CPUs with DVFS, nodes (Table IV), energy, clusters."""

from repro.hw.cpu import DvfsModel
from repro.hw.nodespecs import NodeSpec, CHETEMI, CHICLET, spec_by_name
from repro.hw.node import Node
from repro.hw.energy import PowerModel, EnergyMeter
from repro.hw.cluster import Cluster

__all__ = [
    "DvfsModel",
    "NodeSpec",
    "CHETEMI",
    "CHICLET",
    "spec_by_name",
    "Node",
    "PowerModel",
    "EnergyMeter",
    "Cluster",
]
