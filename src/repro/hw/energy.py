"""Node power/energy model.

Standard linear-in-utilisation server model with a cubic frequency term
for the dynamic part (P_dyn ~ C V^2 f, V ~ f):

    P = P_idle + (P_max - P_idle) * util * (f / f_max)^2

Only used for the placement study's energy projection (§IV-C: 7 of 22
nodes can be shut down) and the energy-perspective benches; the
controller itself never reads power.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.nodespecs import NodeSpec


@dataclass(frozen=True)
class PowerModel:
    """Static power curve of one node."""

    idle_w: float
    max_w: float
    fmax_mhz: float

    def __post_init__(self) -> None:
        if not 0 <= self.idle_w <= self.max_w:
            raise ValueError("need 0 <= idle_w <= max_w")
        if self.fmax_mhz <= 0:
            raise ValueError("fmax must be positive")

    @classmethod
    def for_spec(cls, spec: NodeSpec) -> "PowerModel":
        return cls(idle_w=spec.idle_power_w, max_w=spec.max_power_w, fmax_mhz=spec.fmax_mhz)

    def power_w(self, utilisation: float, freq_mhz: float) -> float:
        """Instantaneous draw for a node-average utilisation and frequency."""
        if not 0.0 <= utilisation <= 1.0 + 1e-9:
            raise ValueError(f"utilisation out of [0, 1]: {utilisation}")
        if freq_mhz < 0:
            raise ValueError("negative frequency")
        rel_f = min(freq_mhz / self.fmax_mhz, 1.0)
        return self.idle_w + (self.max_w - self.idle_w) * min(utilisation, 1.0) * rel_f**2


class EnergyMeter:
    """Integrates a power model over simulation time."""

    def __init__(self, model: PowerModel) -> None:
        self.model = model
        self.energy_j: float = 0.0
        self.elapsed_s: float = 0.0

    def step(self, utilisation: float, freq_mhz: float, dt: float) -> float:
        """Accumulate ``dt`` seconds at the given operating point."""
        if dt < 0:
            raise ValueError("negative dt")
        p = self.model.power_w(utilisation, freq_mhz)
        self.energy_j += p * dt
        self.elapsed_s += dt
        return p

    @property
    def energy_wh(self) -> float:
        return self.energy_j / 3600.0

    def average_power_w(self) -> float:
        if self.elapsed_s == 0:
            return 0.0
        return self.energy_j / self.elapsed_s
