"""A physical machine: cores + kernel surfaces wired together.

A :class:`Node` owns everything a real host would expose to the paper's
controller — a cgroup filesystem, /proc, cpufreq sysfs — plus the models
behind them (CFS scheduler, DVFS, affinity, energy).  The simulation
engine pushes workload demand into scheduling entities and calls
:meth:`Node.step`; the controller only ever reads/writes the ``fs``,
``procfs`` and ``sysfs`` surfaces, exactly as on a real machine.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.cgroups.fs import CgroupFS, CgroupVersion
from repro.cgroups.procfs import ProcFS
from repro.cgroups.sysfs import CpuFreqSysFS
from repro.hw.cpu import DvfsModel
from repro.hw.energy import EnergyMeter, PowerModel
from repro.hw.nodespecs import NodeSpec
from repro.sched.affinity import AffinityModel
from repro.sched.cfs import CfsScheduler, GroupAllocation
from repro.sched.entity import SchedEntity

#: KVM/libvirt machine slice where VM cgroups live.
MACHINE_SLICE = "/machine.slice"


class Node:
    """One simulated physical machine."""

    def __init__(
        self,
        spec: NodeSpec,
        *,
        cgroup_version: CgroupVersion = CgroupVersion.V2,
        seed: int = 0,
        cache: "Optional[object]" = None,
    ) -> None:
        self.spec = spec
        #: Optional LLC contention model (repro.hw.cache); None disables it.
        self.cache = cache
        self.runnable_threads: int = 0
        self.fs = CgroupFS(cgroup_version)
        self.fs.makedirs(MACHINE_SLICE)
        self.procfs = ProcFS()
        self.dvfs = DvfsModel(
            num_cpus=spec.logical_cpus,
            fmax_mhz=spec.fmax_mhz,
            fmin_mhz=spec.fmin_mhz,
            jitter_mhz=spec.freq_jitter_mhz,
            seed=seed,
            domain_size=spec.freq_domain_size,
        )
        self.sysfs = CpuFreqSysFS(
            freqs_khz=self.dvfs.freqs_khz(),
            min_khz=spec.fmin_mhz * 1000.0,
            max_khz=spec.fmax_mhz * 1000.0,
        )
        self.affinity = AffinityModel(spec.logical_cpus, seed=seed + 1)
        self.scheduler = CfsScheduler(self.fs, spec.logical_cpus)
        self.energy = EnergyMeter(PowerModel.for_spec(spec))
        self.clock_s: float = 0.0
        self._entities: Dict[int, SchedEntity] = {}

    # -- entity registry (populated by the hypervisor) ---------------------------

    def register_entity(self, entity: SchedEntity) -> None:
        if entity.tid in self._entities:
            raise ValueError(f"tid {entity.tid} already registered")
        self._entities[entity.tid] = entity

    def unregister_entity(self, tid: int) -> None:
        self._entities.pop(tid, None)
        self.affinity.forget(tid)

    def entity(self, tid: int) -> SchedEntity:
        return self._entities[tid]

    @property
    def entities(self) -> List[SchedEntity]:
        return list(self._entities.values())

    # -- simulation ---------------------------------------------------------------

    def step(self, dt: float) -> Dict[str, GroupAllocation]:
        """Advance the machine by ``dt`` wall-seconds.

        Entity demands must have been set by the workload layer before
        the call; on return every entity's ``allocated`` holds the CPU
        time it received, all kernel surfaces are refreshed, and the
        energy meter has integrated the interval.
        """
        entities = self.entities
        self.runnable_threads = sum(1 for e in entities if e.demand > 0.05)
        allocations = self.scheduler.schedule(entities, dt)

        tids = [e.tid for e in entities]
        utils = [e.allocated / dt for e in entities]
        for ent in entities:
            self.procfs.charge(ent.tid, ent.allocated)
        cores = self.affinity.step(tids, utils, dt)
        for tid, core in zip(tids, cores):
            self.procfs.set_processor(tid, core)

        core_load = self.affinity.load_per_core(tids, utils)
        self.dvfs.step(core_load, dt)
        self.sysfs.update(self.dvfs.freqs_khz())

        node_util = float(np.mean(core_load)) if len(core_load) else 0.0
        self.energy.step(node_util, self.dvfs.mean_mhz(), dt)
        self.clock_s += dt
        return allocations

    # -- controller-facing helpers ---------------------------------------------------

    def utilisation(self) -> float:
        """Whole-node utilisation over the last tick (for reporting)."""
        if not self._entities:
            return 0.0
        total = sum(e.allocated for e in self._entities.values())
        return total  # caller divides by (num_cpus * dt) as needed

    def core_frequency_mhz(self, core: int) -> float:
        """Frequency of one core in MHz (reads through sysfs like the controller)."""
        return self.sysfs.scaling_cur_freq(core) / 1000.0

    def last_core_of(self, tid: int) -> int:
        """Core a thread last ran on (reads through /proc like the controller)."""
        return self.procfs.stat(tid).processor

    def effective_mhz(self, freq_mhz: float) -> float:
        """Work-rate at ``freq_mhz`` after LLC contention (if modelled).

        Cache pressure slows instruction throughput, not the clock — the
        controller's frequency estimate is deliberately unaffected.
        """
        if self.cache is None:
            return freq_mhz
        return self.cache.effective_mhz(freq_mhz, self.runnable_threads)


def make_node(
    spec: NodeSpec,
    *,
    cgroup_version: CgroupVersion = CgroupVersion.V2,
    seed: Optional[int] = None,
) -> Node:
    """Convenience factory with a deterministic default seed."""
    return Node(spec, cgroup_version=cgroup_version, seed=0 if seed is None else seed)
