"""Physical node catalogue (paper Table IV).

The two Grid'5000 nodes used in the evaluation:

========  ========================  =============  ==========  ========
name      CPU                       logical CPUs   F_MAX       memory
========  ========================  =============  ==========  ========
chetemi   2x Intel Xeon E5-2630 v4  40 (2x10x2HT)  2 400 MHz   256 GB
chiclet   2x AMD EPYC 7301          64 (2x16x2HT)  2 400 MHz   128 GB
========  ========================  =============  ==========  ========

The paper's Eq. 7 load check only balances when *logical* CPUs are
counted (chetemi: 40*2400 = 96 000 >= 40*500 + 40*1800 = 92 000 for the
Table II workload), so ``logical_cpus`` is the capacity unit everywhere.

The per-core frequency jitter reproduces the variance the paper reports
(16-37 MHz on chetemi, 88-150 MHz on chiclet): Intel cores are modelled
tighter than the EPYC's per-CCX behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NodeSpec:
    """Static description of a physical machine."""

    name: str
    cpu_model: str
    sockets: int
    cores_per_socket: int
    threads_per_core: int
    fmax_mhz: float
    fmin_mhz: float
    memory_mb: int
    freq_jitter_mhz: float  # std-dev of per-core frequency noise under load
    idle_power_w: float = 90.0
    max_power_w: float = 190.0
    #: Cores per DVFS domain: 1 = per-core frequency (Intel); AMD Zen
    #: scales frequency per CCX, so chiclet uses 4 — the structural
    #: reason the paper measures a larger cross-core variance there.
    freq_domain_size: int = 1

    def __post_init__(self) -> None:
        if self.sockets <= 0 or self.cores_per_socket <= 0 or self.threads_per_core <= 0:
            raise ValueError("topology counts must be positive")
        if not 0 < self.fmin_mhz <= self.fmax_mhz:
            raise ValueError("need 0 < fmin <= fmax")
        if self.memory_mb <= 0:
            raise ValueError("memory must be positive")
        if self.freq_domain_size <= 0:
            raise ValueError("freq_domain_size must be positive")

    @property
    def physical_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def logical_cpus(self) -> int:
        return self.physical_cores * self.threads_per_core

    @property
    def capacity_mhz(self) -> float:
        """Total frequency capacity: ``k_n^CPU * F_n^MAX`` (Eq. 7 RHS)."""
        return self.logical_cpus * self.fmax_mhz


CHETEMI = NodeSpec(
    name="chetemi",
    cpu_model="2x Intel Xeon E5-2630 v4",
    sockets=2,
    cores_per_socket=10,
    threads_per_core=2,
    fmax_mhz=2400.0,
    fmin_mhz=1200.0,
    memory_mb=256 * 1024,
    freq_jitter_mhz=25.0,
    idle_power_w=97.0,
    max_power_w=194.0,
)

CHICLET = NodeSpec(
    name="chiclet",
    cpu_model="2x AMD EPYC 7301",
    sockets=2,
    cores_per_socket=16,
    threads_per_core=2,
    fmax_mhz=2400.0,
    fmin_mhz=1200.0,
    memory_mb=128 * 1024,
    freq_jitter_mhz=110.0,
    idle_power_w=112.0,
    max_power_w=245.0,
    freq_domain_size=4,  # Zen CCX
)

_CATALOGUE = {spec.name: spec for spec in (CHETEMI, CHICLET)}


def spec_by_name(name: str) -> NodeSpec:
    """Look up a node spec from the Table IV catalogue."""
    try:
        return _CATALOGUE[name]
    except KeyError:
        raise KeyError(
            f"unknown node spec {name!r}; known: {sorted(_CATALOGUE)}"
        ) from None
