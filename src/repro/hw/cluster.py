"""A cluster of nodes (used by the placement study, paper §IV-C)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.hw.nodespecs import NodeSpec


@dataclass(frozen=True)
class ClusterNode:
    """One placement slot: a named physical machine of a given spec."""

    node_id: str
    spec: NodeSpec


class Cluster:
    """Static cluster description for placement experiments.

    The §IV-C cluster is ``Cluster.paper_cluster()``: 12 chetemi and
    10 chiclet machines.
    """

    def __init__(self, nodes: Iterable[ClusterNode]) -> None:
        self._nodes: List[ClusterNode] = list(nodes)
        ids = [n.node_id for n in self._nodes]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate node ids in cluster")

    @classmethod
    def homogeneous(cls, spec: NodeSpec, count: int, prefix: str = "") -> "Cluster":
        prefix = prefix or spec.name
        return cls(ClusterNode(f"{prefix}-{i}", spec) for i in range(count))

    @classmethod
    def from_counts(cls, counts: Dict[NodeSpec, int]) -> "Cluster":
        nodes: List[ClusterNode] = []
        for spec, count in counts.items():
            if count < 0:
                raise ValueError("negative node count")
            nodes.extend(ClusterNode(f"{spec.name}-{i}", spec) for i in range(count))
        return cls(nodes)

    @classmethod
    def paper_cluster(cls) -> "Cluster":
        """The §IV-C evaluation cluster: 12 chetemi + 10 chiclet."""
        from repro.hw.nodespecs import CHETEMI, CHICLET

        return cls.from_counts({CHETEMI: 12, CHICLET: 10})

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[ClusterNode]:
        return iter(self._nodes)

    @property
    def nodes(self) -> List[ClusterNode]:
        return list(self._nodes)

    def node(self, node_id: str) -> ClusterNode:
        for n in self._nodes:
            if n.node_id == node_id:
                return n
        raise KeyError(f"no such node: {node_id}")

    def total_capacity_mhz(self) -> float:
        return sum(n.spec.capacity_mhz for n in self._nodes)

    def total_logical_cpus(self) -> int:
        return sum(n.spec.logical_cpus for n in self._nodes)

    def by_spec(self) -> List[Tuple[NodeSpec, int]]:
        """Counts per spec, in first-appearance order."""
        counts: Dict[str, Tuple[NodeSpec, int]] = {}
        for n in self._nodes:
            spec, cnt = counts.get(n.spec.name, (n.spec, 0))
            counts[n.spec.name] = (spec, cnt + 1)
        return list(counts.values())
