"""Last-level-cache contention model (paper §V, future work #1).

The paper's second evaluation observes a small, unexplained performance
drop for large instances and attributes it to "other factor[s] than CPU
cycle allocation (e.g., cache allocation)", proposing cache-aware vCPU
prioritisation as future work.  This model supplies the missing physics:
when more runnable threads than physical cores share the LLC, every
thread's effective instruction throughput degrades even though its clock
frequency is unchanged:

    slowdown = 1 / (1 + alpha * max(0, runnable/physical_cores - 1))

``alpha`` calibrates how steeply IPC falls with oversubscription;
``alpha = 0`` disables the model.  The slowdown applies to *work done*
(MHz-equivalents absorbed by workloads), never to the cycle accounting
the controller reads — cache pressure does not change ``cpu.stat``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheContentionModel:
    """IPC degradation under thread oversubscription."""

    physical_cores: int
    alpha: float = 0.15

    def __post_init__(self) -> None:
        if self.physical_cores <= 0:
            raise ValueError("physical_cores must be positive")
        if self.alpha < 0:
            raise ValueError("alpha must be >= 0")

    def slowdown(self, runnable_threads: int) -> float:
        """Multiplier in (0, 1] applied to effective work throughput."""
        if runnable_threads < 0:
            raise ValueError("runnable_threads must be >= 0")
        pressure = max(0.0, runnable_threads / self.physical_cores - 1.0)
        return 1.0 / (1.0 + self.alpha * pressure)

    def effective_mhz(self, freq_mhz: float, runnable_threads: int) -> float:
        """Work-rate a thread achieves at ``freq_mhz`` under contention."""
        if freq_mhz < 0:
            raise ValueError("negative frequency")
        return freq_mhz * self.slowdown(runnable_threads)
