"""repro — reproduction of *Enabling Dynamic Virtual Frequency Scaling
for Virtual Machines in the Cloud* (Cadorel & Rouvoy, IEEE CLUSTER 2022).

Public API tour:

>>> from repro import (
...     VirtualFrequencyController, ControllerConfig,   # the contribution
...     Node, CHETEMI, Hypervisor, SMALL, LARGE,        # simulated host
...     Simulation, eval1_chetemi,                      # experiments
... )

The package layers (bottom-up): ``repro.cgroups`` (simulated cgroupfs),
``repro.sched`` (CFS-like scheduler), ``repro.hw`` (nodes/DVFS/energy),
``repro.virt`` (KVM-like hypervisor), ``repro.workloads`` (Phoronix-like
benchmarks), ``repro.core`` (the paper's virtual frequency controller),
``repro.placement`` (BestFit/FirstFit with the Eq. 7 constraint),
``repro.sim`` (engine + the paper's scenarios) and ``repro.analysis``.
"""

from repro.cgroups import CgroupFS, CgroupVersion
from repro.core import ControllerConfig, VirtualFrequencyController
from repro.hw import CHETEMI, CHICLET, Cluster, Node, NodeSpec
from repro.placement import BestFit, CoreSplittingConstraint, FirstFit, VcpuCountConstraint
from repro.sim import Simulation, eval1_chetemi, eval1_chiclet, eval2_chetemi
from repro.virt import Hypervisor, LARGE, MEDIUM, SMALL, VMTemplate
from repro.workloads import Compress7Zip, OpenSSLSpeed

__version__ = "1.0.0"

__all__ = [
    "CgroupFS",
    "CgroupVersion",
    "ControllerConfig",
    "VirtualFrequencyController",
    "CHETEMI",
    "CHICLET",
    "Cluster",
    "Node",
    "NodeSpec",
    "BestFit",
    "FirstFit",
    "CoreSplittingConstraint",
    "VcpuCountConstraint",
    "Simulation",
    "eval1_chetemi",
    "eval1_chiclet",
    "eval2_chetemi",
    "Hypervisor",
    "SMALL",
    "MEDIUM",
    "LARGE",
    "VMTemplate",
    "Compress7Zip",
    "OpenSSLSpeed",
    "__version__",
]
