"""repro — reproduction of *Enabling Dynamic Virtual Frequency Scaling
for Virtual Machines in the Cloud* (Cadorel & Rouvoy, IEEE CLUSTER 2022).

Public API tour:

>>> from repro import (
...     VirtualFrequencyController, ControllerConfig,   # the contribution
...     Controller, HostBackend,                        # protocol + kernel seam
...     Node, CHETEMI, Hypervisor, SMALL, LARGE,        # simulated host
...     Simulation, Scenario, eval1_chetemi,            # experiments
...     NodeManager, ShardedNodeManager,                # multi-node control plane
...     Observability,                                  # spans/ledger/recorder
... )

This list *is* the supported surface: everything here is re-exported
deliberately, snapshot-tested (``tests/test_public_api.py``) and only
changed with a CHANGES.md entry.  Anything reached by a deeper import
path is internal and may move without notice; deprecated names get one
release with a ``DeprecationWarning`` before removal.

The package layers (bottom-up): ``repro.cgroups`` (simulated cgroupfs),
``repro.sched`` (CFS-like scheduler), ``repro.hw`` (nodes/DVFS/energy),
``repro.virt`` (KVM-like hypervisor), ``repro.workloads`` (Phoronix-like
benchmarks), ``repro.core`` (the paper's virtual frequency controller),
``repro.placement`` (BestFit/FirstFit with the Eq. 7 constraint),
``repro.sim`` (engine + the paper's scenarios) and ``repro.analysis``.
"""

from repro.cgroups import CgroupFS, CgroupVersion
from repro.core import (
    Controller,
    ControllerConfig,
    ControllerReport,
    HostBackend,
    SampleBatch,
    VirtualFrequencyController,
)
from repro.hw import CHETEMI, CHICLET, Cluster, Node, NodeSpec
from repro.obs import Observability, ObsConfig
from repro.placement import BestFit, CoreSplittingConstraint, FirstFit, VcpuCountConstraint
from repro.sim import (
    NodeManager,
    Scenario,
    ShardedNodeManager,
    Simulation,
    TickResult,
    eval1_chetemi,
    eval1_chiclet,
    eval2_chetemi,
)
from repro.virt import Hypervisor, LARGE, MEDIUM, SMALL, VMTemplate
from repro.workloads import Compress7Zip, OpenSSLSpeed

__version__ = "1.0.0"

__all__ = [
    "CgroupFS",
    "CgroupVersion",
    "Controller",
    "ControllerConfig",
    "ControllerReport",
    "HostBackend",
    "SampleBatch",
    "VirtualFrequencyController",
    "CHETEMI",
    "CHICLET",
    "Cluster",
    "Node",
    "NodeSpec",
    "Observability",
    "ObsConfig",
    "BestFit",
    "FirstFit",
    "CoreSplittingConstraint",
    "VcpuCountConstraint",
    "NodeManager",
    "ShardedNodeManager",
    "TickResult",
    "Scenario",
    "Simulation",
    "eval1_chetemi",
    "eval1_chiclet",
    "eval2_chetemi",
    "Hypervisor",
    "SMALL",
    "MEDIUM",
    "LARGE",
    "VMTemplate",
    "Compress7Zip",
    "OpenSSLSpeed",
    "__version__",
]
