"""Small statistics helpers for paper-vs-measured comparisons."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def relative_error(measured: float, expected: float) -> float:
    """|measured - expected| / |expected| (expected must be non-zero)."""
    if expected == 0:
        raise ValueError("expected must be non-zero")
    return abs(measured - expected) / abs(expected)


def within_band(measured: float, expected: float, rel_tol: float) -> bool:
    """Shape check used throughout EXPERIMENTS.md: within a relative band."""
    if rel_tol < 0:
        raise ValueError("rel_tol must be >= 0")
    return relative_error(measured, expected) <= rel_tol


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int


def summarize(values) -> Summary:
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        count=int(arr.size),
    )
