"""Series utilities: smoothing, plateau detection, settling time."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def moving_average(values: np.ndarray, window: int) -> np.ndarray:
    """Centred-ish moving average with edge shrinkage (same length out)."""
    values = np.asarray(values, dtype=np.float64)
    if window <= 0:
        raise ValueError("window must be positive")
    if window == 1 or values.size == 0:
        return values.copy()
    kernel = np.ones(window)
    sums = np.convolve(values, kernel, mode="same")
    counts = np.convolve(np.ones_like(values), kernel, mode="same")
    return sums / counts


def plateau_segments(
    times: np.ndarray,
    values: np.ndarray,
    *,
    tolerance: float,
    min_duration: float,
) -> List[Tuple[float, float, float]]:
    """Find (t_start, t_end, level) segments where the series stays within
    ``tolerance`` of its running segment mean for >= ``min_duration``."""
    times = np.asarray(times, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if times.shape != values.shape:
        raise ValueError("times/values shape mismatch")
    if tolerance <= 0 or min_duration <= 0:
        raise ValueError("tolerance and min_duration must be positive")
    segments: List[Tuple[float, float, float]] = []
    i = 0
    n = times.size
    while i < n:
        j = i + 1
        total = values[i]
        while j < n:
            mean = total / (j - i)
            if abs(values[j] - mean) > tolerance:
                break
            total += values[j]
            j += 1
        if times[j - 1] - times[i] >= min_duration:
            segments.append((float(times[i]), float(times[j - 1]), float(total / (j - i))))
        i = j
    return segments


def settling_time(
    times: np.ndarray,
    values: np.ndarray,
    target: float,
    *,
    band: float,
    t_from: float = 0.0,
) -> float:
    """First time after ``t_from`` the series enters and stays within
    ``target +- band`` until the end; ``inf`` when it never settles."""
    times = np.asarray(times, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if band <= 0:
        raise ValueError("band must be positive")
    mask = times >= t_from
    t = times[mask]
    v = values[mask]
    inside = np.abs(v - target) <= band
    if not inside.any():
        return float("inf")
    # Last index where the series is *outside*; settled after that.
    outside_idx = np.nonzero(~inside)[0]
    if outside_idx.size == 0:
        return float(t[0])
    last_out = outside_idx[-1]
    if last_out + 1 >= t.size:
        return float("inf")
    return float(t[last_out + 1])
