"""Time-series and statistics helpers used by tests and benches."""

from repro.analysis.series import moving_average, plateau_segments, settling_time
from repro.analysis.stats import relative_error, summarize, within_band
from repro.analysis.ascii_chart import AsciiChart, chart_time_series
from repro.analysis.sla import SlaReport, SlaRecord, evaluate_sla

__all__ = [
    "moving_average",
    "plateau_segments",
    "settling_time",
    "relative_error",
    "summarize",
    "within_band",
    "AsciiChart",
    "chart_time_series",
    "SlaReport",
    "SlaRecord",
    "evaluate_sla",
]
