"""SLA accounting for the virtual-frequency guarantee.

The product the paper sells is "your vCPUs run at >= F_v whenever they
ask".  This module turns controller reports into SLA numbers: an
iteration *violates* a VM's SLA when some vCPU consumed (almost) its
whole allocation — i.e. it wanted more — yet the allocation was below
the guarantee ``C_i``.  Idle vCPUs cannot violate: not using a
guarantee is the customer's choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.core.controller import ControllerReport

#: A vCPU is considered "wanting more" when it consumed at least this
#: fraction of its previous allocation.
SATURATION_FRACTION = 0.9

#: Tolerance on the guarantee itself (enforcement-period rounding).
GUARANTEE_TOLERANCE = 0.98


@dataclass
class SlaRecord:
    """Per-VM SLA counters."""

    vm_name: str
    iterations_busy: int = 0
    iterations_violated: int = 0
    worst_fraction: float = float("inf")  # min allocation/guarantee while busy

    @property
    def violation_rate(self) -> float:
        if self.iterations_busy == 0:
            return 0.0
        return self.iterations_violated / self.iterations_busy


@dataclass
class SlaReport:
    """Aggregated SLA outcome over a run."""

    records: Dict[str, SlaRecord] = field(default_factory=dict)

    def record_for(self, vm_name: str) -> SlaRecord:
        rec = self.records.get(vm_name)
        if rec is None:
            rec = SlaRecord(vm_name)
            self.records[vm_name] = rec
        return rec

    @property
    def total_violations(self) -> int:
        return sum(r.iterations_violated for r in self.records.values())

    @property
    def vms_ever_violated(self) -> int:
        return sum(1 for r in self.records.values() if r.iterations_violated)

    def overall_violation_rate(self) -> float:
        busy = sum(r.iterations_busy for r in self.records.values())
        if busy == 0:
            return 0.0
        return self.total_violations / busy


def evaluate_sla(
    reports: Iterable[ControllerReport],
    guarantees: Dict[str, float],
) -> SlaReport:
    """Score a run's controller reports against per-VM guarantees.

    ``guarantees`` maps VM name to its per-vCPU ``C_i`` in cycles
    (``controller.guaranteed_cycles_of``).
    """
    out = SlaReport()
    prev_alloc: Dict[str, float] = {}
    for report in reports:
        # group samples by VM for this iteration
        by_vm: Dict[str, List] = {}
        for sample in report.samples:
            by_vm.setdefault(sample.vm_name, []).append(sample)
        for vm_name, samples in by_vm.items():
            guarantee = guarantees.get(vm_name)
            if guarantee is None or guarantee <= 0:
                continue
            busy = False
            violated = False
            worst = float("inf")
            for sample in samples:
                allocated = report.allocations.get(sample.cgroup_path)
                last = prev_alloc.get(sample.cgroup_path)
                if allocated is not None:
                    prev_alloc[sample.cgroup_path] = allocated
                if last is None or allocated is None:
                    continue
                wanting = sample.consumed_cycles >= SATURATION_FRACTION * last
                if not wanting:
                    continue
                busy = True
                worst = min(worst, allocated / guarantee)
                if allocated < GUARANTEE_TOLERANCE * guarantee:
                    violated = True
            if busy:
                rec = out.record_for(vm_name)
                rec.iterations_busy += 1
                rec.worst_fraction = min(rec.worst_fraction, worst)
                if violated:
                    rec.iterations_violated += 1
    return out
