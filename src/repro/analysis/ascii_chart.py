"""Terminal line charts for the paper's figures.

No plotting stack is assumed; these render multi-series time charts as
fixed-width text, good enough to eyeball the Fig. 6-13 shapes straight
from a bench or the CLI:

>>> chart = AsciiChart(width=40, height=8)
>>> chart.add_series("small", times, small_mhz)
>>> chart.add_series("large", times, large_mhz)
>>> print(chart.render(title="Fig. 7"))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Glyphs assigned to series in insertion order.
GLYPHS = "*o+x#@%&"


@dataclass
class _Series:
    name: str
    times: np.ndarray
    values: np.ndarray
    glyph: str


class AsciiChart:
    """A fixed-size character canvas with auto-scaled axes."""

    def __init__(self, width: int = 72, height: int = 16) -> None:
        if width < 16 or height < 4:
            raise ValueError("chart must be at least 16x4 characters")
        self.width = width
        self.height = height
        self._series: List[_Series] = []

    def add_series(self, name: str, times: Sequence[float], values: Sequence[float]) -> None:
        t = np.asarray(times, dtype=np.float64)
        v = np.asarray(values, dtype=np.float64)
        if t.shape != v.shape or t.ndim != 1:
            raise ValueError("times and values must be equal-length 1-D")
        if t.size == 0:
            raise ValueError(f"series {name!r} is empty")
        if len(self._series) >= len(GLYPHS):
            raise ValueError(f"too many series (max {len(GLYPHS)})")
        glyph = GLYPHS[len(self._series)]
        self._series.append(_Series(name, t, v, glyph))

    def render(self, *, title: Optional[str] = None, y_label: str = "") -> str:
        if not self._series:
            raise ValueError("no series to render")
        t_min = min(float(s.times.min()) for s in self._series)
        t_max = max(float(s.times.max()) for s in self._series)
        v_min = min(float(np.nanmin(s.values)) for s in self._series)
        v_max = max(float(np.nanmax(s.values)) for s in self._series)
        if t_max == t_min:
            t_max = t_min + 1.0
        if v_max == v_min:
            v_max = v_min + 1.0

        grid = [[" "] * self.width for _ in range(self.height)]
        for series in self._series:
            cols = ((series.times - t_min) / (t_max - t_min) * (self.width - 1)).round()
            rows = (
                (series.values - v_min) / (v_max - v_min) * (self.height - 1)
            ).round()
            for col, row in zip(cols.astype(int), rows.astype(int)):
                if np.isnan(row):
                    continue
                grid[self.height - 1 - int(row)][int(col)] = series.glyph

        label_width = max(len(f"{v_max:.0f}"), len(f"{v_min:.0f}")) + 1
        lines: List[str] = []
        if title:
            lines.append(title)
        for i, row in enumerate(grid):
            if i == 0:
                label = f"{v_max:.0f}".rjust(label_width)
            elif i == self.height - 1:
                label = f"{v_min:.0f}".rjust(label_width)
            else:
                label = " " * label_width
            lines.append(f"{label} |{''.join(row)}")
        axis = " " * label_width + " +" + "-" * self.width
        lines.append(axis)
        t_axis = (
            " " * label_width
            + "  "
            + f"{t_min:.0f}".ljust(self.width - 8)
            + f"{t_max:.0f}".rjust(8)
        )
        lines.append(t_axis)
        legend = "   ".join(f"{s.glyph} {s.name}" for s in self._series)
        lines.append(" " * label_width + "  " + legend + (f"   [{y_label}]" if y_label else ""))
        return "\n".join(lines)


def chart_time_series(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    *,
    title: Optional[str] = None,
    width: int = 72,
    height: int = 16,
    y_label: str = "MHz",
) -> str:
    """One-call helper: name -> (times, values)."""
    chart = AsciiChart(width=width, height=height)
    for name, (times, values) in series.items():
        chart.add_series(name, times, values)
    return chart.render(title=title, y_label=y_label)
