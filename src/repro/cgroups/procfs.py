"""``/proc/<tid>/stat`` emulation.

The controller reads field 39 (``processor``, 1-indexed per proc(5)) of
``/proc/<tid>/stat`` to learn which CPU core last ran a vCPU thread
(paper §III-B1), from which it looks up that core's current frequency.
The renderer below emits all 52 fields of the real format so a parser
written against proc(5) works unchanged — including the infamous comm
field, which is parenthesised and may itself contain spaces and
parentheses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class ThreadStat:
    """The subset of per-thread state the simulation tracks."""

    tid: int
    comm: str = "CPU 0/KVM"
    state: str = "R"
    utime_ticks: int = 0
    stime_ticks: int = 0
    processor: int = 0

    def render(self) -> str:
        """Render the 52-field proc(5) stat line."""
        f = ["0"] * 52
        f[0] = str(self.tid)
        f[1] = f"({self.comm})"
        f[2] = self.state
        f[13] = str(self.utime_ticks)  # field 14: utime
        f[14] = str(self.stime_ticks)  # field 15: stime
        f[38] = str(self.processor)  # field 39: processor
        return " ".join(f) + "\n"


#: Kernel USER_HZ: CPU time in /proc is reported in 10 ms ticks.
USER_HZ: int = 100


class ProcFS:
    """Registry of simulated threads with a /proc-style read API."""

    def __init__(self) -> None:
        self._stats: Dict[int, ThreadStat] = {}
        self._next_tid = 1000

    def spawn(self, comm: str, processor: int = 0) -> int:
        """Create a thread and return its tid."""
        tid = self._next_tid
        self._next_tid += 1
        self._stats[tid] = ThreadStat(tid=tid, comm=comm, processor=processor)
        return tid

    def kill(self, tid: int) -> None:
        if tid not in self._stats:
            raise ProcessLookupError(f"no such thread: {tid}")
        del self._stats[tid]

    def exists(self, tid: int) -> bool:
        return tid in self._stats

    def stat(self, tid: int) -> ThreadStat:
        st = self._stats.get(tid)
        if st is None:
            raise ProcessLookupError(f"no such thread: {tid}")
        return st

    def read_stat(self, tid: int) -> str:
        """Read ``/proc/<tid>/stat`` content."""
        return self.stat(tid).render()

    def set_processor(self, tid: int, core: int) -> None:
        self.stat(tid).processor = core

    def charge(self, tid: int, cpu_seconds: float) -> None:
        """Account CPU time to the thread's utime (in USER_HZ ticks)."""
        if cpu_seconds < 0:
            raise ValueError("negative CPU time")
        self.stat(tid).utime_ticks += int(round(cpu_seconds * USER_HZ))


def parse_stat_line(line: str) -> ThreadStat:
    """Parse a proc(5) stat line (handles parentheses in comm).

    This is the parsing a real userspace monitor must do: ``comm`` is
    delimited by the *last* ``)`` in the line, not the first whitespace.
    """
    open_idx = line.index("(")
    close_idx = line.rindex(")")
    tid = int(line[:open_idx].strip())
    comm = line[open_idx + 1 : close_idx]
    rest = line[close_idx + 1 :].split()
    # rest[0] is field 3 (state); field 39 (processor) is rest[36].
    if len(rest) < 37:
        raise ValueError(f"stat line too short: {line!r}")
    return ThreadStat(
        tid=tid,
        comm=comm,
        state=rest[0],
        utime_ticks=int(rest[11]),
        stime_ticks=int(rest[12]),
        processor=int(rest[36]),
    )
