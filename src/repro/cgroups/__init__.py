"""Simulated Linux cgroup filesystem (v1 and v2).

The paper's controller interacts with the kernel exclusively through
cgroupfs files (``cpu.max``, ``cpu.stat``, ``cgroup.threads``) plus
``/proc/<tid>/stat`` and ``/sys/devices/system/cpu/*/cpufreq``.  This
package provides an in-memory filesystem exposing byte-identical file
formats so the controller code path is the one that would run on a real
host.
"""

from repro.cgroups.fs import CgroupFS, CgroupVersion
from repro.cgroups.group import CgroupNode
from repro.cgroups.cpu import CpuController, QuotaSpec, UNLIMITED
from repro.cgroups.procfs import ProcFS, ThreadStat
from repro.cgroups.sysfs import CpuFreqSysFS

__all__ = [
    "CgroupFS",
    "CgroupVersion",
    "CgroupNode",
    "CpuController",
    "QuotaSpec",
    "UNLIMITED",
    "ProcFS",
    "ThreadStat",
    "CpuFreqSysFS",
]
