"""CPU controller state for a cgroup: bandwidth quota and usage accounting.

Mirrors the kernel's CFS bandwidth controller interface:

* cgroup v2 — ``cpu.max`` holds ``"<quota> <period>"`` where quota is a
  number of microseconds per period or the literal ``max``; ``cpu.stat``
  reports ``usage_usec`` (and throttling counters); ``cpu.weight`` is the
  proportional share (default 100).
* cgroup v1 — ``cpu.cfs_quota_us`` (``-1`` means unlimited),
  ``cpu.cfs_period_us``, ``cpuacct.usage`` (nanoseconds) and
  ``cpu.shares`` (default 1024).

One *cycle* in the paper's terminology is one microsecond of CPU time
within the controller period (paper §III-A), so ``usage_usec`` is exactly
the cumulative cycle counter the controller diffs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Sentinel quota meaning "no bandwidth limit" (``max`` in v2, ``-1`` in v1).
UNLIMITED: int = -1

#: Kernel default bandwidth period, microseconds.
DEFAULT_PERIOD_US: int = 100_000

#: cgroup v2 default weight.
DEFAULT_WEIGHT: int = 100

#: cgroup v1 default shares.
DEFAULT_SHARES: int = 1024


@dataclass(frozen=True)
class QuotaSpec:
    """A parsed bandwidth limit: ``quota_us`` per ``period_us``.

    ``quota_us == UNLIMITED`` disables the cap.  The effective rate cap in
    "cores" is :meth:`ratio` (may exceed 1.0 for multi-threaded groups).
    """

    quota_us: int = UNLIMITED
    period_us: int = DEFAULT_PERIOD_US

    def __post_init__(self) -> None:
        if self.period_us <= 0:
            raise ValueError(f"period_us must be positive, got {self.period_us}")
        if self.quota_us != UNLIMITED and self.quota_us < 0:
            raise ValueError(f"quota_us must be >= 0 or UNLIMITED, got {self.quota_us}")

    @property
    def unlimited(self) -> bool:
        return self.quota_us == UNLIMITED

    def ratio(self) -> float:
        """Rate cap expressed in CPU cores (``inf`` when unlimited)."""
        if self.unlimited:
            return float("inf")
        return self.quota_us / self.period_us

    # -- v2 ``cpu.max`` format ------------------------------------------------

    def to_v2(self) -> str:
        quota = "max" if self.unlimited else str(self.quota_us)
        return f"{quota} {self.period_us}\n"

    @classmethod
    def from_v2(cls, text: str) -> "QuotaSpec":
        parts = text.split()
        if not parts or len(parts) > 2:
            raise ValueError(f"malformed cpu.max content: {text!r}")
        quota = UNLIMITED if parts[0] == "max" else int(parts[0])
        period = int(parts[1]) if len(parts) == 2 else DEFAULT_PERIOD_US
        return cls(quota_us=quota, period_us=period)

    # -- v1 split files -------------------------------------------------------

    def to_v1_quota(self) -> str:
        return f"{self.quota_us}\n"

    def to_v1_period(self) -> str:
        return f"{self.period_us}\n"


@dataclass
class CpuController:
    """Mutable per-cgroup CPU controller state."""

    quota: QuotaSpec = field(default_factory=QuotaSpec)
    weight: int = DEFAULT_WEIGHT
    usage_usec: int = 0
    user_usec: int = 0
    system_usec: int = 0
    nr_periods: int = 0
    nr_throttled: int = 0
    throttled_usec: int = 0

    def charge(self, cpu_usec: float, *, system_fraction: float = 0.02) -> None:
        """Account ``cpu_usec`` microseconds of CPU time to this cgroup.

        The kernel splits usage into user and system time; the exact split
        is irrelevant to the controller (it reads ``usage_usec``), so a
        fixed small system fraction is used.
        """
        if cpu_usec < 0:
            raise ValueError(f"cannot charge negative CPU time: {cpu_usec}")
        usec = int(round(cpu_usec))
        self.usage_usec += usec
        sys_part = int(round(usec * system_fraction))
        self.system_usec += sys_part
        self.user_usec += usec - sys_part

    def note_period(self, *, throttled: bool, throttled_usec: float = 0.0) -> None:
        """Record one elapsed enforcement period for throttle statistics."""
        self.nr_periods += 1
        if throttled:
            self.nr_throttled += 1
            self.throttled_usec += int(round(throttled_usec))

    # -- file renderings -------------------------------------------------------

    def stat_v2(self) -> str:
        """Render ``cpu.stat`` (cgroup v2 format)."""
        return (
            f"usage_usec {self.usage_usec}\n"
            f"user_usec {self.user_usec}\n"
            f"system_usec {self.system_usec}\n"
            f"nr_periods {self.nr_periods}\n"
            f"nr_throttled {self.nr_throttled}\n"
            f"throttled_usec {self.throttled_usec}\n"
        )

    def usage_v1(self) -> str:
        """Render ``cpuacct.usage`` (cgroup v1, nanoseconds)."""
        return f"{self.usage_usec * 1000}\n"

    def shares_v1(self) -> str:
        """Render ``cpu.shares`` scaled from the v2 weight.

        The kernel maps weight 100 <-> shares 1024; we keep the same
        proportionality so both hierarchies agree.
        """
        return f"{max(2, round(self.weight * DEFAULT_SHARES / DEFAULT_WEIGHT))}\n"


def parse_cpu_stat(text: str) -> dict:
    """Parse a v2 ``cpu.stat`` file into a dict of integer fields.

    This is the exact parsing a userspace controller performs.
    Unknown keys are preserved (the kernel adds fields over time).
    """
    out: dict = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        key, _, value = line.partition(" ")
        if not value:
            raise ValueError(f"malformed cpu.stat line: {line!r}")
        out[key] = int(value)
    return out
