"""Path-based cgroup filesystem facade (v1 and v2 layouts).

The controller reads and writes *files*; this facade dispatches file
names to the tree so the control code never touches simulator internals.
Supported files:

========================  =======================================
cgroup v2                 cgroup v1
========================  =======================================
``cpu.max``               ``cpu.cfs_quota_us`` / ``cpu.cfs_period_us``
``cpu.stat``              ``cpuacct.usage`` (ns)
``cpu.weight``            ``cpu.shares``
``cgroup.threads``        ``tasks``
``cgroup.procs``          ``cgroup.procs``
========================  =======================================
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Tuple

from repro.cgroups.cpu import (
    DEFAULT_SHARES,
    DEFAULT_WEIGHT,
    QuotaSpec,
    UNLIMITED,
)
from repro.cgroups.group import CgroupNode


class CgroupVersion(enum.Enum):
    """Which cgroup hierarchy flavour the host mounts."""

    V1 = 1
    V2 = 2


class CgroupFS:
    """In-memory cgroup filesystem with a path/file API.

    >>> fs = CgroupFS(CgroupVersion.V2)
    >>> fs.mkdir("/machine.slice")
    >>> fs.mkdir("/machine.slice/vm-a")
    >>> fs.write("/machine.slice/vm-a/cpu.max", "50000 100000")
    >>> fs.read("/machine.slice/vm-a/cpu.max")
    '50000 100000\\n'
    """

    def __init__(self, version: CgroupVersion = CgroupVersion.V2) -> None:
        self.version = version
        self.root = CgroupNode("", parent=None)

    # -- directory operations ------------------------------------------------

    def mkdir(self, path: str) -> CgroupNode:
        """Create one cgroup directory (parents must exist)."""
        parent_path, _, name = path.rstrip("/").rpartition("/")
        if not name:
            raise ValueError(f"cannot create root: {path!r}")
        parent = self.node(parent_path or "/")
        return parent.add_child(name)

    def makedirs(self, path: str) -> CgroupNode:
        """Create a cgroup directory and any missing ancestors."""
        node = self.root
        for part in path.strip("/").split("/"):
            if not part:
                continue
            node = node.children.get(part) or node.add_child(part)
        return node

    def rmdir(self, path: str) -> None:
        parent_path, _, name = path.rstrip("/").rpartition("/")
        if not name:
            raise ValueError("cannot remove root cgroup")
        self.node(parent_path or "/").remove_child(name)

    def node(self, path: str) -> CgroupNode:
        """Resolve a path to its :class:`CgroupNode` (raises if missing)."""
        if path in ("", "/"):
            return self.root
        found = self.root.find(path)
        if found is None:
            raise FileNotFoundError(f"no such cgroup: {path}")
        return found

    def exists(self, path: str) -> bool:
        return path in ("", "/") or self.root.find(path) is not None

    def listdir(self, path: str) -> List[str]:
        """Child cgroup names under ``path`` (sorted, like ``ls``)."""
        return sorted(self.node(path).children)

    # -- file operations -------------------------------------------------------

    def read(self, path: str) -> str:
        node, fname = self._split(path)
        reader = self._readers().get(fname)
        if reader is None:
            raise FileNotFoundError(f"no such cgroup file: {path}")
        return reader(node)

    def write(self, path: str, content: str) -> None:
        node, fname = self._split(path)
        writer = self._writers().get(fname)
        if writer is None:
            raise PermissionError(f"file not writable or unknown: {path}")
        writer(node, content)

    # -- convenience (typed) API used by the hypervisor/scheduler ---------------

    def set_quota(self, path: str, quota: QuotaSpec) -> None:
        self.node(path).cpu.quota = quota

    def get_quota(self, path: str) -> QuotaSpec:
        return self.node(path).cpu.quota

    def attach_thread(self, path: str, tid: int) -> None:
        self.node(path).attach_thread(tid)

    # -- internals -----------------------------------------------------------------

    def _split(self, path: str) -> Tuple[CgroupNode, str]:
        dir_path, _, fname = path.rstrip("/").rpartition("/")
        if not fname:
            raise FileNotFoundError(f"not a file path: {path!r}")
        return self.node(dir_path or "/"), fname

    def _readers(self) -> Dict[str, Callable[[CgroupNode], str]]:
        if self.version is CgroupVersion.V2:
            return {
                "cpu.max": lambda n: n.cpu.quota.to_v2(),
                "cpu.stat": lambda n: n.cpu.stat_v2(),
                "cpu.weight": lambda n: f"{n.cpu.weight}\n",
                "cgroup.threads": CgroupNode.threads_file,
                "cgroup.procs": CgroupNode.procs_file,
            }
        return {
            "cpu.cfs_quota_us": lambda n: n.cpu.quota.to_v1_quota(),
            "cpu.cfs_period_us": lambda n: n.cpu.quota.to_v1_period(),
            "cpuacct.usage": lambda n: n.cpu.usage_v1(),
            "cpu.shares": lambda n: n.cpu.shares_v1(),
            "tasks": CgroupNode.threads_file,
            "cgroup.procs": CgroupNode.procs_file,
        }

    def _writers(self) -> Dict[str, Callable[[CgroupNode, str], None]]:
        if self.version is CgroupVersion.V2:
            return {
                "cpu.max": _write_cpu_max,
                "cpu.weight": _write_weight,
                "cgroup.threads": _write_thread,
            }
        return {
            "cpu.cfs_quota_us": _write_v1_quota,
            "cpu.cfs_period_us": _write_v1_period,
            "cpu.shares": _write_shares,
            "tasks": _write_thread,
        }


def _write_cpu_max(node: CgroupNode, content: str) -> None:
    node.cpu.quota = QuotaSpec.from_v2(content)


def _write_weight(node: CgroupNode, content: str) -> None:
    weight = int(content.strip())
    if not 1 <= weight <= 10_000:
        raise ValueError(f"cpu.weight out of range [1, 10000]: {weight}")
    node.cpu.weight = weight


def _write_shares(node: CgroupNode, content: str) -> None:
    shares = int(content.strip())
    if shares < 2:
        raise ValueError(f"cpu.shares must be >= 2: {shares}")
    node.cpu.weight = max(1, round(shares * DEFAULT_WEIGHT / DEFAULT_SHARES))


def _write_v1_quota(node: CgroupNode, content: str) -> None:
    quota = int(content.strip())
    if quota < 0:
        quota = UNLIMITED
    node.cpu.quota = QuotaSpec(quota_us=quota, period_us=node.cpu.quota.period_us)


def _write_v1_period(node: CgroupNode, content: str) -> None:
    period = int(content.strip())
    node.cpu.quota = QuotaSpec(quota_us=node.cpu.quota.quota_us, period_us=period)


def _write_thread(node: CgroupNode, content: str) -> None:
    node.attach_thread(int(content.strip()))
