"""Cgroup tree nodes.

A :class:`CgroupNode` is one directory in the cgroup hierarchy.  KVM
creates, per VM, a slice directory containing one child cgroup per vCPU,
each holding exactly one thread (paper §III-B1); the generic tree here
supports arbitrary nesting so the same code also models the root slice.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.cgroups.cpu import CpuController

_NAME_FORBIDDEN = set("/\x00")


class CgroupNode:
    """One cgroup directory: children, member threads, CPU controller."""

    def __init__(self, name: str, parent: Optional["CgroupNode"] = None) -> None:
        if parent is not None:
            if not name or any(ch in _NAME_FORBIDDEN for ch in name):
                raise ValueError(f"invalid cgroup name: {name!r}")
        self.name = name
        self.parent = parent
        self.children: Dict[str, CgroupNode] = {}
        self.threads: List[int] = []
        self.cpu = CpuController()

    # -- tree structure ---------------------------------------------------------

    @property
    def path(self) -> str:
        """Absolute cgroupfs path of this node (root is ``/``)."""
        if self.parent is None:
            return "/"
        parent_path = self.parent.path
        return parent_path + self.name if parent_path == "/" else parent_path + "/" + self.name

    def add_child(self, name: str) -> "CgroupNode":
        if name in self.children:
            raise FileExistsError(f"cgroup already exists: {self.path}/{name}")
        child = CgroupNode(name, parent=self)
        self.children[name] = child
        return child

    def remove_child(self, name: str) -> None:
        child = self.children.get(name)
        if child is None:
            raise FileNotFoundError(f"no such cgroup: {self.path}/{name}")
        if child.children:
            raise OSError(f"cgroup not empty: {child.path}")
        if child.threads:
            raise OSError(f"cgroup still has threads: {child.path}")
        del self.children[name]

    def walk(self) -> Iterator["CgroupNode"]:
        """Depth-first iteration over this node and all descendants."""
        yield self
        for child in self.children.values():
            yield from child.walk()

    def find(self, relpath: str) -> Optional["CgroupNode"]:
        """Resolve a ``/``-separated relative path; None when missing."""
        node: CgroupNode = self
        for part in relpath.strip("/").split("/"):
            if not part:
                continue
            nxt = node.children.get(part)
            if nxt is None:
                return None
            node = nxt
        return node

    # -- thread membership --------------------------------------------------------

    def attach_thread(self, tid: int) -> None:
        if tid in self.threads:
            raise ValueError(f"tid {tid} already in cgroup {self.path}")
        self.threads.append(tid)

    def detach_thread(self, tid: int) -> None:
        try:
            self.threads.remove(tid)
        except ValueError:
            raise ValueError(f"tid {tid} not in cgroup {self.path}") from None

    def all_threads(self) -> List[int]:
        """All tids in this subtree (the v1 hierarchical view)."""
        tids: List[int] = []
        for node in self.walk():
            tids.extend(node.threads)
        return tids

    # -- file renderings ------------------------------------------------------------

    def threads_file(self) -> str:
        """Render ``cgroup.threads`` (v2) / ``tasks`` (v1): one tid per line."""
        return "".join(f"{tid}\n" for tid in sorted(self.threads))

    def procs_file(self) -> str:
        """Render ``cgroup.procs``; in this model each thread is a process."""
        return self.threads_file()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CgroupNode({self.path!r}, threads={self.threads}, children={list(self.children)})"
