"""``/sys/devices/system/cpu/cpu<i>/cpufreq`` emulation.

The controller reads ``scaling_cur_freq`` for the core a vCPU thread last
ran on to estimate the vCPU's virtual frequency (paper §III-B1).  Like the
real kernel, values are reported in **kHz** (the paper says "Hertz" but
cpufreq sysfs has always been kHz; the conversion lives in one place in
``repro.core.units``).
"""

from __future__ import annotations

from typing import List, Sequence


class CpuFreqSysFS:
    """Read-only view over per-core frequencies maintained by the HW model."""

    def __init__(self, freqs_khz: Sequence[float], min_khz: float, max_khz: float) -> None:
        self._freqs_khz: List[float] = list(freqs_khz)
        self.min_khz = min_khz
        self.max_khz = max_khz

    @property
    def num_cpus(self) -> int:
        return len(self._freqs_khz)

    def update(self, freqs_khz: Sequence[float]) -> None:
        """Called by the hardware model each step with fresh frequencies."""
        if len(freqs_khz) != len(self._freqs_khz):
            raise ValueError("core count changed")
        self._freqs_khz = list(freqs_khz)

    def read(self, path: str) -> str:
        """Read a sysfs path such as
        ``/sys/devices/system/cpu/cpu3/cpufreq/scaling_cur_freq``."""
        parts = [p for p in path.split("/") if p]
        try:
            cpu_part = next(p for p in parts if p.startswith("cpu") and p[3:].isdigit())
        except StopIteration:
            raise FileNotFoundError(f"not a per-cpu path: {path}") from None
        core = int(cpu_part[3:])
        fname = parts[-1]
        return self._read_core_file(core, fname)

    def scaling_cur_freq(self, core: int) -> int:
        """Current frequency of ``core`` in kHz (rounded, as the kernel does)."""
        self._check(core)
        return int(round(self._freqs_khz[core]))

    def _read_core_file(self, core: int, fname: str) -> str:
        self._check(core)
        if fname == "scaling_cur_freq":
            return f"{self.scaling_cur_freq(core)}\n"
        if fname == "cpuinfo_min_freq" or fname == "scaling_min_freq":
            return f"{int(self.min_khz)}\n"
        if fname == "cpuinfo_max_freq" or fname == "scaling_max_freq":
            return f"{int(self.max_khz)}\n"
        raise FileNotFoundError(f"no such cpufreq file: {fname}")

    def _check(self, core: int) -> None:
        if not 0 <= core < len(self._freqs_khz):
            raise FileNotFoundError(f"no such cpu: cpu{core}")
