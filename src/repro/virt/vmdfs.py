"""VMDFS-style predictive share controller (paper §II, refs [21]/[22]).

The related work the paper positions against: predict each VM's CPU
usage and adjust its *share* of the host accordingly, mainly to save
energy.  Two structural limitations the paper calls out, both visible
in this implementation:

1. **no differentiated frequencies** — every VM's share derives from
   its *observed usage*, so two equally hungry VMs always converge to
   equal speed regardless of what their owners paid for;
2. **no guarantee under contention** — when predictions exceed capacity
   the VMs "compete for resources at the frequency imposed by the
   hardware" (§II), i.e. fair-share starvation, historically answered
   with migrations.

The predictor is an exponentially weighted moving average of per-VM
consumption, the actuator is the VM cgroup's ``cpu.weight`` — faithful
to the class of systems cited, without reproducing any one paper's
exact regression model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.virt.vm import VMInstance

#: cgroup v2 weight range.
MIN_WEIGHT, MAX_WEIGHT = 1, 10_000


@dataclass
class _VmState:
    ewma_cores: float = 0.0
    last_usage_usec: float = 0.0
    seen: bool = False


class VmdfsController:
    """Usage-predicting share controller over VM cgroups."""

    def __init__(self, fs, *, alpha: float = 0.3) -> None:
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.fs = fs
        self.alpha = alpha
        self._states: Dict[str, _VmState] = {}

    def watch(self, vm: VMInstance) -> None:
        self._states[vm.name] = _VmState()

    def predicted_cores(self, vm_name: str) -> float:
        return self._states[vm_name].ewma_cores

    def tick(self, vms: Mapping[str, VMInstance], dt: float) -> Dict[str, int]:
        """One control iteration: update predictions, rewrite weights."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        predictions: Dict[str, float] = {}
        for name, vm in vms.items():
            state = self._states.get(name)
            if state is None:
                continue
            usage = self._vm_usage_usec(vm)
            delta_cores = max(0.0, usage - state.last_usage_usec) / (dt * 1e6)
            state.last_usage_usec = usage
            if not state.seen:
                state.ewma_cores = delta_cores
                state.seen = True
            else:
                state.ewma_cores += self.alpha * (delta_cores - state.ewma_cores)
            predictions[name] = state.ewma_cores

        total = sum(predictions.values())
        written: Dict[str, int] = {}
        for name, predicted in predictions.items():
            share = predicted / total if total > 0 else 1.0 / max(len(predictions), 1)
            weight = int(round(MIN_WEIGHT + share * (MAX_WEIGHT - MIN_WEIGHT)))
            weight = min(MAX_WEIGHT, max(MIN_WEIGHT, weight))
            self._write_weight(vms[name], weight)
            written[name] = weight
        return written

    # -- cgroup access -----------------------------------------------------------

    def _vm_usage_usec(self, vm: VMInstance) -> float:
        total = 0.0
        for vcpu in vm.vcpus:
            total += self.fs.node(vcpu.cgroup_path).cpu.usage_usec
        return total

    def _write_weight(self, vm: VMInstance, weight: int) -> None:
        from repro.cgroups.fs import CgroupVersion

        if self.fs.version is CgroupVersion.V2:
            self.fs.write(f"{vm.cgroup_path}/cpu.weight", str(weight))
        else:
            shares = max(2, round(weight * 1024 / 100))
            self.fs.write(f"{vm.cgroup_path}/cpu.shares", str(shares))
