"""VMDFS-style predictive share controller (paper §II, refs [21]/[22]).

The related work the paper positions against: predict each VM's CPU
usage and adjust its *share* of the host accordingly, mainly to save
energy.  Two structural limitations the paper calls out, both visible
in this implementation:

1. **no differentiated frequencies** — every VM's share derives from
   its *observed usage*, so two equally hungry VMs always converge to
   equal speed regardless of what their owners paid for;
2. **no guarantee under contention** — when predictions exceed capacity
   the VMs "compete for resources at the frequency imposed by the
   hardware" (§II), i.e. fair-share starvation, historically answered
   with migrations.

The predictor is an exponentially weighted moving average of per-VM
consumption, the actuator is the VM cgroup's ``cpu.weight`` — faithful
to the class of systems cited, without reproducing any one paper's
exact regression model.

The controller implements the shared
:class:`~repro.core.api.Controller` protocol
(``register_vm`` / ``unregister_vm`` / ``tick(t) -> report``), so
engines and benchmarks drive it exactly like the paper's
:class:`~repro.core.controller.VirtualFrequencyController`.  The
pre-protocol ``tick(vms, dt)`` spelling was removed after one
deprecation cycle — ``register_vm``/``watch`` the VMs, then
``tick(t)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

from repro.core.controller import ControllerReport
from repro.virt.vm import VMInstance

#: cgroup v2 weight range.
MIN_WEIGHT, MAX_WEIGHT = 1, 10_000


@dataclass
class _VmState:
    ewma_cores: float = 0.0
    last_usage_usec: float = 0.0
    seen: bool = False


class VmdfsController:
    """Usage-predicting share controller over VM cgroups.

    ``vm_lookup`` resolves a VM name to its :class:`VMInstance` when
    VMs are declared through the protocol's :meth:`register_vm` (e.g.
    ``hypervisor.vm``); VMs handed over directly via :meth:`watch`
    need no lookup.
    """

    def __init__(
        self,
        fs,
        *,
        alpha: float = 0.3,
        period_s: float = 1.0,
        vm_lookup: Optional[Callable[[str], VMInstance]] = None,
    ) -> None:
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.fs = fs
        self.alpha = alpha
        self.period_s = period_s
        self.vm_lookup = vm_lookup
        self._states: Dict[str, _VmState] = {}
        self._vms: Dict[str, VMInstance] = {}
        self._last_t: Optional[float] = None
        self.reports: List[ControllerReport] = []
        self.keep_reports: bool = True

    # -- VM registry (Controller protocol) --------------------------------------

    def watch(self, vm: VMInstance) -> None:
        """Track a VM by instance (the pre-protocol registration)."""
        self._states[vm.name] = _VmState()
        self._vms[vm.name] = vm

    def register_vm(
        self,
        vm_name: str,
        vfreq_mhz: float = 0.0,
        *,
        tenant: Optional[str] = None,
    ) -> None:
        """Declare a hosted VM.

        ``vfreq_mhz`` and ``tenant`` are accepted for protocol
        compatibility and ignored: VMDFS-class systems have no notion
        of differentiated frequency guarantees (precisely the §II
        criticism), and this baseline does not bill.
        """
        del tenant
        vm = self._vms.get(vm_name)
        if vm is None:
            if self.vm_lookup is None:
                raise KeyError(
                    f"unknown VM {vm_name!r}: watch() it first or construct "
                    f"the controller with vm_lookup="
                )
            vm = self.vm_lookup(vm_name)
        self.watch(vm)

    def unregister_vm(self, vm_name: str) -> None:
        self._states.pop(vm_name, None)
        self._vms.pop(vm_name, None)

    def predicted_cores(self, vm_name: str) -> float:
        return self._states[vm_name].ewma_cores

    # -- the control loop -------------------------------------------------------

    def tick(self, t: float) -> ControllerReport:
        """One control iteration at simulation time ``t``.

        Returns a :class:`ControllerReport` whose ``allocations`` map
        each VM's cgroup path to the weight written.  The pre-protocol
        ``tick(vms, dt)`` form was removed; passing a mapping here now
        fails the ``float()`` conversion with a ``TypeError``.
        """
        t = float(t)
        step = self.period_s if self._last_t is None else t - self._last_t
        t0 = time.perf_counter()
        written = self._control(self._vms, step)
        self._last_t = t
        report = ControllerReport(t=t)
        report.allocations = {
            self._vms[name].cgroup_path: float(weight)
            for name, weight in written.items()
            if name in self._vms
        }
        report.timings.enforce = time.perf_counter() - t0
        if self.keep_reports:
            self.reports.append(report)
        return report

    def _control(
        self, vms: Mapping[str, VMInstance], dt: float
    ) -> Dict[str, int]:
        """Update predictions and rewrite weights for one iteration."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        predictions: Dict[str, float] = {}
        for name, vm in vms.items():
            state = self._states.get(name)
            if state is None:
                continue
            usage = self._vm_usage_usec(vm)
            delta_cores = max(0.0, usage - state.last_usage_usec) / (dt * 1e6)
            state.last_usage_usec = usage
            if not state.seen:
                state.ewma_cores = delta_cores
                state.seen = True
            else:
                state.ewma_cores += self.alpha * (delta_cores - state.ewma_cores)
            predictions[name] = state.ewma_cores

        total = sum(predictions.values())
        written: Dict[str, int] = {}
        for name, predicted in predictions.items():
            share = predicted / total if total > 0 else 1.0 / max(len(predictions), 1)
            weight = int(round(MIN_WEIGHT + share * (MAX_WEIGHT - MIN_WEIGHT)))
            weight = min(MAX_WEIGHT, max(MIN_WEIGHT, weight))
            self._write_weight(vms[name], weight)
            written[name] = weight
        return written

    # -- cgroup access -----------------------------------------------------------

    def _vm_usage_usec(self, vm: VMInstance) -> float:
        total = 0.0
        for vcpu in vm.vcpus:
            total += self.fs.node(vcpu.cgroup_path).cpu.usage_usec
        return total

    def _write_weight(self, vm: VMInstance, weight: int) -> None:
        from repro.cgroups.fs import CgroupVersion

        if self.fs.version is CgroupVersion.V2:
            self.fs.write(f"{vm.cgroup_path}/cpu.weight", str(weight))
        else:
            shares = max(2, round(weight * 1024 / 100))
            self.fs.write(f"{vm.cgroup_path}/cpu.shares", str(shares))
