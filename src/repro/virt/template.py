"""VM templates — with the paper's new *virtual frequency* field.

A template is the unit a customer picks: vCPU count, memory, and (the
paper's contribution, §III-A) a guaranteed virtual frequency ``F_v`` in
MHz.  The evaluation uses three templates (Tables II, III, V):

=======  ======  ==========
name     vCPUs   frequency
=======  ======  ==========
small    2       500 MHz
medium   4       1 200 MHz
large    4       1 800 MHz
=======  ======  ==========

Memory sizes are not given in the paper (its §V explicitly assumes memory
is plentiful); the values here are conventional for such shapes and only
matter to the optional memory-aware placement constraint.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class VMTemplate:
    """Immutable VM shape, including the guaranteed virtual frequency."""

    name: str
    vcpus: int
    vfreq_mhz: float
    memory_mb: int = 2048
    #: Billing owner of VMs provisioned from this template (purely
    #: descriptive — no scheduling or control decision reads it).
    tenant: str = "default"

    def __post_init__(self) -> None:
        if self.vcpus <= 0:
            raise ValueError(f"vcpus must be positive, got {self.vcpus}")
        if self.vfreq_mhz <= 0:
            raise ValueError(f"vfreq_mhz must be positive, got {self.vfreq_mhz}")
        if self.memory_mb <= 0:
            raise ValueError(f"memory_mb must be positive, got {self.memory_mb}")
        if not self.tenant:
            raise ValueError("tenant must be non-empty")

    @property
    def demand_mhz(self) -> float:
        """Total frequency demand ``k_v^vCPU * F_v`` (Eq. 7 LHS term)."""
        return self.vcpus * self.vfreq_mhz

    def with_tenant(self, tenant: str) -> "VMTemplate":
        """The same shape owned by a different tenant (catalogue reuse)."""
        return replace(self, tenant=tenant)


SMALL = VMTemplate(name="small", vcpus=2, vfreq_mhz=500.0, memory_mb=1024)
MEDIUM = VMTemplate(name="medium", vcpus=4, vfreq_mhz=1200.0, memory_mb=4096)
LARGE = VMTemplate(name="large", vcpus=4, vfreq_mhz=1800.0, memory_mb=4096)

_CATALOGUE = {t.name: t for t in (SMALL, MEDIUM, LARGE)}


def template_by_name(name: str) -> VMTemplate:
    """Look up one of the paper's three evaluation templates."""
    try:
        return _CATALOGUE[name]
    except KeyError:
        raise KeyError(
            f"unknown template {name!r}; known: {sorted(_CATALOGUE)}"
        ) from None
