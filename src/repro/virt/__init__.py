"""KVM-like virtualisation layer: templates, VM instances, hypervisor."""

from repro.virt.template import VMTemplate, SMALL, MEDIUM, LARGE, template_by_name
from repro.virt.vm import VMInstance, VCpu
from repro.virt.hypervisor import Hypervisor
from repro.virt.burst import BurstPolicy, BurstVMController
from repro.virt.vmdfs import VmdfsController
from repro.virt.deflation import DeflationController

__all__ = [
    "VMTemplate",
    "SMALL",
    "MEDIUM",
    "LARGE",
    "template_by_name",
    "VMInstance",
    "VCpu",
    "Hypervisor",
    "BurstPolicy",
    "BurstVMController",
    "VmdfsController",
    "DeflationController",
]
