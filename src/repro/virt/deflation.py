"""Spot-instance resource deflation (paper §II, refs [15]-[17]).

The harvesting/spot line of work: spot VMs run on resources the
provider may *reclaim* at any moment; instead of killing them outright,
deflation shrinks their CPU allocation and restores it when the
resources come back.  Suited to "replayable, time-bounded" batch jobs
(§II) — and contrasted with the paper's approach, where even the lowest
tier keeps a *guaranteed* floor.

The controller here tracks a reclaim target in MHz: while resources are
reclaimed, every watched spot VM's per-vCPU quota is scaled down
proportionally (possibly to near zero — the spot trade-off); on release
the quotas reopen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.cgroups.cpu import QuotaSpec
from repro.virt.vm import VMInstance

#: Never squeeze a spot vCPU below this fraction of a core (kernel
#: minimum quota territory; a real system might pause instead).
MIN_FRACTION = 0.01


@dataclass
class DeflationState:
    """Current deflation level of one spot VM (1.0 = fully inflated)."""

    factor: float = 1.0


class DeflationController:
    """Shrinks/restores spot VMs when the provider reclaims capacity."""

    def __init__(self, fs, *, fmax_mhz: float, period_us: int = 100_000) -> None:
        if fmax_mhz <= 0:
            raise ValueError("fmax_mhz must be positive")
        self.fs = fs
        self.fmax_mhz = fmax_mhz
        self.period_us = period_us
        self._states: Dict[str, DeflationState] = {}
        self.reclaimed_mhz: float = 0.0

    def watch(self, vm: VMInstance) -> None:
        self._states[vm.name] = DeflationState()

    def factor_of(self, vm_name: str) -> float:
        return self._states[vm_name].factor

    # -- provider signals -----------------------------------------------------

    def reclaim(self, mhz: float) -> None:
        """The provider takes ``mhz`` away from the spot pool."""
        if mhz < 0:
            raise ValueError("cannot reclaim a negative amount")
        self.reclaimed_mhz += mhz

    def release(self, mhz: float) -> None:
        """The provider hands ``mhz`` back."""
        if mhz < 0:
            raise ValueError("cannot release a negative amount")
        self.reclaimed_mhz = max(0.0, self.reclaimed_mhz - mhz)

    # -- enforcement --------------------------------------------------------------

    def apply(self, vms: Mapping[str, VMInstance]) -> Dict[str, float]:
        """Rescale every watched VM's quotas to the current reclaim level.

        Returns the deflation factor applied per VM.
        """
        watched = [vms[name] for name in vms if name in self._states]
        pool_mhz = sum(
            vm.num_vcpus * self.fmax_mhz for vm in watched
        )
        factors: Dict[str, float] = {}
        if pool_mhz <= 0:
            return factors
        remaining = max(0.0, pool_mhz - self.reclaimed_mhz)
        factor = max(MIN_FRACTION, remaining / pool_mhz)
        for vm in watched:
            self._states[vm.name].factor = factor
            quota = max(
                1_000, int(round(factor * self.period_us))
            )  # per-vCPU: factor of one core
            for vcpu in vm.vcpus:
                self.fs.set_quota(
                    vcpu.cgroup_path,
                    QuotaSpec(quota_us=quota, period_us=self.period_us),
                )
            factors[vm.name] = factor
        return factors

    def restore_all(self, vms: Mapping[str, VMInstance]) -> None:
        """Full inflation: drop every watched VM's cap."""
        self.reclaimed_mhz = 0.0
        for name, vm in vms.items():
            if name not in self._states:
                continue
            self._states[name].factor = 1.0
            for vcpu in vm.vcpus:
                self.fs.set_quota(
                    vcpu.cgroup_path, QuotaSpec(quota_us=-1, period_us=self.period_us)
                )
