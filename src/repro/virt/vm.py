"""VM instances and their vCPUs.

One KVM vCPU is one host kernel thread living in its own sub-cgroup of
the VM's cgroup (paper §III-B1: "a sub cgroup for each vCPU ... only one
identifier when using KVM virtual machines").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.sched.entity import SchedEntity
from repro.virt.template import VMTemplate


@dataclass
class VCpu:
    """One virtual CPU: a thread plus its dedicated cgroup."""

    index: int
    tid: int
    cgroup_path: str
    entity: SchedEntity

    @property
    def demand(self) -> float:
        return self.entity.demand

    def set_demand(self, fraction: float) -> None:
        self.entity.set_demand(fraction)


@dataclass
class VMInstance:
    """A provisioned VM: template + vCPU threads + cgroup subtree."""

    name: str
    template: VMTemplate
    cgroup_path: str
    vcpus: List[VCpu] = field(default_factory=list)
    workload: Optional[object] = None  # duck-typed repro.workloads.base.Workload

    @property
    def num_vcpus(self) -> int:
        return len(self.vcpus)

    @property
    def vfreq_mhz(self) -> float:
        """The guaranteed virtual frequency ``F_{V(i)}``."""
        return self.template.vfreq_mhz

    def tids(self) -> List[int]:
        return [v.tid for v in self.vcpus]

    def total_allocated(self) -> float:
        """CPU-seconds granted to all vCPUs in the last tick."""
        return sum(v.entity.allocated for v in self.vcpus)

    def set_uniform_demand(self, fraction: float) -> None:
        for vcpu in self.vcpus:
            vcpu.set_demand(fraction)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VMInstance({self.name!r}, template={self.template.name}, "
            f"vcpus={self.num_vcpus}, vfreq={self.vfreq_mhz} MHz)"
        )
