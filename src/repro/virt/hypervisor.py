"""KVM/libvirt-style VM provisioning.

Provisioning a VM builds the exact cgroup topology the controller
discovers on a real KVM host (paper §III-B1):

    /machine.slice/<vm-name>/            one cgroup per VM (equal weight)
    /machine.slice/<vm-name>/vcpu<j>/    one sub-cgroup per vCPU
                                          - cgroup.threads: one KVM tid
                                          - cpu.max: written by the controller
                                          - cpu.stat: read by the controller

Admission control enforces the paper's core-splitting constraint (Eq. 7)
plus memory capacity, so a node cannot be over-subscribed beyond what the
controller can guarantee.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.hw.node import MACHINE_SLICE, Node
from repro.sched.entity import SchedEntity
from repro.virt.template import VMTemplate
from repro.virt.vm import VCpu, VMInstance


class AdmissionError(Exception):
    """Raised when a VM cannot be hosted without breaking guarantees."""


class Hypervisor:
    """Provision and destroy VMs on one node."""

    def __init__(self, node: Node, *, enforce_admission: bool = True) -> None:
        self.node = node
        self.enforce_admission = enforce_admission
        self._vms: Dict[str, VMInstance] = {}

    # -- capacity queries --------------------------------------------------------

    @property
    def vms(self) -> List[VMInstance]:
        return list(self._vms.values())

    def vm(self, name: str) -> VMInstance:
        return self._vms[name]

    def committed_mhz(self) -> float:
        """Sum of guaranteed frequency demand of hosted VMs (Eq. 7 LHS)."""
        return sum(vm.template.demand_mhz for vm in self._vms.values())

    def committed_memory_mb(self) -> int:
        return sum(vm.template.memory_mb for vm in self._vms.values())

    def admits(self, template: VMTemplate) -> bool:
        """Would Eq. 7 and memory capacity still hold with one more VM?"""
        spec = self.node.spec
        freq_ok = (
            self.committed_mhz() + template.demand_mhz <= spec.capacity_mhz + 1e-9
        )
        mem_ok = self.committed_memory_mb() + template.memory_mb <= spec.memory_mb
        return freq_ok and mem_ok

    # -- lifecycle ------------------------------------------------------------------

    def provision(self, template: VMTemplate, name: str) -> VMInstance:
        """Create a VM: cgroup subtree, vCPU threads, scheduling entities."""
        if name in self._vms:
            raise ValueError(f"VM name already in use: {name}")
        if template.vfreq_mhz > self.node.spec.fmax_mhz:
            raise AdmissionError(
                f"template {template.name} wants {template.vfreq_mhz} MHz but "
                f"{self.node.spec.name} peaks at {self.node.spec.fmax_mhz} MHz"
            )
        if self.enforce_admission and not self.admits(template):
            raise AdmissionError(
                f"node {self.node.spec.name} cannot guarantee {template.name} "
                f"({self.committed_mhz():.0f}/{self.node.spec.capacity_mhz:.0f} MHz committed)"
            )

        vm_path = f"{MACHINE_SLICE}/{name}"
        self.node.fs.makedirs(vm_path)
        vm = VMInstance(name=name, template=template, cgroup_path=vm_path)
        for j in range(template.vcpus):
            vcpu_path = f"{vm_path}/vcpu{j}"
            self.node.fs.makedirs(vcpu_path)
            tid = self.node.procfs.spawn(comm=f"CPU {j}/KVM")
            self.node.fs.attach_thread(vcpu_path, tid)
            entity = SchedEntity(tid=tid, cgroup_path=vcpu_path)
            self.node.register_entity(entity)
            vm.vcpus.append(VCpu(index=j, tid=tid, cgroup_path=vcpu_path, entity=entity))
        self._vms[name] = vm
        return vm

    def destroy(self, name: str) -> None:
        """Tear down a VM: kill threads, remove its cgroup subtree."""
        vm = self._vms.pop(name, None)
        if vm is None:
            raise KeyError(f"no such VM: {name}")
        for vcpu in vm.vcpus:
            self.node.fs.node(vcpu.cgroup_path).detach_thread(vcpu.tid)
            self.node.procfs.kill(vcpu.tid)
            self.node.unregister_entity(vcpu.tid)
            self.node.fs.rmdir(vcpu.cgroup_path)
        self.node.fs.rmdir(vm.cgroup_path)

    # -- controller discovery helper -----------------------------------------------------

    def vcpu_cgroup_paths(self) -> Dict[str, List[str]]:
        """Map vm name -> vCPU cgroup paths, as a controller walking
        /machine.slice would discover them."""
        out: Dict[str, List[str]] = {}
        for name, vm in self._vms.items():
            out[name] = [v.cgroup_path for v in vm.vcpus]
        return out


def provision_fleet(
    hypervisor: Hypervisor,
    template: VMTemplate,
    count: int,
    *,
    prefix: Optional[str] = None,
) -> List[VMInstance]:
    """Provision ``count`` identical VMs named ``<prefix>-<k>``."""
    prefix = prefix or template.name
    return [
        hypervisor.provision(template, f"{prefix}-{k}") for k in range(count)
    ]
