"""Burst-VM baseline (paper §II related work).

Public clouds' burstable instances (EC2 T-series, Azure B-series) cap a
vCPU at a low *baseline* utilisation; while actual use sits below the
baseline the VM accrues CPU credits, and accumulated credits let the VM
run uncapped for a while.  The paper criticises three aspects, all
reproducible with this model:

1. the baseline is part of the template (~10 % of a vCPU), not chosen by
   the customer;
2. while bursting there is *no* cap at all (classic consolidation risk);
3. a credit-less VM stays capped even when the node is otherwise idle —
   wasting resources.

The controller here is deliberately node-state *unaware*: it only looks
at the VM's own usage, which is exactly limitation (3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.cgroups.cpu import QuotaSpec
from repro.virt.vm import VMInstance


@dataclass(frozen=True)
class BurstPolicy:
    """Template-level burst parameters (EC2 T3-like defaults)."""

    baseline_fraction: float = 0.10  # of one vCPU
    credit_cap_seconds: float = 600.0  # max accrued burst seconds
    initial_credits: float = 60.0

    def __post_init__(self) -> None:
        if not 0 < self.baseline_fraction <= 1:
            raise ValueError("baseline_fraction must be in (0, 1]")
        if self.credit_cap_seconds < 0 or self.initial_credits < 0:
            raise ValueError("credit amounts must be >= 0")


@dataclass
class _BurstState:
    credits: float
    bursting: bool = False


class BurstVMController:
    """Applies burst semantics by writing per-vCPU ``cpu.max`` quotas."""

    def __init__(self, fs, policy: BurstPolicy = BurstPolicy(), period_us: int = 100_000) -> None:
        self.fs = fs
        self.policy = policy
        self.period_us = period_us
        self._states: Dict[str, _BurstState] = {}
        self._last_usage: Dict[str, int] = {}

    def watch(self, vm: VMInstance) -> None:
        self._states[vm.name] = _BurstState(credits=self.policy.initial_credits)

    def credits_of(self, vm_name: str) -> float:
        return self._states[vm_name].credits

    def is_bursting(self, vm_name: str) -> bool:
        return self._states[vm_name].bursting

    def tick(self, vms: Dict[str, VMInstance], dt: float) -> None:
        """One control iteration: accrue/spend credits, rewrite quotas."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        for name, vm in vms.items():
            state = self._states.get(name)
            if state is None:
                continue
            used_usec = self._read_vm_usage(vm)
            prev = self._last_usage.get(name, used_usec)
            self._last_usage[name] = used_usec
            used_s = (used_usec - prev) / 1e6

            baseline_s = self.policy.baseline_fraction * vm.num_vcpus * dt
            if used_s < baseline_s:
                state.credits = min(
                    self.policy.credit_cap_seconds,
                    state.credits + (baseline_s - used_s),
                )
            else:
                state.credits = max(0.0, state.credits - (used_s - baseline_s))

            state.bursting = state.credits > 0.0 and self._wants_burst(vm)
            self._apply(vm, state)

    def _wants_burst(self, vm: VMInstance) -> bool:
        """A VM bursts when its vCPUs demand more than the baseline."""
        return any(v.demand > self.policy.baseline_fraction for v in vm.vcpus)

    def _apply(self, vm: VMInstance, state: _BurstState) -> None:
        for vcpu in vm.vcpus:
            if state.bursting:
                quota = QuotaSpec(quota_us=-1, period_us=self.period_us)  # uncapped
            else:
                quota = QuotaSpec(
                    quota_us=int(self.policy.baseline_fraction * self.period_us),
                    period_us=self.period_us,
                )
            self.fs.set_quota(vcpu.cgroup_path, quota)

    def _read_vm_usage(self, vm: VMInstance) -> int:
        """Aggregate usage across the VM's vCPU cgroups (µs)."""
        total = 0
        for vcpu in vm.vcpus:
            node = self.fs.node(vcpu.cgroup_path)
            total += node.cpu.usage_usec
        return total
