"""Dependency-free span tracing for the controller loop.

One controller tick becomes one *trace*: a tree of :class:`Span` nodes
— the tick span at the root, the six paper stages (Fig. 2) as children,
and per-VM / per-vCPU sub-spans below those, each carrying the
attributes an operator greps for (market size, credits spent, engine,
consumption, allocation).

Spans flow to pluggable :class:`SpanSink` s:

* :class:`RingSink` — bounded in-memory ring, what tests and the
  ``/metrics`` endpoint read;
* :class:`JsonlSink` — one JSON object per span, line-buffered, the
  durable form;
* :func:`write_chrome_trace` — export any span iterable as a Chrome
  ``trace_event`` JSON file, loadable in Perfetto (https://ui.perfetto.dev)
  or ``chrome://tracing`` for a flame view of the loop.

The tracer also folds every ``stage:*`` span into a fixed-bucket
:class:`Histogram` per stage — the backing store of the
``vfreq_span_seconds{stage}`` Prometheus family.

Timestamps are microseconds since the tracer's epoch
(``time.perf_counter`` based, monotonic).  The controller emits its
span tree *post hoc* from the stage timings it already measures, so an
attached-but-idle tracer costs the hot loop nothing; the
context-manager API (:meth:`Tracer.span`) exists for organic call-site
timing outside the tick path.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

#: Histogram bucket upper bounds, seconds (log-spaced around the
#: paper's ~ms-scale stage costs, §IV-A2).
BUCKET_BOUNDS = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 1.0, 10.0
)

#: Span-name prefix that feeds the per-stage duration histograms.
STAGE_PREFIX = "stage:"


@dataclass
class Span:
    """One timed node of a tick's span tree."""

    name: str
    trace_id: int          # the controller tick the span belongs to
    span_id: int
    parent_id: Optional[int]
    start_us: float        # µs since the tracer's epoch
    duration_us: float
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_us": self.start_us,
            "duration_us": self.duration_us,
            "attrs": self.attrs,
        }


class SpanSink:
    """Receives finished spans; subclasses override :meth:`on_span`."""

    def on_span(self, span: Span) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        pass


class RingSink(SpanSink):
    """Keeps the last ``maxlen`` spans in memory."""

    def __init__(self, maxlen: int = 4096) -> None:
        self._ring: deque = deque(maxlen=maxlen)

    def on_span(self, span: Span) -> None:
        self._ring.append(span)

    @property
    def spans(self) -> List[Span]:
        return list(self._ring)

    def by_trace(self, trace_id: int) -> List[Span]:
        return [s for s in self._ring if s.trace_id == trace_id]

    def trace_ids(self) -> List[int]:
        """Distinct tick ids present in the ring, in arrival order."""
        seen: List[int] = []
        for s in self._ring:
            if not seen or seen[-1] != s.trace_id:
                seen.append(s.trace_id)
        return seen


class JsonlSink(SpanSink):
    """Appends one JSON object per span to a file, line-buffered."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "a", buffering=1)

    def on_span(self, span: Span) -> None:
        self._fh.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class Histogram:
    """Fixed-bucket duration histogram (Prometheus ``le`` semantics)."""

    def __init__(self, bounds=BUCKET_BOUNDS) -> None:
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * len(self.bounds)  # cumulative at render
        self.count = 0
        self.sum = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.sum += seconds
        for i, bound in enumerate(self.bounds):
            if seconds <= bound:
                self.bucket_counts[i] += 1
                break

    def cumulative(self) -> List[int]:
        """Counts per ``le`` bound, cumulative, excluding ``+Inf``."""
        out: List[int] = []
        running = 0
        for c in self.bucket_counts:
            running += c
            out.append(running)
        return out


class Tracer:
    """Hands finished spans to every sink; allocates ids; keeps stats."""

    def __init__(self, sinks: Iterable[SpanSink] = ()) -> None:
        self.sinks: List[SpanSink] = list(sinks)
        self.epoch = time.perf_counter()
        self._next_span_id = 1
        #: Per-stage duration histograms (``stage:`` spans only), the
        #: backing store of ``vfreq_span_seconds``.
        self.histograms: Dict[str, Histogram] = {}
        self.spans_emitted = 0

    def now_us(self) -> float:
        return (time.perf_counter() - self.epoch) * 1e6

    def record(
        self,
        name: str,
        *,
        trace_id: int,
        parent_id: Optional[int],
        start_us: float,
        duration_us: float,
        attrs: Optional[Dict[str, object]] = None,
    ) -> Span:
        """Emit one already-measured span (the controller's post-hoc path)."""
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=self._next_span_id,
            parent_id=parent_id,
            start_us=start_us,
            duration_us=duration_us,
            attrs=attrs if attrs is not None else {},
        )
        self._next_span_id += 1
        self.spans_emitted += 1
        if name.startswith(STAGE_PREFIX):
            stage = name[len(STAGE_PREFIX):]
            hist = self.histograms.get(stage)
            if hist is None:
                hist = self.histograms[stage] = Histogram()
            hist.observe(duration_us / 1e6)
        for sink in self.sinks:
            sink.on_span(span)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        *,
        trace_id: int = 0,
        parent_id: Optional[int] = None,
        **attrs: object,
    ):
        """Time a code block as one span (for call sites outside the tick)."""
        start = self.now_us()
        holder: Dict[str, object] = dict(attrs)
        try:
            yield holder
        finally:
            self.record(
                name,
                trace_id=trace_id,
                parent_id=parent_id,
                start_us=start,
                duration_us=self.now_us() - start,
                attrs=holder,
            )

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


# ---------------------------------------------------------------------------
# Chrome trace_event export (Perfetto / chrome://tracing)
# ---------------------------------------------------------------------------


def chrome_trace_events(spans: Iterable[Span]) -> List[Dict[str, object]]:
    """Spans as Chrome ``trace_event`` complete ("X") events.

    Each controller tick (trace id) gets its own ``tid`` row so
    successive ticks stack as lanes; attributes land in ``args``.
    """
    events: List[Dict[str, object]] = []
    for s in spans:
        args = dict(s.attrs)
        args["trace_id"] = s.trace_id
        events.append({
            "name": s.name,
            "ph": "X",
            "ts": s.start_us,
            "dur": max(s.duration_us, 0.0),
            "pid": 1,
            "tid": 1,
            "cat": s.name.split(":", 1)[0],
            "args": args,
        })
    return events


def write_chrome_trace(spans: Iterable[Span], path: str) -> str:
    """Write a Perfetto-loadable trace file; returns ``path``."""
    payload = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
    }
    with open(path, "w") as fh:
        json.dump(payload, fh)
    return path


def spans_from_jsonl(path: str) -> List[Span]:
    """Load spans back from a :class:`JsonlSink` file."""
    out: List[Span] = []
    with open(path) as fh:
        for line in fh:
            if not line.strip():
                continue
            d = json.loads(line)
            out.append(Span(
                name=d["name"],
                trace_id=int(d["trace_id"]),
                span_id=int(d["span_id"]),
                parent_id=d.get("parent_id"),
                start_us=float(d["start_us"]),
                duration_us=float(d["duration_us"]),
                attrs=d.get("attrs", {}),
            ))
    return out
