"""The observability hub: one object a controller carries (or not).

:class:`Observability` owns the tracer, the decision ledger and the
flight recorder, and translates each finished
:class:`~repro.core.controller.ControllerReport` into all three in one
pass over the samples (``on_tick``).  The controller's hot loop stays
untouched: with no hub attached a tick pays exactly one ``is None``
check, and with a hub attached the stages still run unmodified — the
hub works *post hoc* from the report, the stage timings the controller
already measures, and the controller's own registries.  Report streams
are therefore bit-identical with the hub on or off
(``tests/obs/test_transparency.py``).

Attach either declaratively (``ControllerConfig.observability``) or at
runtime::

    from repro.obs import Observability, ObsConfig
    obs = Observability.attach(controller, ObsConfig(out_dir="obs-out"))
    ...
    print(obs.ledger.ticks[-1])

Dump triggers (all routed here):

* ``Observability.on_violation`` — from ``_finish`` just before an
  ``InvariantViolationError`` propagates;
* ``Observability.on_tick_error`` — from the ``tick()`` wrapper when
  any other exception (e.g. an injected ``ControllerCrash``) escapes;
* ``Observability.on_node_error`` — from ``NodeManager._record_error``
  (idempotent with the above: one dump per crashing tick).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.obs.config import ObsConfig
from repro.obs.flight_recorder import FlightRecorder
from repro.obs.ledger import DecisionLedger
from repro.obs.logging import get_logger
from repro.obs.tracing import JsonlSink, RingSink, Tracer, write_chrome_trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.controller import ControllerReport, VirtualFrequencyController

log = get_logger("repro.obs")

#: Paper stage order (Fig. 2), matching ``StageTimings`` attributes.
STAGES = ("monitor", "estimate", "credits", "auction", "distribute", "enforce")


def _vcpu_index_of(path: str) -> int:
    """Trailing vcpu index of a cgroup path (``.../vcpu3`` -> 3)."""
    tail = path.rsplit("/", 1)[-1]
    digits = ""
    for ch in reversed(tail):
        if ch.isdigit():
            digits = ch + digits
        else:
            break
    return int(digits) if digits else -1


class Observability:
    """Tracer + ledger + flight recorder behind one ``on_tick``."""

    def __init__(self, config: Optional[ObsConfig] = None) -> None:
        cfg = config if config is not None else ObsConfig()
        self.config = cfg
        if cfg.out_dir:
            os.makedirs(cfg.out_dir, exist_ok=True)
        self.ring: Optional[RingSink] = None
        self.tracer: Optional[Tracer] = None
        if cfg.tracing:
            self.ring = RingSink(cfg.span_ring_size)
            sinks = [self.ring]
            if cfg.out_dir:
                sinks.append(JsonlSink(os.path.join(cfg.out_dir, "spans.jsonl")))
            self.tracer = Tracer(sinks)
        self.ledger: Optional[DecisionLedger] = None
        if cfg.ledger:
            path = (
                os.path.join(cfg.out_dir, "ledger.jsonl") if cfg.out_dir else None
            )
            self.ledger = DecisionLedger(cfg.ledger_ring_ticks, path=path)
        self.recorder: Optional[FlightRecorder] = None
        if cfg.flight_recorder_ticks:
            self.recorder = FlightRecorder(
                cfg.flight_recorder_ticks, dump_dir=cfg.out_dir
            )
        self._prev_wallets: Dict[str, float] = {}
        #: Last-known observed vCPU count per VM (so a frame captured
        #: while a VM is occluded still records its true shape).
        self._vm_vcpus: Dict[str, int] = {}

    # -- wiring -----------------------------------------------------------------

    @classmethod
    def attach(
        cls,
        controller: "VirtualFrequencyController",
        config: Optional[ObsConfig] = None,
    ) -> "Observability":
        """Attach a hub to an already-built controller (runtime wiring)."""
        obs = cls(config)
        obs.bind(controller)
        controller.obs = obs
        return obs

    def bind(self, controller: "VirtualFrequencyController") -> None:
        """Capture the host facts every flight dump needs as a header."""
        self._prev_wallets = controller.ledger.wallets()
        if self.recorder is None:
            return
        plan = getattr(controller.backend, "plan", None)
        self.recorder.set_meta(
            num_cpus=controller.num_cpus,
            fmax_mhz=controller.fmax_mhz,
            period_s=controller.config.period_s,
            engine=controller.config.engine,
            resilience=controller.resilience is not None,
            fault_plan=(
                {"seed": plan.seed, "specs": [s.as_dict() for s in plan.specs]}
                if plan is not None else None
            ),
            seed=getattr(plan, "seed", 0),
        )

    # -- the per-tick hook -------------------------------------------------------

    def on_tick(
        self,
        controller: "VirtualFrequencyController",
        report: "ControllerReport",
        tick: int,
    ) -> None:
        """Fold one finished tick into spans, ledger and flight ring."""
        samples = report.samples
        vcpus_by_vm: Dict[str, int] = {}
        for s in samples:
            vcpus_by_vm[s.vm_name] = vcpus_by_vm.get(s.vm_name, 0) + 1
        for vm, n in vcpus_by_vm.items():
            self._vm_vcpus[vm] = n

        purchased = report.auction.purchased if report.auction else {}
        spent = report.auction.spent_per_vm if report.auction else {}
        market_left = report.auction.market_left if report.auction else 0.0
        rounds = report.auction.rounds if report.auction else 0

        meta: Optional[Dict] = None
        decisions: Optional[List[Dict]] = None
        if self.ledger is not None or self.recorder is not None:
            meta, decisions = self._build_records(
                controller, report, tick, purchased, spent, market_left, rounds
            )
        if self.ledger is not None:
            self.ledger.record_tick(meta, decisions)
        if self.recorder is not None:
            self.recorder.record(self._build_frame(
                controller, report, tick, decisions, market_left, rounds
            ))
        if self.tracer is not None:
            self._emit_spans(
                controller, report, tick, vcpus_by_vm, purchased, spent
            )
        self._prev_wallets = report.wallets

    # -- ledger record construction ---------------------------------------------

    def _build_records(
        self, controller, report, tick, purchased, spent, market_left, rounds
    ):
        cfg = controller.config
        p_us = cfg.period_s * 1e6
        meta = {
            "tick": tick,
            "t": report.t,
            "engine": cfg.engine,
            "p_us": p_us,
            "fmax_mhz": controller.fmax_mhz,
            "enforcement_period_us": cfg.enforcement_period_us,
            "market_initial": report.market_initial,
            "market_left": market_left,
            "rounds": rounds,
            "freely_distributed": report.freely_distributed,
            "wallets_before": dict(self._prev_wallets),
            "wallets_after": dict(report.wallets),
            "spent_per_vm": dict(spent),
            # Recorded whether or not a billing engine is attached, so
            # the ledger stream is byte-identical billing on vs. off
            # and the billing oracle can always resolve tenancy.
            "tenants": dict(controller._vm_tenant),
        }
        decisions: List[Dict] = []
        if not report.allocations:
            return meta, decisions  # config A / empty host: nothing enforced
        quota_us = controller.enforcer.quota_us
        vfreqs = controller._vm_vfreq
        guarantees = controller._guarantee
        free = report.free_shares
        degraded = report.degraded
        seen = set()
        for s in report.samples:
            path = s.cgroup_path
            alloc = report.allocations.get(path)
            if alloc is None:
                continue
            seen.add(path)
            d = report.decisions.get(path)
            vm = s.vm_name
            g = guarantees.get(vm)
            base = None
            if d is not None and g is not None:
                base = min(d.estimate_cycles, g)
                if cfg.reserve_guarantee:
                    base = max(base, g)
            decisions.append({
                "vm": vm,
                "vcpu": s.vcpu_index,
                "path": path,
                "consumed": s.consumed_cycles,
                "estimate": d.estimate_cycles if d is not None else None,
                "trend": d.trend if d is not None else None,
                "case": d.case.name.lower() if d is not None else None,
                "vfreq": vfreqs.get(vm),
                "guarantee": g,
                "base": base,
                "reserve_guarantee": cfg.reserve_guarantee,
                "purchased": purchased.get(path, 0.0),
                "free_share": free.get(path, 0.0),
                "fallback": degraded.get(path),
                "allocation": alloc,
                "quota_us": quota_us(alloc),
            })
        for path, alloc in report.allocations.items():
            if path in seen:
                continue
            # Degraded-only paths: enforced without a fresh sample.
            vm = _vm_of(controller, path)
            decisions.append({
                "vm": vm,
                "vcpu": _vcpu_index_of(path),
                "path": path,
                "consumed": None,
                "estimate": None,
                "trend": None,
                "case": None,
                "vfreq": vfreqs.get(vm),
                "guarantee": guarantees.get(vm),
                "base": None,
                "reserve_guarantee": cfg.reserve_guarantee,
                "purchased": purchased.get(path, 0.0),
                "free_share": free.get(path, 0.0),
                "fallback": degraded.get(path, alloc),
                "allocation": alloc,
                "quota_us": quota_us(alloc),
            })
        return meta, decisions

    # -- flight frame construction ------------------------------------------------

    def _build_frame(
        self, controller, report, tick, decisions, market_left, rounds
    ) -> Dict:
        registered = {
            vm: {"vfreq": vfreq, "vcpus": self._vm_vcpus.get(vm, 0)}
            for vm, vfreq in controller._vm_vfreq.items()
        }
        return {
            "tick": tick,
            "t": report.t,
            "registered": registered,
            "samples": [
                [s.cgroup_path, s.vm_name, s.vcpu_index,
                 s.consumed_cycles, s.vfreq_mhz]
                for s in report.samples
            ],
            "decisions": decisions,
            "allocations": dict(report.allocations),
            "free_shares": dict(report.free_shares),
            "degraded": dict(report.degraded),
            "wallets": dict(report.wallets),
            "market_initial": report.market_initial,
            "market_left": market_left,
            "rounds": rounds,
            "freely_distributed": report.freely_distributed,
            "timings": {
                stage: getattr(report.timings, stage) for stage in STAGES
            },
        }

    # -- span synthesis ------------------------------------------------------------

    def _emit_spans(
        self, controller, report, tick, vcpus_by_vm, purchased, spent
    ) -> None:
        tracer = self.tracer
        timings = report.timings
        total_us = timings.total * 1e6
        end_us = tracer.now_us()
        start_us = end_us - total_us
        market_left = report.auction.market_left if report.auction else 0.0
        root = tracer.record(
            "tick",
            trace_id=tick,
            parent_id=None,
            start_us=start_us,
            duration_us=total_us,
            attrs={
                "t": report.t,
                "engine": controller.config.engine,
                "vcpus": len(report.samples),
                "vms": len(vcpus_by_vm),
                "market_initial": report.market_initial,
                "freely_distributed": report.freely_distributed,
                "degraded": len(report.degraded),
            },
        )
        stage_attrs = {
            "monitor": {"samples": len(report.samples)},
            "estimate": {"decisions": len(report.decisions)},
            "credits": {"wallets": len(report.wallets)},
            "auction": {
                "market_initial": report.market_initial,
                "market_left": market_left,
                "rounds": report.auction.rounds if report.auction else 0,
                "cycles_sold": report.market_initial - market_left
                if report.auction else 0.0,
            },
            "distribute": {
                "freely_distributed": report.freely_distributed,
                "recipients": len(report.free_shares),
            },
            "enforce": {
                "allocations": len(report.allocations),
                "degraded": len(report.degraded),
            },
        }
        cursor = start_us
        for stage in STAGES:
            dur_us = getattr(timings, stage) * 1e6
            tracer.record(
                f"stage:{stage}",
                trace_id=tick,
                parent_id=root.span_id,
                start_us=cursor,
                duration_us=dur_us,
                attrs=stage_attrs[stage],
            )
            cursor += dur_us
        if not self.config.per_vcpu_spans:
            return
        vm_spans: Dict[str, int] = {}
        for vm, count in vcpus_by_vm.items():
            span = tracer.record(
                f"vm:{vm}",
                trace_id=tick,
                parent_id=root.span_id,
                start_us=start_us,
                duration_us=0.0,
                attrs={
                    "vcpus": count,
                    "wallet": report.wallets.get(vm, 0.0),
                    "credits_spent": spent.get(vm, 0.0),
                },
            )
            vm_spans[vm] = span.span_id
        for s in report.samples:
            d = report.decisions.get(s.cgroup_path)
            tracer.record(
                f"vcpu:{s.vm_name}/{s.vcpu_index}",
                trace_id=tick,
                parent_id=vm_spans[s.vm_name],
                start_us=start_us,
                duration_us=0.0,
                attrs={
                    "consumed": s.consumed_cycles,
                    "estimate": d.estimate_cycles if d is not None else None,
                    "allocation": report.allocations.get(s.cgroup_path),
                    "purchased": purchased.get(s.cgroup_path, 0.0),
                },
            )

    # -- dump triggers -------------------------------------------------------------

    def on_violation(
        self, controller, report, violations, tick
    ) -> Optional[str]:
        """Invariant violation: log it and dump the black box."""
        log.error(
            "invariant violation at tick %d: %s",
            tick, "; ".join(str(v) for v in violations),
        )
        if self.recorder is None:
            return None
        path = self.recorder.dump(
            "invariant_violation", [str(v) for v in violations]
        )
        if path:
            log.warning("flight recorder dumped %d tick(s) to %s",
                        len(self.recorder.frames), path)
        return path

    def on_tick_error(self, controller, exc, tick) -> Optional[str]:
        """Any non-invariant exception escaping ``tick()``."""
        log.error("controller tick %d raised %s: %s",
                  tick, type(exc).__name__, exc)
        if self.recorder is None:
            return None
        path = self.recorder.dump(f"tick_error_{type(exc).__name__}", [str(exc)])
        if path:
            log.warning("flight recorder dumped %d tick(s) to %s",
                        len(self.recorder.frames), path)
        return path

    def on_node_error(self, node_id: str, exc) -> Optional[str]:
        """Node-manager level trigger (idempotent with the tick wrapper)."""
        if self.recorder is None:
            return None
        return self.recorder.dump(f"node_error_{node_id}", [str(exc)])

    # -- teardown ------------------------------------------------------------------

    def close(self) -> None:
        """Flush sinks; write the Chrome trace export when file-backed."""
        if self.tracer is not None:
            if self.config.out_dir and self.ring is not None and self.ring.spans:
                write_chrome_trace(
                    self.ring.spans,
                    os.path.join(self.config.out_dir, "trace_chrome.json"),
                )
            self.tracer.close()
        if self.ledger is not None:
            self.ledger.close()


def _vm_of(controller, path: str) -> Optional[str]:
    from repro.core.backend import vm_component

    return vm_component(path, controller.machine_slice)
