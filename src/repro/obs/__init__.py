"""Observability for the control plane: spans, ledger, flight recorder.

Four independent pillars behind one hub (:class:`Observability`):

* :mod:`repro.obs.tracing` — per-tick span trees + Chrome/Perfetto export;
* :mod:`repro.obs.ledger` — per-``cpu.max``-write decision provenance
  (``repro explain``);
* :mod:`repro.obs.flight_recorder` — black-box ring of the last N ticks,
  auto-dumped on invariant violations and crashes, convertible to a
  replayable checking trace;
* :mod:`repro.obs.logging` — structured stdlib logging +
  :mod:`repro.obs.metrics_server` for live ``/metrics`` scrapes;

plus the cluster SLO plane (:class:`~repro.obs.slo.SLOPlane`):
:mod:`repro.obs.tsdb`'s windowed time-series store,
:mod:`repro.obs.slo`'s multi-window burn-rate alerting with an alert
ledger (``repro explain --alert``), and :mod:`repro.obs.anomaly`'s
deterministic EWMA/z-score detectors.

Everything is stdlib-only and off the controller's hot path; see
``docs/observability.md``.
"""

from repro.obs.anomaly import AnomalyConfig, EwmaDetector
from repro.obs.config import ObsConfig
from repro.obs.flight_recorder import FlightRecorder, flight_dump_to_trace
from repro.obs.hub import Observability
from repro.obs.ledger import DecisionLedger, explain, recompute_allocation
from repro.obs.logging import configure_logging, get_logger
from repro.obs.metrics_server import MetricsServer
from repro.obs.slo import (
    AlertLedger,
    BurnRateRule,
    SLOConfig,
    SLOPlane,
    SLOSpec,
    default_slos,
    explain_alert,
    load_alerts_jsonl,
)
from repro.obs.tracing import (
    JsonlSink,
    RingSink,
    Span,
    Tracer,
    chrome_trace_events,
    write_chrome_trace,
)
from repro.obs.tsdb import Series, SeriesStore

__all__ = [
    "ObsConfig",
    "Observability",
    "DecisionLedger",
    "FlightRecorder",
    "flight_dump_to_trace",
    "MetricsServer",
    "Span",
    "Tracer",
    "RingSink",
    "JsonlSink",
    "chrome_trace_events",
    "write_chrome_trace",
    "configure_logging",
    "get_logger",
    "explain",
    "recompute_allocation",
    "Series",
    "SeriesStore",
    "SLOConfig",
    "SLOPlane",
    "SLOSpec",
    "BurnRateRule",
    "default_slos",
    "AlertLedger",
    "load_alerts_jsonl",
    "explain_alert",
    "AnomalyConfig",
    "EwmaDetector",
]
