"""Observability configuration.

:class:`ObsConfig` is the frozen knob block a controller reads at
construction (``ControllerConfig.observability``).  It lives here — not
in :mod:`repro.core.config` — so the obs package stays importable
without the core package (mirroring how ``ResiliencePolicy`` is its own
leaf module): ``repro.core.config`` imports *this* module, never the
other way around.

Everything is off unless a config is attached: a controller built
without one carries ``obs = None`` and its tick path pays exactly one
``is None`` check, keeping report streams bit-identical to an
uninstrumented build (proved by ``tests/obs/test_transparency.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.obs.slo import SLOConfig


@dataclass(frozen=True)
class ObsConfig:
    """All knobs of the controller observability layer."""

    #: Emit the per-tick span tree (tick -> stage 1-6 -> per-VM/per-vCPU)
    #: into the in-memory ring (and ``out_dir/spans.jsonl`` when set).
    tracing: bool = True
    #: Record the per-``cpu.max``-write decision ledger (the causal
    #: chain behind every allocation; ``repro explain`` reads it).
    ledger: bool = True
    #: Flight recorder depth: how many fully-serialized ticks the
    #: black-box ring retains for crash dumps.  0 disables the recorder.
    flight_recorder_ticks: int = 64
    #: Directory for on-disk artefacts (``spans.jsonl``,
    #: ``ledger.jsonl``, flight dumps, Chrome trace export).  ``None``
    #: keeps everything in memory — crash dumps then land in the
    #: current working directory.
    out_dir: Optional[str] = None
    #: Spans retained by the in-memory ring sink.
    span_ring_size: int = 4096
    #: Ticks of ledger records retained in memory (the JSONL file, when
    #: ``out_dir`` is set, keeps everything).
    ledger_ring_ticks: int = 1024
    #: Emit per-VM / per-vCPU sub-spans (the bulk of the span volume;
    #: disable to trace stage timings only).
    per_vcpu_spans: bool = True
    #: Attach a :class:`repro.obs.slo.SLOPlane` declaratively: the SLO
    #: catalogue + burn-rate alerting evaluated at every tick boundary.
    #: ``None`` (the default) skips the plane entirely.
    slo: Optional["SLOConfig"] = None

    def __post_init__(self) -> None:
        if self.flight_recorder_ticks < 0:
            raise ValueError("flight_recorder_ticks must be >= 0")
        if self.span_ring_size < 1:
            raise ValueError("span_ring_size must be >= 1")
        if self.ledger_ring_ticks < 1:
            raise ValueError("ledger_ring_ticks must be >= 1")

    @property
    def enabled(self) -> bool:
        """True when any obs feature is on (the hub is worth building)."""
        return bool(self.tracing or self.ledger or self.flight_recorder_ticks)
