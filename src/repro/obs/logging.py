"""Structured logging for the control plane.

The whole package logs through stdlib :mod:`logging` under the
``repro.*`` namespace — no third-party dependency.  By default the
library is silent (a ``NullHandler`` on the ``repro`` root stops the
interpreter's last-resort stderr handler) while still propagating to
any root handler the embedding application configures.

:func:`configure_logging` is the one-call setup used by the CLI
(``--log-level`` / ``--log-format``): console format for humans, JSON
lines (one object per record, ``extra=`` fields included) for log
shippers.

    >>> log = get_logger("repro.controller")
    >>> log.warning("vcpu degraded", extra={"path": "/machine.slice/vm0/vcpu0"})
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Optional

#: Attributes every LogRecord carries; anything else came in via
#: ``extra=`` and belongs in the structured payload.
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}

_root = logging.getLogger("repro")
_root.addHandler(logging.NullHandler())


class JsonFormatter(logging.Formatter):
    """One JSON object per record, ``extra=`` fields lifted to the top."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                payload[key] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


def get_logger(name: str) -> logging.Logger:
    """The module-level logger for ``name`` (a ``repro.*`` dotted path)."""
    return logging.getLogger(name)


def configure_logging(
    level: str = "info",
    fmt: str = "console",
    stream=None,
) -> logging.Handler:
    """Wire a real handler onto the ``repro`` logger tree.

    ``fmt`` is ``"console"`` (human one-liners) or ``"json"`` (one
    object per line).  Replaces any handler a previous call installed,
    so the CLI can be re-entered in-process (tests do).  Returns the
    installed handler.
    """
    numeric = getattr(logging, level.upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level {level!r}")
    if fmt not in ("console", "json"):
        raise ValueError(f"unknown log format {fmt!r}")
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    if fmt == "json":
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(levelname)-7s %(name)s: %(message)s",
            datefmt="%H:%M:%S",
        ))
    for old in list(_root.handlers):
        if not isinstance(old, logging.NullHandler):
            _root.removeHandler(old)
    _root.addHandler(handler)
    _root.setLevel(numeric)
    # The configured handler is authoritative; don't double-print
    # through whatever the embedding application hung on the root.
    _root.propagate = False
    return handler


def reset_logging() -> None:
    """Return to the library default: silent, propagating. (For tests.)"""
    for old in list(_root.handlers):
        if not isinstance(old, logging.NullHandler):
            _root.removeHandler(old)
    _root.setLevel(logging.NOTSET)
    _root.propagate = True
