"""Black-box flight recorder: the last N ticks, dumpable and replayable.

A :class:`FlightRecorder` keeps a bounded ring of fully-serialized tick
*frames* — inputs (registered VMs, samples), stage outputs (decisions,
auction results, free shares, wallets) — and writes the whole ring to a
JSON dump when something goes wrong: an ``InvariantViolationError``, an
injected stage crash escaping ``tick()``, or a node tick error caught
by the :class:`~repro.sim.node_manager.NodeManager`.

The dump is *convertible*: :func:`flight_dump_to_trace` rebuilds a
:class:`~repro.checking.trace.Trace` (the PR-4 JSONL scenario format)
from the frames — VM churn and QoS renegotiation are diffed exactly
from the registered-VM maps, per-VM demand levels are approximated from
observed consumption (capped consumption understates true demand, the
one lossy step), and any active fault plan is carried over with its
tick windows shifted to the dump's origin.  The result replays under
``replay()`` with every paper-equation oracle armed and is shrinkable
by ``repro check``'s ddmin machinery — a production crash dump becomes
a test case.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Dict, List, Optional

DUMP_VERSION = 1


class FlightRecorder:
    """Bounded ring of serialized ticks; dumps to disk on demand."""

    def __init__(self, max_ticks: int = 64, dump_dir: Optional[str] = None) -> None:
        if max_ticks < 1:
            raise ValueError("max_ticks must be >= 1")
        self.max_ticks = max_ticks
        self.dump_dir = dump_dir
        #: Header facts every dump carries (host shape, engine, plan).
        self.meta: Dict = {}
        self._frames: deque = deque(maxlen=max_ticks)
        self.dumps_written = 0
        self._last_dump_tick: Optional[int] = None
        self._last_dump_path: Optional[str] = None

    def set_meta(self, **kw) -> None:
        self.meta.update(kw)

    def record(self, frame: Dict) -> None:
        self._frames.append(frame)

    @property
    def frames(self) -> List[Dict]:
        return list(self._frames)

    def dump(
        self,
        reason: str,
        violations: Optional[List[str]] = None,
        path: Optional[str] = None,
    ) -> Optional[str]:
        """Write the ring to a JSON file; returns its path.

        Idempotent per tick: a second trigger for the same newest frame
        (e.g. the controller wrapper and the node manager both seeing
        one crash) returns the first dump's path instead of writing a
        sibling.  Returns ``None`` when the ring is empty (a crash
        before the first completed tick leaves nothing to dump).
        """
        if not self._frames:
            return None
        newest = self._frames[-1]["tick"]
        if path is None and self._last_dump_tick == newest:
            return self._last_dump_path
        if path is None:
            safe = "".join(c if c.isalnum() or c in "-_" else "-" for c in reason)
            name = f"flight_{safe}_tick{newest}.json"
            base = self.dump_dir or "."
            os.makedirs(base, exist_ok=True)
            path = os.path.join(base, name)
        payload = {
            "kind": "flight_dump",
            "version": DUMP_VERSION,
            "reason": reason,
            "violations": list(violations or []),
            "meta": dict(self.meta),
            "frames": list(self._frames),
        }
        with open(path, "w") as fh:
            json.dump(payload, fh, sort_keys=True)
        self.dumps_written += 1
        self._last_dump_tick = newest
        self._last_dump_path = path
        return path

    @staticmethod
    def load(path: str) -> Dict:
        with open(path) as fh:
            payload = json.load(fh)
        if payload.get("kind") != "flight_dump":
            raise ValueError(f"not a flight-recorder dump: {path}")
        version = payload.get("version")
        if version != DUMP_VERSION:
            raise ValueError(f"unsupported flight dump version {version!r}")
        return payload


# ---------------------------------------------------------------------------
# Dump -> checking trace conversion
# ---------------------------------------------------------------------------


def _shift_fault_plan(plan: Dict, first_tick: int) -> Optional[Dict]:
    """Re-origin a fault plan's tick windows to the dump's first frame.

    A replayed trace starts at tick 0, but the dump's frames start at
    some mid-run tick; every spec window slides left accordingly.
    Windows that closed before the dump began are dropped; a window
    straddling the origin is clamped to start at 0.
    """
    specs = []
    for spec in plan.get("specs", []):
        s = dict(spec)
        start = int(s.get("start_tick", 0)) - first_tick
        end = s.get("end_tick")
        if end is not None:
            end = int(end) - first_tick
            if end <= 0:
                continue  # window fully in the discarded past
        start = max(0, start)
        if end is not None and end <= start:
            continue
        s["start_tick"] = start
        s["end_tick"] = end
        specs.append(s)
    if not specs:
        return None
    return {"seed": plan.get("seed", 0), "specs": specs}


def flight_dump_to_trace(dump: Dict):
    """Rebuild a replayable :class:`~repro.checking.trace.Trace`.

    Deterministic given the dump; demand levels are the one approximate
    reconstruction (``max observed consumption / p_us`` per VM — a
    capped vCPU's true demand may have been higher).
    """
    # Deferred: repro.checking imports repro.core which imports obs
    # config; importing at module level would tie the packages together.
    from repro.checking.trace import Trace

    meta = dump["meta"]
    frames = dump["frames"]
    if not frames:
        raise ValueError("flight dump holds no frames")
    p_us = float(meta["period_s"]) * 1e6
    first_tick = int(frames[0]["tick"])
    plan = meta.get("fault_plan")
    if plan:
        plan = _shift_fault_plan(plan, first_tick)
    header = Trace.make_header(
        seed=int(meta.get("seed", 0)),
        cores=int(meta["num_cpus"]),
        threads_per_core=1,
        fmax_mhz=float(meta["fmax_mhz"]),
        resilience=bool(meta.get("resilience")),
        fault_plan=plan,
        engine=meta.get("engine", "both"),
    )
    events: List[Dict] = []
    live: Dict[str, Dict] = {}  # vm -> {"vfreq": ..., "vcpus": ...}
    for frame in frames:
        registered = frame["registered"]
        for vm in [v for v in live if v not in registered]:
            events.append({"kind": "destroy", "vm": vm})
            del live[vm]
        for vm, info in registered.items():
            vcpus = int(info["vcpus"])
            if vm not in live:
                if vcpus < 1:
                    # Registered but never observed yet: provisioning is
                    # deferred until a frame shows its vCPU count.
                    continue
                events.append({
                    "kind": "provision", "vm": vm,
                    "vcpus": vcpus, "vfreq": float(info["vfreq"]),
                })
                live[vm] = {"vfreq": float(info["vfreq"]), "vcpus": vcpus}
            elif float(info["vfreq"]) != live[vm]["vfreq"]:
                events.append({
                    "kind": "set_vfreq", "vm": vm, "vfreq": float(info["vfreq"]),
                })
                live[vm]["vfreq"] = float(info["vfreq"])
        peak: Dict[str, float] = {}
        for sample in frame["samples"]:
            _path, vm, _vcpu, consumed, _vfreq = sample
            if consumed > peak.get(vm, -1.0):
                peak[vm] = consumed
        for vm in live:
            if vm in peak:
                level = min(1.0, max(0.0, peak[vm] / p_us))
                events.append({
                    "kind": "demand", "vm": vm, "level": round(level, 6),
                })
        events.append({"kind": "tick"})
    return Trace(header=header, events=events)
