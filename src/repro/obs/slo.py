"""Declarative SLOs + multi-window multi-burn-rate alerting.

The paper's contract is a *guarantee* (Eq. 2, inside a 1 s control
period); this module turns it into operable SLOs in the Google-SRE
style: an objective over a ratio of counters, a bank of
(long window, short window, burn-rate factor) rules per severity, and
firing/resolved :class:`Alert` transitions recorded in a bounded
ledger with a JSONL mirror — re-derivable via ``repro explain
--alert``, exactly like the decision ledger explains one ``cpu.max``
write.

The shipped catalogue (:func:`default_slos`):

* ``guarantee`` — per-tenant guarantee-violation SLO: of all vCPU-tick
  guarantee checks (the billing meter's SLA criterion, walk for walk),
  at most ``1 - objective`` may fail;
* ``tick_deadline`` — control-loop latency SLO: each node's stage
  total must fit the control period (wall-clock, so excluded from the
  deterministic profile);
* ``credit_burn`` — billing SLA-credit-burn SLO (Lučanin et al.,
  arXiv:1809.05840): refunded dollars may be at most ``1 - objective``
  of total billed dollars.

Everything evaluates deterministically at tick boundaries from the
:class:`~repro.obs.tsdb.SeriesStore`: same ingested stream, byte-
identical alert ledger (``make slo-smoke`` gates it in CI).  Like the
obs hub and the billing engine, the plane is a pure observer — report
and decision-ledger streams are bit-identical with it attached or not
(``tests/obs/test_slo_transparency.py``, all three engines).
"""

from __future__ import annotations

import json
import os
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.anomaly import AnomalyConfig, EwmaDetector
from repro.obs.tsdb import (
    S_BACKEND_ERRORS,
    S_CREDITS_USD,
    S_DEADLINE_BAD,
    S_DEADLINE_CHECKS,
    S_GUARANTEE_BAD,
    S_GUARANTEE_CHECKS,
    S_REVENUE_USD,
    S_STAGE_SECONDS,
    LabelSet,
    SeriesStore,
)

#: Alert severities, in evaluation (and paging) order.
SEVERITIES = ("page", "ticket")


@dataclass(frozen=True)
class BurnRateRule:
    """One (long, short, factor) multi-window burn-rate rule.

    Fires when the error-budget burn rate exceeds ``factor`` over
    *both* windows — the long window for significance, the short one
    so a resolved incident stops paging quickly (Google SRE workbook,
    ch. 5).  Windows are in control ticks (1 tick ≈ 1 s at the paper's
    period), scaled down from the SRE book's hours so simulations
    reach them.
    """

    long_window: int
    short_window: int
    factor: float
    severity: str = "page"

    def __post_init__(self) -> None:
        if self.short_window < 1 or self.long_window <= self.short_window:
            raise ValueError("need long_window > short_window >= 1")
        if self.factor <= 0:
            raise ValueError("factor must be positive")
        if self.severity not in SEVERITIES:
            raise ValueError(f"severity must be one of {SEVERITIES}")


#: The SRE-workbook rule bank (14.4x/1h, 6x/6h, 3x/1d, 1x/3d) mapped
#: onto tick-scale windows.
DEFAULT_RULES: Tuple[BurnRateRule, ...] = (
    BurnRateRule(60, 5, 14.4, "page"),
    BurnRateRule(240, 30, 6.0, "page"),
    BurnRateRule(720, 120, 3.0, "ticket"),
    BurnRateRule(1440, 360, 1.0, "ticket"),
)


@dataclass(frozen=True)
class SLOSpec:
    """One declarative SLO over a bad/total counter pair.

    ``by`` groups evaluation per label key (e.g. ``"tenant"``): every
    label set present on ``bad_series`` gets its own burn rates, alert
    state, and budget.  ``ratio`` picks the bad fraction: ``"of_total"``
    is ``bad / total`` (event SLOs, where total counts checks);
    ``"of_sum"`` is ``bad / (bad + total)`` (volume SLOs, where the two
    series split one population — e.g. credit vs. revenue dollars).
    """

    name: str
    objective: float
    bad_series: str
    total_series: str
    by: Optional[str] = None
    ratio: str = "of_total"
    rules: Tuple[BurnRateRule, ...] = DEFAULT_RULES
    #: Window for the error-budget-remaining gauge.
    budget_window: int = 1440
    #: Wall-clock-fed SLOs are dropped by the deterministic profile
    #: (``SLOConfig.wallclock=False``) so replayed alert ledgers can be
    #: byte-identical.
    wallclock: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if self.ratio not in ("of_total", "of_sum"):
            raise ValueError("ratio must be 'of_total' or 'of_sum'")
        if not self.rules:
            raise ValueError("need at least one burn-rate rule")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective


def default_slos(*, wallclock: bool = True) -> Tuple[SLOSpec, ...]:
    """The shipped SLO catalogue (see the module docstring)."""
    specs = [
        SLOSpec(
            name="guarantee",
            objective=0.999,
            bad_series=S_GUARANTEE_BAD,
            total_series=S_GUARANTEE_CHECKS,
            by="tenant",
            description="Eq. 2: guarantee-seeking vCPU-ticks that fell "
                        "short of their contracted virtual frequency.",
        ),
        SLOSpec(
            name="tick_deadline",
            objective=0.99,
            bad_series=S_DEADLINE_BAD,
            total_series=S_DEADLINE_CHECKS,
            wallclock=True,
            description="Node-ticks whose six-stage wall time exceeded "
                        "the control period.",
        ),
        SLOSpec(
            name="credit_burn",
            objective=0.99,
            bad_series=S_CREDITS_USD,
            total_series=S_REVENUE_USD,
            by="node",
            ratio="of_sum",
            description="SLA-credit dollars refunded as a fraction of "
                        "all billed dollars (arXiv:1809.05840).",
        ),
    ]
    if not wallclock:
        specs = [s for s in specs if not s.wallclock]
    return tuple(specs)


@dataclass(frozen=True)
class SLOConfig:
    """Knob block of one SLO plane."""

    #: SLO catalogue; empty selects :func:`default_slos`.
    specs: Tuple[SLOSpec, ...] = ()
    #: False drops wall-clock-fed SLOs *and* wall-clock anomaly
    #: detectors, leaving only deterministically-replayable sources
    #: (the ``make slo-smoke`` determinism gate runs this profile).
    wallclock: bool = True
    #: Ring capacity per downsample level of the series store.
    capacity: int = 512
    #: Alert transitions retained in memory (JSONL keeps everything).
    ring: int = 4096
    #: Directory for ``alerts.jsonl``; ``None`` keeps the ledger in
    #: memory only.
    out_dir: Optional[str] = None
    #: Control period driving the tick-deadline SLO.
    period_s: float = 1.0
    #: A node tick is "bad" when its stage total exceeds
    #: ``deadline_fraction * period_s``.
    deadline_fraction: float = 1.0
    #: Detector knobs for the anomaly lane; ``None`` disables it.
    anomaly: Optional[AnomalyConfig] = field(default_factory=AnomalyConfig)

    def __post_init__(self) -> None:
        if self.capacity < 2:
            raise ValueError("capacity must be >= 2")
        if self.ring < 1:
            raise ValueError("ring must be >= 1")
        if self.period_s <= 0 or self.deadline_fraction <= 0:
            raise ValueError("period_s and deadline_fraction must be positive")

    @property
    def deadline_s(self) -> float:
        return self.period_s * self.deadline_fraction


class AlertLedger:
    """Bounded ring of alert transitions, optionally mirrored as JSONL.

    Same shape as the decision ledger: plain dicts, ``sort_keys``
    serialization, one record per line — so two runs over identical
    streams produce byte-identical files (the determinism gate).
    """

    def __init__(self, ring: int = 4096, path: Optional[str] = None) -> None:
        self._ring: deque = deque(maxlen=ring)
        self.path = path
        self._fh = open(path, "a", buffering=1) if path else None

    def record(self, transition: Dict) -> None:
        self._ring.append(transition)
        if self._fh is not None:
            self._fh.write(json.dumps(transition, sort_keys=True) + "\n")

    @property
    def transitions(self) -> List[Dict]:
        return list(self._ring)

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.close()


def load_alerts_jsonl(path: str) -> List[Dict]:
    """Load alert transitions back from a JSONL mirror."""
    out: List[Dict] = []
    with open(path) as fh:
        for line in fh:
            if not line.strip():
                continue
            entry = json.loads(line)
            if entry.get("kind") == "alert":
                out.append(entry)
    return out


class SLOPlane:
    """The cluster SLO/alerting plane: one store, one rule engine.

    Attach to a controller like the obs hub (:meth:`attach`, or
    declaratively via ``ObsConfig.slo``), feed it cluster planes with
    :meth:`observe_cluster` / :meth:`observe_shard_reader`, or drive it
    fully post hoc from finished reports — it only ever *reads*, so
    report/ledger streams are bit-identical with it on or off.
    """

    def __init__(
        self,
        config: Optional[SLOConfig] = None,
        *,
        node: str = "node-0",
    ) -> None:
        cfg = config if config is not None else SLOConfig()
        self.config = cfg
        self.node = node
        if cfg.out_dir:
            os.makedirs(cfg.out_dir, exist_ok=True)
        self.store = SeriesStore(capacity=cfg.capacity)
        specs = cfg.specs if cfg.specs else default_slos(wallclock=cfg.wallclock)
        if not cfg.wallclock:
            specs = tuple(s for s in specs if not s.wallclock)
        self.specs: Tuple[SLOSpec, ...] = specs
        path = (
            os.path.join(cfg.out_dir, "alerts.jsonl") if cfg.out_dir else None
        )
        self.ledger = AlertLedger(cfg.ring, path=path)
        #: (slo, labelset, severity) -> the transition that fired it.
        self._firing: Dict[Tuple[str, LabelSet, str], Dict] = {}
        self._detectors: Dict[Tuple[str, LabelSet], EwmaDetector] = {}
        self.transitions_total = 0
        self.last_tick: Optional[int] = None

    # -- wiring ------------------------------------------------------------

    @classmethod
    def attach(
        cls,
        controller,
        config: Optional[SLOConfig] = None,
        *,
        node: str = "node-0",
    ) -> "SLOPlane":
        """Wire a plane onto an already-built controller (hub-style)."""
        if config is None:
            config = SLOConfig(period_s=controller.config.period_s)
        plane = cls(config, node=node)
        controller.slo = plane
        return plane

    # -- per-tick ingest ---------------------------------------------------

    def on_tick(self, controller, report, tick: int) -> None:
        """The controller ``_finish`` hook: ingest, evaluate, page."""
        store = self.store
        store.ingest_report(controller, report, node=self.node)
        seconds = report.timings.total
        if self.config.wallclock:
            bad = 1.0 if seconds > self.config.deadline_s else 0.0
            store.accumulate(S_DEADLINE_BAD, bad)
            store.accumulate(S_DEADLINE_CHECKS, 1.0)
            for stage in (
                "monitor", "estimate", "credits",
                "auction", "distribute", "enforce",
            ):
                store.append(
                    S_STAGE_SECONDS, getattr(report.timings, stage),
                    {"stage": stage},
                )
        backend = getattr(controller, "backend", None)
        if backend is not None:
            store.ingest_backend_stats(backend.stats, source=self.node)
        billing = getattr(controller, "billing", None)
        if billing is not None:
            # The meter numbered this tick 1-based in ``on_tick``.
            store.ingest_billing(billing, tick + 1, node=self.node)
        transitions = self.evaluate(tick, t=report.t)
        self._maybe_flight_dump(controller, transitions)

    def observe_cluster(
        self, manager, tick: int, *, t: float = 0.0, evaluate: bool = True
    ) -> List[Dict]:
        """Ingest a manager barrier tick (reports or shm dialect).

        A ``"shared"``-telemetry sharded manager is read objectlessly
        through its mapped :class:`ShardTelemetryReader` blocks; every
        other manager through ``last_reports`` + controller registries.
        Returns the alert transitions this tick produced.
        """
        store = self.store
        deadline = self.config.deadline_s if self.config.wallclock else None
        readers = getattr(manager, "readers", None)
        if readers:
            for shard_id in sorted(readers):
                store.ingest_shard_reader(
                    readers[shard_id], shard=shard_id, deadline_s=deadline
                )
        else:
            controllers = getattr(manager, "controllers", {})
            for node_id in sorted(manager.last_reports):
                controller = controllers.get(node_id)
                if controller is not None:
                    store.ingest_report(
                        controller, manager.last_reports[node_id], node=node_id
                    )
            store.ingest_node_manager(manager, deadline_s=deadline)
            for node_id in sorted(controllers):
                billing = getattr(controllers[node_id], "billing", None)
                if billing is not None:
                    store.ingest_billing(billing, tick + 1, node=node_id)
        if not evaluate:
            return []
        return self.evaluate(tick, t=t)

    def observe_rebalance(self, loop) -> None:
        """Subscribe a rebalance loop's guarantee-pressure series."""
        self.store.ingest_rebalance(loop)

    # -- evaluation --------------------------------------------------------

    def _bad_ratio(self, spec: SLOSpec, window: int, labels: Dict) -> float:
        bad = self.store.increase(spec.bad_series, window, labels)
        total = self.store.increase(spec.total_series, window, labels)
        if spec.ratio == "of_sum":
            total = bad + total
        if total <= 0.0:
            return 0.0
        return bad / total

    def burn_rate(self, spec: SLOSpec, window: int, labels: Dict) -> float:
        """Error-budget burn rate over one window (1.0 = exactly on
        budget for the whole SLO period)."""
        return self._bad_ratio(spec, window, labels) / spec.error_budget

    def error_budget_remaining(
        self, spec: SLOSpec, labels: Optional[Dict] = None
    ) -> float:
        """Fraction of the budget window's error budget still unspent
        (1.0 untouched, 0.0 exhausted, negative when overspent)."""
        ratio = self._bad_ratio(spec, spec.budget_window, labels or {})
        return 1.0 - ratio / spec.error_budget

    def _label_sets(self, spec: SLOSpec) -> List[LabelSet]:
        if spec.by is None:
            return [()]
        seen = sorted(
            {s.labels for s in self.store.select(spec.bad_series)}
        )
        return seen if seen else []

    def evaluate(self, tick: int, *, t: float = 0.0) -> List[Dict]:
        """Run every rule bank + detector; record and return the new
        firing/resolved transitions (deterministic order)."""
        transitions: List[Dict] = []
        for spec in self.specs:
            for labelset in self._label_sets(spec):
                labels = dict(labelset)
                for severity in SEVERITIES:
                    rules = [r for r in spec.rules if r.severity == severity]
                    if not rules:
                        continue
                    fired = None
                    for rule in rules:
                        burn_long = self.burn_rate(
                            spec, rule.long_window, labels
                        )
                        burn_short = self.burn_rate(
                            spec, rule.short_window, labels
                        )
                        if burn_long >= rule.factor and burn_short >= rule.factor:
                            fired = (rule, burn_long, burn_short)
                            break
                    key = (spec.name, labelset, severity)
                    active = key in self._firing
                    if fired is not None and not active:
                        rule, burn_long, burn_short = fired
                        transition = self._transition(
                            spec, labelset, severity, "firing", tick, t,
                            rule=rule, burn_long=burn_long,
                            burn_short=burn_short,
                        )
                        self._firing[key] = transition
                        transitions.append(transition)
                    elif fired is None and active:
                        fired_rule = self._firing.pop(key)["rule"]
                        rule = BurnRateRule(
                            fired_rule["long"], fired_rule["short"],
                            fired_rule["factor"], severity,
                        )
                        transition = self._transition(
                            spec, labelset, severity, "resolved", tick, t,
                            rule=rule,
                            burn_long=self.burn_rate(
                                spec, rule.long_window, labels
                            ),
                            burn_short=self.burn_rate(
                                spec, rule.short_window, labels
                            ),
                        )
                        transitions.append(transition)
        transitions.extend(self._evaluate_anomalies(tick, t))
        for transition in transitions:
            self.ledger.record(transition)
        self.transitions_total += len(transitions)
        self.last_tick = tick
        return transitions

    def _transition(
        self, spec: SLOSpec, labelset: LabelSet, severity: str, state: str,
        tick: int, t: float, *, rule: BurnRateRule,
        burn_long: float, burn_short: float,
    ) -> Dict:
        return {
            "kind": "alert",
            "source": "burn_rate",
            "slo": spec.name,
            "labels": dict(labelset),
            "severity": severity,
            "state": state,
            "tick": tick,
            "t": t,
            "objective": spec.objective,
            "rule": {
                "long": rule.long_window,
                "short": rule.short_window,
                "factor": rule.factor,
            },
            "burn_long": burn_long,
            "burn_short": burn_short,
            "budget_remaining": self.error_budget_remaining(
                spec, dict(labelset)
            ),
        }

    # -- the anomaly lane --------------------------------------------------

    def _watched_series(self) -> List:
        """Series the EWMA detectors fold over, in deterministic order.

        Backend error *rates* are deterministic under a fault plan;
        stage timings are wall-clock and gated on the profile.
        """
        watched = list(self.store.select(S_BACKEND_ERRORS))
        if self.config.wallclock:
            watched.extend(self.store.select(S_STAGE_SECONDS))
        watched.sort(key=lambda s: (s.name, s.labels))
        return watched

    def _evaluate_anomalies(self, tick: int, t: float) -> List[Dict]:
        if self.config.anomaly is None:
            return []
        transitions: List[Dict] = []
        for series in self._watched_series():
            key = (series.name, series.labels)
            detector = self._detectors.get(key)
            if detector is None:
                detector = EwmaDetector(series.name, self.config.anomaly)
                self._detectors[key] = detector
            # Counters are folded as per-tick rates, gauges as-is.
            value = (
                series.rate(2)
                if series.name.endswith("_total") else series.last
            )
            change = detector.observe(value)
            if change is None:
                continue
            transitions.append({
                "kind": "alert",
                "source": "anomaly",
                "slo": f"anomaly:{series.name}",
                "labels": dict(series.labels),
                "severity": "ticket",
                "state": change,
                "tick": tick,
                "t": t,
                "z": detector.last_z,
                "detector": {
                    "alpha": detector.config.alpha,
                    "z_fire": detector.config.z_fire,
                    "z_resolve": detector.config.z_resolve,
                    "warmup": detector.config.warmup,
                    "seed": detector.config.seed,
                    "mean": detector.mean,
                },
                "value": value,
            })
        return transitions

    # -- alert surface -----------------------------------------------------

    def firing_alerts(self) -> List[Dict]:
        """Currently-firing alerts, deterministic order."""
        return [
            self._firing[key]
            for key in sorted(self._firing, key=lambda k: (k[0], k[1], k[2]))
        ]

    def _maybe_flight_dump(self, controller, transitions: Iterable[Dict]) -> None:
        """Page-severity firing -> flight-recorder dump (per-tick dedup).

        Routed through the same :meth:`FlightRecorder.dump` idempotence
        as ``on_violation``, so a burn-rate incident ships with a
        replayable trace of the ticks that burned the budget.
        """
        obs = getattr(controller, "obs", None)
        recorder = getattr(obs, "recorder", None) if obs is not None else None
        if recorder is None:
            return
        for transition in transitions:
            if (
                transition["severity"] == "page"
                and transition["state"] == "firing"
            ):
                summary = (
                    f"slo {transition['slo']} {transition['labels']} "
                    f"burning at {transition.get('burn_long', 0.0):.1f}x"
                )
                recorder.dump(
                    f"slo_page_{transition['slo']}", violations=[summary]
                )

    def close(self) -> None:
        self.ledger.close()


# ---------------------------------------------------------------------------
# ``repro explain --alert`` rendering
# ---------------------------------------------------------------------------


def lookup_alert(
    entries: Iterable[Dict], slo: str, index: Optional[int] = None
) -> Dict:
    """The ``index``-th (default: latest) transition of one SLO."""
    matches = [e for e in entries if e.get("slo") == slo]
    if not matches:
        names = sorted({e.get("slo", "?") for e in entries})
        raise KeyError(
            f"no alert transitions for slo={slo!r} "
            f"(recorded: {', '.join(names) or 'none'})"
        )
    if index is None:
        return matches[-1]
    if not 0 <= index < len(matches):
        raise KeyError(
            f"slo={slo!r} has {len(matches)} transition(s); "
            f"index {index} out of range"
        )
    return matches[index]


def explain_alert(entry: Dict) -> str:
    """Human-readable re-derivation of one alert transition.

    Re-applies the firing condition to the recorded inputs — like
    ``recompute_allocation`` for the decision ledger, a mismatch means
    the plane mis-recorded its own arithmetic.
    """
    labels = ",".join(f"{k}={v}" for k, v in sorted(entry["labels"].items()))
    lines = [
        f"alert derivation for slo={entry['slo']}"
        + (f"{{{labels}}}" if labels else "")
        + f" at tick {entry['tick']} (t={entry['t']:g})",
        f"  transition: {entry['state'].upper()} "
        f"(severity {entry['severity']}, source {entry['source']})",
    ]
    if entry["source"] == "burn_rate":
        objective = entry["objective"]
        budget = 1.0 - objective
        rule = entry["rule"]
        lines.append(
            f"  objective   {objective:.4%} -> error budget {budget:.4%}"
        )
        lines.append(
            f"  rule        long {rule['long']} ticks / short "
            f"{rule['short']} ticks, factor {rule['factor']:g}x"
        )
        lines.append(
            f"  burn rates  long {entry['burn_long']:.3f}x, "
            f"short {entry['burn_short']:.3f}x"
        )
        lines.append(
            f"  budget      {entry['budget_remaining']:.1%} of the "
            f"budget window's error budget remaining"
        )
        fired = (
            entry["burn_long"] >= rule["factor"]
            and entry["burn_short"] >= rule["factor"]
        )
        expected = entry["state"] == "firing"
        if fired == expected:
            lines.append(
                "  verification: recomputed burn-rate condition matches "
                "the recorded transition"
            )
        else:
            lines.append(
                f"  verification: MISMATCH — recorded burns imply "
                f"fired={fired}, ledger says {entry['state']!r}"
            )
    else:  # anomaly
        det = entry["detector"]
        lines.append(
            f"  detector    EWMA alpha={det['alpha']:g} "
            f"z_fire={det['z_fire']:g} z_resolve={det['z_resolve']:g} "
            f"warmup={det['warmup']} seed={det['seed']}"
        )
        lines.append(
            f"  observed    value {entry['value']:g} -> z={entry['z']:+.2f} "
            f"against EWMA mean {det['mean']:g}"
        )
        z = abs(entry["z"])
        if entry["state"] == "firing":
            ok = z >= det["z_fire"]
            condition = f"|z| >= {det['z_fire']:g}"
        else:
            ok = z <= det["z_resolve"]
            condition = f"|z| <= {det['z_resolve']:g}"
        if ok:
            lines.append(
                f"  verification: {condition} holds for the recorded z "
                "(re-derived, matches)"
            )
        else:
            lines.append(
                f"  verification: MISMATCH — {condition} fails for the "
                f"recorded z={entry['z']:+.2f}"
            )
    return "\n".join(lines)


def explain_alert_from_entries(
    entries: Iterable[Dict], slo: str, index: Optional[int] = None
) -> str:
    return explain_alert(lookup_alert(list(entries), slo, index))
