"""Live ``/metrics`` scrape endpoint (stdlib ``http.server`` only).

:class:`MetricsServer` serves whatever Prometheus exposition text a
``render`` callable produces — typically a closure over
:func:`repro.core.metrics_export.render_controller` for one controller,
or a combined controller + node-manager render through one shared
:class:`~repro.core.metrics_export.MetricsBuffer`.  Threaded, daemonic,
and silent (the per-request stderr log is suppressed), so a simulation
loop can keep ticking while Prometheus scrapes.

``repro serve-metrics`` is the CLI front end; its ``--self-test`` mode
performs one real loopback scrape and asserts on the payload.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

#: The Prometheus text exposition content type.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """Serves ``GET /metrics`` from a render callable."""

    def __init__(
        self,
        render: Callable[[], str],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.render = render
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.rstrip("/") not in ("/metrics", ""):
                    self.send_error(404, "try /metrics")
                    return
                try:
                    body = outer.render().encode()
                except Exception as exc:  # render must never kill the server
                    self.send_error(500, f"render failed: {exc}")
                    return
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:
                pass  # keep scrapes off stderr

        self.httpd = ThreadingHTTPServer((host, port), Handler)
        self.httpd.daemon_threads = True
        self._thread: threading.Thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-metrics", daemon=True
        )

    @property
    def address(self) -> str:
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}/metrics"

    def start(self) -> "MetricsServer":
        self._thread.start()
        return self

    def stop(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        self._thread.join(timeout=5)
