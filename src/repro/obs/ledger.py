"""The decision ledger: per-``cpu.max``-write provenance.

For every capping the controller enforces, one record holds the full
causal chain of the paper's pipeline:

=================  =========================================================
field              meaning
=================  =========================================================
``consumed``       ``u_{i,j,t}`` — stage-1 observation (µs of CPU)
``estimate``       ``e_{i,j,t}`` — stage-2 Eq. 3 trend decision (+ case)
``guarantee``      ``C_i`` — Eq. 2, from the VM's registered vfreq
``base``           Eq. 5 base capping ``min(e, C_i)`` (or the reserved
                   ``C_i`` floor under ``reserve_guarantee``)
``purchased``      auction cycles won (Alg. 1)
``free_share``     stage-5 free-distribution share
``fallback``       degraded-mode override, or ``None`` when healthy
``allocation``     the cycles actually enforced
``quota_us``       the ``cpu.max`` quota those cycles scale to
=================  =========================================================

so ``allocation`` is *reconstructible*:

    ``min(base + purchased + free_share, p_us)``   (or ``fallback``)

bit-for-bit — both engines build the allocation with exactly this
association order, and :func:`recompute_allocation` repeats it.  That
equality is what ``repro explain`` prints and what
``tests/obs/test_ledger.py`` asserts against the invariant oracles'
independent arithmetic.

Storage is one dict per tick (``{"meta": ..., "decisions": [...]}``)
in a bounded in-memory ring, mirrored as JSONL when the hub has an
``out_dir``.  Records are engine-agnostic: the scalar and vectorized
engines must produce identical ledgers (fuzz-checked).
"""

from __future__ import annotations

import json
from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple


def recompute_allocation(decision: Dict, p_us: float) -> float:
    """Re-derive the enforced cycles from the recorded causal chain.

    Repeats the engines' exact float association order, so the result
    is bit-identical to ``decision["allocation"]`` — any difference
    means the ledger (or an engine) mis-recorded its own arithmetic.
    """
    if decision.get("fallback") is not None:
        return float(decision["fallback"])
    return min(
        decision["base"] + decision["purchased"] + decision["free_share"],
        p_us,
    )


class DecisionLedger:
    """Bounded ring of per-tick decision records, optionally on disk."""

    def __init__(self, ring_ticks: int = 1024, path: Optional[str] = None) -> None:
        self._ring: deque = deque(maxlen=ring_ticks)
        self.path = path
        self._fh = open(path, "a", buffering=1) if path else None

    def record_tick(self, meta: Dict, decisions: List[Dict]) -> None:
        entry = {"kind": "tick", "meta": meta, "decisions": decisions}
        self._ring.append(entry)
        if self._fh is not None:
            self._fh.write(json.dumps(entry, sort_keys=True) + "\n")

    @property
    def ticks(self) -> List[Dict]:
        return list(self._ring)

    def lookup(
        self, vm: str, vcpu: int, tick: int
    ) -> Optional[Tuple[Dict, Dict]]:
        """The ``(meta, decision)`` pair for one allocation, or ``None``."""
        return lookup(self._ring, vm, vcpu, tick)

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.close()


def load_jsonl(path: str) -> List[Dict]:
    """Load ledger tick entries back from a JSONL file."""
    out: List[Dict] = []
    with open(path) as fh:
        for line in fh:
            if not line.strip():
                continue
            entry = json.loads(line)
            if entry.get("kind") == "tick":
                out.append(entry)
    return out


def lookup(
    entries: Iterable[Dict], vm: str, vcpu: int, tick: int
) -> Optional[Tuple[Dict, Dict]]:
    for entry in entries:
        meta = entry["meta"]
        if meta["tick"] != tick:
            continue
        for decision in entry["decisions"]:
            if decision["vm"] == vm and decision["vcpu"] == vcpu:
                return meta, decision
    return None


# ---------------------------------------------------------------------------
# ``repro explain`` rendering
# ---------------------------------------------------------------------------


def explain(meta: Dict, decision: Dict) -> str:
    """Human-readable derivation of one vCPU's cap at one tick."""
    p_us = meta["p_us"]
    lines: List[str] = []
    lines.append(
        f"cpu.max derivation for {decision['vm']}/vcpu{decision['vcpu']} "
        f"at tick {meta['tick']} (t={meta['t']:g}, engine={meta['engine']})"
    )
    lines.append(f"  path: {decision['path']}")
    if decision.get("consumed") is not None:
        lines.append(
            f"  stage 1  monitor    u = {decision['consumed']:.3f} cycles consumed"
        )
    else:
        lines.append("  stage 1  monitor    (not observed this tick)")
    if decision.get("estimate") is not None:
        lines.append(
            f"  stage 2  estimate   e = {decision['estimate']:.3f} "
            f"(case={decision.get('case', '?')}, "
            f"trend={decision.get('trend', 0.0):+.3f})           [Eq. 3]"
        )
    g = decision.get("guarantee")
    if g is not None:
        lines.append(
            f"  stage 3  guarantee  C_i = {g:.3f} "
            f"(vfreq {decision.get('vfreq', 0.0):g} MHz of "
            f"F_MAX {meta.get('fmax_mhz', 0.0):g} MHz)    [Eq. 2]"
        )
    if decision.get("base") is not None:
        rule = (
            "max(min(e, C_i), C_i)" if decision.get("reserve_guarantee")
            else "min(e, C_i)"
        )
        lines.append(
            f"           base cap   {rule} = {decision['base']:.3f}"
            f"                 [Eq. 5]"
        )
    wallet_before = meta.get("wallets_before", {}).get(decision["vm"])
    wallet_after = meta.get("wallets_after", {}).get(decision["vm"])
    spent = meta.get("spent_per_vm", {}).get(decision["vm"], 0.0)
    if decision.get("purchased") is not None:
        wallet = ""
        if wallet_before is not None and wallet_after is not None:
            wallet = (
                f" (VM spent {spent:.3f} credits, wallet "
                f"{wallet_before:.3f} -> {wallet_after:.3f})"
            )
        lines.append(
            f"  stage 4  auction    +{decision['purchased']:.3f} cycles won"
            f"{wallet}  [Alg. 1]"
        )
        lines.append(
            f"           market     {meta.get('market_initial', 0.0):.3f} "
            f"initial -> {meta.get('market_left', 0.0):.3f} left after "
            f"{meta.get('rounds', 0)} round(s)            [Eq. 6]"
        )
    if decision.get("free_share") is not None:
        lines.append(
            f"  stage 5  free dist  +{decision['free_share']:.3f} of "
            f"{meta.get('freely_distributed', 0.0):.3f} freely distributed"
        )
    if decision.get("fallback") is not None:
        lines.append(
            f"  stage 6  RESILIENCE fallback override -> "
            f"{decision['fallback']:.3f} cycles (vCPU degraded)"
        )
    lines.append(
        f"  stage 6  cap        min(base + bought + free, p_us={p_us:g}) "
        f"= {decision['allocation']:.3f} cycles"
    )
    lines.append(
        f"           enforced   cpu.max quota {decision['quota_us']} µs / "
        f"{meta.get('enforcement_period_us', 0)} µs"
    )
    recomputed = recompute_allocation(decision, p_us)
    if recomputed == decision["allocation"]:
        lines.append("  verification: recomputed == recorded allocation (bit-exact)")
    else:
        lines.append(
            f"  verification: MISMATCH — recomputed {recomputed!r} != "
            f"recorded {decision['allocation']!r}"
        )
    return "\n".join(lines)


def explain_from_entries(
    entries: Iterable[Dict], vm: str, vcpu: int, tick: int
) -> str:
    """Render the derivation, or raise ``KeyError`` with what exists."""
    found = lookup(entries, vm, vcpu, tick)
    if found is None:
        ticks = sorted({e["meta"]["tick"] for e in entries})
        window = f"{ticks[0]}..{ticks[-1]}" if ticks else "none"
        raise KeyError(
            f"no ledger record for vm={vm!r} vcpu={vcpu} tick={tick} "
            f"(recorded ticks: {window})"
        )
    meta, decision = found
    return explain(meta, decision)
