"""In-memory time-series store for the cluster SLO plane.

The observability hub (PR 5) explains a single ``cpu.max`` write and
the shm telemetry lane (PR 8) publishes instantaneous scalars — neither
can answer a *windowed* question ("what fraction of tenant A's
guarantee checks failed over the last hour?").  :class:`SeriesStore`
closes that gap with fixed-capacity float64 rings keyed
``(name, labels)``, one ring per level of a raw → 10-tick → 100-tick
downsample ladder, and windowed queries (:meth:`~SeriesStore.avg`,
:meth:`~SeriesStore.rate`, :meth:`~SeriesStore.quantile`) that pick the
finest level still covering the window.

Everything is deterministic: appends happen at tick boundaries only,
downsampling is a plain mean over a fixed fanout, and queries are pure
functions of the stored values — the property the alert-determinism
suite (``tests/obs/test_slo_transparency.py``) leans on.

Ingest is three-dialect, mirroring how the repo's planes report:

* :meth:`SeriesStore.ingest_report` — one finished
  :class:`~repro.core.controller.ControllerReport` plus the owning
  controller's registries (tenant / guarantee maps), post hoc exactly
  like the obs hub;
* :meth:`SeriesStore.ingest_node_manager` — a
  :class:`~repro.sim.node_manager.NodeManager` (or sharded manager in
  ``"reports"`` mode) after a barrier tick;
* :meth:`SeriesStore.ingest_shard_reader` — *objectless*: straight off
  a :class:`~repro.sim.shard_telemetry.ShardTelemetryReader`'s mapped
  NumPy blocks in the shm dialect, via a per-catalog column cache so
  the 1000-node steady state never touches a dict per node.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

#: Canonical series names the SLO plane subscribes to.  One place, so
#: the three ingest dialects and ``slo.py`` can never drift apart.
S_TICK_SECONDS = "tick_seconds"                    # {node} gauge
S_STAGE_SECONDS = "stage_seconds"                  # {stage} gauge
S_ALLOC_CYCLES = "alloc_cycles"                    # {node} gauge
S_DEGRADED_VCPUS = "degraded_vcpus"                # {node} gauge
S_GUARANTEE_BAD = "guarantee_bad_total"            # {tenant} counter
S_GUARANTEE_CHECKS = "guarantee_checks_total"      # {tenant} counter
S_DEADLINE_BAD = "tick_deadline_bad_total"         # {} counter
S_DEADLINE_CHECKS = "tick_deadline_checks_total"   # {} counter
S_BACKEND_ERRORS = "backend_errors_total"          # {source} counter
S_BACKEND_OPS = "backend_ops_total"                # {source} counter
S_CREDITS_USD = "sla_credits_usd_total"            # {node} counter
S_REVENUE_USD = "revenue_usd_total"                # {node} counter
S_REBALANCE_PRESSURE = "rebalance_pressure_mhz"    # {} gauge

#: Label tuples are sorted ``(key, value)`` pairs — hashable, ordered.
LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Optional[Mapping[str, str]]) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Series:
    """One metric stream: a raw ring plus its downsample ladder.

    ``levels[0]`` holds the raw per-tick values; ``levels[k]`` holds
    means over ``fanout**k`` consecutive ticks, pushed exactly when the
    accumulator fills — so every level is a pure function of the append
    stream and two runs over identical data are bit-identical.
    """

    __slots__ = (
        "name", "labels", "capacity", "fanout",
        "_bufs", "_counts", "_acc", "_accn", "total",
    )

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        *,
        capacity: int = 512,
        fanout: int = 10,
        depth: int = 3,
    ) -> None:
        if capacity < 2:
            raise ValueError("capacity must be >= 2")
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        self.name = name
        self.labels = labels
        self.capacity = capacity
        self.fanout = fanout
        self._bufs = [np.zeros(capacity, dtype=np.float64) for _ in range(depth)]
        self._counts = [0] * depth
        self._acc = [0.0] * depth          # partial sums feeding level k+1
        self._accn = [0] * depth
        self.total = 0                     # raw points ever appended

    def append(self, value: float) -> None:
        v = float(value)
        bufs = self._bufs
        counts = self._counts
        n = counts[0]
        bufs[0][n % self.capacity] = v
        counts[0] = n + 1
        self.total += 1
        # Cascade: a filled accumulator pushes one mean to the next level.
        acc, accn = self._acc, self._accn
        fanout = self.fanout
        for k in range(len(bufs) - 1):
            acc[k] += v
            accn[k] += 1
            if accn[k] < fanout:
                break
            v = acc[k] / fanout
            acc[k] = 0.0
            accn[k] = 0
            m = counts[k + 1]
            bufs[k + 1][m % self.capacity] = v
            counts[k + 1] = m + 1

    def __len__(self) -> int:
        return min(self.total, self.capacity)

    @property
    def last(self) -> float:
        """Most recent raw value (0.0 before the first append)."""
        if self.total == 0:
            return 0.0
        return float(self._bufs[0][(self._counts[0] - 1) % self.capacity])

    def _level_for(self, window_ticks: int) -> int:
        """Finest ladder level whose ring still covers the window."""
        level = 0
        span = self.capacity
        while window_ticks > span and level < len(self._bufs) - 1:
            level += 1
            span *= self.fanout
        return level

    def tail(self, window_ticks: int) -> Tuple[np.ndarray, int]:
        """``(values, ticks_per_point)`` covering the last window.

        Values come back oldest-first, copied out of the ring.  The
        second element is ``fanout**level`` — how many raw ticks each
        returned point summarizes.
        """
        if window_ticks < 1:
            raise ValueError("window must be >= 1 tick")
        level = self._level_for(window_ticks)
        per_point = self.fanout ** level
        want = -(-window_ticks // per_point)  # ceil division
        count = self._counts[level]
        have = min(count, self.capacity, want)
        if have == 0:
            return np.empty(0, dtype=np.float64), per_point
        buf = self._bufs[level]
        end = count % self.capacity
        start = (end - have) % self.capacity
        if start < end:
            return buf[start:end].copy(), per_point
        return np.concatenate((buf[start:], buf[:end])), per_point

    # -- windowed queries --------------------------------------------------

    def avg(self, window_ticks: int) -> float:
        values, _ = self.tail(window_ticks)
        if values.size == 0:
            return 0.0
        return float(values.sum() / values.size)

    def rate(self, window_ticks: int) -> float:
        """Per-tick increase over the window (for counter series).

        ``(newest - oldest) / ticks_spanned`` on the finest covering
        level; one point (or none) means no measurable increase yet.
        """
        values, per_point = self.tail(window_ticks)
        if values.size < 2:
            return 0.0
        span = (values.size - 1) * per_point
        return float((values[-1] - values[0]) / span)

    def increase(self, window_ticks: int) -> float:
        """Total increase over the window (non-negative for counters)."""
        values, per_point = self.tail(window_ticks)
        if values.size < 2:
            return 0.0
        return float(values[-1] - values[0])

    def quantile(self, q: float, window_ticks: int) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        values, _ = self.tail(window_ticks)
        if values.size == 0:
            return 0.0
        return float(np.quantile(values, q))


class _ColumnGroup:
    """Per-catalog cache: one Series per row of an array-dialect ingest.

    Built once per (series name, label key, catalog) and then reused
    every tick, so the 1000-node steady state appends through a plain
    ``zip`` with zero per-node dict lookups.
    """

    __slots__ = ("series",)

    def __init__(self, series: List[Series]) -> None:
        self.series = series

    def append_array(self, values: np.ndarray) -> None:
        for series, value in zip(self.series, values.tolist()):
            series.append(value)


class SeriesStore:
    """All series of one plane, keyed ``(name, labels)``."""

    def __init__(
        self,
        *,
        capacity: int = 512,
        fanout: int = 10,
        depth: int = 3,
    ) -> None:
        self.capacity = capacity
        self.fanout = fanout
        self.depth = depth
        self._series: Dict[Tuple[str, LabelSet], Series] = {}
        self._totals: Dict[Tuple[str, LabelSet], float] = {}
        self._columns: Dict[Tuple, _ColumnGroup] = {}

    # -- series access -----------------------------------------------------

    def series(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Series:
        """The series for ``(name, labels)``, created on first use."""
        key = (name, _labelset(labels))
        found = self._series.get(key)
        if found is None:
            found = Series(
                name, key[1],
                capacity=self.capacity, fanout=self.fanout, depth=self.depth,
            )
            self._series[key] = found
        return found

    def get(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Optional[Series]:
        return self._series.get((name, _labelset(labels)))

    def select(self, name: str) -> List[Series]:
        """Every series of one name, across label sets (stable order)."""
        return [s for (n, _), s in self._series.items() if n == name]

    def __len__(self) -> int:
        return len(self._series)

    def __iter__(self) -> Iterable[Series]:
        return iter(self._series.values())

    # -- appends -----------------------------------------------------------

    def append(
        self, name: str, value: float,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.series(name, labels).append(value)

    def accumulate(
        self, name: str, delta: float,
        labels: Optional[Mapping[str, str]] = None,
    ) -> float:
        """Add ``delta`` to a running counter and append the new total.

        The store keeps the cumulative value so ingest sites can report
        per-tick deltas (bad/total counts, credit dollars) and queries
        still see a monotone counter to take ``increase()`` over.
        """
        key = (name, _labelset(labels))
        total = self._totals.get(key, 0.0) + delta
        self._totals[key] = total
        self.series(name, labels).append(total)
        return total

    # -- windowed queries --------------------------------------------------

    def avg(
        self, name: str, window_ticks: int,
        labels: Optional[Mapping[str, str]] = None,
    ) -> float:
        found = self.get(name, labels)
        return found.avg(window_ticks) if found is not None else 0.0

    def rate(
        self, name: str, window_ticks: int,
        labels: Optional[Mapping[str, str]] = None,
    ) -> float:
        found = self.get(name, labels)
        return found.rate(window_ticks) if found is not None else 0.0

    def increase(
        self, name: str, window_ticks: int,
        labels: Optional[Mapping[str, str]] = None,
    ) -> float:
        found = self.get(name, labels)
        return found.increase(window_ticks) if found is not None else 0.0

    def quantile(
        self, name: str, q: float, window_ticks: int,
        labels: Optional[Mapping[str, str]] = None,
    ) -> float:
        found = self.get(name, labels)
        return found.quantile(q, window_ticks) if found is not None else 0.0

    # -- ingest: report dialect --------------------------------------------

    def ingest_report(
        self, controller, report, *, node: str = "node-0"
    ) -> Tuple[int, int]:
        """One finished tick, post hoc — the obs-hub dialect.

        Walks the report exactly like ``BillingEngine._rows`` (samples
        with allocations, guarantee vs. estimate vs. allocation) to
        count per-tenant guarantee checks and violations, and appends
        the per-node gauges.  Returns ``(bad, total)`` summed over
        tenants, mostly for tests.
        """
        node_labels = {"node": node}
        self.append(S_TICK_SECONDS, report.timings.total, node_labels)
        alloc_total = 0.0
        for cycles in report.allocations.values():
            alloc_total += cycles
        self.append(S_ALLOC_CYCLES, alloc_total, node_labels)
        self.append(S_DEGRADED_VCPUS, float(len(report.degraded)), node_labels)

        tenants = getattr(controller, "_vm_tenant", {})
        guarantees = getattr(controller, "_guarantee", {})
        decisions = report.decisions
        bad_by_tenant: Dict[str, int] = {}
        total_by_tenant: Dict[str, int] = {}
        for s in report.samples:
            alloc = report.allocations.get(s.cgroup_path)
            if alloc is None:
                continue
            vm = s.vm_name
            g = guarantees.get(vm)
            if g is None:
                continue
            tenant = tenants.get(vm, "default")
            total_by_tenant[tenant] = total_by_tenant.get(tenant, 0) + 1
            d = decisions.get(s.cgroup_path)
            estimate = d.estimate_cycles if d is not None else None
            # The billing meter's SLA-shortfall criterion, verbatim: the
            # vCPU wanted at least its guarantee and got less.
            if alloc < g and (estimate is None or estimate >= g):
                bad_by_tenant[tenant] = bad_by_tenant.get(tenant, 0) + 1
        bad = total = 0
        for tenant in sorted(total_by_tenant):
            nb = bad_by_tenant.get(tenant, 0)
            nt = total_by_tenant[tenant]
            labels = {"tenant": tenant}
            self.accumulate(S_GUARANTEE_BAD, float(nb), labels)
            self.accumulate(S_GUARANTEE_CHECKS, float(nt), labels)
            bad += nb
            total += nt
        return bad, total

    def ingest_backend_stats(
        self, stats, *, source: str = "node-0"
    ) -> None:
        """Cumulative backend counters -> error/ops counter series."""
        d = stats.as_dict()
        errors = float(d.get("read_errors", 0) + d.get("write_errors", 0))
        ops = float(sum(d.values())) - errors
        labels = {"source": source}
        self.append(S_BACKEND_ERRORS, errors, labels)
        self.append(S_BACKEND_OPS, ops, labels)

    # -- ingest: node-manager dialect --------------------------------------

    def ingest_node_manager(
        self, manager, *, deadline_s: Optional[float] = None
    ) -> None:
        """A barrier tick of a (sharded) manager in ``"reports"`` mode.

        Per-node tick seconds and allocation totals come from
        ``last_reports``; the cluster deadline counter compares each
        node's stage total against ``deadline_s`` when given.
        """
        bad = 0
        total = 0
        for node_id in sorted(manager.last_reports):
            report = manager.last_reports[node_id]
            seconds = report.timings.total
            self.append(S_TICK_SECONDS, seconds, {"node": node_id})
            total += 1
            if deadline_s is not None and seconds > deadline_s:
                bad += 1
        if deadline_s is not None and total:
            self.accumulate(S_DEADLINE_BAD, float(bad))
            self.accumulate(S_DEADLINE_CHECKS, float(total))
        timings = manager.aggregate_timings()
        for stage in (
            "monitor", "estimate", "credits", "auction", "distribute", "enforce"
        ):
            self.append(
                S_STAGE_SECONDS, getattr(timings, stage), {"stage": stage}
            )
        self.ingest_backend_stats(manager.backend_stats(), source="cluster")

    # -- ingest: shm dialect -----------------------------------------------

    def _column_group(
        self, name: str, label_key: str, label_values: Sequence[str],
        cache_key: Tuple,
    ) -> _ColumnGroup:
        group = self._columns.get(cache_key)
        if group is None:
            group = _ColumnGroup([
                self.series(name, {label_key: value}) for value in label_values
            ])
            self._columns[cache_key] = group
        return group

    def ingest_shard_reader(
        self, reader, *, shard: str = "shard-0",
        deadline_s: Optional[float] = None,
    ) -> None:
        """One shard's published tick, straight off the mapped arrays.

        Objectless by construction: per-node tick seconds are a single
        vectorized row-sum over the stage columns, appended through a
        column cache keyed on the reader's catalog version — no per-node
        objects, dicts, or report materialization.  Uses the seqlock
        snapshot so a concurrently publishing writer can never tear the
        rows mid-read.
        """
        node_ids, nodes, backend, _invariants = reader.stable_snapshot()
        if not node_ids:
            return
        per_node_seconds = nodes[:, 0:6].sum(axis=1)
        group = self._column_group(
            S_TICK_SECONDS, "node", node_ids,
            (S_TICK_SECONDS, shard, node_ids),
        )
        group.append_array(per_node_seconds)
        stage_sums = nodes[:, 0:6].sum(axis=0)
        for k, stage in enumerate(
            ("monitor", "estimate", "credits", "auction", "distribute", "enforce")
        ):
            self.append(
                S_STAGE_SECONDS, float(stage_sums[k]),
                {"stage": stage, "shard": shard},
            )
        if deadline_s is not None:
            bad = int(np.count_nonzero(per_node_seconds > deadline_s))
            self.accumulate(S_DEADLINE_BAD, float(bad))
            self.accumulate(S_DEADLINE_CHECKS, float(len(node_ids)))
        # Backend counters: reader order follows BACKEND_FIELDS; errors
        # are the two *_errors fields, ops the rest (kept in sync with
        # ingest_backend_stats via the shared field names).
        from repro.sim.shard_telemetry import BACKEND_FIELDS

        errors = ops = 0.0
        for field, value in zip(BACKEND_FIELDS, backend.tolist()):
            if field.endswith("_errors"):
                errors += value
            else:
                ops += value
        labels = {"source": shard}
        self.append(S_BACKEND_ERRORS, errors, labels)
        self.append(S_BACKEND_OPS, ops, labels)

    # -- ingest: attachments -----------------------------------------------

    def ingest_billing(self, engine, tick: int, *, node: str = "node-0") -> None:
        """One metered tick's revenue / SLA-credit dollars.

        ``tick`` is the meter's 1-based control tick (the billing
        engine meters ``tick + 1`` from the 0-based ``_finish`` count).
        Deltas accumulate into monotone counters — deterministic
        because metering itself is (the billing-oracle contract).
        """
        meter = engine.meter
        labels = {"node": node}
        self.accumulate(S_REVENUE_USD, meter.tick_revenue.get(tick, 0.0), labels)
        self.accumulate(S_CREDITS_USD, meter.tick_credits.get(tick, 0.0), labels)

    def ingest_rebalance(self, loop) -> None:
        """A rebalance loop's latest guarantee-pressure reading."""
        plan = getattr(loop, "last_plan", None)
        if plan is None:
            return
        self.append(
            S_REBALANCE_PRESSURE, getattr(plan, "pressure_before_mhz", 0.0)
        )
