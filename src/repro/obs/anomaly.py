"""Seeded EWMA / z-score anomaly detection over controller telemetry.

Robust-provisioning work (Makridis et al., arXiv:1811.05533) motivates
*statistical* detection of drifting allocation behaviour rather than
point-in-time threshold checks.  :class:`EwmaDetector` is the smallest
deterministic version of that idea: an exponentially-weighted mean and
variance per watched series, a z-score against them, and a firing /
resolved state machine with hysteresis so one noisy tick cannot flap
an alert.

Determinism contract: a detector is a pure fold over the observed
values — same stream in, same transitions out, bit for bit.  The
``seed`` does **not** inject randomness into detection; it picks the
deterministic prior (initial variance floor) so fleets of detectors
can be diversified reproducibly, and it is recorded in every
transition for re-derivation (``repro explain --alert``).

The SLO plane (:mod:`repro.obs.slo`) instantiates detectors over stage
timings and backend error rates and routes their transitions into the
same alert ledger as the burn-rate rules.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class AnomalyConfig:
    """Knobs of one EWMA/z-score detector."""

    #: EWMA smoothing factor for the mean and variance trackers.
    alpha: float = 0.25
    #: Fire when ``|z| >= z_fire`` after warmup.
    z_fire: float = 6.0
    #: Resolve only once ``|z| <= z_resolve`` (hysteresis band).
    z_resolve: float = 2.0
    #: Observations before the detector may fire (the EWMA must settle).
    warmup: int = 12
    #: Picks the deterministic variance-floor prior; recorded in every
    #: transition so an alert is re-derivable from the config + stream.
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if self.z_fire <= self.z_resolve:
            raise ValueError("z_fire must exceed z_resolve (hysteresis)")
        if self.warmup < 2:
            raise ValueError("warmup must be >= 2")


class EwmaDetector:
    """One watched series' EWMA mean/variance and alert state."""

    __slots__ = (
        "name", "config", "mean", "var", "n", "firing",
        "last_z", "_floor",
    )

    def __init__(self, name: str, config: Optional[AnomalyConfig] = None):
        self.name = name
        self.config = config if config is not None else AnomalyConfig()
        self.mean = 0.0
        self.var = 0.0
        self.n = 0
        self.firing = False
        self.last_z = 0.0
        # The seeded prior: a variance floor in [1e-12, 1e-9], fixed at
        # construction.  Guards the z-score against the exactly-constant
        # streams a simulation produces (var == 0 -> division blow-up).
        self._floor = 1e-12 * 10 ** (3 * random.Random(self.config.seed).random())

    def observe(self, value: float) -> Optional[str]:
        """Fold one observation; returns ``"firing"`` / ``"resolved"``
        on a state transition, else ``None``."""
        cfg = self.config
        self.n += 1
        if self.n == 1:
            self.mean = value
            self.var = 0.0
            return None
        sigma = math.sqrt(max(self.var, self._floor))
        z = (value - self.mean) / sigma
        self.last_z = z
        # Update *after* scoring, so the anomaly cannot mask itself by
        # dragging the baseline toward it in the same step.
        delta = value - self.mean
        self.mean += cfg.alpha * delta
        self.var = (1.0 - cfg.alpha) * (self.var + cfg.alpha * delta * delta)
        if self.n <= cfg.warmup:
            return None
        if not self.firing and abs(z) >= cfg.z_fire:
            self.firing = True
            return "firing"
        if self.firing and abs(z) <= cfg.z_resolve:
            self.firing = False
            return "resolved"
        return None
