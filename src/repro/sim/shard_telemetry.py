"""Shared-memory telemetry lane for the sharded control plane.

:class:`~repro.sim.node_manager.ShardedNodeManager` originally pickled
every per-node :class:`~repro.core.controller.ControllerReport` across
the process boundary each tick.  At 1000 nodes / 50k VMs that is tens
of megabytes of sample lists and allocation dicts per second — the IPC
alone blows the 1 s control period.  This module is the compact lane:
each shard worker owns one ``multiprocessing.shared_memory`` segment
and publishes fixed-width NumPy blocks into it after every barrier
tick; the parent maps the same segment once and reads cluster
aggregates (stage timings, Eq. 7 guarantee/capacity accounts, backend
syscall counters, invariant totals, per-VM allocations) with zero
copies and zero pickling.  Full reports stay in the worker and are
fetched lazily — ``ShardedNodeManager.fetch_report`` — only for
``explain`` / flight-recorder flows.

Segment layout (all offsets in bytes, one segment per shard)::

    header     int64[8]    [catalog_version, n_nodes, n_vms,
                            node_cap, vm_cap, ticks, seq, 0]
    t          float64[1]  control time of the published tick
    backend    int64[11]   BackendStats counters (BACKEND_FIELDS order)
    invariants int64[2]    (checks, violations) shard totals
    nodes      float64[node_cap, NODE_F]   NODE_FIELDS columns
    vms        float64[vm_cap,   VM_F]     VM_FIELDS columns

The *catalog* (node ids, VM names, VM→node slots) crosses the process
boundary as a pickled tuple only when ``catalog_version`` changes —
steady-state ticks ship just the segment name and two ints.  When the
node/VM population outgrows the segment the worker allocates a doubled
segment under a fresh name and unlinks the old one; the parent re-maps
on the name change.

Resource-tracker note: every process that merely *attaches* a segment
still registers it with a ``resource_tracker`` (the well-known CPython
double-clean-up wart).  A process tree only shares one tracker if the
parent's tracker is already running when workers launch — forked
children inherit its fd and ``spawn`` ships the fd in the preparation
data — so :class:`~repro.sim.node_manager.ShardedNodeManager.start`
calls ``resource_tracker.ensure_running()`` *before* creating its
pools (otherwise worker and parent each lazily start a private
tracker, and the parent's attach-registration is never balanced —
a phantom-leak warning at exit).  With the tracker shared,
registration is set-idempotent and the creating worker's unlink is
the single clean-up point; the parent must NOT unregister on top of
it (double-unregister ``KeyError`` inside the tracker).
:class:`ShardTelemetryReader` keeps an ``untrack=`` escape hatch for
attaching from a process that genuinely runs its own tracker.
"""

from __future__ import annotations

from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.backend import BackendStats
from repro.core.controller import StageTimings

#: Order of the BackendStats counters inside the int64 backend block.
BACKEND_FIELDS: Tuple[str, ...] = tuple(BackendStats().as_dict())

#: Columns of the per-node float64 block.
NODE_FIELDS: Tuple[str, ...] = (
    "monitor_s",
    "estimate_s",
    "credits_s",
    "auction_s",
    "distribute_s",
    "enforce_s",
    "alloc_cycles",      # sum of this tick's allocations (cycles)
    "guarantee_mhz",     # Eq. 7 LHS: summed registered vfreq guarantees
    "capacity_mhz",      # Eq. 7 RHS: num_cpus x F_MAX
    "violations",        # cumulative invariant violations (-1: no oracle)
    "checks",            # cumulative invariant checks
    "num_vms",
    "errored",           # 1.0 when this node's tick raised this round
)

#: Columns of the per-VM float64 block.
VM_FIELDS: Tuple[str, ...] = (
    "node_slot",         # index into the shard's node catalog
    "alloc_cycles",      # this tick's allocation, summed over vCPU paths
    "guarantee_mhz",     # registered vfreq guarantee
)

NODE_F = len(NODE_FIELDS)
VM_F = len(VM_FIELDS)
_HDR_N = 8
_N_BACKEND = len(BACKEND_FIELDS)

#: ``header`` slot indices.
H_CATALOG_VERSION, H_N_NODES, H_N_VMS, H_NODE_CAP, H_VM_CAP, H_TICKS = range(6)
#: Sequence counter (seqlock): the writer holds it *odd* while
#: mutating rows and bumps it back to even once the tick is fully
#: published.  A reader that wants a consistent cross-block snapshot
#: (:meth:`ShardTelemetryReader.stable_snapshot`) copies the rows only
#: between two equal even reads — the barrier-tick parent never
#: actually retries (publish happens before the future resolves), but
#: a streaming scraper attached mid-tick can.
H_SEQ = 6

#: One shard's catalog: (node ids, vm names, vm node-slots) in block order.
Catalog = Tuple[Tuple[str, ...], Tuple[str, ...], Tuple[int, ...]]


def _segment_size(node_cap: int, vm_cap: int) -> int:
    return (
        _HDR_N * 8          # header
        + 8                 # t
        + _N_BACKEND * 8    # backend counters
        + 2 * 8             # invariant totals
        + node_cap * NODE_F * 8
        + vm_cap * VM_F * 8
    )


class _Blocks:
    """NumPy views over one mapped segment (no copies)."""

    def __init__(self, shm: shared_memory.SharedMemory, node_cap: int, vm_cap: int):
        buf = shm.buf
        off = 0
        self.header = np.ndarray((_HDR_N,), dtype=np.int64, buffer=buf, offset=off)
        off += _HDR_N * 8
        self.t = np.ndarray((1,), dtype=np.float64, buffer=buf, offset=off)
        off += 8
        self.backend = np.ndarray(
            (_N_BACKEND,), dtype=np.int64, buffer=buf, offset=off
        )
        off += _N_BACKEND * 8
        self.invariants = np.ndarray((2,), dtype=np.int64, buffer=buf, offset=off)
        off += 2 * 8
        self.nodes = np.ndarray(
            (node_cap, NODE_F), dtype=np.float64, buffer=buf, offset=off
        )
        off += node_cap * NODE_F * 8
        self.vms = np.ndarray(
            (vm_cap, VM_F), dtype=np.float64, buffer=buf, offset=off
        )


class ShardTelemetryWriter:
    """Worker-side publisher: one segment, reused across ticks."""

    def __init__(self, *, min_node_cap: int = 8, min_vm_cap: int = 64) -> None:
        self._min_node_cap = min_node_cap
        self._min_vm_cap = min_vm_cap
        self._shm: Optional[shared_memory.SharedMemory] = None
        self._blocks: Optional[_Blocks] = None
        self._node_cap = 0
        self._vm_cap = 0
        self._catalog_key: Optional[Tuple] = None
        self._catalog: Optional[Catalog] = None
        self.catalog_version = 0
        self.ticks = 0
        #: Seqlock counter — survives segment growth (a fresh segment
        #: starts at the writer's current even value, never back at 0).
        self._seq = 0

    # -- segment lifecycle ----------------------------------------------------

    def _ensure_capacity(self, n_nodes: int, n_vms: int) -> None:
        if (
            self._shm is not None
            and n_nodes <= self._node_cap
            and n_vms <= self._vm_cap
        ):
            return
        node_cap = max(self._min_node_cap, self._node_cap)
        while node_cap < n_nodes:
            node_cap *= 2
        vm_cap = max(self._min_vm_cap, self._vm_cap)
        while vm_cap < n_vms:
            vm_cap *= 2
        fresh = shared_memory.SharedMemory(
            create=True, size=_segment_size(node_cap, vm_cap)
        )
        self.close(unlink=True)  # drop the outgrown segment, if any
        self._shm = fresh
        self._node_cap = node_cap
        self._vm_cap = vm_cap
        self._blocks = _Blocks(fresh, node_cap, vm_cap)

    def close(self, *, unlink: bool) -> None:
        """Release (and optionally destroy) the current segment."""
        if self._shm is None:
            return
        self._blocks = None
        self._shm.close()
        if unlink:
            self._shm.unlink()
        self._shm = None

    @property
    def segment_name(self) -> Optional[str]:
        return self._shm.name if self._shm is not None else None

    # -- publishing -----------------------------------------------------------

    def publish(
        self, manager, t: float
    ) -> Tuple[str, int, Optional[Catalog]]:
        """Write one tick's telemetry; returns what the parent needs.

        ``manager`` is the in-worker :class:`~repro.sim.node_manager.
        NodeManager` after its barrier tick.  Returns ``(segment_name,
        catalog_version, catalog)`` with ``catalog=None`` whenever the
        node/VM population is unchanged — the steady-state tick payload
        is two ints and a string.
        """
        controllers = manager.controllers
        node_ids = tuple(sorted(controllers))
        vm_rows: List[Tuple[int, str, float]] = []
        for slot, node_id in enumerate(node_ids):
            vfreqs = getattr(controllers[node_id], "_vm_vfreq", None) or {}
            for name in sorted(vfreqs):
                vm_rows.append((slot, name, vfreqs[name]))
        vm_names = tuple(name for _, name, _ in vm_rows)
        vm_slots = tuple(slot for slot, _, _ in vm_rows)

        self._ensure_capacity(len(node_ids), len(vm_rows))
        blocks = self._blocks
        assert blocks is not None
        # Seqlock write-side: odd while the rows below are in flux.
        self._seq += 1
        blocks.header[H_SEQ] = self._seq

        catalog_key = (node_ids, vm_names, vm_slots)
        catalog: Optional[Catalog] = None
        if catalog_key != self._catalog_key:
            self._catalog_key = catalog_key
            self._catalog = (node_ids, vm_names, vm_slots)
            self.catalog_version += 1
            catalog = self._catalog

        nodes = blocks.nodes
        vms = blocks.vms
        vm_row = 0
        for slot, node_id in enumerate(node_ids):
            ctrl = controllers[node_id]
            report = manager.last_reports.get(node_id)
            row = nodes[slot]
            if report is not None:
                tm = report.timings
                row[0:6] = (
                    tm.monitor, tm.estimate, tm.credits,
                    tm.auction, tm.distribute, tm.enforce,
                )
                alloc_total = 0.0
                for cycles in report.allocations.values():
                    alloc_total += cycles
                row[6] = alloc_total
            else:
                row[0:7] = 0.0
            vfreqs = getattr(ctrl, "_vm_vfreq", None) or {}
            row[7] = sum(vfreqs.values())
            row[8] = getattr(ctrl, "num_cpus", 0) * getattr(ctrl, "fmax_mhz", 0.0)
            checker = getattr(ctrl, "invariant_checker", None)
            if checker is not None:
                row[9] = checker.violations_total
                row[10] = checker.checks_total
            else:
                row[9] = -1.0
                row[10] = 0.0
            row[11] = len(vfreqs)
            row[12] = 1.0 if node_id in manager.last_errors else 0.0

            # Per-VM allocations: group this tick's per-path cycles by
            # VM via the samples' path -> vm mapping.
            alloc_by_vm: Dict[str, float] = {}
            if report is not None and report.allocations:
                vm_of_path = {s.cgroup_path: s.vm_name for s in report.samples}
                for path, cycles in report.allocations.items():
                    vm = vm_of_path.get(path)
                    if vm is not None:
                        alloc_by_vm[vm] = alloc_by_vm.get(vm, 0.0) + cycles
            for name in sorted(vfreqs):
                vms[vm_row, 0] = slot
                vms[vm_row, 1] = alloc_by_vm.get(name, 0.0)
                vms[vm_row, 2] = vfreqs[name]
                vm_row += 1

        stats = manager.backend_stats().as_dict()
        blocks.backend[:] = [stats[k] for k in BACKEND_FIELDS]
        blocks.invariants[:] = manager.invariant_totals()
        blocks.t[0] = t
        self.ticks += 1
        header = blocks.header
        header[H_N_NODES] = len(node_ids)
        header[H_N_VMS] = len(vm_rows)
        header[H_NODE_CAP] = self._node_cap
        header[H_VM_CAP] = self._vm_cap
        header[H_TICKS] = self.ticks
        # Version last: a reader that sees the new version sees the rows.
        header[H_CATALOG_VERSION] = self.catalog_version
        # Seqlock release: back to even — the published tick is stable.
        self._seq += 1
        header[H_SEQ] = self._seq
        return self._shm.name, self.catalog_version, catalog  # type: ignore[union-attr]


class ShardTelemetryReader:
    """Parent-side view over one shard's segment (re-maps on growth)."""

    def __init__(self, *, untrack: bool = False) -> None:
        self._untrack = untrack
        self._shm: Optional[shared_memory.SharedMemory] = None
        self._blocks: Optional[_Blocks] = None
        self._segment_name: Optional[str] = None
        self.catalog_version = 0
        self.node_ids: Tuple[str, ...] = ()
        self.vm_names: Tuple[str, ...] = ()
        self.vm_slots: Tuple[int, ...] = ()
        #: Cumulative seqlock retries across ``stable_snapshot`` calls
        #: (zero on the barrier-tick path; the torn-read tests assert
        #: the retry loop actually spins when a publish is in flight).
        self.snapshot_retries = 0

    def update(
        self, segment_name: str, catalog_version: int,
        catalog: Optional[Catalog],
    ) -> None:
        """Track one tick's publication (attach / re-map as needed)."""
        if segment_name != self._segment_name:
            self.close()
            shm = shared_memory.SharedMemory(name=segment_name)
            # The worker that created the segment owns the unlink; under
            # spawn this process's own tracker must forget the name or
            # it re-unlinks at exit (see module docstring).
            if self._untrack:
                try:
                    resource_tracker.unregister(shm._name, "shared_memory")
                except Exception:
                    pass
            self._shm = shm
            self._segment_name = segment_name
            header = np.ndarray((_HDR_N,), dtype=np.int64, buffer=shm.buf)
            self._blocks = _Blocks(
                shm, int(header[H_NODE_CAP]), int(header[H_VM_CAP])
            )
        if catalog is not None:
            self.node_ids, self.vm_names, self.vm_slots = catalog
        self.catalog_version = catalog_version

    def close(self) -> None:
        if self._shm is not None:
            self._blocks = None
            self._shm.close()
            self._shm = None
            self._segment_name = None

    def unlink(self) -> None:
        """Destroy the mapped segment — dead-worker recovery only.

        Normally the worker that created a segment unlinks it; this is
        the parent-side fallback when that worker died without cleanup.
        """
        if self._shm is not None:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    # -- typed accessors ------------------------------------------------------

    @property
    def attached(self) -> bool:
        return self._shm is not None

    @property
    def seq(self) -> int:
        """Current seqlock value (odd: a publish is in flight)."""
        return int(self._blocks.header[H_SEQ])  # type: ignore[union-attr]

    def stable_snapshot(
        self,
        *,
        max_retries: int = 64,
        on_retry=None,
    ) -> Tuple[Tuple[str, ...], np.ndarray, np.ndarray, np.ndarray]:
        """A torn-read-free copy of this shard's published tick.

        Returns ``(node_ids, nodes, backend, invariants)`` where the
        arrays are *copies* taken between two equal even reads of the
        sequence counter — the seqlock read side.  If the writer is
        mid-``publish`` (odd counter, or the counter moved while we
        copied) the read retries, calling ``on_retry(attempt)`` first
        when given (the torn-read tests use that hook to complete the
        in-flight publish deterministically).  Raises ``RuntimeError``
        after ``max_retries`` failed attempts.
        """
        blocks = self._blocks
        assert blocks is not None, "reader not attached"
        header = blocks.header
        for attempt in range(max_retries):
            begin = int(header[H_SEQ])
            if begin % 2 == 0:
                n_nodes = int(header[H_N_NODES])
                nodes = blocks.nodes[:n_nodes].copy()
                backend = blocks.backend.copy()
                invariants = blocks.invariants.copy()
                if int(header[H_SEQ]) == begin:
                    self.snapshot_retries += attempt
                    return self.node_ids[:n_nodes], nodes, backend, invariants
            if on_retry is not None:
                on_retry(attempt)
        self.snapshot_retries += max_retries
        raise RuntimeError(
            f"shard telemetry snapshot torn {max_retries} times in a row "
            "(writer publishing continuously?)"
        )

    @property
    def t(self) -> float:
        return float(self._blocks.t[0])  # type: ignore[union-attr]

    @property
    def ticks(self) -> int:
        return int(self._blocks.header[H_TICKS])  # type: ignore[union-attr]

    def node_block(self) -> np.ndarray:
        """(n_nodes, NODE_F) view — rows follow ``node_ids`` order."""
        blocks = self._blocks
        assert blocks is not None, "reader not attached"
        return blocks.nodes[: int(blocks.header[H_N_NODES])]

    def vm_block(self) -> np.ndarray:
        """(n_vms, VM_F) view — rows follow ``vm_names`` order."""
        blocks = self._blocks
        assert blocks is not None, "reader not attached"
        return blocks.vms[: int(blocks.header[H_N_VMS])]

    def backend_stats(self) -> BackendStats:
        blocks = self._blocks
        assert blocks is not None, "reader not attached"
        counters = blocks.backend.tolist()
        return BackendStats(**dict(zip(BACKEND_FIELDS, counters)))

    def invariant_totals(self) -> Tuple[int, int]:
        blocks = self._blocks
        assert blocks is not None, "reader not attached"
        return int(blocks.invariants[0]), int(blocks.invariants[1])

    def stage_timings(self) -> StageTimings:
        """Summed per-stage wall-clock across this shard's nodes."""
        nodes = self.node_block()
        sums = nodes[:, 0:6].sum(axis=0)
        return StageTimings(
            monitor=float(sums[0]),
            estimate=float(sums[1]),
            credits=float(sums[2]),
            auction=float(sums[3]),
            distribute=float(sums[4]),
            enforce=float(sums[5]),
        )

    def violations_by_node(self) -> Dict[str, int]:
        """Cumulative violations per node; oracle-less nodes omitted."""
        nodes = self.node_block()
        out: Dict[str, int] = {}
        for slot, node_id in enumerate(self.node_ids):
            violations = nodes[slot, 9]
            if violations >= 0:
                out[node_id] = int(violations)
        return out
