"""Scenario builders reproducing the paper's experimental protocols.

* :func:`eval1_chetemi` — Table II: 20 small + 10 large on chetemi,
  compress-7zip, large instances start at t = 200 s (Figs. 6, 7, 10).
* :func:`eval1_chiclet` — Table III: 32 small + 16 large on chiclet
  (Figs. 8, 9, 11).
* :func:`eval2_chetemi` — Table V: 14 small (7zip) + 8 medium (openssl,
  t = 100 s) + 6 large (7zip, t = 200 s) on chetemi (Figs. 12-14).

Each scenario runs in configuration **A** (monitoring only — the paper's
baseline where the stock scheduler splits time per VM cgroup) or **B**
(controller enabled).  ``time_scale`` compresses the whole timeline
(start times, dip periods and work sizes alike) for fast tests while
preserving every shape the figures show.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.cgroups.fs import CgroupVersion
from repro.core.config import ControllerConfig
from repro.core.controller import VirtualFrequencyController
from repro.hw.node import Node
from repro.hw.nodespecs import CHETEMI, CHICLET, NodeSpec
from repro.sim.engine import Simulation
from repro.sim.metrics import MetricsRecorder, TimeSeries
from repro.virt.hypervisor import Hypervisor
from repro.virt.template import LARGE, MEDIUM, SMALL, VMTemplate
from repro.virt.vm import VMInstance
from repro.workloads.base import Workload, attach
from repro.workloads.compress7zip import Compress7Zip
from repro.workloads.openssl_ import OpenSSLSpeed

WorkloadFactory = Callable[[VMTemplate, float], Workload]


@dataclass
class VMGroup:
    """A homogeneous set of VM instances sharing template and workload."""

    template: VMTemplate
    count: int
    workload_factory: Optional[WorkloadFactory]
    start_time: float = 0.0
    label: Optional[str] = None
    #: Billing owner of this group's instances; ``None`` inherits the
    #: template's tenant.
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("count must be positive")
        if self.start_time < 0:
            raise ValueError("start_time must be >= 0")
        if self.label is None:
            self.label = self.template.name
        if self.tenant is None:
            self.tenant = self.template.tenant


@dataclass
class ScenarioResult:
    """Everything a figure/table needs from one scenario run."""

    scenario_name: str
    configuration: str  # "A" or "B"
    metrics: MetricsRecorder
    vm_names_by_group: Dict[str, List[str]]
    scores_by_group: Dict[str, np.ndarray] = field(default_factory=dict)
    mean_core_freq_std_mhz: float = 0.0
    controller_overhead_s: float = 0.0
    monitor_overhead_s: float = 0.0
    #: Per-tenant invoices, populated only when the scenario ran with
    #: ``billing=True`` (a ``repro.billing.Invoice`` list).
    invoices: Optional[List] = None

    def group_freq_series(self, label: str, *, estimated: bool = True) -> TimeSeries:
        """Average vCPU frequency of a VM class over time (Figs. 6-9, 12-13)."""
        store = self.metrics.vfreq_estimated if estimated else self.metrics.vfreq_actual
        return self.metrics.group_mean_series(store, self.vm_names_by_group[label])

    def plateau_mhz(self, label: str, t0: float, t1: Optional[float] = None) -> float:
        """Mean estimated frequency of a class within a window."""
        return self.metrics.steady_state_mean(
            self.metrics.vfreq_estimated, self.vm_names_by_group[label], t0, t1
        )


@dataclass
class Scenario:
    """A node + VM groups + runtime parameters, ready to run."""

    name: str
    node_spec: NodeSpec
    groups: List[VMGroup]
    duration: float
    dt: float = 0.5
    seed: int = 7
    cgroup_version: CgroupVersion = CgroupVersion.V2
    controller_config: ControllerConfig = field(
        default_factory=ControllerConfig.paper_evaluation
    )
    run_to_completion: bool = False
    #: LLC contention strength (repro.hw.cache); 0 disables the model.
    cache_alpha: float = 0.0
    #: Attach a billing engine (Lučanin-style performance-based
    #: pricing) and surface invoices on the result.  Off by default —
    #: and proven transparent: report/ledger streams are bit-identical
    #: either way (``tests/billing/test_transparency.py``).
    billing: bool = False
    #: Price book for the billing engine; ``None`` uses the default.
    price_book: Optional[object] = None

    def build(self, *, controlled: bool) -> Simulation:
        """Instantiate node, VMs, workloads and controller."""
        cache = None
        if self.cache_alpha > 0:
            from repro.hw.cache import CacheContentionModel

            cache = CacheContentionModel(
                physical_cores=self.node_spec.physical_cores, alpha=self.cache_alpha
            )
        node = Node(
            self.node_spec,
            cgroup_version=self.cgroup_version,
            seed=self.seed,
            cache=cache,
        )
        hypervisor = Hypervisor(node)
        config = (
            self.controller_config
            if controlled
            else self.controller_config.monitoring_only()
        )
        if config.fault_plan_path:
            from repro.faults import FaultInjector, FaultPlan

            backend = FaultInjector(
                FaultPlan.load(config.fault_plan_path),
                node.fs,
                node.procfs,
                node.sysfs,
            )
            controller = VirtualFrequencyController(
                backend,
                num_cpus=node.spec.logical_cpus,
                fmax_mhz=node.spec.fmax_mhz,
                config=config,
            )
        else:
            controller = VirtualFrequencyController(
                node.fs,
                node.procfs,
                node.sysfs,
                num_cpus=node.spec.logical_cpus,
                fmax_mhz=node.spec.fmax_mhz,
                config=config,
            )
        if self.billing:
            from repro.billing.meter import BillingEngine

            BillingEngine.attach(
                controller, self.price_book, node_id=self.node_spec.name
            )
        for group in self.groups:
            for k in range(group.count):
                vm = hypervisor.provision(group.template, f"{group.label}-{k}")
                controller.register_vm(
                    vm.name, group.template.vfreq_mhz, tenant=group.tenant
                )
                if group.workload_factory is not None:
                    attach(vm, group.workload_factory(group.template, group.start_time))
        return Simulation(
            node, hypervisor, controller=controller, dt=self.dt
        )

    def run(self, *, controlled: bool) -> ScenarioResult:
        """Run one configuration (A = monitoring only, B = controlled)."""
        sim = self.build(controlled=controlled)
        until = sim.all_workloads_finished if self.run_to_completion else None
        sim.run(self.duration, until=until)
        names = {
            g.label: [f"{g.label}-{k}" for k in range(g.count)] for g in self.groups
        }
        result = ScenarioResult(
            scenario_name=self.name,
            configuration="B" if controlled else "A",
            metrics=sim.metrics,
            vm_names_by_group=names,
        )
        result.scores_by_group = {
            label: mean_scores_by_iteration(
                [sim.vms()[n] for n in vm_names]
            )
            for label, vm_names in names.items()
        }
        result.mean_core_freq_std_mhz = (
            sim.metrics.core_freq_std.mean() if len(sim.metrics.core_freq_std) else 0.0
        )
        ctrl = sim.controller
        if ctrl is not None and ctrl.reports:
            result.controller_overhead_s = ctrl.mean_iteration_seconds()
            result.monitor_overhead_s = float(
                np.mean([r.timings.monitor for r in ctrl.reports])
            )
        billing = getattr(ctrl, "billing", None)
        if billing is not None:
            result.invoices = billing.invoices()
        obs = getattr(ctrl, "obs", None)
        if obs is not None:
            # Flush span/ledger sinks and write the Chrome trace export;
            # the controller (and hub) die with this run.
            obs.close()
        return result


def mean_scores_by_iteration(vms: Sequence[VMInstance]) -> np.ndarray:
    """Average benchmark score per iteration index across instances.

    This is the aggregation behind Figs. 10/11/14 ("the results are the
    average of the results of each VM instances").  Instances that did
    not reach iteration ``k`` simply do not contribute to bucket ``k``.
    """
    buckets: Dict[int, List[float]] = {}
    for vm in vms:
        workload = vm.workload
        if workload is None:
            continue
        for score in workload.scores:
            buckets.setdefault(score.iteration, []).append(score.score)
    if not buckets:
        return np.zeros(0)
    max_iter = max(buckets)
    return np.asarray(
        [float(np.mean(buckets[i])) if i in buckets else np.nan for i in range(max_iter + 1)]
    )


# --------------------------------------------------------------------------
# Paper scenarios
# --------------------------------------------------------------------------

#: Per-iteration work of the compress benchmark: ~65 s per iteration for a
#: small instance at full chetemi speed (2 vCPU x 2400 MHz), so about three
#: iterations complete before the large instances start at t = 200 s —
#: matching Fig. 10's "first 3 iterations of the benchmark" remark.
COMPRESS_WORK_MHZ_S = 312_000.0

#: Medium instances' openssl run: finishes mid-experiment (Fig. 13).
OPENSSL_WORK_MHZ_S = 240_000.0


def _compress_factory(
    work: float, *, iterations: int = 15, time_scale: float = 1.0
) -> WorkloadFactory:
    # Synchronisation dips are a property of the benchmark, not of the
    # experimental timeline, so ``time_scale`` does NOT compress them —
    # a compressed dip cycle would be faster than the controller's own
    # convergence (several 1 s iterations) and the capping would never
    # settle, which no real workload exhibits.
    def make(template: VMTemplate, start_time: float) -> Workload:
        return Compress7Zip(
            template.vcpus,
            iterations=iterations,
            work_per_iteration_mhz_s=work * time_scale,
            start_time=start_time,
            dip_period=25.0,
            dip_duration=3.0,
        )

    return make


def _openssl_factory(
    work: float, *, iterations: int = 6, time_scale: float = 1.0
) -> WorkloadFactory:
    def make(template: VMTemplate, start_time: float) -> Workload:
        return OpenSSLSpeed(
            template.vcpus,
            iterations=iterations,
            work_per_iteration_mhz_s=work * time_scale,
            start_time=start_time,
        )

    return make


def eval1_chetemi(
    *,
    duration: float = 900.0,
    time_scale: float = 1.0,
    iterations: int = 15,
    dt: float = 0.5,
    run_to_completion: bool = False,
    seed: int = 7,
    cgroup_version: CgroupVersion = CgroupVersion.V2,
) -> Scenario:
    """Table II — first evaluation on chetemi."""
    _check_scale(time_scale)
    compress = _compress_factory(
        COMPRESS_WORK_MHZ_S, iterations=iterations, time_scale=time_scale
    )
    return Scenario(
        name="eval1-chetemi",
        node_spec=CHETEMI,
        duration=duration * time_scale,
        dt=dt,
        seed=seed,
        cgroup_version=cgroup_version,
        run_to_completion=run_to_completion,
        groups=[
            VMGroup(SMALL, 20, compress, start_time=0.0),
            VMGroup(LARGE, 10, compress, start_time=200.0 * time_scale),
        ],
    )


def eval1_chiclet(
    *,
    duration: float = 900.0,
    time_scale: float = 1.0,
    iterations: int = 15,
    dt: float = 0.5,
    run_to_completion: bool = False,
    seed: int = 11,
    cgroup_version: CgroupVersion = CgroupVersion.V2,
) -> Scenario:
    """Table III — first evaluation on chiclet."""
    _check_scale(time_scale)
    compress = _compress_factory(
        COMPRESS_WORK_MHZ_S, iterations=iterations, time_scale=time_scale
    )
    return Scenario(
        name="eval1-chiclet",
        node_spec=CHICLET,
        duration=duration * time_scale,
        dt=dt,
        seed=seed,
        cgroup_version=cgroup_version,
        run_to_completion=run_to_completion,
        groups=[
            VMGroup(SMALL, 32, compress, start_time=0.0),
            VMGroup(LARGE, 16, compress, start_time=200.0 * time_scale),
        ],
    )


def eval2_chetemi(
    *,
    duration: float = 900.0,
    time_scale: float = 1.0,
    iterations: int = 15,
    dt: float = 0.5,
    run_to_completion: bool = False,
    seed: int = 13,
    cgroup_version: CgroupVersion = CgroupVersion.V2,
) -> Scenario:
    """Table V — second evaluation (heterogeneous workloads) on chetemi."""
    _check_scale(time_scale)
    compress = _compress_factory(
        COMPRESS_WORK_MHZ_S, iterations=iterations, time_scale=time_scale
    )
    openssl = _openssl_factory(OPENSSL_WORK_MHZ_S, time_scale=time_scale)
    return Scenario(
        name="eval2-chetemi",
        node_spec=CHETEMI,
        duration=duration * time_scale,
        dt=dt,
        seed=seed,
        cgroup_version=cgroup_version,
        run_to_completion=run_to_completion,
        groups=[
            VMGroup(SMALL, 14, compress, start_time=0.0),
            VMGroup(MEDIUM, 8, openssl, start_time=100.0 * time_scale),
            VMGroup(LARGE, 6, compress, start_time=200.0 * time_scale),
        ],
    )


def _check_scale(time_scale: float) -> None:
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")


# --------------------------------------------------------------------------
# Cluster-scale chaos+churn scenarios (the rebalancer's proving ground)
# --------------------------------------------------------------------------


@dataclass
class ClusterScenario:
    """A seeded chaos+churn cluster, with or without the rebalancer.

    Wraps :class:`repro.rebalance.ChurnChaosCluster` the way
    :class:`Scenario` wraps the single-node engine: all knobs in one
    dataclass, ``build()`` for the pieces, ``run()`` for the headline
    :class:`repro.rebalance.ChaosResult`.  With ``rebalance=False`` the
    same seeded scenario runs static-placement — the baseline every
    rebalancer result is compared against.
    """

    name: str
    nodes: int = 200
    vms: int = 10_000
    duration: float = 300.0
    dt: float = 1.0
    seed: int = 7
    degrade_rate_per_s: float = 0.02
    degrade_factor: float = 0.6
    degrade_duration_s: float = 60.0
    mean_lifetime_s: float = 1800.0
    rebalance: bool = True
    rebalance_every: int = 5
    max_moves_per_round: int = 16
    max_moves_per_node: int = 4
    ledger_path: Optional[str] = None
    #: Snapshot dialect for the loop: "auto" | "view" | "arrays".
    dialect: str = "auto"

    def __post_init__(self) -> None:
        if self.nodes <= 0 or self.vms < 0:
            raise ValueError("nodes must be positive and vms >= 0")
        if self.duration <= 0 or self.dt <= 0:
            raise ValueError("duration and dt must be positive")
        if self.rebalance_every < 1:
            raise ValueError("rebalance_every must be >= 1")
        if self.dialect not in ("auto", "view", "arrays"):
            raise ValueError("dialect must be 'auto', 'view' or 'arrays'")

    def chaos_config(self):
        from repro.rebalance import ChaosConfig

        return ChaosConfig(
            nodes=self.nodes,
            duration_s=self.duration,
            dt_s=self.dt,
            seed=self.seed,
            initial_vms=self.vms,
            mean_lifetime_s=self.mean_lifetime_s,
            degrade_rate_per_s=self.degrade_rate_per_s,
            degrade_factor=self.degrade_factor,
            degrade_duration_s=self.degrade_duration_s,
        )

    def build(self):
        """(cluster, loop-or-None), ready for ``cluster.run(loop)``."""
        from repro.placement.migration import MigrationModel
        from repro.rebalance import (
            ChurnChaosCluster,
            MigrationPlanner,
            PlannerConfig,
            RebalanceLedger,
            RebalanceLoop,
        )

        cluster = ChurnChaosCluster(self.chaos_config())
        loop = None
        if self.rebalance:
            loop = RebalanceLoop(
                MigrationPlanner(
                    MigrationModel(),
                    PlannerConfig(
                        max_moves_per_round=self.max_moves_per_round,
                        max_moves_per_node=self.max_moves_per_node,
                    ),
                ),
                every=self.rebalance_every,
                seed=self.seed,
                ledger=RebalanceLedger(path=self.ledger_path),
                dialect=self.dialect,
            )
        return cluster, loop

    def run(self):
        """One full run; the loop (if any) is closed, flushing JSONL."""
        cluster, loop = self.build()
        try:
            return cluster.run(loop)
        finally:
            if loop is not None:
                loop.close()


def chaos_churn(
    *,
    rebalance: bool = True,
    seed: int = 7,
    duration: float = 300.0,
    ledger_path: Optional[str] = None,
) -> ClusterScenario:
    """The headline 200-node / 10k-VM chaos+churn scenario."""
    return ClusterScenario(
        name="chaos-churn-200",
        nodes=200,
        vms=10_000,
        duration=duration,
        seed=seed,
        rebalance=rebalance,
        ledger_path=ledger_path,
    )


def chaos_churn_xl(
    *,
    rebalance: bool = True,
    seed: int = 7,
    duration: float = 60.0,
    dialect: str = "auto",
    ledger_path: Optional[str] = None,
) -> ClusterScenario:
    """The 1000-node / 50k-VM scale point (`chaos1000` benchmark).

    Five times PR 7's headline shape; one control-loop round (snapshot
    + plan) must fit inside the 1 s control period, which is what the
    arrays dialect exists for.
    """
    return ClusterScenario(
        name="chaos-churn-1000",
        nodes=1000,
        vms=50_000,
        duration=duration,
        seed=seed,
        rebalance=rebalance,
        dialect=dialect,
        ledger_path=ledger_path,
    )


def chaos_churn_small(
    *,
    rebalance: bool = True,
    seed: int = 7,
    duration: float = 120.0,
    ledger_path: Optional[str] = None,
) -> ClusterScenario:
    """8-node smoke version for CI (`make bench-rebalance-smoke`)."""
    return ClusterScenario(
        name="chaos-churn-8",
        nodes=8,
        vms=300,
        duration=duration,
        seed=seed,
        degrade_rate_per_s=0.05,
        rebalance=rebalance,
        rebalance_every=2,
        ledger_path=ledger_path,
    )
