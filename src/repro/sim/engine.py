"""Discrete-time simulation loop.

Each sub-tick of ``dt`` seconds:

1. workloads push per-vCPU demand into the scheduling entities;
2. the node steps: CFS distributes CPU time under the current quotas,
   accounting/affinity/DVFS/energy surfaces refresh;
3. workloads absorb their achieved progress (CPU-seconds x core MHz);
4. on controller-period boundaries, the controller runs one iteration
   against the node's kernel surfaces, and metrics are recorded.

The controller period must be an integer multiple of ``dt``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.api import Controller
from repro.core.controller import ControllerReport
from repro.hw.node import Node
from repro.sim.metrics import MetricsRecorder
from repro.virt.hypervisor import Hypervisor
from repro.virt.vm import VMInstance


class Simulation:
    """One node, its VMs/workloads, and (optionally) the controller."""

    def __init__(
        self,
        node: Node,
        hypervisor: Hypervisor,
        *,
        controller: Optional[Controller] = None,
        dt: float = 0.5,
        metrics: Optional[MetricsRecorder] = None,
    ) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        if controller is not None:
            # period_s is part of the Controller protocol — no reaching
            # into implementation-specific config objects.
            ratio = controller.period_s / dt
            if abs(ratio - round(ratio)) > 1e-9 or round(ratio) < 1:
                raise ValueError(
                    f"controller period {controller.period_s}s must be an "
                    f"integer multiple of dt={dt}s"
                )
        self.node = node
        self.hypervisor = hypervisor
        self.controller = controller
        self.dt = dt
        self.metrics = metrics or MetricsRecorder()
        self.t = 0.0
        self._subticks = 0

    # -- main loop -----------------------------------------------------------------

    def run(
        self,
        duration: float,
        *,
        on_report: Optional[Callable[[ControllerReport], None]] = None,
        until: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Advance the simulation by ``duration`` seconds.

        ``until`` (checked each controller period) may stop the run early
        — e.g. "all workloads finished".
        """
        if duration < 0:
            raise ValueError("duration must be >= 0")
        steps = int(round(duration / self.dt))
        ticks_per_period = (
            int(round(self.controller.period_s / self.dt))
            if self.controller
            else None
        )
        for _ in range(steps):
            self._set_demands()
            self.node.step(self.dt)
            self._absorb_progress()
            self.t += self.dt
            self._subticks += 1
            self._record_actuals()
            if ticks_per_period and self._subticks % ticks_per_period == 0:
                report = self.controller.tick(self.t)
                self._record_report(report)
                if on_report is not None:
                    on_report(report)
                if until is not None and until():
                    return

    # -- phases of one sub-tick ---------------------------------------------------------

    def _set_demands(self) -> None:
        for vm in self.hypervisor.vms:
            workload = vm.workload
            if workload is None:
                vm.set_uniform_demand(0.0)
                continue
            for vcpu in vm.vcpus:
                vcpu.set_demand(float(workload.demand(vcpu.index, self.t)))

    def _absorb_progress(self) -> None:
        for vm in self.hypervisor.vms:
            workload = vm.workload
            if workload is None:
                continue
            for vcpu in vm.vcpus:
                core = self.node.last_core_of(vcpu.tid)
                freq = self.node.effective_mhz(self.node.core_frequency_mhz(core))
                workload.advance(
                    vcpu.index, self.t, self.dt, vcpu.entity.allocated, freq
                )

    def _record_actuals(self) -> None:
        node = self.node
        for vm in self.hypervisor.vms:
            freqs: List[float] = []
            for vcpu in vm.vcpus:
                core = node.last_core_of(vcpu.tid)
                share = vcpu.entity.allocated / self.dt
                freqs.append(share * node.core_frequency_mhz(core))
            self.metrics.record_vfreq_actual(self.t, vm.name, float(np.mean(freqs)))
        self.metrics.core_freq_mean.append(self.t, node.dvfs.mean_mhz())
        self.metrics.core_freq_std.append(self.t, node.dvfs.std_mhz())
        total_alloc = sum(e.allocated for e in node.entities)
        self.metrics.node_utilisation.append(
            self.t, total_alloc / (node.spec.logical_cpus * self.dt)
        )

    def _record_report(self, report: ControllerReport) -> None:
        for vm_name, vfreq in report.vfreq_by_vm().items():
            self.metrics.record_vfreq_estimate(report.t, vm_name, vfreq)
        self.metrics.market_initial.append(report.t, report.market_initial)

    # -- helpers ---------------------------------------------------------------------------

    def vms(self) -> Dict[str, VMInstance]:
        return {vm.name: vm for vm in self.hypervisor.vms}

    def all_workloads_finished(self) -> bool:
        return all(
            vm.workload is None or vm.workload.finished for vm in self.hypervisor.vms
        )
