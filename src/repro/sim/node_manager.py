"""Multi-node control plane.

The paper's controller is strictly per-node — each instance owns one
host's kernel surfaces and never looks across the rack (§III-B).  What
a deployment still needs is the thin layer above: something that holds
N per-node controllers, fires their iterations together, and exposes
aggregate health (stage timings, syscall budgets) to the operator.
:class:`NodeManager` is that layer.

Because controllers are share-nothing — each one touches only its own
node's cgroupfs/procfs/sysfs — their ticks can run concurrently on a
thread pool without any cross-node ordering concerns: the reports of a
parallel tick are identical to running the same controllers back to
back.  One ``tick(t)`` is a barrier: it returns only when every node's
iteration has finished, mirroring the per-period cadence of the
single-node engines.

Controllers are any :class:`~repro.core.api.Controller`; the manager
additionally surfaces backend batch statistics for controllers that
expose a :class:`~repro.core.backend.HostBackend` (duck-typed — a
controller without ``.backend`` simply contributes nothing).
"""

from __future__ import annotations

import multiprocessing
from multiprocessing import resource_tracker
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.core.api import Controller
from repro.core.backend import BackendStats
from repro.core.controller import ControllerReport, StageTimings
from repro.obs.logging import get_logger
from repro.sim.shard_telemetry import (
    Catalog,
    ShardTelemetryReader,
    ShardTelemetryWriter,
)

log = get_logger("repro.node_manager")


class TickResult(Dict[str, ControllerReport]):
    """Per-node reports of one control-plane tick, plus failures.

    Behaves exactly like the plain dict :meth:`NodeManager.tick` used
    to return (existing callers index and iterate it unchanged);
    :attr:`errors` carries the exception of every node whose tick
    raised this round, keyed by node id.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.errors: Dict[str, BaseException] = {}


class NodeManager:
    """Runs N per-node controllers as one control plane.

    ``parallel=False`` (or a single node) degrades to a plain serial
    loop in registration order — useful both as the reference for
    determinism tests and to avoid thread overhead for tiny clusters.
    """

    def __init__(
        self,
        controllers: Optional[Dict[str, Controller]] = None,
        *,
        parallel: bool = True,
        max_workers: Optional[int] = None,
    ) -> None:
        self.controllers: Dict[str, Controller] = dict(controllers or {})
        self.parallel = parallel
        self.max_workers = max_workers
        self.last_reports: Dict[str, ControllerReport] = {}
        #: Exceptions of the latest tick, keyed by node id (reset each
        #: tick) — a failed node never aborts the barrier.
        self.last_errors: Dict[str, BaseException] = {}
        #: Cumulative failed-tick count per node id.
        self.error_counts: Dict[str, int] = {}
        self.ticks = 0
        self._executor: Optional[ThreadPoolExecutor] = None

    # -- node registry ----------------------------------------------------------

    def add_node(self, node_id: str, controller: Controller) -> None:
        if node_id in self.controllers:
            raise ValueError(f"node already managed: {node_id}")
        self.controllers[node_id] = controller

    def remove_node(self, node_id: str) -> Controller:
        controller = self.controllers.pop(node_id)
        self.last_reports.pop(node_id, None)
        self.last_errors.pop(node_id, None)
        return controller

    def replace_node(self, node_id: str, controller: Controller) -> Controller:
        """Swap in a fresh controller for a node (crash recovery).

        The old controller is returned; error history for the node is
        kept — the replacement is the *recovery*, not amnesia.
        """
        if node_id not in self.controllers:
            raise KeyError(f"node not managed: {node_id}")
        old = self.controllers[node_id]
        self.controllers[node_id] = controller
        self.last_errors.pop(node_id, None)
        log.info(
            "node controller replaced",
            extra={
                "node": node_id,
                "errors": self.error_counts.get(node_id, 0),
            },
        )
        return old

    @property
    def num_nodes(self) -> int:
        return len(self.controllers)

    # -- VM routing -------------------------------------------------------------

    def register_vm(
        self,
        node_id: str,
        vm_name: str,
        vfreq_mhz: float,
        *,
        tenant: Optional[str] = None,
    ) -> None:
        """Declare a VM on the named node."""
        self.controllers[node_id].register_vm(vm_name, vfreq_mhz, tenant=tenant)

    def unregister_vm(self, node_id: str, vm_name: str) -> None:
        self.controllers[node_id].unregister_vm(vm_name)

    # -- the control plane tick -------------------------------------------------

    def tick(self, t: float, node_ids: Optional[List[str]] = None) -> TickResult:
        """One iteration on every (selected) node; barrier semantics.

        Returns the per-node reports (a :class:`TickResult` — a dict,
        as before), also kept in :attr:`last_reports`.  Reports are
        independent of execution order because controllers share no
        state — verified by the node-manager integration tests.

        Faults are isolated per node: a controller whose tick raises
        (crashed process, dead kernel surface) is recorded in
        ``result.errors`` / :attr:`last_errors` and every other node
        still completes its iteration on time.  The failed controller
        stays registered so the operator can ``replace_node`` it after
        a snapshot restore.
        """
        ids = list(self.controllers) if node_ids is None else list(node_ids)
        result = TickResult()
        self.last_errors = {}
        if self.parallel and len(ids) > 1:
            futures = {
                node_id: self._pool().submit(self.controllers[node_id].tick, t)
                for node_id in ids
            }
            for node_id, future in futures.items():
                try:
                    result[node_id] = future.result()
                except Exception as exc:
                    self._record_error(node_id, exc, result)
        else:
            for node_id in ids:
                try:
                    result[node_id] = self.controllers[node_id].tick(t)
                except Exception as exc:
                    self._record_error(node_id, exc, result)
        self.last_reports.update(result)
        self.ticks += 1
        return result

    def _record_error(
        self, node_id: str, exc: Exception, result: TickResult
    ) -> None:
        result.errors[node_id] = exc
        self.last_errors[node_id] = exc
        self.error_counts[node_id] = self.error_counts.get(node_id, 0) + 1
        log.error(
            "node tick failed: %s: %s", type(exc).__name__, exc,
            extra={
                "node": node_id,
                "errors": self.error_counts[node_id],
            },
        )
        # Duck-typed flight-recorder trigger: any controller carrying an
        # observability hub gets a black-box dump of its final ticks
        # (idempotent — the controller's own wrapper usually dumped
        # already; the recorder dedupes per newest frame).
        obs = getattr(self.controllers.get(node_id), "obs", None)
        if obs is not None:
            obs.on_node_error(node_id, exc)

    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            workers = self.max_workers or min(32, max(1, len(self.controllers)))
            self._executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="node-tick"
            )
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "NodeManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- aggregate telemetry ----------------------------------------------------

    def aggregate_timings(self) -> StageTimings:
        """Summed per-stage wall-clock across the latest reports."""
        total = StageTimings()
        for report in self.last_reports.values():
            t = report.timings
            total.monitor += t.monitor
            total.estimate += t.estimate
            total.credits += t.credits
            total.auction += t.auction
            total.distribute += t.distribute
            total.enforce += t.enforce
        return total

    def backend_stats(self) -> BackendStats:
        """Summed syscall counters across all nodes' backends."""
        total = BackendStats()
        for controller in self.controllers.values():
            backend = getattr(controller, "backend", None)
            if backend is not None:
                total = total + backend.stats
        return total

    def invariant_totals(self) -> Tuple[int, int]:
        """(checks, violations) summed over nodes with inline oracles.

        Zero/zero when no controller runs with ``check_invariants``;
        a non-zero second element is the cluster-wide page-an-operator
        signal behind ``vfreq_invariant_violations_total``.
        """
        checks = violations = 0
        for controller in self.controllers.values():
            checker = getattr(controller, "invariant_checker", None)
            if checker is not None:
                checks += checker.checks_total
                violations += checker.violations_total
        return checks, violations

    def invariant_violations_by_node(self) -> Dict[str, int]:
        """Cumulative violation count per node (inline oracles only).

        Nodes without an inline checker are omitted — the rebalancer's
        :class:`~repro.rebalance.view.ClusterStateView` reads this to
        weight guarantee pressure with observed violations.
        """
        out: Dict[str, int] = {}
        for node_id, controller in self.controllers.items():
            checker = getattr(controller, "invariant_checker", None)
            if checker is not None:
                out[node_id] = checker.violations_total
        return out


# -- sharded (multi-process) control plane --------------------------------------
#
# Above a few hundred nodes the thread-pool barrier saturates on the
# GIL: every controller tick is pure Python over NumPy arrays, so
# threads serialize exactly where the work is.  The sharded manager
# splits the node set into groups, builds each group *inside* a worker
# process (controllers hold kernel-surface handles and RNG state that
# must never cross a pickle boundary), and ticks the groups in a
# :class:`~concurrent.futures.ProcessPoolExecutor`.
#
# Affinity is structural: each shard owns a dedicated single-worker
# executor, so every task for that shard lands on the process holding
# its state.  Only three things ever cross the process boundary:
# the shard *factory* on the way in (a picklable module-level callable)
# and, each tick, the per-node ``ControllerReport``s plus summed
# telemetry on the way out.


class Shard:
    """What a shard factory builds inside its worker process.

    ``controllers`` maps node id to a live per-node controller;
    ``pre_tick`` (optional) runs in-worker before every barrier tick —
    the hook simulations use to advance node workloads by one period
    (mirroring the ``node.step(dt); manager.tick(t)`` cadence of the
    in-process drivers).  Neither the controllers nor the hook is ever
    pickled; only the factory that creates them is.
    """

    def __init__(
        self,
        controllers: Dict[str, Controller],
        pre_tick: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.controllers = controllers
        self.pre_tick = pre_tick


#: Per-worker singleton: the shard this process owns.  Safe as a module
#: global because every shard executor runs ``max_workers=1``.
_WORKER_SHARD: Optional[Tuple[Shard, NodeManager]] = None

#: Per-worker telemetry segment, created on the first shared-telemetry
#: tick and reused (same buffers) for every tick after.
_WORKER_TELEMETRY: Optional[ShardTelemetryWriter] = None


def _shard_build(
    factory: Callable[[], Union[Shard, Dict[str, Controller]]],
) -> List[str]:
    """(worker) Build the shard's node group; return its node ids."""
    global _WORKER_SHARD
    built = factory()
    shard = built if isinstance(built, Shard) else Shard(dict(built))
    _WORKER_SHARD = (shard, NodeManager(shard.controllers, parallel=False))
    return sorted(shard.controllers)


def _shard_tick(
    t: float,
) -> Tuple[
    Dict[str, ControllerReport],
    Dict[str, Tuple[str, str]],
    BackendStats,
    Tuple[int, int],
]:
    """(worker) One barrier tick over this worker's node group.

    Exceptions are flattened to ``(type_name, message)`` pairs — live
    exception objects may drag unpicklable controller state through
    their traceback frames.
    """
    shard, manager = _WORKER_SHARD  # type: ignore[misc]
    if shard.pre_tick is not None:
        shard.pre_tick(t)
    result = manager.tick(t)
    errors = {
        node_id: (type(exc).__name__, str(exc))
        for node_id, exc in result.errors.items()
    }
    return (
        dict(result),
        errors,
        manager.backend_stats(),
        manager.invariant_totals(),
    )


def _shard_tick_telemetry(
    t: float,
) -> Tuple[Dict[str, Tuple[str, str]], str, int, Optional[Catalog]]:
    """(worker) Barrier tick publishing into shared memory.

    The compact sibling of :func:`_shard_tick`: per-node reports stay
    in this process (``fetch_report`` pulls one on demand); what crosses
    the pickle boundary is the error map, the segment name and the
    catalog version — plus the catalog itself only when it changed.
    """
    global _WORKER_TELEMETRY
    shard, manager = _WORKER_SHARD  # type: ignore[misc]
    if shard.pre_tick is not None:
        shard.pre_tick(t)
    result = manager.tick(t)
    errors = {
        node_id: (type(exc).__name__, str(exc))
        for node_id, exc in result.errors.items()
    }
    if _WORKER_TELEMETRY is None:
        _WORKER_TELEMETRY = ShardTelemetryWriter()
    name, version, catalog = _WORKER_TELEMETRY.publish(manager, t)
    return errors, name, version, catalog


def _shard_fetch_report(node_id: str) -> Optional[ControllerReport]:
    """(worker) One node's latest full report (lazy explain path)."""
    return _WORKER_SHARD[1].last_reports.get(node_id)  # type: ignore[index]


def _shard_close_telemetry() -> None:
    """(worker) Destroy this worker's telemetry segment, if any."""
    global _WORKER_TELEMETRY
    if _WORKER_TELEMETRY is not None:
        _WORKER_TELEMETRY.close(unlink=True)
        _WORKER_TELEMETRY = None


def _shard_invariants_by_node() -> Dict[str, int]:
    """(worker) Per-node cumulative violation counts for this shard."""
    return _WORKER_SHARD[1].invariant_violations_by_node()  # type: ignore[index]


def _shard_register_vm(
    node_id: str, vm_name: str, vfreq_mhz: float, tenant: Optional[str]
) -> None:
    _WORKER_SHARD[1].register_vm(  # type: ignore[index]
        node_id, vm_name, vfreq_mhz, tenant=tenant
    )


def _shard_unregister_vm(node_id: str, vm_name: str) -> None:
    _WORKER_SHARD[1].unregister_vm(node_id, vm_name)  # type: ignore[index]


class RemoteNodeError(RuntimeError):
    """A node tick failure reconstructed from a worker process.

    Carries the original exception's type name and message; the live
    object stayed in the worker (tracebacks don't pickle cleanly and
    may reference controller internals).
    """

    def __init__(self, exc_type: str, message: str) -> None:
        super().__init__(f"{exc_type}: {message}")
        self.exc_type = exc_type


class ShardedNodeManager:
    """Runs node groups in worker processes; one barrier per tick.

    Same contract as :class:`NodeManager` — ``tick(t)`` returns a
    merged :class:`TickResult`, failed nodes land in ``result.errors``
    without aborting the barrier, and the aggregate telemetry methods
    (``aggregate_timings`` / ``backend_stats`` / ``invariant_totals``)
    report cluster-wide sums.  Fault isolation is two-level: a node
    whose tick raises is contained by the in-worker :class:`NodeManager`
    (its shard's other nodes still report), and a shard whose *process*
    dies marks all of its nodes failed while the remaining shards
    complete; ``restart_shard`` rebuilds a dead shard from its factory.

    ``shard_factories`` maps shard id to a picklable zero-argument
    callable (module-level function or :func:`functools.partial` of
    one) returning either a :class:`Shard` or a plain
    ``{node_id: controller}`` dict.  Groups are built lazily inside the
    workers on first use — construct, then tick.

    ``telemetry`` picks the tick's IPC lane:

    * ``"reports"`` (default) — every per-node
      :class:`~repro.core.controller.ControllerReport` is pickled back
      each tick, exactly the original contract;
    * ``"shared"`` — workers publish compact per-node / per-VM arrays
      into a ``multiprocessing.shared_memory`` segment
      (:mod:`repro.sim.shard_telemetry`) and ``tick`` returns an
      *empty* :class:`TickResult` (errors still populated).  Aggregate
      telemetry — ``aggregate_timings`` / ``backend_stats`` /
      ``invariant_totals`` / ``invariant_violations_by_node`` — reads
      the mapped segments with no extra round trips, and a full report
      is fetched on demand via :meth:`fetch_report`.  This is the lane
      that keeps a 1000-node tick inside the 1 s control period.

    Observability stays per-node and in-worker: the inner manager's
    flight-recorder trigger fires in the process that owns the hub, so
    black-box dumps land exactly as they do single-process.  What this
    layer aggregates is the report stream and the summed telemetry.
    """

    def __init__(
        self,
        shard_factories: Mapping[
            str, Callable[[], Union[Shard, Dict[str, Controller]]]
        ],
        *,
        mp_context: Optional[str] = None,
        telemetry: str = "reports",
    ) -> None:
        if not shard_factories:
            raise ValueError("at least one shard factory is required")
        if telemetry not in ("reports", "shared"):
            raise ValueError(
                f"telemetry must be 'reports' or 'shared', got {telemetry!r}"
            )
        self.shard_factories = dict(shard_factories)
        self.telemetry = telemetry
        methods = multiprocessing.get_all_start_methods()
        method = mp_context or ("fork" if "fork" in methods else "spawn")
        self._ctx = multiprocessing.get_context(method)
        self._pools: Dict[str, ProcessPoolExecutor] = {}
        #: node ids per shard, learned from the in-worker build.
        self.nodes_by_shard: Dict[str, List[str]] = {}
        self.last_reports: Dict[str, ControllerReport] = {}
        self.last_errors: Dict[str, BaseException] = {}
        self.error_counts: Dict[str, int] = {}
        self.ticks = 0
        self._started = False
        self._backend_stats = BackendStats()
        self._invariant_totals = (0, 0)
        #: shared-telemetry segment views, one per shard.
        self.readers: Dict[str, ShardTelemetryReader] = {}

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        """Spin up one single-worker pool per shard and build in-worker."""
        if self._started:
            return
        if self.telemetry == "shared":
            # Start the parent's resource tracker *before* the pools
            # fork: forked workers then inherit it, making it the one
            # shared tracker the segment-cleanup bookkeeping assumes
            # (see the shard_telemetry module docstring).  Without
            # this, worker and parent each lazily start their own
            # tracker and the parent's attach-registration is never
            # balanced, warning about a phantom leak at exit.
            resource_tracker.ensure_running()
        futures = {}
        for shard_id, factory in self.shard_factories.items():
            pool = ProcessPoolExecutor(max_workers=1, mp_context=self._ctx)
            self._pools[shard_id] = pool
            futures[shard_id] = pool.submit(_shard_build, factory)
        for shard_id, future in futures.items():
            self.nodes_by_shard[shard_id] = future.result()
        self._started = True
        log.info(
            "sharded control plane started",
            extra={
                "shards": len(self._pools),
                "nodes": self.num_nodes,
            },
        )

    def restart_shard(self, shard_id: str) -> None:
        """Rebuild a dead shard's worker from its factory (recovery)."""
        pool = self._pools.pop(shard_id, None)
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        reader = self.readers.pop(shard_id, None)
        if reader is not None:
            # The dead worker never got to unlink its segment; do it
            # here so restarts don't leak /dev/shm files.
            reader.unlink()
            reader.close()
        fresh = ProcessPoolExecutor(max_workers=1, mp_context=self._ctx)
        self._pools[shard_id] = fresh
        self.nodes_by_shard[shard_id] = fresh.submit(
            _shard_build, self.shard_factories[shard_id]
        ).result()

    def close(self) -> None:
        """Shut down workers and reset to a cleanly re-start()able state.

        Telemetry segments are unlinked in-worker *before* the pools go
        down, and every per-run registry (``nodes_by_shard``,
        ``last_reports`` / ``last_errors`` / ``error_counts``, telemetry
        sums, tick count) is cleared — a closed manager behaves exactly
        like a freshly constructed one, so ``close(); start()`` round
        trips (each ``start`` rebuilds the shards from their factories).
        """
        for shard_id, pool in self._pools.items():
            try:
                pool.submit(_shard_close_telemetry).result(timeout=30)
            except Exception:
                pass  # dead worker: nothing left to unlink in-process
            pool.shutdown(wait=True)
        for reader in self.readers.values():
            reader.close()
        self._pools = {}
        self.readers = {}
        self.nodes_by_shard = {}
        self.last_reports = {}
        self.last_errors = {}
        self.error_counts = {}
        self.ticks = 0
        self._backend_stats = BackendStats()
        self._invariant_totals = (0, 0)
        self._started = False

    def __enter__(self) -> "ShardedNodeManager":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def num_nodes(self) -> int:
        return sum(len(ids) for ids in self.nodes_by_shard.values())

    @property
    def num_shards(self) -> int:
        return len(self.shard_factories)

    def shard_of(self, node_id: str) -> str:
        for shard_id, ids in self.nodes_by_shard.items():
            if node_id in ids:
                return shard_id
        raise KeyError(f"node not managed: {node_id}")

    # -- VM routing -------------------------------------------------------------

    def register_vm(
        self,
        node_id: str,
        vm_name: str,
        vfreq_mhz: float,
        *,
        tenant: Optional[str] = None,
    ) -> None:
        self.start()
        shard_id = self.shard_of(node_id)
        self._pools[shard_id].submit(
            _shard_register_vm, node_id, vm_name, vfreq_mhz, tenant
        ).result()

    def unregister_vm(self, node_id: str, vm_name: str) -> None:
        self.start()
        shard_id = self.shard_of(node_id)
        self._pools[shard_id].submit(
            _shard_unregister_vm, node_id, vm_name
        ).result()

    # -- the control plane tick -------------------------------------------------

    def tick(self, t: float) -> TickResult:
        """One iteration on every node of every shard; barrier semantics.

        In ``"reports"`` mode telemetry sums (`backend_stats`,
        `invariant_totals`) are refreshed from the workers as part of
        the same round trip — counters are cumulative in the backends,
        so the latest snapshot is the cluster total.  In ``"shared"``
        mode the result carries errors only; everything else lands in
        the shared-memory segments (see the class docstring).
        """
        self.start()
        if self.telemetry == "shared":
            return self._tick_shared(t)
        self.last_errors = {}
        result = TickResult()
        futures = {
            shard_id: pool.submit(_shard_tick, t)
            for shard_id, pool in self._pools.items()
        }
        stats = BackendStats()
        checks = violations = 0
        for shard_id, future in futures.items():
            try:
                reports, errors, shard_stats, totals = future.result()
            except Exception as exc:
                # The whole worker died (BrokenProcessPool, pickling
                # failure): every node of the shard is down this tick.
                for node_id in self.nodes_by_shard.get(shard_id, []):
                    self._record_error(node_id, exc, result)
                continue
            result.update(reports)
            for node_id, (exc_type, message) in errors.items():
                self._record_error(
                    node_id, RemoteNodeError(exc_type, message), result
                )
            stats = stats + shard_stats
            checks += totals[0]
            violations += totals[1]
        self._backend_stats = stats
        self._invariant_totals = (checks, violations)
        self.last_reports.update(result)
        self.ticks += 1
        return result

    def _tick_shared(self, t: float) -> TickResult:
        """Barrier tick over the compact shared-memory lane."""
        self.last_errors = {}
        result = TickResult()
        futures = {
            shard_id: pool.submit(_shard_tick_telemetry, t)
            for shard_id, pool in self._pools.items()
        }
        stats = BackendStats()
        checks = violations = 0
        for shard_id, future in futures.items():
            try:
                errors, segment, version, catalog = future.result()
            except Exception as exc:
                for node_id in self.nodes_by_shard.get(shard_id, []):
                    self._record_error(node_id, exc, result)
                continue
            reader = self.readers.get(shard_id)
            if reader is None:
                # start() launched the parent's resource tracker before
                # the pools, so fork AND spawn workers share it (spawn
                # ships the tracker fd in its preparation data) — the
                # creating worker's unlink is the single clean-up point
                # and the parent must not unregister on top of it.
                reader = self.readers[shard_id] = ShardTelemetryReader()
            reader.update(segment, version, catalog)
            for node_id, (exc_type, message) in errors.items():
                self._record_error(
                    node_id, RemoteNodeError(exc_type, message), result
                )
            shard_totals = reader.invariant_totals()
            stats = stats + reader.backend_stats()
            checks += shard_totals[0]
            violations += shard_totals[1]
        self._backend_stats = stats
        self._invariant_totals = (checks, violations)
        self.ticks += 1
        return result

    def fetch_report(self, node_id: str) -> Optional[ControllerReport]:
        """Pull one node's latest full report from its worker (lazy).

        The explain / flight-recorder escape hatch of the shared
        telemetry lane: the compact arrays cover every aggregate, and
        the rare flow that needs sample lists or per-path allocations
        pays one pickle for exactly one node.  The fetched report is
        cached in :attr:`last_reports` (as ``"reports"`` mode would
        have).  Works in either telemetry mode.
        """
        self.start()
        shard_id = self.shard_of(node_id)
        report = self._pools[shard_id].submit(
            _shard_fetch_report, node_id
        ).result()
        if report is not None:
            self.last_reports[node_id] = report
        return report

    def _record_error(
        self, node_id: str, exc: BaseException, result: TickResult
    ) -> None:
        result.errors[node_id] = exc
        self.last_errors[node_id] = exc
        self.error_counts[node_id] = self.error_counts.get(node_id, 0) + 1
        log.error(
            "node tick failed: %s: %s", type(exc).__name__, exc,
            extra={
                "node": node_id,
                "errors": self.error_counts[node_id],
            },
        )

    # -- aggregate telemetry ----------------------------------------------------

    def aggregate_timings(self) -> StageTimings:
        """Summed per-stage wall-clock across the latest tick.

        ``"reports"`` mode sums over :attr:`last_reports`; ``"shared"``
        mode sums the mapped telemetry blocks — no round trips.
        """
        if self.telemetry == "shared" and self.readers:
            total = StageTimings()
            for reader in self.readers.values():
                shard = reader.stage_timings()
                total.monitor += shard.monitor
                total.estimate += shard.estimate
                total.credits += shard.credits
                total.auction += shard.auction
                total.distribute += shard.distribute
                total.enforce += shard.enforce
            return total
        total = StageTimings()
        for report in self.last_reports.values():
            t = report.timings
            total.monitor += t.monitor
            total.estimate += t.estimate
            total.credits += t.credits
            total.auction += t.auction
            total.distribute += t.distribute
            total.enforce += t.enforce
        return total

    def backend_stats(self) -> BackendStats:
        """Cluster-wide syscall counters (as of the latest tick)."""
        return self._backend_stats

    def invariant_totals(self) -> Tuple[int, int]:
        """(checks, violations) cluster-wide (as of the latest tick)."""
        return self._invariant_totals

    def invariant_violations_by_node(self) -> Dict[str, int]:
        """Per-node cumulative violation counts, merged across shards.

        ``"shared"`` mode reads the mapped telemetry blocks directly —
        zero round trips, which is what lets the rebalancer snapshot a
        1000-node cluster every round.  ``"reports"`` mode keeps the
        original per-shard query.  Either way a dead shard contributes
        nothing this round (its nodes are already flagged via
        ``error_counts``); the counters are cumulative in-worker, so
        the next successful round trip catches the totals up.
        """
        if self.telemetry == "shared" and self.readers:
            out: Dict[str, int] = {}
            for reader in self.readers.values():
                out.update(reader.violations_by_node())
            return out
        self.start()
        futures = {
            shard_id: pool.submit(_shard_invariants_by_node)
            for shard_id, pool in self._pools.items()
        }
        out = {}
        for shard_id, future in futures.items():
            try:
                out.update(future.result())
            except Exception:
                continue
        return out
