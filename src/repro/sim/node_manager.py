"""Multi-node control plane.

The paper's controller is strictly per-node — each instance owns one
host's kernel surfaces and never looks across the rack (§III-B).  What
a deployment still needs is the thin layer above: something that holds
N per-node controllers, fires their iterations together, and exposes
aggregate health (stage timings, syscall budgets) to the operator.
:class:`NodeManager` is that layer.

Because controllers are share-nothing — each one touches only its own
node's cgroupfs/procfs/sysfs — their ticks can run concurrently on a
thread pool without any cross-node ordering concerns: the reports of a
parallel tick are identical to running the same controllers back to
back.  One ``tick(t)`` is a barrier: it returns only when every node's
iteration has finished, mirroring the per-period cadence of the
single-node engines.

Controllers are any :class:`~repro.core.api.Controller`; the manager
additionally surfaces backend batch statistics for controllers that
expose a :class:`~repro.core.backend.HostBackend` (duck-typed — a
controller without ``.backend`` simply contributes nothing).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from repro.core.api import Controller
from repro.core.backend import BackendStats
from repro.core.controller import ControllerReport, StageTimings
from repro.obs.logging import get_logger

log = get_logger("repro.node_manager")


class TickResult(Dict[str, ControllerReport]):
    """Per-node reports of one control-plane tick, plus failures.

    Behaves exactly like the plain dict :meth:`NodeManager.tick` used
    to return (existing callers index and iterate it unchanged);
    :attr:`errors` carries the exception of every node whose tick
    raised this round, keyed by node id.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.errors: Dict[str, BaseException] = {}


class NodeManager:
    """Runs N per-node controllers as one control plane.

    ``parallel=False`` (or a single node) degrades to a plain serial
    loop in registration order — useful both as the reference for
    determinism tests and to avoid thread overhead for tiny clusters.
    """

    def __init__(
        self,
        controllers: Optional[Dict[str, Controller]] = None,
        *,
        parallel: bool = True,
        max_workers: Optional[int] = None,
    ) -> None:
        self.controllers: Dict[str, Controller] = dict(controllers or {})
        self.parallel = parallel
        self.max_workers = max_workers
        self.last_reports: Dict[str, ControllerReport] = {}
        #: Exceptions of the latest tick, keyed by node id (reset each
        #: tick) — a failed node never aborts the barrier.
        self.last_errors: Dict[str, BaseException] = {}
        #: Cumulative failed-tick count per node id.
        self.error_counts: Dict[str, int] = {}
        self.ticks = 0
        self._executor: Optional[ThreadPoolExecutor] = None

    # -- node registry ----------------------------------------------------------

    def add_node(self, node_id: str, controller: Controller) -> None:
        if node_id in self.controllers:
            raise ValueError(f"node already managed: {node_id}")
        self.controllers[node_id] = controller

    def remove_node(self, node_id: str) -> Controller:
        controller = self.controllers.pop(node_id)
        self.last_reports.pop(node_id, None)
        self.last_errors.pop(node_id, None)
        return controller

    def replace_node(self, node_id: str, controller: Controller) -> Controller:
        """Swap in a fresh controller for a node (crash recovery).

        The old controller is returned; error history for the node is
        kept — the replacement is the *recovery*, not amnesia.
        """
        if node_id not in self.controllers:
            raise KeyError(f"node not managed: {node_id}")
        old = self.controllers[node_id]
        self.controllers[node_id] = controller
        self.last_errors.pop(node_id, None)
        log.info(
            "node controller replaced",
            extra={
                "node": node_id,
                "errors": self.error_counts.get(node_id, 0),
            },
        )
        return old

    @property
    def num_nodes(self) -> int:
        return len(self.controllers)

    # -- VM routing -------------------------------------------------------------

    def register_vm(self, node_id: str, vm_name: str, vfreq_mhz: float) -> None:
        """Declare a VM on the named node."""
        self.controllers[node_id].register_vm(vm_name, vfreq_mhz)

    def unregister_vm(self, node_id: str, vm_name: str) -> None:
        self.controllers[node_id].unregister_vm(vm_name)

    # -- the control plane tick -------------------------------------------------

    def tick(self, t: float, node_ids: Optional[List[str]] = None) -> TickResult:
        """One iteration on every (selected) node; barrier semantics.

        Returns the per-node reports (a :class:`TickResult` — a dict,
        as before), also kept in :attr:`last_reports`.  Reports are
        independent of execution order because controllers share no
        state — verified by the node-manager integration tests.

        Faults are isolated per node: a controller whose tick raises
        (crashed process, dead kernel surface) is recorded in
        ``result.errors`` / :attr:`last_errors` and every other node
        still completes its iteration on time.  The failed controller
        stays registered so the operator can ``replace_node`` it after
        a snapshot restore.
        """
        ids = list(self.controllers) if node_ids is None else list(node_ids)
        result = TickResult()
        self.last_errors = {}
        if self.parallel and len(ids) > 1:
            futures = {
                node_id: self._pool().submit(self.controllers[node_id].tick, t)
                for node_id in ids
            }
            for node_id, future in futures.items():
                try:
                    result[node_id] = future.result()
                except Exception as exc:
                    self._record_error(node_id, exc, result)
        else:
            for node_id in ids:
                try:
                    result[node_id] = self.controllers[node_id].tick(t)
                except Exception as exc:
                    self._record_error(node_id, exc, result)
        self.last_reports.update(result)
        self.ticks += 1
        return result

    def _record_error(
        self, node_id: str, exc: Exception, result: TickResult
    ) -> None:
        result.errors[node_id] = exc
        self.last_errors[node_id] = exc
        self.error_counts[node_id] = self.error_counts.get(node_id, 0) + 1
        log.error(
            "node tick failed: %s: %s", type(exc).__name__, exc,
            extra={
                "node": node_id,
                "errors": self.error_counts[node_id],
            },
        )
        # Duck-typed flight-recorder trigger: any controller carrying an
        # observability hub gets a black-box dump of its final ticks
        # (idempotent — the controller's own wrapper usually dumped
        # already; the recorder dedupes per newest frame).
        obs = getattr(self.controllers.get(node_id), "obs", None)
        if obs is not None:
            obs.on_node_error(node_id, exc)

    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            workers = self.max_workers or min(32, max(1, len(self.controllers)))
            self._executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="node-tick"
            )
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "NodeManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- aggregate telemetry ----------------------------------------------------

    def aggregate_timings(self) -> StageTimings:
        """Summed per-stage wall-clock across the latest reports."""
        total = StageTimings()
        for report in self.last_reports.values():
            t = report.timings
            total.monitor += t.monitor
            total.estimate += t.estimate
            total.credits += t.credits
            total.auction += t.auction
            total.distribute += t.distribute
            total.enforce += t.enforce
        return total

    def backend_stats(self) -> BackendStats:
        """Summed syscall counters across all nodes' backends."""
        total = BackendStats()
        for controller in self.controllers.values():
            backend = getattr(controller, "backend", None)
            if backend is not None:
                total = total + backend.stats
        return total

    def invariant_totals(self) -> Tuple[int, int]:
        """(checks, violations) summed over nodes with inline oracles.

        Zero/zero when no controller runs with ``check_invariants``;
        a non-zero second element is the cluster-wide page-an-operator
        signal behind ``vfreq_invariant_violations_total``.
        """
        checks = violations = 0
        for controller in self.controllers.values():
            checker = getattr(controller, "invariant_checker", None)
            if checker is not None:
                checks += checker.checks_total
                violations += checker.violations_total
        return checks, violations
