"""Open-loop cloud-operator study: VM arrivals, lifetimes, admission.

The paper's premise (§I) is that providers "can assign too much or too
few resources to a VM" because vCPU speed is uncontrolled.  This module
stages that premise as an operator experiment the paper leaves to future
work: a stream of VM requests (Poisson arrivals, exponential lifetimes,
a template mix) hits a cluster; an admission rule decides placement; the
controller (or its absence) decides what the accepted VMs actually get.

Outputs per policy: acceptance rate, and the SLA outcome of accepted
VMs (via :mod:`repro.analysis.sla`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.placement.constraints import Constraint, NodeUsage
from repro.placement.request import PlacementRequest
from repro.sim.cluster_engine import ClusterSimulation, NodeRuntime
from repro.virt.template import VMTemplate
from repro.workloads.base import Workload


@dataclass(frozen=True)
class ArrivalEvent:
    """One VM request: arrives at ``t``, lives for ``lifetime_s``."""

    t: float
    name: str
    template: VMTemplate
    lifetime_s: float


def generate_arrivals(
    *,
    rate_per_s: float,
    template_mix: Sequence[Tuple[VMTemplate, float]],
    mean_lifetime_s: float,
    horizon_s: float,
    seed: int = 0,
) -> List[ArrivalEvent]:
    """Poisson arrivals with exponential lifetimes and a weighted mix."""
    if rate_per_s <= 0 or mean_lifetime_s <= 0 or horizon_s <= 0:
        raise ValueError("rate, lifetime and horizon must be positive")
    templates = [t for t, _ in template_mix]
    weights = np.asarray([w for _, w in template_mix], dtype=np.float64)
    if len(templates) == 0 or np.any(weights < 0) or weights.sum() == 0:
        raise ValueError("template_mix must have non-negative weights summing > 0")
    weights = weights / weights.sum()
    rng = np.random.default_rng(seed)
    events: List[ArrivalEvent] = []
    t = 0.0
    k = 0
    while True:
        t += float(rng.exponential(1.0 / rate_per_s))
        if t >= horizon_s:
            break
        template = templates[int(rng.choice(len(templates), p=weights))]
        events.append(
            ArrivalEvent(
                t=t,
                name=f"{template.name}-{k}",
                template=template,
                lifetime_s=float(rng.exponential(mean_lifetime_s)),
            )
        )
        k += 1
    return events


@dataclass
class OperatorOutcome:
    """What happened over one operator run.

    SLA here is *ground truth*, sampled from the scheduler itself once
    per controller period: a VM-period is checked when some vCPU demands
    at least its guaranteed share of a core, and violated when the
    scheduler delivered less than 98 % of that share — this catches
    starvation that quota files alone cannot show (an overcommitted node
    writes generous ``cpu.max`` values it cannot honour).
    """

    accepted: int = 0
    rejected: int = 0
    departed: int = 0
    sla_checks: int = 0
    sla_violations: int = 0
    vms_violated: set = field(default_factory=set)
    checks_by_vm: Dict[str, int] = field(default_factory=dict)
    violations_by_vm: Dict[str, int] = field(default_factory=dict)

    @property
    def acceptance_rate(self) -> float:
        total = self.accepted + self.rejected
        return self.accepted / total if total else 0.0

    @property
    def violation_rate(self) -> float:
        return self.sla_violations / self.sla_checks if self.sla_checks else 0.0


class CloudOperator:
    """Admits arrivals under a pluggable constraint and runs the cluster."""

    def __init__(
        self,
        sim: ClusterSimulation,
        constraint: Constraint,
        workload_factory: Callable[[ArrivalEvent], Optional[Workload]],
    ) -> None:
        self.sim = sim
        self.constraint = constraint
        self.workload_factory = workload_factory
        self.outcome = OperatorOutcome()
        self._departures: List[Tuple[float, str]] = []

    # -- admission -------------------------------------------------------------

    def _usage_of(self, runtime: NodeRuntime) -> NodeUsage:
        usage = NodeUsage()
        for vm in runtime.hypervisor.vms:
            usage.add(PlacementRequest(vm.name, vm.template))
        return usage

    def _admit(self, event: ArrivalEvent) -> Optional[str]:
        """BestFit against *current* usage; None when nothing fits."""
        best: Tuple[float, Optional[str]] = (float("inf"), None)
        for runtime in self.sim.runtimes.values():
            if not runtime.powered_on:
                continue
            usage = self._usage_of(runtime)
            request = PlacementRequest(event.name, event.template)
            if not self.constraint.fits(runtime.cluster_node.spec, usage, request):
                continue
            headroom = self.constraint.headroom(runtime.cluster_node.spec, usage)
            if headroom < best[0]:
                best = (headroom, runtime.node_id)
        return best[1]

    def _provision(self, event: ArrivalEvent, node_id: str) -> None:
        runtime = self.sim.runtimes[node_id]
        vm = runtime.hypervisor.provision(event.template, event.name)
        runtime.controller.register_vm(event.name, event.template.vfreq_mhz)
        workload = self.workload_factory(event)
        if workload is not None:
            vm.workload = workload
        self._departures.append((event.t + event.lifetime_s, event.name))

    def _retire_due(self) -> None:
        due = [d for d in self._departures if d[0] <= self.sim.t]
        self._departures = [d for d in self._departures if d[0] > self.sim.t]
        for _, name in due:
            runtime = self.sim._runtime_hosting(name)
            if runtime is None:
                continue
            runtime.hypervisor.destroy(name)
            runtime.controller.unregister_vm(name)
            self.outcome.departed += 1

    # -- the run -----------------------------------------------------------------

    def run(self, events: Sequence[ArrivalEvent], horizon_s: float) -> OperatorOutcome:
        """Process arrivals/departures while the cluster simulates."""
        period = self.sim.controller_config.period_s
        pending = sorted(events, key=lambda e: e.t)
        idx = 0
        warmup: Dict[str, float] = {}
        while self.sim.t < horizon_s - 1e-9:
            # admit everything due before the next period boundary
            while idx < len(pending) and pending[idx].t <= self.sim.t + period:
                event = pending[idx]
                idx += 1
                node_id = self._admit(event)
                if node_id is None:
                    self.outcome.rejected += 1
                    continue
                self._provision(event, node_id)
                self.outcome.accepted += 1
                warmup[event.name] = self.sim.t + 5 * period
            self._retire_due()
            self.sim.run(period)
            # SLA after a short per-VM warm-up (capping convergence)
            self._check_sla_warm(warmup)
        return self.outcome

    def _check_sla_warm(self, warmup: Dict[str, float]) -> None:
        dt = self.sim.dt
        for runtime in self.sim.runtimes.values():
            fmax = runtime.node.spec.fmax_mhz
            for vm in runtime.hypervisor.vms:
                if warmup.get(vm.name, 0.0) > self.sim.t:
                    continue
                guarantee_share = vm.template.vfreq_mhz / fmax
                wanting = False
                starved = False
                for vcpu in vm.vcpus:
                    if vcpu.entity.demand + 1e-9 < guarantee_share:
                        continue
                    wanting = True
                    delivered = vcpu.entity.allocated / dt
                    if delivered < 0.98 * guarantee_share:
                        starved = True
                if wanting:
                    self.outcome.sla_checks += 1
                    self.outcome.checks_by_vm[vm.name] = (
                        self.outcome.checks_by_vm.get(vm.name, 0) + 1
                    )
                    if starved:
                        self.outcome.sla_violations += 1
                        self.outcome.vms_violated.add(vm.name)
                        self.outcome.violations_by_vm[vm.name] = (
                            self.outcome.violations_by_vm.get(vm.name, 0) + 1
                        )
