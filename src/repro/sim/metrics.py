"""Time-series recording for simulations.

Stores what the paper's figures plot: estimated virtual frequency per VM
(Figs. 6-9, 12-13), benchmark scores per iteration (Figs. 10, 11, 14),
plus ground-truth allocations and host-level stats used for validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


class TimeSeries:
    """An append-only (t, value) series with vector access."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._t: List[float] = []
        self._v: List[float] = []

    def append(self, t: float, value: float) -> None:
        if self._t and t < self._t[-1]:
            raise ValueError(f"{self.name}: timestamps must be non-decreasing")
        self._t.append(float(t))
        self._v.append(float(value))

    def __len__(self) -> int:
        return len(self._t)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._t)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._v)

    def window(self, t0: float, t1: float) -> "TimeSeries":
        """Sub-series with t0 <= t < t1."""
        out = TimeSeries(self.name)
        for t, v in zip(self._t, self._v):
            if t0 <= t < t1:
                out.append(t, v)
        return out

    def mean(self) -> float:
        if not self._v:
            raise ValueError(f"{self.name}: empty series has no mean")
        return float(np.mean(self._v))

    def std(self) -> float:
        if not self._v:
            raise ValueError(f"{self.name}: empty series has no std")
        return float(np.std(self._v))

    def last(self) -> Tuple[float, float]:
        if not self._t:
            raise ValueError(f"{self.name}: empty series")
        return self._t[-1], self._v[-1]


@dataclass
class MetricsRecorder:
    """Collects per-VM and host-level series during a simulation run."""

    vfreq_estimated: Dict[str, TimeSeries] = field(default_factory=dict)
    vfreq_actual: Dict[str, TimeSeries] = field(default_factory=dict)
    core_freq_std: TimeSeries = field(default_factory=lambda: TimeSeries("core_freq_std"))
    core_freq_mean: TimeSeries = field(default_factory=lambda: TimeSeries("core_freq_mean"))
    node_utilisation: TimeSeries = field(default_factory=lambda: TimeSeries("node_util"))
    market_initial: TimeSeries = field(default_factory=lambda: TimeSeries("market"))

    def record_vfreq_estimate(self, t: float, vm_name: str, vfreq_mhz: float) -> None:
        self._series(self.vfreq_estimated, vm_name).append(t, vfreq_mhz)

    def record_vfreq_actual(self, t: float, vm_name: str, vfreq_mhz: float) -> None:
        self._series(self.vfreq_actual, vm_name).append(t, vfreq_mhz)

    @staticmethod
    def _series(store: Dict[str, TimeSeries], name: str) -> TimeSeries:
        series = store.get(name)
        if series is None:
            series = TimeSeries(name)
            store[name] = series
        return series

    # -- aggregation used by figures ------------------------------------------------

    def group_mean_series(
        self,
        store: Dict[str, TimeSeries],
        vm_names: Sequence[str],
        *,
        bucket_s: float = 1.0,
    ) -> TimeSeries:
        """Average a set of VMs' series into one bucketed series.

        This is exactly the paper's "average frequency of the vCPUs of
        the different instances" aggregation for a VM class.
        """
        if bucket_s <= 0:
            raise ValueError("bucket_s must be positive")
        merged_t: List[np.ndarray] = []
        merged_v: List[np.ndarray] = []
        for name in vm_names:
            if name in store and len(store[name]):
                merged_t.append(store[name].times)
                merged_v.append(store[name].values)
        out = TimeSeries(f"mean[{len(merged_t)} vms]")
        if not merged_t:
            return out
        t = np.concatenate(merged_t)
        v = np.concatenate(merged_v)
        buckets = np.floor(t / bucket_s).astype(np.int64)
        order = np.argsort(buckets, kind="stable")
        buckets, v = buckets[order], v[order]
        uniq, start = np.unique(buckets, return_index=True)
        sums = np.add.reduceat(v, start)
        counts = np.diff(np.concatenate((start, [len(v)])))
        for b, s, c in zip(uniq, sums, counts):
            out.append(float(b) * bucket_s, float(s / c))
        return out

    def steady_state_mean(
        self,
        store: Dict[str, TimeSeries],
        vm_names: Sequence[str],
        t0: float,
        t1: Optional[float] = None,
    ) -> float:
        """Mean value across VMs restricted to [t0, t1) — plateau checks."""
        values: List[float] = []
        for name in vm_names:
            series = store.get(name)
            if series is None:
                continue
            windowed = series.window(t0, t1 if t1 is not None else float("inf"))
            if len(windowed):
                values.append(windowed.mean())
        if not values:
            raise ValueError("no data in the requested window")
        return float(np.mean(values))


@dataclass
class ClusterRebalanceMetrics:
    """Per-step cluster series for chaos+churn rebalancer runs.

    Duck-typed into :meth:`repro.rebalance.ChurnChaosCluster.run` —
    anything with ``record_step`` works; this implementation keeps the
    three series ``analysis/`` plots: total Eq. 7 deficit, the VM count
    on violating nodes, and migrations in flight.
    """

    pressure_mhz: TimeSeries = field(
        default_factory=lambda: TimeSeries("cluster_pressure_mhz")
    )
    violating_vms: TimeSeries = field(
        default_factory=lambda: TimeSeries("violating_vms")
    )
    migrations_in_flight: TimeSeries = field(
        default_factory=lambda: TimeSeries("migrations_in_flight")
    )

    def record_step(
        self,
        t: float,
        *,
        pressure_mhz: float,
        violating_vms: int,
        in_flight: int,
    ) -> None:
        self.pressure_mhz.append(t, pressure_mhz)
        self.violating_vms.append(t, float(violating_vms))
        self.migrations_in_flight.append(t, float(in_flight))
