"""Plain-text rendering of the series and tables the benches print."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.metrics import TimeSeries


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table (the benches' stdout artefacts)."""
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        cells.append([_fmt(c) for c in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(c.ljust(w) for c, w in zip(cells[0], widths)))
    lines.append(sep)
    for row_cells in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row_cells, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        return f"{value:.1f}"
    return str(value)


def series_to_rows(
    series: Dict[str, TimeSeries],
    *,
    step_s: float = 30.0,
    t_max: Optional[float] = None,
) -> Tuple[List[str], List[List[object]]]:
    """Down-sample several time series into table rows: t, v1, v2, ...

    Each output row is the mean of each series within the [t, t+step)
    bucket — a printable stand-in for a figure's curves.
    """
    if step_s <= 0:
        raise ValueError("step_s must be positive")
    headers = ["t(s)"] + list(series)
    end = t_max
    if end is None:
        end = max((s.times[-1] for s in series.values() if len(s)), default=0.0)
    rows: List[List[object]] = []
    t = 0.0
    while t < end:
        row: List[object] = [int(t)]
        for s in series.values():
            windowed = s.window(t, t + step_s)
            row.append(windowed.mean() if len(windowed) else float("nan"))
        rows.append(row)
        t += step_s
    return headers, rows


def scores_rows(
    scores_by_label: Dict[str, np.ndarray],
) -> Tuple[List[str], List[List[object]]]:
    """Rows for a Fig. 10/11/14-style table: iteration index vs. scores."""
    headers = ["iteration"] + list(scores_by_label)
    n = max((len(v) for v in scores_by_label.values()), default=0)
    rows: List[List[object]] = []
    for i in range(n):
        row: List[object] = [i + 1]
        for arr in scores_by_label.values():
            row.append(float(arr[i]) if i < len(arr) else float("nan"))
        rows.append(row)
    return headers, rows
