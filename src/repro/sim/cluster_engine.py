"""Cluster-scale simulation: many nodes, placement, live migration.

Extends the single-node engine to the paper's §IV-C setting so the two
management styles can be compared end to end:

* **frequency capping** (the paper): every node runs the virtual
  frequency controller; placement uses Eq. 7; no migrations are needed
  because guarantees hold by construction;
* **classic management**: no capping, vCPU-count placement with
  overcommitment, and a reactive migration policy that moves VMs off
  overloaded nodes (the state of the art the paper's introduction
  describes).

Workloads migrate *with* their VM: the work pool keeps its progress and
the VM pauses only for the stop-and-copy downtime of the migration
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.cgroups.fs import CgroupVersion
from repro.core.config import ControllerConfig
from repro.core.controller import VirtualFrequencyController
from repro.hw.cluster import Cluster, ClusterNode
from repro.hw.node import Node
from repro.placement.evaluator import Placement
from repro.placement.migration import (
    MigrationEvent,
    MigrationModel,
    ThresholdMigrationPolicy,
)
from repro.placement.request import PlacementRequest
from repro.sim.node_manager import NodeManager
from repro.virt.hypervisor import Hypervisor
from repro.virt.vm import VMInstance
from repro.workloads.base import Workload

WorkloadFor = Callable[[PlacementRequest], Optional[Workload]]


@dataclass
class NodeRuntime:
    """One physical machine plus its management stack."""

    cluster_node: ClusterNode
    node: Node
    hypervisor: Hypervisor
    controller: Optional[VirtualFrequencyController]
    powered_on: bool = True

    @property
    def node_id(self) -> str:
        return self.cluster_node.node_id

    def demand_load(self) -> float:
        """Demanded cores / logical CPUs, the overload signal."""
        total = sum(min(e.demand, 1.0) for e in self.node.entities)
        return total / self.node.spec.logical_cpus


@dataclass
class _InFlightMigration:
    vm_name: str
    source: str
    target: str
    started_at: float
    arrives_at: float
    downtime_s: float
    #: Sizes the VM will claim on the target at cut-over; admission and
    #: target picking must count these or two concurrent migrations can
    #: over-commit one node.
    vcpus: int = 0
    memory_mb: int = 0
    demand_mhz: float = 0.0


class ClusterSimulation:
    """Drives a whole cluster tick by tick."""

    def __init__(
        self,
        cluster: Cluster,
        *,
        controlled: bool = True,
        controller_config: Optional[ControllerConfig] = None,
        dt: float = 0.5,
        seed: int = 0,
        cgroup_version: CgroupVersion = CgroupVersion.V2,
        migration_model: Optional[MigrationModel] = None,
        migration_policy: Optional[ThresholdMigrationPolicy] = None,
        enforce_admission: bool = True,
        keep_reports: bool = False,
        parallel: bool = True,
        max_workers: Optional[int] = None,
        rebalancer=None,
    ) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.dt = dt
        self.t = 0.0
        self.controlled = controlled
        config = controller_config or ControllerConfig.paper_evaluation()
        if not controlled:
            config = config.monitoring_only()
        self.controller_config = config
        self.migration_model = migration_model or MigrationModel()
        self.migration_policy = migration_policy
        self.migrations: List[MigrationEvent] = []
        self._in_flight: List[_InFlightMigration] = []
        self._paused_until: Dict[str, float] = {}
        self._subticks = 0
        #: Optional :class:`repro.rebalance.loop.RebalanceLoop` (duck-
        #: typed: anything with ``maybe_rebalance(cluster, tick)``),
        #: invoked once per control period after the reactive policy.
        self.rebalancer = rebalancer
        self._control_ticks = 0

        self.runtimes: Dict[str, NodeRuntime] = {}
        for k, cnode in enumerate(cluster):
            node = Node(cnode.spec, cgroup_version=cgroup_version, seed=seed + k)
            hypervisor = Hypervisor(node, enforce_admission=enforce_admission)
            controller = VirtualFrequencyController(
                node.fs,
                node.procfs,
                node.sysfs,
                num_cpus=node.spec.logical_cpus,
                fmax_mhz=node.spec.fmax_mhz,
                config=config,
            )
            controller.keep_reports = keep_reports
            self.runtimes[cnode.node_id] = NodeRuntime(
                cluster_node=cnode,
                node=node,
                hypervisor=hypervisor,
                controller=controller,
            )
        # The control plane: per-period ticks of all powered-on nodes
        # run through one NodeManager (thread pool; controllers are
        # share-nothing so parallel order cannot change the reports).
        self.node_manager = NodeManager(
            {
                node_id: runtime.controller
                for node_id, runtime in self.runtimes.items()
            },
            parallel=parallel,
            max_workers=max_workers,
        )

    # -- deployment ---------------------------------------------------------------

    def deploy(self, placement: Placement, workload_for: WorkloadFor) -> None:
        """Provision every placed request and attach its workload."""
        if placement.unplaced:
            raise ValueError(
                f"placement has {len(placement.unplaced)} unplaced VMs"
            )
        for node_id, requests in placement.assignments.items():
            runtime = self.runtimes[node_id]
            for request in requests:
                vm = runtime.hypervisor.provision(request.template, request.vm_name)
                self.node_manager.register_vm(
                    node_id, vm.name, request.template.vfreq_mhz
                )
                workload = workload_for(request)
                if workload is not None:
                    if workload.num_vcpus != vm.num_vcpus:
                        raise ValueError(
                            f"workload for {vm.name} sized for "
                            f"{workload.num_vcpus} vCPUs, VM has {vm.num_vcpus}"
                        )
                    vm.workload = workload

    def power_off_empty_nodes(self) -> int:
        """Shut down nodes hosting nothing (the §IV-C energy move)."""
        count = 0
        for runtime in self.runtimes.values():
            if runtime.powered_on and not runtime.hypervisor.vms:
                runtime.powered_on = False
                count += 1
        return count

    # -- main loop ------------------------------------------------------------------

    def run(self, duration: float) -> None:
        if duration < 0:
            raise ValueError("duration must be >= 0")
        steps = int(round(duration / self.dt))
        per_period = int(round(self.controller_config.period_s / self.dt))
        if abs(per_period * self.dt - self.controller_config.period_s) > 1e-9:
            raise ValueError("controller period must be a multiple of dt")
        for _ in range(steps):
            self._set_demands()
            for runtime in self._active():
                runtime.node.step(self.dt)
            self._absorb_progress()
            self.t += self.dt
            self._subticks += 1
            self._complete_migrations()
            if self._subticks % per_period == 0:
                self.node_manager.tick(
                    self.t, node_ids=[r.node_id for r in self._active()]
                )
                if self.migration_policy is not None:
                    self._check_migrations()
                self._control_ticks += 1
                if self.rebalancer is not None:
                    self.rebalancer.maybe_rebalance(self, self._control_ticks)

    def _active(self) -> List[NodeRuntime]:
        return [r for r in self.runtimes.values() if r.powered_on]

    def _set_demands(self) -> None:
        for runtime in self._active():
            for vm in runtime.hypervisor.vms:
                if self._paused_until.get(vm.name, 0.0) > self.t:
                    vm.set_uniform_demand(0.0)
                    continue
                workload = vm.workload
                if workload is None:
                    vm.set_uniform_demand(0.0)
                    continue
                for vcpu in vm.vcpus:
                    vcpu.set_demand(float(workload.demand(vcpu.index, self.t)))

    def _absorb_progress(self) -> None:
        for runtime in self._active():
            node = runtime.node
            for vm in runtime.hypervisor.vms:
                workload = vm.workload
                if workload is None:
                    continue
                for vcpu in vm.vcpus:
                    core = node.last_core_of(vcpu.tid)
                    freq = node.effective_mhz(node.core_frequency_mhz(core))
                    workload.advance(
                        vcpu.index, self.t, self.dt, vcpu.entity.allocated, freq
                    )

    # -- migrations -------------------------------------------------------------------

    def start_migration(self, vm_name: str, target_id: str) -> MigrationEvent:
        """Begin a live migration; the VM keeps running on the source
        during the pre-copy and pauses for the downtime on arrival."""
        source = self._runtime_hosting(vm_name)
        if source is None:
            raise KeyError(f"no node hosts VM {vm_name}")
        if target_id == source.node_id:
            raise ValueError("target equals source")
        if any(m.vm_name == vm_name for m in self._in_flight):
            raise ValueError(f"{vm_name} is already migrating")
        target = self.runtimes[target_id]
        if not target.powered_on:
            raise ValueError(f"target node {target_id} is powered off")
        vm = source.hypervisor.vm(vm_name)
        if target.hypervisor.enforce_admission:
            if not target.hypervisor.admits(vm.template):
                raise ValueError(
                    f"target node {target_id} cannot guarantee {vm_name} "
                    f"(Eq. 7 or memory would be violated)"
                )
            # Admission must also cover migrations still in flight to the
            # same target, or concurrent moves over-commit it at cut-over.
            planned_mhz, planned_mb = self._planned_in(target_id)
            spec = target.node.spec
            freq_ok = (
                target.hypervisor.committed_mhz()
                + planned_mhz
                + vm.template.demand_mhz
                <= spec.capacity_mhz + 1e-9
            )
            mem_ok = (
                target.hypervisor.committed_memory_mb()
                + planned_mb
                + vm.template.memory_mb
                <= spec.memory_mb
            )
            if not (freq_ok and mem_ok):
                raise ValueError(
                    f"target node {target_id} cannot guarantee {vm_name} "
                    f"once in-flight migrations land (Eq. 7 or memory)"
                )
        transfer = self.migration_model.transfer_seconds(vm.template.memory_mb)
        event = MigrationEvent(
            t=self.t,
            vm_name=vm_name,
            source=source.node_id,
            target=target_id,
            duration_s=self.migration_model.total_seconds(vm.template.memory_mb),
        )
        self._in_flight.append(
            _InFlightMigration(
                vm_name=vm_name,
                source=source.node_id,
                target=target_id,
                started_at=self.t,
                arrives_at=self.t + transfer,
                downtime_s=self.migration_model.downtime_s,
                vcpus=vm.template.vcpus,
                memory_mb=vm.template.memory_mb,
                demand_mhz=vm.template.demand_mhz,
            )
        )
        self.migrations.append(event)
        return event

    def _complete_migrations(self) -> None:
        still: List[_InFlightMigration] = []
        for mig in self._in_flight:
            if self.t + 1e-9 < mig.arrives_at:
                still.append(mig)
                continue
            source = self.runtimes[mig.source]
            target = self.runtimes[mig.target]
            vm = source.hypervisor.vm(mig.vm_name)
            template, workload = vm.template, vm.workload
            source.hypervisor.destroy(mig.vm_name)
            self.node_manager.unregister_vm(mig.source, mig.vm_name)
            new_vm = target.hypervisor.provision(template, mig.vm_name)
            self.node_manager.register_vm(
                mig.target, mig.vm_name, template.vfreq_mhz
            )
            new_vm.workload = workload
            self._paused_until[mig.vm_name] = self.t + mig.downtime_s
        self._in_flight = still

    def _check_migrations(self) -> None:
        policy = self.migration_policy
        migrating = {m.vm_name for m in self._in_flight}
        for runtime in self._active():
            load = runtime.demand_load()
            if not policy.observe(runtime.node_id, load):
                continue
            overload_cores = (load - policy.high_watermark) * runtime.node.spec.logical_cpus
            candidates = [
                (vm.name, vm.num_vcpus, sum(min(v.demand, 1.0) for v in vm.vcpus))
                for vm in runtime.hypervisor.vms
                if vm.name not in migrating
            ]
            victim = policy.pick_victim(candidates, max(overload_cores, 1e-9))
            if victim is None:
                continue
            target_id = self._pick_target(runtime, victim)
            if target_id is None:
                continue
            self.start_migration(victim, target_id)
            policy.reset(runtime.node_id)

    def _planned_in(self, node_id: str) -> Tuple[float, int]:
        """(MHz, MB) already promised to a node by in-flight migrations."""
        mhz = 0.0
        mb = 0
        for mig in self._in_flight:
            if mig.target == node_id:
                mhz += mig.demand_mhz
                mb += mig.memory_mb
        return mhz, mb

    def _pick_target(self, source: NodeRuntime, vm_name: str) -> Optional[str]:
        """Least-loaded powered-on node that can take the VM by vCPU
        count, counting vCPUs of migrations already in flight to it."""
        vm = source.hypervisor.vm(vm_name)
        best: Tuple[float, Optional[str]] = (float("inf"), None)
        for runtime in self._active():
            if runtime.node_id == source.node_id:
                continue
            hosted_vcpus = sum(v.num_vcpus for v in runtime.hypervisor.vms)
            hosted_vcpus += sum(
                m.vcpus for m in self._in_flight if m.target == runtime.node_id
            )
            if hosted_vcpus + vm.num_vcpus > runtime.node.spec.logical_cpus:
                continue
            load = runtime.demand_load()
            if load < best[0]:
                best = (load, runtime.node_id)
        return best[1]

    # -- queries --------------------------------------------------------------------------

    def rebalance_view(self):
        """Frozen snapshot for the rebalance control plane."""
        from repro.rebalance.view import ClusterStateView

        return ClusterStateView.from_cluster_sim(self)

    def rebalance_arrays(self):
        """Structure-of-arrays spelling of the same snapshot — what the
        rebalance loop's ``dialect="auto"`` picks at fleet scale."""
        from repro.rebalance.arrays import ClusterStateArrays

        return ClusterStateArrays.from_cluster_sim(self)

    def _runtime_hosting(self, vm_name: str) -> Optional[NodeRuntime]:
        for runtime in self.runtimes.values():
            try:
                runtime.hypervisor.vm(vm_name)
                return runtime
            except KeyError:
                continue
        return None

    def all_vms(self) -> Dict[str, VMInstance]:
        out: Dict[str, VMInstance] = {}
        for runtime in self.runtimes.values():
            for vm in runtime.hypervisor.vms:
                out[vm.name] = vm
        return out

    def total_energy_wh(self) -> float:
        """Cluster energy so far; powered-off nodes never step their
        meters, so they contribute only what they used while on."""
        return sum(r.node.energy.energy_wh for r in self.runtimes.values())

    def nodes_powered_on(self) -> int:
        return len(self._active())
