"""Discrete-time simulation engine, scenario builders and metrics."""

from repro.sim.metrics import (
    ClusterRebalanceMetrics,
    MetricsRecorder,
    TimeSeries,
)
from repro.sim.engine import Simulation
from repro.sim.scenario import (
    ClusterScenario,
    Scenario,
    ScenarioResult,
    VMGroup,
    chaos_churn,
    chaos_churn_small,
    chaos_churn_xl,
    eval1_chetemi,
    eval1_chiclet,
    eval2_chetemi,
)
from repro.sim.report import render_table, series_to_rows
from repro.sim.cluster_engine import ClusterSimulation, NodeRuntime
from repro.sim.arrivals import ArrivalEvent, CloudOperator, generate_arrivals
from repro.sim.node_manager import (
    NodeManager,
    RemoteNodeError,
    Shard,
    ShardedNodeManager,
    TickResult,
)

__all__ = [
    "NodeManager",
    "ShardedNodeManager",
    "Shard",
    "TickResult",
    "RemoteNodeError",
    "TimeSeries",
    "MetricsRecorder",
    "ClusterRebalanceMetrics",
    "Simulation",
    "Scenario",
    "ScenarioResult",
    "ClusterScenario",
    "VMGroup",
    "chaos_churn",
    "chaos_churn_small",
    "chaos_churn_xl",
    "eval1_chetemi",
    "eval1_chiclet",
    "eval2_chetemi",
    "render_table",
    "series_to_rows",
    "ClusterSimulation",
    "NodeRuntime",
    "ArrivalEvent",
    "CloudOperator",
    "generate_arrivals",
]
