"""Discrete-time simulation engine, scenario builders and metrics."""

from repro.sim.metrics import TimeSeries, MetricsRecorder
from repro.sim.engine import Simulation
from repro.sim.scenario import (
    Scenario,
    ScenarioResult,
    VMGroup,
    eval1_chetemi,
    eval1_chiclet,
    eval2_chetemi,
)
from repro.sim.report import render_table, series_to_rows
from repro.sim.cluster_engine import ClusterSimulation, NodeRuntime
from repro.sim.arrivals import ArrivalEvent, CloudOperator, generate_arrivals

__all__ = [
    "TimeSeries",
    "MetricsRecorder",
    "Simulation",
    "Scenario",
    "ScenarioResult",
    "VMGroup",
    "eval1_chetemi",
    "eval1_chiclet",
    "eval2_chetemi",
    "render_table",
    "series_to_rows",
    "ClusterSimulation",
    "NodeRuntime",
    "ArrivalEvent",
    "CloudOperator",
    "generate_arrivals",
]
