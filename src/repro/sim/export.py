"""CSV export of experiment artefacts.

Benches and the CLI can persist every figure's underlying data as plain
CSV so results can be diffed, re-plotted or consumed by other tools —
the artefact a real reproduction package ships alongside the tables.
"""

from __future__ import annotations

import csv
import pathlib
from typing import Dict, Mapping, Sequence, Union

import numpy as np

from repro.sim.metrics import TimeSeries

PathLike = Union[str, pathlib.Path]


def series_to_csv(
    path: PathLike,
    series: Mapping[str, TimeSeries],
    *,
    bucket_s: float = 1.0,
) -> pathlib.Path:
    """Write several time series into one CSV: t, <name1>, <name2>, ...

    Series are aligned on ``bucket_s``-wide time buckets (mean within a
    bucket); buckets a series has no data for are left empty.
    """
    if not series:
        raise ValueError("no series to export")
    if bucket_s <= 0:
        raise ValueError("bucket_s must be positive")
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)

    buckets: Dict[int, Dict[str, float]] = {}
    for name, s in series.items():
        if len(s) == 0:
            continue
        idx = np.floor(s.times / bucket_s).astype(np.int64)
        sums: Dict[int, list] = {}
        for b, v in zip(idx, s.values):
            sums.setdefault(int(b), []).append(float(v))
        for b, vals in sums.items():
            buckets.setdefault(b, {})[name] = float(np.mean(vals))

    names = list(series)
    with out.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["t_s"] + names)
        for b in sorted(buckets):
            row = [f"{b * bucket_s:g}"]
            for name in names:
                value = buckets[b].get(name)
                row.append("" if value is None else f"{value:.3f}")
            writer.writerow(row)
    return out


def scores_to_csv(
    path: PathLike,
    scores_by_label: Mapping[str, Sequence[float]],
) -> pathlib.Path:
    """Write per-iteration score arrays: iteration, <label1>, ..."""
    if not scores_by_label:
        raise ValueError("no scores to export")
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    names = list(scores_by_label)
    longest = max(len(v) for v in scores_by_label.values())
    with out.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["iteration"] + names)
        for i in range(longest):
            row = [str(i + 1)]
            for name in names:
                vals = scores_by_label[name]
                if i < len(vals) and vals[i] == vals[i]:  # not NaN
                    row.append(f"{float(vals[i]):.3f}")
                else:
                    row.append("")
            writer.writerow(row)
    return out


def read_csv(path: PathLike) -> Dict[str, list]:
    """Read back an exported CSV into column lists (test/round-trip aid)."""
    with pathlib.Path(path).open() as fh:
        reader = csv.reader(fh)
        header = next(reader)
        cols: Dict[str, list] = {name: [] for name in header}
        for row in reader:
            for name, cell in zip(header, row):
                cols[name].append(float(cell) if cell else None)
    return cols
