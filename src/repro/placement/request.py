"""Placement requests: VMs waiting to be assigned to nodes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.virt.template import VMTemplate


@dataclass(frozen=True)
class PlacementRequest:
    """One VM to place."""

    vm_name: str
    template: VMTemplate

    @property
    def vcpus(self) -> int:
        return self.template.vcpus

    @property
    def demand_mhz(self) -> float:
        """``k_i^vCPU * F_i`` — the Eq. 7 left-hand-side contribution."""
        return self.template.demand_mhz

    @property
    def memory_mb(self) -> int:
        return self.template.memory_mb


def expand_requests(
    mix: Iterable[Tuple[VMTemplate, int]],
) -> List[PlacementRequest]:
    """Expand (template, count) pairs into individual requests.

    The §IV-C workload is
    ``expand_requests([(SMALL, 250), (MEDIUM, 50), (LARGE, 100)])``.
    """
    requests: List[PlacementRequest] = []
    for template, count in mix:
        if count < 0:
            raise ValueError(f"negative count for template {template.name}")
        requests.extend(
            PlacementRequest(f"{template.name}-{k}", template) for k in range(count)
        )
    return requests


def paper_workload() -> List[PlacementRequest]:
    """The §IV-C placement workload: 250 small + 50 medium + 100 large."""
    from repro.virt.template import LARGE, MEDIUM, SMALL

    return expand_requests([(SMALL, 250), (MEDIUM, 50), (LARGE, 100)])
