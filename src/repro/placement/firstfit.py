"""FirstFit placement: each VM goes to the first node it fits on."""

from __future__ import annotations

from typing import Dict, Sequence

from repro.hw.cluster import Cluster
from repro.placement.constraints import Constraint, NodeUsage
from repro.placement.evaluator import Placement
from repro.placement.request import PlacementRequest


class FirstFit:
    """Classic first-fit heuristic under a pluggable constraint."""

    def __init__(self, constraint: Constraint) -> None:
        self.constraint = constraint

    def place(
        self, cluster: Cluster, requests: Sequence[PlacementRequest]
    ) -> Placement:
        placement = Placement(cluster=cluster)
        usage: Dict[str, NodeUsage] = {n.node_id: NodeUsage() for n in cluster}
        for request in requests:
            for node in cluster:
                if self.constraint.fits(node.spec, usage[node.node_id], request):
                    usage[node.node_id].add(request)
                    placement.assign(node.node_id, request)
                    break
            else:
                placement.unplaced.append(request)
        return placement
