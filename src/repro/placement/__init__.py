"""VM placement algorithms (paper §III-C, evaluated in §IV-C).

Classic bin-packing heuristics (FirstFit, BestFit) under two admission
constraints:

* **vCPU-count** — the state-of-the-art rule: the number of vCPUs placed
  on a node cannot exceed its logical CPUs (optionally scaled by a
  consolidation factor);
* **core-splitting (Eq. 7)** — the paper's rule: the sum of the VMs'
  guaranteed frequency demand cannot exceed the node's frequency
  capacity, enabled by the virtual frequency controller.
"""

from repro.placement.request import PlacementRequest, expand_requests
from repro.placement.constraints import (
    Constraint,
    CoreSplittingConstraint,
    MemoryConstraint,
    VcpuCountConstraint,
    CompositeConstraint,
)
from repro.placement.firstfit import FirstFit
from repro.placement.bestfit import BestFit
from repro.placement.evaluator import Placement, PlacementStats, evaluate
from repro.placement.migration import (
    MigrationEvent,
    MigrationModel,
    ThresholdMigrationPolicy,
)

__all__ = [
    "PlacementRequest",
    "expand_requests",
    "Constraint",
    "CoreSplittingConstraint",
    "MemoryConstraint",
    "VcpuCountConstraint",
    "CompositeConstraint",
    "FirstFit",
    "BestFit",
    "Placement",
    "PlacementStats",
    "evaluate",
    "MigrationEvent",
    "MigrationModel",
    "ThresholdMigrationPolicy",
]
