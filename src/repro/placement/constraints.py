"""Admission constraints for placement.

The paper replaces the classic "number of vCPUs <= number of CPU cores"
rule with the core-splitting constraint (Eq. 7):

    sum_i (k_i^vCPU * F_i)  <=  k_n^CPU * F_n^MAX

Both support a *consolidation factor* multiplying the node capacity —
the conventional overcommitment knob the paper compares against (a
x1.8 factor makes vCPU-count BestFit reach the same node count, §IV-C,
at the price of losing the frequency guarantee).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.hw.nodespecs import NodeSpec
from repro.placement.request import PlacementRequest


@dataclass
class NodeUsage:
    """Running totals of what is already placed on one node."""

    vcpus: int = 0
    demand_mhz: float = 0.0
    memory_mb: int = 0
    vms: List[PlacementRequest] = field(default_factory=list)

    def add(self, request: PlacementRequest) -> None:
        self.vcpus += request.vcpus
        self.demand_mhz += request.demand_mhz
        self.memory_mb += request.memory_mb
        self.vms.append(request)


class Constraint(abc.ABC):
    """Decides whether a request still fits on a node."""

    @abc.abstractmethod
    def fits(self, spec: NodeSpec, usage: NodeUsage, request: PlacementRequest) -> bool:
        """True when the request can be added without violating the rule."""

    @abc.abstractmethod
    def headroom(self, spec: NodeSpec, usage: NodeUsage) -> float:
        """Remaining capacity in this constraint's own units (for BestFit)."""


@dataclass(frozen=True)
class VcpuCountConstraint(Constraint):
    """Classic rule: vCPUs <= logical CPUs (x consolidation factor)."""

    consolidation_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.consolidation_factor <= 0:
            raise ValueError("consolidation_factor must be positive")

    def capacity(self, spec: NodeSpec) -> float:
        return spec.logical_cpus * self.consolidation_factor

    def fits(self, spec: NodeSpec, usage: NodeUsage, request: PlacementRequest) -> bool:
        return usage.vcpus + request.vcpus <= self.capacity(spec) + 1e-9

    def headroom(self, spec: NodeSpec, usage: NodeUsage) -> float:
        return self.capacity(spec) - usage.vcpus


@dataclass(frozen=True)
class CoreSplittingConstraint(Constraint):
    """The paper's Eq. 7: guaranteed MHz demand <= node MHz capacity."""

    consolidation_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.consolidation_factor <= 0:
            raise ValueError("consolidation_factor must be positive")

    def capacity(self, spec: NodeSpec) -> float:
        return spec.capacity_mhz * self.consolidation_factor

    def fits(self, spec: NodeSpec, usage: NodeUsage, request: PlacementRequest) -> bool:
        if request.template.vfreq_mhz > spec.fmax_mhz:
            return False  # a guarantee above F_MAX is unsatisfiable (Eq. 2)
        return usage.demand_mhz + request.demand_mhz <= self.capacity(spec) + 1e-6

    def headroom(self, spec: NodeSpec, usage: NodeUsage) -> float:
        return self.capacity(spec) - usage.demand_mhz


@dataclass(frozen=True)
class MemoryConstraint(Constraint):
    """RAM capacity rule (the paper assumes memory is plentiful; §V)."""

    def fits(self, spec: NodeSpec, usage: NodeUsage, request: PlacementRequest) -> bool:
        return usage.memory_mb + request.memory_mb <= spec.memory_mb

    def headroom(self, spec: NodeSpec, usage: NodeUsage) -> float:
        return float(spec.memory_mb - usage.memory_mb)


@dataclass(frozen=True)
class CompositeConstraint(Constraint):
    """All sub-constraints must hold; headroom follows the first one."""

    parts: Sequence[Constraint]

    def __post_init__(self) -> None:
        if not self.parts:
            raise ValueError("CompositeConstraint needs at least one part")

    def fits(self, spec: NodeSpec, usage: NodeUsage, request: PlacementRequest) -> bool:
        return all(p.fits(spec, usage, request) for p in self.parts)

    def headroom(self, spec: NodeSpec, usage: NodeUsage) -> float:
        return self.parts[0].headroom(spec, usage)
