"""BestFit placement — the heuristic evaluated in §IV-C.

Each VM is assigned to the *used* node with the least remaining headroom
that still fits it (tightest fit first); a new node is opened only when
no used node can take the VM.  Placing big VMs first
(``sort_requests=True``, the standard BFD variant) is the default, as
bin-packing heuristics degrade badly on adversarial orders otherwise.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.hw.cluster import Cluster
from repro.placement.constraints import Constraint, NodeUsage
from repro.placement.evaluator import Placement
from repro.placement.request import PlacementRequest


class BestFit:
    """Best-fit (decreasing) heuristic under a pluggable constraint."""

    def __init__(self, constraint: Constraint, *, sort_requests: bool = True) -> None:
        self.constraint = constraint
        self.sort_requests = sort_requests

    def place(
        self, cluster: Cluster, requests: Sequence[PlacementRequest]
    ) -> Placement:
        placement = Placement(cluster=cluster)
        usage: Dict[str, NodeUsage] = {n.node_id: NodeUsage() for n in cluster}
        opened: List[str] = []

        todo = list(requests)
        if self.sort_requests:
            todo.sort(key=lambda r: (-r.demand_mhz, -r.vcpus, r.vm_name))

        for request in todo:
            best_id = None
            best_headroom = float("inf")
            for node_id in opened:
                node = cluster.node(node_id)
                if not self.constraint.fits(node.spec, usage[node_id], request):
                    continue
                headroom = self.constraint.headroom(node.spec, usage[node_id])
                if headroom < best_headroom:
                    best_headroom = headroom
                    best_id = node_id
            if best_id is None:
                best_id = self._open_node(cluster, usage, opened, request)
            if best_id is None:
                placement.unplaced.append(request)
                continue
            usage[best_id].add(request)
            placement.assign(best_id, request)
        return placement

    def _open_node(
        self,
        cluster: Cluster,
        usage: Dict[str, NodeUsage],
        opened: List[str],
        request: PlacementRequest,
    ) -> str:
        """Open the unused node with the *smallest* sufficient capacity
        (keeps big nodes for big demand; deterministic tie-break by id)."""
        candidates = [
            n
            for n in cluster
            if n.node_id not in opened
            and self.constraint.fits(n.spec, usage[n.node_id], request)
        ]
        if not candidates:
            return None
        candidates.sort(
            key=lambda n: (self.constraint.headroom(n.spec, usage[n.node_id]), n.node_id)
        )
        chosen = candidates[0].node_id
        opened.append(chosen)
        return chosen
