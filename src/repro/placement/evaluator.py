"""Placement results and their evaluation (§IV-C metrics).

The paper reports: nodes used, VM counts on the hottest nodes, and the
energy projection of shutting the unused nodes down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hw.cluster import Cluster, ClusterNode
from repro.hw.energy import PowerModel
from repro.placement.constraints import NodeUsage
from repro.placement.request import PlacementRequest


@dataclass
class Placement:
    """Assignment of requests to cluster nodes."""

    cluster: Cluster
    assignments: Dict[str, List[PlacementRequest]] = field(default_factory=dict)
    unplaced: List[PlacementRequest] = field(default_factory=list)

    def assign(self, node_id: str, request: PlacementRequest) -> None:
        self.assignments.setdefault(node_id, []).append(request)

    def usage_of(self, node_id: str) -> NodeUsage:
        usage = NodeUsage()
        for request in self.assignments.get(node_id, []):
            usage.add(request)
        return usage

    @property
    def nodes_used(self) -> int:
        return sum(1 for reqs in self.assignments.values() if reqs)

    def vm_count(self, node_id: str) -> int:
        return len(self.assignments.get(node_id, []))

    def vm_count_by_template(self, node_id: str) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for request in self.assignments.get(node_id, []):
            counts[request.template.name] = counts.get(request.template.name, 0) + 1
        return counts

    def max_vms_of_template_on_spec(self, template_name: str, spec_name: str) -> int:
        """Hottest-node statistic the paper quotes (e.g. 21 large on a chiclet)."""
        best = 0
        for node in self.cluster:
            if node.spec.name != spec_name:
                continue
            best = max(best, self.vm_count_by_template(node.node_id).get(template_name, 0))
        return best


@dataclass(frozen=True)
class PlacementStats:
    """Summary of one placement run."""

    nodes_total: int
    nodes_used: int
    unplaced: int
    max_mhz_load_fraction: float
    idle_power_saved_w: float

    @property
    def nodes_free(self) -> int:
        return self.nodes_total - self.nodes_used


def evaluate(placement: Placement) -> PlacementStats:
    """Compute the §IV-C summary statistics for a placement."""
    used_ids = {nid for nid, reqs in placement.assignments.items() if reqs}
    max_load = 0.0
    for node in placement.cluster:
        usage = placement.usage_of(node.node_id)
        if node.spec.capacity_mhz > 0:
            max_load = max(max_load, usage.demand_mhz / node.spec.capacity_mhz)
    idle_saved = sum(
        PowerModel.for_spec(node.spec).idle_w
        for node in placement.cluster
        if node.node_id not in used_ids
    )
    return PlacementStats(
        nodes_total=len(placement.cluster),
        nodes_used=len(used_ids),
        unplaced=len(placement.unplaced),
        max_mhz_load_fraction=max_load,
        idle_power_saved_w=idle_saved,
    )


def nodes_by_spec_used(placement: Placement) -> Dict[str, int]:
    """How many nodes of each spec ended up hosting VMs."""
    counts: Dict[str, int] = {}
    for node in placement.cluster:
        if placement.assignments.get(node.node_id):
            counts[node.spec.name] = counts.get(node.spec.name, 0) + 1
    return counts
