"""Live-migration model and threshold-based consolidation policy.

The paper's position (§I, §II, §IV-C) is that providers compensate for
uncontrolled vCPU speeds with *migrations*: when a node overloads, VMs
are moved elsewhere, costing downtime and network traffic.  To compare
against that state of the art, this module provides the machinery the
paper's related work describes:

* :class:`MigrationModel` — a pre-copy live-migration cost model: a VM's
  transfer time is RAM size over link bandwidth (times a dirty-page
  overhead factor), with a short stop-and-copy pause at the end during
  which the VM makes no progress.
* :class:`ThresholdMigrationPolicy` — classic reactive consolidation:
  when a node's demand stays above a high watermark, move its smallest
  relieving VM to the least-loaded node with room (by the vCPU-count
  rule — the constraint this management style uses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class MigrationModel:
    """Cost model for one live migration."""

    link_gbps: float = 10.0
    dirty_page_overhead: float = 1.3  # pre-copy retransmissions
    downtime_s: float = 0.5  # stop-and-copy pause

    def __post_init__(self) -> None:
        if self.link_gbps <= 0:
            raise ValueError("link_gbps must be positive")
        if self.dirty_page_overhead < 1.0:
            raise ValueError("dirty_page_overhead must be >= 1")
        if self.downtime_s < 0:
            raise ValueError("downtime_s must be >= 0")

    def transfer_seconds(self, memory_mb: int) -> float:
        """Wall time to copy the VM's RAM across the link."""
        if memory_mb <= 0:
            raise ValueError("memory_mb must be positive")
        bits = memory_mb * 8e6 * self.dirty_page_overhead
        return bits / (self.link_gbps * 1e9)

    def total_seconds(self, memory_mb: int) -> float:
        return self.transfer_seconds(memory_mb) + self.downtime_s


@dataclass
class MigrationEvent:
    """One recorded migration."""

    t: float
    vm_name: str
    source: str
    target: str
    duration_s: float


@dataclass
class ThresholdMigrationPolicy:
    """Reactive overload-triggered migration.

    A node is *overloaded* when the CPU demand of its hosted vCPUs (in
    fractional cores, i.e. demanded cores / logical CPUs) exceeds
    ``high_watermark`` for ``patience`` consecutive checks.  The policy
    then proposes to move the smallest VM whose departure brings the
    node back under the watermark to the least-loaded node that can
    still take it.
    """

    high_watermark: float = 1.0
    patience: int = 3
    _strikes: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.high_watermark <= 0:
            raise ValueError("high_watermark must be positive")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")

    def observe(self, node_id: str, demand_load: float) -> bool:
        """Record one load sample; True when the node trips the policy."""
        if demand_load > self.high_watermark:
            self._strikes[node_id] = self._strikes.get(node_id, 0) + 1
        else:
            self._strikes[node_id] = 0
        return self._strikes[node_id] >= self.patience

    def reset(self, node_id: str) -> None:
        self._strikes[node_id] = 0

    @staticmethod
    def pick_victim(
        vms: List[Tuple[str, int, float]],
        overload_cores: float,
    ) -> Optional[str]:
        """Choose the VM to evict.

        ``vms`` are (name, vcpus, demanded_cores) of the node's VMs;
        prefer the smallest VM whose demand covers the overload, falling
        back to the largest if none alone suffices.
        """
        if not vms:
            return None
        covering = [v for v in vms if v[2] >= overload_cores]
        if covering:
            return min(covering, key=lambda v: (v[2], v[0]))[0]
        return max(vms, key=lambda v: (v[2], v[0]))[0]
