"""Read-only cluster state for one rebalance round.

The rebalancer never touches live controllers: each round starts by
snapshotting the cluster into a :class:`ClusterStateView` — per-node
guaranteed vs. available frequency (Eq. 7 terms), observed demand
pressure, guarantee-violation counts from the invariant plumbing, and
the in-flight migration set — and everything downstream (the what-if
:mod:`~repro.rebalance.simstate`, the :mod:`~repro.rebalance.planner`)
works only on this frozen copy.

Two builders cover the two cluster drivers:

* :meth:`ClusterStateView.from_cluster_sim` — the full-fidelity
  :class:`~repro.sim.cluster_engine.ClusterSimulation` (duck-typed:
  anything with ``runtimes`` / ``node_manager`` / ``_in_flight``);
* the coarse 200-node :class:`~repro.rebalance.chaos.ChurnChaosCluster`
  assembles its view directly from these dataclasses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class VmView:
    """One hosted VM as the planner sees it."""

    name: str
    node_id: str
    vcpus: int
    vfreq_mhz: float
    memory_mb: int

    @property
    def demand_mhz(self) -> float:
        """Guaranteed demand ``k_v^vCPU * F_v`` (Eq. 7 LHS term)."""
        return self.vcpus * self.vfreq_mhz


@dataclass(frozen=True)
class InFlightView:
    """One migration already under way (blackout source + target)."""

    vm_name: str
    source: str
    target: str
    arrives_at: float


@dataclass(frozen=True)
class NodeView:
    """One node's Eq. 7 account at snapshot time.

    ``capacity_mhz`` is the *effective* capacity — a degraded node
    (thermal throttling, a failed socket, a chaos event) reports less
    than ``logical_cpus * F_MAX``, which is exactly what creates
    guarantee pressure on an otherwise admissible placement.
    """

    node_id: str
    capacity_mhz: float
    fmax_mhz: float
    memory_mb: int
    committed_mhz: float
    committed_memory_mb: int
    demand_mhz: float = 0.0
    #: Cumulative guarantee-violation count (invariant/ledger plumbing).
    violations: int = 0
    powered_on: bool = True
    vm_names: Tuple[str, ...] = ()

    @property
    def pressure_mhz(self) -> float:
        """Guaranteed MHz the node cannot deliver (Eq. 7 deficit)."""
        return max(0.0, self.committed_mhz - self.capacity_mhz)

    @property
    def headroom_mhz(self) -> float:
        return max(0.0, self.capacity_mhz - self.committed_mhz)

    @property
    def utilisation(self) -> float:
        if self.capacity_mhz <= 0:
            return float("inf") if self.committed_mhz > 0 else 0.0
        return self.committed_mhz / self.capacity_mhz


@dataclass(frozen=True)
class ClusterStateView:
    """Frozen cluster snapshot one planner round works on."""

    t: float
    nodes: Dict[str, NodeView]
    vms: Dict[str, VmView]
    in_flight: Tuple[InFlightView, ...] = ()
    #: Cluster-wide (checks, violations) from the control plane.
    invariant_totals: Tuple[int, int] = (0, 0)

    # -- derived signals ------------------------------------------------------

    def pressured_nodes(self) -> List[NodeView]:
        """Nodes with an Eq. 7 deficit, worst first (ties by id)."""
        out = [n for n in self.nodes.values() if n.pressure_mhz > 0]
        out.sort(key=lambda n: (-n.pressure_mhz, n.node_id))
        return out

    def total_pressure_mhz(self) -> float:
        return sum(n.pressure_mhz for n in self.nodes.values())

    def pinned_nodes(self) -> frozenset:
        """Nodes blacked out by an in-flight migration (source+target)."""
        pinned = set()
        for mig in self.in_flight:
            pinned.add(mig.source)
            pinned.add(mig.target)
        return frozenset(pinned)

    def migrating_vms(self) -> frozenset:
        return frozenset(m.vm_name for m in self.in_flight)

    def fragmentation_score(self) -> float:
        """Stranded-headroom fraction in [0, 1].

        Headroom slivers smaller than the smallest hosted VM's demand
        cannot host anything currently running, so they are *stranded*:
        ``score = stranded_headroom / total_headroom`` over powered-on
        nodes.  0 means every free MHz is usable; 1 means the free
        capacity is scattered in unusably small pieces — the signal the
        consolidation goal acts on.
        """
        demands = [v.demand_mhz for v in self.vms.values()]
        if not demands:
            return 0.0
        quantum = min(demands)
        total = stranded = 0.0
        for node in self.nodes.values():
            if not node.powered_on:
                continue
            h = node.headroom_mhz
            total += h
            if h < quantum:
                stranded += h
        return stranded / total if total > 0 else 0.0

    # -- builders -------------------------------------------------------------

    @classmethod
    def from_cluster_sim(cls, sim) -> "ClusterStateView":
        """Snapshot a live :class:`ClusterSimulation` (duck-typed).

        Per-node guarantee accounting comes from each hypervisor's
        Eq. 7 terms; violation counts and cluster invariant totals from
        the :class:`~repro.sim.node_manager.NodeManager` when present.
        """
        manager = getattr(sim, "node_manager", None)
        violations_by_node: Dict[str, int] = {}
        totals = (0, 0)
        if manager is not None:
            by_node = getattr(manager, "invariant_violations_by_node", None)
            if by_node is not None:
                violations_by_node = by_node()
            totals = manager.invariant_totals()
        nodes: Dict[str, NodeView] = {}
        vms: Dict[str, VmView] = {}
        for node_id, runtime in sim.runtimes.items():
            spec = runtime.node.spec
            hypervisor = runtime.hypervisor
            names = []
            demand = 0.0
            for vm in hypervisor.vms:
                names.append(vm.name)
                demand += sum(min(v.demand, 1.0) for v in vm.vcpus) * spec.fmax_mhz
                vms[vm.name] = VmView(
                    name=vm.name,
                    node_id=node_id,
                    vcpus=vm.template.vcpus,
                    vfreq_mhz=vm.template.vfreq_mhz,
                    memory_mb=vm.template.memory_mb,
                )
            nodes[node_id] = NodeView(
                node_id=node_id,
                capacity_mhz=spec.capacity_mhz,
                fmax_mhz=spec.fmax_mhz,
                memory_mb=spec.memory_mb,
                committed_mhz=hypervisor.committed_mhz(),
                committed_memory_mb=hypervisor.committed_memory_mb(),
                demand_mhz=demand,
                violations=violations_by_node.get(node_id, 0),
                powered_on=runtime.powered_on,
                vm_names=tuple(sorted(names)),
            )
        in_flight = tuple(
            InFlightView(
                vm_name=m.vm_name,
                source=m.source,
                target=m.target,
                arrives_at=m.arrives_at,
            )
            for m in getattr(sim, "_in_flight", ())
        )
        return cls(
            t=sim.t,
            nodes=nodes,
            vms=vms,
            in_flight=in_flight,
            invariant_totals=totals,
        )
