"""The rebalance ledger: per-move provenance for ``repro explain``.

Every rebalance round appends one record in the PR 5 decision-ledger
style (:mod:`repro.obs.ledger`): ``{"kind": "round", "meta": {...},
"moves": [...]}`` in a bounded in-memory ring, mirrored line-buffered
as JSONL when a path is given.  ``meta`` carries the round context
(round number, snapshot time, seed, pressure before/after,
fragmentation, skip histogram); each move record carries the full
decision chain — goal, victim-selection rule, best-fit target, Eq. 7
headroom at the target after the move, pre-copy cost breakdown, score —
so ``repro explain --move vm-X`` can answer "why did vm-X move"
the same way ``repro explain vm-0 0 --tick 3`` answers "why this cap".
"""

from __future__ import annotations

import json
from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

_VICTIM_RULES = {
    "pressure": "smallest VM covering the Eq. 7 deficit, else largest",
    "drain": "evacuate all, largest guarantee first",
    "consolidate": "whole-node evacuation onto used nodes, largest first",
}


class RebalanceLedger:
    """Bounded ring of per-round move records, optionally on disk."""

    def __init__(self, ring_rounds: int = 1024, path: Optional[str] = None) -> None:
        self._ring: deque = deque(maxlen=ring_rounds)
        self.path = path
        self._fh = open(path, "a", buffering=1) if path else None

    def record_round(self, meta: Dict, moves: List[Dict]) -> None:
        entry = {"kind": "round", "meta": meta, "moves": moves}
        self._ring.append(entry)
        if self._fh is not None:
            self._fh.write(json.dumps(entry, sort_keys=True) + "\n")

    @property
    def rounds(self) -> List[Dict]:
        return list(self._ring)

    def lookup(
        self, vm: str, round_no: Optional[int] = None
    ) -> Optional[Tuple[Dict, Dict]]:
        """The ``(meta, move)`` pair for one migration, or ``None``."""
        return lookup_move(self._ring, vm, round_no)

    def close(self) -> None:
        if self._fh is not None and not self._fh.closed:
            self._fh.close()


def load_rebalance_jsonl(path: str) -> List[Dict]:
    """Load round entries back from a JSONL mirror file."""
    out: List[Dict] = []
    with open(path) as fh:
        for line in fh:
            if not line.strip():
                continue
            entry = json.loads(line)
            if entry.get("kind") == "round":
                out.append(entry)
    return out


def lookup_move(
    entries: Iterable[Dict], vm: str, round_no: Optional[int] = None
) -> Optional[Tuple[Dict, Dict]]:
    """Latest (or round-pinned) move record for one VM."""
    found: Optional[Tuple[Dict, Dict]] = None
    for entry in entries:
        meta = entry["meta"]
        if round_no is not None and meta["round"] != round_no:
            continue
        for move in entry["moves"]:
            if move["vm"] == vm:
                found = (meta, move)
    return found


# ---------------------------------------------------------------------------
# ``repro explain --move`` rendering
# ---------------------------------------------------------------------------


def explain_move(meta: Dict, move: Dict) -> str:
    """Human-readable derivation of one planned migration."""
    lines: List[str] = []
    lines.append(
        f"migration derivation for {move['vm']} in rebalance round "
        f"{meta['round']} (t={meta['t']:g}, seed={meta['seed']})"
    )
    lines.append(
        f"  goal      {move['reason']} "
        f"(cluster pressure {meta.get('pressure_before_mhz', 0.0):.1f} MHz, "
        f"fragmentation {meta.get('fragmentation_before', 0.0):.3f})"
    )
    lines.append(
        f"  victim    {move['vm']} on {move['source']}: "
        f"guarantee {move['demand_mhz']:.1f} MHz, {move['memory_mb']} MB"
    )
    rule = _VICTIM_RULES.get(move["reason"])
    if rule:
        lines.append(f"            rule: {rule}")
    lines.append(
        f"  target    {move['target']} (best-fit, Eq. 7-admissible; "
        f"headroom after move {move.get('target_headroom_after_mhz', 0.0):.1f} MHz)"
    )
    lines.append(
        f"  cost      pre-copy {move['transfer_s']:.3f} s transfer + "
        f"{move['downtime_s']:.3f} s stop-and-copy = {move['cost_s']:.3f} s "
        f"(MigrationModel)"
    )
    lines.append(
        f"  score     {move['relief_mhz']:.1f} guarantee MHz relieved / "
        f"{move['cost_s']:.3f} s = {move['score']:.1f} MHz/s"
    )
    if move.get("executed", True):
        lines.append(
            f"  executed  blackout on {move['source']}+{move['target']}, "
            f"VM paused {move['downtime_s']:.3f} s at cut-over"
        )
    else:
        lines.append(
            f"  NOT executed: {move.get('reject_reason', 'unknown')}"
        )
    after = meta.get("pressure_after_mhz")
    if after is not None:
        lines.append(
            f"  round     {meta.get('n_moves', len(meta.get('moves_by_reason', {})))} "
            f"move(s); planned cluster pressure "
            f"{meta.get('pressure_before_mhz', 0.0):.1f} -> {after:.1f} MHz"
        )
    return "\n".join(lines)


def explain_move_from_entries(
    entries: Iterable[Dict], vm: str, round_no: Optional[int] = None
) -> str:
    """Render the derivation, or raise ``KeyError`` with what exists."""
    entries = list(entries)
    found = lookup_move(entries, vm, round_no)
    if found is None:
        rounds = sorted({e["meta"]["round"] for e in entries})
        window = f"{rounds[0]}..{rounds[-1]}" if rounds else "none"
        moved = sorted({m["vm"] for e in entries for m in e["moves"]})
        hint = f"; moved VMs: {', '.join(moved[:8])}" if moved else ""
        raise KeyError(
            f"no rebalance record for vm={vm!r}"
            + (f" round={round_no}" if round_no is not None else "")
            + f" (recorded rounds: {window}{hint})"
        )
    meta, move = found
    return explain_move(meta, move)
